# Convenience targets for the consumergrid repo. The go toolchain is the
# only dependency; everything routes through `go test`/`go run`.

GOFLAGS ?=

.PHONY: build test race race-resilience bench bench-smoke metrics-smoke chaos-smoke overlay-smoke wire-conformance datastore-smoke tenant-smoke drain-smoke groups-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/engine/... ./internal/jxtaserve/... ./internal/dsp/...

# Race detector over the concurrency-heavy resilience stack: speculative
# farming, the health tracker, and the fault-injecting network.
race-resilience:
	go test -race ./internal/service/... ./internal/simnet/... ./internal/health/...

# Full benchmark snapshot: runs the whole suite and writes BENCH_<date>.json,
# comparing against the previous snapshot.
bench:
	go run ./tools/benchreg -benchtime 300ms

# Short CI smoke: only the kernel + codec + fan-out hot paths, gated at a
# 25% ns/op regression against the committed snapshot.
bench-smoke:
	go run ./tools/benchreg \
		-bench 'BenchmarkKernel|BenchmarkCodec|BenchmarkEngineFanOut' \
		-gate 'BenchmarkKernelFFT|BenchmarkCodec' \
		-benchtime 100ms -threshold 0.25 -no-save

# Wire-protocol conformance: golden frames for both codecs, a short
# fuzz pass over the binary decoder and both round-trip targets, the
# full dialler×listener interop matrix, and the mux invariants (FIFO,
# credit bounds, reset isolation, goroutine leaks) under the race
# detector. Run with -update after a deliberate wire change to
# regenerate the golden fixtures.
wire-conformance:
	go test ./internal/jxtaserve/ -run 'TestGolden|TestInterop|TestReadBinaryMessageRejects' -count=1
	go test ./internal/jxtaserve/ -run '^$$' -fuzz FuzzReadBinaryMessage -fuzztime 10s
	go test ./internal/jxtaserve/ -run '^$$' -fuzz FuzzBinaryMessageRoundTrip -fuzztime 10s
	go test -race ./internal/jxtaserve/ ./internal/simnet/ -run 'TestMux' -count=1

# Observability smoke: boot a real daemon, scrape /metrics, and assert
# the core series families are listed (they register eagerly, so a
# fresh daemon must already expose them). Fails if the daemon dies, the
# scrape fails, or any series family is missing.
metrics-smoke:
	./tools/metrics_smoke.sh

# Content-addressed data tier: the chunkstore/manifest unit and fuzz
# suites, ring chunk placement, and the end-to-end farm battery —
# manifest despatch, the >= 50% controller-egress reduction under
# quorum, the legacy streaming fallback, the peer fetch rung, and the
# dead-replica chaos case. Then a short run of the egress benchmark
# pair so the streaming-vs-manifest byte counts stay visible in CI logs.
datastore-smoke:
	go test ./internal/chunkstore/ ./internal/overlay/ -run 'TestChunk|TestManifest|FuzzChunk' -count=1
	go test ./internal/service/ -run 'TestFarmManifestDespatch|TestFarmEgressReduction|TestFarmLegacyPeerStreamsPayloads|TestResolveManifestPeerRung|TestFarmSurvivesDeadChunkReplica' -count=1 -v
	go test -run '^$$' -bench 'BenchmarkFarmEgress' -benchtime 5x .

# Multi-tenant despatch plane: the 2-shard × 3-tenant smoke scenario
# (concurrent equal-weight farms over a pooled simnet grid, asserting
# Jain's fairness index >= 0.9 on admission grants and the presence of
# tenant-labelled metric families), the fair-share scheduler's own
# regression battery under -race (FIFO wake order, weighted shares,
# outcome exactness racing Close), the N-tenants × M-farms byzantine
# contention suite, the daemon flag-validation table, and the T7
# fairness experiment end to end.
tenant-smoke:
	go test ./internal/controller/ -run 'TestTenantSmoke|TestDonorPoolShard|TestDonorPoolDefaultShards' -count=1 -v
	go test -race ./internal/service/ -run 'TestAdmission|TestTenant' -count=1
	go test ./cmd/trianad/ ./internal/policy/ -run 'TestValidate|TestParseTenants|TestJain|TestWeightedJain' -count=1
	go test ./internal/experiments/ -run 'TestEveryExperimentRunsAndHoldsShape/T7' -count=1

# Deterministic byzantine chaos harness: seeded simnet with a corrupting
# peer and a dead peer, quorum voting, breaker and score assertions via
# the metrics registry. Seeds are fixed, so a failure is reproducible.
chaos-smoke:
	go test ./internal/service/ -run 'TestChaos|TestFarmSkipsDeclaredDeadPeer|TestSpeculationWinsAndCancelsLoser' -count=1 -v

# Graceful-lifecycle battery under the race detector: the lifecycle
# runner/supervisor and crash-safe snapshot unit suites, a drain under
# live 4-tenant farm load (zero in-flight failures, ErrDraining for
# late farms, adverts retracted, super-peer handoff), crash-restart
# resume from the -state-dir checkpoint with byte-identical outputs,
# wire-level method quiescing, 50 Start->Drain->Stop cycles without a
# goroutine leak, and the /healthz / /readyz probe flip.
drain-smoke:
	go test -race ./internal/lifecycle/ -count=1
	go test -race ./internal/service/ -run 'TestAdmissionDrainGatesFarmsNotSlots|TestDrainUnderTenantLoad|TestDrainRPCReportsProgress|TestCheckpointRestoreRoundTrip|TestRestartRecoveryResumesCheckpointedFarm|TestLifecycleCyclesDoNotLeakGoroutines' -count=1 -v
	go test -race ./internal/jxtaserve/ -run 'TestQuiesce' -count=1
	go test -race ./internal/webstatus/ -run 'TestProbesFlipOnDrain' -count=1

# Capability identity groups: the capgroup canonicalisation / advert /
# index unit suite, the mixed-ring controller acceptance battery (group
# despatch, single-group quorum electorates, counted whole-pool
# fallback, poolless pull resolution), the group-committed farm and
# ErrNoQuorumCapacity regressions, the group-shard overlay resilience
# trio (super kill, anti-entropy repair, bounded ring remap), and the
# -caps / -require-caps flag-validation table.
groups-smoke:
	go test ./internal/capgroup/ -count=1
	go test ./internal/controller/ -run 'TestGroup' -count=1 -v
	go test ./internal/service/ -run 'TestGroup' -count=1
	go test ./internal/overlay/ -run 'TestGroup' -count=1
	go test ./cmd/trianad/ -run 'TestValidate|TestParseCaps' -count=1

# Discovery-overlay chaos: seeded simnet with 3 super-peers (R=2), one
# killed mid-run. Asserts every advert published before the kill stays
# discoverable, failover pushes reach subscribers, and anti-entropy
# repairs a healed partition. Deterministic seeds.
overlay-smoke:
	go test ./internal/overlay/ -run 'TestChaosSuperPeerFailover|TestAntiEntropyRepairsPartition|TestPublishAndQueryMessageCost' -count=1 -v
