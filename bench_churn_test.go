package consumergrid_test

// BenchmarkFarmUnderChurn measures farm makespan with a persistent
// straggler in the worker pool, speculation off vs on. The speculative
// backup should cut the makespan (the slow peer's chunks are raced onto
// a healthy peer) at a bounded duplicated-work cost, reported via the
// speculation counters per op.

import (
	"context"
	"testing"
	"time"

	"consumergrid/internal/service"
	"consumergrid/internal/simnet"
	"consumergrid/internal/taskgraph"
)

func BenchmarkFarmUnderChurn(b *testing.B) {
	for _, spec := range []struct {
		name string
		on   bool
	}{
		{"speculation-off", false},
		{"speculation-on", true},
	} {
		b.Run(spec.name, func(b *testing.B) {
			chunks := benchChunks(7, 4, 3)
			b.ReportAllocs()
			var launches, wins, waste int64
			for i := 0; i < b.N; i++ {
				// Fresh network per iteration so peer-health history from
				// one run cannot bias the next run's selection.
				n := simnet.New()
				n.FaultSeed(int64(i + 1))
				newSvc := func(label string) *service.Service {
					s, err := service.New(service.Options{
						PeerID: label, Transport: n.Peer(label),
						Resilience: service.ResilienceOptions{
							MaxAttempts: 4,
							BaseDelay:   2 * time.Millisecond,
							MaxDelay:    10 * time.Millisecond,
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					return s
				}
				ctl := newSvc("ctl")
				var peers []service.PeerRef
				var workers []*service.Service
				for _, label := range []string{"w1", "w2", "w3"} {
					w := newSvc(label)
					workers = append(workers, w)
					peers = append(peers, service.PeerRef{ID: label, Addr: w.Addr()})
				}
				// w1 is the straggler: every message on its links crawls,
				// so chunks landing there dominate the makespan unless a
				// backup attempt rescues them.
				n.SetLinkFaults("w1", simnet.LinkFaults{Latency: 15 * time.Millisecond})

				rep, err := ctl.FarmChunks(context.Background(), chunks, service.FarmOptions{
					Body:           func() *taskgraph.Graph { return benchAccumBody(b) },
					Peers:          peers,
					Speculate:      spec.on,
					SpeculateAfter: 30 * time.Millisecond,
					MaxSpeculative: 2,
					AttemptTimeout: 30 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Outputs) != 12 {
					b.Fatalf("farm produced %d outputs, want 12", len(rep.Outputs))
				}
				launches += rep.SpeculationLaunches
				wins += rep.SpeculationWins
				waste += rep.SpeculationWaste
				for _, w := range workers {
					w.Close()
				}
				ctl.Close()
			}
			b.ReportMetric(float64(launches)/float64(b.N), "spec-launches/op")
			b.ReportMetric(float64(wins)/float64(b.N), "spec-wins/op")
			b.ReportMetric(float64(waste)/float64(b.N), "spec-waste/op")
		})
	}
}
