package consumergrid_test

// Controller-egress benches for the content-addressed data tier. Both
// run the identical quorum farm on the identical simnet topology; the
// only variable is whether farm inputs travel as streamed payloads
// (once per voter) or as chunk manifests resolved through donor caches
// and the super-peer ring. The egress-B/op custom metric is the
// controller's data-plane bytes per farm — the number the tier exists
// to cut, tracked by the benchreg snapshots.

import (
	"context"
	"math/rand"
	"testing"

	"consumergrid/internal/service"
	"consumergrid/internal/simnet"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/signal"
)

func benchService(b *testing.B, n *simnet.Network, id string, opts service.Options) *service.Service {
	b.Helper()
	opts.PeerID = id
	opts.Transport = n.Peer(id)
	s, err := service.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// egressBody builds the one-unit accumulator farm body once and clones
// it per attempt.
func egressBody(b *testing.B) func() *taskgraph.Graph {
	b.Helper()
	g := taskgraph.New("egressbody")
	task, err := units.NewTask("Accum", signal.NameAccumStat)
	if err != nil {
		b.Fatal(err)
	}
	g.MustAdd(task)
	g.ExternalIn = []taskgraph.Endpoint{{Task: "Accum", Node: 0}}
	g.ExternalOut = []taskgraph.Endpoint{{Task: "Accum", Node: 0}}
	return func() *taskgraph.Graph { return g.Clone() }
}

// egressChunks derives 3 chunks x 4 spectra of 512 bins (~4 KiB of
// payload per datum) so manifest overhead is noise against data bytes.
func egressChunks() [][]types.Data {
	rng := rand.New(rand.NewSource(42))
	chunks := make([][]types.Data, 3)
	for c := range chunks {
		for i := 0; i < 4; i++ {
			amps := make([]float64, 512)
			for j := range amps {
				amps[j] = rng.Float64()*100 + float64(j)
			}
			chunks[c] = append(chunks[c], &types.Spectrum{Resolution: 1, Amplitudes: amps})
		}
	}
	return chunks
}

func benchFarmEgress(b *testing.B, prefix string, dataTier bool) {
	n := simnet.New()
	ctlOpts := service.Options{DataTier: service.DataTierOptions{Enable: dataTier}}
	if dataTier {
		super := benchService(b, n, prefix+"super", service.Options{
			Overlay: &service.OverlayOptions{SuperPeer: true, Replication: 1, SweepInterval: -1},
		})
		ctlOpts.Overlay = &service.OverlayOptions{
			SuperPeers: []string{super.Addr()}, Replication: 1,
		}
	}
	ctl := benchService(b, n, prefix+"ctl", ctlOpts)
	var peers []service.PeerRef
	for _, w := range []string{"w1", "w2", "w3"} {
		s := benchService(b, n, prefix+w, service.Options{
			DataTier: service.DataTierOptions{Enable: dataTier},
		})
		peers = append(peers, service.PeerRef{ID: prefix + w, Addr: s.Addr()})
	}

	body := egressBody(b)
	chunks := egressChunks()
	b.ReportAllocs()
	b.ResetTimer()
	var egress int64
	for i := 0; i < b.N; i++ {
		before := ctl.Resilience().Snapshot().FarmEgressBytes
		rep, err := ctl.FarmChunks(context.Background(), chunks, service.FarmOptions{
			Body:   body,
			Peers:  peers,
			Quorum: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Outputs) != len(chunks)*4 {
			b.Fatalf("farm committed %d outputs, want %d", len(rep.Outputs), len(chunks)*4)
		}
		egress += ctl.Resilience().Snapshot().FarmEgressBytes - before
	}
	b.ReportMetric(float64(egress)/float64(b.N), "egress-B/op")
}

func BenchmarkFarmEgressStreaming(b *testing.B) { benchFarmEgress(b, "ebs-", false) }
func BenchmarkFarmEgressDataTier(b *testing.B)  { benchFarmEgress(b, "ebd-", true) }
