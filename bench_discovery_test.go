package consumergrid_test

import (
	"testing"

	"consumergrid/internal/experiments"
)

// benchDiscover runs one T6 scale trial per iteration and reports the
// costs that matter for discovery at consumer-grid scale: messages on
// the wire per publish and per query, and the p90 query latency. The
// custom units land in the benchreg snapshot's "extra" map, so the
// overlay-vs-flood gap is tracked across PRs like ns/op.
func benchDiscover(b *testing.B, strategy string) {
	const peers, queries = 1000, 10
	b.ReportAllocs()
	var publish, msgs, p90 float64
	for i := 0; i < b.N; i++ {
		pt, err := experiments.DiscoveryScaleTrial(strategy, peers, queries, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !pt.Found {
			b.Fatalf("%s lost the target advert at %d peers", strategy, peers)
		}
		publish += pt.MsgsPerPublish
		msgs += pt.MsgsPerQuery
		p90 += float64(pt.P90Query.Nanoseconds())
	}
	n := float64(b.N)
	b.ReportMetric(publish/n, "msgs/publish")
	b.ReportMetric(msgs/n, "msgs/query")
	b.ReportMetric(p90/n, "p90-query-ns")
}

func BenchmarkDiscoverFlood(b *testing.B)   { benchDiscover(b, "flood") }
func BenchmarkDiscoverOverlay(b *testing.B) { benchDiscover(b, "overlay") }
