package consumergrid_test

// BenchmarkDespatchUnderFaults measures the resilient farm loop under
// each injected fault class, so the perf trajectory captures what
// retries, re-despatches and wasted work cost relative to a clean
// network. Recovery work is reported as custom metrics per op.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/service"
	"consumergrid/internal/simnet"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/signal"
)

// benchAccumBody builds the one-task stateful farm body.
func benchAccumBody(b *testing.B) *taskgraph.Graph {
	b.Helper()
	g := taskgraph.New("benchaccum")
	task, err := units.NewTask("Accum", signal.NameAccumStat)
	if err != nil {
		b.Fatal(err)
	}
	g.MustAdd(task)
	g.ExternalIn = []taskgraph.Endpoint{{Task: "Accum", Node: 0}}
	g.ExternalOut = []taskgraph.Endpoint{{Task: "Accum", Node: 0}}
	return g
}

func benchChunks(seed int64, nChunks, perChunk int) [][]types.Data {
	rng := rand.New(rand.NewSource(seed))
	chunks := make([][]types.Data, nChunks)
	for c := range chunks {
		for i := 0; i < perChunk; i++ {
			v := rng.Float64() * 100
			chunks[c] = append(chunks[c], &types.Spectrum{
				Resolution: 1, Amplitudes: []float64{v, 2 * v},
			})
		}
	}
	return chunks
}

func BenchmarkDespatchUnderFaults(b *testing.B) {
	faults := []struct {
		name  string
		fault simnet.LinkFaults
	}{
		{"clean", simnet.LinkFaults{}},
		{"drop-every-13", simnet.LinkFaults{DropEvery: 13}},
		{"jitter-200us", simnet.LinkFaults{Latency: 100 * time.Microsecond, Jitter: 200 * time.Microsecond}},
	}
	// The unsuffixed sub-names now run the multiplexed wire (one shared
	// connection per peer pair, faults landing per stream), so their
	// trajectory against older snapshots shows what the mux buys; the
	// -legacy variants keep the pre-mux dial-per-RPC wire measurable.
	type variant struct {
		suffix string
		wire   jxtaserve.WireOptions
	}
	variants := []variant{
		{"", jxtaserve.WireOptions{Mux: true, Binary: true}},
		{"-legacy", jxtaserve.WireOptions{}},
	}
	var cases []struct {
		name  string
		fault simnet.LinkFaults
		wire  jxtaserve.WireOptions
	}
	for _, v := range variants {
		for _, f := range faults {
			cases = append(cases, struct {
				name  string
				fault simnet.LinkFaults
				wire  jxtaserve.WireOptions
			}{f.name + v.suffix, f.fault, v.wire})
		}
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			n := simnet.New()
			n.FaultSeed(1)
			newSvc := func(label string) *service.Service {
				s, err := service.New(service.Options{
					PeerID: label, Transport: n.Peer(label),
					Wire: tc.wire,
					Resilience: service.ResilienceOptions{
						MaxAttempts: 4,
						BaseDelay:   2 * time.Millisecond,
						MaxDelay:    10 * time.Millisecond,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				return s
			}
			ctl := newSvc("ctl")
			defer ctl.Close()
			var peers []service.PeerRef
			for _, label := range []string{"w1", "w2", "w3"} {
				w := newSvc(label)
				defer w.Close()
				peers = append(peers, service.PeerRef{ID: label, Addr: w.Addr()})
			}
			n.SetLinkFaults("*", tc.fault)
			chunks := benchChunks(7, 3, 4)

			b.ReportAllocs()
			var redespatches, wasted int64
			for i := 0; i < b.N; i++ {
				rep, err := ctl.FarmChunks(context.Background(), chunks, service.FarmOptions{
					Body:          func() *taskgraph.Graph { return benchAccumBody(b) },
					Peers:         peers,
					ChunkAttempts: 24,
					Seed:          int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Outputs) != 12 {
					b.Fatalf("farm produced %d outputs, want 12", len(rep.Outputs))
				}
				redespatches += rep.Redespatches
				wasted += rep.WastedOutputs
			}
			b.ReportMetric(float64(redespatches)/float64(b.N), "redespatches/op")
			b.ReportMetric(float64(wasted)/float64(b.N), "wasted-items/op")
		})
	}
}
