package consumergrid_test

// Lifecycle checkpoint benches: the crash-safe state snapshot's full
// round trip (encode + fsync'd atomic save + load + CRC-checked
// decode) and the codec alone, over section sizes shaped like a busy
// daemon — a few KB of billing and health, tens of KB of adverts, and
// a farm journal plus chunk-pin set in the hundreds of KB. ns/op of
// the durable round trip bounds how often a daemon can afford
// per-chunk checkpoints; snapshot-KB tracks the encoded size. Tracked
// by the benchreg snapshots (BENCH_*-lifecycle.json).

import (
	"math/rand"
	"testing"

	"consumergrid/internal/lifecycle"
)

// benchSnapshot builds a snapshot with daemon-shaped section sizes.
func benchSnapshot() *lifecycle.Snapshot {
	rng := rand.New(rand.NewSource(1))
	section := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	s := lifecycle.NewSnapshot()
	s.Set("meta", section(64))
	s.Set("billing", section(4<<10))
	s.Set("health", section(8<<10))
	s.Set("adverts", section(48<<10))
	s.Set("farms", section(256<<10))
	s.Set("chunk-pins", section(512<<10))
	return s
}

func BenchmarkCheckpointRoundTrip(b *testing.B) {
	dir := b.TempDir()
	snap := benchSnapshot()
	size := len(snap.Encode())
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.Save(dir, "bench.state"); err != nil {
			b.Fatal(err)
		}
		if _, err := lifecycle.Load(dir, "bench.state"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size)/1024, "snapshot-KB")
}

func BenchmarkCheckpointCodec(b *testing.B) {
	snap := benchSnapshot()
	enc := snap.Encode()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lifecycle.Decode(snap.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}
