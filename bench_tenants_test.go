package consumergrid_test

// Fair-share scheduler benches: the T7 despatch-plane kernel at a
// saturated 2x oversubscription, single-tenant baseline against
// multi-tenant splits of the same aggregate load. ns/op tracks the
// wall time of draining the whole workload; the custom metrics are the
// tentpole's acceptance numbers — jain-x1000 is Jain's fairness index
// over per-tenant throughput (1000 = perfectly fair) and p99-sched-us
// the worst tenant's 99th-percentile acquire-to-grant wait. Tracked by
// the benchreg snapshots (BENCH_*-tenants.json).

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"consumergrid/internal/policy"
	"consumergrid/internal/service"
)

var benchTrialSeq atomic.Int64

func benchFairShare(b *testing.B, tenants int) {
	const (
		donors              = 64
		despatchesPerStream = 8
		svcTime             = 200 * time.Microsecond
	)
	weights := map[string]int{}
	for i := 0; i < tenants; i++ {
		weights[fmt.Sprintf("t%d", i)] = 1
	}
	streamsPer := 2 * donors / tenants

	var jain, p99 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Owners are unique per trial so the registry histograms never
		// blend iterations.
		owner := fmt.Sprintf("bench-fs-%d", benchTrialSeq.Add(1))
		results := service.SchedulerTrial(owner, weights, donors, streamsPer,
			despatchesPerStream, svcTime, 1)
		var thr []float64
		p99 = 0
		for _, r := range results {
			thr = append(thr, r.PerSec)
			if r.P99WaitMS > p99 {
				p99 = r.P99WaitMS
			}
		}
		jain = policy.JainIndex(thr)
	}
	b.ReportMetric(jain*1000, "jain-x1000")
	b.ReportMetric(p99*1000, "p99-sched-us")
}

func BenchmarkFairShareScheduler(b *testing.B) {
	for _, tenants := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			benchFairShare(b, tenants)
		})
	}
}
