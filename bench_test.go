package consumergrid_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/dsp"
	"consumergrid/internal/engine"
	"consumergrid/internal/experiments"
	"consumergrid/internal/policy"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/mathx"
	"consumergrid/internal/units/signal"
)

// --- experiment benches: one per paper artefact ------------------------------
//
// Each BenchmarkF*/E*/T*/A* regenerates the corresponding DESIGN.md
// experiment once per iteration through the shared harness, so
// `go test -bench .` re-derives every figure and table. Shape failures
// fail the bench: a benchmark that silently measured the wrong behaviour
// would be worse than one that errors.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(experiments.Config{Seed: int64(i) + 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !res.ShapeOK {
			b.Fatalf("%s shape failed: %s", id, res.ShapeNote)
		}
	}
}

func BenchmarkF1TaskGraphRoundTrip(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkF2SpectrumAveraging(b *testing.B)  { benchExperiment(b, "F2") }
func BenchmarkF3ControlRoundTrip(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkE1GalaxyFarm(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2InspiralSearch(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3DBPipeline(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkT1SizingTable(b *testing.B)        { benchExperiment(b, "T1") }
func BenchmarkT2Discovery(b *testing.B)          { benchExperiment(b, "T2") }
func BenchmarkT3CodeDistribution(b *testing.B)   { benchExperiment(b, "T3") }
func BenchmarkT4Policies(b *testing.B)           { benchExperiment(b, "T4") }
func BenchmarkT5Gateway(b *testing.B)            { benchExperiment(b, "T5") }
func BenchmarkA1Checkpoint(b *testing.B)         { benchExperiment(b, "A1") }
func BenchmarkA2OnDemandCode(b *testing.B)       { benchExperiment(b, "A2") }

// --- kernel micro-benches ----------------------------------------------------
//
// The hot paths under the experiments, measured in isolation so
// regressions are attributable.

func BenchmarkKernelFFT(b *testing.B) {
	for _, n := range []int{1024, 16384, 262144} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			rng := rand.New(rand.NewSource(1))
			for i := range x {
				x[i] = complex(rng.NormFloat64(), 0)
			}
			buf := make([]complex128, n)
			b.SetBytes(int64(n * 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, x)
				dsp.FFT(buf)
			}
		})
	}
}

func BenchmarkKernelMatchedFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := dsp.GaussianNoise(65536, 1, rng)
	tpl := dsp.TemplateBank(1, 2048, 40, 200, 400, 2000)[0]
	b.SetBytes(65536 * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.CrossCorrelate(data, tpl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSPHRender(b *testing.B) {
	gen, err := newGalaxyGen(8000)
	if err != nil {
		b.Fatal(err)
	}
	ps := gen.SnapshotAt(5)
	cd, err := newRenderer(128, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cd.Render(ps)
	}
}

func BenchmarkCodecSampleSetRoundTrip(b *testing.B) {
	s := types.NewSampleSet(2000, make([]float64, 16384))
	b.SetBytes(16384 * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := types.Marshal(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := types.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphXMLRoundTrip(b *testing.B) {
	g := core.Figure1Workflow(core.Figure1Options{})
	g.AssignLabels("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := g.EncodeXML()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := taskgraph.ParseXML(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFigure1Local(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wf := core.Figure1Workflow(core.Figure1Options{
			Samples: 1024, Policy: policy.NameLocal})
		if _, err := engine.Run(context.Background(), wf, engine.Options{
			Iterations: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFanOut isolates the engine's fan-out delivery path: one
// source emitting a large SampleSet into a wide fan of read-only
// consumers. Before copy-on-write sharing this deep-cloned the payload
// once per extra edge; with sealed source outputs every consumer shares
// the same buffer.
func BenchmarkEngineFanOut(b *testing.B) {
	const fan = 8
	g := taskgraph.New("fanout")
	wave, err := units.NewTask("Wave", signal.NameWave)
	if err != nil {
		b.Fatal(err)
	}
	wave.Params = map[string]string{"samples": "16384"}
	g.MustAdd(wave)
	for i := 0; i < fan; i++ {
		mean, err := units.NewTask(fmt.Sprintf("Mean%d", i), mathx.NameMean)
		if err != nil {
			b.Fatal(err)
		}
		g.MustAdd(mean)
		g.ConnectNamed("Wave", 0, mean.Name, 0)
	}
	b.SetBytes(16384 * 8 * fan)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(context.Background(), g, engine.Options{
			Iterations: 4, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridDistributedFigure1(b *testing.B) {
	grid, err := core.NewGrid(core.GridOptions{Peers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer grid.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := grid.Run(context.Background(),
			core.Figure1Workflow(core.Figure1Options{Samples: 512}),
			controller.RunOptions{Iterations: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA3LiveChurn(b *testing.B) { benchExperiment(b, "A3") }
