package consumergrid_test

// Wire-level benchmarks for the binary codec and the stream mux: the
// codec pair quantifies the binary format's gain over the XML framing on
// the same message mix, and the conns-per-peer bench pins the mux's
// O(peers) connection economics as a custom metric benchreg snapshots.

import (
	"bytes"
	"fmt"
	"testing"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/simnet"
	"consumergrid/internal/types"
)

// wireBenchMessage models the despatch hot path: a pipe.data frame with
// routing headers and a kilobyte-scale numeric payload.
func wireBenchMessage() *jxtaserve.Message {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	m := &jxtaserve.Message{Kind: jxtaserve.KindPipeData, Stream: 7, Payload: payload}
	m.SetHeader("pipe", "farm/chunk/3/in")
	m.SetHeader("from", "peer-controller")
	m.SetHeader("seq", "12345")
	return m
}

func BenchmarkCodecWireRoundTrip(b *testing.B) {
	codecs := []struct {
		name   string
		encode func(*bytes.Buffer, *jxtaserve.Message) error
		decode func(*bytes.Buffer) (*jxtaserve.Message, error)
	}{
		{"xml",
			func(buf *bytes.Buffer, m *jxtaserve.Message) error { return jxtaserve.WriteMessage(buf, m) },
			func(buf *bytes.Buffer) (*jxtaserve.Message, error) { return jxtaserve.ReadMessage(buf) }},
		{"binary",
			func(buf *bytes.Buffer, m *jxtaserve.Message) error { return jxtaserve.WriteBinaryMessage(buf, m) },
			func(buf *bytes.Buffer) (*jxtaserve.Message, error) { return jxtaserve.ReadBinaryMessage(buf) }},
	}
	msg := wireBenchMessage()
	for _, codec := range codecs {
		b.Run(codec.name, func(b *testing.B) {
			var buf bytes.Buffer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := codec.encode(&buf, msg); err != nil {
					b.Fatal(err)
				}
				got, err := codec.decode(&buf)
				if err != nil {
					b.Fatal(err)
				}
				if len(got.Payload) != len(msg.Payload) {
					b.Fatalf("payload came back %d bytes", len(got.Payload))
				}
			}
			b.SetBytes(int64(len(msg.Payload)))
		})
	}
}

// BenchmarkWireConnsPerPeer opens four pipes plus RPC traffic between a
// peer pair per iteration and reports how many raw network connections
// that cost: 1 with the mux (O(peers)), one per pipe and per RPC without.
func BenchmarkWireConnsPerPeer(b *testing.B) {
	for _, tc := range []struct {
		name string
		mux  bool
	}{{"mux", true}, {"legacy", false}} {
		b.Run(tc.name, func(b *testing.B) {
			var conns int64
			for i := 0; i < b.N; i++ {
				n := simnet.New()
				wrap := func(tr jxtaserve.Transport) jxtaserve.Transport {
					if tc.mux {
						return jxtaserve.NewMux(tr, jxtaserve.WireOptions{Mux: true})
					}
					return tr
				}
				recv, err := jxtaserve.NewHost("recv", wrap(n.Peer("recv")), "")
				if err != nil {
					b.Fatal(err)
				}
				send, err := jxtaserve.NewHost("send", wrap(n.Peer("send")), "")
				if err != nil {
					b.Fatal(err)
				}
				recv.Handle("echo", func(req *jxtaserve.Message) (*jxtaserve.Message, error) {
					return &jxtaserve.Message{Payload: req.Payload}, nil
				})
				datum := types.NewSampleSet(8000, []float64{1, 2, 3})
				for p := 0; p < 4; p++ {
					pipe, ad, err := recv.OpenInput(fmt.Sprintf("bench/pipe/%d", p), 4)
					if err != nil {
						b.Fatal(err)
					}
					out, err := send.BindOutput(ad)
					if err != nil {
						b.Fatal(err)
					}
					if err := out.Send(datum); err != nil {
						b.Fatal(err)
					}
					<-pipe.C
					out.Close()
					pipe.Close()
				}
				for r := 0; r < 3; r++ {
					if _, err := send.Request(recv.Addr(), "echo", []byte("x"), nil); err != nil {
						b.Fatal(err)
					}
				}
				conns += n.Dials()
				send.Close()
				recv.Close()
			}
			b.ReportMetric(float64(conns)/float64(b.N), "conns/peer-pair")
		})
	}
}
