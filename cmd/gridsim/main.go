// Command gridsim regenerates the paper's figures and tables: every
// experiment in DESIGN.md's index (F1-F3 figures, E1-E3 application
// scenarios, T1-T6 tables, A1-A3 ablations) prints its rows plus a shape
// verdict — whether the qualitative claim the paper makes held in this
// run. EXPERIMENTS.md records a reference output.
//
//	gridsim                 # run everything
//	gridsim -exp T2,E2      # run a subset
//	gridsim -scale 4        # larger workloads
//	gridsim -csv out/       # also dump each table as CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"consumergrid/internal/experiments"
	"consumergrid/internal/metrics"
)

func main() {
	log.SetFlags(0)
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scale   = flag.Int("scale", 1, "workload scale multiplier")
		seed    = flag.Int64("seed", 1, "random seed")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		verbose = flag.Bool("v", false, "progress logging")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				log.Fatalf("gridsim: unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{
		Scale:   *scale,
		Seed:    *seed,
		Verbose: *verbose,
		Logf:    log.Printf,
	}

	failures := 0
	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			log.Printf("gridsim: %s failed: %v", e.ID, err)
			failures++
			continue
		}
		for _, tab := range res.Tables {
			fmt.Println()
			tab.Render(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID, tab); err != nil {
					log.Printf("gridsim: csv: %v", err)
				}
			}
		}
		verdict := "SHAPE OK"
		if !res.ShapeOK {
			verdict = "SHAPE FAILED"
			failures++
		}
		fmt.Printf("\n%s (%v): %s — %s\n\n", e.ID, time.Since(start).Round(time.Millisecond),
			verdict, res.ShapeNote)
	}
	if failures > 0 {
		log.Fatalf("gridsim: %d experiment(s) failed", failures)
	}
}

func writeCSV(dir, id string, tab *metrics.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.ToLower(strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, tab.Title))
	if len(slug) > 48 {
		slug = slug[:48]
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%s.csv", id, slug)))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.RenderCSV(f)
}
