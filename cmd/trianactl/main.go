// Command trianactl is the command-line Triana Controller (§3.2: "The
// Triana controller can be based either on a command line or a GUI user
// interface"). It loads an XML task graph, discovers peers through the
// rendezvous network, plans and enacts the graph's distribution policy,
// and prints the sink units' results.
//
// Subcommands:
//
//	trianactl units                          # list the unit toolbox
//	trianactl describe triana.signal.Wave    # one unit's metadata
//	trianactl validate -workflow wf.xml      # structural + type check
//	trianactl peers -rendezvous host:port    # discover enrolled services
//	trianactl ping -addr host:port           # probe one daemon
//	trianactl metrics -addr host:port        # live registry, Prometheus text
//	trianactl traces -addr host:port         # recent despatch trace trees
//	trianactl groups -addr host:port         # capability groups and members
//	trianactl drain -addr host:port -wait    # graceful drain, then report
//	trianactl run -workflow wf.xml -rendezvous host:port -iterations 20
//	trianactl export -example figure1        # write a canonical workflow XML
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/discovery"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/overlay"
	"consumergrid/internal/service"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/unitio"

	_ "consumergrid/internal/units/astro"
	_ "consumergrid/internal/units/convert"
	_ "consumergrid/internal/units/dbase"
	_ "consumergrid/internal/units/flow"
	_ "consumergrid/internal/units/imaging"
	_ "consumergrid/internal/units/mathx"
	_ "consumergrid/internal/units/signal"
	_ "consumergrid/internal/units/textproc"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "units":
		err = cmdUnits(args)
	case "describe":
		err = cmdDescribe(args)
	case "validate":
		err = cmdValidate(args)
	case "peers":
		err = cmdPeers(args)
	case "ping":
		err = cmdPing(args)
	case "billing":
		err = cmdBilling(args)
	case "metrics":
		err = cmdMetrics(args)
	case "traces":
		err = cmdTraces(args)
	case "tenant":
		err = cmdTenant(args)
	case "groups":
		err = cmdGroups(args)
	case "overlay":
		err = cmdOverlay(args)
	case "drain":
		err = cmdDrain(args)
	case "run":
		err = cmdRun(args)
	case "export":
		err = cmdExport(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("trianactl %s: %v", cmd, err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: trianactl {units|describe|validate|peers|ping|billing|metrics|traces|tenant|groups|overlay|drain|run|export} [flags]")
}

func cmdUnits(args []string) error {
	for _, n := range units.Names() {
		m, _ := units.Lookup(n)
		fmt.Printf("%-36s %d in / %d out  %s\n", n, m.In, m.Out, m.Description)
	}
	return nil
}

func cmdDescribe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: trianactl describe <unit>")
	}
	m, ok := units.Lookup(args[0])
	if !ok {
		return fmt.Errorf("unknown unit %q", args[0])
	}
	fmt.Printf("%s (version %s)\n  %s\n", m.Name, m.Version, m.Description)
	fmt.Printf("  inputs: %d  outputs: %d  stateful: %v\n", m.In, m.Out, m.Stateful)
	for i, ins := range m.InTypes {
		fmt.Printf("  in[%d] accepts %s\n", i, strings.Join(ins, ", "))
	}
	for i, out := range m.OutTypes {
		fmt.Printf("  out[%d] emits %s\n", i, out)
	}
	for _, p := range m.Params {
		def := p.Default
		if def == "" {
			def = "(required)"
		}
		fmt.Printf("  param %-14s default %-10s %s\n", p.Name, def, p.Description)
	}
	return nil
}

func loadWorkflow(path string) (*taskgraph.Graph, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.Contains(string(b), "<flowModel"):
		return taskgraph.ParseWSFL(b)
	case strings.Contains(string(b), "<pnml"):
		return taskgraph.ParsePNML(b)
	default:
		return taskgraph.ParseXML(b)
	}
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	wfPath := fs.String("workflow", "", "task graph XML (taskgraph or WSFL dialect)")
	fs.Parse(args)
	if *wfPath == "" {
		return fmt.Errorf("-workflow required")
	}
	g, err := loadWorkflow(*wfPath)
	if err != nil {
		return err
	}
	if err := g.Validate(units.Resolver()); err != nil {
		return err
	}
	fmt.Printf("%s: valid (%d tasks, %d connections)\n",
		g.Name, g.CountTasks(), len(g.Connections))
	return nil
}

// splitAddrs parses a comma-separated address list, dropping blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// newControlPeer builds the controller's own service over TCP, attached
// to the given rendezvous addresses — or, when a super-peer ring is
// given instead, to the replicated discovery overlay.
func newControlPeer(rendezvous, superRing string) (*service.Service, error) {
	rdvAddrs := splitAddrs(rendezvous)
	superAddrs := splitAddrs(superRing)
	if len(rdvAddrs) == 0 && len(superAddrs) == 0 {
		return nil, fmt.Errorf("-rendezvous or -super-ring required")
	}
	host, _ := os.Hostname()
	opts := service.Options{
		PeerID:    fmt.Sprintf("ctl-%s-%d", host, os.Getpid()),
		Transport: jxtaserve.TCP{},
		Addr:      "127.0.0.1:0",
		Discovery: discovery.Config{
			Mode: discovery.ModeRendezvous, Rendezvous: rdvAddrs,
		},
	}
	if len(superAddrs) > 0 {
		opts.Overlay = &service.OverlayOptions{SuperPeers: superAddrs}
	}
	return service.New(opts)
}

func cmdPeers(args []string) error {
	fs := flag.NewFlagSet("peers", flag.ExitOnError)
	rendezvous := fs.String("rendezvous", "", "rendezvous addresses")
	superRing := fs.String("super-ring", "", "super-peer addresses (overlay discovery)")
	minCPU := fs.Float64("min-cpu", 0, "minimum advertised CPU MHz")
	fs.Parse(args)
	svc, err := newControlPeer(*rendezvous, *superRing)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctl := controller.New(svc, nil)
	peers, err := ctl.DiscoverPeers(controller.RunOptions{MinCPUMHz: *minCPU})
	if err != nil {
		return err
	}
	if len(peers) == 0 {
		fmt.Println("no peers enrolled")
		return nil
	}
	for _, p := range peers {
		fmt.Printf("%-24s %s\n", p.ID, p.Addr)
	}
	return nil
}

func cmdPing(args []string) error {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("-addr required")
	}
	host, err := jxtaserve.NewHost("ping", jxtaserve.TCP{}, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer host.Close()
	start := time.Now()
	reply, err := host.Request(*addr, service.MethodPing, nil, nil)
	if err != nil {
		return err
	}
	fmt.Printf("peer %s: rm=%s cpu=%s MHz ram=%s MB units=%s rtt=%v\n",
		reply.Header("peer"), reply.Header("rm"), reply.Header("cpuMHz"),
		reply.Header("freeRAMMB"), reply.Header("units"), time.Since(start))
	return nil
}

// cmdBilling fetches a daemon's resource-usage ledger — what each
// requester consumed on that donated machine (§2).
func cmdBilling(args []string) error {
	fs := flag.NewFlagSet("billing", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("-addr required")
	}
	svc, err := service.New(service.Options{
		PeerID:    fmt.Sprintf("audit-%d", os.Getpid()),
		Transport: jxtaserve.TCP{},
		Addr:      "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	entries, err := svc.FetchBilling(*addr)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("ledger empty")
		return nil
	}
	fmt.Printf("%-24s %6s %14s %10s\n", "requester", "jobs", "cpu", "processed")
	for _, e := range entries {
		fmt.Printf("%-24s %6d %14v %10d\n", e.Requester, e.Jobs, e.CPU, e.Processed)
	}
	return nil
}

// fetchObservability pulls one observability RPC's text payload from a
// daemon (metrics and traces share the shape).
func fetchObservability(addr, method string, headers map[string]string) error {
	host, err := jxtaserve.NewHost(fmt.Sprintf("observe-%d", os.Getpid()), jxtaserve.TCP{}, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer host.Close()
	reply, err := host.Request(addr, method, nil, headers)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(reply.Payload)
	return err
}

// cmdMetrics dumps a daemon's live metric registry in Prometheus text
// format — the same bytes its /metrics endpoint serves.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("-addr required")
	}
	return fetchObservability(*addr, service.MethodMetrics, nil)
}

// cmdTraces dumps a daemon's recent despatch traces as indented span
// trees; -trace narrows to one trace ID.
func cmdTraces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address")
	traceID := fs.String("trace", "", "only this trace ID")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("-addr required")
	}
	var headers map[string]string
	if *traceID != "" {
		headers = map[string]string{"trace": *traceID}
	}
	return fetchObservability(*addr, service.MethodTraces, headers)
}

// cmdTenant dumps a daemon's fair-share scheduler ledger: per-tenant
// weights, in-flight slots, queue depth, admit/shed totals and the p99
// scheduling wait. With -tenant and -weight it first adjusts that
// tenant's fair-share weight on the daemon.
func cmdTenant(args []string) error {
	fs := flag.NewFlagSet("tenant", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address")
	tenant := fs.String("tenant", "", "tenant to adjust (with -weight)")
	weight := fs.Int("weight", 0, "new fair-share weight for -tenant")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("-addr required")
	}
	var headers map[string]string
	if *tenant != "" && *weight > 0 {
		headers = map[string]string{
			"set-tenant": *tenant,
			"set-weight": fmt.Sprint(*weight),
		}
	} else if (*tenant == "") != (*weight == 0) {
		return fmt.Errorf("-tenant and -weight must be given together")
	}
	return fetchObservability(*addr, service.MethodTenants, headers)
}

// cmdGroups dumps the capability groups a daemon can see — its own
// capability set and group key, then every group/<key> membership
// shard on the overlay with the members ranked by advertised CPU.
func cmdGroups(args []string) error {
	fs := flag.NewFlagSet("groups", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("-addr required")
	}
	return fetchObservability(*addr, service.MethodGroups, nil)
}

// cmdOverlay inspects the super-peer discovery overlay: it lists ring
// membership and the live adverts, and with -watch it holds a wildcard
// subscription open and streams the pushes as they arrive.
func cmdOverlay(args []string) error {
	fs := flag.NewFlagSet("overlay", flag.ExitOnError)
	superRing := fs.String("super-ring", "", "super-peer addresses")
	kind := fs.String("kind", "", "restrict listing to one advert kind")
	watch := fs.Duration("watch", 0, "hold a subscription open this long, streaming pushes")
	fs.Parse(args)
	superAddrs := splitAddrs(*superRing)
	if len(superAddrs) == 0 {
		return fmt.Errorf("-super-ring required")
	}
	host, err := jxtaserve.NewHost(fmt.Sprintf("overlay-%d", os.Getpid()), jxtaserve.TCP{}, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer host.Close()
	cl, err := overlay.NewClient(host, overlay.ClientOptions{
		Ring: overlay.NewRing(0, superAddrs...),
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	fmt.Println("super-peer ring:")
	for _, addr := range cl.Ring().Nodes() {
		fmt.Printf("  %s\n", addr)
	}
	ads, err := cl.Query(advert.Query{Kind: advert.Kind(*kind)}, 0)
	if err != nil {
		return err
	}
	fmt.Printf("live adverts: %d\n", len(ads))
	for _, ad := range ads {
		fmt.Printf("  %-10s %-24s %-20s %s\n", ad.Kind, ad.Name, ad.PeerID, ad.Addr)
	}
	if *watch <= 0 {
		return nil
	}

	events, err := cl.Subscribe("trianactl-watch", advert.Query{Kind: advert.Kind(*kind)})
	if err != nil {
		return err
	}
	fmt.Printf("watching pushes for %v...\n", *watch)
	timer := time.NewTimer(*watch)
	defer timer.Stop()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return nil
			}
			if ev.Retracted {
				fmt.Printf("  retract %-40s v%d\n", ev.ID, ev.Version)
			} else {
				fmt.Printf("  update  %-40s v%d peer=%s\n", ev.ID, ev.Version, ev.Ad.PeerID)
			}
		case <-timer.C:
			return nil
		}
	}
}

// cmdDrain asks a daemon to drain gracefully: stop admitting new
// farms, finish in-flight work, retract its adverts, hand off
// super-peer state and checkpoint. With -wait the command blocks until
// the drain completes and reports what it achieved; without it the
// drain is kicked off and current progress printed.
func cmdDrain(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon address")
	timeout := fs.Duration("timeout", service.DefaultDrainTimeout, "bound on waiting for in-flight work")
	wait := fs.Bool("wait", true, "block until the drain completes")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("-addr required")
	}
	host, err := jxtaserve.NewHost(fmt.Sprintf("drain-%d", os.Getpid()), jxtaserve.TCP{}, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer host.Close()
	headers := map[string]string{"timeout": timeout.String()}
	if *wait {
		headers["wait"] = "1"
	}
	reply, err := host.Request(*addr, service.MethodDrain, nil, headers)
	if err != nil {
		return err
	}
	fmt.Printf("state:             %s\n", reply.Header("state"))
	fmt.Printf("farms in flight:   %s\n", reply.Header("farms"))
	fmt.Printf("slots in flight:   %s\n", reply.Header("inflight"))
	fmt.Printf("adverts retracted: %s\n", reply.Header("advertsRetracted"))
	fmt.Printf("handoff adverts:   %s\n", reply.Header("handoffAdverts"))
	fmt.Printf("handoff chunks:    %s\n", reply.Header("handoffChunks"))
	fmt.Printf("drained cleanly:   %s\n", reply.Header("drained"))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	wfPath := fs.String("workflow", "", "task graph XML")
	rendezvous := fs.String("rendezvous", "", "rendezvous addresses")
	superRing := fs.String("super-ring", "", "super-peer addresses (overlay discovery)")
	iterations := fs.Int("iterations", 1, "source iterations")
	seed := fs.Int64("seed", 1, "random seed")
	minCPU := fs.Float64("min-cpu", 0, "minimum peer CPU MHz")
	local := fs.Bool("local", false, "force local execution (no distribution)")
	timeout := fs.Duration("timeout", 10*time.Minute, "run timeout")
	fs.Parse(args)
	if *wfPath == "" {
		return fmt.Errorf("-workflow required")
	}
	g, err := loadWorkflow(*wfPath)
	if err != nil {
		return err
	}
	svc, err := newControlPeer(*rendezvous, *superRing)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctl := controller.New(svc, log.Printf)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := ctl.Run(ctx, g, controller.RunOptions{
		Iterations: *iterations, Seed: *seed,
		MinCPUMHz: *minCPU, ForceLocal: *local,
	})
	if err != nil {
		return err
	}
	printReport(rep)
	return nil
}

// printReport renders the run outcome: plan, per-peer work, and every
// Grapher/Animator sink's contents.
func printReport(rep *controller.Report) {
	if rep.Plan != nil {
		fmt.Printf("plan: %s over %d peer(s) %v\n", rep.Plan.Kind, len(rep.Peers), rep.Peers)
	} else {
		fmt.Println("plan: local")
	}
	fmt.Printf("local elapsed: %v\n", rep.Result().Elapsed)
	peerIDs := make([]string, 0, len(rep.Dist.Remote))
	for id := range rep.Dist.Remote {
		peerIDs = append(peerIDs, id)
	}
	sort.Strings(peerIDs)
	for _, id := range peerIDs {
		total := 0
		for _, n := range rep.Dist.Remote[id] {
			total += n
		}
		fmt.Printf("remote %s: %d task executions\n", id, total)
	}
	taskNames := make([]string, 0, len(rep.Result().Processed))
	for name := range rep.Result().Processed {
		taskNames = append(taskNames, name)
	}
	sort.Strings(taskNames)
	for _, name := range taskNames {
		switch u := rep.Result().Unit(name).(type) {
		case *unitio.Grapher:
			fmt.Printf("\n== %s (saw %d data) ==\n", name, u.Seen())
			if last := u.Last(); last != nil {
				fmt.Printf("last datum: %s\n", describeDatum(last))
				if _, plottable := types.Floats(last); plottable {
					fmt.Println(u.RenderASCII(12, 72))
				}
			}
		case *unitio.Animator:
			frames := u.Frames()
			fmt.Printf("\n== %s: %d frames collected ==\n", name, len(frames))
		}
	}
}

func describeDatum(d types.Data) string {
	switch v := d.(type) {
	case *types.Table:
		return fmt.Sprintf("%s (%d rows x %d cols)", v.TypeName(), v.NumRows(), len(v.Columns))
	case *types.Spectrum:
		return fmt.Sprintf("%s (%d bins, peak %.1f Hz)", v.TypeName(), len(v.Amplitudes), v.PeakFrequency())
	default:
		return d.TypeName()
	}
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	example := fs.String("example", "figure1", "figure1|galaxy|inspiral|dbpipeline")
	out := fs.String("out", "", "output path (default stdout)")
	fs.Parse(args)
	var g *taskgraph.Graph
	switch *example {
	case "figure1":
		g = core.Figure1Workflow(core.Figure1Options{})
	case "galaxy":
		g = core.GalaxyWorkflow(core.GalaxyOptions{})
	case "inspiral":
		g = core.InspiralWorkflow(core.InspiralOptions{InjectOffset: 5000})
	case "dbpipeline":
		g = core.DBPipelineWorkflow(core.DBPipelineOptions{})
	default:
		return fmt.Errorf("unknown example %q", *example)
	}
	b, err := g.EncodeXML()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(*out, b, 0o644)
}
