// Command trianad runs a Triana peer on this machine — the paper's
// "point-and-click method to instantiate a service daemon" (§2). A
// resource owner starts it, the daemon enrols with the rendezvous
// network, advertises the machine's capabilities, and then accepts
// workflow fragments from controllers, executing them inside the sandbox
// with the owner's limits.
//
// Run a rendezvous peer (the bootstrap node other daemons enrol with):
//
//	trianad -listen 127.0.0.1:7100 -rendezvous-server
//
// Run donor peers against it:
//
//	trianad -listen 127.0.0.1:7101 -id alice -rendezvous 127.0.0.1:7100 -cpu 2600 -ram 1024
//
// Or run the replicated super-peer overlay instead of flat rendezvous —
// three super-peers, then donors publishing into the ring:
//
//	trianad -listen 127.0.0.1:7200 -super-peer
//	trianad -listen 127.0.0.1:7201 -super-peer -super-ring 127.0.0.1:7200
//	trianad -listen 127.0.0.1:7202 -super-peer -super-ring 127.0.0.1:7200,127.0.0.1:7201
//	trianad -listen 127.0.0.1:7210 -id alice -super-ring 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers registered on DefaultServeMux, served only behind -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/discovery"
	"consumergrid/internal/gateway"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/sandbox"
	"consumergrid/internal/service"
	"consumergrid/internal/units"
	"consumergrid/internal/webstatus"

	_ "consumergrid/internal/units/astro"
	_ "consumergrid/internal/units/convert"
	_ "consumergrid/internal/units/dbase"
	_ "consumergrid/internal/units/flow"
	_ "consumergrid/internal/units/imaging"
	_ "consumergrid/internal/units/mathx"
	_ "consumergrid/internal/units/signal"
	_ "consumergrid/internal/units/textproc"
	_ "consumergrid/internal/units/unitio"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
		id         = flag.String("id", "", "peer ID (default: host-derived)")
		rendezvous = flag.String("rendezvous", "", "comma-separated rendezvous addresses to enrol with")
		rdvServer  = flag.Bool("rendezvous-server", false, "run as a rendezvous peer instead of a donor")
		cpuMHz     = flag.Int("cpu", 2000, "advertised CPU capability (MHz)")
		ramMB      = flag.Int("ram", 512, "advertised free memory (MB)")
		group      = flag.String("group", "", "virtual peer group to join")
		memLimit   = flag.Int64("mem-limit", 512<<20, "sandbox memory budget for hosted workflows (bytes, 0=unlimited)")
		fsRoot     = flag.String("fs-root", "", "grant hosted workflows file access under this directory (default: none)")
		batchSlots = flag.Int("batch-slots", 0, "run jobs through a slot-limited batch gateway instead of fork (0=fork)")
		codeBudget = flag.Int64("code-budget", 0, "module cache budget in bytes (0=unlimited; small values model handhelds)")
		require    = flag.Bool("require-code", false, "refuse units whose module bundles have not been downloaded")
		ttl        = flag.Duration("advert-ttl", time.Hour, "service advertisement lifetime")
		httpAddr   = flag.String("http", "", "serve browser status pages on this address (e.g. 127.0.0.1:8080)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof profiling on this address (off by default)")
		certified  = flag.String("certified", "", "comma-separated certified unit names; empty allows everything")

		superRing   = flag.String("super-ring", "", "comma-separated super-peer addresses; non-empty switches discovery to the replicated overlay")
		superPeer   = flag.Bool("super-peer", false, "serve as an overlay super-peer: store and replicate adverts, push subscriptions, run anti-entropy")
		replication = flag.Int("replication", 0, "overlay advert replication factor R (0 = default 2)")
		syncEvery   = flag.Duration("sync-interval", 0, "super-peer anti-entropy interval (0 = default 15s, negative disables)")

		queryTimeout  = flag.Duration("query-timeout", 0, "discovery query timeout (0 = library default 500ms)")
		rpcTimeout    = flag.Duration("rpc-timeout", 0, "per-attempt deadline for outbound RPCs (0 = default 10s)")
		rpcAttempts   = flag.Int("rpc-attempts", 0, "max attempts per outbound RPC, first included (0 = default 3)")
		rpcBackoff    = flag.Duration("rpc-backoff", 0, "backoff before the second RPC attempt, doubled per retry (0 = default 25ms)")
		rpcBackoffCap = flag.Duration("rpc-backoff-max", 0, "backoff ceiling (0 = default 500ms)")
		hbInterval    = flag.Duration("heartbeat-interval", 0, "failure-detector ping interval (0 = default 1s)")
		hbMisses      = flag.Int("heartbeat-misses", 0, "consecutive missed heartbeats before a peer is declared dead (0 = default 3)")

		wireMux    = flag.Bool("wire-mux", true, "multiplex all traffic to a peer over one TCP connection")
		wireBinary = flag.Bool("wire-binary", true, "offer the binary wire codec (falls back to XML for peers that lack it)")
		wireWindow = flag.Int("wire-window", 64, "per-stream flow-control window in frames (must be positive; a window of 0 would stall every stream)")

		dataTier     = flag.Bool("data-tier", true, "join the content-addressed chunk tier: farm inputs travel as digest manifests resolved via donor caches and ring replicas (peers without it still get streamed payloads)")
		chunkCache   = flag.Int64("chunk-cache", 0, "chunk cache budget in bytes (0 = default 64 MiB)")
		chunkTimeout = flag.Duration("chunk-fetch-timeout", 0, "per-source chunk fetch deadline before the ladder falls back (0 = default 2s)")

		tenants      = flag.String("tenants", "", "comma-separated tenant:weight pairs seeding the fair-share despatch scheduler (e.g. alice:4,bob:1)")
		tenantWeight = flag.Int("tenant-weight", 1, "fair-share weight for tenants not listed in -tenants")
	)
	flag.Parse()

	cfg := daemonConfig{
		Replication:     *replication,
		ChunkCache:      *chunkCache,
		WireWindow:      *wireWindow,
		CPUMHz:          *cpuMHz,
		RAMMB:           *ramMB,
		RPCAttempts:     *rpcAttempts,
		HeartbeatMisses: *hbMisses,
		BatchSlots:      *batchSlots,
		CodeBudget:      *codeBudget,
		MemLimit:        *memLimit,
		AdvertTTL:       *ttl,
		Tenants:         *tenants,
		TenantWeight:    *tenantWeight,
	}
	if err := cfg.validate(); err != nil {
		log.Fatalf("trianad: %v", err)
	}
	tenantWeights, err := parseTenants(*tenants)
	if err != nil {
		log.Fatalf("trianad: %v", err)
	}

	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	if *rdvServer {
		runRendezvous(*id, *listen, jxtaserve.WireOptions{
			Mux:    *wireMux,
			Binary: *wireBinary && *wireMux,
			Window: *wireWindow,
		})
		return
	}

	pol := sandbox.Policy{MaxMemory: *memLimit}
	if *fsRoot != "" {
		pol.Allow = []sandbox.Permission{sandbox.FSRead, sandbox.FSWrite}
		pol.FSRoot = *fsRoot
	}
	var rm gateway.ResourceManager
	if *batchSlots > 0 {
		b, err := gateway.NewBatch(*batchSlots)
		if err != nil {
			log.Fatal(err)
		}
		rm = b
	}
	var rdvAddrs []string
	for _, a := range strings.Split(*rendezvous, ",") {
		if a = strings.TrimSpace(a); a != "" {
			rdvAddrs = append(rdvAddrs, a)
		}
	}
	var superAddrs []string
	for _, a := range strings.Split(*superRing, ",") {
		if a = strings.TrimSpace(a); a != "" {
			superAddrs = append(superAddrs, a)
		}
	}
	var overlayOpts *service.OverlayOptions
	if len(superAddrs) > 0 || *superPeer {
		overlayOpts = &service.OverlayOptions{
			SuperPeers:   superAddrs,
			SuperPeer:    *superPeer,
			Replication:  *replication,
			SyncInterval: *syncEvery,
		}
	}
	var certifiedList []string
	for _, u := range strings.Split(*certified, ",") {
		if u = strings.TrimSpace(u); u != "" {
			certifiedList = append(certifiedList, u)
		}
	}
	svc, err := service.New(service.Options{
		PeerID:    *id,
		Transport: jxtaserve.TCP{},
		Addr:      *listen,
		Discovery: discovery.Config{
			Mode:         discovery.ModeRendezvous,
			Rendezvous:   rdvAddrs,
			QueryTimeout: *queryTimeout,
		},
		Resilience: service.ResilienceOptions{
			RequestTimeout:    *rpcTimeout,
			MaxAttempts:       *rpcAttempts,
			BaseDelay:         *rpcBackoff,
			MaxDelay:          *rpcBackoffCap,
			HeartbeatInterval: *hbInterval,
			HeartbeatMisses:   *hbMisses,
		},
		Overlay: overlayOpts,
		Wire: jxtaserve.WireOptions{
			Mux:    *wireMux,
			Binary: *wireBinary && *wireMux,
			Window: *wireWindow,
		},
		DataTier: service.DataTierOptions{
			Enable:       *dataTier,
			CacheBytes:   *chunkCache,
			FetchTimeout: *chunkTimeout,
		},
		Sandbox:             pol,
		RM:                  rm,
		Tenants:             tenantWeights,
		TenantDefaultWeight: *tenantWeight,
		CodeBudget:          *codeBudget,
		CPUMHz:              *cpuMHz,
		FreeRAMMB:           *ramMB,
		PeerGroup:           *group,
		RequireCode:         *require,
		Certified:           certifiedList,
		Logf:                log.Printf,
	})
	if err != nil {
		log.Fatalf("trianad: %v", err)
	}
	defer svc.Close()
	if len(rdvAddrs) > 0 || overlayOpts != nil {
		if err := svc.Advertise(*ttl); err != nil {
			log.Fatalf("trianad: enrolment failed: %v", err)
		}
		// Keep the advertisement fresh at half its lifetime so rendezvous
		// caches age out peers that vanish.
		stop := svc.StartAdvertising(*ttl/2, *ttl)
		defer stop()
	}
	if *httpAddr != "" {
		srv, err := webstatus.Serve(*httpAddr, svc)
		if err != nil {
			log.Fatalf("trianad: status server: %v", err)
		}
		defer srv.Close()
		log.Printf("trianad: browser status at http://%s/", *httpAddr)
	}
	if *pprofAddr != "" {
		// DefaultServeMux carries only the pprof handlers here; nothing
		// else in the daemon registers on it.
		pprofSrv := &http.Server{Addr: *pprofAddr}
		go pprofSrv.ListenAndServe()
		defer pprofSrv.Close()
		log.Printf("trianad: pprof at http://%s/debug/pprof/", *pprofAddr)
	}
	log.Printf("trianad: peer %s listening at %s (%d units, cpu %d MHz, ram %d MB)",
		*id, svc.Addr(), len(units.Names()), *cpuMHz, *ramMB)

	wait()
	log.Printf("trianad: shutting down")
}

// runRendezvous hosts a bare rendezvous peer: a discovery cache that
// other daemons publish to and query.
func runRendezvous(id, listen string, wire jxtaserve.WireOptions) {
	var transport jxtaserve.Transport = jxtaserve.TCP{}
	if wire.Mux {
		mt := jxtaserve.NewMux(transport, wire)
		defer mt.Close()
		transport = mt
	}
	host, err := jxtaserve.NewHost(id, transport, listen)
	if err != nil {
		log.Fatalf("trianad: %v", err)
	}
	defer host.Close()
	discovery.NewNode(host, advert.NewCache(), discovery.Config{
		Mode: discovery.ModeRendezvous, IsRendezvous: true,
	})
	log.Printf("trianad: rendezvous %s listening at %s", id, host.Addr())
	wait()
	log.Printf("trianad: rendezvous shutting down")
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
