// Command trianad runs a Triana peer on this machine — the paper's
// "point-and-click method to instantiate a service daemon" (§2). A
// resource owner starts it, the daemon enrols with the rendezvous
// network, advertises the machine's capabilities, and then accepts
// workflow fragments from controllers, executing them inside the sandbox
// with the owner's limits.
//
// Run a rendezvous peer (the bootstrap node other daemons enrol with):
//
//	trianad -listen 127.0.0.1:7100 -rendezvous-server
//
// Run donor peers against it:
//
//	trianad -listen 127.0.0.1:7101 -id alice -rendezvous 127.0.0.1:7100 -cpu 2600 -ram 1024
//
// Or run the replicated super-peer overlay instead of flat rendezvous —
// three super-peers, then donors publishing into the ring:
//
//	trianad -listen 127.0.0.1:7200 -super-peer
//	trianad -listen 127.0.0.1:7201 -super-peer -super-ring 127.0.0.1:7200
//	trianad -listen 127.0.0.1:7202 -super-peer -super-ring 127.0.0.1:7200,127.0.0.1:7201
//	trianad -listen 127.0.0.1:7210 -id alice -super-ring 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers registered on DefaultServeMux, served only behind -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/discovery"
	"consumergrid/internal/gateway"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/lifecycle"
	"consumergrid/internal/sandbox"
	"consumergrid/internal/service"
	"consumergrid/internal/units"
	"consumergrid/internal/webstatus"

	_ "consumergrid/internal/units/astro"
	_ "consumergrid/internal/units/convert"
	_ "consumergrid/internal/units/dbase"
	_ "consumergrid/internal/units/flow"
	_ "consumergrid/internal/units/imaging"
	_ "consumergrid/internal/units/mathx"
	_ "consumergrid/internal/units/signal"
	_ "consumergrid/internal/units/textproc"
	_ "consumergrid/internal/units/unitio"
)

func main() { os.Exit(run()) }

// run hosts the daemon's whole life and returns its exit code, so
// deferred teardown executes before the process exits. Signals map to
// the lifecycle state machine: the first SIGTERM begins a graceful
// drain (finish in-flight farms, retract adverts, hand off super-peer
// state, checkpoint) and exits 0; SIGINT — or any second signal while
// draining — aborts fast with a non-zero code.
func run() int {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
		id         = flag.String("id", "", "peer ID (default: host-derived)")
		rendezvous = flag.String("rendezvous", "", "comma-separated rendezvous addresses to enrol with")
		rdvServer  = flag.Bool("rendezvous-server", false, "run as a rendezvous peer instead of a donor")
		cpuMHz     = flag.Int("cpu", 2000, "advertised CPU capability (MHz)")
		ramMB      = flag.Int("ram", 512, "advertised free memory (MB)")
		group      = flag.String("group", "", "virtual peer group to join")
		memLimit   = flag.Int64("mem-limit", 512<<20, "sandbox memory budget for hosted workflows (bytes, 0=unlimited)")
		fsRoot     = flag.String("fs-root", "", "grant hosted workflows file access under this directory (default: none)")
		batchSlots = flag.Int("batch-slots", 0, "run jobs through a slot-limited batch gateway instead of fork (0=fork)")
		codeBudget = flag.Int64("code-budget", 0, "module cache budget in bytes (0=unlimited; small values model handhelds)")
		require    = flag.Bool("require-code", false, "refuse units whose module bundles have not been downloaded")
		ttl        = flag.Duration("advert-ttl", time.Hour, "service advertisement lifetime")
		httpAddr   = flag.String("http", "", "serve browser status pages on this address (e.g. 127.0.0.1:8080)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof profiling on this address (off by default)")
		certified  = flag.String("certified", "", "comma-separated certified unit names; empty allows everything")

		superRing   = flag.String("super-ring", "", "comma-separated super-peer addresses; non-empty switches discovery to the replicated overlay")
		superPeer   = flag.Bool("super-peer", false, "serve as an overlay super-peer: store and replicate adverts, push subscriptions, run anti-entropy")
		replication = flag.Int("replication", 0, "overlay advert replication factor R (0 = default 2)")
		syncEvery   = flag.Duration("sync-interval", 0, "super-peer anti-entropy interval (0 = default 15s, negative disables)")

		queryTimeout  = flag.Duration("query-timeout", 0, "discovery query timeout (0 = library default 500ms)")
		rpcTimeout    = flag.Duration("rpc-timeout", 0, "per-attempt deadline for outbound RPCs (0 = default 10s)")
		rpcAttempts   = flag.Int("rpc-attempts", 0, "max attempts per outbound RPC, first included (0 = default 3)")
		rpcBackoff    = flag.Duration("rpc-backoff", 0, "backoff before the second RPC attempt, doubled per retry (0 = default 25ms)")
		rpcBackoffCap = flag.Duration("rpc-backoff-max", 0, "backoff ceiling (0 = default 500ms)")
		hbInterval    = flag.Duration("heartbeat-interval", 0, "failure-detector ping interval (0 = default 1s)")
		hbMisses      = flag.Int("heartbeat-misses", 0, "consecutive missed heartbeats before a peer is declared dead (0 = default 3)")

		wireMux    = flag.Bool("wire-mux", true, "multiplex all traffic to a peer over one TCP connection")
		wireBinary = flag.Bool("wire-binary", true, "offer the binary wire codec (falls back to XML for peers that lack it)")
		wireWindow = flag.Int("wire-window", 64, "per-stream flow-control window in frames (must be positive; a window of 0 would stall every stream)")

		dataTier     = flag.Bool("data-tier", true, "join the content-addressed chunk tier: farm inputs travel as digest manifests resolved via donor caches and ring replicas (peers without it still get streamed payloads)")
		chunkCache   = flag.Int64("chunk-cache", 0, "chunk cache budget in bytes (0 = default 64 MiB)")
		chunkTimeout = flag.Duration("chunk-fetch-timeout", 0, "per-source chunk fetch deadline before the ladder falls back (0 = default 2s)")

		tenants      = flag.String("tenants", "", "comma-separated tenant:weight pairs seeding the fair-share despatch scheduler (e.g. alice:4,bob:1)")
		tenantWeight = flag.Int("tenant-weight", 1, "fair-share weight for tenants not listed in -tenants")

		caps        = flag.String("caps", "", "extra capability key=value pairs joined into this peer's capability group identity (e.g. gpu=none,zone=eu)")
		requireCaps = flag.String("require-caps", "", "capability key=value pairs farms despatched by this peer require of donors (e.g. units=r-1a2b3c4d)")

		drainTimeout = flag.Duration("drain-timeout", service.DefaultDrainTimeout, "bound on waiting for in-flight work during a graceful drain (first SIGTERM)")
		stateDir     = flag.String("state-dir", "", "checkpoint daemon state here and restore it on restart (empty disables)")
		ckptEvery    = flag.Duration("checkpoint-interval", 0, "periodic state checkpoint interval (0 = default 30s, negative disables the ticker)")
	)
	flag.Parse()

	cfg := daemonConfig{
		Replication:     *replication,
		ChunkCache:      *chunkCache,
		WireWindow:      *wireWindow,
		CPUMHz:          *cpuMHz,
		RAMMB:           *ramMB,
		RPCAttempts:     *rpcAttempts,
		HeartbeatMisses: *hbMisses,
		BatchSlots:      *batchSlots,
		CodeBudget:      *codeBudget,
		MemLimit:        *memLimit,
		AdvertTTL:       *ttl,
		Tenants:         *tenants,
		TenantWeight:    *tenantWeight,
		Caps:            *caps,
		RequireCaps:     *requireCaps,
	}
	if err := cfg.validate(); err != nil {
		log.Fatalf("trianad: %v", err)
	}
	tenantWeights, err := parseTenants(*tenants)
	if err != nil {
		log.Fatalf("trianad: %v", err)
	}
	capsMap, err := parseCaps("-caps", *caps)
	if err != nil {
		log.Fatalf("trianad: %v", err)
	}
	requireCapsMap, err := parseCaps("-require-caps", *requireCaps)
	if err != nil {
		log.Fatalf("trianad: %v", err)
	}

	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	if *rdvServer {
		runRendezvous(*id, *listen, jxtaserve.WireOptions{
			Mux:    *wireMux,
			Binary: *wireBinary && *wireMux,
			Window: *wireWindow,
		})
		return 0
	}

	pol := sandbox.Policy{MaxMemory: *memLimit}
	if *fsRoot != "" {
		pol.Allow = []sandbox.Permission{sandbox.FSRead, sandbox.FSWrite}
		pol.FSRoot = *fsRoot
	}
	var rm gateway.ResourceManager
	if *batchSlots > 0 {
		b, err := gateway.NewBatch(*batchSlots)
		if err != nil {
			log.Fatal(err)
		}
		rm = b
	}
	var rdvAddrs []string
	for _, a := range strings.Split(*rendezvous, ",") {
		if a = strings.TrimSpace(a); a != "" {
			rdvAddrs = append(rdvAddrs, a)
		}
	}
	var superAddrs []string
	for _, a := range strings.Split(*superRing, ",") {
		if a = strings.TrimSpace(a); a != "" {
			superAddrs = append(superAddrs, a)
		}
	}
	var overlayOpts *service.OverlayOptions
	if len(superAddrs) > 0 || *superPeer {
		overlayOpts = &service.OverlayOptions{
			SuperPeers:   superAddrs,
			SuperPeer:    *superPeer,
			Replication:  *replication,
			SyncInterval: *syncEvery,
		}
	}
	var certifiedList []string
	for _, u := range strings.Split(*certified, ",") {
		if u = strings.TrimSpace(u); u != "" {
			certifiedList = append(certifiedList, u)
		}
	}
	// The runner owns start order (service → advertising → webstatus →
	// pprof) and stops everything in reverse on the way out, so adverts
	// stop renewing before the service's sockets close.
	var (
		svc     *service.Service
		stopAdv func()
	)
	runner := lifecycle.NewRunner(lifecycle.Options{Owner: *id, Logf: log.Printf})
	runner.Register(lifecycle.Component{
		Name: "service",
		Start: func() error {
			var err error
			svc, err = service.New(service.Options{
				PeerID:    *id,
				Transport: jxtaserve.TCP{},
				Addr:      *listen,
				Discovery: discovery.Config{
					Mode:         discovery.ModeRendezvous,
					Rendezvous:   rdvAddrs,
					QueryTimeout: *queryTimeout,
				},
				Resilience: service.ResilienceOptions{
					RequestTimeout:    *rpcTimeout,
					MaxAttempts:       *rpcAttempts,
					BaseDelay:         *rpcBackoff,
					MaxDelay:          *rpcBackoffCap,
					HeartbeatInterval: *hbInterval,
					HeartbeatMisses:   *hbMisses,
				},
				Overlay: overlayOpts,
				Wire: jxtaserve.WireOptions{
					Mux:    *wireMux,
					Binary: *wireBinary && *wireMux,
					Window: *wireWindow,
				},
				DataTier: service.DataTierOptions{
					Enable:       *dataTier,
					CacheBytes:   *chunkCache,
					FetchTimeout: *chunkTimeout,
				},
				Sandbox:             pol,
				RM:                  rm,
				Tenants:             tenantWeights,
				TenantDefaultWeight: *tenantWeight,
				Caps:                capsMap,
				RequireCaps:         requireCapsMap,
				CodeBudget:          *codeBudget,
				CPUMHz:              *cpuMHz,
				FreeRAMMB:           *ramMB,
				PeerGroup:           *group,
				RequireCode:         *require,
				Certified:           certifiedList,
				StateDir:            *stateDir,
				CheckpointInterval:  *ckptEvery,
				Logf:                log.Printf,
			})
			return err
		},
		Stop: func() error { return svc.Close() },
	})
	runner.Register(lifecycle.Component{
		Name: "advertising",
		Start: func() error {
			if len(rdvAddrs) == 0 && overlayOpts == nil {
				return nil
			}
			if err := svc.Advertise(*ttl); err != nil {
				return fmt.Errorf("enrolment failed: %w", err)
			}
			// Keep the advertisement fresh at half its lifetime so rendezvous
			// caches age out peers that vanish.
			stopAdv = svc.StartAdvertising(*ttl/2, *ttl)
			return nil
		},
		Stop: func() error {
			if stopAdv != nil {
				stopAdv()
			}
			return nil
		},
	})
	if *httpAddr != "" {
		// Supervised: a crashed status loop restarts with backoff instead
		// of silently taking the /healthz and /readyz probes down.
		runner.Supervise("webstatus", func(stop <-chan struct{}) error {
			srv := &http.Server{Addr: *httpAddr, Handler: webstatus.Handler(svc)}
			go func() { <-stop; srv.Close() }()
			log.Printf("trianad: browser status at http://%s/", *httpAddr)
			if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		}, lifecycle.SuperviseOptions{})
	}
	if *pprofAddr != "" {
		var pprofSrv *http.Server
		runner.Register(lifecycle.Component{
			Name: "pprof",
			Start: func() error {
				// DefaultServeMux carries only the pprof handlers here; nothing
				// else in the daemon registers on it.
				pprofSrv = &http.Server{Addr: *pprofAddr}
				go pprofSrv.ListenAndServe()
				log.Printf("trianad: pprof at http://%s/debug/pprof/", *pprofAddr)
				return nil
			},
			Stop: func() error { pprofSrv.Close(); return nil },
		})
	}

	if err := runner.StartAll(); err != nil {
		log.Printf("trianad: %v", err)
		return 1
	}
	runner.SetState(lifecycle.Running)
	log.Printf("trianad: peer %s listening at %s (%d units, cpu %d MHz, ram %d MB)",
		*id, svc.Addr(), len(units.Names()), *cpuMHz, *ramMB)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	first := <-sig
	if first != syscall.SIGTERM {
		// SIGINT: the operator wants out now — no drain, non-zero exit.
		log.Printf("trianad: %v — fast shutdown", first)
		runner.StopAll()
		return 1
	}

	log.Printf("trianad: SIGTERM — draining (timeout %v); send another signal to abort", *drainTimeout)
	runner.SetState(lifecycle.Draining)
	select {
	case <-svc.BeginDrain(*drainTimeout):
		rep := svc.DrainReport()
		log.Printf("trianad: drain complete (adverts retracted %d, handoff %d adverts / %d chunks, clean=%v); shutting down",
			rep.AdvertsRetracted, rep.HandoffAdverts, rep.HandoffChunks, rep.Drained)
		if err := runner.StopAll(); err != nil {
			log.Printf("trianad: shutdown: %v", err)
			return 1
		}
		return 0
	case second := <-sig:
		log.Printf("trianad: %v during drain — fast abort", second)
		runner.StopAll()
		return 1
	}
}

// runRendezvous hosts a bare rendezvous peer: a discovery cache that
// other daemons publish to and query.
func runRendezvous(id, listen string, wire jxtaserve.WireOptions) {
	var transport jxtaserve.Transport = jxtaserve.TCP{}
	if wire.Mux {
		mt := jxtaserve.NewMux(transport, wire)
		defer mt.Close()
		transport = mt
	}
	host, err := jxtaserve.NewHost(id, transport, listen)
	if err != nil {
		log.Fatalf("trianad: %v", err)
	}
	defer host.Close()
	discovery.NewNode(host, advert.NewCache(), discovery.Config{
		Mode: discovery.ModeRendezvous, IsRendezvous: true,
	})
	log.Printf("trianad: rendezvous %s listening at %s", id, host.Addr())
	wait()
	log.Printf("trianad: rendezvous shutting down")
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
