// Startup flag validation. The daemon used to accept nonsensical
// values silently — a negative -replication, a negative -chunk-cache,
// a -wire-window of 0 (which would stall every stream) — and either
// misbehave at runtime or quietly substitute a default. Now every
// numeric knob is range-checked up front and the daemon fails fast
// with a message naming the flag, before any socket is opened.
package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"consumergrid/internal/capgroup"
)

// daemonConfig carries the numeric flag values through validation —
// a plain struct so the table test can exercise every rule without
// touching the flag package or starting a daemon.
type daemonConfig struct {
	Replication     int
	ChunkCache      int64
	WireWindow      int
	CPUMHz          int
	RAMMB           int
	RPCAttempts     int
	HeartbeatMisses int
	BatchSlots      int
	CodeBudget      int64
	MemLimit        int64
	AdvertTTL       time.Duration
	Tenants         string
	TenantWeight    int
	Caps            string
	RequireCaps     string
}

// validate rejects out-of-range flag values with a message naming the
// flag. Zero keeps its documented "use the library default" meaning
// wherever the help text promises one; only values that could never be
// meant are refused.
func (c daemonConfig) validate() error {
	if c.Replication < 0 {
		return fmt.Errorf("-replication must be >= 0 (0 = default), got %d", c.Replication)
	}
	if c.ChunkCache < 0 {
		return fmt.Errorf("-chunk-cache must be >= 0 bytes (0 = default 64 MiB), got %d", c.ChunkCache)
	}
	if c.WireWindow <= 0 {
		return fmt.Errorf("-wire-window must be positive (a window of %d frames would stall every stream)", c.WireWindow)
	}
	if c.CPUMHz <= 0 {
		return fmt.Errorf("-cpu must be a positive MHz figure, got %d", c.CPUMHz)
	}
	if c.RAMMB < 0 {
		return fmt.Errorf("-ram must be >= 0 MB, got %d", c.RAMMB)
	}
	if c.RPCAttempts < 0 {
		return fmt.Errorf("-rpc-attempts must be >= 0 (0 = default), got %d", c.RPCAttempts)
	}
	if c.HeartbeatMisses < 0 {
		return fmt.Errorf("-heartbeat-misses must be >= 0 (0 = default), got %d", c.HeartbeatMisses)
	}
	if c.BatchSlots < 0 {
		return fmt.Errorf("-batch-slots must be >= 0 (0 = fork gateway), got %d", c.BatchSlots)
	}
	if c.CodeBudget < 0 {
		return fmt.Errorf("-code-budget must be >= 0 bytes (0 = unlimited), got %d", c.CodeBudget)
	}
	if c.MemLimit < 0 {
		return fmt.Errorf("-mem-limit must be >= 0 bytes (0 = unlimited), got %d", c.MemLimit)
	}
	if c.AdvertTTL <= 0 {
		return fmt.Errorf("-advert-ttl must be positive, got %v", c.AdvertTTL)
	}
	if c.TenantWeight <= 0 {
		return fmt.Errorf("-tenant-weight must be positive, got %d", c.TenantWeight)
	}
	if _, err := parseTenants(c.Tenants); err != nil {
		return err
	}
	if _, err := parseCaps("-caps", c.Caps); err != nil {
		return err
	}
	if _, err := parseCaps("-require-caps", c.RequireCaps); err != nil {
		return err
	}
	return nil
}

// parseCaps parses a -caps / -require-caps spec ("key=value,...") into
// the map service.Options takes, failing fast with a message naming
// the offending flag. The syntax rules (no duplicate keys, no empty
// keys or values, no canonical-form separators) live in capgroup so
// every parser agrees.
func parseCaps(flagName, spec string) (map[string]string, error) {
	out, err := capgroup.ParseList(spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", flagName, err)
	}
	return out, nil
}

// parseTenants parses the -tenants spec ("alice:4,bob:1") into the
// weight map Options.Tenants takes. Empty spec means no named tenants.
func parseTenants(spec string) (map[string]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(field, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants entry %q must be name:weight", field)
		}
		w, err := strconv.Atoi(strings.TrimSpace(weightStr))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenants entry %q: weight must be a positive integer", field)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("-tenants names tenant %q twice", name)
		}
		out[name] = w
	}
	return out, nil
}
