package main

import (
	"strings"
	"testing"
	"time"
)

// goodConfig is a fully-valid daemon configuration the table mutates
// one field at a time.
func goodConfig() daemonConfig {
	return daemonConfig{
		Replication:     2,
		ChunkCache:      64 << 20,
		WireWindow:      64,
		CPUMHz:          1000,
		RAMMB:           512,
		RPCAttempts:     3,
		HeartbeatMisses: 3,
		BatchSlots:      2,
		CodeBudget:      1 << 20,
		MemLimit:        1 << 30,
		AdvertTTL:       time.Minute,
		Tenants:         "alice:4,bob:1",
		TenantWeight:    1,
		Caps:            "gpu=none,zone=eu",
		RequireCaps:     "units=r-1a2b3c4d",
	}
}

// TestValidateRejectsNonsense is the satellite fail-fast table: every
// flag value that could never be meant is refused with a message naming
// the flag, and the zero-means-default conventions stay accepted.
func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*daemonConfig)
		wantFlag string // "" means the config must validate
	}{
		{"valid baseline", func(c *daemonConfig) {}, ""},
		{"zero-default knobs stay legal", func(c *daemonConfig) {
			c.Replication, c.ChunkCache, c.RPCAttempts = 0, 0, 0
			c.HeartbeatMisses, c.BatchSlots, c.CodeBudget, c.MemLimit = 0, 0, 0, 0
			c.RAMMB, c.Tenants = 0, ""
		}, ""},
		{"negative replication", func(c *daemonConfig) { c.Replication = -1 }, "-replication"},
		{"negative chunk cache", func(c *daemonConfig) { c.ChunkCache = -1 }, "-chunk-cache"},
		{"zero wire window", func(c *daemonConfig) { c.WireWindow = 0 }, "-wire-window"},
		{"negative wire window", func(c *daemonConfig) { c.WireWindow = -8 }, "-wire-window"},
		{"zero cpu", func(c *daemonConfig) { c.CPUMHz = 0 }, "-cpu"},
		{"negative ram", func(c *daemonConfig) { c.RAMMB = -1 }, "-ram"},
		{"negative rpc attempts", func(c *daemonConfig) { c.RPCAttempts = -2 }, "-rpc-attempts"},
		{"negative heartbeat misses", func(c *daemonConfig) { c.HeartbeatMisses = -1 }, "-heartbeat-misses"},
		{"negative batch slots", func(c *daemonConfig) { c.BatchSlots = -4 }, "-batch-slots"},
		{"negative code budget", func(c *daemonConfig) { c.CodeBudget = -1 }, "-code-budget"},
		{"negative mem limit", func(c *daemonConfig) { c.MemLimit = -1 }, "-mem-limit"},
		{"zero advert ttl", func(c *daemonConfig) { c.AdvertTTL = 0 }, "-advert-ttl"},
		{"zero tenant weight", func(c *daemonConfig) { c.TenantWeight = 0 }, "-tenant-weight"},
		{"malformed tenant spec", func(c *daemonConfig) { c.Tenants = "alice" }, "-tenants"},
		{"non-numeric tenant weight", func(c *daemonConfig) { c.Tenants = "alice:fast" }, "-tenants"},
		{"zero tenant spec weight", func(c *daemonConfig) { c.Tenants = "alice:0" }, "-tenants"},
		{"duplicate tenant", func(c *daemonConfig) { c.Tenants = "alice:1,alice:2" }, "-tenants"},
		{"empty caps stay legal", func(c *daemonConfig) { c.Caps, c.RequireCaps = "", " " }, ""},
		{"caps without equals", func(c *daemonConfig) { c.Caps = "gpu" }, "-caps"},
		{"caps with empty key", func(c *daemonConfig) { c.Caps = "=cuda" }, "-caps"},
		{"caps with empty value", func(c *daemonConfig) { c.Caps = "gpu=" }, "-caps"},
		{"caps with empty entry", func(c *daemonConfig) { c.Caps = "gpu=none,," }, "-caps"},
		{"duplicate caps key", func(c *daemonConfig) { c.Caps = "gpu=none,gpu=cuda" }, "-caps"},
		{"caps with reserved separator", func(c *daemonConfig) { c.Caps = "gpu=a;b" }, "-caps"},
		{"require-caps without equals", func(c *daemonConfig) { c.RequireCaps = "units" }, "-require-caps"},
		{"require-caps empty value", func(c *daemonConfig) { c.RequireCaps = "units= " }, "-require-caps"},
		{"duplicate require-caps key", func(c *daemonConfig) { c.RequireCaps = "mem=512MB,mem=1024MB" }, "-require-caps"},
	}
	for _, tc := range cases {
		cfg := goodConfig()
		tc.mutate(&cfg)
		err := cfg.validate()
		if tc.wantFlag == "" {
			if err != nil {
				t.Errorf("%s: validate() = %v, want accepted", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validate() accepted a nonsense value", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("%s: error %q does not name the offending flag %s", tc.name, err, tc.wantFlag)
		}
	}
}

func TestParseCaps(t *testing.T) {
	got, err := parseCaps("-caps", " gpu=none, zone = eu ,tier=gold")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"gpu": "none", "zone": "eu", "tier": "gold"}
	if len(got) != len(want) {
		t.Fatalf("parseCaps = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("parseCaps[%s] = %q, want %q", k, got[k], v)
		}
	}
	if m, err := parseCaps("-caps", "  "); err != nil || m != nil {
		t.Fatalf("blank spec = (%v, %v), want (nil, nil)", m, err)
	}
	if _, err := parseCaps("-require-caps", "a=1,a=2"); err == nil ||
		!strings.Contains(err.Error(), "-require-caps") {
		t.Fatalf("duplicate key error %v does not name the flag", err)
	}
}

func TestParseTenants(t *testing.T) {
	got, err := parseTenants(" alice:4, bob:1 ,carol:2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"alice": 4, "bob": 1, "carol": 2}
	if len(got) != len(want) {
		t.Fatalf("parseTenants = %v, want %v", got, want)
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("parseTenants[%s] = %d, want %d", name, got[name], w)
		}
	}
	if m, err := parseTenants("  "); err != nil || m != nil {
		t.Fatalf("blank spec = (%v, %v), want (nil, nil)", m, err)
	}
}
