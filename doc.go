// Package consumergrid is a Go reproduction of "Supporting Peer-2-Peer
// Interactions in the Consumer Grid" (Taylor, Rana, Philp, Wang, Shields;
// IPPS/IPDPS workshops 2003): the Triana visual-workflow system deployed
// as a peer-to-peer network of donated consumer machines.
//
// The library lives under internal/ (one package per subsystem — task
// graphs, unit toolboxes, dataflow engine, pipes, discovery, mobile code,
// sandbox, gateways, distribution policies, churn model) with the
// assembled system in internal/core. Executables are under cmd/
// (trianad, trianactl, gridsim) and runnable scenarios under examples/.
// See DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate every figure and table of
// the paper's evaluation via the internal/experiments harness:
//
//	go test -bench=. -benchmem
package consumergrid
