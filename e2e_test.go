package consumergrid_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndProcesses drives the real binaries the way a user would: a
// rendezvous peer, two donor daemons and the trianactl controller, each
// in its own OS process talking TCP — the deployment story of §3.5.
func TestEndToEndProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, pkg)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, b)
		}
		return out
	}
	trianad := build("trianad", "./cmd/trianad")
	trianactl := build("trianactl", "./cmd/trianactl")

	rdvAddr := freePort(t)
	d1Addr := freePort(t)
	d2Addr := freePort(t)

	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(trianad, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting trianad %v: %v", args, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	spawn("-listen", rdvAddr, "-rendezvous-server")
	waitListening(t, rdvAddr)
	spawn("-listen", d1Addr, "-id", "donor-1", "-rendezvous", rdvAddr, "-cpu", "2600")
	spawn("-listen", d2Addr, "-id", "donor-2", "-rendezvous", rdvAddr, "-cpu", "1400")
	waitListening(t, d1Addr)
	waitListening(t, d2Addr)

	run := func(args ...string) string {
		cmd := exec.Command(trianactl, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("trianactl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Enrolment is visible through discovery.
	peers := run("peers", "-rendezvous", rdvAddr)
	if !strings.Contains(peers, "donor-1") || !strings.Contains(peers, "donor-2") {
		t.Fatalf("peers output missing donors:\n%s", peers)
	}
	// Probe one daemon directly.
	ping := run("ping", "-addr", d1Addr)
	if !strings.Contains(ping, "donor-1") {
		t.Fatalf("ping output:\n%s", ping)
	}
	// Export, validate and run the Figure 1 workflow across the donors.
	wf := filepath.Join(bin, "fig1.xml")
	run("export", "-example", "figure1", "-out", wf)
	validate := run("validate", "-workflow", wf)
	if !strings.Contains(validate, "valid") {
		t.Fatalf("validate output:\n%s", validate)
	}
	result := run("run", "-workflow", wf, "-rendezvous", rdvAddr, "-iterations", "8", "-seed", "3")
	if !strings.Contains(result, "plan: parallel over 2 peer(s)") {
		t.Fatalf("run output missing plan:\n%s", result)
	}
	if !strings.Contains(result, "remote donor-1") || !strings.Contains(result, "remote donor-2") {
		t.Fatalf("run output missing donor work:\n%s", result)
	}
	if !strings.Contains(result, "peak") && !strings.Contains(result, "Grapher") {
		t.Fatalf("run output missing grapher section:\n%s", result)
	}
}

// freePort reserves a localhost TCP port and returns host:port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitListening polls until addr accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never started listening", addr)
}
