// ConsumerGrid: the full enrolment story over real TCP sockets, end to
// end — the closest runnable analogue of the paper's deployment model:
//
//  1. a rendezvous peer boots (the bootstrap node);
//
//  2. donor peers "install the daemon" (strict mobile-code mode: they
//     hold no application modules) and enrol by advertising CPU/RAM;
//
//  3. a controller discovers peers by capability, plans the Figure 1
//     group with the parallel policy, and despatches it;
//
//  4. donors fetch the module bundles on demand from the controller
//     (the Java-class download of §3), execute in their sandboxes, and
//     stream results back over named pipes.
//
//     go run ./examples/consumergrid
package main

import (
	"context"
	"fmt"
	"log"

	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/sandbox"
	"consumergrid/internal/service"
	"consumergrid/internal/types"
	"consumergrid/internal/units/unitio"
)

func main() {
	// Donated machines differ: a fast desktop, a mid box, a weak laptop
	// with a tight module-cache budget (the handheld model).
	donors := []service.Options{
		{CPUMHz: 2600, FreeRAMMB: 1024, Sandbox: sandbox.AllowCompute(1 << 30)},
		{CPUMHz: 1800, FreeRAMMB: 512, Sandbox: sandbox.AllowCompute(512 << 20)},
		{CPUMHz: 900, FreeRAMMB: 128, Sandbox: sandbox.AllowCompute(128 << 20), CodeBudget: 64 << 10},
	}
	grid, err := core.NewGrid(core.GridOptions{
		Transport:   jxtaserve.TCP{},
		Peers:       len(donors),
		PeerOptions: func(i int) service.Options { return donors[i] },
		RequireCode: true, // strict mobile-code semantics
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	fmt.Println("enrolled donor peers (over TCP):")
	for i, w := range grid.Workers {
		fmt.Printf("  %-10s %s  %4d MHz %5d MB\n",
			w.PeerID(), w.Addr(), donors[i].CPUMHz, donors[i].FreeRAMMB)
	}

	// Discovery by capability: only donors with >= 1000 MHz qualify.
	peers, err := grid.Controller.DiscoverPeers(controller.RunOptions{MinCPUMHz: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovery with cpuMHz >= 1000 finds %d of %d peers:\n", len(peers), len(donors))
	for _, p := range peers {
		fmt.Printf("  %s at %s\n", p.ID, p.Addr)
	}

	// Run Figure 1 with the farm spread over the qualifying donors.
	rep, err := grid.Run(context.Background(),
		core.Figure1Workflow(core.Figure1Options{Samples: 1024, NoiseSigma: 5}),
		controller.RunOptions{Iterations: 20, Seed: 9, MinCPUMHz: 1000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplan: %s over %v\n", rep.Plan.Kind, rep.Peers)
	for _, w := range grid.Workers {
		fetches, bytes := w.Fetcher().Fetches()
		fmt.Printf("  %s fetched %d module bundles (%d bytes) on demand\n",
			w.PeerID(), fetches, bytes)
	}
	spec := rep.Result().Unit("Grapher").(*unitio.Grapher).Last().(*types.Spectrum)
	fmt.Printf("\nrecovered spectrum peak: %.0f Hz after 20 averaged iterations\n",
		spec.PeakFrequency())
	fmt.Println("the weak 900 MHz laptop was filtered out by the capability query;")
	fmt.Println("the two qualifying donors split the farm and pulled code on demand.")
}
