// DBPipeline: the §3.6.3 scenario. A user composes the four-stage
// pipeline — data access, data manipulation, data visualisation, data
// verification — and the manipulate/verify pair is bound to discovered
// peers with the peer-to-peer policy, each stage on its own resource.
//
//	go run ./examples/dbpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/types"
	"consumergrid/internal/units/dbase"
	"consumergrid/internal/units/unitio"
)

func main() {
	grid, err := core.NewGrid(core.GridOptions{Peers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	wf := core.DBPipelineWorkflow(core.DBPipelineOptions{
		Dataset:         "stars",
		Rows:            1200,
		MinFilter:       "distance_pc:800", // keep the distant stars
		VisualiseColumn: "distance_pc",
		NumericColumns:  "magnitude,distance_pc",
	})
	rep, err := grid.Run(context.Background(), wf, controller.RunOptions{
		Iterations: 1, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline plan: %s\n", rep.Plan.Kind)
	body := rep.Annotated.Find("ServiceGroup").Group
	for _, stage := range []string{"Manipulate", "Verify"} {
		fmt.Printf("  stage %-10s -> peer %s\n", stage, body.Find(stage).Placement)
	}

	verdict := rep.Result().Unit("Verdicts").(*unitio.Grapher).Last().(*types.Table)
	fmt.Println("\nverification service verdicts:")
	for _, row := range verdict.Rows {
		fmt.Printf("  %-22s ok=%-5s %s\n", row[0], row[1], row[2])
	}
	fmt.Printf("overall: passed=%v\n", dbase.Passed(verdict))

	hist := rep.Result().Unit("Chart").(*unitio.Grapher).Last().(*types.Histogram)
	fmt.Println("\nvisualisation service: distance distribution (parsecs):")
	peak := 0.0
	for _, c := range hist.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range hist.Counts {
		lo := hist.Lo + float64(i)*hist.Width
		bar := strings.Repeat("#", int(c/peak*40))
		fmt.Printf("  %7.0f-%7.0f | %-40s %4.0f\n", lo, lo+hist.Width, bar, c)
	}
}
