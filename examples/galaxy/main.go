// Galaxy: the §3.6.1 scenario. A synthetic galaxy-formation run emits
// particle snapshots; the [ViewProject -> ColumnDensity] group is farmed
// across donated peers with the parallel policy; frames return out of
// order and the Animator reassembles the animation. The example then
// changes the viewing angle and re-renders, as the paper describes
// ("messages are then sent to all the distributed servers so that the
// new data slice through each time frame can be calculated").
//
//	go run ./examples/galaxy
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/types"
	"consumergrid/internal/units/unitio"
)

const frames = 10

func main() {
	grid, err := core.NewGrid(core.GridOptions{Peers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	for _, view := range []struct {
		name               string
		azimuth, elevation float64
	}{
		{"face-on", 0, 0},
		{"rotated 60° / tilted 30°", 60, 30},
	} {
		wf := core.GalaxyWorkflow(core.GalaxyOptions{
			Particles: 3000, Width: 72, Height: 24, // terminal-shaped frames
			Azimuth: view.azimuth, Elevation: view.elevation,
			Seed: 42,
		})
		rep, err := grid.Run(context.Background(), wf, controller.RunOptions{
			Iterations: frames, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		anim := rep.Result().Unit("Animator").(*unitio.Animator)
		fmt.Printf("\n=== view: %s — %d frames farmed over %d peers ===\n",
			view.name, frames, len(rep.Peers))
		for peer, counts := range rep.Dist.Remote {
			fmt.Printf("  %s rendered %d frames\n", peer, counts["Render"])
		}
		// Show first and last frame side by side as ASCII density maps.
		fs := anim.Frames()
		fmt.Printf("\nframe 0 (t=start):\n%s", asciiFrame(fs[0]))
		fmt.Printf("\nframe %d (t=end, clusters collapsed and drifted):\n%s",
			frames-1, asciiFrame(fs[frames-1]))
	}
}

// asciiFrame renders a column-density image as character shades.
func asciiFrame(im *types.Image) string {
	const shades = " .:-=+*#%@"
	peak := im.MaxIntensity()
	if peak == 0 {
		peak = 1
	}
	var b strings.Builder
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			level := int(im.At(x, y) / peak * float64(len(shades)-1))
			b.WriteByte(shades[level])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
