// Inspiral: the §3.6.2 GEO600 scenario at laptop scale. Detector noise
// chunks with one injected chirp flow through a matched-filter bank
// distributed across peers; the run reports which template fired, where,
// and at what SNR — then sizes the full-scale farm with the measured
// kernel cost and the paper's numbers.
//
//	go run ./examples/inspiral
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"time"

	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/dsp"
	"consumergrid/internal/types"
	"consumergrid/internal/units/unitio"
)

func main() {
	grid, err := core.NewGrid(core.GridOptions{Peers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	const injectAt = 5000
	wf := core.InspiralWorkflow(core.InspiralOptions{
		ChunkSamples: 16384, SamplingRate: 2000,
		Templates: 9, TemplateLen: 1024,
		InjectOffset: injectAt, InjectAmplitude: 3,
		NoiseSigma: 1,
	})
	rep, err := grid.Run(context.Background(), wf, controller.RunOptions{
		Iterations: 4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tab := rep.Result().Unit("Results").(*unitio.Grapher).Last().(*types.Table)
	fmt.Println("matched-filter report for the final chunk:")
	fmt.Printf("%-10s %-8s %-9s %s\n", "template", "f0(Hz)", "peakLag", "SNR")
	snrCol, lagCol := tab.ColumnIndex("snr"), tab.ColumnIndex("peakLag")
	bestSNR := 0.0
	bestLag := 0
	for _, row := range tab.Rows {
		fmt.Printf("%-10s %-8s %-9s %s\n", row[0], row[1], row[2], row[3])
		if snr, _ := strconv.ParseFloat(row[snrCol], 64); snr > bestSNR {
			bestSNR = snr
			bestLag, _ = strconv.Atoi(row[lagCol])
		}
	}
	fmt.Printf("\nloudest response: SNR %.1f at sample %d (injection was at %d)\n",
		bestSNR, bestLag, injectAt)

	// Size the real search with this machine's kernel: the paper's 7.2 MB
	// chunks (900 s x 2000 S/s) against 5,000-10,000 templates.
	data := dsp.GaussianNoise(65536, 1, rand.New(rand.NewSource(3)))
	tpl := dsp.TemplateBank(1, 2048, 40, 200, 400, 2000)[0]
	start := time.Now()
	if _, err := dsp.CrossCorrelate(data, tpl); err != nil {
		log.Fatal(err)
	}
	perTpl := time.Since(start)
	// O(n log n) scaling from 65,536 samples to the 1.8 M-sample chunk.
	perTplFull := time.Duration(float64(perTpl) * (1800000.0 / 65536) * 1.24)
	fmt.Println("\nfull-scale sizing with this machine's kernel:")
	for _, bank := range []int{5000, 10000} {
		chunkTime := perTplFull * time.Duration(bank)
		peers := (chunkTime + 900*time.Second - 1) / (900 * time.Second)
		fmt.Printf("  %6d templates: %7.1f min per 15-minute chunk -> >= %d always-on peers\n",
			bank, chunkTime.Minutes(), peers)
	}
	fmt.Println("(the paper: ~5 h per chunk on a 2 GHz PC in 2003 C code -> 20 PCs, more under churn)")
}
