// Quickstart: build the paper's Figure 1 workflow programmatically, run
// it on the local engine (no networking), and watch AccumStat pull the
// 1 kHz sine out of heavy Gaussian noise — the Figure 2 result — on an
// ASCII plot.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"consumergrid/internal/core"
	"consumergrid/internal/engine"
	"consumergrid/internal/policy"
	"consumergrid/internal/types"
	"consumergrid/internal/units/unitio"
)

func main() {
	// The workflow of Code Segment 1: Wave -> [Gaussian -> PowerSpec] ->
	// AccumStat -> Grapher. Policy Local keeps everything in-process.
	wf := core.Figure1Workflow(core.Figure1Options{
		Frequency:    1000,
		SamplingRate: 8000,
		Samples:      1024,
		NoiseSigma:   5, // bury the signal, as in Figure 2
		Policy:       policy.NameLocal,
	})

	for _, iterations := range []int{1, 20} {
		res, err := engine.Run(context.Background(), wf, engine.Options{
			Iterations: iterations,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		grapher := res.Unit("Grapher").(*unitio.Grapher)
		spec := grapher.Last().(*types.Spectrum)
		fmt.Printf("\nAveraged power spectrum after %d iteration(s) — peak at %.0f Hz:\n",
			iterations, spec.PeakFrequency())
		fmt.Println(grapher.RenderASCII(12, 72))
	}
	fmt.Println("After 1 iteration the 1 kHz line is buried; after 20 the noise floor")
	fmt.Println("has averaged flat and the peak stands out — the paper's Figure 2.")
}
