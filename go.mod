module consumergrid

go 1.22
