package consumergrid_test

import (
	"fmt"

	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/astro"
	"consumergrid/internal/units/imaging"
)

// newGalaxyGen and newRenderer give the kernel benches typed access to
// the toolbox units without reaching into their internals.
func newGalaxyGen(particles int) (*astro.GalaxyGen, error) {
	u, err := units.New(astro.NameGalaxyGen,
		units.Params{"particles": fmt.Sprintf("%d", particles)})
	if err != nil {
		return nil, err
	}
	return u.(*astro.GalaxyGen), nil
}

func newRenderer(w, h int) (*imaging.ColumnDensity, error) {
	u, err := units.New(imaging.NameColumnDensity,
		units.Params{"width": fmt.Sprintf("%d", w), "height": fmt.Sprintf("%d", h)})
	if err != nil {
		return nil, err
	}
	return u.(*imaging.ColumnDensity), nil
}

var _ types.Data = (*types.SampleSet)(nil)
