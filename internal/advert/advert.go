// Package advert implements JXTA-style advertisements for the Consumer
// Grid: small signed-ish XML documents by which peers announce themselves,
// their pipes, their hosted module bundles and their services (§3.4 "It
// advertises its input and output nodes as JXTA pipes"; §4 "Peer naming,
// grouping, and advertising is achieved using JXTA").
//
// An advertisement carries free-form string attributes; discovery matches
// on them either exactly or with numeric lower bounds (the paper's
// "discovered based on very simple attributes – such as CPU capability
// and available free memory").
package advert

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies an advertisement.
type Kind string

// The advertisement kinds used by the Consumer Grid.
const (
	KindPeer    Kind = "peer"
	KindPipe    Kind = "pipe"
	KindModule  Kind = "module"
	KindService Kind = "service"
	// KindGroup adverts declare capability-group membership: the Name is
	// the group key, so the overlay's topical placement replicates each
	// group's membership shard on the R owners of its key.
	KindGroup Kind = "group"
)

// Well-known attribute names.
const (
	// AttrCPUMHz advertises peer CPU capability in MHz.
	AttrCPUMHz = "cpuMHz"
	// AttrFreeRAMMB advertises available memory in MB.
	AttrFreeRAMMB = "freeRAMMB"
	// AttrGroup names the virtual peer group the publisher belongs to.
	AttrGroup = "group"
	// AttrDirection marks pipe adverts as "input" or "output".
	AttrDirection = "direction"
)

// Advertisement is one published document.
type Advertisement struct {
	Kind Kind
	// ID is unique per advertisement (publisher-assigned).
	ID string
	// PeerID identifies the publishing peer.
	PeerID string
	// Name is the advertised object's name: the pipe's unique connection
	// label, the module's unit name, the service's type.
	Name string
	// Version pins module bundles.
	Version string
	// Addr is the endpoint to contact for binding (host:port for TCP,
	// node name for simnet transports).
	Addr string
	// Expires is the wall-clock expiry; zero means never.
	Expires time.Time
	// Attributes carries discovery attributes.
	Attributes map[string]string
}

// Attr returns the named attribute or "".
func (a *Advertisement) Attr(key string) string {
	if a.Attributes == nil {
		return ""
	}
	return a.Attributes[key]
}

// SetAttr assigns an attribute, allocating the map on first use.
func (a *Advertisement) SetAttr(key, val string) {
	if a.Attributes == nil {
		a.Attributes = make(map[string]string)
	}
	a.Attributes[key] = val
}

// Expired reports whether the advert is past its expiry at time now.
func (a *Advertisement) Expired(now time.Time) bool {
	return !a.Expires.IsZero() && now.After(a.Expires)
}

// Clone deep-copies the advertisement.
func (a *Advertisement) Clone() *Advertisement {
	c := *a
	if a.Attributes != nil {
		c.Attributes = make(map[string]string, len(a.Attributes))
		for k, v := range a.Attributes {
			c.Attributes[k] = v
		}
	}
	return &c
}

// Validate reports structural problems.
func (a *Advertisement) Validate() error {
	switch a.Kind {
	case KindPeer, KindPipe, KindModule, KindService, KindGroup:
	default:
		return fmt.Errorf("advert: unknown kind %q", a.Kind)
	}
	if a.ID == "" {
		return fmt.Errorf("advert: missing ID")
	}
	if a.PeerID == "" {
		return fmt.Errorf("advert: missing PeerID")
	}
	if a.Kind != KindPeer && a.Name == "" {
		return fmt.Errorf("advert: %s advert missing Name", a.Kind)
	}
	return nil
}

// --- XML codec --------------------------------------------------------------

type xmlAdvert struct {
	XMLName xml.Name  `xml:"advertisement"`
	Kind    string    `xml:"kind,attr"`
	ID      string    `xml:"id,attr"`
	PeerID  string    `xml:"peer,attr"`
	Name    string    `xml:"name,attr,omitempty"`
	Version string    `xml:"version,attr,omitempty"`
	Addr    string    `xml:"addr,attr,omitempty"`
	Expires string    `xml:"expires,attr,omitempty"`
	Attrs   []xmlAttr `xml:"attr"`
}

type xmlAttr struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// MarshalText renders the advertisement as an XML document fragment.
func (a *Advertisement) MarshalText() ([]byte, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	x := xmlAdvert{
		Kind: string(a.Kind), ID: a.ID, PeerID: a.PeerID,
		Name: a.Name, Version: a.Version, Addr: a.Addr,
	}
	if !a.Expires.IsZero() {
		x.Expires = a.Expires.UTC().Format(time.RFC3339Nano)
	}
	keys := make([]string, 0, len(a.Attributes))
	for k := range a.Attributes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		x.Attrs = append(x.Attrs, xmlAttr{Name: k, Value: a.Attributes[k]})
	}
	return xml.Marshal(x)
}

// UnmarshalText parses an XML advertisement.
func (a *Advertisement) UnmarshalText(b []byte) error {
	var x xmlAdvert
	if err := xml.Unmarshal(b, &x); err != nil {
		return fmt.Errorf("advert: bad XML: %w", err)
	}
	*a = Advertisement{
		Kind: Kind(x.Kind), ID: x.ID, PeerID: x.PeerID,
		Name: x.Name, Version: x.Version, Addr: x.Addr,
	}
	if x.Expires != "" {
		t, err := time.Parse(time.RFC3339Nano, x.Expires)
		if err != nil {
			return fmt.Errorf("advert: bad expiry: %w", err)
		}
		a.Expires = t
	}
	for _, at := range x.Attrs {
		a.SetAttr(at.Name, at.Value)
	}
	return a.Validate()
}

// --- queries ----------------------------------------------------------------

// Query selects advertisements. Zero fields match everything of the kind.
type Query struct {
	Kind Kind
	// Name matches exactly, or by prefix when it ends in '*'.
	Name string
	// PeerID restricts to one publisher when non-empty.
	PeerID string
	// Attrs must match exactly.
	Attrs map[string]string
	// MinAttrs require the advert attribute to parse as a number >= the
	// bound ("cpuMHz >= 500").
	MinAttrs map[string]float64
}

// Matches reports whether ad satisfies the query.
func (q Query) Matches(ad *Advertisement) bool {
	if q.Kind != "" && ad.Kind != q.Kind {
		return false
	}
	if q.PeerID != "" && ad.PeerID != q.PeerID {
		return false
	}
	if q.Name != "" {
		if strings.HasSuffix(q.Name, "*") {
			if !strings.HasPrefix(ad.Name, strings.TrimSuffix(q.Name, "*")) {
				return false
			}
		} else if ad.Name != q.Name {
			return false
		}
	}
	for k, v := range q.Attrs {
		if ad.Attr(k) != v {
			return false
		}
	}
	for k, bound := range q.MinAttrs {
		f, err := strconv.ParseFloat(ad.Attr(k), 64)
		if err != nil || f < bound {
			return false
		}
	}
	return true
}

// --- codec for queries (they travel inside discovery messages) --------------

type xmlQuery struct {
	XMLName xml.Name  `xml:"query"`
	Kind    string    `xml:"kind,attr,omitempty"`
	Name    string    `xml:"name,attr,omitempty"`
	PeerID  string    `xml:"peer,attr,omitempty"`
	Attrs   []xmlAttr `xml:"attr"`
	Mins    []xmlAttr `xml:"min"`
}

// MarshalText renders the query as XML.
func (q Query) MarshalText() ([]byte, error) {
	x := xmlQuery{Kind: string(q.Kind), Name: q.Name, PeerID: q.PeerID}
	keys := make([]string, 0, len(q.Attrs))
	for k := range q.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		x.Attrs = append(x.Attrs, xmlAttr{Name: k, Value: q.Attrs[k]})
	}
	keys = keys[:0]
	for k := range q.MinAttrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		x.Mins = append(x.Mins, xmlAttr{Name: k,
			Value: strconv.FormatFloat(q.MinAttrs[k], 'g', -1, 64)})
	}
	return xml.Marshal(x)
}

// UnmarshalText parses a query from XML.
func (q *Query) UnmarshalText(b []byte) error {
	var x xmlQuery
	if err := xml.Unmarshal(b, &x); err != nil {
		return fmt.Errorf("advert: bad query XML: %w", err)
	}
	*q = Query{Kind: Kind(x.Kind), Name: x.Name, PeerID: x.PeerID}
	for _, at := range x.Attrs {
		if q.Attrs == nil {
			q.Attrs = make(map[string]string)
		}
		q.Attrs[at.Name] = at.Value
	}
	for _, at := range x.Mins {
		f, err := strconv.ParseFloat(at.Value, 64)
		if err != nil {
			return fmt.Errorf("advert: bad min bound %q: %w", at.Value, err)
		}
		if q.MinAttrs == nil {
			q.MinAttrs = make(map[string]float64)
		}
		q.MinAttrs[at.Name] = f
	}
	return nil
}

// --- cache ------------------------------------------------------------------

// Cache is a peer's local advertisement store with expiry. Rendezvous
// peers keep large caches; edge peers keep what they have published and
// learned.
type Cache struct {
	mu  sync.RWMutex
	ads map[string]*Advertisement // by ID
	// Now is injectable for tests; defaults to time.Now.
	Now func() time.Time
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{ads: make(map[string]*Advertisement), Now: time.Now}
}

// Put stores (a clone of) the advertisement, replacing any previous
// version with the same ID.
func (c *Cache) Put(ad *Advertisement) error {
	if err := ad.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	c.ads[ad.ID] = ad.Clone()
	c.mu.Unlock()
	return nil
}

// Remove deletes the advertisement with the given ID, reporting whether
// it was present.
func (c *Cache) Remove(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.ads[id]
	delete(c.ads, id)
	return ok
}

// RemovePeer deletes every advertisement from one publisher (used when a
// peer is observed to have left), returning the number removed.
func (c *Cache) RemovePeer(peerID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, ad := range c.ads {
		if ad.PeerID == peerID {
			delete(c.ads, id)
			n++
		}
	}
	return n
}

// Find returns up to limit matching, unexpired advertisements (limit <= 0
// means unlimited), sorted by ID for determinism.
func (c *Cache) Find(q Query, limit int) []*Advertisement {
	now := c.Now()
	c.mu.RLock()
	var out []*Advertisement
	for _, ad := range c.ads {
		if ad.Expired(now) || !q.Matches(ad) {
			continue
		}
		out = append(out, ad.Clone())
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Purge drops expired advertisements, returning the number removed.
func (c *Cache) Purge() int {
	now := c.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, ad := range c.ads {
		if ad.Expired(now) {
			delete(c.ads, id)
			n++
		}
	}
	return n
}

// Len reports the number of stored advertisements (including expired ones
// not yet purged).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ads)
}

// --- list codec ---------------------------------------------------------

// EncodeList frames a slice of advertisements for transport payloads
// (each item XML-encoded, length-prefixed).
func EncodeList(ads []*Advertisement) ([]byte, error) {
	var out []byte
	var tmp [10]byte
	n := putUvarint(tmp[:], uint64(len(ads)))
	out = append(out, tmp[:n]...)
	for _, ad := range ads {
		b, err := ad.MarshalText()
		if err != nil {
			return nil, err
		}
		n := putUvarint(tmp[:], uint64(len(b)))
		out = append(out, tmp[:n]...)
		out = append(out, b...)
	}
	return out, nil
}

// DecodeList parses a payload written by EncodeList.
func DecodeList(b []byte) ([]*Advertisement, error) {
	count, n := getUvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("advert: bad list header")
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("advert: list too large (%d)", count)
	}
	b = b[n:]
	out := make([]*Advertisement, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := getUvarint(b)
		if n <= 0 || uint64(len(b[n:])) < l {
			return nil, fmt.Errorf("advert: truncated list")
		}
		b = b[n:]
		ad := new(Advertisement)
		if err := ad.UnmarshalText(b[:l]); err != nil {
			return nil, err
		}
		b = b[l:]
		out = append(out, ad)
	}
	return out, nil
}

// putUvarint and getUvarint mirror encoding/binary to keep the import
// list stable.
func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

func getUvarint(buf []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range buf {
		if i == 10 {
			return 0, -(i + 1)
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}
