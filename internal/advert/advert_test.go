package advert

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleAd() *Advertisement {
	ad := &Advertisement{
		Kind: KindPeer, ID: "ad-1", PeerID: "peer-1",
		Addr: "10.0.0.1:7000",
	}
	ad.SetAttr(AttrCPUMHz, "2000")
	ad.SetAttr(AttrFreeRAMMB, "512")
	ad.SetAttr(AttrGroup, "cardiff")
	return ad
}

func TestValidate(t *testing.T) {
	if err := sampleAd().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Advertisement{
		{Kind: "bogus", ID: "x", PeerID: "p"},
		{Kind: KindPeer, PeerID: "p"},            // no ID
		{Kind: KindPeer, ID: "x"},                // no peer
		{Kind: KindPipe, ID: "x", PeerID: "p"},   // pipe without name
		{Kind: KindModule, ID: "x", PeerID: "p"}, // module without name
	}
	for i, ad := range cases {
		if err := ad.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	ad := sampleAd()
	ad.Expires = time.Date(2003, 6, 22, 12, 0, 0, 0, time.UTC)
	b, err := ad.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "cpuMHz") {
		t.Errorf("xml = %s", b)
	}
	var got Advertisement
	if err := got.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if got.ID != ad.ID || got.Attr(AttrCPUMHz) != "2000" || !got.Expires.Equal(ad.Expires) {
		t.Errorf("round trip lost fields: %+v", got)
	}
	// Deterministic encoding.
	b2, _ := ad.MarshalText()
	if string(b) != string(b2) {
		t.Error("encoding not deterministic")
	}
	// Bad inputs.
	if err := new(Advertisement).UnmarshalText([]byte("<adver")); err == nil {
		t.Error("garbage accepted")
	}
	if err := new(Advertisement).UnmarshalText(
		[]byte(`<advertisement kind="peer" id="x" peer="p" expires="not-a-time"/>`)); err == nil {
		t.Error("bad expiry accepted")
	}
}

func TestQueryMatching(t *testing.T) {
	ad := sampleAd()
	cases := []struct {
		q    Query
		want bool
	}{
		{Query{}, true},
		{Query{Kind: KindPeer}, true},
		{Query{Kind: KindPipe}, false},
		{Query{PeerID: "peer-1"}, true},
		{Query{PeerID: "peer-2"}, false},
		{Query{Attrs: map[string]string{AttrGroup: "cardiff"}}, true},
		{Query{Attrs: map[string]string{AttrGroup: "swansea"}}, false},
		{Query{MinAttrs: map[string]float64{AttrCPUMHz: 1000}}, true},
		{Query{MinAttrs: map[string]float64{AttrCPUMHz: 3000}}, false},
		{Query{MinAttrs: map[string]float64{"missing": 1}}, false},
		{Query{MinAttrs: map[string]float64{AttrGroup: 1}}, false}, // non-numeric attr
	}
	for i, c := range cases {
		if got := c.q.Matches(ad); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
	pipe := &Advertisement{Kind: KindPipe, ID: "p", PeerID: "x", Name: "app1/conn/0"}
	if !(Query{Kind: KindPipe, Name: "app1/*"}).Matches(pipe) {
		t.Error("prefix wildcard failed")
	}
	if (Query{Kind: KindPipe, Name: "app2/*"}).Matches(pipe) {
		t.Error("wrong prefix matched")
	}
	if (Query{Name: "exact"}).Matches(pipe) {
		t.Error("exact name mismatch matched")
	}
}

func TestQueryXMLRoundTrip(t *testing.T) {
	q := Query{
		Kind: KindPeer, Name: "x*", PeerID: "p",
		Attrs:    map[string]string{AttrGroup: "g"},
		MinAttrs: map[string]float64{AttrCPUMHz: 500.5},
	}
	b, err := q.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var got Query
	if err := got.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if got.Kind != q.Kind || got.Name != q.Name || got.PeerID != q.PeerID ||
		got.Attrs[AttrGroup] != "g" || got.MinAttrs[AttrCPUMHz] != 500.5 {
		t.Errorf("round trip = %+v", got)
	}
	if err := new(Query).UnmarshalText([]byte("<q")); err == nil {
		t.Error("garbage accepted")
	}
	if err := new(Query).UnmarshalText(
		[]byte(`<query><min name="x" value="zz"/></query>`)); err == nil {
		t.Error("bad bound accepted")
	}
}

func TestCacheFindExpiryPurge(t *testing.T) {
	c := NewCache()
	now := time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)
	c.Now = func() time.Time { return now }

	fresh := sampleAd()
	fresh.Expires = now.Add(time.Hour)
	stale := sampleAd()
	stale.ID = "ad-2"
	stale.Expires = now.Add(-time.Hour)
	forever := sampleAd()
	forever.ID = "ad-3"
	forever.Expires = time.Time{}
	for _, ad := range []*Advertisement{fresh, stale, forever} {
		if err := c.Put(ad); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	got := c.Find(Query{Kind: KindPeer}, 0)
	if len(got) != 2 {
		t.Fatalf("found %d unexpired, want 2", len(got))
	}
	if got[0].ID != "ad-1" || got[1].ID != "ad-3" {
		t.Errorf("sort order: %s, %s", got[0].ID, got[1].ID)
	}
	// Limit.
	if got := c.Find(Query{}, 1); len(got) != 1 {
		t.Errorf("limit ignored: %d", len(got))
	}
	// Returned ads are clones.
	got[0].SetAttr("mut", "1")
	if c.Find(Query{Name: ""}, 0)[0].Attr("mut") != "" {
		t.Error("cache aliased")
	}
	if n := c.Purge(); n != 1 {
		t.Errorf("purged %d, want 1", n)
	}
	if c.Len() != 2 {
		t.Errorf("after purge len = %d", c.Len())
	}
}

func TestCachePutReplacesAndRemoves(t *testing.T) {
	c := NewCache()
	ad := sampleAd()
	c.Put(ad)
	ad2 := sampleAd()
	ad2.SetAttr(AttrCPUMHz, "9999")
	c.Put(ad2)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Find(Query{}, 0)[0].Attr(AttrCPUMHz) != "9999" {
		t.Error("Put did not replace")
	}
	if !c.Remove("ad-1") || c.Remove("ad-1") {
		t.Error("Remove semantics wrong")
	}
	if err := c.Put(&Advertisement{}); err == nil {
		t.Error("invalid ad stored")
	}
}

func TestCacheRemovePeer(t *testing.T) {
	c := NewCache()
	for i, peer := range []string{"a", "a", "b"} {
		ad := sampleAd()
		ad.ID = string(rune('0' + i))
		ad.PeerID = peer
		c.Put(ad)
	}
	if n := c.RemovePeer("a"); n != 2 {
		t.Errorf("removed %d, want 2", n)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

// xmlSafe reduces an arbitrary string to characters every XML 1.0
// processor must round-trip; the codec is only required to carry legal
// XML text, and adverts are machine-generated names/labels in practice.
func xmlSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 0x20 && r <= 0x7E) || r == '\t' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestQuickAdvertRoundTrip(t *testing.T) {
	f := func(id, peer, name, addr string, attrs map[string]string) bool {
		id, peer, name, addr = xmlSafe(id), xmlSafe(peer), xmlSafe(name), xmlSafe(addr)
		if id == "" || peer == "" || name == "" {
			return true // invalid by construction; skip
		}
		ad := &Advertisement{Kind: KindPipe, ID: id, PeerID: peer, Name: name, Addr: addr}
		for k, v := range attrs {
			k, v = xmlSafe(k), xmlSafe(v)
			if k == "" {
				continue
			}
			ad.SetAttr(k, v)
		}
		b, err := ad.MarshalText()
		if err != nil {
			return false
		}
		var got Advertisement
		if err := got.UnmarshalText(b); err != nil {
			return false
		}
		if got.ID != id || got.PeerID != peer || got.Name != name || got.Addr != addr {
			return false
		}
		for k, v := range ad.Attributes {
			if got.Attr(k) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeList(t *testing.T) {
	ads := []*Advertisement{sampleAd()}
	second := sampleAd()
	second.ID = "ad-2"
	ads = append(ads, second)
	b, err := EncodeList(ads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeList(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "ad-1" || got[1].ID != "ad-2" ||
		got[0].Attr(AttrCPUMHz) != "2000" {
		t.Fatalf("decoded = %+v", got)
	}
	// Empty list.
	eb, err := EncodeList(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeList(eb); err != nil || len(got) != 0 {
		t.Errorf("empty = %v, %v", got, err)
	}
	// Invalid advert refuses to encode.
	if _, err := EncodeList([]*Advertisement{{}}); err == nil {
		t.Error("invalid advert encoded")
	}
	// Corrupt buffers error, never panic.
	if _, err := DecodeList(nil); err == nil {
		t.Error("nil decoded")
	}
	if _, err := DecodeList(b[:len(b)/2]); err == nil {
		t.Error("truncated list decoded")
	}
	if _, err := DecodeList([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Error("absurd count decoded")
	}
}

func TestQuickDecodeListNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DecodeList panicked on %x: %v", b, r)
			}
		}()
		_, _ = DecodeList(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
