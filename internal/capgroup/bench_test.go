package capgroup

import (
	"fmt"
	"testing"
	"time"

	"consumergrid/internal/advert"
)

// BenchmarkGroupMatch measures the despatch-path group resolution: one
// pushed advert decoded into the index, then a requirement resolved to
// its best-populated group — the per-farm cost RunFarm pays when
// RequireCaps is set against a live donor pool of 32 groups x 8 peers.
func BenchmarkGroupMatch(b *testing.B) {
	idx := NewIndex()
	var ads []*advert.Advertisement
	for g := 0; g < 32; g++ {
		caps := Set{
			KeyUnits:    fmt.Sprintf("r-%08d", g%4),
			KeyCPUClass: []string{"low", "mid", "high", "turbo"}[g%4],
			KeyMem:      fmt.Sprintf("%dMB", 256<<(g%4)),
			"zone":      fmt.Sprintf("z%d", g),
		}
		for p := 0; p < 8; p++ {
			id := fmt.Sprintf("worker-%d-%d", g, p)
			ads = append(ads, MembershipAdvert(id, "127.0.0.1:0", caps, 1000+p, time.Minute))
			idx.Put(caps.Key(), caps, Member{PeerID: id, CPUMHz: float64(1000 + p)})
		}
	}
	req := map[string]string{KeyUnits: "r-00000002", KeyCPUClass: "high"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := ads[i%len(ads)]
		caps, key, ok := FromAdvert(ad)
		if !ok {
			b.Fatal("fixture advert failed to decode")
		}
		idx.Put(key, caps, Member{PeerID: ad.PeerID, CPUMHz: 1000})
		if _, ok := idx.Match(req); !ok {
			b.Fatal("requirement stopped matching")
		}
	}
}
