// Package capgroup implements capability identity groups: every peer
// derives a typed, canonically-ordered capability set (unit-registry
// version, CPU class, memory class, sandbox capabilities, data-tier
// support, plus operator extras) and hashes its canonical form into a
// stable group key. Peers with equal sets share a key, so despatch can
// target "any member of group G" knowing the members are
// interchangeable for the workload — and a quorum electorate drawn from
// one group produces result digests that are comparable by
// construction.
//
// Membership is declared with ordinary adverts (Kind "group", Name =
// group key), so the existing super-peer ring replicates each group's
// membership shard R ways and pushes membership changes to subscribers
// exactly like donor adverts. Nothing here talks to the network: this
// package owns the capability vocabulary, the canonicalisation, the
// advert codec and the in-memory membership index.
package capgroup

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/sandbox"
	"consumergrid/internal/units"
)

// The typed capability keys every peer derives. Operator extras
// (trianad -caps) ride alongside under their own names.
const (
	// KeyUnits is the unit-registry version: a hash over every
	// registered unit name and bundle version, so two peers share it
	// only when they would execute identical code for any unit.
	KeyUnits = "units"
	// KeyCPUClass buckets advertised CPU MHz into coarse classes —
	// interchangeability wants "same league", not same megahertz.
	KeyCPUClass = "cpuclass"
	// KeyMem buckets advertised free RAM to its power-of-two floor.
	KeyMem = "mem"
	// KeySandbox summarises the sandbox permissions hosted work gets.
	KeySandbox = "sandbox"
	// KeyDataTier records content-addressed chunk-tier support.
	KeyDataTier = "datatier"
)

// Advert attribute names for capability adverts.
const (
	// AttrCap prefixes one capability pair per attribute ("cap.units",
	// "cap.cpuclass", ...) on both group and service adverts, so pull
	// queries can filter donors by exact capability match.
	AttrCap = "cap."
	// AttrCanon carries the full canonical capability string.
	AttrCanon = "capcanon"
	// AttrGroupKey carries the derived group key on service adverts.
	AttrGroupKey = "capgroup"
)

// Set is a peer's capability set: capability name -> value. The zero
// value is usable.
type Set map[string]string

// Canon renders the set in its canonical order — keys sorted, pairs
// joined "k=v;k=v" — so equal sets always render identically and the
// group key is stable across peers, processes and releases.
func (s Set) Canon() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s[k])
	}
	return b.String()
}

// Key derives the stable group key: "cg-" plus the truncated SHA-256 of
// the canonical form. Peers compute it independently and agree.
func (s Set) Key() string {
	sum := sha256.Sum256([]byte(s.Canon()))
	return "cg-" + hex.EncodeToString(sum[:])[:12]
}

// Satisfies reports whether the set meets a requirement: every required
// key present with exactly the required value. An empty requirement is
// satisfied by anything.
func (s Set) Satisfies(req map[string]string) bool {
	for k, v := range req {
		if s[k] != v {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Profile is the raw material Derive turns into a capability set.
type Profile struct {
	CPUMHz    int
	FreeRAMMB int
	Sandbox   sandbox.Policy
	DataTier  bool
	// Extra adds or overrides pairs (operator-supplied -caps): a key
	// matching a derived one replaces it, anything else rides along.
	Extra map[string]string
}

// Derive builds the peer's capability set from its profile. The result
// is deterministic: equal profiles on equal binaries produce equal sets
// and therefore equal group keys.
func Derive(p Profile) Set {
	s := Set{
		KeyUnits:    UnitsVersion(),
		KeyCPUClass: CPUClass(p.CPUMHz),
		KeyMem:      MemClass(p.FreeRAMMB),
		KeySandbox:  SandboxClass(p.Sandbox),
		KeyDataTier: "off",
	}
	if p.DataTier {
		s[KeyDataTier] = "on"
	}
	for k, v := range p.Extra {
		s[k] = v
	}
	return s
}

// UnitsVersion hashes the process unit registry — every unit name with
// its bundle version — into a short registry-version tag. Two peers
// share it only when any despatched unit resolves to identical code.
func UnitsVersion() string {
	names := units.Names()
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		m, _ := units.Lookup(n)
		fmt.Fprintf(h, "%s@%s\n", n, m.Version)
	}
	return "r-" + hex.EncodeToString(h.Sum(nil))[:8]
}

// CPUClass buckets advertised MHz into coarse interchangeability
// classes.
func CPUClass(mhz int) string {
	switch {
	case mhz <= 0:
		return "unknown"
	case mhz < 1000:
		return "low"
	case mhz < 2500:
		return "mid"
	case mhz < 5000:
		return "high"
	default:
		return "turbo"
	}
}

// MemClass buckets advertised free RAM down to its power-of-two floor,
// so minor fluctuations don't fork groups.
func MemClass(mb int) string {
	if mb <= 0 {
		return "unknown"
	}
	floor := 1
	for floor*2 <= mb {
		floor *= 2
	}
	return strconv.Itoa(floor) + "MB"
}

// SandboxClass summarises the sandbox permission grant: "none" for the
// deny-all default, else the sorted permissions joined with "+".
func SandboxClass(p sandbox.Policy) string {
	if len(p.Allow) == 0 {
		return "none"
	}
	perms := make([]string, 0, len(p.Allow))
	for _, perm := range p.Allow {
		perms = append(perms, string(perm))
	}
	sort.Strings(perms)
	return strings.Join(perms, "+")
}

// ParseList parses a "key=value,key=value" capability list (the trianad
// -caps / -require-caps syntax) with fail-fast validation: every entry
// needs a '=', keys and values must be non-empty, keys must be unique,
// and neither side may contain the canonical-form separators.
func ParseList(spec string) (map[string]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("empty capability entry")
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("capability %q is not key=value", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if k == "" {
			return nil, fmt.Errorf("capability %q has an empty key", field)
		}
		if v == "" {
			return nil, fmt.Errorf("capability %q has an empty value", field)
		}
		if strings.ContainsAny(k, ";=") || strings.ContainsAny(v, ";=") {
			return nil, fmt.Errorf("capability %q: ';' and '=' are reserved", field)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("duplicate capability key %q", k)
		}
		out[k] = v
	}
	return out, nil
}

// MembershipAdvert declares the peer's membership of its capability
// group. The advert's Name is the group key, so the overlay's topical
// placement stores it on — and serves subscriptions from — the R ring
// owners of "group/<key>", exactly like a donor advert's topic.
func MembershipAdvert(peerID, addr string, caps Set, cpuMHz int, ttl time.Duration) *advert.Advertisement {
	key := caps.Key()
	ad := &advert.Advertisement{
		Kind:   advert.KindGroup,
		ID:     "group/" + key + "/" + peerID,
		PeerID: peerID,
		Name:   key,
		Addr:   addr,
	}
	for k, v := range caps {
		ad.SetAttr(AttrCap+k, v)
	}
	ad.SetAttr(AttrCanon, caps.Canon())
	ad.SetAttr(advert.AttrCPUMHz, strconv.Itoa(cpuMHz))
	if ttl > 0 {
		ad.Expires = time.Now().Add(ttl)
	}
	return ad
}

// FromAdvert decodes a group advert back into its capability set and
// key. It re-derives the key from the carried pairs and rejects adverts
// whose Name disagrees — a peer cannot smuggle itself into a group its
// capabilities don't hash to.
func FromAdvert(ad *advert.Advertisement) (Set, string, bool) {
	if ad == nil || ad.Kind != advert.KindGroup || ad.Name == "" {
		return nil, "", false
	}
	caps := make(Set)
	for k, v := range ad.Attributes {
		if strings.HasPrefix(k, AttrCap) && len(k) > len(AttrCap) {
			caps[k[len(AttrCap):]] = v
		}
	}
	if len(caps) == 0 || caps.Key() != ad.Name {
		return nil, "", false
	}
	return caps, ad.Name, true
}
