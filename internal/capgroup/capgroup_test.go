package capgroup

import (
	"strings"
	"testing"
	"time"

	"consumergrid/internal/sandbox"

	_ "consumergrid/internal/units/signal"
)

func TestCanonAndKeyStable(t *testing.T) {
	a := Set{"b": "2", "a": "1", "c": "3"}
	b := Set{"c": "3", "a": "1", "b": "2"}
	if a.Canon() != "a=1;b=2;c=3" {
		t.Fatalf("Canon = %q, want sorted k=v;k=v", a.Canon())
	}
	if a.Canon() != b.Canon() || a.Key() != b.Key() {
		t.Fatalf("equal sets must canonicalise identically: %q/%q vs %q/%q",
			a.Canon(), a.Key(), b.Canon(), b.Key())
	}
	if !strings.HasPrefix(a.Key(), "cg-") || len(a.Key()) != len("cg-")+12 {
		t.Fatalf("Key = %q, want cg-<12 hex>", a.Key())
	}
	if a.Key() == (Set{"a": "1", "b": "2"}).Key() {
		t.Fatal("different sets must derive different keys")
	}
	if got := (Set{}).Canon(); got != "" {
		t.Fatalf("empty set Canon = %q, want empty", got)
	}
}

func TestSatisfies(t *testing.T) {
	s := Set{KeyUnits: "r-abc", KeyCPUClass: "mid", "gpu": "none"}
	if !s.Satisfies(nil) {
		t.Fatal("empty requirement must always be satisfied")
	}
	if !s.Satisfies(map[string]string{KeyUnits: "r-abc", "gpu": "none"}) {
		t.Fatal("exact subset match must satisfy")
	}
	if s.Satisfies(map[string]string{KeyUnits: "r-xyz"}) {
		t.Fatal("wrong value must not satisfy")
	}
	if s.Satisfies(map[string]string{"zone": "eu"}) {
		t.Fatal("missing key must not satisfy")
	}
}

func TestDeriveClasses(t *testing.T) {
	cpuCases := map[int]string{-5: "unknown", 0: "unknown", 400: "low",
		1000: "mid", 2499: "mid", 2500: "high", 5000: "turbo"}
	for mhz, want := range cpuCases {
		if got := CPUClass(mhz); got != want {
			t.Errorf("CPUClass(%d) = %q, want %q", mhz, got, want)
		}
	}
	memCases := map[int]string{0: "unknown", 1: "1MB", 512: "512MB",
		513: "512MB", 1023: "512MB", 1024: "1024MB"}
	for mb, want := range memCases {
		if got := MemClass(mb); got != want {
			t.Errorf("MemClass(%d) = %q, want %q", mb, got, want)
		}
	}
	if got := SandboxClass(sandbox.Policy{}); got != "none" {
		t.Errorf("SandboxClass(deny-all) = %q, want none", got)
	}
	p := sandbox.Policy{Allow: []sandbox.Permission{sandbox.NetDial, sandbox.FSRead}}
	if got := SandboxClass(p); got != string(sandbox.FSRead)+"+"+string(sandbox.NetDial) {
		t.Errorf("SandboxClass = %q, want sorted joined perms", got)
	}

	s := Derive(Profile{CPUMHz: 1200, FreeRAMMB: 600, DataTier: true,
		Extra: map[string]string{"gpu": "none", KeyCPUClass: "pinned"}})
	if s[KeyCPUClass] != "pinned" {
		t.Errorf("Extra must override derived keys, got %q", s[KeyCPUClass])
	}
	if s[KeyMem] != "512MB" || s[KeyDataTier] != "on" || s["gpu"] != "none" {
		t.Errorf("Derive = %v", s)
	}
	if !strings.HasPrefix(s[KeyUnits], "r-") {
		t.Errorf("units version %q missing r- prefix", s[KeyUnits])
	}
	if UnitsVersion() != UnitsVersion() {
		t.Error("UnitsVersion must be deterministic within a process")
	}
}

func TestParseList(t *testing.T) {
	got, err := ParseList(" gpu=none, zone = eu ")
	if err != nil {
		t.Fatal(err)
	}
	if got["gpu"] != "none" || got["zone"] != "eu" || len(got) != 2 {
		t.Fatalf("ParseList = %v", got)
	}
	if m, err := ParseList("   "); err != nil || m != nil {
		t.Fatalf("blank spec = (%v, %v), want (nil, nil)", m, err)
	}
	bad := []string{
		"gpu",          // no '='
		"=cuda",        // empty key
		"gpu=",         // empty value
		"gpu= ",        // whitespace value
		"gpu=none,,",   // empty entry
		"a=1,a=2",      // duplicate key
		"gpu=a;b",      // reserved ';'
		"g=pu=cuda",    // '=' in value
	}
	for _, spec := range bad {
		if _, err := ParseList(spec); err == nil {
			t.Errorf("ParseList(%q) accepted a malformed spec", spec)
		}
	}
}

func TestAdvertRoundTrip(t *testing.T) {
	caps := Derive(Profile{CPUMHz: 2000, FreeRAMMB: 512, DataTier: true})
	ad := MembershipAdvert("worker-a", "127.0.0.1:9001", caps, 2000, time.Minute)
	if ad.Name != caps.Key() || ad.ID != "group/"+caps.Key()+"/worker-a" {
		t.Fatalf("advert Name/ID = %q/%q", ad.Name, ad.ID)
	}
	if err := ad.Validate(); err != nil {
		t.Fatalf("membership advert invalid: %v", err)
	}
	got, key, ok := FromAdvert(ad)
	if !ok || key != caps.Key() {
		t.Fatalf("FromAdvert = (%v, %q, %v)", got, key, ok)
	}
	if got.Canon() != caps.Canon() {
		t.Fatalf("round-trip caps %q != %q", got.Canon(), caps.Canon())
	}

	// Tampered Name: a peer cannot smuggle into a group its caps don't
	// hash to.
	forged := MembershipAdvert("worker-b", "127.0.0.1:9002", caps, 2000, time.Minute)
	forged.Name = "cg-deadbeef0000"
	forged.ID = "group/cg-deadbeef0000/worker-b"
	if _, _, ok := FromAdvert(forged); ok {
		t.Fatal("FromAdvert accepted an advert whose Name disagrees with its caps")
	}
	// Tampered pair: changing one capability without re-deriving the key.
	forged2 := MembershipAdvert("worker-c", "127.0.0.1:9003", caps, 2000, time.Minute)
	forged2.SetAttr(AttrCap+KeyCPUClass, "turbo")
	if _, _, ok := FromAdvert(forged2); ok {
		t.Fatal("FromAdvert accepted an advert whose caps disagree with its Name")
	}
	if _, _, ok := FromAdvert(nil); ok {
		t.Fatal("FromAdvert accepted nil")
	}
}

func TestIndex(t *testing.T) {
	idx := NewIndex()
	fast := Set{KeyUnits: "r-v1", KeyCPUClass: "high"}
	slow := Set{KeyUnits: "r-v1", KeyCPUClass: "low"}
	other := Set{KeyUnits: "r-v2", KeyCPUClass: "high"}
	idx.Put(fast.Key(), fast, Member{PeerID: "b", CPUMHz: 3000})
	idx.Put(fast.Key(), fast, Member{PeerID: "a", CPUMHz: 4000})
	idx.Put(fast.Key(), fast, Member{PeerID: "c", CPUMHz: 4000})
	idx.Put(slow.Key(), slow, Member{PeerID: "d", CPUMHz: 500})
	idx.Put(other.Key(), other, Member{PeerID: "e", CPUMHz: 3500})

	ms := idx.Members(fast.Key())
	if len(ms) != 3 || ms[0].PeerID != "a" || ms[1].PeerID != "c" || ms[2].PeerID != "b" {
		t.Fatalf("Members order = %v, want CPU desc then ID asc", ms)
	}

	// Refresh must not duplicate.
	idx.Put(fast.Key(), fast, Member{PeerID: "a", CPUMHz: 4100})
	if ms := idx.Members(fast.Key()); len(ms) != 3 || ms[0].CPUMHz != 4100 {
		t.Fatalf("refresh produced %v", ms)
	}

	// MatchAll: both r-v1 groups satisfy, best-populated first.
	keys := idx.MatchAll(map[string]string{KeyUnits: "r-v1"})
	if len(keys) != 2 || keys[0] != fast.Key() || keys[1] != slow.Key() {
		t.Fatalf("MatchAll = %v", keys)
	}
	if key, ok := idx.Match(map[string]string{KeyUnits: "r-v2"}); !ok || key != other.Key() {
		t.Fatalf("Match = (%q, %v)", key, ok)
	}
	if _, ok := idx.Match(map[string]string{KeyUnits: "r-v9"}); ok {
		t.Fatal("Match found a group for an unsatisfiable requirement")
	}

	if g, m := idx.Counts(); g != 3 || m != 5 {
		t.Fatalf("Counts = (%d, %d), want (3, 5)", g, m)
	}
	snap := idx.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot = %d groups", len(snap))
	}

	// Drop: emptying a group deletes it.
	idx.Drop(slow.Key(), "d")
	if _, ok := idx.Match(map[string]string{KeyCPUClass: "low"}); ok {
		t.Fatal("emptied group still matched")
	}
	if g, _ := idx.Counts(); g != 2 {
		t.Fatalf("Counts after drop = %d groups, want 2", g)
	}
	idx.Drop("no-such-group", "a") // must not panic
}
