package capgroup

import (
	"sort"
	"sync"
)

// Member is one peer's entry in a group's membership list.
type Member struct {
	PeerID string
	Addr   string
	CPUMHz float64
}

// GroupInfo is one group's observable state, for RPC/webstatus tables.
type GroupInfo struct {
	Key     string
	Canon   string
	Members []Member
}

// Index is a thread-safe membership index: group key -> capability set
// and members. The controller's donor pool feeds one from group-advert
// pushes; observability surfaces build transient ones from pull
// queries.
type Index struct {
	mu     sync.Mutex
	groups map[string]*groupState
}

type groupState struct {
	caps    Set
	members map[string]Member
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{groups: make(map[string]*groupState)}
}

// Put records (or refreshes) a member of group key.
func (x *Index) Put(key string, caps Set, m Member) {
	x.mu.Lock()
	defer x.mu.Unlock()
	g, ok := x.groups[key]
	if !ok {
		g = &groupState{caps: caps.Clone(), members: make(map[string]Member)}
		x.groups[key] = g
	}
	g.members[m.PeerID] = m
}

// Drop removes a member; a group left empty is deleted.
func (x *Index) Drop(key, peerID string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	g, ok := x.groups[key]
	if !ok {
		return
	}
	delete(g.members, peerID)
	if len(g.members) == 0 {
		delete(x.groups, key)
	}
}

// Members snapshots one group's members, strongest advertised CPU
// first (ties by peer ID) — the same order the donor pool ranks by.
func (x *Index) Members(key string) []Member {
	x.mu.Lock()
	g, ok := x.groups[key]
	var out []Member
	if ok {
		out = make([]Member, 0, len(g.members))
		for _, m := range g.members {
			out = append(out, m)
		}
	}
	x.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPUMHz != out[j].CPUMHz {
			return out[i].CPUMHz > out[j].CPUMHz
		}
		return out[i].PeerID < out[j].PeerID
	})
	return out
}

// MatchAll lists every group key whose capability set satisfies req,
// best-populated first (ties by key), and counts the resolution on
// capgroup_match_total.
func (x *Index) MatchAll(req map[string]string) []string {
	x.mu.Lock()
	type cand struct {
		key  string
		size int
	}
	var cands []cand
	for key, g := range x.groups {
		if g.caps.Satisfies(req) {
			cands = append(cands, cand{key, len(g.members)})
		}
	}
	x.mu.Unlock()
	matchTotal.Inc()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return cands[i].key < cands[j].key
	})
	keys := make([]string, len(cands))
	for i, c := range cands {
		keys[i] = c.key
	}
	return keys
}

// Match resolves a requirement to the best-populated satisfying group.
func (x *Index) Match(req map[string]string) (string, bool) {
	keys := x.MatchAll(req)
	if len(keys) == 0 {
		return "", false
	}
	return keys[0], true
}

// Counts reports (groups, members) totals.
func (x *Index) Counts() (groups, members int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, g := range x.groups {
		members += len(g.members)
	}
	return len(x.groups), members
}

// Snapshot lists every group sorted by key, members sorted as Members.
func (x *Index) Snapshot() []GroupInfo {
	x.mu.Lock()
	keys := make([]string, 0, len(x.groups))
	canon := make(map[string]string, len(x.groups))
	for key, g := range x.groups {
		keys = append(keys, key)
		canon[key] = g.caps.Canon()
	}
	x.mu.Unlock()
	sort.Strings(keys)
	out := make([]GroupInfo, 0, len(keys))
	for _, key := range keys {
		out = append(out, GroupInfo{Key: key, Canon: canon[key], Members: x.Members(key)})
	}
	return out
}
