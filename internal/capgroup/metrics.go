// capgroup_* metric families. Registered eagerly at package init so a
// fresh daemon's /metrics already lists them (the metrics smoke asserts
// exactly that), and incremented from the publish, match, fallback and
// quorum-capacity paths across service and controller.
package capgroup

import "consumergrid/internal/metrics"

var (
	// groupsGauge / membersGauge mirror the donor pool's live group
	// index: distinct groups and total memberships observed.
	groupsGauge  = metrics.Default().Gauge("capgroup_groups")
	membersGauge = metrics.Default().Gauge("capgroup_members")
	// publishTotal counts group-membership adverts published by this
	// process's peers.
	publishTotal = metrics.Default().Counter("capgroup_publish_total")
	// matchTotal counts requirement -> group resolutions attempted.
	matchTotal = metrics.Default().Counter("capgroup_match_total")
	// fallbackTotal counts farms that required capabilities but fell
	// back to the health-ranked whole pool because no populated group
	// matched — the "empty group must not fail the farm" path.
	fallbackTotal = metrics.Default().Counter("capgroup_fallback_total")
	// quorumCapacityTotal counts quorum farms ended with
	// ErrNoQuorumCapacity: the electorate could not assemble or widen
	// without drawing voters from outside the committed group.
	quorumCapacityTotal = metrics.Default().Counter("capgroup_quorum_capacity_errors_total")
)

// SetIndexGauges publishes a live index's totals; only the long-lived
// donor-pool index should drive these (transient indexes built for one
// RPC reply must not).
func SetIndexGauges(groups, members int) {
	groupsGauge.Set(float64(groups))
	membersGauge.Set(float64(members))
}

// CountPublish records one membership-advert publication.
func CountPublish() { publishTotal.Inc() }

// CountFallback records one whole-pool fallback.
func CountFallback() { fallbackTotal.Inc() }

// CountQuorumCapacity records one in-group quorum-capacity exhaustion.
func CountQuorumCapacity() { quorumCapacityTotal.Inc() }

// FallbackTotal exposes the fallback counter for tests.
func FallbackTotal() int64 { return fallbackTotal.Value() }

// QuorumCapacityTotal exposes the capacity-error counter for tests.
func QuorumCapacityTotal() int64 { return quorumCapacityTotal.Value() }
