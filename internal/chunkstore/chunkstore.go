// Package chunkstore is the content-addressed data tier that turns the
// controller from data hub into metadata broker. Farm input data is
// named by the SHA-256 of its canonical wire encoding (the same
// encoding the quorum digests already hash), which makes chunks
// immutable, cacheable anywhere, and verifiable on receipt: a donor
// can fetch a chunk from an untrusted sibling and know byte-for-byte
// that it got the right data, because the name *is* the hash.
//
// A Store is one peer's view of the tier: a byte-budget LRU cache plus
// a singleflight fetch path that resolves a digest through the fallback
// ladder — local cache, super-peer ring replica, a donor that is known
// to hold it, and finally the controller itself. Speculative backups
// and quorum voters for the same chunk therefore hit the cache (or
// coalesce onto one in-flight fetch) instead of forcing the controller
// to re-stream the same bytes per attempt.
package chunkstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"consumergrid/internal/metrics"
	"consumergrid/internal/types"
)

// Source classes, in ladder order. SourceLocal covers both a warm
// cache entry and a fetch coalesced onto another goroutine's in-flight
// fetch — either way no new bytes crossed the wire for this caller.
const (
	SourceLocal      = "local"
	SourceRing       = "ring"
	SourcePeer       = "peer"
	SourceController = "controller"
)

// ErrNotFound reports that a digest was resolvable from no source.
var ErrNotFound = errors.New("chunkstore: chunk not found")

// Digest names a chunk: the lowercase hex SHA-256 of its bytes.
func Digest(p []byte) string {
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:])
}

// DigestData marshals one datum through the canonical types encoding
// and names the result. The returned payload is exactly what a donor
// will unmarshal after fetching the digest.
func DigestData(d types.Data) (digest string, payload []byte, err error) {
	p, err := types.Marshal(d)
	if err != nil {
		return "", nil, err
	}
	return Digest(p), p, nil
}

// Source is one place a digest may be fetched from, tagged with the
// ladder class it belongs to (ring replica, donor peer, controller).
type Source struct {
	Addr  string
	Class string
}

// FetchFunc performs one wire fetch of a digest from a peer address.
// The Store verifies the returned bytes against the digest, so the
// function may talk to untrusted peers.
type FetchFunc func(addr, digest string) ([]byte, error)

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the unpinned cache payload; 0 means the 64 MiB
	// default. Pinned entries (a controller's live farm chunks) are
	// exempt from eviction and from the budget.
	MaxBytes int64
	// Owner labels this store's metric series, normally the peer ID.
	Owner string
	// Registry receives the chunkstore_* series; nil means the
	// process-default registry.
	Registry *metrics.Registry
	// Logf, when set, receives fetch-ladder diagnostics.
	Logf func(format string, args ...any)
}

// DefaultMaxBytes is the cache budget when Options.MaxBytes is zero.
const DefaultMaxBytes int64 = 64 << 20

type entry struct {
	digest string
	data   []byte
	pins   int
	elem   *list.Element // nil while pinned (off the LRU list)
}

type call struct {
	done  chan struct{}
	data  []byte
	class string
	err   error
}

// Store is one peer's chunk cache and fetch path. All methods are safe
// for concurrent use.
type Store struct {
	opts Options

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recent
	bytes    int64      // unpinned payload bytes
	inflight map[string]*call

	hits, misses    *metrics.Counter
	evictions       *metrics.Counter
	digestMismatch  *metrics.Counter
	bytesSaved      *metrics.Counter
	fetchRing       *metrics.Counter
	fetchPeer       *metrics.Counter
	fetchController *metrics.Counter
	cacheBytes      *metrics.Gauge
}

// New creates a Store and eagerly registers its metric series, so a
// fresh daemon's first scrape already lists the chunkstore families.
func New(opts Options) *Store {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	s := &Store{
		opts:     opts,
		entries:  make(map[string]*entry),
		lru:      list.New(),
		inflight: make(map[string]*call),

		hits:            reg.Counter(metrics.Series("chunkstore_cache_hits_total", "peer", opts.Owner)),
		misses:          reg.Counter(metrics.Series("chunkstore_cache_misses_total", "peer", opts.Owner)),
		evictions:       reg.Counter(metrics.Series("chunkstore_evictions_total", "peer", opts.Owner)),
		digestMismatch:  reg.Counter(metrics.Series("chunkstore_digest_mismatch_total", "peer", opts.Owner)),
		bytesSaved:      reg.Counter(metrics.Series("chunkstore_bytes_saved_total", "peer", opts.Owner)),
		fetchRing:       reg.Counter(metrics.Series("chunkstore_fetch_total", "peer", opts.Owner, "source", SourceRing)),
		fetchPeer:       reg.Counter(metrics.Series("chunkstore_fetch_total", "peer", opts.Owner, "source", SourcePeer)),
		fetchController: reg.Counter(metrics.Series("chunkstore_fetch_total", "peer", opts.Owner, "source", SourceController)),
		cacheBytes:      reg.Gauge(metrics.Series("chunkstore_cache_bytes", "peer", opts.Owner)),
	}
	return s
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Get looks a digest up locally without touching the fetch path; it is
// the hook a Host serves chunk-fetch requests from. A hit refreshes
// the entry's LRU position.
func (s *Store) Get(digest string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return nil, false
	}
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
	return e.data, true
}

// Lookup is Get plus the entry's pin state, for callers that account
// pinned serves differently (a controller serving its own live farm
// chunks counts those bytes as farm egress).
func (s *Store) Lookup(digest string) (data []byte, pinned, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return nil, false, false
	}
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
	return e.data, e.pins > 0, true
}

// Put inserts a chunk, evicting least-recently-used entries to stay
// inside the byte budget. Chunks are immutable, so a duplicate Put is
// a no-op beyond an LRU refresh. The data slice is retained; callers
// must not mutate it (the same aliasing contract the COW data plane
// imposes on sealed payloads).
func (s *Store) Put(digest string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(digest, data, false)
}

// Pin inserts a chunk and protects it from eviction until Unpin — how
// a controller keeps a live farm's chunks servable for the
// controller-direct fallback regardless of cache pressure. Pins nest.
func (s *Store) Pin(digest string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(digest, data, true)
}

// Unpin releases one pin; when the last pin drops the entry rejoins
// the LRU and becomes evictable under the byte budget.
func (s *Store) Unpin(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok || e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		e.elem = s.lru.PushFront(e)
		s.bytes += int64(len(e.data))
		s.evictLocked()
	}
	s.cacheBytes.Set(float64(s.bytes))
}

func (s *Store) putLocked(digest string, data []byte, pin bool) {
	if e, ok := s.entries[digest]; ok {
		if pin {
			if e.pins == 0 && e.elem != nil {
				s.lru.Remove(e.elem)
				e.elem = nil
				s.bytes -= int64(len(e.data))
			}
			e.pins++
		} else if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		s.cacheBytes.Set(float64(s.bytes))
		return
	}
	e := &entry{digest: digest, data: data}
	s.entries[digest] = e
	if pin {
		e.pins = 1
	} else {
		e.elem = s.lru.PushFront(e)
		s.bytes += int64(len(data))
		s.evictLocked()
	}
	s.cacheBytes.Set(float64(s.bytes))
}

func (s *Store) evictLocked() {
	for s.bytes > s.opts.MaxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.digest)
		s.bytes -= int64(len(e.data))
		s.evictions.Inc()
	}
}

// Len reports the number of resident chunks (pinned included).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the unpinned cache payload currently held.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Fetch resolves a digest through the fallback ladder: local cache,
// then each source in order, verifying every fetched payload against
// the digest (a corrupt or byzantine source is skipped, not trusted).
// Concurrent fetches of the same digest coalesce onto one wire fetch.
// The returned class names where the bytes came from.
func (s *Store) Fetch(digest string, sources []Source, fetch FetchFunc) ([]byte, string, error) {
	s.mu.Lock()
	if e, ok := s.entries[digest]; ok {
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		s.hits.Inc()
		data := e.data
		s.mu.Unlock()
		return data, SourceLocal, nil
	}
	if c, ok := s.inflight[digest]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, "", c.err
		}
		// The leader paid for the wire fetch; this caller got the bytes
		// for free, which is exactly what the cache-hit counter means.
		s.hits.Inc()
		s.bytesSaved.Add(int64(len(c.data)))
		return c.data, SourceLocal, nil
	}
	s.misses.Inc()
	c := &call{done: make(chan struct{})}
	s.inflight[digest] = c
	s.mu.Unlock()

	c.data, c.class, c.err = s.fetchLadder(digest, sources, fetch)

	s.mu.Lock()
	delete(s.inflight, digest)
	if c.err == nil {
		s.putLocked(digest, c.data, false)
	}
	s.mu.Unlock()
	close(c.done)
	return c.data, c.class, c.err
}

func (s *Store) fetchLadder(digest string, sources []Source, fetch FetchFunc) ([]byte, string, error) {
	if fetch == nil {
		return nil, "", fmt.Errorf("chunkstore: %s: no fetch function: %w", short(digest), ErrNotFound)
	}
	var lastErr error
	for _, src := range sources {
		data, err := fetch(src.Addr, digest)
		if err != nil {
			s.logf("chunkstore: fetch %s from %s (%s): %v", short(digest), src.Addr, src.Class, err)
			lastErr = err
			continue
		}
		if Digest(data) != digest {
			// Content addressing makes tampering self-evident: the
			// bytes do not hash to their own name. Penalise via the
			// counter and keep climbing the ladder.
			s.digestMismatch.Inc()
			s.logf("chunkstore: fetch %s from %s (%s): digest mismatch", short(digest), src.Addr, src.Class)
			lastErr = fmt.Errorf("chunkstore: %s from %s: digest mismatch", short(digest), src.Addr)
			continue
		}
		switch src.Class {
		case SourceRing:
			s.fetchRing.Inc()
			s.bytesSaved.Add(int64(len(data)))
		case SourcePeer:
			s.fetchPeer.Inc()
			s.bytesSaved.Add(int64(len(data)))
		default:
			s.fetchController.Inc()
		}
		return data, src.Class, nil
	}
	if lastErr != nil {
		return nil, "", fmt.Errorf("chunkstore: %s unresolvable after %d sources: %w (last: %v)",
			short(digest), len(sources), ErrNotFound, lastErr)
	}
	return nil, "", fmt.Errorf("chunkstore: %s: no sources offered: %w", short(digest), ErrNotFound)
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}

// Stats is a point-in-time snapshot of one store's counters, in the
// shape the webstatus page renders.
type Stats struct {
	Hits, Misses    int64
	FetchRing       int64
	FetchPeer       int64
	FetchController int64
	BytesSaved      int64
	Evictions       int64
	DigestMismatch  int64
	CacheBytes      int64
	Entries         int
}

// Snapshot reads every counter at once.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	bytes, entries := s.bytes, len(s.entries)
	s.mu.Unlock()
	return Stats{
		Hits:            s.hits.Value(),
		Misses:          s.misses.Value(),
		FetchRing:       s.fetchRing.Value(),
		FetchPeer:       s.fetchPeer.Value(),
		FetchController: s.fetchController.Value(),
		BytesSaved:      s.bytesSaved.Value(),
		Evictions:       s.evictions.Value(),
		DigestMismatch:  s.digestMismatch.Value(),
		CacheBytes:      bytes,
		Entries:         entries,
	}
}
