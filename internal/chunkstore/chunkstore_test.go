package chunkstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"consumergrid/internal/metrics"
	"consumergrid/internal/types"
)

func newTestStore(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	return New(Options{
		MaxBytes: maxBytes,
		Owner:    t.Name(),
		Registry: metrics.NewRegistry(),
		Logf:     t.Logf,
	})
}

func chunkOf(n int, fill byte) (string, []byte) {
	data := make([]byte, n)
	for i := range data {
		data[i] = fill
	}
	return Digest(data), data
}

func TestDigestDataMatchesMarshal(t *testing.T) {
	d := &types.Spectrum{Resolution: 2, Amplitudes: []float64{1, 2, 3}}
	digest, payload, err := DigestData(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := types.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(want) {
		t.Fatalf("payload differs from types.Marshal")
	}
	if digest != Digest(want) {
		t.Fatalf("digest %s != Digest(Marshal(d)) %s", digest, Digest(want))
	}
	back, err := types.Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.(*types.Spectrum); !ok {
		t.Fatalf("round trip produced %T", back)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := newTestStore(t, 300)
	var digests []string
	for i := 0; i < 4; i++ {
		dg, data := chunkOf(100, byte(i))
		digests = append(digests, dg)
		s.Put(dg, data)
	}
	// Budget holds 3 of the 4; the first inserted is the LRU victim.
	if _, ok := s.Get(digests[0]); ok {
		t.Fatalf("oldest chunk survived eviction")
	}
	for _, dg := range digests[1:] {
		if _, ok := s.Get(dg); !ok {
			t.Fatalf("recent chunk %s evicted", short(dg))
		}
	}
	if got := s.Snapshot().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// Touching the now-oldest survivor promotes it past the next victim.
	s.Get(digests[1])
	dg, data := chunkOf(100, 0xFF)
	s.Put(dg, data)
	if _, ok := s.Get(digests[1]); !ok {
		t.Fatalf("touched chunk was evicted despite recency")
	}
	if _, ok := s.Get(digests[2]); ok {
		t.Fatalf("untouched chunk survived over the touched one")
	}
	if s.Bytes() > 300 {
		t.Fatalf("cache holds %d bytes over the 300 budget", s.Bytes())
	}
}

func TestStorePinExemptFromEviction(t *testing.T) {
	s := newTestStore(t, 100)
	pinDg, pinData := chunkOf(500, 1) // five times the whole budget
	s.Pin(pinDg, pinData)
	for i := 0; i < 5; i++ {
		dg, data := chunkOf(60, byte(10+i))
		s.Put(dg, data)
	}
	if _, ok := s.Get(pinDg); !ok {
		t.Fatalf("pinned chunk was evicted")
	}
	if s.Bytes() > 100 {
		t.Fatalf("unpinned bytes %d over budget", s.Bytes())
	}
	// After Unpin the oversized chunk rejoins the LRU and, being over
	// budget on its own, is evicted by the next insertion pressure.
	s.Unpin(pinDg)
	dg, data := chunkOf(60, 0xEE)
	s.Put(dg, data)
	if _, ok := s.Get(pinDg); ok {
		t.Fatalf("unpinned oversized chunk survived the budget")
	}
}

func TestFetchLadderVerifiesAndFallsBack(t *testing.T) {
	s := newTestStore(t, 1<<20)
	dg, data := chunkOf(64, 7)
	calls := []string{}
	fetch := func(addr, digest string) ([]byte, error) {
		calls = append(calls, addr)
		switch addr {
		case "ring-dead":
			return nil, errors.New("dial refused")
		case "peer-lies":
			return []byte("not the chunk"), nil
		case "controller":
			return data, nil
		}
		return nil, errors.New("unknown source")
	}
	sources := []Source{
		{Addr: "ring-dead", Class: SourceRing},
		{Addr: "peer-lies", Class: SourcePeer},
		{Addr: "controller", Class: SourceController},
	}
	got, class, err := s.Fetch(dg, sources, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if class != SourceController {
		t.Fatalf("resolved via %s, want controller", class)
	}
	if string(got) != string(data) {
		t.Fatalf("wrong bytes")
	}
	if len(calls) != 3 {
		t.Fatalf("ladder tried %v, want all three rungs", calls)
	}
	snap := s.Snapshot()
	if snap.DigestMismatch != 1 {
		t.Fatalf("digest mismatches = %d, want 1 (the lying peer)", snap.DigestMismatch)
	}
	if snap.FetchController != 1 || snap.FetchRing != 0 || snap.FetchPeer != 0 {
		t.Fatalf("fetch sources = %+v", snap)
	}

	// Second fetch is a pure cache hit: no wire calls.
	calls = nil
	_, class, err = s.Fetch(dg, sources, fetch)
	if err != nil || class != SourceLocal {
		t.Fatalf("second fetch: class=%s err=%v", class, err)
	}
	if len(calls) != 0 {
		t.Fatalf("cache hit still dialled %v", calls)
	}
	if got := s.Snapshot().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

func TestFetchAllSourcesFailing(t *testing.T) {
	s := newTestStore(t, 1<<20)
	dg, _ := chunkOf(16, 9)
	fetch := func(addr, digest string) ([]byte, error) { return nil, errors.New("down") }
	_, _, err := s.Fetch(dg, []Source{{Addr: "a", Class: SourceRing}}, fetch)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, _, err := s.Fetch(dg, nil, fetch); !errors.Is(err, ErrNotFound) {
		t.Fatalf("no sources: err = %v, want ErrNotFound", err)
	}
}

func TestFetchSingleflightCoalesces(t *testing.T) {
	s := newTestStore(t, 1<<20)
	dg, data := chunkOf(128, 3)
	var fetches int
	gate := make(chan struct{})
	fetch := func(addr, digest string) ([]byte, error) {
		fetches++ // only the leader runs this; no extra locking needed
		<-gate
		return data, nil
	}
	sources := []Source{{Addr: "controller", Class: SourceController}}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := s.Fetch(dg, sources, fetch)
			if err != nil {
				t.Error(err)
			}
			results[i] = got
		}(i)
	}
	// Let every goroutine reach the store before releasing the leader.
	for s.Snapshot().Misses == 0 {
	}
	close(gate)
	wg.Wait()

	if fetches != 1 {
		t.Fatalf("wire fetches = %d, want 1 (singleflight)", fetches)
	}
	for i, got := range results {
		if string(got) != string(data) {
			t.Fatalf("waiter %d got wrong bytes", i)
		}
	}
	snap := s.Snapshot()
	if snap.Misses != 1 {
		t.Fatalf("misses = %d, want 1", snap.Misses)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Origin: "127.0.0.1:7000",
		Items: []Item{
			{Digest: Digest([]byte("a")), Ring: []string{"127.0.0.1:7200", "127.0.0.1:7201"}, Peers: []string{"127.0.0.1:7301"}},
			{Digest: Digest([]byte("b"))},
			{Digest: Digest([]byte("c")), Peers: []string{"127.0.0.1:7302", "127.0.0.1:7303"}},
		},
	}
	back, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Origin != m.Origin || len(back.Items) != len(m.Items) {
		t.Fatalf("decoded %+v", back)
	}
	for i, it := range back.Items {
		want := m.Items[i]
		if it.Digest != want.Digest || fmt.Sprint(it.Ring) != fmt.Sprint(want.Ring) || fmt.Sprint(it.Peers) != fmt.Sprint(want.Peers) {
			t.Fatalf("item %d: got %+v want %+v", i, it, want)
		}
	}
	srcs := back.Sources(back.Items[0])
	wantClasses := []string{SourceRing, SourceRing, SourcePeer, SourceController}
	if len(srcs) != len(wantClasses) {
		t.Fatalf("sources = %+v", srcs)
	}
	for i, src := range srcs {
		if src.Class != wantClasses[i] {
			t.Fatalf("source %d class %s, want %s", i, src.Class, wantClasses[i])
		}
	}
}

func TestManifestEmptyRoundTrip(t *testing.T) {
	back, err := DecodeManifest(EncodeManifest(&Manifest{}))
	if err != nil {
		t.Fatal(err)
	}
	if back.Origin != "" || len(back.Items) != 0 {
		t.Fatalf("decoded %+v", back)
	}
	if srcs := back.Sources(Item{}); len(srcs) != 0 {
		t.Fatalf("empty manifest offered sources %+v", srcs)
	}
}

func TestDecodeManifestRejects(t *testing.T) {
	good := EncodeManifest(&Manifest{Origin: "o", Items: []Item{{Digest: Digest([]byte("x"))}}})
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      {99},
		"truncated origin": good[:2],
		"truncated item":   good[:len(good)-3],
		"trailing bytes":   append(append([]byte{}, good...), 0xAA),
		"empty digest":     {manifestVersion, 0, 1, 0, 0, 0},
	}
	for name, p := range cases {
		if _, err := DecodeManifest(p); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
