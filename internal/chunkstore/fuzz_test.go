package chunkstore

import (
	"bytes"
	"testing"
)

// fuzzSeedManifests are the decoder fuzz seeds: every shape the encoder
// can produce, plus the reject-table inputs.
func fuzzSeedManifests() [][]byte {
	seeds := [][]byte{
		EncodeManifest(&Manifest{}),
		EncodeManifest(&Manifest{Origin: "127.0.0.1:7000"}),
		EncodeManifest(&Manifest{
			Origin: "127.0.0.1:7000",
			Items: []Item{
				{Digest: Digest([]byte("a")), Ring: []string{"127.0.0.1:7200"}, Peers: []string{"127.0.0.1:7301", "127.0.0.1:7302"}},
				{Digest: Digest([]byte("b"))},
			},
		}),
		{},
		{manifestVersion},
		{99, 0, 0},
		{manifestVersion, 0, 1, 0, 0, 0},
	}
	full := EncodeManifest(&Manifest{Origin: "o", Items: []Item{{Digest: Digest([]byte("x")), Ring: []string{"r"}}}})
	seeds = append(seeds, full, full[:len(full)-2], append(append([]byte{}, full...), 0x7F))
	return seeds
}

// FuzzDecodeManifest asserts the decoder never panics and that every
// accepted manifest re-encodes to the exact input bytes — the same
// fixpoint property the binary wire codec promises, which is what makes
// manifest bytes safe to hash, relay and compare.
func FuzzDecodeManifest(f *testing.F) {
	for _, seed := range fuzzSeedManifests() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := DecodeManifest(p)
		if err != nil {
			return
		}
		out := EncodeManifest(m)
		if !bytes.Equal(out, p) {
			t.Fatalf("decode/encode not a fixpoint:\n in: %x\nout: %x", p, out)
		}
	})
}

// FuzzManifestRoundTrip drives the encoder from fuzzed field values and
// asserts decode inverts it.
func FuzzManifestRoundTrip(f *testing.F) {
	f.Add("127.0.0.1:7000", "deadbeef", "127.0.0.1:7200", "127.0.0.1:7301")
	f.Add("", "00", "", "")
	f.Fuzz(func(t *testing.T, origin, digest, ring, peer string) {
		if len(origin) > maxManifestAddr || len(digest) == 0 || len(digest) > maxManifestAddr ||
			len(ring) > maxManifestAddr || len(peer) > maxManifestAddr {
			t.Skip()
		}
		m := &Manifest{Origin: origin, Items: []Item{{Digest: digest, Ring: []string{ring}, Peers: []string{peer}}}}
		back, err := DecodeManifest(EncodeManifest(m))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Origin != origin || len(back.Items) != 1 || back.Items[0].Digest != digest ||
			back.Items[0].Ring[0] != ring || back.Items[0].Peers[0] != peer {
			t.Fatalf("round trip mangled: %+v", back)
		}
	})
}
