// The chunk manifest: what a controller sends instead of payload
// bytes. One manifest describes one farm chunk — the ordered digest
// list the donor must materialise, plus per-digest fetch hints (ring
// replica addresses, donors observed to hold the chunk) and the
// controller's own address as the fallback of last resort. The binary
// layout is uvarint length-prefixed, version-tagged, and bounded on
// decode so a hostile manifest cannot balloon allocation.
package chunkstore

import (
	"encoding/binary"
	"fmt"
)

// Manifest is the metadata a donor turns back into chunk payloads.
type Manifest struct {
	// Origin is the controller's host address — always fetchable, so a
	// manifest can be resolved even with an empty cache, dead ring and
	// no peer hints.
	Origin string
	// Items lists the chunk's data in delivery order.
	Items []Item
}

// Item is one datum of the chunk: its content digest and where to look
// for it before falling back to the origin.
type Item struct {
	Digest string
	Ring   []string // super-peer replicas, consistent-hash placed
	Peers  []string // donors that resolved this digest earlier
}

// Sources flattens an item's hints into the fetch ladder order the
// Store consumes: ring replicas, then peer hints, then the origin.
func (m *Manifest) Sources(it Item) []Source {
	out := make([]Source, 0, len(it.Ring)+len(it.Peers)+1)
	for _, a := range it.Ring {
		out = append(out, Source{Addr: a, Class: SourceRing})
	}
	for _, a := range it.Peers {
		out = append(out, Source{Addr: a, Class: SourcePeer})
	}
	if m.Origin != "" {
		out = append(out, Source{Addr: m.Origin, Class: SourceController})
	}
	return out
}

const (
	manifestVersion = 1

	// Decode bounds: a manifest names one farm chunk, so these are
	// generous by an order of magnitude. Anything larger is rejected as
	// hostile rather than allocated.
	maxManifestItems = 1 << 16
	maxManifestAddr  = 1 << 12
	maxManifestHints = 256
)

// EncodeManifest renders a manifest to its wire payload.
func EncodeManifest(m *Manifest) []byte {
	var tmp [binary.MaxVarintLen64]byte
	size := 1 + uvarintLen(uint64(len(m.Origin))) + len(m.Origin) + uvarintLen(uint64(len(m.Items)))
	for _, it := range m.Items {
		size += blobLen(it.Digest) + uvarintLen(uint64(len(it.Ring))) + uvarintLen(uint64(len(it.Peers)))
		for _, a := range it.Ring {
			size += blobLen(a)
		}
		for _, a := range it.Peers {
			size += blobLen(a)
		}
	}
	out := make([]byte, 0, size)
	out = append(out, manifestVersion)
	out = appendBlobBytes(out, tmp[:], m.Origin)
	out = appendUvarintBytes(out, tmp[:], uint64(len(m.Items)))
	for _, it := range m.Items {
		out = appendBlobBytes(out, tmp[:], it.Digest)
		out = appendUvarintBytes(out, tmp[:], uint64(len(it.Ring)))
		for _, a := range it.Ring {
			out = appendBlobBytes(out, tmp[:], a)
		}
		out = appendUvarintBytes(out, tmp[:], uint64(len(it.Peers)))
		for _, a := range it.Peers {
			out = appendBlobBytes(out, tmp[:], a)
		}
	}
	return out
}

// DecodeManifest parses a wire payload, rejecting unknown versions and
// anything that exceeds the decode bounds.
func DecodeManifest(p []byte) (*Manifest, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("chunkstore: empty manifest")
	}
	if p[0] != manifestVersion {
		return nil, fmt.Errorf("chunkstore: manifest version %d not supported", p[0])
	}
	p = p[1:]
	origin, p, err := readBlobBytes(p, maxManifestAddr)
	if err != nil {
		return nil, fmt.Errorf("chunkstore: manifest origin: %w", err)
	}
	n, p, err := readUvarintBytes(p)
	if err != nil {
		return nil, fmt.Errorf("chunkstore: manifest item count: %w", err)
	}
	if n > maxManifestItems {
		return nil, fmt.Errorf("chunkstore: manifest lists %d items (max %d)", n, maxManifestItems)
	}
	m := &Manifest{Origin: origin, Items: make([]Item, 0, min(int(n), 1024))}
	for i := uint64(0); i < n; i++ {
		var it Item
		it.Digest, p, err = readBlobBytes(p, maxManifestAddr)
		if err != nil {
			return nil, fmt.Errorf("chunkstore: manifest item %d digest: %w", i, err)
		}
		if it.Digest == "" {
			return nil, fmt.Errorf("chunkstore: manifest item %d: empty digest", i)
		}
		it.Ring, p, err = readAddrList(p)
		if err != nil {
			return nil, fmt.Errorf("chunkstore: manifest item %d ring: %w", i, err)
		}
		it.Peers, p, err = readAddrList(p)
		if err != nil {
			return nil, fmt.Errorf("chunkstore: manifest item %d peers: %w", i, err)
		}
		m.Items = append(m.Items, it)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("chunkstore: %d trailing bytes after manifest", len(p))
	}
	return m, nil
}

func readAddrList(p []byte) ([]string, []byte, error) {
	n, p, err := readUvarintBytes(p)
	if err != nil {
		return nil, nil, err
	}
	if n > maxManifestHints {
		return nil, nil, fmt.Errorf("%d hints (max %d)", n, maxManifestHints)
	}
	if n == 0 {
		return nil, p, nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var a string
		a, p, err = readBlobBytes(p, maxManifestAddr)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, a)
	}
	return out, p, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func blobLen(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

func appendUvarintBytes(out, tmp []byte, v uint64) []byte {
	n := binary.PutUvarint(tmp, v)
	return append(out, tmp[:n]...)
}

func appendBlobBytes(out, tmp []byte, s string) []byte {
	out = appendUvarintBytes(out, tmp, uint64(len(s)))
	return append(out, s...)
}

func readUvarintBytes(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated uvarint")
	}
	// Insist on the minimal encoding so decode∘encode is a fixpoint:
	// two manifests are byte-equal iff they say the same thing.
	if n != uvarintLen(v) {
		return 0, nil, fmt.Errorf("non-minimal uvarint")
	}
	return v, p[n:], nil
}

func readBlobBytes(p []byte, maxLen int) (string, []byte, error) {
	n, p, err := readUvarintBytes(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(maxLen) {
		return "", nil, fmt.Errorf("blob of %d bytes (max %d)", n, maxLen)
	}
	if uint64(len(p)) < n {
		return "", nil, fmt.Errorf("blob truncated: want %d bytes, have %d", n, len(p))
	}
	return string(p[:n]), p[n:], nil
}
