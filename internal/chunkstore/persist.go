package chunkstore

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Digests lists every resident digest, pinned or not — the enumeration
// a draining super-peer uses to hand its chunk replicas to ring
// successors.
func (s *Store) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for d := range s.entries {
		out = append(out, d)
	}
	return out
}

// ExportPinned serialises the pinned working set (digest + payload per
// entry) for the daemon's crash-safe checkpoint. Only pinned entries
// go to disk: they are the chunks live farms depend on the controller
// to serve; the unpinned LRU is just cache and refills on demand.
// Nested pins flatten to one — on restore the set is re-pinned once.
func (s *Store) ExportPinned() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pinned []*entry
	for _, e := range s.entries {
		if e.pins > 0 {
			pinned = append(pinned, e)
		}
	}
	out := binary.AppendUvarint(nil, uint64(len(pinned)))
	for _, e := range pinned {
		out = appendChunkBlob(out, []byte(e.digest))
		out = appendChunkBlob(out, e.data)
	}
	return out
}

// RestorePinned re-pins a set exported by ExportPinned, verifying each
// payload against its digest (a checkpoint restored from disk gets the
// same distrust as bytes fetched from a peer). Returns how many chunks
// were restored.
func (s *Store) RestorePinned(b []byte) (int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, errors.New("chunkstore: bad pinned-set count")
	}
	b = b[n:]
	restored := 0
	for i := uint64(0); i < count; i++ {
		dig, rest, err := readChunkBlob(b)
		if err != nil {
			return restored, fmt.Errorf("chunkstore: pinned entry %d digest: %w", i, err)
		}
		data, rest, err := readChunkBlob(rest)
		if err != nil {
			return restored, fmt.Errorf("chunkstore: pinned entry %q data: %w", dig, err)
		}
		b = rest
		if got := Digest(data); got != string(dig) {
			s.digestMismatch.Inc()
			return restored, fmt.Errorf("chunkstore: restored chunk %s hashes to %s", short(string(dig)), short(got))
		}
		s.Pin(string(dig), append([]byte(nil), data...))
		restored++
	}
	return restored, nil
}

func appendChunkBlob(out, b []byte) []byte {
	out = binary.AppendUvarint(out, uint64(len(b)))
	return append(out, b...)
}

func readChunkBlob(p []byte) (blob, rest []byte, err error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return nil, nil, errors.New("bad blob length")
	}
	p = p[sz:]
	if uint64(len(p)) < n {
		return nil, nil, errors.New("blob truncated")
	}
	return p[:n], p[n:], nil
}
