// Package churn models the availability of consumer peers — the paper's
// "various types of downtime e.g. connection lost, user intervenes,
// computational bandwidth not reached" (§3.6.2) and the Condor/SETI
// screensaver model of §3.7 (CPU donated only while the machine is idle).
//
// A Trace is a deterministic alternating up/down timeline drawn from
// exponential holding times. The virtual-time farm simulator executes a
// bag of tasks over a set of traces, with or without the checkpointing
// the paper proposes for migrating interrupted computations, and reports
// makespan, wasted work and migrations. Experiments E2, T1 and A1 are
// built on it.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Interval is one up or down period.
type Interval struct {
	Start, End float64
	Up         bool
}

// Trace is a peer's availability timeline over [0, Horizon).
type Trace struct {
	Intervals []Interval
	Horizon   float64
}

// GenTrace draws a timeline of exponential up/down holding times with
// the given means, starting up with probability meanUp/(meanUp+meanDown).
// meanDown <= 0 yields an always-up trace.
func GenTrace(seed int64, horizon, meanUp, meanDown float64) *Trace {
	if horizon <= 0 || meanUp <= 0 {
		return &Trace{Horizon: math.Max(horizon, 0)}
	}
	tr := &Trace{Horizon: horizon}
	if meanDown <= 0 {
		tr.Intervals = []Interval{{Start: 0, End: horizon, Up: true}}
		return tr
	}
	rng := rand.New(rand.NewSource(seed))
	up := rng.Float64() < meanUp/(meanUp+meanDown)
	t := 0.0
	for t < horizon {
		mean := meanUp
		if !up {
			mean = meanDown
		}
		d := rng.ExpFloat64() * mean
		end := math.Min(t+d, horizon)
		tr.Intervals = append(tr.Intervals, Interval{Start: t, End: end, Up: up})
		t = end
		up = !up
	}
	return tr
}

// AlwaysUp returns a fully-available trace.
func AlwaysUp(horizon float64) *Trace {
	return &Trace{Horizon: horizon,
		Intervals: []Interval{{Start: 0, End: horizon, Up: true}}}
}

// Availability reports the fraction of the horizon the peer is up.
func (t *Trace) Availability() float64 {
	if t.Horizon <= 0 {
		return 0
	}
	var up float64
	for _, iv := range t.Intervals {
		if iv.Up {
			up += iv.End - iv.Start
		}
	}
	return up / t.Horizon
}

// UpAt reports whether the peer is up at time x.
func (t *Trace) UpAt(x float64) bool {
	i := sort.Search(len(t.Intervals), func(i int) bool { return t.Intervals[i].End > x })
	if i >= len(t.Intervals) {
		return false
	}
	iv := t.Intervals[i]
	return iv.Up && x >= iv.Start
}

// NextUp returns the first up interval whose end is after time x,
// clipped so Start >= x. ok is false past the horizon.
func (t *Trace) NextUp(x float64) (Interval, bool) {
	i := sort.Search(len(t.Intervals), func(i int) bool { return t.Intervals[i].End > x })
	for ; i < len(t.Intervals); i++ {
		iv := t.Intervals[i]
		if !iv.Up {
			continue
		}
		if iv.Start < x {
			iv.Start = x
		}
		if iv.End > iv.Start {
			return iv, true
		}
	}
	return Interval{}, false
}

// FarmOptions configures a simulation run.
type FarmOptions struct {
	// Checkpoint enables periodic state saves: on interruption only the
	// work since the last checkpoint is lost and the remainder migrates.
	Checkpoint bool
	// CheckpointInterval is the virtual time between saves (required
	// when Checkpoint is set).
	CheckpointInterval float64
	// Releases gives each task an arrival time before which it cannot
	// start (aligned with the tasks slice); nil means all available at 0.
	// This models a data stream: the GEO600 chunks of §3.6.2 arrive every
	// 900 s rather than all at once.
	Releases []float64
}

// FarmResult summarises a simulated run.
type FarmResult struct {
	// Completed counts tasks finished within the horizon.
	Completed int
	// Makespan is the finish time of the last completed task (0 when
	// nothing completed).
	Makespan float64
	// Wasted is the total work redone due to interruptions.
	Wasted float64
	// Migrations counts task moves between peers.
	Migrations int
	// Interrupted counts interruption events.
	Interrupted int
}

// SimulateFarm executes tasks (each with a work requirement in seconds of
// CPU) over the peer traces in FIFO order, assigning each ready task to
// the peer that can start it earliest. Tasks interrupted by downtime lose
// their uncheckpointed progress and are re-queued. Tasks that cannot
// finish within the traces' horizon are left incomplete.
func SimulateFarm(tasks []float64, peers []*Trace, opts FarmOptions) (FarmResult, error) {
	if len(peers) == 0 {
		return FarmResult{}, fmt.Errorf("churn: no peers")
	}
	if opts.Checkpoint && opts.CheckpointInterval <= 0 {
		return FarmResult{}, fmt.Errorf("churn: checkpointing needs a positive interval")
	}
	if opts.Releases != nil && len(opts.Releases) != len(tasks) {
		return FarmResult{}, fmt.Errorf("churn: %d releases for %d tasks",
			len(opts.Releases), len(tasks))
	}
	for i, w := range tasks {
		if w <= 0 {
			return FarmResult{}, fmt.Errorf("churn: task %d has non-positive work %g", i, w)
		}
	}

	type pending struct {
		remaining float64
		readyAt   float64
		lastPeer  int // -1 before first placement
	}
	queue := make([]*pending, len(tasks))
	for i, w := range tasks {
		p := &pending{remaining: w, lastPeer: -1}
		if opts.Releases != nil {
			p.readyAt = opts.Releases[i]
		}
		queue[i] = p
	}
	freeAt := make([]float64, len(peers))

	var res FarmResult
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]

		// Pick the peer that can start this task earliest.
		best, bestStart := -1, math.Inf(1)
		var bestIv Interval
		for p, tr := range peers {
			at := math.Max(freeAt[p], task.readyAt)
			iv, ok := tr.NextUp(at)
			if !ok {
				continue
			}
			if iv.Start < bestStart {
				best, bestStart, bestIv = p, iv.Start, iv
			}
		}
		if best == -1 {
			continue // no peer can ever run it: incomplete
		}
		if task.lastPeer >= 0 && task.lastPeer != best {
			res.Migrations++
		}
		task.lastPeer = best

		span := bestIv.End - bestIv.Start
		if task.remaining <= span {
			// Finishes within this up interval.
			end := bestIv.Start + task.remaining
			freeAt[best] = end
			res.Completed++
			if end > res.Makespan {
				res.Makespan = end
			}
			continue
		}
		// Interrupted at the end of the interval.
		res.Interrupted++
		done := span
		if opts.Checkpoint {
			saved := math.Floor(done/opts.CheckpointInterval) * opts.CheckpointInterval
			res.Wasted += done - saved
			task.remaining -= saved
		} else {
			res.Wasted += done
		}
		freeAt[best] = bestIv.End
		task.readyAt = bestIv.End
		queue = append(queue, task)
	}
	return res, nil
}

// RequiredPeers performs the T1 sizing search: the smallest peer count
// (up to maxPeers) whose simulated farm completes all tasks within
// deadline. Each peer's trace is generated from (seedBase+i, horizon,
// meanUp, meanDown). It returns maxPeers+1 when even maxPeers peers are
// insufficient.
func RequiredPeers(tasks []float64, deadline float64, maxPeers int,
	seedBase int64, meanUp, meanDown float64, opts FarmOptions) (int, FarmResult, error) {
	horizon := deadline
	var last FarmResult
	for k := 1; k <= maxPeers; k++ {
		peers := make([]*Trace, k)
		for i := range peers {
			peers[i] = GenTrace(seedBase+int64(i), horizon, meanUp, meanDown)
		}
		res, err := SimulateFarm(tasks, peers, opts)
		if err != nil {
			return 0, FarmResult{}, err
		}
		last = res
		if res.Completed == len(tasks) && res.Makespan <= deadline {
			return k, res, nil
		}
	}
	return maxPeers + 1, last, nil
}
