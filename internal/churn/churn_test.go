package churn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenTraceStructure(t *testing.T) {
	tr := GenTrace(1, 1000, 50, 10)
	if tr.Horizon != 1000 || len(tr.Intervals) == 0 {
		t.Fatalf("trace = %+v", tr)
	}
	// Intervals tile [0, horizon) contiguously, alternating up/down.
	prevEnd := 0.0
	for i, iv := range tr.Intervals {
		if iv.Start != prevEnd {
			t.Fatalf("gap before interval %d", i)
		}
		if iv.End <= iv.Start && iv.End != tr.Horizon {
			t.Fatalf("empty interval %d: %+v", i, iv)
		}
		if i > 0 && iv.Up == tr.Intervals[i-1].Up {
			t.Fatalf("intervals %d and %d both up=%v", i-1, i, iv.Up)
		}
		prevEnd = iv.End
	}
	if math.Abs(prevEnd-1000) > 1e-9 {
		t.Errorf("trace ends at %g", prevEnd)
	}
	// Determinism.
	tr2 := GenTrace(1, 1000, 50, 10)
	if len(tr2.Intervals) != len(tr.Intervals) {
		t.Error("same seed produced different trace")
	}
}

func TestGenTraceAvailabilityMatchesMeans(t *testing.T) {
	// meanUp 90, meanDown 10 -> ~0.9 availability over a long horizon.
	tr := GenTrace(7, 1e6, 90, 10)
	if a := tr.Availability(); math.Abs(a-0.9) > 0.03 {
		t.Errorf("availability = %g, want ~0.9", a)
	}
	if a := AlwaysUp(100).Availability(); a != 1 {
		t.Errorf("AlwaysUp availability = %g", a)
	}
	if GenTrace(1, 0, 10, 10).Availability() != 0 {
		t.Error("zero-horizon availability")
	}
	// meanDown <= 0 yields always-up.
	if a := GenTrace(1, 100, 10, 0).Availability(); a != 1 {
		t.Errorf("no-downtime availability = %g", a)
	}
}

func TestUpAtAndNextUp(t *testing.T) {
	tr := &Trace{Horizon: 100, Intervals: []Interval{
		{0, 10, true}, {10, 30, false}, {30, 60, true}, {60, 100, false},
	}}
	cases := map[float64]bool{0: true, 5: true, 10: false, 29: false, 30: true, 59.9: true, 60: false, 99: false}
	for x, want := range cases {
		if got := tr.UpAt(x); got != want {
			t.Errorf("UpAt(%g) = %v", x, got)
		}
	}
	if tr.UpAt(500) {
		t.Error("up past horizon")
	}
	iv, ok := tr.NextUp(5)
	if !ok || iv.Start != 5 || iv.End != 10 {
		t.Errorf("NextUp(5) = %+v", iv)
	}
	iv, ok = tr.NextUp(15)
	if !ok || iv.Start != 30 || iv.End != 60 {
		t.Errorf("NextUp(15) = %+v", iv)
	}
	if _, ok := tr.NextUp(60); ok {
		t.Error("NextUp found interval past last up period")
	}
}

func TestSimulateFarmPerfectPeers(t *testing.T) {
	// 8 tasks of 10s on 4 always-up peers: two waves, makespan 20.
	tasks := make([]float64, 8)
	for i := range tasks {
		tasks[i] = 10
	}
	peers := make([]*Trace, 4)
	for i := range peers {
		peers[i] = AlwaysUp(1000)
	}
	res, err := SimulateFarm(tasks, peers, FarmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 || res.Makespan != 20 || res.Wasted != 0 || res.Migrations != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSimulateFarmLinearSpeedup(t *testing.T) {
	tasks := make([]float64, 32)
	for i := range tasks {
		tasks[i] = 5
	}
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		peers := make([]*Trace, k)
		for i := range peers {
			peers[i] = AlwaysUp(10000)
		}
		res, err := SimulateFarm(tasks, peers, FarmOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := 32.0 * 5 / float64(k)
		if math.Abs(res.Makespan-want) > 1e-9 {
			t.Errorf("k=%d makespan=%g want %g", k, res.Makespan, want)
		}
		if res.Makespan >= prev && k > 1 {
			t.Errorf("no speedup at k=%d", k)
		}
		prev = res.Makespan
	}
}

func TestSimulateFarmInterruptionWithoutCheckpointRestarts(t *testing.T) {
	// One peer, up 0-10, down 10-20, up 20-100. Task of 15s: first
	// attempt does 10s (wasted), second attempt runs 20-35.
	tr := &Trace{Horizon: 100, Intervals: []Interval{
		{0, 10, true}, {10, 20, false}, {20, 100, true},
	}}
	res, err := SimulateFarm([]float64{15}, []*Trace{tr}, FarmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Interrupted != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Wasted != 10 {
		t.Errorf("wasted = %g, want 10", res.Wasted)
	}
	if res.Makespan != 35 {
		t.Errorf("makespan = %g, want 35", res.Makespan)
	}
}

func TestSimulateFarmCheckpointLimitsWaste(t *testing.T) {
	tr := &Trace{Horizon: 100, Intervals: []Interval{
		{0, 10, true}, {10, 20, false}, {20, 100, true},
	}}
	res, err := SimulateFarm([]float64{15}, []*Trace{tr},
		FarmOptions{Checkpoint: true, CheckpointInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 10s done, checkpoints at 3,6,9 -> only 1s lost; 6s remain.
	if res.Wasted != 1 {
		t.Errorf("wasted = %g, want 1", res.Wasted)
	}
	if res.Makespan != 26 {
		t.Errorf("makespan = %g, want 26", res.Makespan)
	}
}

func TestSimulateFarmCheckpointMigratesToOtherPeer(t *testing.T) {
	// Peer 0 dies at t=10 forever; peer 1 is up from t=0. A 30s task
	// started on peer 0 (both free at 0; peer 0 listed first wins ties)
	// must migrate.
	p0 := &Trace{Horizon: 100, Intervals: []Interval{{0, 10, true}, {10, 100, false}}}
	p1 := AlwaysUp(100)
	res, err := SimulateFarm([]float64{30}, []*Trace{p0, p1},
		FarmOptions{Checkpoint: true, CheckpointInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Migrations != 1 {
		t.Fatalf("res = %+v", res)
	}
	// 10 done on p0 (all checkpointed), 20 remain; p1 free at 0 but task
	// ready at 10 -> finishes at 30.
	if res.Makespan != 30 {
		t.Errorf("makespan = %g, want 30", res.Makespan)
	}
}

func TestSimulateFarmIncompleteWhenHorizonTooShort(t *testing.T) {
	res, err := SimulateFarm([]float64{50, 50}, []*Trace{AlwaysUp(60)}, FarmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1", res.Completed)
	}
}

func TestSimulateFarmValidation(t *testing.T) {
	if _, err := SimulateFarm([]float64{1}, nil, FarmOptions{}); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := SimulateFarm([]float64{0}, []*Trace{AlwaysUp(1)}, FarmOptions{}); err == nil {
		t.Error("zero-work task accepted")
	}
	if _, err := SimulateFarm([]float64{1}, []*Trace{AlwaysUp(1)},
		FarmOptions{Checkpoint: true}); err == nil {
		t.Error("checkpoint without interval accepted")
	}
}

func TestRequiredPeersMonotoneInAvailability(t *testing.T) {
	// 40 tasks x 5h of work, deadline 15h (in hours). Perfect peers need
	// ceil(200/15) = 14; lower availability must need at least as many.
	tasks := make([]float64, 40)
	for i := range tasks {
		tasks[i] = 5
	}
	perfect, _, err := RequiredPeers(tasks, 15, 200, 1, 1, 0, FarmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if perfect != 14 {
		t.Errorf("perfect peers = %d, want 14", perfect)
	}
	churny, _, err := RequiredPeers(tasks, 15, 200, 1, 8, 2, FarmOptions{}) // ~80% up
	if err != nil {
		t.Fatal(err)
	}
	if churny < perfect {
		t.Errorf("churny %d < perfect %d", churny, perfect)
	}
	veryChurny, _, err := RequiredPeers(tasks, 15, 200, 1, 5, 5, FarmOptions{}) // ~50%
	if err != nil {
		t.Fatal(err)
	}
	if veryChurny < churny {
		t.Errorf("50%% availability needs %d < 80%%'s %d", veryChurny, churny)
	}
}

func TestRequiredPeersInsufficientCap(t *testing.T) {
	k, _, err := RequiredPeers([]float64{100}, 10, 3, 1, 1, 0, FarmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 { // maxPeers+1 signals "not achievable"
		t.Errorf("k = %d, want 4", k)
	}
}

// Property: for a single task on a single peer — where both variants see
// the identical outage sequence — checkpointing never increases wasted
// work and never delays completion. (With multiple tasks/peers the two
// schedules diverge and pathwise dominance genuinely does not hold.)
func TestQuickCheckpointNeverWorseSinglePath(t *testing.T) {
	f := func(seed int64, workRaw uint8) bool {
		work := 1 + float64(workRaw%40)
		peer := GenTrace(seed, 2000, 20, 5)
		plain, err := SimulateFarm([]float64{work}, []*Trace{peer}, FarmOptions{})
		if err != nil {
			return false
		}
		ckpt, err := SimulateFarm([]float64{work}, []*Trace{peer},
			FarmOptions{Checkpoint: true, CheckpointInterval: 0.5})
		if err != nil {
			return false
		}
		if ckpt.Wasted > plain.Wasted+1e-9 {
			return false
		}
		if plain.Completed == 1 && ckpt.Completed == 1 &&
			ckpt.Makespan > plain.Makespan+1e-9 {
			return false
		}
		// Checkpointing can only help completion, never hurt it.
		return ckpt.Completed >= plain.Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
