// Package controller implements the Triana Controller of §3.2: "a user
// interface to Triana service daemons ... [that] acts as a scheduling
// manager for the complete application being run over a Triana network."
//
// A Controller wraps its own Service peer (the client component that
// pipes modules, programs and data to the other Triana service daemons)
// and adds the scheduling layer: discover candidate peers by capability,
// instantiate the group's distribution policy, annotate the task graph
// with the placement decision, and enact the plan.
package controller

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/capgroup"
	"consumergrid/internal/engine"
	"consumergrid/internal/policy"
	"consumergrid/internal/service"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
)

// Controller drives applications over a Triana network.
type Controller struct {
	svc  *service.Service
	logf func(format string, args ...any)

	// farmSeq numbers farm submissions; with the tenant it forms the
	// key that places each farm on a donor-pool shard.
	farmSeq atomic.Int64

	mu   sync.Mutex
	pool *DonorPool
}

// New wraps a service peer as a controller. The service's host despatches
// subgraphs and owns the module bundles the workers fetch.
func New(svc *service.Service, logf func(string, ...any)) *Controller {
	return &Controller{svc: svc, logf: logf}
}

// Service exposes the controller's own peer.
func (c *Controller) Service() *service.Service { return c.svc }

// RunOptions configures one application run.
type RunOptions struct {
	// Iterations drives the graph's source units.
	Iterations int
	// Seed makes runs reproducible.
	Seed int64
	// MinCPUMHz / MinFreeRAMMB filter candidate peers by the advertised
	// attributes (§4: peers "discovered based on very simple attributes
	// – such as CPU capability and available free memory").
	MinCPUMHz    float64
	MinFreeRAMMB float64
	// PeerGroup restricts candidates to a virtual peer group.
	PeerGroup string
	// RequireCaps restricts candidates to donors whose capability set
	// carries every listed key=value pair exactly (trianad
	// -require-caps). RunFarm resolves it through the donor pool's
	// group index to one capability group — despatch, speculation and
	// quorum then stay inside that group — while an empty or unknown
	// group falls back to the health-ranked whole pool, counted on
	// capgroup_fallback_total. Pull-path discovery filters service
	// adverts by the same pairs.
	RequireCaps map[string]string
	// MaxPeers bounds the candidate list (0 = unbounded).
	MaxPeers int
	// ForceLocal skips discovery and runs everything in-process.
	ForceLocal bool
	// PoolShards forces the donor-pool shard count. 0 derives one shard
	// per overlay ring member (shard ownership then agrees with advert
	// placement); explicit values suit tests and grids with few supers.
	PoolShards int
}

// Report describes a completed run.
type Report struct {
	// Dist carries the local engine result plus remote per-task counts.
	Dist *service.DistResult
	// Plan is the enacted distribution plan (nil for plain local runs).
	Plan *policy.Plan
	// GroupName is the distributed group ("" for plain local runs).
	GroupName string
	// Peers lists the peer IDs that participated.
	Peers []string
	// Annotated is the placement-annotated copy of the input graph.
	Annotated *taskgraph.Graph
}

// Result is a convenience accessor for the local engine result.
func (r *Report) Result() *engine.Result { return r.Dist.Local }

// DiscoverPeers queries the discovery layer for usable Triana services,
// excluding this controller's own peer. Results are sorted by descending
// advertised CPU so the policy gets the strongest peers first.
func (c *Controller) DiscoverPeers(opts RunOptions) ([]service.PeerRef, error) {
	ads, err := c.svc.Discovery().Discover(discoveryQuery(opts), 0)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(ads, func(i, j int) bool {
		ci, _ := strconv.ParseFloat(ads[i].Attr(advert.AttrCPUMHz), 64)
		cj, _ := strconv.ParseFloat(ads[j].Attr(advert.AttrCPUMHz), 64)
		if ci != cj {
			return ci > cj
		}
		return ads[i].PeerID < ads[j].PeerID
	})
	var peers []service.PeerRef
	for _, ad := range ads {
		if ad.PeerID == c.svc.PeerID() {
			continue
		}
		peers = append(peers, service.PeerRef{ID: ad.PeerID, Addr: ad.Addr})
		if opts.MaxPeers > 0 && len(peers) >= opts.MaxPeers {
			break
		}
	}
	return peers, nil
}

// distributableGroups lists top-level groups carrying a non-local
// control unit.
func distributableGroups(g *taskgraph.Graph) []string {
	var out []string
	for _, t := range g.Tasks {
		if t.IsGroup() && t.ControlUnit != "" && t.ControlUnit != policy.NameLocal {
			out = append(out, t.Name)
		}
	}
	return out
}

// Run executes the application: it validates the graph, plans the
// distribution of its control-unit-bearing group (at most one per run in
// this implementation), annotates the plan into the graph, and enacts it.
// With no distributable group — or none of the required peers — the graph
// runs locally, which is always correct because groups are semantically
// transparent.
func (c *Controller) Run(ctx context.Context, g *taskgraph.Graph, opts RunOptions) (*Report, error) {
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("controller: Iterations must be >= 1")
	}
	if err := g.Validate(units.Resolver()); err != nil {
		return nil, err
	}
	annotated := g.Clone()

	groups := distributableGroups(annotated)
	if len(groups) > 1 {
		return nil, fmt.Errorf("controller: %d distributable groups; one per run is supported (nest or merge them)", len(groups))
	}

	if len(groups) == 0 || opts.ForceLocal {
		res, err := c.svc.RunLocal(ctx, annotated, engine.Options{
			Iterations: opts.Iterations, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &Report{
			Dist:      &service.DistResult{Local: res, Remote: map[string]map[string]int{}},
			Annotated: annotated,
		}, nil
	}

	groupName := groups[0]
	gt := annotated.Find(groupName)
	pol, err := policy.New(gt.ControlUnit)
	if err != nil {
		return nil, err
	}
	peerRefs, err := c.DiscoverPeers(opts)
	if err != nil {
		c.log("controller: discovery failed (%v); running locally", err)
		peerRefs = nil
	}
	ids := make([]string, len(peerRefs))
	byID := make(map[string]service.PeerRef, len(peerRefs))
	for i, p := range peerRefs {
		ids[i] = p.ID
		byID[p.ID] = p
	}
	// Discovery ranks by advertised CPU; live health observations trump
	// the brochure. Peers that have actually been failing sink, peers
	// behind an open breaker go last.
	ids = policy.OrderByHealth(ids, c.svc.Health())
	plan, err := pol.Plan(gt, ids)
	if err != nil {
		return nil, err
	}
	if err := policy.Annotate(annotated, groupName, plan); err != nil {
		return nil, err
	}
	c.log("controller: group %s planned as %s over %d peers", groupName, plan.Kind, len(ids))

	dist, err := c.svc.RunDistributed(ctx, annotated, groupName, plan, byID, service.DistOptions{
		Iterations: opts.Iterations,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	var used []string
	for id := range dist.Remote {
		used = append(used, id)
	}
	sort.Strings(used)
	return &Report{
		Dist: dist, Plan: plan, GroupName: groupName,
		Peers: used, Annotated: annotated,
	}, nil
}

// FarmOptions configures RunFarm: discovery filters for the worker
// pool plus the chunked-farm knobs forwarded to service.FarmChunks.
type FarmOptions struct {
	// Discovery filters candidate workers (Iterations is ignored).
	Discovery RunOptions
	// Body builds the farmed group body (one external input, one
	// external output) — fresh per attempt.
	Body func() *taskgraph.Graph
	// ChunkAttempts, AttemptTimeout, InitialState, Heartbeat, Seed and
	// AfterChunk forward to service.FarmOptions.
	ChunkAttempts  int
	AttemptTimeout time.Duration
	InitialState   map[string][]byte
	Heartbeat      bool
	Seed           int64
	AfterChunk     func(chunk int)
	// Speculate, SpeculateAfter, StragglerFactor, MaxSpeculative and
	// Quorum forward the straggler-mitigation and untrusted-peer knobs
	// to service.FarmOptions.
	Speculate       bool
	SpeculateAfter  time.Duration
	StragglerFactor float64
	MaxSpeculative  int
	Quorum          int
	// Tenant names the submitting tenant: it picks the farm's donor-pool
	// shard, charges the fair-share admission queue, and labels the
	// despatch envelope, spans and metrics. Empty means the default
	// tenant.
	Tenant string
}

// RunFarm discovers workers and streams the chunks through them with
// the resilient re-despatch loop: a worker that dies mid-chunk loses
// that chunk to an alternate peer with the checkpointed state restored,
// so the committed output stream matches an uninterrupted run.
func (c *Controller) RunFarm(ctx context.Context, chunks [][]types.Data, opts FarmOptions) (*service.FarmReport, error) {
	tenant := opts.Tenant
	if tenant == "" {
		tenant = service.DefaultTenant
	}
	// A running donor pool already holds push-maintained candidates, so
	// the per-farm discovery round trip is skipped entirely: the farm's
	// (tenant, sequence) key hashes onto one pool shard, whose donors
	// become the candidate set — selection, ranking and despatch then
	// run shard-locally. An empty pool (or no pool) falls back to a
	// pull query.
	farmKey := fmt.Sprintf("tenant/%s/farm/%d", tenant, c.farmSeq.Add(1))
	peers, group, members, err := c.farmCandidates(farmKey, opts.Discovery)
	if err != nil {
		return nil, fmt.Errorf("controller: farm discovery: %w", err)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("controller: no peers available for farm")
	}
	if group != "" {
		c.log("controller: farming %d chunks for tenant %s over group %s (%d members)",
			len(chunks), tenant, group, len(peers))
	} else {
		c.log("controller: farming %d chunks for tenant %s over %d peers", len(chunks), tenant, len(peers))
	}
	return c.svc.FarmChunks(ctx, chunks, service.FarmOptions{
		Body:            opts.Body,
		Peers:           peers,
		CodeAddr:        c.svc.Addr(),
		ChunkAttempts:   opts.ChunkAttempts,
		AttemptTimeout:  opts.AttemptTimeout,
		InitialState:    opts.InitialState,
		Heartbeat:       opts.Heartbeat,
		Seed:            opts.Seed,
		AfterChunk:      opts.AfterChunk,
		Speculate:       opts.Speculate,
		SpeculateAfter:  opts.SpeculateAfter,
		StragglerFactor: opts.StragglerFactor,
		MaxSpeculative:  opts.MaxSpeculative,
		Quorum:          opts.Quorum,
		Tenant:          tenant,
		Group:           group,
		GroupMembers:    members,
	})
}

// farmCandidates picks one farm's candidate set. With a capability
// requirement, the donor pool's group index (or, poolless, a pull
// query over group adverts) resolves it to one capability group whose
// members become the candidates — and the farm commits to that group.
// No populated matching group falls back to the ungrouped path,
// counted on capgroup_fallback_total, so a momentarily empty group
// never fails a farm. Without a requirement: the farm's pool shard,
// then a pull query.
func (c *Controller) farmCandidates(farmKey string, opts RunOptions) (peers []service.PeerRef, group string, members map[string]bool, err error) {
	if len(opts.RequireCaps) > 0 {
		c.mu.Lock()
		p := c.pool
		c.mu.Unlock()
		var refs []service.PeerRef
		var ok bool
		if p != nil {
			group, refs, ok = p.MatchGroup(opts.RequireCaps)
		} else {
			group, refs, ok = c.discoverGroup(opts.RequireCaps)
		}
		if ok {
			refs = capPeers(refs, opts.MaxPeers)
			members = make(map[string]bool, len(refs))
			for _, r := range refs {
				members[r.ID] = true
			}
			return refs, group, members, nil
		}
		capgroup.CountFallback()
		c.log("controller: no populated capability group matches %v; falling back to the whole pool", opts.RequireCaps)
		group = ""
		// The fallback deliberately drops the requirement: a pull query
		// still carrying the cap filters would find nothing either.
		opts.RequireCaps = nil
	}
	peers = c.pooledShardPeers(opts.MaxPeers, farmKey)
	if peers == nil {
		peers, err = c.DiscoverPeers(opts)
	}
	return peers, "", nil, err
}

// discoverGroup is the pull-path group resolution for controllers
// without a running donor pool: query group adverts, build a transient
// index, match. The transient index never touches the pool's gauges.
func (c *Controller) discoverGroup(req map[string]string) (string, []service.PeerRef, bool) {
	ads, err := c.svc.Discovery().Discover(advert.Query{Kind: advert.KindGroup}, 0)
	if err != nil {
		c.log("controller: group discovery failed: %v", err)
		return "", nil, false
	}
	idx := capgroup.NewIndex()
	for _, ad := range ads {
		caps, key, ok := capgroup.FromAdvert(ad)
		if !ok {
			continue
		}
		cpu, _ := strconv.ParseFloat(ad.Attr(advert.AttrCPUMHz), 64)
		idx.Put(key, caps, capgroup.Member{PeerID: ad.PeerID, Addr: ad.Addr, CPUMHz: cpu})
	}
	for _, key := range idx.MatchAll(req) {
		var refs []service.PeerRef
		for _, m := range idx.Members(key) {
			if m.PeerID == c.svc.PeerID() {
				continue
			}
			refs = append(refs, service.PeerRef{ID: m.PeerID, Addr: m.Addr})
		}
		if len(refs) > 0 {
			return key, refs, true
		}
	}
	return "", nil, false
}

// pooledPeers snapshots the donor pool, capped to max when positive.
// Returns nil (not an empty slice) when no pool is running or the pool
// has not seen any donors yet, signalling the caller to fall back to a
// pull query.
func (c *Controller) pooledPeers(max int) []service.PeerRef {
	c.mu.Lock()
	p := c.pool
	c.mu.Unlock()
	if p == nil {
		return nil
	}
	return capPeers(p.Peers(), max)
}

// pooledShardPeers snapshots the shard owning key (whole-pool fallback
// when that shard is empty), capped to max when positive. Nil when no
// pool is running or no donor is known anywhere.
func (c *Controller) pooledShardPeers(max int, key string) []service.PeerRef {
	c.mu.Lock()
	p := c.pool
	c.mu.Unlock()
	if p == nil {
		return nil
	}
	return capPeers(p.ShardPeers(key), max)
}

func capPeers(peers []service.PeerRef, max int) []service.PeerRef {
	if len(peers) == 0 {
		return nil
	}
	if max > 0 && len(peers) > max {
		peers = peers[:max]
	}
	return peers
}

func (c *Controller) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}
