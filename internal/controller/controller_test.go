package controller

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"consumergrid/internal/discovery"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/policy"
	"consumergrid/internal/service"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/signal"
	"consumergrid/internal/units/unitio"

	_ "consumergrid/internal/units/flow"
)

// testNet spins a rendezvous, n worker services and a controller, all on
// one in-proc transport.
type testNet struct {
	tr      *jxtaserve.InProc
	ctl     *Controller
	workers []*service.Service
}

func newNet(t *testing.T, nWorkers int, workerOpts func(i int) service.Options) *testNet {
	t.Helper()
	tr := jxtaserve.NewInProc()
	rdvHost, err := jxtaserve.NewHost("rdv", tr, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdvHost.Close() })
	discovery.NewNode(rdvHost, newCache(), discovery.Config{
		Mode: discovery.ModeRendezvous, IsRendezvous: true})
	dcfg := discovery.Config{Mode: discovery.ModeRendezvous, Rendezvous: []string{rdvHost.Addr()}}

	net := &testNet{tr: tr}
	for i := 0; i < nWorkers; i++ {
		opts := service.Options{CPUMHz: 1000 + 100*i, FreeRAMMB: 256}
		if workerOpts != nil {
			opts = workerOpts(i)
		}
		opts.PeerID = workerID(i)
		opts.Transport = tr
		opts.Discovery = dcfg
		w, err := service.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		if err := w.Advertise(time.Hour); err != nil {
			t.Fatal(err)
		}
		net.workers = append(net.workers, w)
	}
	ctlSvc, err := service.New(service.Options{
		PeerID: "controller", Transport: tr, Discovery: dcfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctlSvc.Close() })
	net.ctl = New(ctlSvc, t.Logf)
	return net
}

func workerID(i int) string { return "worker-" + string(rune('a'+i)) }

func figure1(t *testing.T, control string) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.New("fig1")
	add := func(name, unit string, params map[string]string) {
		task, err := units.NewTask(name, unit)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range params {
			task.SetParam(k, v)
		}
		g.MustAdd(task)
	}
	add("Wave", signal.NameWave, map[string]string{
		"frequency": "1000", "samplingRate": "8000", "samples": "512"})
	add("Gaussian", signal.NameGaussianNoise, map[string]string{"sigma": "4"})
	add("PowerSpec", signal.NamePowerSpectrum, nil)
	add("AccumStat", signal.NameAccumStat, nil)
	add("Grapher", unitio.NameGrapher, nil)
	g.ConnectNamed("Wave", 0, "Gaussian", 0)
	g.ConnectNamed("Gaussian", 0, "PowerSpec", 0)
	g.ConnectNamed("PowerSpec", 0, "AccumStat", 0)
	g.ConnectNamed("AccumStat", 0, "Grapher", 0)
	gt, err := g.GroupTasks("GroupTask", []string{"Gaussian", "PowerSpec"})
	if err != nil {
		t.Fatal(err)
	}
	gt.ControlUnit = control
	return g
}

func checkSignal(t *testing.T, rep *Report, iters int) {
	t.Helper()
	grapher := rep.Result().Unit("Grapher").(*unitio.Grapher)
	if grapher.Seen() != iters {
		t.Errorf("grapher saw %d, want %d", grapher.Seen(), iters)
	}
	spec := grapher.Last().(*types.Spectrum)
	if got := spec.PeakFrequency(); math.Abs(got-1000) > 2*spec.Resolution {
		t.Errorf("peak at %g Hz", got)
	}
}

func TestControllerEndToEndParallel(t *testing.T) {
	net := newNet(t, 3, nil)
	rep, err := net.ctl.Run(context.Background(), figure1(t, policy.NameParallel),
		RunOptions{Iterations: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkSignal(t, rep, 12)
	if rep.Plan.Kind != policy.KindParallel || len(rep.Peers) != 3 {
		t.Errorf("plan = %+v peers = %v", rep.Plan, rep.Peers)
	}
	// The annotated graph records the decision.
	gt := rep.Annotated.Find("GroupTask")
	if gt.Param("replicas", "") != "3" {
		t.Errorf("annotation = %v", gt.Params)
	}
	// All 12 items processed across replicas.
	total := 0
	for _, counts := range rep.Dist.Remote {
		total += counts["Gaussian"]
	}
	if total != 12 {
		t.Errorf("remote gaussians = %d", total)
	}
}

func TestControllerEndToEndPipeline(t *testing.T) {
	net := newNet(t, 2, nil)
	rep, err := net.ctl.Run(context.Background(), figure1(t, policy.NamePeerToPeer),
		RunOptions{Iterations: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkSignal(t, rep, 8)
	if rep.Plan.Kind != policy.KindPipeline {
		t.Errorf("plan kind = %v", rep.Plan.Kind)
	}
	// Placement annotated on members.
	body := rep.Annotated.Find("GroupTask").Group
	if body.Find("Gaussian").Placement == "" || body.Find("PowerSpec").Placement == "" {
		t.Error("placement annotations missing")
	}
}

func TestControllerFallsBackToLocalWithoutPeers(t *testing.T) {
	net := newNet(t, 0, nil)
	rep, err := net.ctl.Run(context.Background(), figure1(t, policy.NameParallel),
		RunOptions{Iterations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSignal(t, rep, 5)
	if rep.Plan.Kind != policy.KindLocal || len(rep.Peers) != 0 {
		t.Errorf("plan = %+v", rep.Plan)
	}
}

func TestControllerForceLocal(t *testing.T) {
	net := newNet(t, 2, nil)
	rep, err := net.ctl.Run(context.Background(), figure1(t, policy.NameParallel),
		RunOptions{Iterations: 5, Seed: 1, ForceLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSignal(t, rep, 5)
	if len(rep.Dist.Remote) != 0 {
		t.Error("ForceLocal distributed anyway")
	}
}

func TestControllerCapabilityFiltering(t *testing.T) {
	net := newNet(t, 3, func(i int) service.Options {
		return service.Options{CPUMHz: 500 * (i + 1), FreeRAMMB: 128} // 500, 1000, 1500
	})
	peers, err := net.ctl.DiscoverPeers(RunOptions{MinCPUMHz: 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("peers = %+v", peers)
	}
	// Sorted by descending CPU.
	if peers[0].ID != workerID(2) || peers[1].ID != workerID(1) {
		t.Errorf("order = %s, %s", peers[0].ID, peers[1].ID)
	}
	// MaxPeers bound.
	peers, _ = net.ctl.DiscoverPeers(RunOptions{MaxPeers: 1})
	if len(peers) != 1 {
		t.Errorf("MaxPeers ignored: %d", len(peers))
	}
}

func TestControllerPeerGroupFiltering(t *testing.T) {
	net := newNet(t, 2, func(i int) service.Options {
		group := "cardiff"
		if i == 1 {
			group = "swansea"
		}
		return service.Options{CPUMHz: 1000, PeerGroup: group}
	})
	peers, err := net.ctl.DiscoverPeers(RunOptions{PeerGroup: "cardiff"})
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].ID != workerID(0) {
		t.Fatalf("peers = %+v", peers)
	}
}

func TestControllerRejectsBadInput(t *testing.T) {
	net := newNet(t, 1, nil)
	if _, err := net.ctl.Run(context.Background(), figure1(t, policy.NameParallel),
		RunOptions{}); err == nil {
		t.Error("zero iterations accepted")
	}
	// Unknown unit in graph.
	bad := taskgraph.New("bad")
	bad.AddUnit("X", "no.such.Unit", 0, 1)
	if _, err := net.ctl.Run(context.Background(), bad, RunOptions{Iterations: 1}); err == nil {
		t.Error("invalid graph accepted")
	}
	// Unknown policy.
	g := figure1(t, "policy.Bogus")
	if _, err := net.ctl.Run(context.Background(), g, RunOptions{Iterations: 1}); err == nil {
		t.Error("unknown policy accepted")
	}
	// Two distributable groups.
	g2 := figure1(t, policy.NameParallel)
	extra := taskgraph.New("e")
	w, _ := units.NewTask("W2", signal.NameWave)
	extra.MustAdd(w)
	n, _ := units.NewTask("N2", "triana.flow.Null")
	extra.MustAdd(n)
	extra.ConnectNamed("W2", 0, "N2", 0)
	for _, task := range extra.Tasks {
		g2.MustAdd(task)
	}
	for _, conn := range extra.Connections {
		g2.Connections = append(g2.Connections, conn)
	}
	if _, err := g2.GroupTasks("G2", []string{"W2", "N2"}); err != nil {
		t.Fatal(err)
	}
	g2.Find("G2").ControlUnit = policy.NameParallel
	_, err := net.ctl.Run(context.Background(), g2, RunOptions{Iterations: 1})
	if err == nil || !strings.Contains(err.Error(), "one per run") {
		t.Errorf("two groups err = %v", err)
	}
}

func TestControllerLocalGroupControlRunsLocally(t *testing.T) {
	net := newNet(t, 2, nil)
	rep, err := net.ctl.Run(context.Background(), figure1(t, policy.NameLocal),
		RunOptions{Iterations: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	checkSignal(t, rep, 4)
	if len(rep.Dist.Remote) != 0 {
		t.Error("local control unit distributed")
	}
}
