package controller

// Capability-group acceptance scenarios: a mixed ring whose donors run
// two different unit-registry versions must farm each workload only to
// group-matching donors; a quorum electorate must come from a single
// group; and a requirement no populated group satisfies must fall back
// to the health-ranked whole pool — counted, not failed.

import (
	"context"
	"testing"
	"time"

	"consumergrid/internal/capgroup"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/overlay"
	"consumergrid/internal/service"
	"consumergrid/internal/taskgraph"
)

// newCapNet is newOverlayNet with per-worker capability overrides: all
// workers share CPU/RAM (so their derived classes agree) and differ
// only in the Caps each is given — the deterministic stand-in for a
// ring mixing two unit-registry versions.
func newCapNet(t *testing.T, workerCaps []map[string]string) *overlayNet {
	t.Helper()
	tr := jxtaserve.NewInProc()
	ring := overlay.NewRing(0)
	net := &overlayNet{tr: tr}
	var superAddrs []string
	for _, id := range []string{"sp-0", "sp-1"} {
		h, err := jxtaserve.NewHost(id, tr, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		ring.Add(h.Addr())
		superAddrs = append(superAddrs, h.Addr())
		sp, err := overlay.NewSuper(h, overlay.SuperOptions{
			Ring: ring, Replication: 2, SweepInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sp.Close)
		net.supers = append(net.supers, sp)
	}
	newSvc := func(id string, caps map[string]string) *service.Service {
		s, err := service.New(service.Options{
			PeerID: id, Transport: tr, CPUMHz: 1500, FreeRAMMB: 256,
			Caps: caps,
			Overlay: &service.OverlayOptions{
				SuperPeers: superAddrs, Replication: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	for i, caps := range workerCaps {
		net.workers = append(net.workers, newSvc(workerID(i), caps))
	}
	net.ctl = New(newSvc("controller", nil), t.Logf)
	return net
}

// mixedRing builds the two-registry grid: workers a,b carry units
// r-v1, workers c,d carry r-v2, everything else about them equal.
func mixedRing(t *testing.T) *overlayNet {
	t.Helper()
	return newCapNet(t, []map[string]string{
		{"units": "r-v1"}, {"units": "r-v1"},
		{"units": "r-v2"}, {"units": "r-v2"},
	})
}

func advertiseAll(t *testing.T, net *overlayNet) {
	t.Helper()
	for _, w := range net.workers {
		if err := w.Advertise(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
}

func groupFarmOpts(t *testing.T, req map[string]string) FarmOptions {
	t.Helper()
	return FarmOptions{
		Discovery:      RunOptions{RequireCaps: req},
		Body:           func() *taskgraph.Graph { return smokeBody(t) },
		AttemptTimeout: 10 * time.Second,
	}
}

// jobCounts snapshots how many jobs each worker has ever hosted, so a
// farm's despatch footprint can be asserted as a delta (earlier farms
// in the same test legitimately leave jobs behind).
func jobCounts(net *overlayNet) map[string]int {
	out := make(map[string]int, len(net.workers))
	for _, w := range net.workers {
		out[w.PeerID()] = len(w.Jobs())
	}
	return out
}

// assertGroupOnly fails if any chunk committed outside the wanted
// member set, or any out-of-group worker hosted a new job since the
// before snapshot.
func assertGroupOnly(t *testing.T, net *overlayNet, rep *service.FarmReport,
	members map[string]bool, before map[string]int) {
	t.Helper()
	for peer, n := range rep.PeerChunks {
		if !members[peer] {
			t.Errorf("out-of-group peer %s committed %d chunks", peer, n)
		}
	}
	for _, w := range net.workers {
		if members[w.PeerID()] {
			continue
		}
		if got := len(w.Jobs()); got != before[w.PeerID()] {
			t.Errorf("out-of-group worker %s hosted %d new jobs",
				w.PeerID(), got-before[w.PeerID()])
		}
	}
}

// TestGroupFarmDespatchesOnlyToMatchingDonors is the mixed-ring
// acceptance: with the donor pool's group index live, a farm requiring
// units=r-v1 must despatch every chunk to the r-v1 workers and never
// touch the r-v2 workers — and the complementary requirement must do
// the reverse.
func TestGroupFarmDespatchesOnlyToMatchingDonors(t *testing.T) {
	net := mixedRing(t)
	pool, err := net.ctl.StartDonorPool(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	advertiseAll(t, net)
	waitFor(t, "group index populated", func() bool {
		_, members := pool.GroupIndex().Counts()
		return members == len(net.workers)
	})

	for _, tc := range []struct {
		version string
		members map[string]bool
	}{
		{"r-v1", map[string]bool{workerID(0): true, workerID(1): true}},
		{"r-v2", map[string]bool{workerID(2): true, workerID(3): true}},
	} {
		before := jobCounts(net)
		rep, err := net.ctl.RunFarm(context.Background(), smokeChunks(3, 2, 0),
			groupFarmOpts(t, map[string]string{"units": tc.version}))
		if err != nil {
			t.Fatalf("group farm for %s: %v", tc.version, err)
		}
		assertGroupOnly(t, net, rep, tc.members, before)
		committed := 0
		for _, n := range rep.PeerChunks {
			committed += n
		}
		if committed != 3 {
			t.Errorf("%s farm committed %d chunks, want 3", tc.version, committed)
		}
	}
}

// TestGroupQuorumElectorateStaysInGroup: a Quorum:2 farm requiring
// units=r-v1 seats both voters inside the r-v1 group; the r-v2 workers
// never receive a ballot even though the pool lists them — quorum
// votes never mix groups.
func TestGroupQuorumElectorateStaysInGroup(t *testing.T) {
	net := mixedRing(t)
	pool, err := net.ctl.StartDonorPool(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	advertiseAll(t, net)
	waitFor(t, "group index populated", func() bool {
		_, members := pool.GroupIndex().Counts()
		return members == len(net.workers)
	})

	opts := groupFarmOpts(t, map[string]string{"units": "r-v1"})
	opts.Quorum = 2
	before := jobCounts(net)
	rep, err := net.ctl.RunFarm(context.Background(), smokeChunks(2, 2, 0), opts)
	if err != nil {
		t.Fatalf("group quorum farm: %v", err)
	}
	assertGroupOnly(t, net, rep, map[string]bool{workerID(0): true, workerID(1): true}, before)
	if rep.QuorumDisagreements != 0 {
		t.Errorf("in-group electorate disagreed %d times; digests should be comparable by construction",
			rep.QuorumDisagreements)
	}
}

// TestGroupRequirementFallsBackToWholePool: a requirement no populated
// group satisfies must not fail the farm — it falls back to the
// health-ranked whole pool and counts the event on
// capgroup_fallback_total.
func TestGroupRequirementFallsBackToWholePool(t *testing.T) {
	net := mixedRing(t)
	pool, err := net.ctl.StartDonorPool(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	advertiseAll(t, net)
	waitFor(t, "donors pooled", func() bool { return pool.Size() == len(net.workers) })

	before := capgroup.FallbackTotal()
	rep, err := net.ctl.RunFarm(context.Background(), smokeChunks(2, 2, 0),
		groupFarmOpts(t, map[string]string{"units": "r-v9"}))
	if err != nil {
		t.Fatalf("empty-group farm must fall back, got: %v", err)
	}
	committed := 0
	for _, n := range rep.PeerChunks {
		committed += n
	}
	if committed != 2 {
		t.Errorf("fallback farm committed %d chunks, want 2", committed)
	}
	if got := capgroup.FallbackTotal(); got != before+1 {
		t.Errorf("capgroup_fallback_total moved %d -> %d, want +1", before, got)
	}
}

// TestGroupResolutionWithoutPool: a controller with no donor pool
// resolves the requirement over pulled group adverts — the pull path
// keeps group despatch working for one-shot controllers.
func TestGroupResolutionWithoutPool(t *testing.T) {
	net := mixedRing(t)
	advertiseAll(t, net)
	// Pull queries are synchronous against the supers; no pool, no wait
	// on push propagation — but the adverts themselves replicate
	// asynchronously, so wait until discovery sees all four members.
	waitFor(t, "group adverts discoverable", func() bool {
		return len(net.ctl.Service().CapabilityGroups()) == 2
	})

	before := jobCounts(net)
	rep, err := net.ctl.RunFarm(context.Background(), smokeChunks(2, 2, 0),
		groupFarmOpts(t, map[string]string{"units": "r-v2"}))
	if err != nil {
		t.Fatalf("poolless group farm: %v", err)
	}
	assertGroupOnly(t, net, rep, map[string]bool{workerID(2): true, workerID(3): true}, before)
}
