package controller

import "consumergrid/internal/advert"

func newCache() *advert.Cache { return advert.NewCache() }
