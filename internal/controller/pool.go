package controller

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"consumergrid/internal/advert"
	"consumergrid/internal/capgroup"
	"consumergrid/internal/overlay"
	"consumergrid/internal/service"
)

// DonorPool is the event-driven replacement for query-before-every-farm
// donor discovery: the controller registers one persistent subscription
// with the overlay and the super-peers push donor arrivals, departures
// and capability changes as they happen. RunFarm then reads the live
// pool instead of paying a discovery round trip per farm.
//
// The pool is sharded: each shard owns the slice of donors the
// overlay's consistent-hash ring maps to it (the same Ring that places
// adverts, so shard ownership and advert placement agree), with its own
// mutex and maps. A farm is placed on one shard by hashing its
// (tenant, farm) key, so concurrent farms on different shards select
// candidates, rank health and race speculative attempts without ever
// touching a shared lock — the despatch plane scales with the shard
// count instead of serialising on one pool mutex.
type DonorPool struct {
	ctl   *Controller
	subID string

	// ring places donors and farms onto shards. Its members are the
	// overlay ring's nodes at StartDonorPool time (one shard per
	// super-peer) unless RunOptions.PoolShards forced a synthetic
	// shard count; membership is fixed for the pool's lifetime.
	ring   *overlay.Ring
	shards map[string]*poolShard
	names  []string // sorted shard names

	// byAdvert resolves retractions (which carry only the advert ID)
	// back to the peer, and thus the owning shard. Touched only by the
	// single event-loop goroutine, so it needs no lock.
	byAdvert map[string]string

	// groups is the capability-group partition of the pool: a second
	// push-maintained subscription (Kind "group") feeds a live
	// membership index, so "any member of group G" resolves without a
	// discovery round trip. gsubID names that subscription.
	groups *capgroup.Index
	gsubID string

	wg sync.WaitGroup
}

// poolShard is one independently-locked slice of the donor pool.
type poolShard struct {
	name string

	mu     sync.Mutex
	donors map[string]donorEntry // by peer ID
	events int
}

type donorEntry struct {
	ref service.PeerRef
	cpu float64
}

// discoveryQuery translates the discovery filters of RunOptions into an
// advert query — shared by DiscoverPeers (pull) and StartDonorPool
// (push) so both paths select identical donors.
func discoveryQuery(opts RunOptions) advert.Query {
	q := advert.Query{Kind: advert.KindService, Name: service.ServiceType}
	if opts.MinCPUMHz > 0 || opts.MinFreeRAMMB > 0 {
		q.MinAttrs = map[string]float64{}
		if opts.MinCPUMHz > 0 {
			q.MinAttrs[advert.AttrCPUMHz] = opts.MinCPUMHz
		}
		if opts.MinFreeRAMMB > 0 {
			q.MinAttrs[advert.AttrFreeRAMMB] = opts.MinFreeRAMMB
		}
	}
	if opts.PeerGroup != "" {
		q.Attrs = map[string]string{advert.AttrGroup: opts.PeerGroup}
	}
	if len(opts.RequireCaps) > 0 {
		// Capability pairs ride service adverts as cap.* attributes, so
		// the pull path selects only capability-matching donors.
		if q.Attrs == nil {
			q.Attrs = map[string]string{}
		}
		for k, v := range opts.RequireCaps {
			q.Attrs[capgroup.AttrCap+k] = v
		}
	}
	return q
}

// StartDonorPool subscribes the controller to donor adverts matching
// the given filters and keeps a live sharded pool from the pushes.
// Requires the service to be running on the overlay. The pool stays
// registered until Close; subsequent RunFarm calls draw peers from
// their farm's shard without querying.
func (c *Controller) StartDonorPool(opts RunOptions) (*DonorPool, error) {
	cl := c.svc.Overlay()
	if cl == nil {
		return nil, fmt.Errorf("controller: donor pool requires the discovery overlay")
	}
	var names []string
	if opts.PoolShards > 0 {
		for i := 0; i < opts.PoolShards; i++ {
			names = append(names, fmt.Sprintf("shard-%d", i))
		}
	} else if r := cl.Ring(); r != nil {
		// Default ownership: one shard per overlay ring member, placed
		// by the same consistent hash that places the adverts.
		names = r.Nodes()
	}
	if len(names) == 0 {
		names = []string{"shard-0"}
	}
	sort.Strings(names)
	p := &DonorPool{
		ctl:      c,
		subID:    "donor-pool/" + c.svc.PeerID(),
		ring:     overlay.NewRing(0, names...),
		shards:   make(map[string]*poolShard, len(names)),
		names:    names,
		byAdvert: make(map[string]string),
	}
	for _, n := range names {
		p.shards[n] = &poolShard{name: n, donors: make(map[string]donorEntry)}
	}
	events, err := cl.Subscribe(p.subID, discoveryQuery(opts))
	if err != nil {
		return nil, err
	}
	// The group partition: membership adverts push through their own
	// subscription into a live index, each event loop owning its own
	// advert-ID map.
	p.groups = capgroup.NewIndex()
	p.gsubID = p.subID + "/groups"
	gevents, err := cl.Subscribe(p.gsubID, advert.Query{Kind: advert.KindGroup})
	if err != nil {
		cl.Unsubscribe(p.subID)
		return nil, err
	}
	p.wg.Add(2)
	go func() {
		defer p.wg.Done()
		p.loop(events)
	}()
	go func() {
		defer p.wg.Done()
		p.groupLoop(gevents)
	}()
	c.mu.Lock()
	c.pool = p
	c.mu.Unlock()
	return p, nil
}

// shardForDonor maps a donor onto its owning shard.
func (p *DonorPool) shardForDonor(peerID string) *poolShard {
	return p.shardFor("donor/" + peerID)
}

// shardFor resolves any placement key to a shard. A key the ring maps
// to an unknown member (cannot happen with a fixed ring, but cheap to
// guard) falls back to the first shard.
func (p *DonorPool) shardFor(key string) *poolShard {
	if sh, ok := p.shards[p.ring.Primary(key)]; ok {
		return sh
	}
	return p.shards[p.names[0]]
}

func (p *DonorPool) loop(events <-chan overlay.Event) {
	for ev := range events {
		if ev.Retracted {
			peerID, ok := p.byAdvert[ev.ID]
			if !ok {
				continue
			}
			delete(p.byAdvert, ev.ID)
			sh := p.shardForDonor(peerID)
			sh.mu.Lock()
			sh.events++
			delete(sh.donors, peerID)
			sh.mu.Unlock()
		} else if ev.Ad != nil {
			cpu, _ := strconv.ParseFloat(ev.Ad.Attr(advert.AttrCPUMHz), 64)
			p.byAdvert[ev.ID] = ev.Ad.PeerID
			sh := p.shardForDonor(ev.Ad.PeerID)
			sh.mu.Lock()
			sh.events++
			sh.donors[ev.Ad.PeerID] = donorEntry{
				ref: service.PeerRef{ID: ev.Ad.PeerID, Addr: ev.Ad.Addr},
				cpu: cpu,
			}
			sh.mu.Unlock()
		}
	}
}

// groupLoop absorbs membership pushes into the group index. Like loop,
// it owns its advert-ID map outright — retractions carry only the
// advert ID, and only this goroutine touches the map.
func (p *DonorPool) groupLoop(events <-chan overlay.Event) {
	type groupRef struct{ key, peerID string }
	byAdvert := make(map[string]groupRef)
	for ev := range events {
		if ev.Retracted {
			ref, ok := byAdvert[ev.ID]
			if !ok {
				continue
			}
			delete(byAdvert, ev.ID)
			p.groups.Drop(ref.key, ref.peerID)
		} else if ev.Ad != nil {
			caps, key, ok := capgroup.FromAdvert(ev.Ad)
			if !ok {
				continue
			}
			cpu, _ := strconv.ParseFloat(ev.Ad.Attr(advert.AttrCPUMHz), 64)
			byAdvert[ev.ID] = groupRef{key: key, peerID: ev.Ad.PeerID}
			p.groups.Put(key, caps, capgroup.Member{
				PeerID: ev.Ad.PeerID, Addr: ev.Ad.Addr, CPUMHz: cpu,
			})
		} else {
			continue
		}
		capgroup.SetIndexGauges(p.groups.Counts())
	}
}

// GroupIndex exposes the live membership index.
func (p *DonorPool) GroupIndex() *capgroup.Index { return p.groups }

// Groups snapshots every group the pool has observed.
func (p *DonorPool) Groups() []capgroup.GroupInfo { return p.groups.Snapshot() }

// GroupPeers snapshots the members of one group, strongest advertised
// CPU first and the controller's own peer excluded.
func (p *DonorPool) GroupPeers(key string) []service.PeerRef {
	var out []service.PeerRef
	for _, m := range p.groups.Members(key) {
		if m.PeerID == p.ctl.svc.PeerID() {
			continue
		}
		out = append(out, service.PeerRef{ID: m.PeerID, Addr: m.Addr})
	}
	return out
}

// MatchGroup resolves a capability requirement to the best-populated
// matching group that holds at least one despatchable member. False
// means no populated group matches — the caller falls back to the
// health-ranked whole pool.
func (p *DonorPool) MatchGroup(req map[string]string) (string, []service.PeerRef, bool) {
	for _, key := range p.groups.MatchAll(req) {
		if peers := p.GroupPeers(key); len(peers) > 0 {
			return key, peers, true
		}
	}
	return "", nil, false
}

// peersOf snapshots one shard's donors, strongest advertised CPU first
// and the controller's own peer excluded.
func (p *DonorPool) peersOf(sh *poolShard) []service.PeerRef {
	sh.mu.Lock()
	entries := make([]donorEntry, 0, len(sh.donors))
	for id, e := range sh.donors {
		if id == p.ctl.svc.PeerID() {
			continue
		}
		entries = append(entries, e)
	}
	sh.mu.Unlock()
	return sortedRefs(entries)
}

func sortedRefs(entries []donorEntry) []service.PeerRef {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].cpu != entries[j].cpu {
			return entries[i].cpu > entries[j].cpu
		}
		return entries[i].ref.ID < entries[j].ref.ID
	})
	out := make([]service.PeerRef, len(entries))
	for i, e := range entries {
		out[i] = e.ref
	}
	return out
}

// Peers snapshots the live donors across every shard, strongest
// advertised CPU first and the controller's own peer excluded — the
// same order DiscoverPeers produces, minus the round trips.
func (p *DonorPool) Peers() []service.PeerRef {
	var entries []donorEntry
	for _, name := range p.names {
		sh := p.shards[name]
		sh.mu.Lock()
		for id, e := range sh.donors {
			if id == p.ctl.svc.PeerID() {
				continue
			}
			entries = append(entries, e)
		}
		sh.mu.Unlock()
	}
	return sortedRefs(entries)
}

// ShardPeers snapshots the donors of the shard owning key — the
// shard-local candidate set a farm despatches over. A shard that holds
// no donors (small grids, uneven hash) falls back to the whole pool so
// a farm never starves while donors exist elsewhere.
func (p *DonorPool) ShardPeers(key string) []service.PeerRef {
	if peers := p.peersOf(p.shardFor(key)); len(peers) > 0 {
		return peers
	}
	return p.Peers()
}

// ShardCount reports the number of shards.
func (p *DonorPool) ShardCount() int { return len(p.names) }

// ShardSizes reports each shard's donor count, keyed by shard name —
// observability for webstatus and tests.
func (p *DonorPool) ShardSizes() map[string]int {
	out := make(map[string]int, len(p.names))
	for _, name := range p.names {
		sh := p.shards[name]
		sh.mu.Lock()
		out[name] = len(sh.donors)
		sh.mu.Unlock()
	}
	return out
}

// Size reports the current donor count (excluding self).
func (p *DonorPool) Size() int { return len(p.Peers()) }

// Events reports how many pushes the pool has absorbed across shards —
// observability for the /overlay page and tests.
func (p *DonorPool) Events() int {
	total := 0
	for _, name := range p.names {
		sh := p.shards[name]
		sh.mu.Lock()
		total += sh.events
		sh.mu.Unlock()
	}
	return total
}

// Close withdraws both subscriptions and stops the pool.
func (p *DonorPool) Close() {
	if cl := p.ctl.svc.Overlay(); cl != nil {
		cl.Unsubscribe(p.subID)  // closes the event channel; loop exits
		cl.Unsubscribe(p.gsubID) // same for the group partition
	}
	p.wg.Wait()
	p.ctl.mu.Lock()
	if p.ctl.pool == p {
		p.ctl.pool = nil
	}
	p.ctl.mu.Unlock()
}
