package controller

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"consumergrid/internal/advert"
	"consumergrid/internal/overlay"
	"consumergrid/internal/service"
)

// DonorPool is the event-driven replacement for query-before-every-farm
// donor discovery: the controller registers one persistent subscription
// with the overlay and the super-peers push donor arrivals, departures
// and capability changes as they happen. RunFarm then reads the live
// pool instead of paying a discovery round trip per farm.
type DonorPool struct {
	ctl   *Controller
	subID string

	mu       sync.Mutex
	byAdvert map[string]string     // advert ID -> peer ID (retractions carry only the ID)
	donors   map[string]donorEntry // by peer ID
	events   int

	wg sync.WaitGroup
}

type donorEntry struct {
	ref service.PeerRef
	cpu float64
}

// discoveryQuery translates the discovery filters of RunOptions into an
// advert query — shared by DiscoverPeers (pull) and StartDonorPool
// (push) so both paths select identical donors.
func discoveryQuery(opts RunOptions) advert.Query {
	q := advert.Query{Kind: advert.KindService, Name: service.ServiceType}
	if opts.MinCPUMHz > 0 || opts.MinFreeRAMMB > 0 {
		q.MinAttrs = map[string]float64{}
		if opts.MinCPUMHz > 0 {
			q.MinAttrs[advert.AttrCPUMHz] = opts.MinCPUMHz
		}
		if opts.MinFreeRAMMB > 0 {
			q.MinAttrs[advert.AttrFreeRAMMB] = opts.MinFreeRAMMB
		}
	}
	if opts.PeerGroup != "" {
		q.Attrs = map[string]string{advert.AttrGroup: opts.PeerGroup}
	}
	return q
}

// StartDonorPool subscribes the controller to donor adverts matching
// the given filters and keeps a live pool from the pushes. Requires the
// service to be running on the overlay. The pool stays registered until
// Close; subsequent RunFarm calls draw peers from it without querying.
func (c *Controller) StartDonorPool(opts RunOptions) (*DonorPool, error) {
	cl := c.svc.Overlay()
	if cl == nil {
		return nil, fmt.Errorf("controller: donor pool requires the discovery overlay")
	}
	p := &DonorPool{
		ctl:      c,
		subID:    "donor-pool/" + c.svc.PeerID(),
		byAdvert: make(map[string]string),
		donors:   make(map[string]donorEntry),
	}
	events, err := cl.Subscribe(p.subID, discoveryQuery(opts))
	if err != nil {
		return nil, err
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.loop(events)
	}()
	c.mu.Lock()
	c.pool = p
	c.mu.Unlock()
	return p, nil
}

func (p *DonorPool) loop(events <-chan overlay.Event) {
	for ev := range events {
		p.mu.Lock()
		p.events++
		if ev.Retracted {
			if peerID, ok := p.byAdvert[ev.ID]; ok {
				delete(p.byAdvert, ev.ID)
				delete(p.donors, peerID)
			}
		} else if ev.Ad != nil {
			cpu, _ := strconv.ParseFloat(ev.Ad.Attr(advert.AttrCPUMHz), 64)
			p.byAdvert[ev.ID] = ev.Ad.PeerID
			p.donors[ev.Ad.PeerID] = donorEntry{
				ref: service.PeerRef{ID: ev.Ad.PeerID, Addr: ev.Ad.Addr},
				cpu: cpu,
			}
		}
		p.mu.Unlock()
	}
}

// Peers snapshots the live donors, strongest advertised CPU first and
// the controller's own peer excluded — the same order DiscoverPeers
// produces, minus the round trips.
func (p *DonorPool) Peers() []service.PeerRef {
	p.mu.Lock()
	entries := make([]donorEntry, 0, len(p.donors))
	for id, e := range p.donors {
		if id == p.ctl.svc.PeerID() {
			continue
		}
		entries = append(entries, e)
	}
	p.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].cpu != entries[j].cpu {
			return entries[i].cpu > entries[j].cpu
		}
		return entries[i].ref.ID < entries[j].ref.ID
	})
	out := make([]service.PeerRef, len(entries))
	for i, e := range entries {
		out[i] = e.ref
	}
	return out
}

// Size reports the current donor count (excluding self).
func (p *DonorPool) Size() int { return len(p.Peers()) }

// Events reports how many pushes the pool has absorbed — observability
// for the /overlay page and tests.
func (p *DonorPool) Events() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events
}

// Close withdraws the subscription and stops the pool.
func (p *DonorPool) Close() {
	if cl := p.ctl.svc.Overlay(); cl != nil {
		cl.Unsubscribe(p.subID) // closes the event channel; loop exits
	}
	p.wg.Wait()
	p.ctl.mu.Lock()
	if p.ctl.pool == p {
		p.ctl.pool = nil
	}
	p.ctl.mu.Unlock()
}
