package controller

// Sharded despatch-plane tests: donor placement by the consistent-hash
// ring, shard-local candidate sets with whole-pool fallback, retraction
// routing, and the tenant smoke scenario `make tenant-smoke` runs — a
// 2-shard, 3-tenant grid whose admission grants must come out fair.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"consumergrid/internal/metrics"
	"consumergrid/internal/policy"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/signal"
)

// TestDonorPoolSharding: donors land on the shard the ring maps them
// to, every shard-keyed lookup resolves to live donors, and a
// retraction is routed back to the owning shard.
func TestDonorPoolSharding(t *testing.T) {
	net := newOverlayNet(t, []int{1000, 2000, 3000})
	pool, err := net.ctl.StartDonorPool(RunOptions{PoolShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, w := range net.workers {
		if err := w.Advertise(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all donors pooled", func() bool { return pool.Size() == 3 })

	if pool.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want the forced 2", pool.ShardCount())
	}
	sizes := pool.ShardSizes()
	total := 0
	for name, n := range sizes {
		if !strings.HasPrefix(name, "shard-") {
			t.Fatalf("synthetic shard named %q, want shard-N", name)
		}
		total += n
	}
	if total != 3 {
		t.Fatalf("shard sizes %v sum to %d, want every donor owned exactly once", sizes, total)
	}

	// Every farm key resolves to a non-empty, stable candidate set drawn
	// from the pool (shard-local, or the whole pool when the owning
	// shard is empty).
	all := pool.Peers()
	known := map[string]bool{}
	for _, p := range all {
		known[p.ID] = true
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("tenant/t%d/farm/%d", i%3, i)
		peers := pool.ShardPeers(key)
		if len(peers) == 0 {
			t.Fatalf("ShardPeers(%q) empty while %d donors live", key, len(all))
		}
		for _, p := range peers {
			if !known[p.ID] {
				t.Fatalf("ShardPeers(%q) returned unknown donor %s", key, p.ID)
			}
		}
		again := pool.ShardPeers(key)
		if len(again) != len(peers) {
			t.Fatalf("ShardPeers(%q) unstable: %v then %v", key, peers, again)
		}
	}

	// Expire worker-a: the retraction must find its owning shard and
	// delete it there — a mis-routed retraction would leave the donor
	// behind and the totals would not shrink.
	if err := net.workers[0].Advertise(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	for _, sp := range net.supers {
		sp.SweepOnce()
	}
	waitFor(t, "retraction routed to the owning shard", func() bool { return pool.Size() == 2 })
	total = 0
	for _, n := range pool.ShardSizes() {
		total += n
	}
	if total != 2 {
		t.Fatalf("shard sizes sum to %d after retraction, want 2", total)
	}
	for _, p := range pool.Peers() {
		if p.ID == workerID(0) {
			t.Fatalf("retracted donor %s still pooled", workerID(0))
		}
	}
}

// TestDonorPoolDefaultShardsFollowRing: without a forced shard count
// the pool derives one shard per overlay ring member, so shard
// ownership agrees with advert placement.
func TestDonorPoolDefaultShardsFollowRing(t *testing.T) {
	net := newOverlayNet(t, []int{1000})
	pool, err := net.ctl.StartDonorPool(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.ShardCount() != len(net.supers) {
		t.Fatalf("ShardCount = %d, want one shard per super-peer (%d)",
			pool.ShardCount(), len(net.supers))
	}
}

// smokeBody builds the one-task stateful accumulator group body the
// farm despatches.
func smokeBody(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.New("smokebody")
	task, err := units.NewTask("Accum", signal.NameAccumStat)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAdd(task)
	g.ExternalIn = []taskgraph.Endpoint{{Task: "Accum", Node: 0}}
	g.ExternalOut = []taskgraph.Endpoint{{Task: "Accum", Node: 0}}
	return g
}

func smokeChunks(nChunks, perChunk int, base float64) [][]types.Data {
	chunks := make([][]types.Data, nChunks)
	for c := range chunks {
		for i := 0; i < perChunk; i++ {
			v := base + float64(c*perChunk+i)
			chunks[c] = append(chunks[c], &types.Spectrum{
				Resolution: 1, Amplitudes: []float64{v, 2 * v},
			})
		}
	}
	return chunks
}

// TestTenantSmoke is the `make tenant-smoke` scenario: two donor-pool
// shards, three equal-weight tenants farming concurrently through one
// controller. Each farm must commit every chunk, the tenants' admission
// grants must come out fair (Jain's index >= 0.9), and the per-tenant
// metric families must be present on the registry.
func TestTenantSmoke(t *testing.T) {
	const (
		tenantsN = 3
		nChunks  = 3
		perChunk = 2
	)
	net := newOverlayNet(t, []int{1500, 1500, 1500, 1500})
	pool, err := net.ctl.StartDonorPool(RunOptions{PoolShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, w := range net.workers {
		if err := w.Advertise(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all donors pooled", func() bool { return pool.Size() == len(net.workers) })

	var wg sync.WaitGroup
	for ti := 0; ti < tenantsN; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", ti)
			rep, err := net.ctl.RunFarm(context.Background(),
				smokeChunks(nChunks, perChunk, float64(10*ti)), FarmOptions{
					Body:           func() *taskgraph.Graph { return smokeBody(t) },
					AttemptTimeout: 10 * time.Second,
					Tenant:         tenant,
				})
			if err != nil {
				t.Errorf("tenant %s farm: %v", tenant, err)
				return
			}
			committed := 0
			for _, n := range rep.PeerChunks {
				committed += n
			}
			if committed != nChunks || len(rep.Outputs) != nChunks*perChunk {
				t.Errorf("tenant %s committed %d chunks / %d outputs, want %d / %d",
					tenant, committed, len(rep.Outputs), nChunks, nChunks*perChunk)
			}
		}(ti)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Fairness: equal workloads at equal weight must be granted
	// near-equal slot counts.
	tenants, inflight, _ := net.ctl.Service().Tenants()
	if inflight != 0 {
		t.Fatalf("scheduler still shows %d in flight after the farms", inflight)
	}
	var grants []float64
	for _, ts := range tenants {
		if strings.HasPrefix(ts.Tenant, "t") {
			grants = append(grants, float64(ts.Admits))
		}
	}
	if len(grants) != tenantsN {
		t.Fatalf("snapshot shows %d smoke tenants, want %d: %+v", len(grants), tenantsN, tenants)
	}
	if j := policy.JainIndex(grants); j < 0.9 {
		t.Fatalf("Jain fairness index over admission grants = %.3f (%v), want >= 0.9", j, grants)
	}

	// The tenant-labelled families are live on the registry.
	var buf bytes.Buffer
	if err := metrics.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		"service_tenant_admits_total",
		"service_tenant_inflight",
		"service_tenant_farms_total",
		"service_tenant_chunks_committed_total",
	} {
		series := fmt.Sprintf(`%s{peer="controller",tenant="t0"}`, family)
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing tenant-labelled series %s", series)
		}
	}
}
