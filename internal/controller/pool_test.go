package controller

import (
	"testing"
	"time"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/overlay"
	"consumergrid/internal/service"
)

// overlayNet is an overlay-backed counterpart of newNet: two standalone
// super-peers plus services (controller and workers) running in
// discovery.ModeOverlay against them.
type overlayNet struct {
	tr      *jxtaserve.InProc
	supers  []*overlay.SuperPeer
	ctl     *Controller
	workers []*service.Service
}

func newOverlayNet(t *testing.T, workerCPUs []int) *overlayNet {
	t.Helper()
	tr := jxtaserve.NewInProc()
	ring := overlay.NewRing(0)
	net := &overlayNet{tr: tr}
	var superAddrs []string
	for _, id := range []string{"sp-0", "sp-1"} {
		h, err := jxtaserve.NewHost(id, tr, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		ring.Add(h.Addr())
		superAddrs = append(superAddrs, h.Addr())
		sp, err := overlay.NewSuper(h, overlay.SuperOptions{
			Ring: ring, Replication: 2, SweepInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sp.Close)
		net.supers = append(net.supers, sp)
	}
	newSvc := func(id string, cpu int) *service.Service {
		s, err := service.New(service.Options{
			PeerID: id, Transport: tr, CPUMHz: cpu, FreeRAMMB: 256,
			Overlay: &service.OverlayOptions{
				SuperPeers: superAddrs, Replication: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	for i, cpu := range workerCPUs {
		net.workers = append(net.workers, newSvc(workerID(i), cpu))
	}
	net.ctl = New(newSvc("controller", 1000), t.Logf)
	return net
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDonorPoolTracksAdverts pins the tentpole controller integration:
// the pool seeds from existing adverts at subscribe time, absorbs later
// arrivals by push (no re-query), orders donors like DiscoverPeers, and
// drops donors whose adverts are retracted after expiry.
func TestDonorPoolTracksAdverts(t *testing.T) {
	net := newOverlayNet(t, []int{1000, 3000})
	// worker-a advertises before the pool exists: the subscription seeds it.
	if err := net.workers[0].Advertise(time.Hour); err != nil {
		t.Fatal(err)
	}
	pool, err := net.ctl.StartDonorPool(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	waitFor(t, "seeded donor", func() bool { return pool.Size() == 1 })

	// worker-b arrives afterwards: a push, not a query, delivers it.
	if err := net.workers[1].Advertise(time.Hour); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pushed donor", func() bool { return pool.Size() == 2 })

	peers := pool.Peers()
	if peers[0].ID != workerID(1) || peers[1].ID != workerID(0) {
		t.Fatalf("pool order = %v, want strongest CPU first", peers)
	}

	// RunFarm's peer source is pooledPeers; check it reads the pool and
	// honours MaxPeers.
	if got := net.ctl.pooledPeers(0); len(got) != 2 {
		t.Fatalf("pooledPeers = %v, want both workers", got)
	}
	if got := net.ctl.pooledPeers(1); len(got) != 1 || got[0].ID != workerID(1) {
		t.Fatalf("pooledPeers(1) = %v, want just the strongest", got)
	}

	// worker-a's advert expires; the sweep's retraction push removes it.
	if err := net.workers[0].Advertise(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	for _, sp := range net.supers {
		sp.SweepOnce()
	}
	waitFor(t, "retraction to shrink pool", func() bool { return pool.Size() == 1 })
	if peers := pool.Peers(); peers[0].ID != workerID(1) {
		t.Fatalf("pool after retraction = %v, want only %s", peers, workerID(1))
	}
}

// TestDonorPoolFallback: without a pool (or with an empty one) the
// controller falls back to pull discovery, so RunFarm never regresses
// for flat deployments.
func TestDonorPoolFallback(t *testing.T) {
	net := newOverlayNet(t, []int{2000})
	if got := net.ctl.pooledPeers(0); got != nil {
		t.Fatalf("pooledPeers without a pool = %v, want nil", got)
	}
	pool, err := net.ctl.StartDonorPool(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := net.ctl.pooledPeers(0); got != nil {
		t.Fatalf("empty pool should defer to pull discovery, got %v", got)
	}
	// Closing deregisters the pool from the controller.
	pool.Close()
	net.ctl.mu.Lock()
	registered := net.ctl.pool
	net.ctl.mu.Unlock()
	if registered != nil {
		t.Fatal("closed pool still registered on controller")
	}
	// The overlay still answers pull queries for RunFarm's fallback.
	if err := net.workers[0].Advertise(time.Hour); err != nil {
		t.Fatal(err)
	}
	peers, err := net.ctl.DiscoverPeers(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].ID != workerID(0) {
		t.Fatalf("fallback DiscoverPeers = %v, want worker-a", peers)
	}
}
