package core

import (
	"context"
	"math"
	"strconv"
	"testing"

	"time"

	"consumergrid/internal/controller"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/policy"
	"consumergrid/internal/simnet"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/dbase"
	"consumergrid/internal/units/unitio"
)

func newGrid(t *testing.T, peers int, opts GridOptions) *Grid {
	t.Helper()
	opts.Peers = peers
	g, err := NewGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(GridOptions{Peers: -1}); err == nil {
		t.Error("negative peers accepted")
	}
}

func TestAllWorkflowsValidate(t *testing.T) {
	res := units.Resolver()
	for name, wf := range map[string]func() error{
		"figure1":  func() error { return Figure1Workflow(Figure1Options{}).Validate(res) },
		"galaxy":   func() error { return GalaxyWorkflow(GalaxyOptions{}).Validate(res) },
		"inspiral": func() error { return InspiralWorkflow(InspiralOptions{InjectOffset: 100}).Validate(res) },
		"db":       func() error { return DBPipelineWorkflow(DBPipelineOptions{}).Validate(res) },
	} {
		if err := wf(); err != nil {
			t.Errorf("%s workflow invalid: %v", name, err)
		}
	}
}

func TestFigure1OverGrid(t *testing.T) {
	grid := newGrid(t, 2, GridOptions{})
	rep, err := grid.Run(context.Background(), Figure1Workflow(Figure1Options{Samples: 512}),
		controller.RunOptions{Iterations: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	grapher := rep.Result().Unit("Grapher").(*unitio.Grapher)
	spec := grapher.Last().(*types.Spectrum)
	if got := spec.PeakFrequency(); math.Abs(got-1000) > 2*spec.Resolution {
		t.Errorf("peak at %g", got)
	}
	if rep.Plan.Kind != policy.KindParallel {
		t.Errorf("plan = %v", rep.Plan.Kind)
	}
}

func TestGalaxyFarmOverGrid(t *testing.T) {
	grid := newGrid(t, 3, GridOptions{})
	const frames = 9
	wf := GalaxyWorkflow(GalaxyOptions{Particles: 400, Width: 32, Height: 32})
	rep, err := grid.Run(context.Background(), wf, controller.RunOptions{
		Iterations: frames, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	anim := rep.Result().Unit("Animator").(*unitio.Animator)
	if !anim.Complete(frames) {
		t.Fatalf("animation incomplete: %d frames", len(anim.Frames()))
	}
	// Frames ordered and non-empty.
	fs := anim.Frames()
	for i, f := range fs {
		if f.Frame != i {
			t.Errorf("frame %d has index %d", i, f.Frame)
		}
		if f.MaxIntensity() <= 0 {
			t.Errorf("frame %d empty", i)
		}
	}
	// Work actually spread across peers.
	busy := 0
	for _, counts := range rep.Dist.Remote {
		if counts["Render"] > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d peers rendered", busy)
	}
}

func TestInspiralOverGridFindsInjection(t *testing.T) {
	grid := newGrid(t, 2, GridOptions{})
	wf := InspiralWorkflow(InspiralOptions{
		ChunkSamples: 8192, Templates: 9, TemplateLen: 1024,
		InjectOffset: 3000, InjectAmplitude: 3,
	})
	rep, err := grid.Run(context.Background(), wf, controller.RunOptions{
		Iterations: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	results := rep.Result().Unit("Results").(*unitio.Grapher)
	tab, ok := results.Last().(*types.Table)
	if !ok {
		t.Fatalf("results hold %T", results.Last())
	}
	lagCol := tab.ColumnIndex("peakLag")
	snrCol := tab.ColumnIndex("snr")
	bestSNR, bestLag := 0.0, 0
	for _, row := range tab.Rows {
		snr, _ := strconv.ParseFloat(row[snrCol], 64)
		if snr > bestSNR {
			bestSNR = snr
			bestLag, _ = strconv.Atoi(row[lagCol])
		}
	}
	// The bank's nearest template (f0=120 with 9 templates over 40-200)
	// matches the injection exactly; allow a few samples of slack for the
	// correlation peak.
	if bestSNR < 5 || bestLag < 2995 || bestLag > 3005 {
		t.Errorf("best snr=%g lag=%d, want ~3000", bestSNR, bestLag)
	}
}

func TestDBPipelineOverGrid(t *testing.T) {
	grid := newGrid(t, 2, GridOptions{})
	wf := DBPipelineWorkflow(DBPipelineOptions{Rows: 300})
	rep, err := grid.Run(context.Background(), wf, controller.RunOptions{
		Iterations: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	verdict, ok := rep.Result().Unit("Verdicts").(*unitio.Grapher).Last().(*types.Table)
	if !ok {
		t.Fatal("no verdict table")
	}
	if !dbase.Passed(verdict) {
		t.Errorf("pipeline verification failed: %v", verdict.Rows)
	}
	hist, ok := rep.Result().Unit("Chart").(*unitio.Grapher).Last().(*types.Histogram)
	if !ok || hist.Total() != 300 {
		t.Errorf("histogram = %+v", hist)
	}
	if rep.Plan.Kind != policy.KindPipeline {
		t.Errorf("plan = %v", rep.Plan.Kind)
	}
}

func TestGridOverTCP(t *testing.T) {
	grid := newGrid(t, 1, GridOptions{Transport: jxtaserve.TCP{}})
	rep, err := grid.Run(context.Background(),
		Figure1Workflow(Figure1Options{Samples: 256}),
		controller.RunOptions{Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result().Unit("Grapher").(*unitio.Grapher).Seen() != 4 {
		t.Error("TCP grid run incomplete")
	}
}

func TestGridWithRequireCodeFetchesModules(t *testing.T) {
	grid := newGrid(t, 1, GridOptions{RequireCode: true})
	_, err := grid.Run(context.Background(),
		Figure1Workflow(Figure1Options{Samples: 256}),
		controller.RunOptions{Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fetches, bytes := grid.Workers[0].Fetcher().Fetches()
	if fetches == 0 || bytes == 0 {
		t.Errorf("no module fetches recorded (%d, %d)", fetches, bytes)
	}
}

// TestGridOverLatentSimnet runs the Figure 1 farm over the instrumented
// transport with per-message latency — a WAN-ish Consumer Grid rather
// than loopback — and checks the traffic accounting moved real bytes.
func TestGridOverLatentSimnet(t *testing.T) {
	net := simnet.New()
	net.Latency = 2 * time.Millisecond
	grid := newGrid(t, 2, GridOptions{Transport: net})
	start := time.Now()
	rep, err := grid.Run(context.Background(),
		Figure1Workflow(Figure1Options{Samples: 256}),
		controller.RunOptions{Iterations: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result().Unit("Grapher").(*unitio.Grapher).Seen() != 6 {
		t.Error("latent run incomplete")
	}
	if net.Messages() < 20 {
		t.Errorf("only %d messages crossed the simnet", net.Messages())
	}
	if net.Bytes() < 10000 {
		t.Errorf("only %d bytes crossed the simnet", net.Bytes())
	}
	// Sanity: the run actually paid latency (>= a few round trips).
	if time.Since(start) < 10*time.Millisecond {
		t.Error("latency apparently not applied")
	}
}
