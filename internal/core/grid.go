// Package core assembles the Consumer Grid: it stands up a network of
// Triana peers (rendezvous, worker services, a controller), provides the
// canonical workflow builders for the paper's scenarios, and is the
// public surface the examples, the gridsim experiment driver and the
// benchmarks program against.
//
// The paper's deployment story — "a user would need to have the Triana
// peer installed locally ... [the controller] only needs to have a single
// instantiation for a particular application" (§3.5) — maps to NewGrid:
// one call enrols N donated peers and returns the controller that drives
// applications over them.
package core

import (
	"context"
	"fmt"
	"time"

	"consumergrid/internal/controller"
	"consumergrid/internal/discovery"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/sandbox"
	"consumergrid/internal/service"
	"consumergrid/internal/taskgraph"

	// The full unit toolbox registers on import: a Consumer Grid peer
	// hosts "several hundred units" it can instantiate once the matching
	// module bundle arrives.
	_ "consumergrid/internal/units/astro"
	_ "consumergrid/internal/units/convert"
	_ "consumergrid/internal/units/dbase"
	_ "consumergrid/internal/units/flow"
	_ "consumergrid/internal/units/imaging"
	_ "consumergrid/internal/units/mathx"
	_ "consumergrid/internal/units/signal"
	_ "consumergrid/internal/units/textproc"
	_ "consumergrid/internal/units/unitio"
)

// GridOptions configures NewGrid.
type GridOptions struct {
	// Transport carries all traffic; nil uses a fresh in-process network
	// (the single-machine testbed). Use jxtaserve.TCP{} for real sockets.
	Transport jxtaserve.Transport
	// Peers is the number of worker services to enrol.
	Peers int
	// PeerOptions customises each worker; the returned Options' PeerID,
	// Transport, Addr and Discovery fields are overridden by the grid.
	// nil gives every peer 2000 MHz / 512 MB and a deny-all sandbox
	// (compute-only donation).
	PeerOptions func(i int) service.Options
	// Rendezvous is the rendezvous peer count (default 1).
	Rendezvous int
	// AdvertTTL is the service advertisement lifetime (default 1h).
	AdvertTTL time.Duration
	// RequireCode makes workers insist on on-demand module download
	// (strict mobile-code semantics).
	RequireCode bool
	// Logf receives diagnostics from every component; may be nil.
	Logf func(format string, args ...any)
}

// Grid is a running Consumer Grid testbed.
type Grid struct {
	// Controller drives applications over the grid.
	Controller *controller.Controller
	// Workers are the enrolled donor peers.
	Workers []*service.Service

	transport  jxtaserve.Transport
	rendezvous []*jxtaserve.Host
}

// NewGrid stands up rendezvous peers, worker services and a controller.
func NewGrid(opts GridOptions) (*Grid, error) {
	if opts.Peers < 0 {
		return nil, fmt.Errorf("core: negative peer count")
	}
	if opts.Rendezvous <= 0 {
		opts.Rendezvous = 1
	}
	if opts.AdvertTTL <= 0 {
		opts.AdvertTTL = time.Hour
	}
	tr := opts.Transport
	if tr == nil {
		tr = jxtaserve.NewInProc()
	}
	listenAddr := ""
	if _, isTCP := tr.(jxtaserve.TCP); isTCP {
		listenAddr = "127.0.0.1:0"
	}

	g := &Grid{transport: tr}
	var rdvAddrs []string
	for i := 0; i < opts.Rendezvous; i++ {
		host, err := jxtaserve.NewHost(fmt.Sprintf("rendezvous-%d", i), tr, listenAddr)
		if err != nil {
			g.Close()
			return nil, err
		}
		discovery.NewNode(host, newAdvertCache(), discovery.Config{
			Mode: discovery.ModeRendezvous, IsRendezvous: true})
		g.rendezvous = append(g.rendezvous, host)
		rdvAddrs = append(rdvAddrs, host.Addr())
	}
	dcfg := discovery.Config{Mode: discovery.ModeRendezvous, Rendezvous: rdvAddrs}

	for i := 0; i < opts.Peers; i++ {
		var sOpts service.Options
		if opts.PeerOptions != nil {
			sOpts = opts.PeerOptions(i)
		} else {
			sOpts = service.Options{
				CPUMHz: 2000, FreeRAMMB: 512,
				Sandbox: sandbox.AllowCompute(512 << 20),
			}
		}
		sOpts.PeerID = fmt.Sprintf("peer-%03d", i)
		sOpts.Transport = tr
		sOpts.Addr = listenAddr
		sOpts.Discovery = dcfg
		if opts.RequireCode {
			sOpts.RequireCode = true
		}
		if sOpts.Logf == nil {
			sOpts.Logf = opts.Logf
		}
		w, err := service.New(sOpts)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.Workers = append(g.Workers, w)
		if err := w.Advertise(opts.AdvertTTL); err != nil {
			g.Close()
			return nil, err
		}
	}

	ctlSvc, err := service.New(service.Options{
		PeerID:    "controller",
		Transport: tr,
		Addr:      listenAddr,
		Discovery: dcfg,
		Logf:      opts.Logf,
	})
	if err != nil {
		g.Close()
		return nil, err
	}
	g.Controller = controller.New(ctlSvc, opts.Logf)
	return g, nil
}

// Run drives a workflow over the grid.
func (g *Grid) Run(ctx context.Context, graph *taskgraph.Graph, opts controller.RunOptions) (*controller.Report, error) {
	return g.Controller.Run(ctx, graph, opts)
}

// Close tears the whole testbed down.
func (g *Grid) Close() {
	if g.Controller != nil {
		g.Controller.Service().Close()
	}
	for _, w := range g.Workers {
		w.Close()
	}
	for _, h := range g.rendezvous {
		h.Close()
	}
}
