package core

import (
	"fmt"
	"strconv"

	"consumergrid/internal/advert"
	"consumergrid/internal/policy"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/units"
	"consumergrid/internal/units/astro"
	"consumergrid/internal/units/dbase"
	"consumergrid/internal/units/imaging"
	"consumergrid/internal/units/signal"
	"consumergrid/internal/units/unitio"
)

func newAdvertCache() *advert.Cache { return advert.NewCache() }

// mustTask builds a registry-backed task or panics: the workflow builders
// only reference toolbox units imported above, so failure is programmer
// error.
func mustTask(g *taskgraph.Graph, name, unit string, params map[string]string) *taskgraph.Task {
	t, err := units.NewTask(name, unit)
	if err != nil {
		panic(err)
	}
	for k, v := range params {
		t.SetParam(k, v)
	}
	g.MustAdd(t)
	return t
}

// Figure1Options sizes the paper's Figure 1 workflow.
type Figure1Options struct {
	// Frequency of the sine wave in Hz (paper: a kHz-range tone).
	Frequency float64
	// SamplingRate in samples/second.
	SamplingRate float64
	// Samples per iteration.
	Samples int
	// NoiseSigma is the contamination level; Figure 2 buries the signal,
	// so sigma is several times the amplitude.
	NoiseSigma float64
	// Policy is the group control unit (default policy.Parallel).
	Policy string
}

func (o *Figure1Options) defaults() {
	if o.Frequency <= 0 {
		o.Frequency = 1000
	}
	if o.SamplingRate <= 0 {
		o.SamplingRate = 8000
	}
	if o.Samples <= 0 {
		o.Samples = 1024
	}
	if o.NoiseSigma <= 0 {
		o.NoiseSigma = 5
	}
	if o.Policy == "" {
		o.Policy = policy.NameParallel
	}
}

// Figure1Workflow builds the paper's Figure 1 network: a sine wave,
// contaminated with Gaussian noise, power spectrum, and AccumStat
// averaging into a Grapher; the noisy-processing stage is the
// distributable GroupTask of Code Segment 1.
func Figure1Workflow(o Figure1Options) *taskgraph.Graph {
	o.defaults()
	g := taskgraph.New("GroupTest")
	mustTask(g, "Wave", signal.NameWave, map[string]string{
		"frequency":    fmt.Sprintf("%g", o.Frequency),
		"samplingRate": fmt.Sprintf("%g", o.SamplingRate),
		"samples":      strconv.Itoa(o.Samples),
	})
	mustTask(g, "Gaussian", signal.NameGaussianNoise, map[string]string{
		"sigma": fmt.Sprintf("%g", o.NoiseSigma),
	})
	mustTask(g, "PowerSpec", signal.NamePowerSpectrum, nil)
	mustTask(g, "AccumStat", signal.NameAccumStat, nil)
	mustTask(g, "Grapher", unitio.NameGrapher, nil)
	g.ConnectNamed("Wave", 0, "Gaussian", 0)
	g.ConnectNamed("Gaussian", 0, "PowerSpec", 0)
	g.ConnectNamed("PowerSpec", 0, "AccumStat", 0)
	g.ConnectNamed("AccumStat", 0, "Grapher", 0)
	gt, err := g.GroupTasks("GroupTask", []string{"Gaussian", "PowerSpec"})
	if err != nil {
		panic(err)
	}
	gt.ControlUnit = o.Policy
	return g
}

// GalaxyOptions sizes the §3.6.1 galaxy-formation workflow.
type GalaxyOptions struct {
	// Particles per snapshot (the Cardiff runs used large N; defaults
	// stay laptop-friendly).
	Particles int
	// Clusters is the number of proto-clusters.
	Clusters int
	// Width/Height of the rendered frames.
	Width, Height int
	// Azimuth/Elevation select the 2D slice ("vary the perspective of
	// view ... and re-run the animation").
	Azimuth, Elevation float64
	// Seed fixes the initial conditions.
	Seed int64
	// Policy for the render group (default parallel: "the implementation
	// used the parallel distribution policy for groups for farming out
	// the individual sections of the animation").
	Policy string
}

func (o *GalaxyOptions) defaults() {
	if o.Particles <= 0 {
		o.Particles = 2000
	}
	if o.Clusters <= 0 {
		o.Clusters = 3
	}
	if o.Width <= 0 {
		o.Width = 96
	}
	if o.Height <= 0 {
		o.Height = 96
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Policy == "" {
		o.Policy = policy.NameParallel
	}
}

// GalaxyWorkflow builds GalaxyGen -> [ViewProject -> ColumnDensity] ->
// Animator: frames are farmed out per snapshot and re-ordered on return.
func GalaxyWorkflow(o GalaxyOptions) *taskgraph.Graph {
	o.defaults()
	g := taskgraph.New("GalaxyFormation")
	mustTask(g, "GalaxyGen", astro.NameGalaxyGen, map[string]string{
		"particles": strconv.Itoa(o.Particles),
		"clusters":  strconv.Itoa(o.Clusters),
		"seed":      strconv.FormatInt(o.Seed, 10),
	})
	mustTask(g, "View", astro.NameViewProject, map[string]string{
		"azimuth":   fmt.Sprintf("%g", o.Azimuth),
		"elevation": fmt.Sprintf("%g", o.Elevation),
	})
	mustTask(g, "Render", imaging.NameColumnDensity, map[string]string{
		"width":  strconv.Itoa(o.Width),
		"height": strconv.Itoa(o.Height),
	})
	mustTask(g, "Animator", unitio.NameAnimator, nil)
	g.ConnectNamed("GalaxyGen", 0, "View", 0)
	g.ConnectNamed("View", 0, "Render", 0)
	g.ConnectNamed("Render", 0, "Animator", 0)
	gt, err := g.GroupTasks("RenderGroup", []string{"View", "Render"})
	if err != nil {
		panic(err)
	}
	gt.ControlUnit = o.Policy
	return g
}

// InspiralOptions sizes the §3.6.2 inspiral-search workflow. The paper's
// full scale is ChunkSamples = 1,800,000 (900 s at 2000 S/s) against
// 5,000-10,000 templates; defaults are laptop-scale with the same shape.
type InspiralOptions struct {
	// ChunkSamples per data chunk at 2000 S/s.
	ChunkSamples int
	// SamplingRate in samples/second (paper: 2000).
	SamplingRate float64
	// Templates in the bank.
	Templates int
	// TemplateLen in samples.
	TemplateLen int
	// InjectOffset places a synthetic chirp in the chunk (-1 disables).
	InjectOffset int
	// InjectAmplitude scales the buried signal.
	InjectAmplitude float64
	// NoiseSigma is the detector noise level.
	NoiseSigma float64
	// Threshold filters reported templates by SNR.
	Threshold float64
	// Policy for the matched-filter group (default parallel).
	Policy string
}

func (o *InspiralOptions) defaults() {
	if o.ChunkSamples <= 0 {
		o.ChunkSamples = 16384
	}
	if o.SamplingRate <= 0 {
		o.SamplingRate = 2000
	}
	if o.Templates <= 0 {
		o.Templates = 16
	}
	if o.TemplateLen <= 0 {
		o.TemplateLen = 2048
	}
	if o.InjectAmplitude == 0 {
		o.InjectAmplitude = 3
	}
	if o.NoiseSigma <= 0 {
		o.NoiseSigma = 1
	}
	if o.Policy == "" {
		o.Policy = policy.NameParallel
	}
}

// InspiralWorkflow builds the GEO600 search: a zero signal plus detector
// noise, an injected chirp, and a matched-filter bank distributed as a
// group; verdict tables flow to a Grapher sink.
func InspiralWorkflow(o InspiralOptions) *taskgraph.Graph {
	o.defaults()
	g := taskgraph.New("InspiralSearch")
	mustTask(g, "Source", signal.NameWave, map[string]string{
		"frequency": "0", "amplitude": "0",
		"samplingRate": fmt.Sprintf("%g", o.SamplingRate),
		"samples":      strconv.Itoa(o.ChunkSamples),
	})
	mustTask(g, "Noise", signal.NameGaussianNoise, map[string]string{
		"sigma": fmt.Sprintf("%g", o.NoiseSigma),
	})
	next := "Noise"
	if o.InjectOffset >= 0 {
		mustTask(g, "Inject", signal.NameInjectChirp, map[string]string{
			"offset":    strconv.Itoa(o.InjectOffset),
			"length":    strconv.Itoa(o.TemplateLen),
			"amplitude": fmt.Sprintf("%g", o.InjectAmplitude),
			"f0":        "120", "f1": "400",
		})
		g.ConnectNamed("Noise", 0, "Inject", 0)
		next = "Inject"
	}
	mustTask(g, "Filter", signal.NameMatchedFilter, map[string]string{
		"templates":    strconv.Itoa(o.Templates),
		"templateLen":  strconv.Itoa(o.TemplateLen),
		"samplingRate": fmt.Sprintf("%g", o.SamplingRate),
		"threshold":    fmt.Sprintf("%g", o.Threshold),
		"f0Lo":         "40", "f0Hi": "200", "f1": "400",
	})
	mustTask(g, "Results", unitio.NameGrapher, nil)
	g.ConnectNamed("Source", 0, "Noise", 0)
	g.ConnectNamed(next, 0, "Filter", 0)
	g.ConnectNamed("Filter", 0, "Results", 0)
	gt, err := g.GroupTasks("SearchGroup", []string{"Filter"})
	if err != nil {
		panic(err)
	}
	gt.ControlUnit = o.Policy
	return g
}

// DBPipelineOptions sizes the §3.6.3 database workflow.
type DBPipelineOptions struct {
	// Dataset is "stars" or "observations".
	Dataset string
	// Rows in the synthetic dataset.
	Rows int
	// MinFilter is the manipulation stage's numeric filter (col:value).
	MinFilter string
	// VisualiseColumn is binned by the visualisation stage.
	VisualiseColumn string
	// NumericColumns are verified by the verification stage.
	NumericColumns string
	// Policy for the manipulation/verification group (default p2p:
	// "Each of these services may now be provided by different Triana
	// Peers – which may be located at different geographic sites").
	Policy string
}

func (o *DBPipelineOptions) defaults() {
	if o.Dataset == "" {
		o.Dataset = "stars"
	}
	if o.Rows <= 0 {
		o.Rows = 1000
	}
	if o.MinFilter == "" {
		o.MinFilter = "distance_pc:500"
	}
	if o.VisualiseColumn == "" {
		o.VisualiseColumn = "distance_pc"
	}
	if o.NumericColumns == "" {
		o.NumericColumns = "magnitude,distance_pc"
	}
	if o.Policy == "" {
		o.Policy = policy.NamePeerToPeer
	}
}

// DBPipelineWorkflow builds the Case-3 pipeline: (1) data access, (2)
// data manipulation, (3) data visualisation, (4) data verification. The
// manipulate/verify pair forms the distributed group; visualisation taps
// the verified stream locally.
func DBPipelineWorkflow(o DBPipelineOptions) *taskgraph.Graph {
	o.defaults()
	g := taskgraph.New("DatabasePipeline")
	mustTask(g, "Access", dbase.NameDataAccess, map[string]string{
		"dataset": o.Dataset, "rows": strconv.Itoa(o.Rows),
	})
	mustTask(g, "Manipulate", dbase.NameDataManip, map[string]string{
		"min": o.MinFilter,
	})
	mustTask(g, "Verify", dbase.NameDataVerify, map[string]string{
		"numeric": o.NumericColumns,
	})
	mustTask(g, "Duplicate", "triana.flow.Duplicate", nil)
	mustTask(g, "Visualise", dbase.NameDataVisualise, map[string]string{
		"column": o.VisualiseColumn,
	})
	mustTask(g, "Verdicts", unitio.NameGrapher, nil)
	mustTask(g, "Chart", unitio.NameGrapher, nil)
	g.ConnectNamed("Access", 0, "Duplicate", 0)
	g.ConnectNamed("Duplicate", 0, "Manipulate", 0)
	g.ConnectNamed("Manipulate", 0, "Verify", 0)
	g.ConnectNamed("Verify", 0, "Verdicts", 0)
	g.ConnectNamed("Duplicate", 1, "Visualise", 0)
	g.ConnectNamed("Visualise", 0, "Chart", 0)
	gt, err := g.GroupTasks("ServiceGroup", []string{"Manipulate", "Verify"})
	if err != nil {
		panic(err)
	}
	gt.ControlUnit = o.Policy
	return g
}
