// Package discovery implements peer and pipe discovery for the Consumer
// Grid in the three styles the paper contrasts (§3.7, §4 and ref [7]):
//
//   - Rendezvous: edge peers publish advertisements to rendezvous peers
//     and queries are answered from the rendezvous caches — the JXTA
//     model Triana relies on.
//   - Flood: queries propagate peer-to-peer with a TTL, Gnutella-style;
//     the paper notes this "severely restricts the scalability of such
//     approaches".
//   - Central: a single index server, the Napster model ("Napster is not
//     a true P2P system since the availability of peers is located
//     through a central database").
//
// All three run over the same jxtaserve transport abstraction, so the
// identical protocol code is exercised over TCP, in-process channels and
// the instrumented simnet transport used by the scaling experiment (T2).
package discovery

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/overlay"
)

// Mode selects the discovery strategy.
type Mode int

// The strategies compared in experiment T2.
const (
	// ModeRendezvous publishes to a home rendezvous (by peer-ID hash) and
	// queries every rendezvous.
	ModeRendezvous Mode = iota
	// ModeFlood floods queries to neighbours with a TTL.
	ModeFlood
	// ModeCentral is ModeRendezvous with a single index server.
	ModeCentral
	// ModeOverlay delegates publish and discovery to the replicated
	// super-peer ring of internal/overlay (Config.Overlay).
	ModeOverlay
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeRendezvous:
		return "rendezvous"
	case ModeFlood:
		return "flood"
	case ModeCentral:
		return "central"
	case ModeOverlay:
		return "overlay"
	default:
		return "unknown"
	}
}

// RPC method names.
const (
	methodPublish = "disc.publish"
	methodQuery   = "disc.query"
	methodDeliver = "disc.deliver"
)

// Config configures a discovery node.
type Config struct {
	Mode Mode
	// Rendezvous lists rendezvous/central server addresses (rendezvous
	// and central modes).
	Rendezvous []string
	// Neighbors lists initial flood neighbours (flood mode).
	Neighbors []string
	// TTL bounds flood propagation (default 4).
	TTL int
	// QueryTimeout bounds how long a flood query waits for deliveries
	// (default 500ms).
	QueryTimeout time.Duration
	// IsRendezvous marks this node as accepting publishes (rendezvous
	// and central modes).
	IsRendezvous bool
	// Placement overrides the home-rendezvous choice with a shared
	// placement function (typically overlay.Ring.Primary over the
	// Rendezvous list). When nil, flat mode falls back to the legacy
	// hash-modulo pick — see homeRendezvous for why that remaps nearly
	// every peer whenever the rendezvous list changes.
	Placement func(key string) string
	// Overlay is the super-peer client Publish/Discover delegate to in
	// ModeOverlay. Required for that mode.
	Overlay *overlay.Client
	// SeenCapacity bounds the flood-dedup FIFO (default maxSeen);
	// tests shrink it to exercise eviction.
	SeenCapacity int
}

// Stats counts protocol traffic for the scalability experiments.
type Stats struct {
	// QueriesSent counts Discover invocations' outbound query RPCs.
	QueriesSent atomic.Int64
	// QueriesHandled counts query RPCs processed by this node.
	QueriesHandled atomic.Int64
	// QueriesForwarded counts flood re-transmissions.
	QueriesForwarded atomic.Int64
	// Delivered counts advert deliveries sent back to originators.
	Delivered atomic.Int64
	// Published counts publish RPCs sent.
	Published atomic.Int64
}

// Node is one peer's discovery agent.
type Node struct {
	host  *jxtaserve.Host
	cache *advert.Cache
	cfg   Config
	stats Stats

	mu        sync.Mutex
	neighbors []string
	seen      *seenRing // flood query IDs already handled
	pending   map[string]*pendingQuery
	nextQID   uint64
}

// seenRing is a fixed-capacity FIFO set of flood query IDs: O(1)
// membership via the map, strict insertion-order eviction via the
// circular buffer. The previous implementation appended to a slice and
// evicted with seenOrder[1:], which kept the whole backing array alive
// (the front of the slice advances but the array never shrinks) and
// re-allocated on every append once full; the ring's memory is fixed at
// capacity forever and a recent ID can never be evicted before a staler
// one.
type seenRing struct {
	ids  []string
	set  map[string]struct{}
	next int // slot the next insertion overwrites
	n    int // live entries (== len(ids) once full)
}

func newSeenRing(capacity int) *seenRing {
	if capacity <= 0 {
		capacity = maxSeen
	}
	return &seenRing{
		ids: make([]string, capacity),
		set: make(map[string]struct{}, capacity),
	}
}

// observe records id, reporting whether it was already present. When
// the ring is full the oldest ID is evicted first.
func (r *seenRing) observe(id string) (dup bool) {
	if _, ok := r.set[id]; ok {
		return true
	}
	if r.n == len(r.ids) {
		delete(r.set, r.ids[r.next])
	} else {
		r.n++
	}
	r.ids[r.next] = id
	r.set[id] = struct{}{}
	r.next = (r.next + 1) % len(r.ids)
	return false
}

// has reports membership without recording.
func (r *seenRing) has(id string) bool {
	_, ok := r.set[id]
	return ok
}

// len reports the live entry count.
func (r *seenRing) len() int { return r.n }

type pendingQuery struct {
	mu      sync.Mutex
	results []*advert.Advertisement
	ids     map[string]bool
	done    chan struct{}
	limit   int
	closed  bool
}

// maxSeen bounds the flood-dedup memory.
const maxSeen = 65536

// NewNode attaches a discovery agent to a host. The node registers its
// RPC handlers immediately.
func NewNode(host *jxtaserve.Host, cache *advert.Cache, cfg Config) *Node {
	if cfg.TTL <= 0 {
		cfg.TTL = 4
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 500 * time.Millisecond
	}
	n := &Node{
		host: host, cache: cache, cfg: cfg,
		neighbors: append([]string(nil), cfg.Neighbors...),
		seen:      newSeenRing(cfg.SeenCapacity),
		pending:   make(map[string]*pendingQuery),
	}
	host.Handle(methodPublish, n.handlePublish)
	host.Handle(methodQuery, n.handleQuery)
	host.Handle(methodDeliver, n.handleDeliver)
	return n
}

// Stats exposes the node's traffic counters.
func (n *Node) Stats() *Stats { return &n.stats }

// Cache exposes the node's advert cache.
func (n *Node) Cache() *advert.Cache { return n.cache }

// AddNeighbor adds a flood neighbour at runtime.
func (n *Node) AddNeighbor(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range n.neighbors {
		if a == addr {
			return
		}
	}
	n.neighbors = append(n.neighbors, addr)
}

// Neighbors returns a copy of the neighbour list.
func (n *Node) Neighbors() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.neighbors...)
}

// Publish stores the advert locally and, in rendezvous/central mode,
// pushes it to the home rendezvous.
func (n *Node) Publish(ad *advert.Advertisement) error {
	if err := n.cache.Put(ad); err != nil {
		return err
	}
	switch n.cfg.Mode {
	case ModeRendezvous, ModeCentral:
		home := n.homeRendezvous(ad.PeerID)
		if home == "" {
			return nil // we are the rendezvous (or standalone)
		}
		b, err := ad.MarshalText()
		if err != nil {
			return err
		}
		n.stats.Published.Add(1)
		_, err = n.host.Request(home, methodPublish, b, nil)
		return err
	case ModeOverlay:
		if n.cfg.Overlay == nil {
			return fmt.Errorf("discovery: ModeOverlay without Config.Overlay")
		}
		n.stats.Published.Add(1)
		return n.cfg.Overlay.Publish(ad)
	default:
		return nil // flood mode answers from local caches
	}
}

// homeRendezvous picks the publishing target for a peer ID, or "" when
// this node has no rendezvous configured.
//
// When Config.Placement is set (the overlay deployments route it to the
// consistent-hash ring's Primary), the flat and overlay paths share one
// placement function. The legacy fallback is hash(peerID) mod
// len(Rendezvous) — beware that modulo placement has no stability under
// membership change: growing the list from k to k+1 servers moves every
// peer whose hash differs mod k and mod k+1, i.e. an expected k/(k+1)
// of them (~all), orphaning their published adverts until re-publish.
// A consistent-hash ring moves only ~1/(k+1). TestModuloRemapsNearlyAll
// pins both behaviours.
func (n *Node) homeRendezvous(peerID string) string {
	if len(n.cfg.Rendezvous) == 0 {
		return ""
	}
	if n.cfg.Placement != nil {
		if home := n.cfg.Placement(peerID); home != "" {
			return home
		}
	}
	h := fnv.New32a()
	h.Write([]byte(peerID))
	return n.cfg.Rendezvous[int(h.Sum32())%len(n.cfg.Rendezvous)]
}

// Discover runs a query and returns up to limit matches (limit <= 0
// means unlimited). Local cache hits are always included.
func (n *Node) Discover(q advert.Query, limit int) ([]*advert.Advertisement, error) {
	local := n.cache.Find(q, limit)
	switch n.cfg.Mode {
	case ModeRendezvous, ModeCentral:
		return n.discoverRendezvous(q, limit, local)
	case ModeFlood:
		return n.discoverFlood(q, limit, local)
	case ModeOverlay:
		return n.discoverOverlay(q, limit, local)
	default:
		return nil, fmt.Errorf("discovery: unknown mode %d", n.cfg.Mode)
	}
}

// discoverOverlay merges local cache hits with the super-peer ring's
// answer.
func (n *Node) discoverOverlay(q advert.Query, limit int, acc []*advert.Advertisement) ([]*advert.Advertisement, error) {
	if n.cfg.Overlay == nil {
		return nil, fmt.Errorf("discovery: ModeOverlay without Config.Overlay")
	}
	n.stats.QueriesSent.Add(1)
	remote, err := n.cfg.Overlay.Query(q, limit)
	if err != nil {
		if len(acc) > 0 {
			return acc, nil // local knowledge beats a dead ring
		}
		return nil, err
	}
	seen := make(map[string]bool, len(acc))
	for _, ad := range acc {
		seen[ad.ID] = true
	}
	for _, ad := range remote {
		if !seen[ad.ID] {
			seen[ad.ID] = true
			acc = append(acc, ad)
		}
	}
	if limit > 0 && len(acc) > limit {
		acc = acc[:limit]
	}
	return acc, nil
}

func (n *Node) discoverRendezvous(q advert.Query, limit int, acc []*advert.Advertisement) ([]*advert.Advertisement, error) {
	qb, err := q.MarshalText()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(acc))
	for _, ad := range acc {
		seen[ad.ID] = true
	}
	var firstErr error
	for _, addr := range n.cfg.Rendezvous {
		n.stats.QueriesSent.Add(1)
		reply, err := n.host.Request(addr, methodQuery, qb, nil)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue // a dead rendezvous must not kill discovery
		}
		ads, err := advert.DecodeList(reply.Payload)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, ad := range ads {
			if !seen[ad.ID] {
				seen[ad.ID] = true
				acc = append(acc, ad)
			}
		}
		if limit > 0 && len(acc) >= limit {
			return acc[:limit], nil
		}
	}
	if len(acc) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return acc, nil
}

func (n *Node) discoverFlood(q advert.Query, limit int, acc []*advert.Advertisement) ([]*advert.Advertisement, error) {
	qb, err := q.MarshalText()
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.nextQID++
	qid := fmt.Sprintf("%s/%d", n.host.PeerID(), n.nextQID)
	pq := &pendingQuery{
		ids:   make(map[string]bool, len(acc)),
		done:  make(chan struct{}),
		limit: limit,
	}
	for _, ad := range acc {
		pq.ids[ad.ID] = true
	}
	n.pending[qid] = pq
	neighbors := append([]string(nil), n.neighbors...)
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.pending, qid)
		n.mu.Unlock()
	}()

	headers := map[string]string{
		"qid":    qid,
		"ttl":    fmt.Sprintf("%d", n.cfg.TTL),
		"origin": n.host.Addr(),
	}
	for _, addr := range neighbors {
		n.stats.QueriesSent.Add(1)
		// Errors are expected under churn: a gone neighbour just does not
		// answer.
		go n.host.Request(addr, methodQuery, qb, headers)
	}

	timer := time.NewTimer(n.cfg.QueryTimeout)
	defer timer.Stop()
	select {
	case <-pq.done:
	case <-timer.C:
	}
	pq.mu.Lock()
	defer pq.mu.Unlock()
	pq.closed = true
	out := append(acc, pq.results...)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// --- handlers ---------------------------------------------------------------

func (n *Node) handlePublish(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	if !n.cfg.IsRendezvous {
		return nil, fmt.Errorf("discovery: %s is not a rendezvous", n.host.PeerID())
	}
	var ad advert.Advertisement
	if err := ad.UnmarshalText(req.Payload); err != nil {
		return nil, err
	}
	if err := n.cache.Put(&ad); err != nil {
		return nil, err
	}
	return &jxtaserve.Message{}, nil
}

func (n *Node) handleQuery(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	n.stats.QueriesHandled.Add(1)
	var q advert.Query
	if err := q.UnmarshalText(req.Payload); err != nil {
		return nil, err
	}
	qid := req.Header("qid")
	if qid == "" {
		// Synchronous rendezvous-style query: answer from the cache.
		matches := n.cache.Find(q, 0)
		payload, err := advert.EncodeList(matches)
		if err != nil {
			return nil, err
		}
		return &jxtaserve.Message{Payload: payload}, nil
	}

	// Flood query: dedupe, deliver matches to the origin, forward.
	n.mu.Lock()
	if n.seen.observe(qid) {
		n.mu.Unlock()
		return &jxtaserve.Message{}, nil
	}
	neighbors := append([]string(nil), n.neighbors...)
	n.mu.Unlock()

	origin := req.Header("origin")
	if matches := n.cache.Find(q, 0); len(matches) > 0 && origin != "" {
		payload, err := advert.EncodeList(matches)
		if err == nil {
			n.stats.Delivered.Add(1)
			go n.host.Request(origin, methodDeliver, payload, map[string]string{"qid": qid})
		}
	}

	var ttl int
	fmt.Sscanf(req.Header("ttl"), "%d", &ttl)
	if ttl > 1 {
		headers := map[string]string{
			"qid":    qid,
			"ttl":    fmt.Sprintf("%d", ttl-1),
			"origin": origin,
		}
		for _, addr := range neighbors {
			n.stats.QueriesForwarded.Add(1)
			go n.host.Request(addr, methodQuery, req.Payload, headers)
		}
	}
	return &jxtaserve.Message{}, nil
}

func (n *Node) handleDeliver(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	qid := req.Header("qid")
	n.mu.Lock()
	pq := n.pending[qid]
	n.mu.Unlock()
	if pq == nil {
		return &jxtaserve.Message{}, nil // late delivery; drop
	}
	ads, err := advert.DecodeList(req.Payload)
	if err != nil {
		return nil, err
	}
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pq.closed {
		return &jxtaserve.Message{}, nil
	}
	for _, ad := range ads {
		if pq.ids[ad.ID] {
			continue
		}
		pq.ids[ad.ID] = true
		pq.results = append(pq.results, ad)
	}
	if pq.limit > 0 && len(pq.results) >= pq.limit && !pq.closed {
		pq.closed = true
		close(pq.done)
	}
	return &jxtaserve.Message{}, nil
}
