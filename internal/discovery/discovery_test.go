package discovery

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/jxtaserve"
)

// testPeer bundles a host, cache and node.
type testPeer struct {
	host *jxtaserve.Host
	node *Node
}

func newPeer(t *testing.T, tr jxtaserve.Transport, id string, cfg Config) *testPeer {
	t.Helper()
	h, err := jxtaserve.NewHost(id, tr, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return &testPeer{host: h, node: NewNode(h, advert.NewCache(), cfg)}
}

func peerAd(id string, cpu int) *advert.Advertisement {
	ad := &advert.Advertisement{
		Kind: advert.KindPeer, ID: "ad-" + id, PeerID: id, Addr: "addr-" + id,
	}
	ad.SetAttr(advert.AttrCPUMHz, fmt.Sprintf("%d", cpu))
	return ad
}

func TestRendezvousPublishAndDiscover(t *testing.T) {
	tr := jxtaserve.NewInProc()
	rdv := newPeer(t, tr, "rdv", Config{Mode: ModeRendezvous, IsRendezvous: true})
	cfg := Config{Mode: ModeRendezvous, Rendezvous: []string{rdv.host.Addr()}}
	a := newPeer(t, tr, "peer-a", cfg)
	b := newPeer(t, tr, "peer-b", cfg)

	if err := a.node.Publish(peerAd("peer-a", 2000)); err != nil {
		t.Fatal(err)
	}
	if err := a.node.Publish(peerAd("peer-a2", 500)); err != nil {
		t.Fatal(err)
	}
	// b discovers a's adverts through the rendezvous.
	got, err := b.node.Discover(advert.Query{Kind: advert.KindPeer,
		MinAttrs: map[string]float64{advert.AttrCPUMHz: 1000}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PeerID != "peer-a" {
		t.Fatalf("discover = %+v", got)
	}
	// Attribute filtering happened at the rendezvous.
	all, _ := b.node.Discover(advert.Query{Kind: advert.KindPeer}, 0)
	if len(all) != 2 {
		t.Fatalf("unfiltered = %d adverts", len(all))
	}
	// Stats recorded.
	if a.node.Stats().Published.Load() != 2 {
		t.Errorf("Published = %d", a.node.Stats().Published.Load())
	}
	if b.node.Stats().QueriesSent.Load() != 2 {
		t.Errorf("QueriesSent = %d", b.node.Stats().QueriesSent.Load())
	}
}

func TestRendezvousLimit(t *testing.T) {
	tr := jxtaserve.NewInProc()
	rdv := newPeer(t, tr, "rdv", Config{Mode: ModeCentral, IsRendezvous: true})
	cfg := Config{Mode: ModeCentral, Rendezvous: []string{rdv.host.Addr()}}
	a := newPeer(t, tr, "pub", cfg)
	for i := 0; i < 10; i++ {
		if err := a.node.Publish(peerAd(fmt.Sprintf("p%d", i), 1000)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.node.Discover(advert.Query{Kind: advert.KindPeer}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestPublishToNonRendezvousRejected(t *testing.T) {
	tr := jxtaserve.NewInProc()
	plain := newPeer(t, tr, "plain", Config{Mode: ModeRendezvous})
	pub := newPeer(t, tr, "pub", Config{Mode: ModeRendezvous,
		Rendezvous: []string{plain.host.Addr()}})
	err := pub.node.Publish(peerAd("pub", 100))
	if err == nil || !strings.Contains(err.Error(), "not a rendezvous") {
		t.Fatalf("err = %v", err)
	}
}

func TestRendezvousDeadServerDoesNotKillDiscovery(t *testing.T) {
	tr := jxtaserve.NewInProc()
	rdv := newPeer(t, tr, "rdv", Config{Mode: ModeRendezvous, IsRendezvous: true})
	dead, _ := jxtaserve.NewHost("dead", tr, "")
	deadAddr := dead.Addr()
	dead.Close()
	cfg := Config{Mode: ModeRendezvous, Rendezvous: []string{deadAddr, rdv.host.Addr()}}
	// Publish targets the home rendezvous by hash; try peers until one
	// homes onto the live server.
	a := newPeer(t, tr, "peer-a", cfg)
	published := false
	for i := 0; i < 8 && !published; i++ {
		ad := peerAd(fmt.Sprintf("peer-%d", i), 1000)
		if err := a.node.Publish(ad); err == nil {
			published = true
		}
	}
	if !published {
		t.Skip("all trial peers homed onto the dead rendezvous")
	}
	got, err := a.node.Discover(advert.Query{Kind: advert.KindPeer}, 0)
	if err != nil {
		t.Fatalf("discovery failed despite live rendezvous: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no adverts found")
	}
}

// buildFloodRing wires n peers in a ring with degree 2 (each knows the
// next and previous peer).
func buildFloodRing(t *testing.T, tr jxtaserve.Transport, n, ttl int) []*testPeer {
	t.Helper()
	peers := make([]*testPeer, n)
	for i := range peers {
		peers[i] = newPeer(t, tr, fmt.Sprintf("p%d", i), Config{
			Mode: ModeFlood, TTL: ttl, QueryTimeout: 300 * time.Millisecond})
	}
	for i, p := range peers {
		p.node.AddNeighbor(peers[(i+1)%n].host.Addr())
		p.node.AddNeighbor(peers[(i+n-1)%n].host.Addr())
	}
	return peers
}

func TestFloodFindsWithinTTL(t *testing.T) {
	tr := jxtaserve.NewInProc()
	peers := buildFloodRing(t, tr, 10, 4)
	// Peer 3 holds the advert; peer 0 queries. Distance 3 <= TTL 4.
	target := peerAd("p3", 1500)
	if err := peers[3].node.Publish(target); err != nil {
		t.Fatal(err)
	}
	got, err := peers[0].node.Discover(advert.Query{Kind: advert.KindPeer}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PeerID != "p3" {
		t.Fatalf("flood found %+v", got)
	}
}

func TestFloodTTLBoundsReach(t *testing.T) {
	tr := jxtaserve.NewInProc()
	peers := buildFloodRing(t, tr, 12, 2)
	// Advert at distance 5 in both directions (peer 6 in a 12-ring, TTL 2
	// reaches distance 2 only).
	if err := peers[6].node.Publish(peerAd("p6", 1500)); err != nil {
		t.Fatal(err)
	}
	got, err := peers[0].node.Discover(advert.Query{Kind: advert.KindPeer, PeerID: "p6"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("TTL 2 reached distance 6: %+v", got)
	}
	// Message amplification recorded on intermediate peers.
	var forwarded int64
	for _, p := range peers {
		forwarded += p.node.Stats().QueriesForwarded.Load()
	}
	if forwarded == 0 {
		t.Error("no forwarding recorded")
	}
}

func TestFloodDedupeStopsEcho(t *testing.T) {
	tr := jxtaserve.NewInProc()
	peers := buildFloodRing(t, tr, 4, 8) // TTL larger than ring: echoes possible
	if err := peers[2].node.Publish(peerAd("p2", 1500)); err != nil {
		t.Fatal(err)
	}
	got, err := peers[0].node.Discover(advert.Query{Kind: advert.KindPeer, PeerID: "p2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("dedupe failed: %d copies", len(got))
	}
	// Each peer handles the query a bounded number of times (once per
	// neighbour edge at most, not exponential).
	for i, p := range peers {
		if h := p.node.Stats().QueriesHandled.Load(); h > 8 {
			t.Errorf("peer %d handled %d queries", i, h)
		}
	}
}

func TestFloodLocalHitNeedsNoNetwork(t *testing.T) {
	tr := jxtaserve.NewInProc()
	solo := newPeer(t, tr, "solo", Config{Mode: ModeFlood, QueryTimeout: 50 * time.Millisecond})
	if err := solo.node.Publish(peerAd("solo", 100)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := solo.node.Discover(advert.Query{Kind: advert.KindPeer}, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("local hit = %v, %v", got, err)
	}
	// No neighbours: the full timeout still applies only when remote
	// results are possible; with zero neighbours we still wait, so just
	// sanity-bound the latency.
	if time.Since(start) > 2*time.Second {
		t.Error("local discovery absurdly slow")
	}
}

func TestFloodLimitShortCircuits(t *testing.T) {
	tr := jxtaserve.NewInProc()
	peers := buildFloodRing(t, tr, 6, 4)
	for i := 1; i < 6; i++ {
		if err := peers[i].node.Publish(peerAd(fmt.Sprintf("p%d", i), 1500)); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	got, err := peers[0].node.Discover(advert.Query{Kind: advert.KindPeer}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d", len(got))
	}
	if time.Since(start) >= 300*time.Millisecond {
		t.Error("limit did not short-circuit the timeout")
	}
}

func TestNeighborsDedupe(t *testing.T) {
	tr := jxtaserve.NewInProc()
	p := newPeer(t, tr, "p", Config{Mode: ModeFlood})
	p.node.AddNeighbor("a")
	p.node.AddNeighbor("a")
	p.node.AddNeighbor("b")
	if got := p.node.Neighbors(); len(got) != 2 {
		t.Errorf("neighbors = %v", got)
	}
}

func TestAdvertListCodec(t *testing.T) {
	ads := []*advert.Advertisement{peerAd("x", 1), peerAd("y", 2)}
	b, err := advert.EncodeList(ads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := advert.DecodeList(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].PeerID != "x" || got[1].PeerID != "y" {
		t.Fatalf("decoded %+v", got)
	}
	empty, err := advert.EncodeList(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := advert.DecodeList(empty); err != nil || len(got) != 0 {
		t.Errorf("empty list = %v, %v", got, err)
	}
	if _, err := advert.DecodeList(nil); err == nil {
		t.Error("nil buffer decoded")
	}
	if _, err := advert.DecodeList(b[:len(b)-3]); err == nil {
		t.Error("truncated list decoded")
	}
}

func TestModeString(t *testing.T) {
	if ModeRendezvous.String() != "rendezvous" || ModeFlood.String() != "flood" ||
		ModeCentral.String() != "central" || Mode(9).String() != "unknown" {
		t.Error("mode names wrong")
	}
}
