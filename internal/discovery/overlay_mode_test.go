package discovery

import (
	"testing"

	"consumergrid/internal/advert"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/overlay"
)

// TestModeOverlayPublishAndDiscover drives a discovery.Node in overlay
// mode against a two-super ring: the node's Publish/Discover API stays
// identical while the transport-level work is delegated to the
// replicated super-peer tier.
func TestModeOverlayPublishAndDiscover(t *testing.T) {
	tr := jxtaserve.NewInProc()
	ring := overlay.NewRing(0)
	var supers []*overlay.SuperPeer
	for _, id := range []string{"sp-0", "sp-1"} {
		h, err := jxtaserve.NewHost(id, tr, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		ring.Add(h.Addr())
		sp, err := overlay.NewSuper(h, overlay.SuperOptions{Ring: ring, Replication: 2, SweepInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sp.Close)
		supers = append(supers, sp)
	}

	newOverlayPeer := func(id string) *testPeer {
		h, err := jxtaserve.NewHost(id, tr, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		cl, err := overlay.NewClient(h, overlay.ClientOptions{Ring: ring, Replication: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		return &testPeer{host: h, node: NewNode(h, advert.NewCache(), Config{Mode: ModeOverlay, Overlay: cl})}
	}

	a := newOverlayPeer("peer-a")
	b := newOverlayPeer("peer-b")
	if err := a.node.Publish(peerAd("peer-a", 2000)); err != nil {
		t.Fatal(err)
	}
	got, err := b.node.Discover(advert.Query{Kind: advert.KindPeer}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PeerID != "peer-a" {
		t.Fatalf("overlay Discover = %+v, want peer-a's advert", got)
	}
	// Both supers hold the advert (R=2), so either one can die.
	for i, sp := range supers {
		if live, _ := sp.Entries(); live != 1 {
			t.Fatalf("super %d holds %d live adverts, want 1", i, live)
		}
	}
}
