package discovery

import (
	"fmt"
	"hash/fnv"
	"testing"

	"consumergrid/internal/overlay"
)

// TestSeenRingEvictsOldestFirst is the satellite-1 regression: the
// flood-dedup set must evict strictly oldest-first and never forget a
// recent query ID while staler ones survive.
func TestSeenRingEvictsOldestFirst(t *testing.T) {
	r := newSeenRing(4)
	for i := 1; i <= 4; i++ {
		if r.observe(fmt.Sprintf("q%d", i)) {
			t.Fatalf("q%d reported duplicate on first sight", i)
		}
	}
	if r.len() != 4 {
		t.Fatalf("len = %d, want 4", r.len())
	}
	// Fifth insertion evicts q1 — and only q1.
	r.observe("q5")
	if r.has("q1") {
		t.Fatal("oldest ID q1 survived eviction")
	}
	for i := 2; i <= 5; i++ {
		if !r.has(fmt.Sprintf("q%d", i)) {
			t.Fatalf("recent ID q%d was evicted before the stalest one", i)
		}
	}
	if r.len() != 4 {
		t.Fatalf("len = %d after eviction, want 4", r.len())
	}
}

func TestSeenRingDuplicatesDoNotEvict(t *testing.T) {
	r := newSeenRing(3)
	r.observe("a")
	r.observe("b")
	r.observe("c")
	// Re-observing a full ring's members must not rotate anything out.
	for i := 0; i < 10; i++ {
		if !r.observe("a") || !r.observe("b") || !r.observe("c") {
			t.Fatal("known ID reported as fresh")
		}
	}
	if !r.has("a") || !r.has("b") || !r.has("c") {
		t.Fatal("duplicate observations evicted a live ID")
	}
}

func TestSeenRingMemoryBounded(t *testing.T) {
	r := newSeenRing(16)
	for i := 0; i < 10000; i++ {
		r.observe(fmt.Sprintf("q%d", i))
	}
	if r.len() != 16 || len(r.set) != 16 || len(r.ids) != 16 {
		t.Fatalf("ring grew past capacity: len=%d set=%d ids=%d", r.len(), len(r.set), len(r.ids))
	}
	// The newest window is intact.
	for i := 9984; i < 10000; i++ {
		if !r.has(fmt.Sprintf("q%d", i)) {
			t.Fatalf("recent q%d missing from full ring", i)
		}
	}
}

// TestModuloRemapsNearlyAll pins the satellite-2 claim: growing the
// rendezvous list under the legacy hash-modulo placement moves almost
// every peer to a different home, while the shared consistent-hash
// placement (overlay.Ring.Primary) moves only ~1/(k+1).
func TestModuloRemapsNearlyAll(t *testing.T) {
	four := []string{"r0", "r1", "r2", "r3"}
	five := append(append([]string(nil), four...), "r4")

	modulo := func(rdv []string, peerID string) string {
		h := fnv.New32a()
		h.Write([]byte(peerID))
		return rdv[int(h.Sum32())%len(rdv)]
	}
	ring4 := overlay.NewRing(0, four...)
	ring5 := overlay.NewRing(0, five...)

	const peers = 2000
	moduloMoved, ringMoved := 0, 0
	for i := 0; i < peers; i++ {
		id := fmt.Sprintf("peer-%d", i)
		if modulo(four, id) != modulo(five, id) {
			moduloMoved++
		}
		if ring4.Primary(id) != ring5.Primary(id) {
			ringMoved++
		}
	}
	if frac := float64(moduloMoved) / peers; frac < 0.6 {
		t.Fatalf("modulo moved only %.0f%% of peers — doc claim no longer holds", frac*100)
	}
	if frac := float64(ringMoved) / peers; frac > 0.35 {
		t.Fatalf("ring placement moved %.0f%% of peers, want ~20%%", frac*100)
	}
}

// TestPlacementOverridesModulo checks flat rendezvous mode actually
// routes through the shared placement function when one is configured.
func TestPlacementOverridesModulo(t *testing.T) {
	rdv := []string{"r0", "r1", "r2"}
	ring := overlay.NewRing(0, rdv...)
	n := &Node{cfg: Config{
		Mode:       ModeRendezvous,
		Rendezvous: rdv,
		Placement:  ring.Primary,
	}}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("peer-%d", i)
		if got, want := n.homeRendezvous(id), ring.Primary(id); got != want {
			t.Fatalf("homeRendezvous(%s) = %s, want ring placement %s", id, got, want)
		}
	}
	// Without Placement the legacy modulo pick still applies.
	n.cfg.Placement = nil
	h := fnv.New32a()
	h.Write([]byte("peer-0"))
	if got, want := n.homeRendezvous("peer-0"), rdv[int(h.Sum32())%len(rdv)]; got != want {
		t.Fatalf("legacy homeRendezvous = %s, want %s", got, want)
	}
}
