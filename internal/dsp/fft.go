// Package dsp provides the numerical signal-processing kernels used by the
// Triana signal units and the inspiral-search experiment (E2): FFTs,
// window functions, spectra, matched filtering and synthetic waveform
// generators. Everything is pure Go over float64/complex128 and
// deterministic given the caller's seeds.
package dsp

import (
	"fmt"
	"math/bits"
)

// FFT computes the in-place forward discrete Fourier transform of x.
// Power-of-two lengths use an iterative radix-2 Cooley–Tukey kernel;
// other lengths fall back to Bluestein's algorithm (via a padded
// power-of-two convolution), so any n >= 0 is accepted.
func FFT(x []complex128) {
	transform(x, false)
}

// IFFT computes the in-place inverse DFT of x, including the 1/n
// normalisation, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	transform(x, true)
	n := float64(len(x))
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range x {
		x[i] *= inv
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		// Power-of-two lengths run off a cached plan (bit-reversal table
		// + twiddle roots); see plan.go.
		planFor(n).execute(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// bluestein converts an arbitrary-length DFT into a convolution of
// padded power-of-two length (chirp-z transform). The chirp factors and
// the kernel's FFT come from a cached plan; only the signal-dependent
// half of the convolution is computed per call, in pooled scratch.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	p := bluesteinPlanFor(n, inverse)
	rp := planFor(p.m)
	sp, a := getCScratch(p.m)
	defer putCScratch(sp)
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.w[k]
	}
	rp.execute(a, false)
	for i := range a {
		a[i] *= p.bfft[i]
	}
	rp.execute(a, true)
	scale := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * p.w[k]
	}
}

// FFTReal transforms a real signal, returning the full complex spectrum
// (length n, conjugate-symmetric for real input).
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	FFT(c)
	return c
}

// PowerSpectrum returns the one-sided power spectrum of a real signal:
// |X_k|^2 / n for k in [0, n/2]. For an empty input it returns nil.
func PowerSpectrum(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	c := FFTReal(x)
	half := n/2 + 1
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(c[k]), imag(c[k])
		p := (re*re + im*im) / float64(n)
		// Fold negative frequencies into the one-sided spectrum (except
		// DC and, for even n, Nyquist).
		if k != 0 && !(n%2 == 0 && k == n/2) {
			p *= 2
		}
		out[k] = p
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Convolve returns the linear convolution of a and b (length
// len(a)+len(b)-1) computed via padded FFTs.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// CrossCorrelate returns the sliding-window cross-correlation of signal x
// with template h at every lag in [0, len(x)-len(h)]:
//
//	out[l] = sum_j x[l+j] * h[j]
//
// computed in the frequency domain (the "fast correlation" of §3.6.2).
// It returns an error when the template is longer than the signal.
func CrossCorrelate(x, h []float64) ([]float64, error) {
	if len(h) == 0 || len(x) == 0 {
		return nil, fmt.Errorf("dsp: empty input to CrossCorrelate")
	}
	if len(h) > len(x) {
		return nil, fmt.Errorf("dsp: template length %d exceeds signal length %d", len(h), len(x))
	}
	// Correlation = convolution with reversed template.
	rev := make([]float64, len(h))
	for i, v := range h {
		rev[len(h)-1-i] = v
	}
	full := Convolve(x, rev)
	// Valid lags start at len(h)-1 in the full convolution.
	nOut := len(x) - len(h) + 1
	out := make([]float64, nOut)
	copy(out, full[len(h)-1:len(h)-1+nOut])
	return out, nil
}

// CrossCorrelateDirect is the O(n*m) reference implementation used by
// tests to validate CrossCorrelate.
func CrossCorrelateDirect(x, h []float64) []float64 {
	if len(h) == 0 || len(h) > len(x) {
		return nil
	}
	out := make([]float64, len(x)-len(h)+1)
	for l := range out {
		var s float64
		for j, hv := range h {
			s += x[l+j] * hv
		}
		out[l] = s
	}
	return out
}
