// Package dsp provides the numerical signal-processing kernels used by the
// Triana signal units and the inspiral-search experiment (E2): FFTs,
// window functions, spectra, matched filtering and synthetic waveform
// generators. Everything is pure Go over float64/complex128 and
// deterministic given the caller's seeds.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place forward discrete Fourier transform of x.
// Power-of-two lengths use an iterative radix-2 Cooley–Tukey kernel;
// other lengths fall back to Bluestein's algorithm (via a padded
// power-of-two convolution), so any n >= 0 is accepted.
func FFT(x []complex128) {
	transform(x, false)
}

// IFFT computes the in-place inverse DFT of x, including the 1/n
// normalisation, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	transform(x, true)
	n := float64(len(x))
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range x {
		x[i] *= inv
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is the iterative power-of-two kernel (bit-reversal permutation
// followed by log2(n) butterfly passes).
func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// w = exp(i*step) computed incrementally per block for cache
		// friendliness; recomputed per block to bound error growth.
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			wStep := complex(math.Cos(step), math.Sin(step))
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein converts an arbitrary-length DFT into a convolution of
// padded power-of-two length (chirp-z transform).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign*i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		theta := sign * math.Pi * float64(kk) / float64(n)
		w[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		bk := complex(real(w[k]), -imag(w[k])) // conj
		b[k] = bk
		if k > 0 {
			b[m-k] = bk
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// FFTReal transforms a real signal, returning the full complex spectrum
// (length n, conjugate-symmetric for real input).
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	FFT(c)
	return c
}

// PowerSpectrum returns the one-sided power spectrum of a real signal:
// |X_k|^2 / n for k in [0, n/2]. For an empty input it returns nil.
func PowerSpectrum(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	c := FFTReal(x)
	half := n/2 + 1
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(c[k]), imag(c[k])
		p := (re*re + im*im) / float64(n)
		// Fold negative frequencies into the one-sided spectrum (except
		// DC and, for even n, Nyquist).
		if k != 0 && !(n%2 == 0 && k == n/2) {
			p *= 2
		}
		out[k] = p
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Convolve returns the linear convolution of a and b (length
// len(a)+len(b)-1) computed via padded FFTs.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// CrossCorrelate returns the sliding-window cross-correlation of signal x
// with template h at every lag in [0, len(x)-len(h)]:
//
//	out[l] = sum_j x[l+j] * h[j]
//
// computed in the frequency domain (the "fast correlation" of §3.6.2).
// It returns an error when the template is longer than the signal.
func CrossCorrelate(x, h []float64) ([]float64, error) {
	if len(h) == 0 || len(x) == 0 {
		return nil, fmt.Errorf("dsp: empty input to CrossCorrelate")
	}
	if len(h) > len(x) {
		return nil, fmt.Errorf("dsp: template length %d exceeds signal length %d", len(h), len(x))
	}
	// Correlation = convolution with reversed template.
	rev := make([]float64, len(h))
	for i, v := range h {
		rev[len(h)-1-i] = v
	}
	full := Convolve(x, rev)
	// Valid lags start at len(h)-1 in the full convolution.
	nOut := len(x) - len(h) + 1
	out := make([]float64, nOut)
	copy(out, full[len(h)-1:len(h)-1+nOut])
	return out, nil
}

// CrossCorrelateDirect is the O(n*m) reference implementation used by
// tests to validate CrossCorrelate.
func CrossCorrelateDirect(x, h []float64) []float64 {
	if len(h) == 0 || len(h) > len(x) {
		return nil
	}
	out := make([]float64, len(x)-len(h)+1)
	for l := range out {
		var s float64
		for j, hv := range h {
			s += x[l+j] * hv
		}
		out[l] = s
	}
	return out
}
