package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			theta := sign * 2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, theta))
		}
		out[k] = s
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 128, 255, 256} {
		x := randComplex(n, rng)
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		FFT(got)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 6, 8, 15, 64, 129, 1024} {
		x := randComplex(n, rng)
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		if e := maxErr(x, y); e > 1e-9*float64(n+1) {
			t.Errorf("n=%d: round-trip error %g", n, e)
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	FFT(nil)  // must not panic
	IFFT(nil) // must not panic
	x := []complex128{complex(3, 4)}
	FFT(x)
	if x[0] != complex(3, 4) {
		t.Error("length-1 FFT should be identity")
	}
}

func TestFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		a := randComplex(n, rng)
		b := randComplex(n, rng)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParsevalEnergyConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := GaussianNoise(512, 1, rng)
	var timeE float64
	for _, v := range x {
		timeE += v * v
	}
	c := FFTReal(x)
	var freqE float64
	for _, v := range c {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(len(x))
	if math.Abs(timeE-freqE)/timeE > 1e-10 {
		t.Errorf("Parseval violated: time %g freq %g", timeE, freqE)
	}
}

func TestPowerSpectrumPeakAtSineFrequency(t *testing.T) {
	// 1 kHz sine at 8 kHz sampling, as in the paper's Figure 1 workflow.
	const rate, freq = 8000.0, 1000.0
	x := Generate(Sine, freq, 1, rate, 1024, 0)
	ps := PowerSpectrum(x)
	best, bestV := 0, 0.0
	for i, v := range ps {
		if v > bestV {
			best, bestV = i, v
		}
	}
	gotFreq := float64(best) * rate / 1024
	if math.Abs(gotFreq-freq) > rate/1024 {
		t.Errorf("peak at %g Hz, want %g", gotFreq, freq)
	}
	if PowerSpectrum(nil) != nil {
		t.Error("empty power spectrum should be nil")
	}
}

func TestPowerSpectrumTotalEnergy(t *testing.T) {
	// One-sided power spectrum sums to signal energy / n ... verify the
	// folding bookkeeping against the two-sided sum.
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 17} { // even (Nyquist bin) and odd
		x := GaussianNoise(n, 1, rng)
		var twoSided float64
		c := FFTReal(x)
		for _, v := range c {
			twoSided += (real(v)*real(v) + imag(v)*imag(v)) / float64(n)
		}
		var oneSided float64
		for _, v := range PowerSpectrum(x) {
			oneSided += v
		}
		if math.Abs(twoSided-oneSided)/twoSided > 1e-10 {
			t.Errorf("n=%d: one-sided %g vs two-sided %g", n, oneSided, twoSided)
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5}
	got := Convolve(a, b)
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Convolve(nil, b) != nil || Convolve(a, nil) != nil {
		t.Error("empty convolution should be nil")
	}
}

func TestCrossCorrelateMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct{ nx, nh int }{{64, 8}, {100, 33}, {50, 50}, {129, 1}} {
		x := GaussianNoise(c.nx, 1, rng)
		h := GaussianNoise(c.nh, 1, rng)
		got, err := CrossCorrelate(x, h)
		if err != nil {
			t.Fatalf("nx=%d nh=%d: %v", c.nx, c.nh, err)
		}
		want := CrossCorrelateDirect(x, h)
		if len(got) != len(want) {
			t.Fatalf("length %d vs %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Errorf("nx=%d nh=%d lag %d: %g vs %g", c.nx, c.nh, i, got[i], want[i])
			}
		}
	}
}

func TestCrossCorrelateErrors(t *testing.T) {
	if _, err := CrossCorrelate(nil, []float64{1}); err == nil {
		t.Error("empty signal should fail")
	}
	if _, err := CrossCorrelate([]float64{1}, nil); err == nil {
		t.Error("empty template should fail")
	}
	if _, err := CrossCorrelate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("template longer than signal should fail")
	}
}

func TestMatchedFilterFindsBuriedChirp(t *testing.T) {
	// The core E2 behaviour: a chirp buried in noise at 10x its amplitude
	// is recovered by correlation against the matching template, with the
	// peak at the injection offset.
	const rate = 2000.0
	rng := rand.New(rand.NewSource(6))
	tpl := Chirp(50, 300, rate, 2048)
	normalizeEnergy(tpl)
	noise := GaussianNoise(16384, 1.0, rng)
	const inject = 5000
	x := append([]float64(nil), noise...)
	for i, v := range Chirp(50, 300, rate, 2048) {
		x[inject+i] += 3 * v // SNR well below visual threshold per-sample
	}
	corr, err := CrossCorrelate(x, tpl)
	if err != nil {
		t.Fatal(err)
	}
	peak, peakV := 0, 0.0
	for i, v := range corr {
		if a := math.Abs(v); a > peakV {
			peak, peakV = i, a
		}
	}
	if peak != inject {
		t.Errorf("peak at lag %d, want %d", peak, inject)
	}
	if snr := SNR(corr); snr < 5 {
		t.Errorf("SNR = %g, want >= 5", snr)
	}
	// A badly mismatched template must not produce a comparable peak.
	wrong := Chirp(600, 900, rate, 2048)
	normalizeEnergy(wrong)
	corrWrong, err := CrossCorrelate(x, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if SNR(corrWrong) > SNR(corr)/2 {
		t.Errorf("mismatched template SNR %g too close to matched %g",
			SNR(corrWrong), SNR(corr))
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
