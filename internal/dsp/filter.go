package dsp

import (
	"fmt"
	"math"
)

// LowPassFIR designs a windowed-sinc low-pass filter with the given
// number of taps (forced odd for a symmetric, linear-phase kernel) and
// normalised cutoff frequency in (0, 0.5) — cycles per sample. The Hamming
// window bounds the sidelobes; the kernel is normalised to unit DC gain.
func LowPassFIR(taps int, cutoff float64) ([]float64, error) {
	if taps < 3 {
		return nil, fmt.Errorf("dsp: FIR needs >= 3 taps, got %d", taps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: cutoff %g outside (0, 0.5)", cutoff)
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	mid := taps / 2
	win := Hamming.Coefficients(taps)
	var sum float64
	for i := range h {
		n := float64(i - mid)
		var s float64
		if n == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*n) / (math.Pi * n)
		}
		h[i] = s * win[i]
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// HighPassFIR designs the spectral inversion of LowPassFIR: unit gain at
// Nyquist, zero at DC.
func HighPassFIR(taps int, cutoff float64) ([]float64, error) {
	h, err := LowPassFIR(taps, cutoff)
	if err != nil {
		return nil, err
	}
	for i := range h {
		h[i] = -h[i]
	}
	h[len(h)/2] += 1
	return h, nil
}

// FilterFIR applies kernel h to x in "same" mode: the output has len(x)
// samples, delay-compensated by the kernel's group delay (h must be the
// symmetric output of LowPassFIR/HighPassFIR for the compensation to be
// exact). Edges see an implicitly zero-padded signal.
func FilterFIR(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	full := Convolve(x, h)
	out := make([]float64, len(x))
	offset := len(h) / 2
	copy(out, full[offset:offset+len(x)])
	return out
}

// MovingAverage smooths x with a centred window of the given width
// (forced odd), zero-padded at the edges with shrink-to-fit averaging so
// edge samples average only over real data.
func MovingAverage(x []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(x))
	// Prefix sums give O(n) for any window.
	prefix := make([]float64, len(x)+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(x) {
			hi = len(x) - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}

// GainAt measures a kernel's magnitude response at normalised frequency
// f (cycles/sample) by direct evaluation of its DTFT.
func GainAt(h []float64, f float64) float64 {
	var re, im float64
	for n, v := range h {
		theta := -2 * math.Pi * f * float64(n)
		re += v * math.Cos(theta)
		im += v * math.Sin(theta)
	}
	return math.Hypot(re, im)
}
