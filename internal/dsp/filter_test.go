package dsp

import (
	"math"
	"testing"
)

func TestLowPassFIRResponse(t *testing.T) {
	h, err := LowPassFIR(63, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 63 {
		t.Fatalf("taps = %d", len(h))
	}
	// Unit DC gain, strong stopband attenuation, ~-6 dB at cutoff.
	if g := GainAt(h, 0); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain = %g", g)
	}
	if g := GainAt(h, 0.05); g < 0.95 {
		t.Errorf("passband gain at 0.05 = %g", g)
	}
	if g := GainAt(h, 0.25); g > 0.01 {
		t.Errorf("stopband gain at 0.25 = %g", g)
	}
	if g := GainAt(h, 0.1); math.Abs(g-0.5) > 0.1 {
		t.Errorf("cutoff gain = %g, want ~0.5", g)
	}
	// Symmetric (linear phase).
	for i := 0; i < len(h)/2; i++ {
		if math.Abs(h[i]-h[len(h)-1-i]) > 1e-12 {
			t.Fatalf("kernel asymmetric at %d", i)
		}
	}
	// Even tap counts are bumped to odd.
	h2, err := LowPassFIR(10, 0.2)
	if err != nil || len(h2)%2 == 0 {
		t.Errorf("even taps = %d, %v", len(h2), err)
	}
}

func TestHighPassFIRResponse(t *testing.T) {
	h, err := HighPassFIR(63, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g := GainAt(h, 0); g > 0.01 {
		t.Errorf("DC gain = %g, want ~0", g)
	}
	if g := GainAt(h, 0.4); g < 0.95 {
		t.Errorf("highband gain = %g, want ~1", g)
	}
}

func TestFIRValidation(t *testing.T) {
	if _, err := LowPassFIR(1, 0.1); err == nil {
		t.Error("too few taps accepted")
	}
	for _, c := range []float64{0, 0.5, -1, 0.7} {
		if _, err := LowPassFIR(9, c); err == nil {
			t.Errorf("cutoff %g accepted", c)
		}
	}
}

func TestFilterFIRSeparatesTones(t *testing.T) {
	// 0.02 + 0.3 cycles/sample tones; a 0.1 low-pass keeps only the slow one.
	n := 2048
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*0.02*float64(i)) + math.Sin(2*math.Pi*0.3*float64(i))
	}
	h, _ := LowPassFIR(101, 0.1)
	y := FilterFIR(x, h)
	if len(y) != n {
		t.Fatalf("same-mode length = %d", len(y))
	}
	// Compare against the pure slow tone away from the edges; the delay
	// compensation must align them.
	var maxErr float64
	for i := 200; i < n-200; i++ {
		want := math.Sin(2 * math.Pi * 0.02 * float64(i))
		if e := math.Abs(y[i] - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.05 {
		t.Errorf("residual after low-pass = %g", maxErr)
	}
	if FilterFIR(nil, h) != nil || FilterFIR(x, nil) != nil {
		t.Error("empty filter inputs")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(x, 3)
	want := []float64{1.5, 2, 3, 4, 4.5} // edges shrink to available data
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ma[%d] = %g, want %g (full: %v)", i, got[i], want[i], got)
		}
	}
	// Window 1 (and evens bumped to odd) are identity-ish.
	id := MovingAverage(x, 1)
	for i := range x {
		if id[i] != x[i] {
			t.Fatal("window-1 not identity")
		}
	}
	if len(MovingAverage(nil, 5)) != 0 {
		t.Error("empty input")
	}
}
