package dsp

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
)

// An fftPlan holds everything a power-of-two transform of length n needs
// beyond the data itself: the bit-reversal permutation and the first half
// of the complex roots of unity. The E2 inspiral search runs thousands of
// same-length transforms, so computing sines once per length instead of
// once per butterfly block is the dominant kernel win. Plans are
// immutable after construction and safe for concurrent use.
type fftPlan struct {
	n      int
	bitrev []int32      // bitrev[i] = bit-reversed index of i
	tw     []complex128 // tw[j] = exp(-2*pi*i*j/n), j < n/2 (forward roots)
}

func newFFTPlan(n int) *fftPlan {
	p := &fftPlan{n: n, bitrev: make([]int32, n), tw: make([]complex128, n/2)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.bitrev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	for j := 0; j < n/2; j++ {
		theta := -2 * math.Pi * float64(j) / float64(n)
		p.tw[j] = complex(math.Cos(theta), math.Sin(theta))
	}
	return p
}

// execute runs the iterative radix-2 kernel over x (len(x) == p.n). The
// inverse transform conjugates the cached forward roots on the fly and,
// like the old radix2, does NOT apply the 1/n normalisation — IFFT does.
func (p *fftPlan) execute(x []complex128, inverse bool) {
	n := p.n
	for i, j := range p.bitrev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := 0; k < half; k++ {
				w := p.tw[ti]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				ti += stride
			}
		}
	}
}

// maxFFTPlans bounds the radix-2 plan cache. A plan for n = 2^18 holds
// ~3 MiB of tables; eight plans cover every length a realistic workflow
// mixes while keeping the worst case ~25 MiB.
const maxFFTPlans = 8

var fftPlans = struct {
	sync.Mutex
	byN   map[int]*fftPlan
	order []int // LRU order: least recently used first
}{byN: make(map[int]*fftPlan)}

// planFor returns the cached plan for power-of-two length n, building and
// caching it (with LRU eviction) on first use.
func planFor(n int) *fftPlan {
	fftPlans.Lock()
	defer fftPlans.Unlock()
	if p, ok := fftPlans.byN[n]; ok {
		touchLRU(&fftPlans.order, n)
		return p
	}
	p := newFFTPlan(n)
	if len(fftPlans.byN) >= maxFFTPlans {
		oldest := fftPlans.order[0]
		fftPlans.order = fftPlans.order[1:]
		delete(fftPlans.byN, oldest)
	}
	fftPlans.byN[n] = p
	fftPlans.order = append(fftPlans.order, n)
	return p
}

func touchLRU(order *[]int, n int) {
	for i, v := range *order {
		if v == n {
			*order = append(append((*order)[:i:i], (*order)[i+1:]...), n)
			return
		}
	}
}

// A bluesteinPlan caches the length-dependent constants of the chirp-z
// transform: the chirp factors and — the expensive part — the forward
// FFT of the padded conjugate-chirp kernel, which the old code recomputed
// on every call.
type bluesteinPlan struct {
	n, m int
	w    []complex128 // chirp factors exp(sign*i*pi*k^2/n)
	bfft []complex128 // FFT of the padded conj-chirp kernel
}

type bluesteinKey struct {
	n       int
	inverse bool
}

const maxBluesteinPlans = 4

var bluesteinPlans = struct {
	sync.Mutex
	byKey map[bluesteinKey]*bluesteinPlan
	order []bluesteinKey
}{byKey: make(map[bluesteinKey]*bluesteinPlan)}

func bluesteinPlanFor(n int, inverse bool) *bluesteinPlan {
	key := bluesteinKey{n, inverse}
	bluesteinPlans.Lock()
	if p, ok := bluesteinPlans.byKey[key]; ok {
		for i, v := range bluesteinPlans.order {
			if v == key {
				bluesteinPlans.order = append(
					append(bluesteinPlans.order[:i:i], bluesteinPlans.order[i+1:]...), key)
				break
			}
		}
		bluesteinPlans.Unlock()
		return p
	}
	bluesteinPlans.Unlock()

	// Build outside the lock: kernel FFT of a large plan is slow and
	// building the same plan twice on a race is merely wasted work.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	p := &bluesteinPlan{n: n, w: make([]complex128, n)}
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		theta := sign * math.Pi * float64(kk) / float64(n)
		p.w[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.bfft = make([]complex128, m)
	for k := 0; k < n; k++ {
		bk := complex(real(p.w[k]), -imag(p.w[k])) // conj
		p.bfft[k] = bk
		if k > 0 {
			p.bfft[m-k] = bk
		}
	}
	planFor(m).execute(p.bfft, false)

	bluesteinPlans.Lock()
	defer bluesteinPlans.Unlock()
	if q, ok := bluesteinPlans.byKey[key]; ok {
		// A racing goroutine built the same plan first and already
		// registered it in map and LRU order; inserting ours too would
		// leave a duplicate order entry that drifts from the map. Ours
		// was merely wasted work — use theirs.
		return q
	}
	if len(bluesteinPlans.byKey) >= maxBluesteinPlans {
		oldest := bluesteinPlans.order[0]
		bluesteinPlans.order = bluesteinPlans.order[1:]
		delete(bluesteinPlans.byKey, oldest)
	}
	bluesteinPlans.byKey[key] = p
	bluesteinPlans.order = append(bluesteinPlans.order, key)
	return p
}

// cscratchPool recycles the complex work arrays the Bluestein and
// correlation paths need; slabs grow to the largest length seen and are
// zeroed by the borrower.
var cscratchPool = sync.Pool{New: func() any {
	s := make([]complex128, 0)
	return &s
}}

func getCScratch(n int) (*[]complex128, []complex128) {
	sp := cscratchPool.Get().(*[]complex128)
	if cap(*sp) < n {
		*sp = make([]complex128, n)
	}
	s := (*sp)[:n]
	for i := range s {
		s[i] = 0
	}
	return sp, s
}

func putCScratch(sp *[]complex128) { cscratchPool.Put(sp) }

// CrossCorrelateBank correlates one signal against every template in the
// bank, sharing the signal's FFT across all of them and fanning the
// per-template work across GOMAXPROCS workers. Output order is
// deterministic: out[i] corresponds to bank[i] and matches
// CrossCorrelate(x, bank[i]) up to rounding. This is the §3.6.2 matched
// filter inner loop: one detector stretch, hundreds of inspiral
// templates. Cancellation is checked between templates, so engine
// shutdown interrupts a long bank run; a nil ctx never cancels.
func CrossCorrelateBank(ctx context.Context, x []float64, bank [][]float64) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("dsp: empty signal to CrossCorrelateBank")
	}
	maxLen := 0
	for i, h := range bank {
		if len(h) == 0 {
			return nil, fmt.Errorf("dsp: empty template %d in bank", i)
		}
		if len(h) > len(x) {
			return nil, fmt.Errorf("dsp: template %d length %d exceeds signal length %d",
				i, len(h), len(x))
		}
		if len(h) > maxLen {
			maxLen = len(h)
		}
	}
	out := make([][]float64, len(bank))
	if len(bank) == 0 {
		return out, nil
	}
	// One padded length serves every template: padding a linear
	// convolution beyond its minimum length only appends zeros.
	m := NextPow2(len(x) + maxLen - 1)
	p := planFor(m)
	fx := make([]complex128, m)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	p.execute(fx, false)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(bank) {
		workers = len(bank)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp, scratch := getCScratch(m)
			defer putCScratch(sp)
			inv := 1 / float64(m)
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain the feed; the run is abandoned
				}
				h := bank[i]
				for j := range scratch {
					scratch[j] = 0
				}
				for j, v := range h {
					scratch[len(h)-1-j] = complex(v, 0) // reversed template
				}
				p.execute(scratch, false)
				for j := range scratch {
					scratch[j] *= fx[j]
				}
				p.execute(scratch, true)
				nOut := len(x) - len(h) + 1
				res := make([]float64, nOut)
				off := len(h) - 1
				for l := 0; l < nOut; l++ {
					res[l] = real(scratch[off+l]) * inv
				}
				out[i] = res
			}
		}()
	}
feed:
	for i := range bank {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
