package dsp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func TestCrossCorrelateBankMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Mixed template lengths exercise the shared padded length.
	bank := make([][]float64, 9)
	for i := range bank {
		h := make([]float64, 5+13*i)
		for j := range h {
			h[j] = rng.NormFloat64()
		}
		bank[i] = h
	}
	out, err := CrossCorrelateBank(context.Background(), x, bank)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(bank) {
		t.Fatalf("got %d results for %d templates", len(out), len(bank))
	}
	for i, h := range bank {
		want := CrossCorrelateDirect(x, h)
		if len(out[i]) != len(want) {
			t.Fatalf("template %d: %d lags, want %d", i, len(out[i]), len(want))
		}
		for l := range want {
			if math.Abs(out[i][l]-want[l]) > 1e-8*float64(len(x)) {
				t.Fatalf("template %d lag %d: %g vs %g", i, l, out[i][l], want[l])
			}
		}
	}
}

func TestCrossCorrelateBankDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	bank := make([][]float64, 32)
	for i := range bank {
		h := make([]float64, 64)
		for j := range h {
			h[j] = rng.NormFloat64()
		}
		bank[i] = h
	}
	first, err := CrossCorrelateBank(context.Background(), x, bank)
	if err != nil {
		t.Fatal(err)
	}
	// The worker fan-out must not perturb bit-level results or ordering.
	for trial := 0; trial < 3; trial++ {
		again, err := CrossCorrelateBank(context.Background(), x, bank)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			for l := range first[i] {
				if again[i][l] != first[i][l] {
					t.Fatalf("trial %d template %d lag %d: %g != %g",
						trial, i, l, again[i][l], first[i][l])
				}
			}
		}
	}
}

func TestCrossCorrelateBankErrors(t *testing.T) {
	x := []float64{1, 2, 3}
	if _, err := CrossCorrelateBank(context.Background(), nil, [][]float64{{1}}); err == nil {
		t.Error("empty signal accepted")
	}
	if _, err := CrossCorrelateBank(context.Background(), x, [][]float64{{1}, nil}); err == nil {
		t.Error("empty template accepted")
	}
	if _, err := CrossCorrelateBank(context.Background(), x, [][]float64{{1, 2, 3, 4}}); err == nil {
		t.Error("template longer than signal accepted")
	}
	out, err := CrossCorrelateBank(context.Background(), x, nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty bank: %v, %v", out, err)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	// Run more distinct lengths than the cache holds; every transform must
	// stay correct through evictions.
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		x := randComplex(n, rng)
		orig := append([]complex128(nil), x...)
		FFT(x)
		IFFT(x)
		if e := maxErr(x, orig); e > 1e-9*float64(n) {
			t.Errorf("n=%d: round-trip error %g after eviction churn", n, e)
		}
	}
	fftPlans.Lock()
	if len(fftPlans.byN) > maxFFTPlans {
		t.Errorf("cache holds %d plans, bound is %d", len(fftPlans.byN), maxFFTPlans)
	}
	if len(fftPlans.order) != len(fftPlans.byN) {
		t.Errorf("LRU order list (%d) out of sync with map (%d)",
			len(fftPlans.order), len(fftPlans.byN))
	}
	fftPlans.Unlock()
}
