package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateSineProperties(t *testing.T) {
	x := Generate(Sine, 125, 2, 1000, 1000, 0)
	if len(x) != 1000 {
		t.Fatalf("len = %d", len(x))
	}
	var max float64
	var sum float64
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
		sum += v
	}
	if math.Abs(max-2) > 0.01 {
		t.Errorf("amplitude = %g, want ~2", max)
	}
	if math.Abs(sum)/1000 > 0.01 {
		t.Errorf("mean = %g, want ~0", sum/1000)
	}
	// Period = 8 samples at 125 Hz / 1 kHz: x[0] == x[8].
	if math.Abs(x[0]-x[8]) > 1e-9 {
		t.Error("periodicity violated")
	}
}

func TestGenerateSquareSawtoothTriangle(t *testing.T) {
	sq := Generate(Square, 1, 1, 8, 8, 0)
	for i := 0; i < 4; i++ {
		if sq[i] != 1 {
			t.Errorf("square[%d] = %g, want 1", i, sq[i])
		}
	}
	for i := 4; i < 8; i++ {
		if sq[i] != -1 {
			t.Errorf("square[%d] = %g, want -1", i, sq[i])
		}
	}
	saw := Generate(Sawtooth, 1, 1, 4, 4, 0)
	if saw[0] != -1 || math.Abs(saw[2]) > 1e-12 {
		t.Errorf("sawtooth = %v", saw)
	}
	tri := Generate(Triangle, 1, 1, 4, 4, 0)
	if math.Abs(tri[2]-1) > 1e-12 { // peak at half period
		t.Errorf("triangle = %v", tri)
	}
}

func TestGenerateStartOffsetContinuity(t *testing.T) {
	// Generating in two chunks with Start continuation must equal one shot.
	whole := Generate(Sine, 7, 1, 100, 200, 0)
	a := Generate(Sine, 7, 1, 100, 100, 0)
	b := Generate(Sine, 7, 1, 100, 100, 1.0) // second second
	for i := range a {
		if math.Abs(whole[i]-a[i]) > 1e-12 || math.Abs(whole[100+i]-b[i]) > 1e-9 {
			t.Fatalf("chunked generation diverges at %d", i)
		}
	}
}

func TestWaveformStringAndParse(t *testing.T) {
	for _, w := range []Waveform{Sine, Square, Sawtooth, Triangle} {
		if ParseWaveform(w.String()) != w {
			t.Errorf("ParseWaveform(%q) != %v", w.String(), w)
		}
	}
	if ParseWaveform("nonsense") != Sine {
		t.Error("unknown waveform should default to sine")
	}
	if Waveform(99).String() != "unknown" {
		t.Error("unknown String wrong")
	}
}

func TestGaussianNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := GaussianNoise(100000, 2.0, rng)
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	mean := sum / float64(len(x))
	std := math.Sqrt(sq/float64(len(x)) - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %g", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Errorf("std = %g, want ~2", std)
	}
}

func TestAddGaussianNoiseLeavesInputIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := []float64{1, 2, 3}
	y := AddGaussianNoise(x, 1, rng)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Error("input mutated")
	}
	if y[0] == x[0] && y[1] == x[1] {
		t.Error("no noise added")
	}
}

func TestChirpFrequencyIncreases(t *testing.T) {
	// Estimate instantaneous frequency from zero crossings in the first
	// and last quarter; the chirp must sweep upward.
	const rate = 2000.0
	x := Chirp(50, 400, rate, 8000)
	crossings := func(seg []float64) int {
		n := 0
		for i := 1; i < len(seg); i++ {
			if (seg[i-1] < 0) != (seg[i] < 0) {
				n++
			}
		}
		return n
	}
	early := crossings(x[:2000])
	late := crossings(x[6000:])
	if late <= early*2 {
		t.Errorf("chirp not sweeping: early %d crossings, late %d", early, late)
	}
	if len(Chirp(1, 2, 10, 0)) != 0 {
		t.Error("zero-length chirp should be empty")
	}
}

func TestTemplateBankNormalisedAndDistinct(t *testing.T) {
	bank := TemplateBank(5, 1024, 50, 200, 400, 2000)
	if len(bank) != 5 {
		t.Fatalf("bank size %d", len(bank))
	}
	for i, tpl := range bank {
		var e float64
		for _, v := range tpl {
			e += v * v
		}
		if math.Abs(e-1) > 1e-9 {
			t.Errorf("template %d energy %g, want 1", i, e)
		}
	}
	// Neighbouring templates must differ.
	var diff float64
	for j := range bank[0] {
		d := bank[0][j] - bank[4][j]
		diff += d * d
	}
	if diff < 0.1 {
		t.Error("templates 0 and 4 nearly identical")
	}
	one := TemplateBank(1, 64, 50, 200, 400, 2000)
	if len(one) != 1 {
		t.Error("single-template bank")
	}
}

func TestWindows(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("window %d length", w)
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("window %d coeff[%d] = %g out of [0,1]", w, i, v)
			}
		}
		// Symmetry.
		for i := 0; i < 32; i++ {
			if math.Abs(c[i]-c[63-i]) > 1e-12 {
				t.Errorf("window %d asymmetric at %d", w, i)
			}
		}
	}
	if Hann.Coefficients(1)[0] != 1 {
		t.Error("length-1 window should be 1")
	}
	// Rectangular is identity under Apply.
	x := []float64{1, 2, 3}
	Rectangular.Apply(x)
	if x[1] != 2 {
		t.Error("rectangular window modified signal")
	}
	// Hann endpoints are zero.
	h := Hann.Coefficients(9)
	if h[0] != 0 || h[8] != 0 {
		t.Error("hann endpoints nonzero")
	}
	if ParseWindow("hann") != Hann || ParseWindow("hamming") != Hamming ||
		ParseWindow("blackman") != Blackman || ParseWindow("x") != Rectangular {
		t.Error("ParseWindow wrong")
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	got := Decimate(x, 4, false)
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("Decimate = %v", got)
	}
	sm := Decimate(x, 4, true)
	if sm[0] != 1.5 || sm[1] != 5.5 {
		t.Errorf("smoothed Decimate = %v", sm)
	}
	same := Decimate(x, 1, false)
	same[0] = 99
	if x[0] == 99 {
		t.Error("factor-1 Decimate aliases input")
	}
	// The paper's 8 kHz -> 2 kHz reduction.
	eight := make([]float64, 8000)
	if got := Decimate(eight, 4, true); len(got) != 2000 {
		t.Errorf("8k->2k decimation length %d", len(got))
	}
}

func TestSNRDegenerate(t *testing.T) {
	if SNR(nil) != 0 || SNR([]float64{1, 2}) != 0 {
		t.Error("short series SNR should be 0")
	}
	if SNR(make([]float64, 100)) != 0 {
		t.Error("all-zero SNR should be 0")
	}
	// A lone spike in silence has huge SNR... but zero noise means 0 by
	// our convention; add tiny noise to check the spike dominates.
	series := make([]float64, 1000)
	for i := range series {
		series[i] = 0.001 * math.Sin(float64(i))
	}
	series[500] = 10
	if snr := SNR(series); snr < 1000 {
		t.Errorf("spike SNR = %g, want large", snr)
	}
}
