package engine

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/unitio"

	_ "consumergrid/internal/units/mathx"
	"consumergrid/internal/units/signal"
)

// TestFanOutMutatorDoesNotPerturbReaders runs the copy-on-write fan-out
// with a mutating sibling (Scale takes the Mutable view of its input)
// next to a pure reader (Grapher retains what it is handed), and checks
// the reader sees exactly what a mutator-free run would have seen. If
// the engine ever handed the sealed source buffer to the mutator, the
// reader's retained samples would differ.
func TestFanOutMutatorDoesNotPerturbReaders(t *testing.T) {
	build := func(withMutator bool) *taskgraph.Graph {
		g := taskgraph.New("cow")
		w, _ := units.NewTask("W", signal.NameWave)
		w.SetParam("samples", "64")
		g.MustAdd(w)
		gr, _ := units.NewTask("G", unitio.NameGrapher)
		g.MustAdd(gr)
		g.ConnectNamed("W", 0, "G", 0)
		if withMutator {
			s, _ := units.NewTask("S", "triana.mathx.Scale")
			s.SetParam("gain", "10")
			g.MustAdd(s)
			gm, _ := units.NewTask("GS", unitio.NameGrapher)
			g.MustAdd(gm)
			g.ConnectNamed("W", 0, "S", 0)
			g.ConnectNamed("S", 0, "GS", 0)
		}
		return g
	}
	run := func(g *taskgraph.Graph) []float64 {
		res, err := Run(context.Background(), g, Options{Iterations: 3, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		xs, ok := types.Floats(res.Unit("G").(*unitio.Grapher).Last())
		if !ok {
			t.Fatal("Grapher retained non-numeric data")
		}
		return xs
	}
	solo := run(build(false))
	shared := run(build(true))
	if !reflect.DeepEqual(solo, shared) {
		t.Fatal("mutating sibling perturbed the reading sibling's data")
	}
}

// TestFanOutUnsealedMidPipelineUnderRace covers fan-out of an UNSEALED
// datum: only source outputs are sealed by default, so a mid-pipeline
// producer (I0, whose InjectChirp output is a private mutable copy)
// fans a value that types.Mutable returns as-is — each consuming
// InjectChirp scribbles on what it was handed, in place, the moment it
// arrives. The engine must therefore take every clone before
// relinquishing the original (which goes to the last edge); cloning
// after any delivery would race with the first consumer's writes and
// corrupt the siblings' data. Run with -race this catches the alias;
// without -race it still checks every branch against a solo run.
func TestFanOutUnsealedMidPipelineUnderRace(t *testing.T) {
	const fan = 4
	build := func(branch int) *taskgraph.Graph {
		name := "mid-cow"
		if branch >= 0 {
			name = fmt.Sprintf("mid-cow-%d", branch)
		}
		g := taskgraph.New(name)
		w, _ := units.NewTask("W", signal.NameWave)
		w.SetParam("samples", "4096")
		g.MustAdd(w)
		i0, _ := units.NewTask("I0", signal.NameInjectChirp)
		i0.SetParam("length", "1024")
		g.MustAdd(i0)
		g.ConnectNamed("W", 0, "I0", 0)
		add := func(i int) {
			bn := fmt.Sprintf("I%d", i+1)
			b, _ := units.NewTask(bn, signal.NameInjectChirp)
			b.SetParam("length", "1024")
			b.SetParam("offset", fmt.Sprintf("%d", (i+1)*512))
			b.SetParam("amplitude", fmt.Sprintf("%d", i+2))
			g.MustAdd(b)
			gr, _ := units.NewTask("G"+bn, unitio.NameGrapher)
			g.MustAdd(gr)
			g.ConnectNamed("I0", 0, bn, 0)
			g.ConnectNamed(bn, 0, "G"+bn, 0)
		}
		if branch >= 0 {
			add(branch)
		} else {
			for i := 0; i < fan; i++ {
				add(i)
			}
		}
		return g
	}
	retained := func(g *taskgraph.Graph, branch int) []float64 {
		res, err := Run(context.Background(), g, Options{Iterations: 3, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		xs, ok := types.Floats(res.Unit(fmt.Sprintf("GI%d", branch+1)).(*unitio.Grapher).Last())
		if !ok {
			t.Fatal("Grapher retained non-numeric data")
		}
		return xs
	}
	shared := build(-1)
	sharedRes, err := Run(context.Background(), shared, Options{Iterations: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fan; i++ {
		solo := retained(build(i), i)
		got, ok := types.Floats(sharedRes.Unit(fmt.Sprintf("GI%d", i+1)).(*unitio.Grapher).Last())
		if !ok {
			t.Fatalf("branch %d retained non-numeric data", i)
		}
		if !reflect.DeepEqual(solo, got) {
			t.Fatalf("branch %d diverged from its solo run: sibling mutators leaked into shared data", i)
		}
	}
}

// TestFanOutConcurrentMutatorsUnderRace is the race-detector harness for
// the sealed-sharing path: one source fans a sealed buffer to many
// siblings, each of which concurrently takes its Mutable view and
// scribbles on it while the others read. Run with -race (the CI verify
// job does) this catches any aliasing between the shared sealed buffer
// and a mutator's working copy; without -race it still checks each
// branch computed its own gain correctly.
func TestFanOutConcurrentMutatorsUnderRace(t *testing.T) {
	const fan = 8
	g := taskgraph.New("cow-race")
	w, _ := units.NewTask("W", signal.NameWave)
	w.SetParam("samples", "1024")
	g.MustAdd(w)
	for i := 0; i < fan; i++ {
		name := fmt.Sprintf("S%d", i)
		s, _ := units.NewTask(name, "triana.mathx.Scale")
		s.SetParam("gain", fmt.Sprintf("%d", i+1))
		g.MustAdd(s)
		gr, _ := units.NewTask("G"+name, unitio.NameGrapher)
		g.MustAdd(gr)
		g.ConnectNamed("W", 0, name, 0)
		g.ConnectNamed(name, 0, "G"+name, 0)
	}
	res, err := Run(context.Background(), g, Options{Iterations: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base, ok := types.Floats(res.Unit("GS0").(*unitio.Grapher).Last())
	if !ok {
		t.Fatal("branch 0 retained non-numeric data")
	}
	for i := 1; i < fan; i++ {
		xs, _ := types.Floats(res.Unit(fmt.Sprintf("GS%d", i)).(*unitio.Grapher).Last())
		want := float64(i + 1) // branch 0 has gain 1
		for j := range base {
			if base[j] == 0 {
				continue
			}
			if math.Abs(xs[j]/base[j]-want) > 1e-9 {
				t.Fatalf("branch %d sample %d: ratio %g, want %g", i, j, xs[j]/base[j], want)
			}
		}
	}
}
