// Package engine executes a Triana task graph on the local resource: it
// is the "Triana engine" of the paper's two-layer architecture (§3.1),
// shared by the GUI-less controller and by every service daemon. One
// goroutine runs per task; connections are Go channels; a run drives the
// source units for a fixed number of iterations and drains the graph.
//
// Groups are inlined before execution when run locally. When a service
// executes a distributed group body, the graph's ExternalIn/ExternalOut
// endpoints are wired to caller-supplied channels, which the jxtaserve
// pipe layer connects to the remote peer.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"consumergrid/internal/metrics"
	"consumergrid/internal/sandbox"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/trace"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
)

// Live observability series, registered eagerly so /metrics lists them
// before the first run. The per-unit exec histogram additionally gets a
// labelled series per unit name (a fixed, small vocabulary).
var (
	execSeconds  = metrics.Default().Histogram("engine_unit_exec_seconds")
	cowClones    = metrics.Default().Counter("engine_cow_clones_total")
	fanoutShared = metrics.Default().Counter("engine_fanout_shared_total")
)

// Options configures a run.
type Options struct {
	// Iterations is how many times each source unit fires. Non-source
	// units run until their inputs close. Must be >= 1.
	Iterations int
	// Sandbox applied to every unit; nil means a deny-all sandbox.
	Sandbox *sandbox.Sandbox
	// Seed makes the run deterministic: each task's random source is
	// derived from Seed and the task name.
	Seed int64
	// BufferSize is the per-connection channel depth (default 4). A depth
	// of >= 1 lets a pipeline stream rather than lock-step.
	BufferSize int
	// Logf receives unit diagnostics; may be nil.
	Logf func(format string, args ...any)
	// ExternalIn supplies data for the graph's ExternalIn endpoints when
	// executing a distributed group body: index i feeds external input
	// node i. The engine reads one datum per iteration of the consuming
	// task and finishes when the channel closes.
	ExternalIn map[int]<-chan types.Data
	// ExternalOut receives data leaving the graph's ExternalOut
	// endpoints. The engine closes each channel when its producer
	// finishes.
	ExternalOut map[int]chan<- types.Data
	// RestoreState re-primes Checkpointable units before the run, keyed
	// by task name: the migration path of §3.6.2.
	RestoreState map[string][]byte
	// Trace, when set, records one span per task (named "unit:<task>")
	// under TraceID/TraceParent — how a despatched fragment's per-unit
	// work appears in the controller's end-to-end trace. Nil disables
	// span recording.
	Trace *trace.Recorder
	// TraceID and TraceParent place this run in a distributed trace;
	// both empty with a non-nil Trace starts a fresh trace.
	TraceID     string
	TraceParent string
}

// Result reports a completed run.
type Result struct {
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Processed counts Process invocations per task name.
	Processed map[string]int
	// State holds the post-run checkpoints of every Checkpointable unit,
	// keyed by task name.
	State map[string][]byte

	instances map[string]units.Unit
}

// Unit returns the unit instance that executed the named task, letting
// callers read sink state (Grapher.Last, Animator.Frames) after a run.
func (r *Result) Unit(taskName string) units.Unit { return r.instances[taskName] }

// connKey identifies one input endpoint.
type connKey struct {
	task string
	node int
}

// Run executes the graph and blocks until every task finishes or the
// context is cancelled. The graph is cloned and groups are inlined, so
// the caller's graph is never modified.
func Run(ctx context.Context, g *taskgraph.Graph, opts Options) (*Result, error) {
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("engine: Iterations must be >= 1")
	}
	if opts.BufferSize <= 0 {
		opts.BufferSize = 4
	}
	if opts.Sandbox == nil {
		opts.Sandbox = sandbox.New(sandbox.Deny())
	}

	work := g.Clone()
	for {
		groups := work.GroupNames()
		if len(groups) == 0 {
			break
		}
		for _, name := range groups {
			if err := work.Inline(name); err != nil {
				return nil, fmt.Errorf("engine: inlining %s: %w", name, err)
			}
		}
	}
	if err := work.Validate(units.Resolver()); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if work.HasCycle() {
		return nil, fmt.Errorf("engine: graph %q has a data-flow cycle", work.Name)
	}

	// Instantiate units.
	instances := make(map[string]units.Unit, len(work.Tasks))
	for _, t := range work.Tasks {
		u, err := units.New(t.Unit, units.Params(t.Params))
		if err != nil {
			return nil, fmt.Errorf("engine: task %s: %w", t.Name, err)
		}
		if blob, ok := opts.RestoreState[t.Name]; ok {
			cp, isCp := u.(units.Checkpointable)
			if !isCp {
				return nil, fmt.Errorf("engine: task %s has restore state but unit %s is not checkpointable",
					t.Name, t.Unit)
			}
			if err := cp.Restore(blob); err != nil {
				return nil, fmt.Errorf("engine: restoring %s: %w", t.Name, err)
			}
		}
		instances[t.Name] = u
	}

	// Wire channels. Every data connection gets one channel owned by its
	// producer side; input endpoints map 1:1 to a channel (validated).
	// Internal fan-out edges and external output writers share one
	// delivery list per (task, node): the send path treats them
	// identically and closing the write side closes both kinds.
	inChans := make(map[connKey]chan types.Data)
	outs := make(map[string]map[int][]chan<- types.Data) // task -> out node -> targets
	for _, t := range work.Tasks {
		outs[t.Name] = make(map[int][]chan<- types.Data)
	}
	for _, c := range work.Connections {
		if c.Control {
			continue // control traffic is a policy-layer concern
		}
		ch := make(chan types.Data, opts.BufferSize)
		inChans[connKey{c.To.Task, c.To.Node}] = ch
		outs[c.From.Task][c.From.Node] = append(outs[c.From.Task][c.From.Node], ch)
	}

	// External boundary wiring for group-body execution.
	extReaders := make(map[connKey]<-chan types.Data)
	for i, ch := range opts.ExternalIn {
		if i < 0 || i >= len(work.ExternalIn) {
			return nil, fmt.Errorf("engine: external input %d out of range (%d declared)",
				i, len(work.ExternalIn))
		}
		e := work.ExternalIn[i]
		key := connKey{e.Task, e.Node}
		if _, taken := inChans[key]; taken {
			return nil, fmt.Errorf("engine: external input %d collides with internal connection at %s", i, e)
		}
		extReaders[key] = ch
	}
	for i, ch := range opts.ExternalOut {
		if i < 0 || i >= len(work.ExternalOut) {
			return nil, fmt.Errorf("engine: external output %d out of range (%d declared)",
				i, len(work.ExternalOut))
		}
		e := work.ExternalOut[i]
		outs[e.Task][e.Node] = append(outs[e.Task][e.Node], ch)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	processed := make(map[string]int, len(work.Tasks))
	var procMu sync.Mutex

	for _, t := range work.Tasks {
		t := t
		u := instances[t.Name]

		// Ordered input channels for this task.
		type inputSrc struct {
			node int
			ch   <-chan types.Data
		}
		var inputs []inputSrc
		for node := 0; node < t.In; node++ {
			key := connKey{t.Name, node}
			if ch, ok := inChans[key]; ok {
				inputs = append(inputs, inputSrc{node, ch})
			} else if ch, ok := extReaders[key]; ok {
				inputs = append(inputs, inputSrc{node, ch})
			}
			// Unconnected input nodes are legal: the unit simply receives
			// fewer data (units check arity against *connected* inputs via
			// the graph shape, so we pass exactly the connected ones).
		}
		sort.Slice(inputs, func(i, j int) bool { return inputs[i].node < inputs[j].node })

		wg.Add(1)
		go func() {
			defer wg.Done()
			// Close everything this task produces when it finishes.
			defer func() {
				for _, targets := range outs[t.Name] {
					for _, ch := range targets {
						close(ch)
					}
				}
			}()

			// One span covers the task's whole lifetime in this run; the
			// per-iteration exec times go to the histogram series instead
			// (a span per iteration would swamp the recorder).
			span := opts.Trace.Start(opts.TraceID, opts.TraceParent, "unit:"+t.Name, "")
			span.SetAttr("unit", t.Unit)
			defer func() {
				procMu.Lock()
				n := processed[t.Name]
				procMu.Unlock()
				span.SetAttr("processed", fmt.Sprintf("%d", n))
				span.End()
			}()
			unitExec := metrics.Default().Histogram(
				metrics.Series("engine_unit_exec_seconds", "unit", t.Unit))

			uctx := &units.Context{
				Ctx:      runCtx,
				Sandbox:  opts.Sandbox,
				Rand:     rand.New(rand.NewSource(taskSeed(opts.Seed, t.Name))),
				TaskName: t.Name,
				Logf:     opts.Logf,
			}

			// send delivers one datum to every edge of an output node.
			// Sealed data is shared across the whole fan-out (consumers
			// may only read it). Mutable data must never alias two
			// owners: every extra edge gets a deep clone taken while
			// the producer still exclusively holds d, and the original
			// is relinquished to the LAST edge only — a consumer may
			// start mutating the instant it receives a value, so
			// cloning d after any edge has it would race.
			send := func(node int, d types.Data) bool {
				edges := outs[t.Name][node]
				share := d.Immutable()
				if share && len(edges) > 1 {
					fanoutShared.Add(int64(len(edges) - 1))
				}
				for i, ch := range edges {
					v := d
					if !share && i < len(edges)-1 {
						v = d.Clone()
						cowClones.Inc()
					}
					select {
					case ch <- v:
					case <-runCtx.Done():
						return false
					}
				}
				return true
			}
			isSource := len(inputs) == 0

			for iter := 0; ; iter++ {
				if len(inputs) == 0 && iter >= opts.Iterations {
					return // source exhausted its iteration budget
				}
				// Gather one datum per connected input.
				in := make([]types.Data, len(inputs))
				for i, src := range inputs {
					select {
					case d, ok := <-src.ch:
						if !ok {
							return // upstream finished; we are done too
						}
						in[i] = d
					case <-runCtx.Done():
						return
					}
				}
				uctx.Iteration = iter
				procStart := time.Now()
				out, err := u.Process(uctx, in)
				procElapsed := time.Since(procStart)
				execSeconds.Observe(procElapsed.Seconds())
				unitExec.Observe(procElapsed.Seconds())
				// Charge the unit's wall time against the host's CPU
				// quota: a donated machine bounds what strangers may
				// burn, and a workflow that exhausts the budget is
				// terminated rather than throttled.
				if qErr := opts.Sandbox.ChargeCPU(procElapsed); qErr != nil && err == nil {
					err = qErr
				}
				procMu.Lock()
				processed[t.Name]++
				procMu.Unlock()
				if err != nil {
					fail(fmt.Errorf("engine: task %s (%s) iteration %d: %w", t.Name, t.Unit, iter, err))
					return
				}
				if len(out) > t.Out {
					fail(fmt.Errorf("engine: task %s emitted %d outputs, declares %d",
						t.Name, len(out), t.Out))
					return
				}
				for node, d := range out {
					if d == nil {
						continue // dropped datum (Sampler semantics)
					}
					if isSource {
						// Source outputs are sealed by default: snapshots
						// leaving a generator are read-only, so wide
						// fan-out graphs share one buffer instead of
						// cloning per edge. Downstream mutators take a
						// private copy via types.Mutable.
						types.Seal(d)
					}
					if !send(node, d) {
						return
					}
				}
			}
		}()
	}

	start := time.Now()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		cancel()
		<-done
		if firstErr == nil {
			firstErr = ctx.Err()
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{
		Elapsed:   time.Since(start),
		Processed: processed,
		State:     make(map[string][]byte),
		instances: instances,
	}
	for name, u := range instances {
		if cp, ok := u.(units.Checkpointable); ok {
			blob, err := cp.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("engine: checkpointing %s: %w", name, err)
			}
			res.State[name] = blob
		}
	}
	return res, nil
}

// taskSeed derives a per-task seed so distributed and local runs of the
// same graph produce identical random streams per task.
func taskSeed(seed int64, taskName string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, taskName)
	return int64(h.Sum64())
}
