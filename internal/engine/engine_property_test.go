package engine

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/unitio"
)

// TestQuickLinearPipelineConservesCounts: for a random-length linear
// pipeline of pass-through units driven N iterations, every task
// processes exactly N data — the engine drops nothing and duplicates
// nothing.
func TestQuickLinearPipelineConservesCounts(t *testing.T) {
	f := func(lenRaw, itersRaw uint8) bool {
		depth := int(lenRaw%6) + 1
		iters := int(itersRaw%7) + 1
		g := taskgraph.New("pipe")
		src, _ := units.NewTask("Src", "triana.signal.Wave")
		src.SetParam("samples", "8")
		g.MustAdd(src)
		prev := "Src"
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("S%d", i)
			scale, _ := units.NewTask(name, "triana.mathx.Scale")
			g.MustAdd(scale)
			g.ConnectNamed(prev, 0, name, 0)
			prev = name
		}
		sink, _ := units.NewTask("Sink", "triana.flow.Null")
		g.MustAdd(sink)
		g.ConnectNamed(prev, 0, "Sink", 0)

		res, err := Run(context.Background(), g, Options{Iterations: iters, Seed: 1})
		if err != nil {
			return false
		}
		for _, task := range g.TaskNames() {
			if res.Processed[task] != iters {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickFanTreeConservesCounts: a source fanned out to K parallel
// branches (via chained Duplicates) re-processed everywhere exactly N
// times, regardless of branch count.
func TestQuickFanTreeConservesCounts(t *testing.T) {
	f := func(branchRaw, itersRaw uint8) bool {
		branches := int(branchRaw%3) + 2 // 2..4 sinks
		iters := int(itersRaw%5) + 1
		g := taskgraph.New("fan")
		src, _ := units.NewTask("Src", "triana.signal.Wave")
		src.SetParam("samples", "4")
		g.MustAdd(src)
		// Chain of Duplicates: each adds one extra consumer branch.
		prev, prevNode := "Src", 0
		for i := 0; i < branches-1; i++ {
			dup := fmt.Sprintf("D%d", i)
			d, _ := units.NewTask(dup, "triana.flow.Duplicate")
			g.MustAdd(d)
			g.ConnectNamed(prev, prevNode, dup, 0)
			sink := fmt.Sprintf("N%d", i)
			n, _ := units.NewTask(sink, "triana.flow.Null")
			g.MustAdd(n)
			g.ConnectNamed(dup, 0, sink, 0)
			prev, prevNode = dup, 1
		}
		last, _ := units.NewTask("NL", "triana.flow.Null")
		g.MustAdd(last)
		g.ConnectNamed(prev, prevNode, "NL", 0)

		res, err := Run(context.Background(), g, Options{Iterations: iters, Seed: 2})
		if err != nil {
			return false
		}
		for _, task := range g.TaskNames() {
			if res.Processed[task] != iters {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupingInvariance: grouping any contiguous window of a
// pipeline must not change the computation — the engine inlines groups,
// so results and counts match the ungrouped run exactly.
func TestQuickGroupingInvariance(t *testing.T) {
	f := func(loRaw, hiRaw uint8) bool {
		const depth = 4
		lo := int(loRaw) % depth
		hi := int(hiRaw) % depth
		if lo > hi {
			lo, hi = hi, lo
		}
		build := func() *taskgraph.Graph {
			g := taskgraph.New("inv")
			src, _ := units.NewTask("Src", "triana.signal.Wave")
			src.SetParam("samples", "16")
			src.SetParam("frequency", "125")
			g.MustAdd(src)
			prev := "Src"
			for i := 0; i < depth; i++ {
				name := fmt.Sprintf("S%d", i)
				sc, _ := units.NewTask(name, "triana.mathx.Scale")
				sc.SetParam("gain", fmt.Sprintf("%d", i+2))
				g.MustAdd(sc)
				g.ConnectNamed(prev, 0, name, 0)
				prev = name
			}
			gr, _ := units.NewTask("Graph", "triana.unitio.Grapher")
			g.MustAdd(gr)
			g.ConnectNamed(prev, 0, "Graph", 0)
			return g
		}
		plain := build()
		grouped := build()
		var members []string
		for i := lo; i <= hi; i++ {
			members = append(members, fmt.Sprintf("S%d", i))
		}
		if _, err := grouped.GroupTasks("Window", members); err != nil {
			return false
		}
		resA, err := Run(context.Background(), plain, Options{Iterations: 2, Seed: 3})
		if err != nil {
			return false
		}
		resB, err := Run(context.Background(), grouped, Options{Iterations: 2, Seed: 3})
		if err != nil {
			return false
		}
		a := lastValues(resA)
		bv := lastValues(resB)
		if len(a) != len(bv) || len(a) == 0 {
			return false
		}
		for i := range a {
			if a[i] != bv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// lastValues extracts the Grapher sink's retained numeric payload.
func lastValues(res *Result) []float64 {
	gr, ok := res.Unit("Graph").(*unitio.Grapher)
	if !ok || gr.Last() == nil {
		return nil
	}
	xs, _ := types.Floats(gr.Last())
	return xs
}
