package engine

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"consumergrid/internal/sandbox"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/signal"
	"consumergrid/internal/units/unitio"

	_ "consumergrid/internal/units/astro"
	_ "consumergrid/internal/units/flow"
	_ "consumergrid/internal/units/imaging"
	_ "consumergrid/internal/units/mathx"
	_ "consumergrid/internal/units/textproc"
)

// figure1Graph builds the paper's Figure 1 workflow with the group unit
// of Code Segment 1: Wave -> [Gaussian -> PowerSpec] -> AccumStat -> Grapher.
func figure1Graph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.New("fig1")
	add := func(name, unit string, params map[string]string) {
		task, err := units.NewTask(name, unit)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range params {
			task.SetParam(k, v)
		}
		g.MustAdd(task)
	}
	add("Wave", signal.NameWave, map[string]string{
		"frequency": "1000", "samplingRate": "8000", "samples": "1024"})
	add("Gaussian", signal.NameGaussianNoise, map[string]string{"sigma": "5"})
	add("PowerSpec", signal.NamePowerSpectrum, nil)
	add("AccumStat", signal.NameAccumStat, nil)
	add("Grapher", unitio.NameGrapher, nil)
	g.ConnectNamed("Wave", 0, "Gaussian", 0)
	g.ConnectNamed("Gaussian", 0, "PowerSpec", 0)
	g.ConnectNamed("PowerSpec", 0, "AccumStat", 0)
	g.ConnectNamed("AccumStat", 0, "Grapher", 0)
	if _, err := g.GroupTasks("GroupTask", []string{"Gaussian", "PowerSpec"}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunFigure1RecoversSignal(t *testing.T) {
	g := figure1Graph(t)
	res, err := Run(context.Background(), g, Options{Iterations: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []string{"Wave", "Gaussian", "PowerSpec", "AccumStat", "Grapher"} {
		if res.Processed[task] != 20 {
			t.Errorf("%s processed %d, want 20", task, res.Processed[task])
		}
	}
	grapher := res.Unit("Grapher").(*unitio.Grapher)
	spec, ok := grapher.Last().(*types.Spectrum)
	if !ok {
		t.Fatalf("Grapher holds %T", grapher.Last())
	}
	// The averaged spectrum's peak is at 1 kHz despite sigma=5 noise.
	if got := spec.PeakFrequency(); math.Abs(got-1000) > 2*spec.Resolution {
		t.Errorf("peak at %g Hz, want 1000", got)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	// AccumStat checkpoint present in final state.
	if _, ok := res.State["AccumStat"]; !ok {
		t.Error("AccumStat state missing")
	}
}

func TestRunDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		g := figure1Graph(t)
		res, err := Run(context.Background(), g, Options{Iterations: 3, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res.Unit("Grapher").(*unitio.Grapher).Last().(*types.Spectrum).Amplitudes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different results")
		}
	}
	// A different seed must differ (noise path).
	g := figure1Graph(t)
	res, _ := Run(context.Background(), g, Options{Iterations: 3, Seed: 43})
	c := res.Unit("Grapher").(*unitio.Grapher).Last().(*types.Spectrum).Amplitudes
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestCheckpointMigrationEquivalence(t *testing.T) {
	// Run 20 iterations in one go vs. 10 + checkpoint + restore + 10 on a
	// "different peer" (fresh engine): the final averaged spectra must be
	// identical. This is the §3.6.2 migration property.
	full := figure1Graph(t)
	resFull, err := Run(context.Background(), full, Options{Iterations: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := resFull.Unit("Grapher").(*unitio.Grapher).Last().(*types.Spectrum)

	// NOTE: Wave's random stream restarts per run, but Wave is
	// deterministic; Gaussian noise depends on its task rand which is
	// re-seeded identically per run, so a naive re-run would repeat the
	// same noise. To make the halves genuinely continue, seed differs per
	// half; the averaging check is then statistical: both halves carry
	// the signal, and the restored accumulator keeps the first half's sum.
	first := figure1Graph(t)
	res1, err := Run(context.Background(), first, Options{Iterations: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	second := figure1Graph(t)
	res2, err := Run(context.Background(), second, Options{
		Iterations: 10, Seed: 7777, RestoreState: res1.State})
	if err != nil {
		t.Fatal(err)
	}
	got := res2.Unit("Grapher").(*unitio.Grapher).Last().(*types.Spectrum)
	if len(got.Amplitudes) != len(want.Amplitudes) {
		t.Fatal("spectrum shape changed across migration")
	}
	// The accumulator must have seen all 20 spectra.
	accum := res2.Unit("AccumStat").(interface{ Count() int })
	if accum.Count() != 20 {
		t.Fatalf("restored accumulator count = %d, want 20", accum.Count())
	}
	// And the signal peak must match the uninterrupted run's peak bin.
	if got.PeakFrequency() != want.PeakFrequency() {
		t.Errorf("peak moved across migration: %g vs %g",
			got.PeakFrequency(), want.PeakFrequency())
	}
}

func TestRestoreStateOnNonCheckpointableFails(t *testing.T) {
	g := taskgraph.New("g")
	task, _ := units.NewTask("PS", signal.NamePowerSpectrum)
	g.MustAdd(task)
	src, _ := units.NewTask("W", signal.NameWave)
	g.MustAdd(src)
	g.ConnectNamed("W", 0, "PS", 0)
	sink, _ := units.NewTask("N", "triana.flow.Null")
	g.MustAdd(sink)
	g.ConnectNamed("PS", 0, "N", 0)
	_, err := Run(context.Background(), g, Options{
		Iterations: 1, RestoreState: map[string][]byte{"PS": {1}}})
	if err == nil || !strings.Contains(err.Error(), "not checkpointable") {
		t.Fatalf("err = %v", err)
	}
}

func TestExternalPortsRunGroupBody(t *testing.T) {
	// Execute a group body the way a remote service does: data arrives on
	// an external input channel and leaves on an external output channel.
	g := taskgraph.New("body")
	gn, _ := units.NewTask("Gaussian", signal.NameGaussianNoise)
	gn.SetParam("sigma", "0") // degenerate noise for exact comparison
	g.MustAdd(gn)
	ps, _ := units.NewTask("PowerSpec", signal.NamePowerSpectrum)
	g.MustAdd(ps)
	g.ConnectNamed("Gaussian", 0, "PowerSpec", 0)
	g.ExternalIn = []taskgraph.Endpoint{{Task: "Gaussian", Node: 0}}
	g.ExternalOut = []taskgraph.Endpoint{{Task: "PowerSpec", Node: 0}}

	in := make(chan types.Data, 3)
	out := make(chan types.Data, 3)
	for i := 0; i < 3; i++ {
		in <- types.NewSampleSet(8000, make([]float64, 64))
	}
	close(in)

	res, err := Run(context.Background(), g, Options{
		Iterations:  1, // ignored: externally fed tasks run until close
		ExternalIn:  map[int]<-chan types.Data{0: in},
		ExternalOut: map[int]chan<- types.Data{0: out},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for d := range out {
		if _, ok := d.(*types.Spectrum); !ok {
			t.Errorf("output %T", d)
		}
		got++
	}
	if got != 3 {
		t.Errorf("received %d outputs, want 3", got)
	}
	if res.Processed["Gaussian"] != 3 || res.Processed["PowerSpec"] != 3 {
		t.Errorf("processed = %v", res.Processed)
	}
}

func TestExternalPortValidation(t *testing.T) {
	g := taskgraph.New("body")
	gn, _ := units.NewTask("G", signal.NameGaussianNoise)
	g.MustAdd(gn)
	n, _ := units.NewTask("N", "triana.flow.Null")
	g.MustAdd(n)
	g.ConnectNamed("G", 0, "N", 0)
	g.ExternalIn = []taskgraph.Endpoint{{Task: "G", Node: 0}}
	ch := make(chan types.Data)
	close(ch)
	if _, err := Run(context.Background(), g, Options{
		Iterations: 1, ExternalIn: map[int]<-chan types.Data{5: ch}}); err == nil {
		t.Error("out-of-range external input accepted")
	}
	if _, err := Run(context.Background(), g, Options{
		Iterations: 1, ExternalOut: map[int]chan<- types.Data{0: make(chan types.Data)}}); err == nil {
		t.Error("undeclared external output accepted")
	}
}

func TestFanOutDoesNotAlias(t *testing.T) {
	// Wave output feeds two scalers with different gains; if the engine
	// aliased the fanned-out data, the mutating consumers would corrupt
	// each other.
	g := taskgraph.New("fan")
	w, _ := units.NewTask("W", signal.NameWave)
	w.SetParam("samples", "16")
	g.MustAdd(w)
	for _, spec := range []struct{ name, gain string }{{"S1", "2"}, {"S2", "3"}} {
		s, _ := units.NewTask(spec.name, "triana.mathx.Scale")
		s.SetParam("gain", spec.gain)
		g.MustAdd(s)
		gr, _ := units.NewTask("G"+spec.name, unitio.NameGrapher)
		g.MustAdd(gr)
		g.ConnectNamed(spec.name, 0, "G"+spec.name, 0)
	}
	g.ConnectNamed("W", 0, "S1", 0)
	g.ConnectNamed("W", 0, "S2", 0)
	res, err := Run(context.Background(), g, Options{Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := types.Floats(res.Unit("GS1").(*unitio.Grapher).Last())
	b, _ := types.Floats(res.Unit("GS2").(*unitio.Grapher).Last())
	for i := range a {
		if b[i] != 0 && math.Abs(a[i]/b[i]-2.0/3.0) > 1e-9 {
			t.Fatalf("fan-out corrupted: a=%g b=%g", a[i], b[i])
		}
	}
}

func TestErrorPropagatesAndStopsRun(t *testing.T) {
	// InjectChirp with an offset beyond the data errors at iteration 0.
	g := taskgraph.New("err")
	w, _ := units.NewTask("W", signal.NameWave)
	w.SetParam("samples", "10")
	g.MustAdd(w)
	inj, _ := units.NewTask("I", signal.NameInjectChirp)
	inj.SetParam("offset", "100")
	inj.SetParam("length", "100")
	g.MustAdd(inj)
	n, _ := units.NewTask("N", "triana.flow.Null")
	g.MustAdd(n)
	g.ConnectNamed("W", 0, "I", 0)
	g.ConnectNamed("I", 0, "N", 0)
	_, err := Run(context.Background(), g, Options{Iterations: 100})
	if err == nil || !strings.Contains(err.Error(), "task I") {
		t.Fatalf("err = %v", err)
	}
}

func TestCancellation(t *testing.T) {
	g := figure1Graph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, g, Options{Iterations: 1000000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestCancellationMidRun(t *testing.T) {
	g := figure1Graph(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, g, Options{Iterations: 10000000})
	if err == nil {
		t.Fatal("huge run completed under 30ms timeout?")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the run promptly")
	}
}

func TestRunRejectsBadGraphs(t *testing.T) {
	// Unknown unit.
	g := taskgraph.New("bad")
	g.AddUnit("X", "no.such.Unit", 0, 1)
	if _, err := Run(context.Background(), g, Options{Iterations: 1}); err == nil {
		t.Error("unknown unit accepted")
	}
	// Cycle.
	g2 := taskgraph.New("cycle")
	a, _ := units.NewTask("A", "triana.mathx.Scale")
	b, _ := units.NewTask("B", "triana.mathx.Scale")
	g2.MustAdd(a)
	g2.MustAdd(b)
	g2.ConnectNamed("A", 0, "B", 0)
	g2.ConnectNamed("B", 0, "A", 0)
	if _, err := Run(context.Background(), g2, Options{Iterations: 1}); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle err = %v", err)
	}
	// Zero iterations.
	if _, err := Run(context.Background(), figure1Graph(t), Options{}); err == nil {
		t.Error("zero iterations accepted")
	}
	// Bad unit params.
	g3 := taskgraph.New("badparam")
	w, _ := units.NewTask("W", signal.NameWave)
	w.SetParam("samplingRate", "-1")
	g3.MustAdd(w)
	n, _ := units.NewTask("N", "triana.flow.Null")
	g3.MustAdd(n)
	g3.ConnectNamed("W", 0, "N", 0)
	if _, err := Run(context.Background(), g3, Options{Iterations: 1}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestSamplerDropSemantics(t *testing.T) {
	// Wave -> Sampler(every 3) -> Counter -> Null: the counter must see
	// only every third datum.
	g := taskgraph.New("drop")
	w, _ := units.NewTask("W", signal.NameWave)
	w.SetParam("samples", "8")
	g.MustAdd(w)
	s, _ := units.NewTask("S", "triana.flow.Sampler")
	s.SetParam("every", "3")
	g.MustAdd(s)
	c, _ := units.NewTask("C", "triana.flow.Counter")
	g.MustAdd(c)
	n1, _ := units.NewTask("N1", "triana.flow.Null")
	g.MustAdd(n1)
	n2, _ := units.NewTask("N2", "triana.flow.Null")
	g.MustAdd(n2)
	g.ConnectNamed("W", 0, "S", 0)
	g.ConnectNamed("S", 0, "C", 0)
	g.ConnectNamed("C", 0, "N1", 0)
	g.ConnectNamed("C", 1, "N2", 0)
	res, err := Run(context.Background(), g, Options{Iterations: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed["C"] != 3 {
		t.Errorf("counter processed %d, want 3", res.Processed["C"])
	}
}

func TestDeepGroupNestingInlines(t *testing.T) {
	g := figure1Graph(t)
	// Wrap the existing group inside another group.
	if _, err := g.GroupTasks("Outer", []string{"GroupTask", "AccumStat"}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), g, Options{Iterations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed["AccumStat"] != 2 {
		t.Errorf("nested group run processed %v", res.Processed)
	}
}

func TestOriginalGraphUnmodified(t *testing.T) {
	g := figure1Graph(t)
	before := len(g.Tasks)
	if _, err := Run(context.Background(), g, Options{Iterations: 1}); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != before || g.Find("GroupTask") == nil {
		t.Error("Run modified the caller's graph")
	}
}

// TestCPUQuotaTerminatesRun: a sandbox with a tiny CPU budget stops the
// workflow once hosted units have burned it.
func TestCPUQuotaTerminatesRun(t *testing.T) {
	g := figure1Graph(t)
	sb := sandbox.New(sandbox.Policy{MaxCPU: time.Microsecond})
	_, err := Run(context.Background(), g, Options{
		Iterations: 1000, Seed: 1, Sandbox: sb})
	if err == nil || !errors.Is(err, sandbox.ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	// A generous budget runs to completion and accounts usage.
	sb2 := sandbox.New(sandbox.Policy{MaxCPU: time.Hour})
	if _, err := Run(context.Background(), figure1Graph(t), Options{
		Iterations: 3, Seed: 1, Sandbox: sb2}); err != nil {
		t.Fatal(err)
	}
	if sb2.CPUUsed() <= 0 {
		t.Error("no CPU charged")
	}
}
