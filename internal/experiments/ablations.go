package experiments

import (
	"context"
	"fmt"
	"time"

	"consumergrid/internal/churn"
	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/metrics"
)

// A1 ablates the §3.6.2 checkpointing proposal: the same chunk farm runs
// over churny peers with and without checkpoint-driven migration, and the
// table reports completed chunks, wasted (redone) work and makespan per
// availability level. Shape: checkpointing reduces wasted work and never
// completes fewer chunks.
func A1(cfg Config) (*Result, error) {
	cfg.defaults()
	tab := metrics.NewTable("A1: checkpointing ablation under churn",
		"availability", "checkpoint", "completed", "wastedHours", "makespanHours", "migrations")

	const chunks = 48
	const chunkHours = 2.0
	tasks := make([]float64, chunks)
	for i := range tasks {
		tasks[i] = chunkHours
	}
	const peersN = 16
	horizon := 24.0 // a day

	shapeOK := true
	for _, av := range []struct {
		label            string
		meanUp, meanDown float64
	}{
		{"0.9", 9, 1}, {"0.7", 7, 3}, {"0.5", 5, 5},
	} {
		peers := make([]*churn.Trace, peersN)
		for i := range peers {
			peers[i] = churn.GenTrace(cfg.Seed+int64(i), horizon, av.meanUp, av.meanDown)
		}
		plain, err := churn.SimulateFarm(tasks, peers, churn.FarmOptions{})
		if err != nil {
			return nil, err
		}
		ckpt, err := churn.SimulateFarm(tasks, peers, churn.FarmOptions{
			Checkpoint: true, CheckpointInterval: 0.25, // checkpoint every 15 min
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(av.label, false, plain.Completed, round2(plain.Wasted),
			round2(plain.Makespan), plain.Migrations)
		tab.AddRow(av.label, true, ckpt.Completed, round2(ckpt.Wasted),
			round2(ckpt.Makespan), ckpt.Migrations)
		if ckpt.Completed < plain.Completed {
			shapeOK = false
		}
		if plain.Interrupted > 0 && ckpt.Wasted > plain.Wasted {
			shapeOK = false
		}
	}
	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   shapeOK,
		ShapeNote: "checkpointing cuts redone work and never completes fewer chunks at any availability level",
	}, nil
}

// A2 ablates on-demand code download against pre-staged modules: the
// same application runs on a strict-mobile-code grid twice. The first
// (cold) run pays the bundle transfers; the second (warm) run's caches
// make it free. Pre-staging is emulated by the warm state — the paper's
// alternative of shipping everything ahead of time.
func A2(cfg Config) (*Result, error) {
	cfg.defaults()
	grid, err := core.NewGrid(core.GridOptions{Peers: 2, RequireCode: true})
	if err != nil {
		return nil, err
	}
	defer grid.Close()

	tab := metrics.NewTable("A2: on-demand vs pre-staged module code",
		"run", "bundleFetches", "bundleBytes", "wall")

	run := func(label string, seed int64) (int64, error) {
		var before, beforeBytes int64
		for _, w := range grid.Workers {
			f, b := w.Fetcher().Fetches()
			before += f
			beforeBytes += b
		}
		start := time.Now()
		_, err := grid.Run(context.Background(),
			core.Figure1Workflow(core.Figure1Options{Samples: 1024}),
			controller.RunOptions{Iterations: 8 * cfg.Scale, Seed: seed})
		if err != nil {
			return 0, err
		}
		wall := time.Since(start)
		var after, afterBytes int64
		for _, w := range grid.Workers {
			f, b := w.Fetcher().Fetches()
			after += f
			afterBytes += b
		}
		tab.AddRow(label, after-before, afterBytes-beforeBytes, wall)
		return after - before, nil
	}

	coldFetches, err := run("cold (on-demand)", cfg.Seed)
	if err != nil {
		return nil, err
	}
	warmFetches, err := run("warm (pre-staged)", cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   coldFetches > 0 && warmFetches == 0,
		ShapeNote: "cold runs fetch each group module once; warm caches eliminate all transfers",
	}, nil
}

// A3 is the live companion to A1/T1: a real grid whose donors flip their
// idle gates according to availability traces (the §3.7 screensaver
// model) while the controller repeatedly submits the Figure 1 farm. The
// parallel policy's failover despatches each round onto whichever donors
// are idle; rounds complete as long as at least one donor is available.
func A3(cfg Config) (*Result, error) {
	cfg.defaults()
	grid, err := core.NewGrid(core.GridOptions{Peers: 4})
	if err != nil {
		return nil, err
	}
	defer grid.Close()

	const rounds = 20
	// Per-round availability from deterministic traces at ~60% uptime:
	// round r uses trace time r (unit spacing).
	traces := make([]*churn.Trace, len(grid.Workers))
	for i := range traces {
		traces[i] = churn.GenTrace(cfg.Seed+int64(i)*7, rounds, 6, 4)
	}

	tab := metrics.NewTable("A3: live churn with failover (4 donors, ~60% availability)",
		"round", "idleDonors", "completed", "itemsOnSurvivors")
	completed, failed := 0, 0
	totalIdle, roundsWithIdle := 0, 0
	unexpectedFail, unexpectedPass := 0, 0
	for r := 0; r < rounds; r++ {
		idle := 0
		for i, w := range grid.Workers {
			up := traces[i].UpAt(float64(r) + 0.5)
			w.SetAvailable(up)
			if up {
				idle++
			}
		}
		totalIdle += idle
		if idle > 0 {
			roundsWithIdle++
		}
		rep, err := grid.Run(context.Background(),
			core.Figure1Workflow(core.Figure1Options{Samples: 256}),
			controller.RunOptions{Iterations: 4, Seed: cfg.Seed + int64(r)})
		items := 0
		ok := err == nil
		if ok {
			completed++
			if idle == 0 {
				unexpectedPass++ // should be impossible: nobody to run on
			}
			for _, counts := range rep.Dist.Remote {
				items += counts["Gaussian"]
			}
		} else {
			failed++
			if idle > 0 {
				unexpectedFail++ // failover should have found the idle donor
			}
		}
		if r < 6 || !ok { // keep the table readable: first rounds + failures
			tab.AddRow(r, idle, ok, items)
		}
	}
	summary := metrics.NewTable("A3 summary",
		"rounds", "completed", "roundsWithIdleDonor", "allBusyRounds", "meanIdleDonors")
	summary.AddRow(rounds, completed, roundsWithIdle, rounds-roundsWithIdle,
		round2(float64(totalIdle)/rounds))

	// Shape: failover succeeds EXACTLY when at least one donor is idle —
	// every such round completes, and only all-busy rounds fail. This is
	// deterministic across seeds, unlike a completion-percentage bound.
	shapeOK := unexpectedFail == 0 && unexpectedPass == 0 && roundsWithIdle > 0
	return &Result{
		Tables:  []*metrics.Table{tab, summary},
		ShapeOK: shapeOK,
		ShapeNote: fmt.Sprintf("all %d rounds with an idle donor completed via failover; the %d all-busy rounds failed as expected",
			roundsWithIdle, rounds-roundsWithIdle),
	}, nil
}
