package experiments

import (
	"math"
	"math/rand"
	"strconv"
	"time"

	"consumergrid/internal/churn"
	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/dsp"
	"consumergrid/internal/metrics"
	"consumergrid/internal/types"
	"consumergrid/internal/units/dbase"
	"consumergrid/internal/units/unitio"
)

// E1 reproduces §3.6.1: the galaxy-formation animation farmed out with
// the parallel distribution policy. Two measurements: (a) a live
// distributed run validating the mechanism — frames actually execute on
// the enrolled peers and the Animator reassembles them in order despite
// out-of-order arrival ("Each distributed Triana service returns its
// processed data in order, allowing the frames to be animated"); and (b)
// a farm-speedup projection in virtual time from the measured SPH render
// cost, because this reproduction runs all peers inside one process on
// one machine — wall-clock speedup needs distinct CPUs, which the
// simulator models (a DESIGN.md ledger substitution; the live run
// demonstrates the distribution path is real).
func E1(cfg Config) (*Result, error) {
	cfg.defaults()
	shapeOK := true

	// (a) Live distributed run over 3 peers.
	frames := 12 * cfg.Scale
	live := metrics.NewTable("E1a: live frame farm over 3 peers",
		"frames", "peersRendering", "ordered", "wall")
	wf := core.GalaxyWorkflow(core.GalaxyOptions{
		Particles: 2000, Width: 96, Height: 96, Seed: cfg.Seed})
	rep, wall, err := runOnGrid(3, wf, controller.RunOptions{
		Iterations: frames, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	anim := rep.Result().Unit("Animator").(*unitio.Animator)
	ordered := anim.Complete(frames)
	rendering := 0
	for _, counts := range rep.Dist.Remote {
		if counts["Render"] > 0 {
			rendering++
		}
	}
	live.AddRow(frames, rendering, ordered, wall)
	if !ordered || rendering < 2 {
		shapeOK = false
	}

	// (b) Measure the real per-frame render cost, then project the farm
	// over k peers in virtual time.
	gu, err := unitsNew(astroGalaxyGen, map[string]string{"particles": "12000", "seed": "42"})
	if err != nil {
		return nil, err
	}
	gen := gu.(interface {
		SnapshotAt(int) *types.ParticleSet
	})
	cu, err := unitsNew(imagingColumnDensity, map[string]string{"width": "192", "height": "192"})
	if err != nil {
		return nil, err
	}
	renderer := cu.(interface {
		Render(*types.ParticleSet) *types.Image
	})
	ps := gen.SnapshotAt(3)
	var frameCost metrics.Timer
	for i := 0; i < 3; i++ {
		start := time.Now()
		renderer.Render(ps)
		frameCost.Observe(time.Since(start))
	}
	perFrame := frameCost.Mean().Seconds()

	proj := metrics.NewTable("E1b: farm speedup projection (measured frame cost, virtual time)",
		"peers", "frames", "availability", "makespanSec", "speedup")
	const projFrames = 64
	tasks := make([]float64, projFrames)
	for i := range tasks {
		tasks[i] = perFrame
	}
	horizon := perFrame * projFrames * 2
	var base float64
	for _, k := range []int{1, 2, 4, 8} {
		peers := make([]*churn.Trace, k)
		for i := range peers {
			peers[i] = churn.AlwaysUp(horizon)
		}
		res, err := churn.SimulateFarm(tasks, peers, churn.FarmOptions{})
		if err != nil {
			return nil, err
		}
		if k == 1 {
			base = res.Makespan
		}
		speedup := base / res.Makespan
		proj.AddRow(k, projFrames, "1.0", round2(res.Makespan), round2(speedup))
		if k == 8 && speedup < 6 {
			shapeOK = false
		}
	}
	// The consumer-grid variant: same farm at ~70% availability needs
	// more peers for the same turnaround.
	churnPeers := make([]*churn.Trace, 8)
	for i := range churnPeers {
		churnPeers[i] = churn.GenTrace(cfg.Seed+int64(i), horizon, 7*perFrame, 3*perFrame)
	}
	resChurn, err := churn.SimulateFarm(tasks, churnPeers, churn.FarmOptions{})
	if err != nil {
		return nil, err
	}
	proj.AddRow(8, projFrames, "~0.7", round2(resChurn.Makespan),
		round2(base/resChurn.Makespan))
	if resChurn.Makespan < base/8 {
		shapeOK = false
	}

	return &Result{
		Tables:    []*metrics.Table{live, proj},
		ShapeOK:   shapeOK,
		ShapeNote: "frames render on the enrolled peers and reassemble in order; projected farm speedup is near-linear, degraded by churn",
	}, nil
}

// E2 reproduces §3.6.2, in two parts. (a) The matched-filter kernel is
// measured at laptop scale and extrapolated with the paper's own numbers:
// 7.2 MB chunks (900 s x 2000 S/s x 4 B), banks of 5,000-10,000
// templates, the claim that one chunk takes ~5 h on a 2 GHz PC so "20
// PCs would need to be employed full-time to keep up with the data".
// (b) A live distributed run at laptop scale verifies the pipeline works
// end to end over the grid.
func E2(cfg Config) (*Result, error) {
	cfg.defaults()

	// (a) Kernel calibration: correlation cost per template per chunk.
	const paperChunk = 1_800_000 // samples: 900 s at 2000 S/s
	const paperRate = 2000.0
	chunk := 65536 * cfg.Scale
	tplLen := 2048
	bank := dsp.TemplateBank(4, tplLen, 40, 200, 400, paperRate)
	data := dsp.GaussianNoise(chunk, 1, rand.New(rand.NewSource(cfg.Seed)))
	var kernel metrics.Timer
	for _, tpl := range bank {
		start := time.Now()
		if _, err := dsp.CrossCorrelate(data, tpl); err != nil {
			return nil, err
		}
		kernel.Observe(time.Since(start))
	}
	perTpl := kernel.Mean()
	// FFT correlation is ~O(n log n); scale measured cost to paper-size
	// chunks.
	scale := float64(paperChunk) / float64(chunk) *
		logRatio(paperChunk, chunk)
	perTplPaper := time.Duration(float64(perTpl) * scale)

	calib := metrics.NewTable("E2a: matched-filter kernel calibration",
		"chunkSamples", "templateLen", "perTemplate", "perTemplate@1.8M(est)")
	calib.AddRow(chunk, tplLen, perTpl, perTplPaper)

	// Real-time requirement: sustain one 900 s chunk per 900 s of wall
	// time (latency may lag, per the paper). All quantities below are in
	// hours, matching the availability traces (mean uptime 7 h, mean
	// downtime 3 h - an evening-donor profile).
	sizing := metrics.NewTable("E2b: peers to keep up in real time (this hardware's kernel)",
		"templates", "chunkHours", "peers(avail=1.0)", "peers(avail=0.7)")
	shapeOK := true
	for _, templates := range []int{5000, 7500, 10000} {
		chunkCost := perTplPaper * time.Duration(templates)
		chunkHours := chunkCost.Hours()
		// Perfect peers: ceil(chunk cost / 15 min).
		perfect := int(ceilDiv(int64(chunkCost), int64(900*time.Second)))
		const chunks = 24
		var tasks, releases []float64
		for i := 0; i < chunks; i++ {
			tasks = append(tasks, chunkHours)
			releases = append(releases, 0.25*float64(i))
		}
		deadline := 0.25*chunks + 0.5 // half-hour lag allowance
		churny, _, err := churn.RequiredPeers(tasks, deadline, perfect*4+50,
			cfg.Seed, 7, 3, churn.FarmOptions{Releases: releases})
		if err != nil {
			return nil, err
		}
		sizing.AddRow(templates, round2(chunkHours), perfect, churny)
		if churny < perfect {
			shapeOK = false
		}
	}

	// (b) Live laptop-scale distributed search.
	live := metrics.NewTable("E2c: live distributed search (laptop scale)",
		"peers", "chunks", "templates", "wall", "injectionFound")
	wf := core.InspiralWorkflow(core.InspiralOptions{
		ChunkSamples: 16384, Templates: 9, TemplateLen: 1024,
		InjectOffset: 5000, InjectAmplitude: 3,
	})
	rep, wall, err := runOnGrid(3, wf, controller.RunOptions{
		Iterations: 3, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	tabData := rep.Result().Unit("Results").(*unitio.Grapher).Last()
	found := false
	if verdicts, ok := tabData.(*types.Table); ok {
		snrCol := verdicts.ColumnIndex("snr")
		lagCol := verdicts.ColumnIndex("peakLag")
		for _, row := range verdicts.Rows {
			snr, _ := strconv.ParseFloat(row[snrCol], 64)
			lag, _ := strconv.Atoi(row[lagCol])
			if snr > 5 && lag > 4990 && lag < 5010 {
				found = true
			}
		}
	}
	live.AddRow(3, 3, 9, wall, found)
	if !found {
		shapeOK = false
	}

	return &Result{
		Tables:    []*metrics.Table{calib, sizing, live},
		ShapeOK:   shapeOK,
		ShapeNote: "churn inflates the required farm beyond the perfect-peer count, and the live search locates the injected chirp",
	}, nil
}

// E3 reproduces §3.6.3: the four-stage database pipeline bound across
// peers via discovery, with the verification stage's verdicts and the
// visualisation histogram as outputs.
func E3(cfg Config) (*Result, error) {
	cfg.defaults()
	rows := 2000 * cfg.Scale
	wf := core.DBPipelineWorkflow(core.DBPipelineOptions{Rows: rows})
	rep, wall, err := runOnGrid(2, wf, controller.RunOptions{
		Iterations: 1, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	verdict, _ := rep.Result().Unit("Verdicts").(*unitio.Grapher).Last().(*types.Table)
	hist, _ := rep.Result().Unit("Chart").(*unitio.Grapher).Last().(*types.Histogram)

	tab := metrics.NewTable("E3: database service pipeline (Case 3)",
		"rows", "stagesRemote", "verified", "histogramRows", "wall")
	remoteStages := 0
	for _, counts := range rep.Dist.Remote {
		remoteStages += len(counts)
	}
	verified := verdict != nil && dbase.Passed(verdict)
	histN := 0.0
	if hist != nil {
		histN = hist.Total()
	}
	tab.AddRow(rows, remoteStages, verified, histN, wall)

	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   verified && remoteStages >= 2 && histN == float64(rows),
		ShapeNote: "manipulate and verify stages ran on distinct peers, verification passed, visualisation binned every row",
	}, nil
}

// ceilDiv is ceiling division for positive int64s.
func ceilDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// logRatio is log2(a)/log2(b), the O(n log n) cost-scaling factor.
func logRatio(a, b int) float64 {
	return math.Log2(float64(a)) / math.Log2(float64(b))
}
