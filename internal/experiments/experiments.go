// Package experiments implements the reproduction harness: one function
// per figure/table in DESIGN.md's experiment index (F1-F3, E1-E3, T1-T5,
// A1-A2). Each function runs the workload and returns one or more
// metrics.Tables with the rows the paper's evaluation would report;
// cmd/gridsim prints them and bench_test.go wraps them as benchmarks.
//
// Sizes default to laptop scale; Config scales them up. Where the paper's
// scale is unreachable (5,000-10,000 templates against 900-second chunks;
// hundreds of thousands of peers), the harness measures the laptop-scale
// kernel and extrapolates with the measured constants, printing both —
// the substitution recorded in DESIGN.md's ledger.
package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/metrics"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
	"consumergrid/internal/units/unitio"
)

// Config scales the harness.
type Config struct {
	// Scale multiplies workload sizes (1 = laptop defaults).
	Scale int
	// Seed fixes all randomness.
	Seed int64
	// Verbose enables progress logging via Logf.
	Verbose bool
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Verbose && c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Result bundles an experiment's output tables with its headline check.
type Result struct {
	// Tables holds the regenerated rows, one table per paper artefact.
	Tables []*metrics.Table
	// ShapeOK reports whether the qualitative claim the paper makes held
	// in this run (who wins, direction of trends); the specific check is
	// described in ShapeNote.
	ShapeOK   bool
	ShapeNote string
}

// Experiment is one reproducible artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Result, error)
}

// All lists every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"F1", "Figure 1 / Code Segment 1: task-graph round trip", F1},
		{"F2", "Figure 2: spectrum averaging recovers a buried signal", F2},
		{"F3", "Figures 3-4: controller/service control round trip", F3},
		{"E1", "Case 1 (§3.6.1): galaxy-formation frame farm speedup", E1},
		{"E2", "Case 2 (§3.6.2): inspiral search throughput and sizing", E2},
		{"E3", "Case 3 (§3.6.3): database service pipeline", E3},
		{"T1", "§3.6.2 sizing: peers required vs bank size and availability", T1},
		{"T2", "§4/ref[7]: discovery scalability (flood vs rendezvous vs central)", T2},
		{"T3", "§3: code-distribution overheads (graph vs bundles, cache budget)", T3},
		{"T4", "§3.3: distribution-policy comparison", T4},
		{"T5", "§2/§3.1: gateway launch (fork vs batch) and enrolment model", T5},
		{"T6", "§4 at scale: flood vs flat rendezvous vs super-peer overlay (1k-5k peers)", T6},
		{"T7", "Multi-tenant despatch plane: throughput fairness and p99 scheduling latency", T7},
		{"A1", "Ablation: checkpointing under churn", A1},
		{"A2", "Ablation: on-demand vs pre-staged code", A2},
		{"A3", "Live churn with failover (idle gates + parallel despatch)", A3},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared helpers ----------------------------------------------------------

// runOnGrid spins an in-proc grid, runs the workflow, tears down, and
// reports the wall time of the run call.
func runOnGrid(peers int, wf *taskgraph.Graph, opts controller.RunOptions) (*controller.Report, time.Duration, error) {
	grid, err := core.NewGrid(core.GridOptions{Peers: peers})
	if err != nil {
		return nil, 0, err
	}
	defer grid.Close()
	start := time.Now()
	rep, err := grid.Run(context.Background(), wf, opts)
	return rep, time.Since(start), err
}

// grapherSpectrum pulls the retained Spectrum out of a named Grapher sink.
func grapherSpectrum(rep *controller.Report, task string) (*types.Spectrum, error) {
	u := rep.Result().Unit(task)
	g, ok := u.(*unitio.Grapher)
	if !ok {
		return nil, fmt.Errorf("experiments: task %s is %T, not a Grapher", task, u)
	}
	spec, ok := g.Last().(*types.Spectrum)
	if !ok {
		return nil, fmt.Errorf("experiments: %s holds %T", task, g.Last())
	}
	return spec, nil
}

// spectralSNR is the Figure 2 visibility measure: the signal bin divided
// by the LARGEST background bin. A single noisy spectrum has exponential
// noise spikes rivalling the signal (the "buried" plot); averaging
// flattens the spikes toward the mean noise power, so the ratio grows
// with the iteration count even though the mean noise floor does not.
func spectralSNR(spec *types.Spectrum, signalHz, rate float64, n int) float64 {
	if len(spec.Amplitudes) == 0 {
		return 0
	}
	peakBin := int(signalHz / rate * float64(n))
	if peakBin >= len(spec.Amplitudes) {
		return 0
	}
	peak := spec.Amplitudes[peakBin]
	var maxBg float64
	for i, v := range spec.Amplitudes {
		if i >= peakBin-2 && i <= peakBin+2 {
			continue
		}
		if v > maxBg {
			maxBg = v
		}
	}
	if maxBg == 0 {
		return 0
	}
	return peak / maxBg
}

// mustMeta panics when a workflow references an unregistered unit — the
// harness imports the full toolbox, so this is a programming error.
func mustMeta(unit string) units.Meta {
	m, ok := units.Lookup(unit)
	if !ok {
		panic("experiments: unit not registered: " + unit)
	}
	return m
}

// round2 keeps table floats tidy.
func round2(x float64) float64 { return math.Round(x*100) / 100 }

// unitsNew and the unit-name aliases keep the experiment files free of
// direct toolbox imports where only reflection-style access is needed.
const (
	astroGalaxyGen       = "triana.astro.GalaxyGen"
	imagingColumnDensity = "triana.imaging.ColumnDensity"
)

func unitsNew(name string, params map[string]string) (units.Unit, error) {
	return units.New(name, units.Params(params))
}
