package experiments

import (
	"testing"
)

// TestEveryExperimentRunsAndHoldsShape is the harness's own integration
// suite: each experiment must run at laptop scale and its qualitative
// claim (who wins, trend direction) must hold. This is the repository's
// statement that the paper's evaluation shapes reproduce.
func TestEveryExperimentRunsAndHoldsShape(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run(Config{Seed: 1})
			if err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			for _, tab := range res.Tables {
				if tab.NumRows() == 0 {
					t.Errorf("%s table %q is empty", exp.ID, tab.Title)
				}
				if tab.String() == "" {
					t.Errorf("%s table %q renders empty", exp.ID, tab.Title)
				}
			}
			if !res.ShapeOK {
				t.Errorf("%s shape check failed: %s\n%s",
					exp.ID, res.ShapeNote, renderAll(res))
			}
			t.Logf("%s: %s", exp.ID, res.ShapeNote)
		})
	}
}

func renderAll(res *Result) string {
	out := ""
	for _, tab := range res.Tables {
		out += tab.String() + "\n"
	}
	return out
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("T2"); !ok {
		t.Error("T2 missing")
	}
	if _, ok := Lookup("ZZ"); ok {
		t.Error("bogus experiment found")
	}
	if len(All()) != 16 {
		t.Errorf("experiment count = %d", len(All()))
	}
}
