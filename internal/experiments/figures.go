package experiments

import (
	"context"
	"fmt"
	"time"

	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/engine"
	"consumergrid/internal/metrics"
	"consumergrid/internal/policy"
	"consumergrid/internal/service"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/units"
)

// F1 reproduces Figure 1 / Code Segment 1: the canonical workflow is
// built, serialized to the XML dialect, re-parsed, validated against the
// unit registry, and its group structure checked — the paper's claim that
// "transmitting the connectivity graph to nodes has a limited overhead –
// as the graph itself is a text file that does not consume many
// resources" is quantified by the byte counts.
func F1(cfg Config) (*Result, error) {
	cfg.defaults()
	tab := metrics.NewTable("F1: task-graph round trip (Figure 1 / Code Segment 1)",
		"artefact", "tasks", "connections", "xmlBytes", "parse+validate")

	wf := core.Figure1Workflow(core.Figure1Options{})
	wf.AssignLabels("fig1")
	artefacts := map[string]*taskgraph.Graph{
		"figure1": wf,
		"galaxy":  core.GalaxyWorkflow(core.GalaxyOptions{}),
		"inspiral": core.InspiralWorkflow(core.InspiralOptions{
			InjectOffset: 1000}),
		"dbpipeline": core.DBPipelineWorkflow(core.DBPipelineOptions{}),
	}
	shapeOK := true
	for _, name := range []string{"figure1", "galaxy", "inspiral", "dbpipeline"} {
		g := artefacts[name]
		b, err := g.EncodeXML()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		parsed, err := taskgraph.ParseXML(b)
		if err != nil {
			return nil, err
		}
		if err := parsed.Validate(units.Resolver()); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if parsed.CountTasks() != g.CountTasks() {
			shapeOK = false
		}
		nConn := len(parsed.Connections)
		for _, t := range parsed.Tasks {
			if t.IsGroup() {
				nConn += len(t.Group.Connections)
			}
		}
		tab.AddRow(name, parsed.CountTasks(), nConn, len(b), elapsed)
		// "Text file that does not consume many resources": graphs stay
		// in the low kilobytes.
		if len(b) > 64<<10 {
			shapeOK = false
		}
	}
	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   shapeOK,
		ShapeNote: "every workflow round-trips losslessly and stays under 64 KiB of XML",
	}, nil
}

// F2 reproduces Figure 2: the 1 kHz sine buried in sigma=5 noise, power
// spectrum averaged by AccumStat. The paper shows the signal invisible
// after 1 iteration and recovered after 20; the reproduced series reports
// spectral SNR per accumulation count, which must grow (≈ the background
// estimate tightening as sqrt(N)).
func F2(cfg Config) (*Result, error) {
	cfg.defaults()
	const rate, freq = 8000.0, 1000.0
	n := 1024 * cfg.Scale
	tab := metrics.NewTable("F2: spectrum averaging (Figure 2)",
		"iterations", "spectralSNR", "peakHz")

	// One noisy spectrum's worst spike is itself random, so each point
	// averages several independent trials; the trend, not a single draw,
	// is Figure 2's claim.
	const trials = 5
	var snr1, snr20 float64
	for _, iters := range []int{1, 2, 5, 10, 20} {
		var sum float64
		var peakHz float64
		for trial := 0; trial < trials; trial++ {
			wf := core.Figure1Workflow(core.Figure1Options{
				Samples: n, NoiseSigma: 5, Policy: policy.NameLocal})
			res, err := engine.Run(context.Background(), wf, engine.Options{
				Iterations: iters, Seed: cfg.Seed + int64(trial)*7919,
			})
			if err != nil {
				return nil, err
			}
			rep := &controller.Report{Dist: &service.DistResult{Local: res}}
			spec, err := grapherSpectrum(rep, "Grapher")
			if err != nil {
				return nil, err
			}
			sum += spectralSNR(spec, freq, rate, n)
			peakHz = spec.PeakFrequency()
		}
		snr := sum / trials
		tab.AddRow(iters, round2(snr), round2(peakHz))
		if iters == 1 {
			snr1 = snr
		}
		if iters == 20 {
			snr20 = snr
		}
	}
	return &Result{
		Tables:  []*metrics.Table{tab},
		ShapeOK: snr20 > 1.5*snr1 && snr20 > 3,
		ShapeNote: fmt.Sprintf("peak-to-worst-noise-spike ratio grows from %.1f (signal buried, 1 iter) to %.1f (recovered, 20 iters), averaged over %d trials",
			snr1, snr20, trials),
	}, nil
}

// F3 reproduces the Figure 3/4 architecture interactions: a controller
// drives a network of service daemons — ping round trips over the command
// channel, then a full despatch/execute/wait cycle of a remote group.
func F3(cfg Config) (*Result, error) {
	cfg.defaults()
	grid, err := core.NewGrid(core.GridOptions{Peers: 4})
	if err != nil {
		return nil, err
	}
	defer grid.Close()

	ping := metrics.NewTable("F3a: controller -> service command round trips",
		"peer", "rm", "meanRTT", "p95RTT")
	host := grid.Controller.Service().Host()
	for _, w := range grid.Workers {
		var t metrics.Timer
		var rmName string
		for i := 0; i < 50; i++ {
			start := time.Now()
			reply, err := host.Request(w.Addr(), service.MethodPing, nil, nil)
			if err != nil {
				return nil, err
			}
			t.Observe(time.Since(start))
			rmName = reply.Header("rm")
		}
		ping.AddRow(w.PeerID(), rmName, t.Mean(), t.Percentile(95))
	}

	run := metrics.NewTable("F3b: remote group despatch/execute/collect",
		"iterations", "peersUsed", "remoteProcessed", "wall")
	iters := 10 * cfg.Scale
	start := time.Now()
	rep, err := grid.Run(context.Background(),
		core.Figure1Workflow(core.Figure1Options{Samples: 512}),
		controller.RunOptions{Iterations: iters, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	remote := 0
	for _, counts := range rep.Dist.Remote {
		remote += counts["Gaussian"]
	}
	run.AddRow(iters, len(rep.Peers), remote, wall)

	return &Result{
		Tables:    []*metrics.Table{ping, run},
		ShapeOK:   remote == iters && len(rep.Peers) == 4,
		ShapeNote: "all data items executed remotely across all four daemons; command channel stays sub-millisecond in-process",
	}, nil
}
