package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/discovery"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/metrics"
	"consumergrid/internal/overlay"
	"consumergrid/internal/simnet"
)

// ScalePoint is one (strategy, network size) measurement of T6.
type ScalePoint struct {
	Peers          int
	Strategy       string
	MsgsPerPublish float64
	MsgsPerQuery   float64
	P90Query       time.Duration
	Found          bool
}

// T6 regenerates the discovery comparison at consumer-grid scale:
// flooding, flat rendezvous and the replicated super-peer overlay at
// 1,000+ peers. The overlay claim under test: a publish costs O(R)
// messages (R replicas, independent of network size) and a topical
// query O(1), where flooding pays O(N·TTL) per query and the paper's
// flat rendezvous remaps nearly every peer on membership change.
func T6(cfg Config) (*Result, error) {
	cfg.defaults()
	tab := metrics.NewTable("T6: discovery at scale (simnet, 100µs links)",
		"peers", "strategy", "msgs/publish", "msgs/query", "p90 query", "found")

	sizes := []int{1000}
	if cfg.Scale > 1 {
		big := 1000 * cfg.Scale
		if big > 5000 {
			big = 5000
		}
		sizes = append(sizes, big)
	}
	const queries = 10
	results := map[string]map[int]ScalePoint{}
	for _, n := range sizes {
		for _, strategy := range []string{"flood", "rendezvous", "overlay"} {
			cfg.logf("T6: %s at %d peers", strategy, n)
			pt, err := DiscoveryScaleTrial(strategy, n, queries, cfg.Seed)
			if err != nil {
				return nil, err
			}
			tab.AddRow(n, strategy, round2(pt.MsgsPerPublish), round2(pt.MsgsPerQuery),
				pt.P90Query.Round(10*time.Microsecond), pt.Found)
			if results[strategy] == nil {
				results[strategy] = map[int]ScalePoint{}
			}
			results[strategy][n] = pt
		}
	}

	shapeOK := true
	for _, n := range sizes {
		// Overlay cost is pinned, not just bounded: 2 RPC round trips per
		// publish at R=2 (client→owner, owner→replica) and 1 per topical
		// query, at every network size.
		if ov := results["overlay"][n]; ov.MsgsPerPublish != 4 || ov.MsgsPerQuery != 2 {
			shapeOK = false
		}
		// Flooding pays per query what the overlay never does.
		if results["flood"][n].MsgsPerQuery < 20*results["overlay"][n].MsgsPerQuery {
			shapeOK = false
		}
		for _, s := range []string{"flood", "rendezvous", "overlay"} {
			if !results[s][n].Found {
				shapeOK = false
			}
		}
	}
	if len(sizes) > 1 {
		first, last := sizes[0], sizes[len(sizes)-1]
		if results["flood"][last].MsgsPerQuery <= results["flood"][first].MsgsPerQuery {
			shapeOK = false // flood traffic must grow with the network
		}
		if results["overlay"][last].MsgsPerQuery != results["overlay"][first].MsgsPerQuery {
			shapeOK = false // overlay cost must not
		}
	}
	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   shapeOK,
		ShapeNote: "overlay publishes cost O(R)=4 msgs and topical queries O(1)=2 msgs at every size; flooding pays O(N·TTL) per query",
	}, nil
}

// DiscoveryScaleTrial builds an n-peer network on a fresh simnet using
// one discovery strategy, publishes a target advert at a far peer, then
// measures message cost and latency over several queries from distinct
// peers. Exported for the BenchmarkDiscover* pair in bench_discovery_test.go.
func DiscoveryScaleTrial(strategy string, n, queries int, seed int64) (ScalePoint, error) {
	pt := ScalePoint{Peers: n, Strategy: strategy, Found: true}
	net := simnet.New()
	net.Latency = 100 * time.Microsecond
	rng := rand.New(rand.NewSource(seed))

	type peer struct {
		host *jxtaserve.Host
		node *discovery.Node
	}
	var all []*peer
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
		for _, p := range all {
			p.host.Close()
		}
	}()

	var rdvAddrs []string
	ring := overlay.NewRing(0)
	mode := discovery.ModeFlood
	switch strategy {
	case "rendezvous":
		mode = discovery.ModeRendezvous
		for i := 0; i < 4; i++ {
			h, err := jxtaserve.NewHost(fmt.Sprintf("rdv-%d", i), net, "")
			if err != nil {
				return pt, err
			}
			all = append(all, &peer{host: h, node: discovery.NewNode(h, advert.NewCache(),
				discovery.Config{Mode: mode, IsRendezvous: true})})
			rdvAddrs = append(rdvAddrs, h.Addr())
		}
	case "overlay":
		mode = discovery.ModeOverlay
		for i := 0; i < 3; i++ {
			h, err := jxtaserve.NewHost(fmt.Sprintf("super-%d", i), net, "")
			if err != nil {
				return pt, err
			}
			all = append(all, &peer{host: h})
			ring.Add(h.Addr())
			sp, err := overlay.NewSuper(h, overlay.SuperOptions{
				Ring: ring, Replication: 2, SweepInterval: -1})
			if err != nil {
				return pt, err
			}
			closers = append(closers, sp.Close)
		}
	}

	edge := make([]*peer, 0, n)
	for i := 0; i < n; i++ {
		h, err := jxtaserve.NewHost(fmt.Sprintf("p%d", i), net, "")
		if err != nil {
			return pt, err
		}
		// TTL 8 reaches ~everything on the degree-4 small-world graph at
		// these sizes (T2's TTL 6 tops out near 300 peers) — and each extra
		// hop multiplies flood traffic, which is exactly the paper's point.
		// The generous timeout is headroom for loaded CI machines; a found
		// query returns as soon as the first response lands, so it never
		// shows up in the latency figures.
		cfg := discovery.Config{Mode: mode, Rendezvous: rdvAddrs,
			TTL: 8, QueryTimeout: time.Second}
		if strategy == "overlay" {
			cl, err := overlay.NewClient(h, overlay.ClientOptions{Ring: ring, Replication: 2})
			if err != nil {
				return pt, err
			}
			closers = append(closers, cl.Close)
			cfg.Overlay = cl
			cfg.Placement = ring.Primary
		}
		p := &peer{host: h, node: discovery.NewNode(h, advert.NewCache(), cfg)}
		all = append(all, p)
		edge = append(edge, p)
	}
	if strategy == "flood" {
		// Random small-world topology: ring plus three random chords per
		// peer (T2 uses two; the extra chord keeps every pair within the
		// TTL-8 horizon at these sizes).
		for i, p := range edge {
			p.node.AddNeighbor(edge[(i+1)%n].host.Addr())
			p.node.AddNeighbor(edge[(i+n-1)%n].host.Addr())
			for j := 0; j < 3; j++ {
				p.node.AddNeighbor(edge[rng.Intn(n)].host.Addr())
			}
		}
	}

	target := &advert.Advertisement{
		Kind: advert.KindService, ID: "target", PeerID: edge[n/2].host.PeerID(),
		Name: "triana", Addr: edge[n/2].host.Addr(),
		Expires: time.Now().Add(time.Hour),
	}
	net.ResetCounters()
	if err := edge[n/2].node.Publish(target); err != nil {
		return pt, err
	}
	pt.MsgsPerPublish = float64(net.Messages())

	q := advert.Query{Kind: advert.KindService, Name: "triana"}
	if strategy != "flood" {
		// One untimed warm-up query absorbs first-use costs (allocator,
		// scheduler) so the p90 reflects steady state. Flooding skips it:
		// a warm-up flood would take seconds to drain for two messages of
		// difference.
		if _, err := edge[1].node.Discover(q, 1); err != nil {
			return pt, err
		}
	}
	// Collect the garbage from network construction (and any earlier
	// trial) now, so a mid-query GC pause does not masquerade as
	// discovery latency.
	runtime.GC()
	latencies := make([]time.Duration, 0, queries)
	var totalMsgs int64
	for i := 0; i < queries; i++ {
		// Distinct query sources, spread around the network, never the
		// publisher itself.
		src := edge[(1+i*(n/queries+1))%n]
		if src == edge[n/2] {
			src = edge[0]
		}
		net.ResetCounters()
		start := time.Now()
		got, err := src.node.Discover(q, 1)
		if err != nil {
			return pt, err
		}
		latencies = append(latencies, time.Since(start))
		if strategy == "flood" {
			// Discover returns on the first hit; let the residual flood
			// drain so the counter reflects the query's full traffic.
			time.Sleep(150 * time.Millisecond)
		}
		totalMsgs += net.Messages()
		if len(got) == 0 {
			pt.Found = false
		}
	}
	pt.MsgsPerQuery = float64(totalMsgs) / float64(queries)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pt.P90Query = latencies[(len(latencies)*9)/10]
	return pt, nil
}
