package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/churn"
	"consumergrid/internal/controller"
	"consumergrid/internal/core"
	"consumergrid/internal/discovery"
	"consumergrid/internal/gateway"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/mcode"
	"consumergrid/internal/metrics"
	"consumergrid/internal/policy"
	"consumergrid/internal/simnet"
	"consumergrid/internal/units/signal"
)

// T1 regenerates the §3.6.2 sizing claim as a table: peers required to
// keep up with the GEO600 stream, for template-bank sizes 5,000-10,000
// and availability levels from perfect down to 50%. The paper's anchor
// point — 5,000 templates take ~5 h per 15-minute chunk on a 2 GHz PC, so
// 20 PCs are needed full-time, "increased due to various types of
// downtime" on a Consumer Grid — fixes the cost model: we take the
// paper's 5 h per 5,000 templates at face value (hours of work per chunk
// scale linearly in bank size) and search for the smallest farm that
// keeps up over a day of data.
func T1(cfg Config) (*Result, error) {
	cfg.defaults()
	tab := metrics.NewTable("T1: peers required for real-time inspiral search",
		"templates", "chunkHours", "avail=1.0", "avail=0.9", "avail=0.7", "avail=0.5")

	// Work per chunk: paper says 5000 templates -> 5 hours on a 2 GHz PC.
	// Within a chunk the bank is split into 250-template sub-banks (the
	// farm's unit of work): matched filtering is "massively parallel"
	// inside a chunk, which is what lets a farm keep up at all.
	const hoursPer5000 = 5.0
	const chunks = 24    // a six-hour window of 15-minute chunks
	const lagHours = 0.5 // "it can lag behind by several hours if necessary"
	availabilities := []struct {
		meanUp, meanDown float64
	}{
		{1, 0}, // perfect
		{9, 1}, // 90%
		{7, 3}, // 70%
		{5, 5}, // 50%
	}
	shapeOK := true
	var perfect5000 int
	rows := [][]any{}
	for _, templates := range []int{5000, 7500, 10000} {
		chunkHours := hoursPer5000 * float64(templates) / 5000
		subBanks := templates / 250
		var tasks, releases []float64
		for c := 0; c < chunks; c++ {
			for sb := 0; sb < subBanks; sb++ {
				tasks = append(tasks, chunkHours/float64(subBanks))
				releases = append(releases, 0.25*float64(c))
			}
		}
		deadline := 0.25*chunks + lagHours
		row := []any{templates, round2(chunkHours)}
		prev := 0
		for _, av := range availabilities {
			k, _, err := churn.RequiredPeers(tasks, deadline, 500,
				cfg.Seed, av.meanUp, av.meanDown,
				churn.FarmOptions{Releases: releases})
			if err != nil {
				return nil, err
			}
			row = append(row, k)
			if k < prev {
				shapeOK = false // lower availability must not need fewer peers
			}
			prev = k
			if templates == 5000 && av.meanDown == 0 {
				perfect5000 = k
			}
		}
		rows = append(rows, row)
	}
	for _, r := range rows {
		tab.AddRow(r...)
	}
	// The paper's anchor: ~20 PCs at 5000 templates with full-time peers.
	if perfect5000 < 15 || perfect5000 > 25 {
		shapeOK = false
	}
	return &Result{
		Tables:  []*metrics.Table{tab},
		ShapeOK: shapeOK,
		ShapeNote: fmt.Sprintf("perfect-availability farm at 5000 templates needs %d peers (paper: 20); requirements rise monotonically as availability falls",
			perfect5000),
	}, nil
}

// T2 regenerates the discovery-scalability comparison over the simnet
// transport: messages per query and success rate for flooding (TTL-bound,
// degree-4 random graph), rendezvous (4 servers) and the Napster-style
// central index, as the network grows. The paper's claim: flooding
// "severely restricts the scalability of such approaches" while the
// others stay O(1) per query.
func T2(cfg Config) (*Result, error) {
	cfg.defaults()
	tab := metrics.NewTable("T2: discovery cost per query (simnet)",
		"peers", "strategy", "msgs/query", "found")

	sizes := []int{50, 100, 200}
	if cfg.Scale > 1 {
		sizes = append(sizes, 200*cfg.Scale)
	}
	type point struct {
		msgs  float64
		found bool
	}
	results := map[string]map[int]point{"flood": {}, "rendezvous": {}, "central": {}}

	for _, n := range sizes {
		for _, strategy := range []string{"flood", "rendezvous", "central"} {
			msgs, found, err := runDiscoveryTrial(strategy, n, cfg.Seed)
			if err != nil {
				return nil, err
			}
			tab.AddRow(n, strategy, round2(msgs), found)
			results[strategy][n] = point{msgs, found}
		}
	}
	// Shape: flood cost grows with n; rendezvous/central stay flat; all
	// strategies find the target at these TTL/topology settings.
	shapeOK := true
	first, last := sizes[0], sizes[len(sizes)-1]
	if results["flood"][last].msgs <= results["flood"][first].msgs {
		shapeOK = false
	}
	for _, s := range []string{"rendezvous", "central"} {
		if results[s][last].msgs > results[s][first].msgs*2 {
			shapeOK = false
		}
	}
	for _, s := range []string{"flood", "rendezvous", "central"} {
		for _, n := range sizes {
			if !results[s][n].found {
				shapeOK = false
			}
		}
	}
	if results["flood"][last].msgs < 4*results["central"][last].msgs {
		shapeOK = false // flooding must be markedly costlier at scale
	}
	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   shapeOK,
		ShapeNote: "flood traffic grows with network size while rendezvous/central stay near-constant",
	}, nil
}

// runDiscoveryTrial builds an n-peer network of the given strategy on a
// fresh simnet, publishes one target advert at a far peer, runs one query
// from peer 0, and reports (messages on the wire, target found).
func runDiscoveryTrial(strategy string, n int, seed int64) (float64, bool, error) {
	net := simnet.New()
	rng := rand.New(rand.NewSource(seed))

	type peer struct {
		host *jxtaserve.Host
		node *discovery.Node
	}
	var peers []*peer
	defer func() {
		for _, p := range peers {
			p.host.Close()
		}
	}()

	var rdvAddrs []string
	mode := discovery.ModeFlood
	switch strategy {
	case "rendezvous":
		mode = discovery.ModeRendezvous
		for i := 0; i < 4; i++ {
			h, err := jxtaserve.NewHost(fmt.Sprintf("rdv-%d", i), net, "")
			if err != nil {
				return 0, false, err
			}
			p := &peer{host: h, node: discovery.NewNode(h, advert.NewCache(),
				discovery.Config{Mode: mode, IsRendezvous: true})}
			peers = append(peers, p)
			rdvAddrs = append(rdvAddrs, h.Addr())
		}
	case "central":
		mode = discovery.ModeCentral
		h, err := jxtaserve.NewHost("index", net, "")
		if err != nil {
			return 0, false, err
		}
		peers = append(peers, &peer{host: h, node: discovery.NewNode(h, advert.NewCache(),
			discovery.Config{Mode: mode, IsRendezvous: true})})
		rdvAddrs = []string{h.Addr()}
	}

	edge := make([]*peer, 0, n)
	for i := 0; i < n; i++ {
		h, err := jxtaserve.NewHost(fmt.Sprintf("p%d", i), net, "")
		if err != nil {
			return 0, false, err
		}
		cfg := discovery.Config{Mode: mode, Rendezvous: rdvAddrs,
			TTL: 6, QueryTimeout: 400 * time.Millisecond}
		p := &peer{host: h, node: discovery.NewNode(h, advert.NewCache(), cfg)}
		peers = append(peers, p)
		edge = append(edge, p)
	}
	if strategy == "flood" {
		// Random 4-regular-ish topology: ring plus two random chords.
		for i, p := range edge {
			p.node.AddNeighbor(edge[(i+1)%n].host.Addr())
			p.node.AddNeighbor(edge[(i+n-1)%n].host.Addr())
			for j := 0; j < 2; j++ {
				p.node.AddNeighbor(edge[rng.Intn(n)].host.Addr())
			}
		}
	}

	// Target advert lives halfway around the network.
	target := &advert.Advertisement{
		Kind: advert.KindService, ID: "target", PeerID: edge[n/2].host.PeerID(),
		Name: "triana", Addr: edge[n/2].host.Addr(),
	}
	if err := edge[n/2].node.Publish(target); err != nil {
		return 0, false, err
	}
	net.ResetCounters()
	got, err := edge[0].node.Discover(advert.Query{Kind: advert.KindService, Name: "triana"}, 1)
	if err != nil {
		return 0, false, err
	}
	// Allow in-flight flood traffic to drain into the counters.
	if strategy == "flood" {
		time.Sleep(100 * time.Millisecond)
	}
	return float64(net.Messages()), len(got) > 0, nil
}

// T3 regenerates the code-distribution claims of §3: connectivity graphs
// are cheap relative to module bundles; on-demand fetch is paid once and
// amortised by the cache; constrained devices trade cache budget for
// re-fetches ("a resource-constrained device may also decide to
// selectively download and release executable modules").
func T3(cfg Config) (*Result, error) {
	cfg.defaults()

	// (a) Graph bytes vs bundle bytes for the Figure 1 application.
	wf := core.Figure1Workflow(core.Figure1Options{})
	graphXML, err := wf.EncodeXML()
	if err != nil {
		return nil, err
	}
	unitsUsed := []string{
		signal.NameWave, signal.NameGaussianNoise,
		signal.NamePowerSpectrum, signal.NameAccumStat,
	}
	var bundleBytes int64
	for _, u := range unitsUsed {
		b, err := mcode.BundleFor(u)
		if err != nil {
			return nil, err
		}
		bundleBytes += b.Size()
	}
	sizesTab := metrics.NewTable("T3a: graph vs module-bundle transfer size (Figure 1 app)",
		"artefact", "bytes")
	sizesTab.AddRow("task graph XML", len(graphXML))
	sizesTab.AddRow(fmt.Sprintf("%d module bundles", len(unitsUsed)), bundleBytes)

	// (b) Cold vs warm fetch over a live transport.
	tr := jxtaserve.NewInProc()
	owner, err := jxtaserve.NewHost("owner", tr, "")
	if err != nil {
		return nil, err
	}
	defer owner.Close()
	mcode.Attach(owner)
	consumer, err := jxtaserve.NewHost("consumer", tr, "")
	if err != nil {
		return nil, err
	}
	defer consumer.Close()
	fetcher := mcode.NewFetcher(consumer, mcode.NewStore(0))
	fetchTab := metrics.NewTable("T3b: on-demand fetch, cold vs warm",
		"pass", "fetches", "bytes", "elapsed")
	for pass, label := range []string{"cold", "warm"} {
		f0, b0 := fetcher.Fetches()
		start := time.Now()
		for _, u := range unitsUsed {
			m := mustMeta(u)
			if _, err := fetcher.Ensure(u, m.Version, owner.Addr()); err != nil {
				return nil, err
			}
		}
		f1, b1 := fetcher.Fetches()
		fetchTab.AddRow(label, f1-f0, b1-b0, time.Since(start))
		_ = pass
	}

	// (c) Cache-budget sweep: run the fetch cycle for every unit in the
	// toolbox repeatedly under shrinking budgets; smaller budgets force
	// evictions and re-fetches.
	budgetTab := metrics.NewTable("T3c: constrained-device cache budget sweep",
		"budgetKiB", "fetches", "evictions")
	var coldFetches int64
	shapeOK := true
	allUnits := unitsUsed
	for _, budgetKiB := range []int64{0, 64, 16, 8} { // 0 = unlimited
		store := mcode.NewStore(budgetKiB << 10)
		f := mcode.NewFetcher(consumer, store)
		for round := 0; round < 3; round++ {
			for _, u := range allUnits {
				m := mustMeta(u)
				if _, err := f.Ensure(u, m.Version, owner.Addr()); err != nil {
					return nil, err
				}
			}
		}
		fetches, _ := f.Fetches()
		_, _, ev := store.Counters()
		budgetTab.AddRow(budgetKiB, fetches, ev)
		if budgetKiB == 0 {
			coldFetches = fetches
		} else if fetches < coldFetches {
			shapeOK = false // tighter budgets cannot fetch less
		}
	}

	if int64(len(graphXML)) >= bundleBytes {
		shapeOK = false
	}
	warm := fetchTab.Rows()[1]
	if warm[1] != "0" {
		shapeOK = false
	}
	return &Result{
		Tables:    []*metrics.Table{sizesTab, fetchTab, budgetTab},
		ShapeOK:   shapeOK,
		ShapeNote: "graphs are far smaller than code bundles, warm fetches hit the cache, tight budgets trade memory for re-fetches",
	}, nil
}

// T4 compares the §3.3 distribution policies on the same group: local
// execution, parallel farm-out over k peers, and the peer-to-peer
// pipeline, reporting wall time and placement shape.
func T4(cfg Config) (*Result, error) {
	cfg.defaults()
	iters := 24 * cfg.Scale
	tab := metrics.NewTable("T4: distribution policies on the Figure 1 group",
		"policy", "peers", "wall", "remoteTasks")

	type trial struct {
		name   string
		policy string
		peers  int
	}
	trials := []trial{
		{"local", policy.NameLocal, 0},
		{"parallel", policy.NameParallel, 3},
		{"peer-to-peer", policy.NamePeerToPeer, 2},
	}
	walls := map[string]time.Duration{}
	remote := map[string]int{}
	for _, tr := range trials {
		wf := core.Figure1Workflow(core.Figure1Options{Samples: 2048, Policy: tr.policy})
		rep, wall, err := runOnGrid(tr.peers, wf, controller.RunOptions{
			Iterations: iters, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		nRemote := 0
		for _, counts := range rep.Dist.Remote {
			for _, c := range counts {
				nRemote += c
			}
		}
		walls[tr.name] = wall
		remote[tr.name] = nRemote
		tab.AddRow(tr.name, tr.peers, wall, nRemote)
	}
	// Shape: parallel and pipeline actually move work off-box; the local
	// run does not. (Wall-clock ordering is environment-dependent for
	// such light units, so the shape check is about placement.)
	shapeOK := remote["local"] == 0 && remote["parallel"] == 2*iters &&
		remote["peer-to-peer"] == 2*iters
	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   shapeOK,
		ShapeNote: "parallel farms both group units across replicas; pipeline splits them across peers; local keeps everything on-box",
	}, nil
}

// T5 regenerates the §2 Globus-vs-Triana enrolment comparison and the
// gateway launch behaviour. (a) Enrolment is a count model taken from the
// paper's prose: Globus needs per-user administrator actions (certificate
// request, CA signing, account creation, gridmap entry) while the Triana
// peer is a one-time "point-and-click" daemon install with a virtual
// account. (b) Fork vs Batch launch latency is measured on live managers.
func T5(cfg Config) (*Result, error) {
	cfg.defaults()

	enrol := metrics.NewTable("T5a: enrolment cost model (administrative actions)",
		"system", "perResourceSetup", "perUserActions", "usersFor1000")
	// Globus (§2): admin creates an account per user plus certificate
	// handling: "If thousands of users wanted access to a resource it
	// would be a daunting task indeed for any administrator."
	enrol.AddRow("globus-accounts", 1, 4, 4000)
	// Single shared Globus account variant the paper sketches.
	enrol.AddRow("globus-shared-account", 2, 1, 1000)
	// Triana: install daemon once; users arrive via virtual accounts.
	enrol.AddRow("triana-peer", 1, 0, 0)

	launch := metrics.NewTable("T5b: gateway launch latency under load",
		"manager", "jobs", "meanQueueWait", "p95QueueWait", "makespan")
	const jobs = 32
	work := 5 * time.Millisecond

	runManager := func(rm gateway.ResourceManager) (time.Duration, *metrics.Timer, error) {
		var waits metrics.Timer
		start := time.Now()
		handles := make([]*gateway.Handle, 0, jobs)
		for i := 0; i < jobs; i++ {
			h, err := rm.Submit(gateway.Job{
				ID: fmt.Sprintf("job-%d", i),
				Run: func(ctx context.Context) error {
					time.Sleep(work)
					return nil
				},
			})
			if err != nil {
				return 0, nil, err
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if err := h.Wait(); err != nil {
				return 0, nil, err
			}
			waits.Observe(h.QueueWait())
		}
		return time.Since(start), &waits, nil
	}

	fork := gateway.NewFork()
	forkMakespan, forkWaits, err := runManager(fork)
	fork.Close()
	if err != nil {
		return nil, err
	}
	launch.AddRow("fork", jobs, forkWaits.Mean(), forkWaits.Percentile(95), forkMakespan)

	batch, err := gateway.NewBatch(4)
	if err != nil {
		return nil, err
	}
	batchMakespan, batchWaits, err := runManager(batch)
	batch.Close()
	if err != nil {
		return nil, err
	}
	launch.AddRow("batch(4 slots)", jobs, batchWaits.Mean(), batchWaits.Percentile(95), batchMakespan)

	shapeOK := batchWaits.Mean() > forkWaits.Mean() && batchMakespan > forkMakespan
	return &Result{
		Tables:    []*metrics.Table{enrol, launch},
		ShapeOK:   shapeOK,
		ShapeNote: "Triana enrolment needs no per-user admin actions; slot-limited batch gateways queue while fork launches immediately",
	}, nil
}
