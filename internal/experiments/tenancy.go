// T7: multi-tenant despatch-plane fairness. The tentpole claim of the
// tenancy PR, measured: when several tenants share one controller's
// despatch budget, the weighted-stride fair-share scheduler keeps
// per-tenant farm throughput near-equal (Jain's index) without taxing
// scheduling latency — the p99 acquire-to-grant wait under a 4-tenant
// split of a workload stays within 2x of the same aggregate workload
// submitted by a single tenant.
package experiments

import (
	"fmt"
	"time"

	"consumergrid/internal/metrics"
	"consumergrid/internal/policy"
	"consumergrid/internal/service"
)

// tenancyTrialPoint summarises one (tenants x donors) cell.
type tenancyTrialPoint struct {
	jain      float64
	worstP99  float64 // worst tenant's p99 scheduling wait, ms
	perSecLow float64
	perSecHi  float64
}

// runTenancyTrial drives the shared scheduler kernel: the aggregate
// stream count is fixed at 2x the donor budget (a saturated despatch
// plane) and split evenly across the tenants, so every cell in a donor
// column carries the same offered load and the columns are comparable.
func runTenancyTrial(tenants, donors int, svcTime time.Duration, seed int64) tenancyTrialPoint {
	weights := map[string]int{}
	for i := 0; i < tenants; i++ {
		weights[fmt.Sprintf("t%d", i)] = 1
	}
	aggregateStreams := 2 * donors
	streamsPer := aggregateStreams / tenants
	const despatchesPerStream = 12
	owner := fmt.Sprintf("t7-%dx%d-s%d", tenants, donors, seed)
	results := service.SchedulerTrial(owner, weights, donors, streamsPer,
		despatchesPerStream, svcTime, seed)

	var throughputs []float64
	pt := tenancyTrialPoint{perSecLow: -1}
	for _, r := range results {
		throughputs = append(throughputs, r.PerSec)
		if r.P99WaitMS > pt.worstP99 {
			pt.worstP99 = r.P99WaitMS
		}
		if pt.perSecLow < 0 || r.PerSec < pt.perSecLow {
			pt.perSecLow = r.PerSec
		}
		if r.PerSec > pt.perSecHi {
			pt.perSecHi = r.PerSec
		}
	}
	pt.jain = policy.JainIndex(throughputs)
	return pt
}

// T7 sweeps tenants x donors over a saturated despatch plane and scores
// throughput fairness and scheduling latency. The headline cell is
// 4 tenants x 64 donors: Jain's index on per-tenant throughput must
// hold >= 0.9 and the worst tenant's p99 scheduling wait must stay
// within 2x of the single-tenant baseline at the same donor count and
// aggregate load.
func T7(cfg Config) (*Result, error) {
	cfg.defaults()
	const svcTime = 300 * time.Microsecond
	tab := metrics.NewTable("T7: tenancy fairness (saturated despatch plane, 2x oversubscription)",
		"tenants", "donors", "jain", "per-tenant thr (lo..hi /s)", "worst p99 wait (ms)", "p99 vs 1-tenant")

	donorCols := []int{16, 64}
	tenantRows := []int{1, 2, 4}
	points := map[[2]int]tenancyTrialPoint{}
	for _, donors := range donorCols {
		for _, tenants := range tenantRows {
			cfg.logf("T7: %d tenants x %d donors", tenants, donors)
			pt := runTenancyTrial(tenants, donors, svcTime, cfg.Seed)
			points[[2]int{tenants, donors}] = pt
			base := points[[2]int{1, donors}].worstP99
			ratio := "baseline"
			if tenants > 1 {
				ratio = fmt.Sprintf("%.2fx", p99Ratio(pt.worstP99, base))
			}
			tab.AddRow(tenants, donors, round2(pt.jain),
				fmt.Sprintf("%.0f..%.0f", pt.perSecLow, pt.perSecHi),
				round2(pt.worstP99), ratio)
		}
	}

	shapeOK := true
	note := "4x64: Jain >= 0.9 and p99 sched wait <= 2x the single-tenant baseline"
	for _, donors := range donorCols {
		base := points[[2]int{1, donors}].worstP99
		for _, tenants := range tenantRows {
			pt := points[[2]int{tenants, donors}]
			if tenants > 1 && pt.jain < 0.9 {
				shapeOK = false
				note = fmt.Sprintf("%dx%d: Jain %.3f < 0.9", tenants, donors, pt.jain)
			}
			if tenants == 4 && donors == 64 && p99Ratio(pt.worstP99, base) > 2 {
				shapeOK = false
				note = fmt.Sprintf("4x64: p99 %.2fms is %.2fx the 1-tenant %.2fms (> 2x)",
					pt.worstP99, p99Ratio(pt.worstP99, base), base)
			}
		}
	}
	return &Result{
		Tables:    []*metrics.Table{tab},
		ShapeOK:   shapeOK,
		ShapeNote: note,
	}, nil
}

// p99Ratio guards the baseline against sub-resolution waits: anything
// under 0.05 ms is timer noise, not a measured queueing delay.
func p99Ratio(p99, base float64) float64 {
	if base < 0.05 {
		base = 0.05
	}
	return p99 / base
}
