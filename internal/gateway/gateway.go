// Package gateway implements the local resource managers a Triana peer
// may delegate execution to (§3.1: "The server component within each peer
// can interact with Globus GRAM to launch jobs locally on the node ...
// In the case where no local resource manager is available, the Triana
// server component can itself be used to launch the application").
//
// Two managers are provided: Fork runs jobs immediately (the
// shell-script/fork path of §2), and Batch is a slot-limited queue with
// GRAM-like job states, standing in for a cluster scheduler behind a
// gateway peer. Experiment T5 measures the launch-latency difference.
package gateway

import (
	"context"
	"fmt"
	"sync"
	"time"

	"consumergrid/internal/metrics"
)

// State is a job's lifecycle stage, mirroring GRAM's observable states.
type State int

// Job states.
const (
	// Pending: accepted, waiting for a slot.
	Pending State = iota
	// Active: running.
	Active
	// Done: completed without error.
	Done
	// Failed: completed with an error.
	Failed
	// Canceled: removed before or during execution.
	Canceled
)

// String names the state.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Job is one unit of local execution.
type Job struct {
	// ID labels the job in handles and logs.
	ID string
	// Run performs the work; ctx is cancelled when the job is cancelled
	// or the manager shuts down.
	Run func(ctx context.Context) error
}

// ResourceManager launches jobs on the local node.
type ResourceManager interface {
	// Name identifies the manager type ("fork", "batch").
	Name() string
	// Submit enqueues a job, returning immediately with a handle.
	Submit(job Job) (*Handle, error)
	// Close stops accepting jobs, cancels pending ones and waits for
	// active jobs to finish.
	Close() error
}

// Handle tracks one submitted job.
type Handle struct {
	id string

	mu        sync.Mutex
	state     State
	err       error
	done      chan struct{}
	cancel    context.CancelFunc
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newHandle(id string) *Handle {
	return &Handle{id: id, done: make(chan struct{}), submitted: time.Now()}
}

// ID reports the job ID.
func (h *Handle) ID() string { return h.id }

// State reports the current lifecycle stage.
func (h *Handle) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Wait blocks until the job reaches a terminal state and returns its
// error (nil for Done, context.Canceled for Canceled).
func (h *Handle) Wait() error {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// QueueWait reports how long the job waited before starting (zero until
// it starts; for cancelled-in-queue jobs, the wait until cancellation).
func (h *Handle) QueueWait() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started.IsZero() {
		if h.finished.IsZero() {
			return 0
		}
		return h.finished.Sub(h.submitted)
	}
	return h.started.Sub(h.submitted)
}

// Cancel requests cancellation; pending jobs terminate immediately,
// active jobs get their context cancelled.
func (h *Handle) Cancel() {
	h.mu.Lock()
	cancel := h.cancel
	if h.state == Pending {
		h.state = Canceled
		h.err = context.Canceled
		h.finished = time.Now()
		close(h.done)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// markActive transitions Pending -> Active; returns false if the job was
// already cancelled.
func (h *Handle) markActive(cancel context.CancelFunc) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Pending {
		return false
	}
	h.state = Active
	h.started = time.Now()
	h.cancel = cancel
	return true
}

// finish transitions to a terminal state.
func (h *Handle) finish(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == Done || h.state == Failed || h.state == Canceled {
		return
	}
	h.finished = time.Now()
	switch {
	case err == nil:
		h.state = Done
	case err == context.Canceled:
		h.state = Canceled
		h.err = err
	default:
		h.state = Failed
		h.err = err
	}
	close(h.done)
}

// --- Fork -------------------------------------------------------------------

// Fork starts every job immediately in its own goroutine.
type Fork struct {
	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	ctx    context.Context
	stop   context.CancelFunc
}

// NewFork returns a ready fork manager.
func NewFork() *Fork {
	ctx, stop := context.WithCancel(context.Background())
	return &Fork{ctx: ctx, stop: stop}
}

// Name implements ResourceManager.
func (f *Fork) Name() string { return "fork" }

// Submit implements ResourceManager.
func (f *Fork) Submit(job Job) (*Handle, error) {
	if job.Run == nil {
		return nil, fmt.Errorf("gateway: job %s has no Run", job.ID)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("gateway: fork manager closed")
	}
	f.wg.Add(1)
	f.mu.Unlock()

	h := newHandle(job.ID)
	ctx, cancel := context.WithCancel(f.ctx)
	go func() {
		defer f.wg.Done()
		defer cancel()
		if !h.markActive(cancel) {
			return
		}
		h.finish(job.Run(ctx))
	}()
	return h, nil
}

// Close implements ResourceManager.
func (f *Fork) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.stop()
	f.wg.Wait()
	return nil
}

// --- Batch ------------------------------------------------------------------

// Batch is a slot-limited FIFO scheduler: at most Slots jobs run
// concurrently and the rest queue, as on a GRAM-fronted cluster.
type Batch struct {
	slots int

	mu      sync.Mutex
	queue   []*queuedJob
	active  int
	closed  bool
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	waiting metrics.Timer
}

type queuedJob struct {
	job    Job
	handle *Handle
}

// NewBatch returns a batch manager with the given concurrent slots.
func NewBatch(slots int) (*Batch, error) {
	if slots < 1 {
		return nil, fmt.Errorf("gateway: batch needs >= 1 slot")
	}
	ctx, stop := context.WithCancel(context.Background())
	return &Batch{slots: slots, ctx: ctx, stop: stop}, nil
}

// Name implements ResourceManager.
func (b *Batch) Name() string { return "batch" }

// Slots reports the concurrency limit.
func (b *Batch) Slots() int { return b.slots }

// QueueWaits exposes the recorded queue-wait timer.
func (b *Batch) QueueWaits() *metrics.Timer { return &b.waiting }

// Submit implements ResourceManager.
func (b *Batch) Submit(job Job) (*Handle, error) {
	if job.Run == nil {
		return nil, fmt.Errorf("gateway: job %s has no Run", job.ID)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("gateway: batch manager closed")
	}
	h := newHandle(job.ID)
	b.queue = append(b.queue, &queuedJob{job: job, handle: h})
	b.mu.Unlock()
	b.dispatch()
	return h, nil
}

// dispatch starts queued jobs while slots are free.
func (b *Batch) dispatch() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.active < b.slots && len(b.queue) > 0 {
		qj := b.queue[0]
		b.queue = b.queue[1:]
		ctx, cancel := context.WithCancel(b.ctx)
		if !qj.handle.markActive(cancel) {
			cancel()
			continue // cancelled while queued
		}
		b.waiting.Observe(qj.handle.QueueWait())
		b.active++
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer cancel()
			qj.handle.finish(qj.job.Run(ctx))
			b.mu.Lock()
			b.active--
			b.mu.Unlock()
			b.dispatch()
		}()
	}
}

// QueueLength reports jobs waiting for a slot.
func (b *Batch) QueueLength() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Close implements ResourceManager: pending jobs are cancelled, active
// jobs get their contexts cancelled, and Close waits for them.
func (b *Batch) Close() error {
	b.mu.Lock()
	b.closed = true
	pending := b.queue
	b.queue = nil
	b.mu.Unlock()
	for _, qj := range pending {
		qj.handle.Cancel()
	}
	b.stop()
	b.wg.Wait()
	return nil
}
