package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForkRunsImmediately(t *testing.T) {
	f := NewFork()
	defer f.Close()
	var ran atomic.Bool
	h, err := f.Submit(Job{ID: "j1", Run: func(ctx context.Context) error {
		ran.Store(true)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() || h.State() != Done {
		t.Errorf("state = %v ran = %v", h.State(), ran.Load())
	}
	if h.QueueWait() > time.Second {
		t.Errorf("fork queue wait = %v", h.QueueWait())
	}
}

func TestForkFailurePropagates(t *testing.T) {
	f := NewFork()
	defer f.Close()
	boom := errors.New("boom")
	h, _ := f.Submit(Job{ID: "j", Run: func(ctx context.Context) error { return boom }})
	if err := h.Wait(); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if h.State() != Failed {
		t.Errorf("state = %v", h.State())
	}
}

func TestForkRejectsAfterCloseAndNilRun(t *testing.T) {
	f := NewFork()
	if _, err := f.Submit(Job{ID: "nil"}); err == nil {
		t.Error("nil Run accepted")
	}
	f.Close()
	if _, err := f.Submit(Job{ID: "late", Run: func(context.Context) error { return nil }}); err == nil {
		t.Error("submit after close accepted")
	}
}

func TestForkCancelActiveJob(t *testing.T) {
	f := NewFork()
	defer f.Close()
	started := make(chan struct{})
	h, _ := f.Submit(Job{ID: "long", Run: func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	h.Cancel()
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if h.State() != Canceled {
		t.Errorf("state = %v", h.State())
	}
}

func TestBatchSlotLimiting(t *testing.T) {
	b, err := NewBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var concurrent, peak atomic.Int32
	block := make(chan struct{})
	var handles []*Handle
	for i := 0; i < 6; i++ {
		h, err := b.Submit(Job{ID: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) error {
			cur := concurrent.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			<-block
			concurrent.Add(-1)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Give the first two time to start.
	deadline := time.Now().Add(5 * time.Second)
	for b.QueueLength() > 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.QueueLength(); got != 4 {
		t.Errorf("queue length = %d, want 4", got)
	}
	close(block)
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d > 2 slots", peak.Load())
	}
	if b.QueueWaits().Count() != 6 {
		t.Errorf("queue waits recorded = %d", b.QueueWaits().Count())
	}
}

func TestBatchQueueWaitGrowsWithLoad(t *testing.T) {
	b, _ := NewBatch(1)
	defer b.Close()
	work := 20 * time.Millisecond
	var last *Handle
	for i := 0; i < 3; i++ {
		last, _ = b.Submit(Job{ID: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) error {
			time.Sleep(work)
			return nil
		}})
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	if last.QueueWait() < work { // waited behind at least one full job
		t.Errorf("third job waited only %v", last.QueueWait())
	}
}

func TestBatchCancelQueuedJob(t *testing.T) {
	b, _ := NewBatch(1)
	defer b.Close()
	block := make(chan struct{})
	b.Submit(Job{ID: "hog", Run: func(ctx context.Context) error { <-block; return nil }})
	queued, _ := b.Submit(Job{ID: "queued", Run: func(ctx context.Context) error { return nil }})
	queued.Cancel()
	if err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	close(block)
}

func TestBatchCloseCancelsPending(t *testing.T) {
	b, _ := NewBatch(1)
	block := make(chan struct{})
	active, _ := b.Submit(Job{ID: "active", Run: func(ctx context.Context) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}})
	pending, _ := b.Submit(Job{ID: "pending", Run: func(ctx context.Context) error { return nil }})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(block)
	}()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pending.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("pending err = %v", err)
	}
	active.Wait() // must terminate either way
	if _, err := b.Submit(Job{ID: "late", Run: func(context.Context) error { return nil }}); err == nil {
		t.Error("submit after close accepted")
	}
}

func TestBatchValidation(t *testing.T) {
	if _, err := NewBatch(0); err == nil {
		t.Error("0 slots accepted")
	}
	b, _ := NewBatch(1)
	defer b.Close()
	if _, err := b.Submit(Job{ID: "nil"}); err == nil {
		t.Error("nil Run accepted")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Pending: "pending", Active: "active", Done: "done",
		Failed: "failed", Canceled: "canceled", State(99): "unknown"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
	if (&Fork{}).Name() != "fork" {
		t.Error("fork name")
	}
	b, _ := NewBatch(3)
	defer b.Close()
	if b.Name() != "batch" || b.Slots() != 3 {
		t.Error("batch identity")
	}
}
