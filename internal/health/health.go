// Package health scores remote peers from observed despatch outcomes
// and gates each one behind a circuit breaker, so the farming loop and
// the policy planner can prefer live, honest, fast peers over blind
// round-robin (§3.8: consumer peers are slow, flaky and untrusted by
// construction).
//
// Each peer carries an EWMA success score (1.0 = perfect), a bounded
// ring of observed attempt latencies for quantile estimates, and a
// three-state breaker:
//
//	Closed ──(FailureThreshold consecutive failures, or a dead
//	          verdict from the failure detector)──▶ Open
//	Open ──(cooldown elapses)──▶ HalfOpen
//	HalfOpen ──(probe succeeds)──▶ Closed
//	HalfOpen ──(probe fails)──▶ Open (cooldown doubled)
//
// The cooldown is the decaying penalty: every re-open doubles it up to
// MaxOpenTimeout, every close halves it back toward OpenTimeout, so a
// peer that flaps pays increasingly long exile while one that recovers
// earns its way back quickly. Byzantine verdicts (a quorum vote that
// went against the peer) do not open the breaker — the peer answered,
// it just lied — but multiply the score down so selection stops
// trusting it.
package health

import (
	"sort"
	"sync"
	"time"

	"consumergrid/internal/metrics"
)

// State is a breaker position.
type State int

// Breaker states, ordered so the exported gauge reads 0 = closed,
// 1 = half-open, 2 = open.
const (
	Closed State = iota
	HalfOpen
	Open
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	default:
		return "unknown"
	}
}

// Options tunes a Tracker. The zero value selects the defaults noted
// per field.
type Options struct {
	// FailureThreshold consecutive failures open a closed breaker
	// (default 3).
	FailureThreshold int
	// OpenTimeout is the initial open→half-open cooldown (default 5s);
	// it doubles on every re-open up to MaxOpenTimeout (default 60s)
	// and halves on every close back toward OpenTimeout.
	OpenTimeout    time.Duration
	MaxOpenTimeout time.Duration
	// Alpha weights each new success/failure observation into the EWMA
	// score (default 0.3).
	Alpha float64
	// ByzantineFactor multiplies a peer's score on each byzantine
	// verdict (default 0.25).
	ByzantineFactor float64
	// SuspectThreshold is the score below which a peer counts as
	// suspect (default 0.5). Suspects stay selectable — their score
	// already ranks them last — but are flagged in snapshots.
	SuspectThreshold float64
	// LatencyWindow bounds the per-peer latency ring (default 64).
	LatencyWindow int
	// Owner labels this tracker's metric series with the observing
	// peer's ID, so several trackers share one registry.
	Owner string
	// Registry receives the per-peer gauges (default metrics.Default()).
	Registry *metrics.Registry
	// Now overrides the clock for deterministic tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.OpenTimeout <= 0 {
		o.OpenTimeout = 5 * time.Second
	}
	if o.MaxOpenTimeout <= 0 {
		o.MaxOpenTimeout = 60 * time.Second
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	if o.ByzantineFactor <= 0 || o.ByzantineFactor >= 1 {
		o.ByzantineFactor = 0.25
	}
	if o.SuspectThreshold <= 0 || o.SuspectThreshold >= 1 {
		o.SuspectThreshold = 0.5
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 64
	}
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// peer is one tracked peer's live state. All fields are guarded by the
// tracker mutex.
type peer struct {
	score       float64 // EWMA success rate in [0,1], optimistic start 1.0
	latencies   []time.Duration
	latIdx      int
	latFull     bool
	state       State
	consecFails int
	openedAt    time.Time
	cooldown    time.Duration
	dead        bool // last verdict was the failure detector's
	suspect     bool // a quorum vote went against this peer
	probing     bool // the single half-open probe slot is claimed

	scoreGauge *metrics.Gauge
	stateGauge *metrics.Gauge
}

// Tracker scores a set of peers as observed by one peer (the Owner).
// All methods are safe for concurrent use.
type Tracker struct {
	opts Options

	mu    sync.Mutex
	peers map[string]*peer
}

// New builds a tracker.
func New(opts Options) *Tracker {
	return &Tracker{opts: opts.withDefaults(), peers: make(map[string]*peer)}
}

// get returns the peer record, creating it (and binding its gauges) on
// first sight. Callers hold t.mu.
func (t *Tracker) get(id string) *peer {
	p, ok := t.peers[id]
	if !ok {
		p = &peer{
			score:      1.0,
			latencies:  make([]time.Duration, t.opts.LatencyWindow),
			cooldown:   t.opts.OpenTimeout,
			scoreGauge: t.opts.Registry.Gauge(metrics.Series("health_peer_score", "observer", t.opts.Owner, "peer", id)),
			stateGauge: t.opts.Registry.Gauge(metrics.Series("health_breaker_state", "observer", t.opts.Owner, "peer", id)),
		}
		p.scoreGauge.Set(p.score)
		t.peers[id] = p
	}
	return p
}

// advance applies the lazy open→half-open transition. Callers hold t.mu.
func (t *Tracker) advance(p *peer) {
	if p.state == Open && t.opts.Now().Sub(p.openedAt) >= p.cooldown {
		p.state = HalfOpen
		p.probing = false
		p.stateGauge.Set(float64(p.state))
	}
}

// ReportSuccess records a completed attempt. d <= 0 means the caller
// has no latency sample (e.g. an RPC-level success where only the
// verdict matters); the score still improves. A success closes an open
// or half-open breaker and halves the cooldown penalty.
func (t *Tracker) ReportSuccess(id string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.get(id)
	p.score += t.opts.Alpha * (1 - p.score)
	p.consecFails = 0
	p.dead = false
	p.probing = false
	if p.state != Closed {
		p.state = Closed
		p.cooldown /= 2
		if p.cooldown < t.opts.OpenTimeout {
			p.cooldown = t.opts.OpenTimeout
		}
	}
	if d > 0 {
		p.latencies[p.latIdx] = d
		p.latIdx++
		if p.latIdx == len(p.latencies) {
			p.latIdx = 0
			p.latFull = true
		}
	}
	p.scoreGauge.Set(p.score)
	p.stateGauge.Set(float64(p.state))
}

// ReportFailure records a failed attempt: the score decays, and enough
// consecutive failures open the breaker. A failure while half-open (a
// failed probe) or open re-opens with a doubled cooldown.
func (t *Tracker) ReportFailure(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.get(id)
	t.advance(p)
	p.score *= 1 - t.opts.Alpha
	p.consecFails++
	p.probing = false
	switch p.state {
	case Closed:
		if p.consecFails >= t.opts.FailureThreshold {
			t.openLocked(p, false)
		}
	case HalfOpen, Open:
		t.openLocked(p, true)
	}
	p.scoreGauge.Set(p.score)
	p.stateGauge.Set(float64(p.state))
}

// ReportDead records a failure-detector verdict: the breaker opens
// immediately and the peer is flagged dead until a successful probe.
func (t *Tracker) ReportDead(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.get(id)
	p.score *= 1 - t.opts.Alpha
	p.consecFails++
	p.probing = false
	p.dead = true
	t.openLocked(p, p.state != Closed)
	p.scoreGauge.Set(p.score)
	p.stateGauge.Set(float64(p.state))
}

// ReportByzantine records a quorum vote against the peer: it answered,
// so the breaker stays as it is, but the score takes the multiplicative
// penalty and the peer is flagged suspect.
func (t *Tracker) ReportByzantine(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.get(id)
	p.score *= t.opts.ByzantineFactor
	p.suspect = true
	p.scoreGauge.Set(p.score)
}

// openLocked moves a peer to Open; escalate doubles the cooldown
// (re-open after a failed probe). Callers hold t.mu.
func (t *Tracker) openLocked(p *peer, escalate bool) {
	if escalate {
		p.cooldown *= 2
		if p.cooldown > t.opts.MaxOpenTimeout {
			p.cooldown = t.opts.MaxOpenTimeout
		}
	}
	p.state = Open
	p.openedAt = t.opts.Now()
	p.stateGauge.Set(float64(p.state))
}

// Score reads the peer's EWMA success score (1.0 for unseen peers).
func (t *Tracker) Score(id string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[id]
	if !ok {
		return 1.0
	}
	return p.score
}

// State reads the peer's breaker state, applying the lazy cooldown
// transition (unseen peers are Closed).
func (t *Tracker) State(id string) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[id]
	if !ok {
		return Closed
	}
	t.advance(p)
	return p.state
}

// Usable reports whether selection may consider the peer at all: any
// state but Open. This is the policy.Scorer gate.
func (t *Tracker) Usable(id string) bool { return t.State(id) != Open }

// Suspect reports whether the peer's score has fallen below the
// selection threshold or it carries a byzantine verdict.
func (t *Tracker) Suspect(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[id]
	if !ok {
		return false
	}
	return p.suspect || p.score < t.opts.SuspectThreshold
}

// Admit asks permission to despatch to the peer. Closed peers are
// always admitted. A half-open peer admits exactly one caller at a time
// (the probe); needsProbe additionally reports whether the peer's last
// verdict was dead, in which case the caller should ping before
// committing real work to it. Open peers are refused.
func (t *Tracker) Admit(id string) (ok, needsProbe bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok2 := t.peers[id]
	if !ok2 {
		return true, false
	}
	t.advance(p)
	switch p.state {
	case Closed:
		return true, false
	case HalfOpen:
		if p.probing {
			return false, false
		}
		p.probing = true
		return true, p.dead
	default:
		return false, false
	}
}

// LatencyQuantile estimates the q-th quantile (0 < q < 1) of the
// peer's observed attempt latencies. ok is false until at least three
// samples exist.
func (t *Tracker) LatencyQuantile(id string, q float64) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, okP := t.peers[id]
	if !okP {
		return 0, false
	}
	n := p.latIdx
	if p.latFull {
		n = len(p.latencies)
	}
	if n < 3 {
		return 0, false
	}
	samples := make([]time.Duration, n)
	copy(samples, p.latencies[:n])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return samples[idx], true
}

// latencyP90Locked is Rank's tie-break key. Callers hold t.mu.
func (t *Tracker) latencyP90Locked(p *peer) (time.Duration, bool) {
	n := p.latIdx
	if p.latFull {
		n = len(p.latencies)
	}
	if n < 1 {
		return 0, false
	}
	samples := make([]time.Duration, n)
	copy(samples, p.latencies[:n])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(0.9 * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return samples[idx], true
}

// Rank orders candidate peers for selection. usable holds every
// non-open peer: descending score first; at equal scores, peers with
// latency history rank before unknown ones (ascending p90 among the
// known), and the stable sort keeps the caller's preference order among
// fully-unknown peers — so the first successful peer stays sticky.
// gated holds the open-breaker peers by descending score, the forced
// fallback when everything usable is exhausted.
func (t *Tracker) Rank(peers []string) (usable, gated []string) {
	type cand struct {
		id    string
		score float64
		p90   time.Duration
		known bool
		gated bool
	}
	t.mu.Lock()
	cands := make([]cand, 0, len(peers))
	for _, id := range peers {
		c := cand{id: id, score: 1.0}
		if p, ok := t.peers[id]; ok {
			t.advance(p)
			c.score = p.score
			c.p90, c.known = t.latencyP90Locked(p)
			c.gated = p.state == Open
		}
		cands = append(cands, c)
	}
	t.mu.Unlock()
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.known != b.known {
			return a.known
		}
		if a.known && b.known && a.p90 != b.p90 {
			return a.p90 < b.p90
		}
		return false
	})
	for _, c := range cands {
		if c.gated {
			gated = append(gated, c.id)
		} else {
			usable = append(usable, c.id)
		}
	}
	return usable, gated
}

// PeerHealth is one peer's externally visible health record.
type PeerHealth struct {
	Peer    string
	Score   float64
	State   State
	P50     time.Duration
	P90     time.Duration
	Dead    bool
	Suspect bool
}

// Snapshot lists every tracked peer, sorted by ID — the data behind the
// webstatus health table.
func (t *Tracker) Snapshot() []PeerHealth {
	t.mu.Lock()
	ids := make([]string, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	sort.Strings(ids)
	out := make([]PeerHealth, 0, len(ids))
	for _, id := range ids {
		t.mu.Lock()
		p := t.peers[id]
		t.advance(p)
		h := PeerHealth{
			Peer:    id,
			Score:   p.score,
			State:   p.state,
			Dead:    p.dead,
			Suspect: p.suspect || p.score < t.opts.SuspectThreshold,
		}
		t.mu.Unlock()
		h.P50, _ = t.LatencyQuantile(id, 0.5)
		h.P90, _ = t.LatencyQuantile(id, 0.9)
		out = append(out, h)
	}
	return out
}
