package health

import (
	"testing"
	"time"

	"consumergrid/internal/metrics"
)

// fakeClock advances only when told, making breaker cooldowns
// deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker(clk *fakeClock) *Tracker {
	return New(Options{
		Owner:       "test-observer",
		Registry:    metrics.NewRegistry(),
		Now:         clk.now,
		OpenTimeout: 100 * time.Millisecond,
	})
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := newTestTracker(clk)

	tr.ReportFailure("p")
	tr.ReportFailure("p")
	if got := tr.State("p"); got != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	tr.ReportFailure("p")
	if got := tr.State("p"); got != Open {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	if tr.Usable("p") {
		t.Error("open peer reported usable")
	}

	// Cooldown elapses: half-open, one probe slot.
	clk.advance(150 * time.Millisecond)
	if got := tr.State("p"); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if ok, _ := tr.Admit("p"); !ok {
		t.Fatal("half-open peer refused its probe")
	}
	if ok, _ := tr.Admit("p"); ok {
		t.Fatal("second concurrent probe admitted while half-open")
	}
	tr.ReportSuccess("p", 10*time.Millisecond)
	if got := tr.State("p"); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
}

func TestCooldownDoublesOnReopenAndHalvesOnClose(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := newTestTracker(clk)

	for i := 0; i < 3; i++ {
		tr.ReportFailure("p")
	}
	// Failed probe: cooldown doubles to 200ms, so 150ms is not enough.
	clk.advance(150 * time.Millisecond)
	tr.ReportFailure("p")
	clk.advance(150 * time.Millisecond)
	if got := tr.State("p"); got != Open {
		t.Fatalf("state 150ms after escalated re-open = %v, want open (cooldown doubled)", got)
	}
	clk.advance(100 * time.Millisecond)
	if got := tr.State("p"); got != HalfOpen {
		t.Fatalf("state after full doubled cooldown = %v, want half-open", got)
	}
	// Successful probe halves the penalty back to the base.
	tr.ReportSuccess("p", time.Millisecond)
	for i := 0; i < 3; i++ {
		tr.ReportFailure("p")
	}
	clk.advance(150 * time.Millisecond)
	if got := tr.State("p"); got != HalfOpen {
		t.Fatalf("cooldown did not decay after close: state = %v", got)
	}
}

func TestReportDeadOpensImmediately(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := newTestTracker(clk)

	tr.ReportDead("p")
	if got := tr.State("p"); got != Open {
		t.Fatalf("state after dead verdict = %v, want open", got)
	}
	// After the cooldown the peer must be probed, not trusted.
	clk.advance(150 * time.Millisecond)
	ok, needsProbe := tr.Admit("p")
	if !ok || !needsProbe {
		t.Fatalf("Admit after dead cooldown = (%v, %v), want (true, true)", ok, needsProbe)
	}
	tr.ReportSuccess("p", time.Millisecond)
	if tr.State("p") != Closed {
		t.Fatal("successful probe did not close a dead peer's breaker")
	}
	if _, needsProbe := tr.Admit("p"); needsProbe {
		t.Fatal("dead flag survived a successful probe")
	}
}

func TestByzantinePenaltyDropsScoreWithoutOpening(t *testing.T) {
	tr := newTestTracker(&fakeClock{t: time.Unix(0, 0)})

	tr.ReportByzantine("p")
	if got := tr.Score("p"); got != 0.25 {
		t.Fatalf("score after one byzantine verdict = %v, want 0.25", got)
	}
	if got := tr.State("p"); got != Closed {
		t.Fatalf("byzantine verdict opened the breaker: %v", got)
	}
	if !tr.Suspect("p") {
		t.Error("peer below threshold not flagged suspect")
	}
	tr.ReportByzantine("p")
	if got := tr.Score("p"); got != 0.0625 {
		t.Fatalf("score after two byzantine verdicts = %v, want 0.0625", got)
	}
}

func TestRankPrefersScoreThenKnownLatency(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := newTestTracker(clk)

	// a: seen and healthy with latency history; b: unseen; c: failing;
	// d: breaker open.
	tr.ReportSuccess("a", 5*time.Millisecond)
	tr.ReportFailure("c")
	for i := 0; i < 3; i++ {
		tr.ReportFailure("d")
	}

	usable, gated := tr.Rank([]string{"b", "c", "d", "a"})
	if len(gated) != 1 || gated[0] != "d" {
		t.Fatalf("gated = %v, want [d]", gated)
	}
	// a's post-success score (1.0) ties the unseen b, but a has latency
	// history so it ranks first; c's decayed score ranks last.
	if want := []string{"a", "b", "c"}; len(usable) != 3 ||
		usable[0] != want[0] || usable[1] != want[1] || usable[2] != want[2] {
		t.Fatalf("usable = %v, want %v", usable, want)
	}
}

func TestRankStableAmongUnknownPeers(t *testing.T) {
	tr := newTestTracker(&fakeClock{t: time.Unix(0, 0)})
	usable, _ := tr.Rank([]string{"w1", "w2", "w3"})
	if usable[0] != "w1" || usable[1] != "w2" || usable[2] != "w3" {
		t.Fatalf("unknown peers reordered: %v", usable)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	tr := newTestTracker(&fakeClock{t: time.Unix(0, 0)})
	if _, ok := tr.LatencyQuantile("p", 0.9); ok {
		t.Fatal("quantile reported with no samples")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		tr.ReportSuccess("p", d*time.Millisecond)
	}
	p50, ok := tr.LatencyQuantile("p", 0.5)
	if !ok || p50 < 40*time.Millisecond || p50 > 70*time.Millisecond {
		t.Errorf("p50 = %v (ok=%v), want ~50-60ms", p50, ok)
	}
	p90, ok := tr.LatencyQuantile("p", 0.9)
	if !ok || p90 < 90*time.Millisecond {
		t.Errorf("p90 = %v (ok=%v), want >= 90ms", p90, ok)
	}
}

func TestGaugesTrackStateAndScore(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := New(Options{Owner: "obs", Registry: reg, Now: clk.now})

	tr.ReportSuccess("p", time.Millisecond)
	state := reg.Gauge(metrics.Series("health_breaker_state", "observer", "obs", "peer", "p"))
	score := reg.Gauge(metrics.Series("health_peer_score", "observer", "obs", "peer", "p"))
	if state.Value() != 0 {
		t.Errorf("breaker gauge = %v, want 0 (closed)", state.Value())
	}
	if score.Value() != 1.0 {
		t.Errorf("score gauge = %v, want 1.0", score.Value())
	}
	tr.ReportDead("p")
	if state.Value() != 2 {
		t.Errorf("breaker gauge after dead = %v, want 2 (open)", state.Value())
	}
	if score.Value() >= 1.0 {
		t.Errorf("score gauge did not decay: %v", score.Value())
	}
}

func TestSnapshotListsPeers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := newTestTracker(clk)
	tr.ReportSuccess("b", time.Millisecond)
	tr.ReportDead("a")
	tr.ReportByzantine("z")

	snap := tr.Snapshot()
	if len(snap) != 3 || snap[0].Peer != "a" || snap[1].Peer != "b" || snap[2].Peer != "z" {
		t.Fatalf("snapshot order/content wrong: %+v", snap)
	}
	if snap[0].State != Open || !snap[0].Dead {
		t.Errorf("dead peer snapshot: %+v", snap[0])
	}
	if !snap[2].Suspect {
		t.Errorf("byzantine peer not suspect: %+v", snap[2])
	}
}
