package health

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Export serialises every peer's durable health state — score, breaker
// position, consecutive-failure count, cooldown penalty, and the
// dead/suspect flags — so a restarted daemon resumes distrusting the
// peers it had already learned about instead of re-paying the
// discovery cost of each bad donor. Latency rings and the half-open
// probe slot are deliberately dropped: they are short-horizon signals
// that would be stale by the time a supervisor restarts us.
func (t *Tracker) Export() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := binary.AppendUvarint(nil, uint64(len(t.peers)))
	for id, p := range t.peers {
		out = binary.AppendUvarint(out, uint64(len(id)))
		out = append(out, id...)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.score))
		out = binary.AppendUvarint(out, uint64(p.state))
		out = binary.AppendUvarint(out, uint64(p.consecFails))
		out = binary.AppendUvarint(out, uint64(p.cooldown))
		var flags byte
		if p.dead {
			flags |= 1
		}
		if p.suspect {
			flags |= 2
		}
		out = append(out, flags)
	}
	return out
}

// Restore merges an Export payload into the tracker. Open breakers
// restart their cooldown clock at restore time (the outage may have
// healed while we were down, and half-open probing will find out at
// the usual pace). Peers already tracked are overwritten. Returns how
// many peers were restored.
func (t *Tracker) Restore(b []byte) (int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, errors.New("health: bad peer count")
	}
	b = b[n:]
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.opts.Now()
	for i := uint64(0); i < count; i++ {
		idLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < idLen {
			return int(i), fmt.Errorf("health: peer %d: truncated id", i)
		}
		id := string(b[n : n+int(idLen)])
		b = b[n+int(idLen):]
		if len(b) < 8 {
			return int(i), fmt.Errorf("health: peer %s: truncated score", id)
		}
		score := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		state, n1 := binary.Uvarint(b)
		b = b[n1:]
		fails, n2 := binary.Uvarint(b)
		b = b[n2:]
		cooldown, n3 := binary.Uvarint(b)
		b = b[n3:]
		if n1 <= 0 || n2 <= 0 || n3 <= 0 || len(b) < 1 {
			return int(i), fmt.Errorf("health: peer %s: truncated record", id)
		}
		flags := b[0]
		b = b[1:]
		if math.IsNaN(score) || score < 0 || score > 1 || State(state) > Open {
			return int(i), fmt.Errorf("health: peer %s: implausible record", id)
		}
		p := t.get(id)
		p.score = score
		p.state = State(state)
		p.consecFails = int(fails)
		p.cooldown = time.Duration(cooldown)
		if p.cooldown < t.opts.OpenTimeout {
			p.cooldown = t.opts.OpenTimeout
		}
		if p.cooldown > t.opts.MaxOpenTimeout {
			p.cooldown = t.opts.MaxOpenTimeout
		}
		p.dead = flags&1 != 0
		p.suspect = flags&2 != 0
		p.probing = false
		if p.state == Open {
			p.openedAt = now
		}
		p.scoreGauge.Set(p.score)
		p.stateGauge.Set(float64(p.state))
	}
	return int(count), nil
}
