// Binary wire codec v1: the length-prefixed framing that replaces the
// XML envelope on negotiated connections. The outer shape matches the
// XML framing — two uvarint lengths, an envelope block, then the raw
// payload — so both codecs share the size limits and the bounded
// payload reader; only the envelope bytes differ:
//
//	frame    := uvarint envLen | uvarint payloadLen | envelope | payload
//	envelope := uvarint stream
//	          | uvarint len(kind)  | kind
//	          | uvarint nHeaders
//	          | { uvarint len(key) | key | uvarint len(value) | value }*
//
// Headers are written in sorted key order, so encoding is canonical: a
// Message has exactly one binary frame, which is what lets the golden
// conformance fixtures pin the format byte-for-byte and the fuzz
// harness assert the encode(decode(x)) fixpoint.
//
// Unlike the XML envelope, the binary envelope imposes no character
// repertoire: any byte sequence round-trips. Applications that may be
// downgraded to an XML session should still keep kinds and headers
// XML-safe; WriteMessage enforces that on the fallback path exactly as
// before.
//
// Decoding parses the envelope in place from the pooled slab — kind and
// header keys are interned from a small fixed vocabulary, so the
// steady-state pipe.data frame decodes with a single allocation (the
// payload, which must outlive the slab).
package jxtaserve

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
)

// ErrBadFrame is returned when a binary envelope is structurally
// invalid: truncated varints, lengths overrunning the envelope, or
// trailing bytes after the last header.
var ErrBadFrame = errors.New("jxtaserve: malformed binary envelope")

// WriteBinaryMessage frames m onto w in binary v1. The payload is
// written straight from m.Payload — no intermediate copy — and the
// envelope is rendered into a pooled scratch buffer.
func WriteBinaryMessage(w io.Writer, m *Message) error {
	if m.Kind == "" {
		return errors.New("jxtaserve: message without kind")
	}
	scratch := envPool.Get().(*envScratch)
	defer func() {
		scratch.buf.Reset()
		scratch.keys = scratch.keys[:0]
		envPool.Put(scratch)
	}()
	for k := range m.Headers {
		scratch.keys = append(scratch.keys, k)
	}
	sortStrings(scratch.keys)

	buf := &scratch.buf
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		n := binary.PutUvarint(tmp[:], x)
		buf.Write(tmp[:n])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		buf.WriteString(s)
	}
	putUvarint(m.Stream)
	putString(m.Kind)
	putUvarint(uint64(len(scratch.keys)))
	for _, k := range scratch.keys {
		putString(k)
		putString(m.Headers[k])
	}

	if buf.Len() > maxEnvelopeLen || len(m.Payload) > maxPayloadLen {
		return ErrFrameTooLarge
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(buf.Len()))
	n += binary.PutUvarint(hdr[n:], uint64(len(m.Payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	if len(m.Payload) > 0 {
		if _, err := w.Write(m.Payload); err != nil {
			return err
		}
	}
	wireMsgsOut.Inc()
	wireBytesOut.Add(int64(n) + int64(buf.Len()) + int64(len(m.Payload)))
	return nil
}

// ReadBinaryMessage reads one binary v1 frame from r. The envelope is
// parsed from a pooled slab; only strings that must outlive the slab
// are copied out, with kinds and header keys interned because they come
// from a tiny recurring vocabulary.
func ReadBinaryMessage(r io.Reader) (*Message, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = &byteReader{r: r}
	}
	envLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	payloadLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if envLen > maxEnvelopeLen || payloadLen > maxPayloadLen {
		return nil, ErrFrameTooLarge
	}
	slab := envSlabPool.Get().(*[]byte)
	defer envSlabPool.Put(slab)
	if uint64(cap(*slab)) < envLen {
		*slab = make([]byte, envLen)
	}
	env := (*slab)[:envLen]
	if _, err := io.ReadFull(r, env); err != nil {
		return nil, err
	}

	stream, env, err := envUvarint(env)
	if err != nil {
		return nil, err
	}
	kindBytes, env, err := envBytes(env)
	if err != nil {
		return nil, err
	}
	if len(kindBytes) == 0 {
		return nil, errors.New("jxtaserve: envelope without kind")
	}
	nHeaders, env, err := envUvarint(env)
	if err != nil {
		return nil, err
	}
	// Each header needs at least two length bytes, so the count can never
	// legitimately exceed half the remaining envelope — reject early
	// rather than sizing a map from a lying prefix.
	if nHeaders > uint64(len(env))/2 {
		return nil, ErrBadFrame
	}
	m := &Message{Kind: internString(kindBytes), Stream: stream}
	if nHeaders > 0 {
		m.Headers = make(map[string]string, nHeaders)
		for i := uint64(0); i < nHeaders; i++ {
			var k, v []byte
			if k, env, err = envBytes(env); err != nil {
				return nil, err
			}
			if v, env, err = envBytes(env); err != nil {
				return nil, err
			}
			m.Headers[internString(k)] = string(v)
		}
	}
	if len(env) != 0 {
		return nil, ErrBadFrame
	}
	if payloadLen > 0 {
		p, err := readPayload(r, payloadLen)
		if err != nil {
			return nil, err
		}
		m.Payload = p
	}
	wireMsgsIn.Inc()
	wireBytesIn.Add(int64(envLen) + int64(payloadLen))
	return m, nil
}

// envUvarint decodes one varint from the envelope slice.
func envUvarint(env []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(env)
	if n <= 0 {
		return 0, nil, ErrBadFrame
	}
	return x, env[n:], nil
}

// envBytes decodes one length-prefixed byte string from the envelope
// slice, returning a view into it (valid only until the slab is pooled).
func envBytes(env []byte) ([]byte, []byte, error) {
	n, env, err := envUvarint(env)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(env)) {
		return nil, nil, ErrBadFrame
	}
	return env[:n], env[n:], nil
}

// internTab maps the recurring envelope vocabulary (kinds, header keys)
// to stable strings so decoding doesn't allocate one per frame. Header
// values stay uncached: they are high-cardinality and would flush the
// table (same reasoning as the xmlSafe verdict cache).
var (
	internMu  sync.RWMutex
	internTab = make(map[string]string, 64)
)

func internString(b []byte) string {
	if len(b) > maxCachedVerdictLen {
		return string(b)
	}
	internMu.RLock()
	s, ok := internTab[string(b)] // no alloc: compiler-recognised map lookup
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) >= maxCachedVerdicts {
		// A hostile peer spraying unique kinds must not grow the table
		// without bound; dropping it keeps the footprint fixed.
		internTab = make(map[string]string, 64)
	}
	internTab[s] = s
	internMu.Unlock()
	return s
}

// sortStrings is an allocation-free insertion sort for the handful of
// header keys a frame carries (sort.Strings forces the slice header to
// escape; envelope scratch is pooled precisely to avoid that).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
