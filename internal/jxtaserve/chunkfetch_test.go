package jxtaserve

import (
	"errors"
	"testing"
	"time"

	"consumergrid/internal/types"
)

// The chunk-fetch conversation and the manifest pipe frame, exercised
// over the raw transport and over the mux (where each fetch is one
// stream on the shared connection).

func testChunkFetch(t *testing.T, tr Transport) {
	holder, fetcher := newHostPair(t, tr)
	chunks := map[string][]byte{
		"dg-1": []byte("first chunk"),
		"dg-2": {0, 1, 2, 3, 0xFF},
	}
	holder.SetChunkSource(func(digest string) ([]byte, bool) {
		data, ok := chunks[digest]
		return data, ok
	})

	for digest, want := range chunks {
		got, err := fetcher.FetchChunk(holder.Addr(), digest, 2*time.Second)
		if err != nil {
			t.Fatalf("fetch %s: %v", digest, err)
		}
		if string(got) != string(want) {
			t.Fatalf("fetch %s: got %q want %q", digest, got, want)
		}
	}

	// A miss is a typed RPCError, not a broken connection.
	var rpcErr *RPCError
	if _, err := fetcher.FetchChunk(holder.Addr(), "dg-absent", 2*time.Second); !errors.As(err, &rpcErr) {
		t.Fatalf("miss: err = %v, want *RPCError", err)
	}

	// A host with no source installed refuses rather than hangs.
	holder.SetChunkSource(nil)
	if _, err := fetcher.FetchChunk(holder.Addr(), "dg-1", 2*time.Second); !errors.As(err, &rpcErr) {
		t.Fatalf("no source: err = %v, want *RPCError", err)
	}
}

func TestChunkFetchTCP(t *testing.T) { testChunkFetch(t, TCP{}) }
func TestChunkFetchMux(t *testing.T) {
	tr := NewMux(TCP{}, WireOptions{Mux: true, Binary: true})
	defer tr.Close()
	testChunkFetch(t, tr)
}

func TestChunkFetchDialError(t *testing.T) {
	h, err := NewHost("p", TCP{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var dialErr *DialError
	if _, err := h.FetchChunk("127.0.0.1:1", "dg", time.Second); !errors.As(err, &dialErr) {
		t.Fatalf("err = %v, want *DialError", err)
	}
}

// TestPipeManifestDelivery drives a manifest through a bound pipe: the
// receiving host's resolver materialises the digests and the pipe
// delivers them in order, exactly as if the bytes had been streamed.
func TestPipeManifestDelivery(t *testing.T) {
	recv, send := newHostPair(t, TCP{})
	payloads := make(map[string][]byte)
	mustPayload := func(v float64) (digest string, manifestEntry string) {
		p, err := types.Marshal(&types.Spectrum{Resolution: 1, Amplitudes: []float64{v}})
		if err != nil {
			t.Fatal(err)
		}
		dg := "dg-" + string(rune('a'+len(payloads)))
		payloads[dg] = p
		return dg, dg
	}
	dgA, _ := mustPayload(1)
	dgB, _ := mustPayload(2)

	recv.SetManifestResolver(func(manifest []byte) ([][]byte, error) {
		// The test manifest payload is a comma-free digest list: one
		// digest per 4 bytes ("dg-a"). Real services install the
		// chunkstore decoder here.
		var out [][]byte
		for i := 0; i+4 <= len(manifest); i += 4 {
			dg := string(manifest[i : i+4])
			p, ok := payloads[dg]
			if !ok {
				return nil, errors.New("unknown digest " + dg)
			}
			out = append(out, p)
		}
		return out, nil
	})

	pipe, ad, err := recv.OpenInput("farm/manifest/in", 4)
	if err != nil {
		t.Fatal(err)
	}
	pipe.ExpectEOFs(1)
	out, err := send.BindOutput(ad)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.SendManifest([]byte(dgA + dgB)); err != nil {
		t.Fatal(err)
	}
	out.Close()

	var got []types.Data
	for d := range pipe.C {
		got = append(got, d)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d data, want 2", len(got))
	}
	for i, want := range []float64{1, 2} {
		sp, ok := got[i].(*types.Spectrum)
		if !ok || sp.Amplitudes[0] != want {
			t.Fatalf("datum %d = %#v, want amplitude %v", i, got[i], want)
		}
	}
}

// TestPipeManifestWithoutResolver asserts the receiver severs the pipe
// (counting the producer's EOF) instead of wedging when a manifest
// arrives and no resolver is installed — the failure mode of a
// misbehaving producer that skipped capability negotiation.
func TestPipeManifestWithoutResolver(t *testing.T) {
	recv, send := newHostPair(t, TCP{})
	pipe, ad, err := recv.OpenInput("farm/no-resolver/in", 1)
	if err != nil {
		t.Fatal(err)
	}
	pipe.ExpectEOFs(1)
	out, err := send.BindOutput(ad)
	if err != nil {
		t.Fatal(err)
	}
	out.SendManifest([]byte("anything"))
	defer out.Close()

	select {
	case _, ok := <-pipe.C:
		if ok {
			t.Fatal("manifest delivered data with no resolver installed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipe never closed after unresolvable manifest")
	}
}
