package jxtaserve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzMessageRoundTrip drives arbitrary kinds, headers, and payloads
// through WriteMessage/ReadMessage. Encodable messages must decode back
// identically; unencodable ones (XML-unsafe strings) must be rejected at
// write time rather than producing frames the reader chokes on.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add("rpc", "method", "triana.run", []byte("payload"))
	f.Add(KindPipeData, "pipe", "job/7/in", []byte{0, 1, 2, 255})
	f.Add(KindPipeEOF, "", "", []byte(nil))
	f.Add("rpc.error", "error", "no such method", []byte(nil))
	f.Add("k", "h", "value with <xml> & \"quotes\"", []byte("x"))
	f.Add("k\x00bad", "h", "v", []byte(nil))          // NUL in kind
	f.Add("k", "h\xff", "v", []byte(nil))             // invalid UTF-8 name
	f.Add("k", "h", "ctrl\x01char", []byte(nil))      // control char value
	f.Add("k", "tab\tnewline\n", "cr\r", []byte(nil)) // allowed whitespace

	f.Fuzz(func(t *testing.T, kind, hname, hval string, payload []byte) {
		m := &Message{Kind: kind, Payload: payload}
		if hname != "" || hval != "" {
			m.SetHeader(hname, hval)
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return // rejected at write time: nothing reaches the wire
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("wrote ok but read failed: %v (kind=%q hname=%q hval=%q)", err, kind, hname, hval)
		}
		if got.Kind != m.Kind {
			t.Fatalf("kind: got %q want %q", got.Kind, m.Kind)
		}
		if got.Header(hname) != m.Header(hname) {
			t.Fatalf("header %q: got %q want %q", hname, got.Header(hname), m.Header(hname))
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("payload mismatch: got %d bytes want %d", len(got.Payload), len(m.Payload))
		}
	})
}

// FuzzReadMessage feeds raw bytes to the frame reader: it must return an
// error or a message, never panic or over-allocate on lying prefixes.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	WriteMessage(&buf, &Message{Kind: "rpc", Headers: map[string]string{"method": "x"}, Payload: []byte("p")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge varint
	f.Add([]byte{2, 200, '<', 'm'})                                           // payload len 200, truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

// FuzzBinaryMessageRoundTrip drives arbitrary kinds, headers, payloads
// and stream IDs through the binary codec. Unlike XML there is no
// character repertoire to reject: everything but an empty kind must
// round-trip exactly.
func FuzzBinaryMessageRoundTrip(f *testing.F) {
	f.Add("rpc", "method", "triana.run", []byte("payload"), uint64(0))
	f.Add(KindPipeData, "pipe", "job/7/in", []byte{0, 1, 2, 255}, uint64(3))
	f.Add(KindPipeEOF, "", "", []byte(nil), uint64(1<<40))
	f.Add("k\x00raw", "h\xff", "ctrl\x01<xml>&", []byte("x"), uint64(7)) // XML-unsafe: binary-only ground

	f.Fuzz(func(t *testing.T, kind, hname, hval string, payload []byte, stream uint64) {
		m := &Message{Kind: kind, Payload: payload, Stream: stream}
		if hname != "" || hval != "" {
			m.SetHeader(hname, hval)
		}
		var buf bytes.Buffer
		if err := WriteBinaryMessage(&buf, m); err != nil {
			if kind == "" {
				return // the one rejection the binary codec makes
			}
			t.Fatalf("binary encode rejected encodable message: %v", err)
		}
		got, err := ReadBinaryMessage(&buf)
		if err != nil {
			t.Fatalf("wrote ok but read failed: %v (kind=%q hname=%q hval=%q)", err, kind, hname, hval)
		}
		if got.Kind != m.Kind || got.Stream != m.Stream {
			t.Fatalf("identity: got (%q,%d) want (%q,%d)", got.Kind, got.Stream, m.Kind, m.Stream)
		}
		if got.Header(hname) != m.Header(hname) {
			t.Fatalf("header %q: got %q want %q", hname, got.Header(hname), m.Header(hname))
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("payload mismatch: got %d bytes want %d", len(got.Payload), len(m.Payload))
		}
		if buf.Len() != 0 {
			t.Fatalf("decoder left %d trailing bytes unread", buf.Len())
		}
	})
}

// FuzzReadBinaryMessage feeds raw bytes to the binary decoder, seeded
// with the golden fixtures plus truncated and bit-flipped variants. The
// decoder must never panic, never allocate past the declared (bounded)
// lengths, and any successfully decoded message must be a fixpoint:
// re-encoding it yields bytes that decode to the same message.
func FuzzReadBinaryMessage(f *testing.F) {
	for _, tc := range goldenCases() {
		var buf bytes.Buffer
		if err := WriteBinaryMessage(&buf, tc.msg); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(append([]byte(nil), frame...))
		if len(frame) > 2 {
			f.Add(append([]byte(nil), frame[:len(frame)/2]...)) // truncated
			flipped := append([]byte(nil), frame...)
			flipped[len(flipped)/3] ^= 0x40 // bit-flipped mid-envelope
			f.Add(flipped)
			flipped2 := append([]byte(nil), frame...)
			flipped2[0] ^= 0x80 // varint length corrupted
			f.Add(flipped2)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge varint
	f.Add([]byte{4, 0, 0, 3, 'a', 'b'})                                       // header count lies
	f.Add([]byte{3, 200, 0, 1, 'k'})                                          // payload len 200, absent

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinaryMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil message with nil error")
		}
		// No over-allocation past the declared lengths: everything the
		// decoder retained must fit inside the input that actually arrived.
		if len(m.Payload) > len(data) {
			t.Fatalf("payload %d bytes exceeds %d-byte input", len(m.Payload), len(data))
		}
		// Fixpoint: encode(decode(x)) must decode back to the same message.
		var buf bytes.Buffer
		if err := WriteBinaryMessage(&buf, m); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		again, err := ReadBinaryMessage(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		assertMessagesEqual(t, again, m)
	})
}

// TestReadBinaryMessageRejects pins the decoder's structural checks.
func TestReadBinaryMessageRejects(t *testing.T) {
	valid := func(m *Message) []byte {
		var buf bytes.Buffer
		if err := WriteBinaryMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Run("trailing junk in envelope", func(t *testing.T) {
		frame := valid(&Message{Kind: "k"})
		// Grow the declared envelope length by one and append a junk byte
		// inside it: the decoder must notice the unconsumed tail.
		grown := append([]byte{frame[0] + 1}, frame[1:]...)
		grown = append(grown, 0x00)
		if _, err := ReadBinaryMessage(bytes.NewReader(grown)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("empty kind", func(t *testing.T) {
		if err := WriteBinaryMessage(io.Discard, &Message{}); err == nil {
			t.Fatal("encoded a message without kind")
		}
		// envLen=2, payloadLen=0, stream=0, kindLen=0
		if _, err := ReadBinaryMessage(bytes.NewReader([]byte{2, 0, 0, 0})); err == nil {
			t.Fatal("decoded an envelope without kind")
		}
	})
	t.Run("oversize envelope", func(t *testing.T) {
		var hdr [binary.MaxVarintLen64 + 1]byte
		n := binary.PutUvarint(hdr[:], maxEnvelopeLen+1)
		hdr[n] = 0 // payloadLen = 0
		n++
		if _, err := ReadBinaryMessage(bytes.NewReader(hdr[:n])); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("lying payload length", func(t *testing.T) {
		frame := valid(&Message{Kind: "k", Payload: make([]byte, 4<<20)})
		if _, err := ReadBinaryMessage(bytes.NewReader(frame[:64])); err == nil {
			t.Fatal("truncated frame decoded successfully")
		}
	})
}

func TestWriteMessageRejectsXMLUnsafeStrings(t *testing.T) {
	cases := []*Message{
		{Kind: "k\x00"},
		{Kind: "k", Headers: map[string]string{"h\x02": "v"}},
		{Kind: "k", Headers: map[string]string{"h": "\xff\xfe"}},
		{Kind: "k", Headers: map[string]string{"h": string(rune(0xFFFF))}},
	}
	for i, m := range cases {
		if err := WriteMessage(io.Discard, m); !errors.Is(err, ErrBadHeader) {
			t.Errorf("case %d: err = %v, want ErrBadHeader", i, err)
		}
	}
}

// TestReadMessageLyingPayloadLength: a frame claiming a huge payload but
// delivering few bytes must fail with an IO error, not exhaust memory.
func TestReadMessageLyingPayloadLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: "k", Payload: make([]byte, 4<<20)}); err != nil {
		t.Fatal(err)
	}
	// Truncate: keep the header and a sliver of payload.
	raw := buf.Bytes()[:64]
	_, err := ReadMessage(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("truncated frame decoded successfully")
	}
}
