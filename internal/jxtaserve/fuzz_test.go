package jxtaserve

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzMessageRoundTrip drives arbitrary kinds, headers, and payloads
// through WriteMessage/ReadMessage. Encodable messages must decode back
// identically; unencodable ones (XML-unsafe strings) must be rejected at
// write time rather than producing frames the reader chokes on.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add("rpc", "method", "triana.run", []byte("payload"))
	f.Add(KindPipeData, "pipe", "job/7/in", []byte{0, 1, 2, 255})
	f.Add(KindPipeEOF, "", "", []byte(nil))
	f.Add("rpc.error", "error", "no such method", []byte(nil))
	f.Add("k", "h", "value with <xml> & \"quotes\"", []byte("x"))
	f.Add("k\x00bad", "h", "v", []byte(nil))          // NUL in kind
	f.Add("k", "h\xff", "v", []byte(nil))             // invalid UTF-8 name
	f.Add("k", "h", "ctrl\x01char", []byte(nil))      // control char value
	f.Add("k", "tab\tnewline\n", "cr\r", []byte(nil)) // allowed whitespace

	f.Fuzz(func(t *testing.T, kind, hname, hval string, payload []byte) {
		m := &Message{Kind: kind, Payload: payload}
		if hname != "" || hval != "" {
			m.SetHeader(hname, hval)
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return // rejected at write time: nothing reaches the wire
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("wrote ok but read failed: %v (kind=%q hname=%q hval=%q)", err, kind, hname, hval)
		}
		if got.Kind != m.Kind {
			t.Fatalf("kind: got %q want %q", got.Kind, m.Kind)
		}
		if got.Header(hname) != m.Header(hname) {
			t.Fatalf("header %q: got %q want %q", hname, got.Header(hname), m.Header(hname))
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("payload mismatch: got %d bytes want %d", len(got.Payload), len(m.Payload))
		}
	})
}

// FuzzReadMessage feeds raw bytes to the frame reader: it must return an
// error or a message, never panic or over-allocate on lying prefixes.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	WriteMessage(&buf, &Message{Kind: "rpc", Headers: map[string]string{"method": "x"}, Payload: []byte("p")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge varint
	f.Add([]byte{2, 200, '<', 'm'})                                           // payload len 200, truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

func TestWriteMessageRejectsXMLUnsafeStrings(t *testing.T) {
	cases := []*Message{
		{Kind: "k\x00"},
		{Kind: "k", Headers: map[string]string{"h\x02": "v"}},
		{Kind: "k", Headers: map[string]string{"h": "\xff\xfe"}},
		{Kind: "k", Headers: map[string]string{"h": string(rune(0xFFFF))}},
	}
	for i, m := range cases {
		if err := WriteMessage(io.Discard, m); !errors.Is(err, ErrBadHeader) {
			t.Errorf("case %d: err = %v, want ErrBadHeader", i, err)
		}
	}
}

// TestReadMessageLyingPayloadLength: a frame claiming a huge payload but
// delivering few bytes must fail with an IO error, not exhaust memory.
func TestReadMessageLyingPayloadLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: "k", Payload: make([]byte, 4<<20)}); err != nil {
		t.Fatal(err)
	}
	// Truncate: keep the header and a sliver of payload.
	raw := buf.Bytes()[:64]
	_, err := ReadMessage(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("truncated frame decoded successfully")
	}
}
