package jxtaserve

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-frame conformance suite pins both wire formats byte for
// byte: each representative Message has one committed fixture per codec
// under testdata/golden, and any edit that changes what either codec
// puts on the wire fails here before it can strand deployed peers.
// Regenerate deliberately with:
//
//	go test ./internal/jxtaserve -run TestGoldenFrames -update

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// goldenCases are the representative messages. Headers and kinds stay
// XML-safe so the same Message pins both codecs; binary-only behaviour
// (arbitrary bytes in headers) is covered by the fuzz targets.
func goldenCases() []struct {
	name string
	msg  *Message
} {
	long := bytes.Repeat([]byte("0123456789abcdef"), 16) // 256-byte value
	return []struct {
		name string
		msg  *Message
	}{
		{"empty", &Message{Kind: KindPipeEOF}},
		{"max-header", &Message{
			Kind: "rpc",
			Headers: map[string]string{
				"method":  "triana.run",
				"job":     "job-000042",
				"from":    "peer-7",
				"attempt": "3",
				"long":    string(long),
				"escaped": `a<b & "c" 'd' > e`,
			},
			Payload: []byte("body"),
		}},
		{"binary-payload", &Message{
			Kind:    KindPipeData,
			Headers: map[string]string{"pipe": "farm/out"},
			Payload: func() []byte {
				p := make([]byte, 256)
				for i := range p {
					p[i] = byte(i)
				}
				return p
			}(),
		}},
		{"unicode-headers", &Message{
			Kind:    "rpc",
			Headers: map[string]string{"méthode": "συνάρτηση", "名前": "関数🛰"},
			Payload: []byte("π"),
		}},
		{"stream-tagged", &Message{
			Kind:    KindPipeData,
			Stream:  42,
			Headers: map[string]string{"pipe": "farm/in"},
			Payload: []byte{1, 2, 3},
		}},
		{"chunk-fetch", &Message{
			Kind: KindChunkFetch,
			Headers: map[string]string{
				"digest": "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
				"from":   "donor-3",
			},
		}},
		{"chunk-data", &Message{
			Kind:    KindChunkData,
			Stream:  7,
			Headers: map[string]string{"digest": "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"},
			Payload: []byte("the chunk bytes, verbatim"),
		}},
		{"pipe-manifest", &Message{
			Kind:    KindPipeManifest,
			Headers: map[string]string{"pipe": "farm/ctrl/1/c0/a0/in"},
			// A hand-laid chunkstore manifest payload: version 1, origin
			// "o", one item with digest "d", one ring addr "r", no peers.
			// Laid out literally so this fixture does not depend on the
			// chunkstore encoder.
			Payload: []byte{1, 1, 'o', 1, 1, 'd', 1, 1, 'r', 0},
		}},
	}
}

// goldenCodecs pairs each codec with its fixture suffix.
var goldenCodecs = []struct {
	name   string
	encode func(*bytes.Buffer, *Message) error
	decode func(*bytes.Buffer) (*Message, error)
}{
	{"xml",
		func(b *bytes.Buffer, m *Message) error { return WriteMessage(b, m) },
		func(b *bytes.Buffer) (*Message, error) { return ReadMessage(b) }},
	{"bin",
		func(b *bytes.Buffer, m *Message) error { return WriteBinaryMessage(b, m) },
		func(b *bytes.Buffer) (*Message, error) { return ReadBinaryMessage(b) }},
}

func goldenPath(caseName, codec string) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s.%s.frame", caseName, codec))
}

func TestGoldenFrames(t *testing.T) {
	for _, tc := range goldenCases() {
		for _, codec := range goldenCodecs {
			t.Run(tc.name+"/"+codec.name, func(t *testing.T) {
				var buf bytes.Buffer
				if err := codec.encode(&buf, tc.msg); err != nil {
					t.Fatalf("encode: %v", err)
				}
				path := goldenPath(tc.name, codec.name)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing fixture (run with -update to create): %v", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("encoding drifted from committed fixture %s:\n got %q\nwant %q",
						path, buf.Bytes(), want)
				}
				// The fixture must decode back to the original message.
				got, err := codec.decode(bytes.NewBuffer(want))
				if err != nil {
					t.Fatalf("decode fixture: %v", err)
				}
				assertMessagesEqual(t, got, tc.msg)
			})
		}
	}
}

// TestGoldenFramesCrossCodec decodes each case through both codecs and
// checks the two codecs agree on the resulting Message — the property
// that lets a session downgrade from binary to XML without changing
// application-visible semantics.
func TestGoldenFramesCrossCodec(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			var xmlBuf, binBuf bytes.Buffer
			if err := WriteMessage(&xmlBuf, tc.msg); err != nil {
				t.Fatal(err)
			}
			if err := WriteBinaryMessage(&binBuf, tc.msg); err != nil {
				t.Fatal(err)
			}
			fromXML, err := ReadMessage(&xmlBuf)
			if err != nil {
				t.Fatal(err)
			}
			fromBin, err := ReadBinaryMessage(&binBuf)
			if err != nil {
				t.Fatal(err)
			}
			assertMessagesEqual(t, fromXML, fromBin)
		})
	}
}

// TestGoldenBinaryFramesCanonical re-encodes each decoded binary fixture
// and requires the identical bytes: sorted header keys make the binary
// encoding canonical, which the fuzz fixpoint target relies on.
func TestGoldenBinaryFramesCanonical(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			var first bytes.Buffer
			if err := WriteBinaryMessage(&first, tc.msg); err != nil {
				t.Fatal(err)
			}
			decoded, err := ReadBinaryMessage(bytes.NewBuffer(append([]byte(nil), first.Bytes()...)))
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := WriteBinaryMessage(&second, decoded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("encode(decode(x)) != x:\n first %q\nsecond %q", first.Bytes(), second.Bytes())
			}
		})
	}
}

func assertMessagesEqual(t *testing.T, got, want *Message) {
	t.Helper()
	if got.Kind != want.Kind {
		t.Fatalf("kind: got %q want %q", got.Kind, want.Kind)
	}
	if got.Stream != want.Stream {
		t.Fatalf("stream: got %d want %d", got.Stream, want.Stream)
	}
	if len(got.Headers) != len(want.Headers) {
		t.Fatalf("headers: got %d entries want %d (%v vs %v)",
			len(got.Headers), len(want.Headers), got.Headers, want.Headers)
	}
	for k, v := range want.Headers {
		if got.Headers[k] != v {
			t.Fatalf("header %q: got %q want %q", k, got.Headers[k], v)
		}
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("payload: got %d bytes want %d", len(got.Payload), len(want.Payload))
	}
}
