package jxtaserve

import (
	"fmt"
	"sync"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/types"
)

// Host is a peer's endpoint in the pipe network: it listens on one
// transport address, owns the peer's advertised input pipes, and
// dispatches RPC requests to registered handlers. It corresponds to the
// JXTAServe service endpoint of §3.4: "Triana services are run as
// JXTAServe services and their input and output nodes are advertised as
// JXTAServe input and output pipes."
type Host struct {
	peerID    string
	transport Transport
	listener  Listener

	mu       sync.Mutex
	inputs   map[string]*InputPipe // by pipe name
	handlers map[string]Handler    // by rpc method
	quiesced map[string]bool       // methods refused while draining
	source   ChunkSource           // answers chunk.fetch conns
	resolver ManifestResolver      // materialises pipe.manifest frames
	closed   bool
	wg       sync.WaitGroup
	// DefaultTTL is the advert lifetime attached to OpenInput adverts;
	// zero means no expiry.
	DefaultTTL time.Duration
}

// Handler serves one RPC method. It receives the request and returns the
// reply payload; a non-nil error is reported to the caller as KindRPCError.
type Handler func(req *Message) (*Message, error)

// ChunkSource answers chunk.fetch lookups from local storage. The
// returned bytes are shipped verbatim; fetchers verify them against the
// digest, so a source never needs to be trusted.
type ChunkSource func(digest string) ([]byte, bool)

// ManifestResolver turns a pipe.manifest payload into the ordered
// marshalled data payloads it names — the donor-side fetch ladder. A
// service installs it when its data tier is enabled; a pipe producer
// must not send manifests to hosts that have not advertised one.
type ManifestResolver func(manifest []byte) ([][]byte, error)

// NewHost starts a host for peerID listening at addr on the transport.
func NewHost(peerID string, tr Transport, addr string) (*Host, error) {
	if peerID == "" {
		return nil, fmt.Errorf("jxtaserve: empty peer ID")
	}
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	h := &Host{
		peerID:    peerID,
		transport: tr,
		listener:  l,
		inputs:    make(map[string]*InputPipe),
		handlers:  make(map[string]Handler),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// PeerID reports the hosting peer's identity.
func (h *Host) PeerID() string { return h.peerID }

// Addr reports the dialable address of this host.
func (h *Host) Addr() string { return h.listener.Addr() }

// Close shuts the listener and every open input pipe.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	pipes := make([]*InputPipe, 0, len(h.inputs))
	for _, p := range h.inputs {
		pipes = append(pipes, p)
	}
	h.mu.Unlock()
	err := h.listener.Close()
	for _, p := range pipes {
		p.Close()
	}
	h.wg.Wait()
	return err
}

func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.listener.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.serveConn(conn)
		}()
	}
}

// serveConn reads the first message to classify the connection as a pipe
// binding or an RPC exchange.
func (h *Host) serveConn(conn Conn) {
	defer conn.Close()
	first, err := conn.Recv()
	if err != nil {
		return
	}
	switch first.Kind {
	case KindPipeBind:
		h.servePipe(conn, first.Header("pipe"))
	case KindRPC:
		h.serveRPC(conn, first)
	case KindChunkFetch:
		h.serveChunkFetch(conn, first)
	default:
		conn.Send(&Message{Kind: KindRPCError,
			Headers: map[string]string{"error": "unexpected kind " + first.Kind}})
	}
}

func (h *Host) servePipe(conn Conn, name string) {
	h.mu.Lock()
	pipe := h.inputs[name]
	h.mu.Unlock()
	if pipe == nil {
		conn.Send(&Message{Kind: KindRPCError,
			Headers: map[string]string{"error": "no such pipe " + name}})
		return
	}
	// Acknowledge the bind so the sender knows the pipe resolved.
	if err := conn.Send(&Message{Kind: KindPipeBind, Headers: map[string]string{"pipe": name}}); err != nil {
		return
	}
	// A bound producer counts toward the pipe's expected EOFs whether it
	// signals end-of-stream or simply vanishes (a consumer-grid peer
	// dropping off DSL must not wedge its consumers).
	defer pipe.eof()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		switch m.Kind {
		case KindPipeData:
			d, err := types.Unmarshal(m.Payload)
			if err != nil {
				return
			}
			// Decoded network data is sealed before delivery: the codec
			// allocated it fresh, nothing else aliases it, and sealing
			// lets the engine share it across a local fan-out without
			// per-edge clones.
			if !pipe.deliver(types.Seal(d)) {
				return // pipe closed locally
			}
		case KindPipeManifest:
			// The manifest replaces a run of pipe.data frames: resolve
			// every digest through the installed ladder and deliver the
			// materialised data in order, sealed exactly as streamed
			// payloads are. Any failure severs the conversation — the
			// producer detects the short stream the same way it detects
			// a vanished peer.
			h.mu.Lock()
			resolve := h.resolver
			h.mu.Unlock()
			if resolve == nil {
				return
			}
			payloads, err := resolve(m.Payload)
			if err != nil {
				return
			}
			for _, payload := range payloads {
				d, err := types.Unmarshal(payload)
				if err != nil {
					return
				}
				if !pipe.deliver(types.Seal(d)) {
					return
				}
			}
		case KindPipeEOF:
			return
		default:
			return
		}
	}
}

// serveChunkFetch answers one digest lookup from the installed chunk
// source: chunk.data on a hit, rpc.error on a miss or when no source is
// installed. One conversation per connection — over the mux a stream
// costs a frame, so fetchers dial per digest.
func (h *Host) serveChunkFetch(conn Conn, req *Message) {
	digest := req.Header("digest")
	h.mu.Lock()
	source := h.source
	h.mu.Unlock()
	if source == nil {
		conn.Send(&Message{Kind: KindRPCError,
			Headers: map[string]string{"error": "no chunk source at " + h.peerID}})
		return
	}
	data, ok := source(digest)
	if !ok {
		conn.Send(&Message{Kind: KindRPCError,
			Headers: map[string]string{"error": "chunk not held: " + digest}})
		return
	}
	reply := &Message{Kind: KindChunkData, Payload: data}
	reply.SetHeader("digest", digest)
	conn.Send(reply)
}

// SetChunkSource installs (or, with nil, removes) the local storage
// chunk.fetch conversations are answered from.
func (h *Host) SetChunkSource(fn ChunkSource) {
	h.mu.Lock()
	h.source = fn
	h.mu.Unlock()
}

// HasChunkSource reports whether a chunk source is installed, so an
// embedding layer (the overlay super) can avoid clobbering a hook the
// service already wired with its own accounting.
func (h *Host) HasChunkSource() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.source != nil
}

// SetManifestResolver installs the fetch ladder pipe.manifest frames
// are materialised through.
func (h *Host) SetManifestResolver(fn ManifestResolver) {
	h.mu.Lock()
	h.resolver = fn
	h.mu.Unlock()
}

// FetchChunk dials a peer and asks for one chunk by digest. The timeout
// bounds the whole conversation; zero means no deadline. Callers verify
// the returned bytes hash to the digest — the transport does not.
func (h *Host) FetchChunk(addr, digest string, timeout time.Duration) ([]byte, error) {
	conn, err := h.transport.Dial(addr)
	if err != nil {
		return nil, &DialError{Addr: addr, Err: err}
	}
	defer conn.Close()
	if timeout > 0 {
		timer := time.AfterFunc(timeout, func() { conn.Close() })
		defer timer.Stop()
	}
	req := &Message{Kind: KindChunkFetch}
	req.SetHeader("digest", digest)
	req.SetHeader("from", h.peerID)
	if err := conn.Send(req); err != nil {
		return nil, err
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	switch reply.Kind {
	case KindChunkData:
		return reply.Payload, nil
	case KindRPCError:
		return nil, &RPCError{Method: KindChunkFetch, Addr: addr, Remote: reply.Header("error")}
	default:
		return nil, fmt.Errorf("jxtaserve: chunk fetch %s: unexpected %s", addr, reply.Kind)
	}
}

func (h *Host) serveRPC(conn Conn, req *Message) {
	method := req.Header("method")
	h.mu.Lock()
	handler := h.handlers[method]
	quiesced := h.quiesced[method]
	h.mu.Unlock()
	if quiesced {
		conn.Send(&Message{Kind: KindRPCError,
			Headers: map[string]string{"error": "draining: " + method + " refused at " + h.peerID}})
		return
	}
	if handler == nil {
		conn.Send(&Message{Kind: KindRPCError,
			Headers: map[string]string{"error": "no such method " + req.Header("method")}})
		return
	}
	reply, err := handler(req)
	if err != nil {
		conn.Send(&Message{Kind: KindRPCError,
			Headers: map[string]string{"error": err.Error()}})
		return
	}
	if reply == nil {
		reply = &Message{}
	}
	reply.Kind = KindRPCReply
	conn.Send(reply)
}

// Handle registers an RPC handler for a method name, replacing any
// previous registration.
func (h *Host) Handle(method string, fn Handler) {
	h.mu.Lock()
	h.handlers[method] = fn
	h.mu.Unlock()
}

// Quiesce refuses new requests for the listed methods from now on:
// callers get an *RPCError whose message starts with "draining:".
// In-flight handlers, pipe traffic, and every other method keep
// working — this is how a draining daemon stops accepting new work
// without cutting the conversations that finish the old. Quiescing is
// one-way; a drained host is expected to exit, not recover.
func (h *Host) Quiesce(methods ...string) {
	h.mu.Lock()
	if h.quiesced == nil {
		h.quiesced = make(map[string]bool, len(methods))
	}
	for _, m := range methods {
		h.quiesced[m] = true
	}
	h.mu.Unlock()
}

// Quiesced reports whether a method is currently refused.
func (h *Host) Quiesced(method string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quiesced[method]
}

// Request dials addr, performs one RPC round trip, and closes the
// connection. The method name travels in the "method" header. Failures
// are typed: *DialError when the peer was unreachable (safe to retry),
// *RPCError when the remote handler rejected the request (retrying is
// pointless). See RequestTimeout for a deadline-bounded variant.
func (h *Host) Request(addr, method string, payload []byte, headers map[string]string) (*Message, error) {
	return h.RequestTimeout(addr, method, payload, headers, 0)
}

// --- input pipes ------------------------------------------------------------

// InputPipe is the receiving end of a named virtual pipe. Data sent by
// any bound remote OutputPipe arrives on C. Close unregisters the pipe
// and closes C.
type InputPipe struct {
	// C delivers decoded data in arrival order. It is closed after Close
	// once all in-flight deliveries have drained.
	C <-chan types.Data

	name string
	host *Host
	ch   chan types.Data

	mu       sync.Mutex
	done     bool
	doneCh   chan struct{}
	inflight int
	chClosed bool
	// expectEOFs > 0 auto-closes the pipe after that many senders have
	// signalled end-of-stream (the controller sets it to the number of
	// bound producers: replicas in a parallel farm, 1 in a pipeline).
	expectEOFs int
	eofsSeen   int
}

// ExpectEOFs arms auto-close after n end-of-stream signals. Call before
// data flows; n <= 0 disables auto-close.
func (p *InputPipe) ExpectEOFs(n int) {
	p.mu.Lock()
	p.expectEOFs = n
	shouldClose := n > 0 && p.eofsSeen >= n && !p.done
	p.mu.Unlock()
	if shouldClose {
		p.Close()
	}
}

// eof records one sender's end-of-stream.
func (p *InputPipe) eof() {
	p.mu.Lock()
	p.eofsSeen++
	shouldClose := p.expectEOFs > 0 && p.eofsSeen >= p.expectEOFs && !p.done
	p.mu.Unlock()
	if shouldClose {
		p.Close()
	}
}

// OpenInput registers an input pipe under the given unique name and
// returns it along with the advertisement to publish. buf is the channel
// depth.
func (h *Host) OpenInput(name string, buf int) (*InputPipe, *advert.Advertisement, error) {
	if name == "" {
		return nil, nil, fmt.Errorf("jxtaserve: empty pipe name")
	}
	if buf < 1 {
		buf = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, ErrClosed
	}
	if _, taken := h.inputs[name]; taken {
		return nil, nil, fmt.Errorf("jxtaserve: pipe %q already open", name)
	}
	ch := make(chan types.Data, buf)
	p := &InputPipe{C: ch, name: name, host: h, ch: ch, doneCh: make(chan struct{})}
	h.inputs[name] = p
	ad := &advert.Advertisement{
		Kind:   advert.KindPipe,
		ID:     fmt.Sprintf("pipe/%s/%s", h.peerID, name),
		PeerID: h.peerID,
		Name:   name,
		Addr:   h.Addr(),
	}
	ad.SetAttr(advert.AttrDirection, "input")
	if h.DefaultTTL > 0 {
		ad.Expires = time.Now().Add(h.DefaultTTL)
	}
	return p, ad, nil
}

// deliver routes a datum into the pipe, reporting false once closed. The
// blocking send happens outside the lock and races safely with Close via
// the done channel and the in-flight count.
func (p *InputPipe) deliver(d types.Data) bool {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return false
	}
	p.inflight++
	p.mu.Unlock()

	ok := false
	select {
	case p.ch <- d:
		ok = true
	case <-p.doneCh:
	}

	p.mu.Lock()
	p.inflight--
	p.maybeCloseChLocked()
	p.mu.Unlock()
	return ok
}

// maybeCloseChLocked closes the delivery channel once the pipe is done
// and no delivery is mid-send. Callers hold p.mu.
func (p *InputPipe) maybeCloseChLocked() {
	if p.done && p.inflight == 0 && !p.chClosed {
		p.chClosed = true
		close(p.ch)
	}
}

// Name reports the pipe's unique connection label.
func (p *InputPipe) Name() string { return p.name }

// Close unregisters the pipe; C is closed once in-flight deliveries
// drain. Safe to call twice.
func (p *InputPipe) Close() {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	close(p.doneCh)
	p.maybeCloseChLocked()
	p.mu.Unlock()
	p.host.mu.Lock()
	delete(p.host.inputs, p.name)
	p.host.mu.Unlock()
}

// --- output pipes -----------------------------------------------------------

// OutputPipe is the sending end of a named virtual pipe, bound to a
// remote input pipe located through its advertisement.
type OutputPipe struct {
	conn Conn
	mu   sync.Mutex
}

// BindOutput resolves an input-pipe advertisement and binds to it,
// completing the bind handshake ("since the local service knows the
// connection's unique name it locates the pipe with that name and binds
// to it", §3.5).
func (h *Host) BindOutput(ad *advert.Advertisement) (*OutputPipe, error) {
	if ad.Kind != advert.KindPipe {
		return nil, fmt.Errorf("jxtaserve: advert %s is not a pipe", ad.ID)
	}
	conn, err := h.transport.Dial(ad.Addr)
	if err != nil {
		return nil, err
	}
	bind := &Message{Kind: KindPipeBind}
	bind.SetHeader("pipe", ad.Name)
	bind.SetHeader("from", h.peerID)
	if err := conn.Send(bind); err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ack.Kind != KindPipeBind {
		conn.Close()
		if ack.Kind == KindRPCError {
			return nil, fmt.Errorf("jxtaserve: bind %s: %s", ad.Name, ack.Header("error"))
		}
		return nil, fmt.Errorf("jxtaserve: bind %s: unexpected %s", ad.Name, ack.Kind)
	}
	return &OutputPipe{conn: conn}, nil
}

// Send encodes and ships one datum.
func (p *OutputPipe) Send(d types.Data) error {
	payload, err := types.Marshal(d)
	if err != nil {
		return err
	}
	return p.SendRaw(payload)
}

// SendRaw ships one already-marshalled datum. Producers that hold the
// canonical encoding (a controller that just digested it) use this to
// skip a second marshal and to account the exact bytes put on the wire.
func (p *OutputPipe) SendRaw(payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn.Send(&Message{Kind: KindPipeData, Payload: payload})
}

// SendManifest ships an encoded chunk manifest in place of streamed
// data. Only send to a host whose service advertised a manifest
// resolver; anyone else severs the pipe.
func (p *OutputPipe) SendManifest(manifest []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn.Send(&Message{Kind: KindPipeManifest, Payload: manifest})
}

// Close signals end-of-stream to the remote input pipe, then tears the
// binding down. The remote pipe auto-closes once every expected sender
// has signalled.
func (p *OutputPipe) Close() error {
	p.mu.Lock()
	// Best-effort: a dead connection still gets torn down below.
	p.conn.Send(&Message{Kind: KindPipeEOF})
	p.mu.Unlock()
	return p.conn.Close()
}
