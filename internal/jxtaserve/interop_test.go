package jxtaserve

import (
	"bytes"
	"testing"
	"time"

	"consumergrid/internal/types"
)

// The interop matrix pins the negotiation contract: every pairing of
// {binary-capable, XML-only mux, legacy pre-mux} as dialler and listener
// must despatch RPCs and pipe traffic end to end, and the handshake must
// settle on exactly the protocol the matrix predicts — observable via the
// wire_negotiated_total{proto=...} counters that fleets use to watch
// rollouts downgrade.

// interopProfiles builds the three wire profiles over real TCP. Legacy is
// the bare transport from before the mux existed; the other two differ
// only in whether they offer binary/1 during the hello.
var interopProfiles = []struct {
	name string
	mk   func() Transport
}{
	{"binary", func() Transport { return NewMux(TCP{}, WireOptions{Mux: true, Binary: true}) }},
	{"xmlmux", func() Transport { return NewMux(TCP{}, WireOptions{Mux: true, Binary: false}) }},
	{"legacy", func() Transport { return TCP{} }},
}

// wantNegotiated maps dialler->listener pairings to the protocol the
// handshake must settle on. Empty means no negotiation happens at all
// (two legacy peers never speak mux.hello).
var wantNegotiated = map[[2]string]string{
	{"binary", "binary"}: ProtoBinaryV1,
	{"binary", "xmlmux"}: ProtoXMLV1,
	{"binary", "legacy"}: ProtoLegacy,
	{"xmlmux", "binary"}: ProtoXMLV1,
	{"xmlmux", "xmlmux"}: ProtoXMLV1,
	{"xmlmux", "legacy"}: ProtoLegacy,
	{"legacy", "binary"}: ProtoLegacy,
	{"legacy", "xmlmux"}: ProtoLegacy,
	{"legacy", "legacy"}: "",
}

var negotiableProtos = []string{ProtoBinaryV1, ProtoXMLV1, ProtoLegacy}

func snapshotNegotiated() map[string]int64 {
	snap := make(map[string]int64, len(negotiableProtos))
	for _, p := range negotiableProtos {
		snap[p] = negotiatedTotal(p).Value()
	}
	return snap
}

func TestInteropMatrix(t *testing.T) {
	for _, dialler := range interopProfiles {
		for _, listener := range interopProfiles {
			t.Run(dialler.name+"_dials_"+listener.name, func(t *testing.T) {
				dt, lt := dialler.mk(), listener.mk()
				for _, tr := range []Transport{dt, lt} {
					if mt, ok := tr.(*MuxTransport); ok {
						t.Cleanup(func() { mt.Close() })
					}
				}
				lh, err := NewHost("peer-listen", lt, "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				dh, err := NewHost("peer-dial", dt, "127.0.0.1:0")
				if err != nil {
					lh.Close()
					t.Fatal(err)
				}
				t.Cleanup(func() { dh.Close(); lh.Close() })

				before := snapshotNegotiated()

				// RPC despatch across the pairing.
				lh.Handle("interop.echo", func(req *Message) (*Message, error) {
					return &Message{Payload: req.Payload}, nil
				})
				reply, err := dh.Request(lh.Addr(), "interop.echo", []byte("ping"), nil)
				if err != nil {
					t.Fatalf("RPC across %s->%s: %v", dialler.name, listener.name, err)
				}
				if !bytes.Equal(reply.Payload, []byte("ping")) {
					t.Fatalf("echo reply = %q", reply.Payload)
				}

				// Pipe despatch the other way of the same pairing: the
				// listener-profile host owns the input, the dialler streams in.
				pipe, ad, err := lh.OpenInput("interop/sink", 4)
				if err != nil {
					t.Fatal(err)
				}
				defer pipe.Close()
				out, err := dh.BindOutput(ad)
				if err != nil {
					t.Fatal(err)
				}
				want := types.NewSampleSet(8000, []float64{4, 5, 6})
				for i := 0; i < 3; i++ {
					if err := out.Send(want); err != nil {
						t.Fatalf("pipe send %d: %v", i, err)
					}
				}
				for i := 0; i < 3; i++ {
					select {
					case d := <-pipe.C:
						ss, ok := d.(*types.SampleSet)
						if !ok || ss.Samples[2] != 6 {
							t.Fatalf("datum %d = %#v", i, d)
						}
					case <-time.After(5 * time.Second):
						t.Fatal("pipe datum never arrived")
					}
				}
				out.Close()

				// The negotiation counters must move for exactly the predicted
				// protocol; a stray increment elsewhere means some connection
				// in this cell settled on the wrong codec.
				after := snapshotNegotiated()
				want2 := wantNegotiated[[2]string{dialler.name, listener.name}]
				for _, p := range negotiableProtos {
					delta := after[p] - before[p]
					switch {
					case p == want2 && delta == 0:
						t.Errorf("wire_negotiated_total{proto=%q} never incremented", p)
					case p != want2 && delta != 0:
						t.Errorf("wire_negotiated_total{proto=%q} moved by %d in a %s->%s cell",
							p, delta, dialler.name, listener.name)
					}
				}
			})
		}
	}
}

// TestInteropLegacyDiallerSecondConn pins the replay path: a legacy
// dialler's first frame is consumed by the listener's negotiation sniff
// and must still reach the application, on the first connection and on
// every later one.
func TestInteropLegacyDiallerRepeatedConns(t *testing.T) {
	lt := NewMux(TCP{}, WireOptions{Mux: true, Binary: true})
	t.Cleanup(func() { lt.Close() })
	lh, err := NewHost("peer-listen", lt, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dh, err := NewHost("peer-dial", TCP{}, "127.0.0.1:0")
	if err != nil {
		lh.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { dh.Close(); lh.Close() })
	lh.Handle("interop.echo", func(req *Message) (*Message, error) {
		return &Message{Payload: req.Payload}, nil
	})
	for i := 0; i < 3; i++ {
		payload := []byte{byte(i)}
		reply, err := dh.Request(lh.Addr(), "interop.echo", payload, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !bytes.Equal(reply.Payload, payload) {
			t.Fatalf("request %d echoed %v", i, reply.Payload)
		}
	}
}
