package jxtaserve

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/types"
)

func TestMessageFramingRoundTrip(t *testing.T) {
	m := &Message{Kind: KindRPC, Payload: []byte{1, 2, 3, 0, 255}}
	m.SetHeader("method", "service.run")
	m.SetHeader("from", "peer-1")
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Header("method") != "service.run" ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip = %+v", got)
	}
	if buf.Len() != 0 {
		t.Error("trailing bytes after read")
	}
}

func TestMessageFramingErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{}); err == nil {
		t.Error("kindless message written")
	}
	if err := WriteMessage(&buf, &Message{Kind: "x", Payload: make([]byte, maxPayloadLen+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized payload err = %v", err)
	}
	// Truncated stream.
	WriteMessage(&buf, &Message{Kind: "x", Payload: []byte("data")})
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMessage(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame read")
	}
	// Oversized declared length.
	var evil bytes.Buffer
	evil.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // huge uvarint
	if _, err := ReadMessage(&evil); err == nil {
		t.Error("huge declared length accepted")
	}
	// Empty stream.
	if _, err := ReadMessage(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream read")
	}
}

func TestQuickFramingNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadMessage panicked on %x: %v", b, r)
			}
		}()
		_, _ = ReadMessage(bytes.NewReader(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInProcDialAndExchange(t *testing.T) {
	net := NewInProc()
	l, err := net.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		m, _ := c.Recv()
		m.SetHeader("echo", "yes")
		c.Send(m)
	}()
	c, err := net.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&Message{Kind: "ping"}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || m.Header("echo") != "yes" {
		t.Fatalf("recv = %+v, %v", m, err)
	}
	c.Close()
	if err := c.Send(&Message{Kind: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v", err)
	}
	// Unknown address.
	if _, err := net.Dial("nope"); err == nil {
		t.Error("dial to unknown address succeeded")
	}
	// Duplicate listen.
	if _, err := net.Listen("svc"); err == nil {
		t.Error("duplicate listen succeeded")
	}
	// Auto-address allocation.
	l2, err := net.Listen("")
	if err != nil || l2.Addr() == "" {
		t.Fatalf("auto listen: %v", err)
	}
	l2.Close()
	// Dial after close fails.
	l.Close()
	if _, err := net.Dial("svc"); err == nil {
		t.Error("dial after close succeeded")
	}
}

func newHostPair(t *testing.T, tr Transport) (*Host, *Host) {
	t.Helper()
	a, err := NewHost("peer-a", tr, listenAddr(tr))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHost("peer-b", tr, listenAddr(tr))
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func listenAddr(tr Transport) string {
	switch v := tr.(type) {
	case TCP:
		return "127.0.0.1:0"
	case *MuxTransport:
		return listenAddr(v.inner)
	}
	return ""
}

func testPipeEndToEnd(t *testing.T, tr Transport) {
	recv, send := newHostPair(t, tr)
	pipe, ad, err := recv.OpenInput("app/conn/0", 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := send.BindOutput(ad)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewSampleSet(2000, []float64{1, 2, 3})
	for i := 0; i < 5; i++ {
		if err := out.Send(want); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case d := <-pipe.C:
			got, ok := d.(*types.SampleSet)
			if !ok || got.Samples[2] != 3 || got.SamplingRate != 2000 {
				t.Fatalf("datum %d = %#v", i, d)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for pipe data")
		}
	}
	out.Close()
	pipe.Close()
	pipe.Close() // idempotent
	// Channel eventually closes.
	select {
	case _, open := <-pipe.C:
		if open {
			t.Error("unexpected datum after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipe channel never closed")
	}
}

func TestPipeEndToEndInProc(t *testing.T) { testPipeEndToEnd(t, NewInProc()) }
func TestPipeEndToEndTCP(t *testing.T)    { testPipeEndToEnd(t, TCP{}) }

func TestBindToUnknownPipeFails(t *testing.T) {
	a, b := newHostPair(t, NewInProc())
	ad := &advert.Advertisement{Kind: advert.KindPipe, ID: "x", PeerID: a.PeerID(),
		Name: "missing", Addr: a.Addr()}
	if _, err := b.BindOutput(ad); err == nil || !strings.Contains(err.Error(), "no such pipe") {
		t.Fatalf("err = %v", err)
	}
	notPipe := &advert.Advertisement{Kind: advert.KindPeer, ID: "y", PeerID: "p"}
	if _, err := b.BindOutput(notPipe); err == nil {
		t.Error("bound to non-pipe advert")
	}
}

func TestDuplicatePipeNameRejected(t *testing.T) {
	a, _ := newHostPair(t, NewInProc())
	if _, _, err := a.OpenInput("dup", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.OpenInput("dup", 1); err == nil {
		t.Error("duplicate pipe name accepted")
	}
	if _, _, err := a.OpenInput("", 1); err == nil {
		t.Error("empty pipe name accepted")
	}
}

func TestRPCRoundTripAndErrors(t *testing.T) {
	for _, tr := range []Transport{NewInProc(), TCP{}} {
		a, b := newHostPair(t, tr)
		a.Handle("sum", func(req *Message) (*Message, error) {
			var total byte
			for _, v := range req.Payload {
				total += v
			}
			return &Message{Payload: []byte{total}}, nil
		})
		a.Handle("fail", func(req *Message) (*Message, error) {
			return nil, fmt.Errorf("deliberate failure")
		})
		reply, err := b.Request(a.Addr(), "sum", []byte{1, 2, 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(reply.Payload) != 1 || reply.Payload[0] != 6 {
			t.Errorf("sum reply = %v", reply.Payload)
		}
		if _, err := b.Request(a.Addr(), "fail", nil, nil); err == nil ||
			!strings.Contains(err.Error(), "deliberate failure") {
			t.Errorf("fail err = %v", err)
		}
		if _, err := b.Request(a.Addr(), "missing", nil, nil); err == nil ||
			!strings.Contains(err.Error(), "no such method") {
			t.Errorf("missing err = %v", err)
		}
	}
}

func TestRPCHeadersCarryCaller(t *testing.T) {
	a, b := newHostPair(t, NewInProc())
	var gotFrom string
	a.Handle("who", func(req *Message) (*Message, error) {
		gotFrom = req.Header("from")
		return &Message{}, nil
	})
	if _, err := b.Request(a.Addr(), "who", nil, map[string]string{"extra": "1"}); err != nil {
		t.Fatal(err)
	}
	if gotFrom != "peer-b" {
		t.Errorf("from = %q", gotFrom)
	}
}

func TestConcurrentSendersOnOnePipe(t *testing.T) {
	recv, send := newHostPair(t, TCP{})
	pipe, ad, err := recv.OpenInput("shared", 64)
	if err != nil {
		t.Fatal(err)
	}
	const senders, each = 4, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out, err := send.BindOutput(ad)
			if err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			defer out.Close()
			for i := 0; i < each; i++ {
				if err := out.Send(&types.Const{Value: float64(id)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	got := 0
	timeout := time.After(10 * time.Second)
	for got < senders*each {
		select {
		case <-pipe.C:
			got++
		case <-timeout:
			t.Fatalf("received %d of %d", got, senders*each)
		}
	}
	<-done
}

func TestHostCloseUnblocksEverything(t *testing.T) {
	tr := NewInProc()
	h, err := NewHost("p", tr, "")
	if err != nil {
		t.Fatal(err)
	}
	pipe, _, err := h.OpenInput("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range pipe.C {
		}
		close(done)
	}()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer not unblocked by Close")
	}
	if err := h.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, _, err := h.OpenInput("y", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("OpenInput after close = %v", err)
	}
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost("", NewInProc(), ""); err == nil {
		t.Error("empty peer ID accepted")
	}
	tr := NewInProc()
	tr.Listen("taken")
	if _, err := NewHost("p", tr, "taken"); err == nil {
		t.Error("occupied address accepted")
	}
}
