// Package jxtaserve is the from-scratch stand-in for the JXTAServe API
// the Triana project layered over JXTA (§3.4): named virtual pipes that
// services advertise and bind by connection label, plus a small
// request/response facility for control traffic. "It implements the basic
// functionality that an application needs and hides the complexity of the
// details of JXTA from developers."
//
// Wire format: every message is an XML envelope (kind + string headers)
// followed by an opaque binary payload, both length-prefixed. XML keeps
// the control plane inspectable (the paper encodes requests as XML
// scripts); payloads carry the binary types codec so bulk data stays
// compact.
package jxtaserve

import (
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"unicode/utf8"
)

// Message kinds used across the Consumer Grid. Subsystems may define
// more; the transport is agnostic.
const (
	KindPipeBind = "pipe.bind" // headers: pipe (name); opens a data stream
	KindPipeData = "pipe.data" // payload: one encoded types.Data
	KindPipeEOF  = "pipe.eof"  // sender finished; counts toward the pipe's expected EOFs
	KindRPC      = "rpc"       // headers: method; payload: request body
	KindRPCReply = "rpc.reply" // payload: response body
	KindRPCError = "rpc.error" // headers: error
)

// Message is one framed unit on a connection.
type Message struct {
	Kind    string
	Headers map[string]string
	Payload []byte
}

// Header returns the named header or "".
func (m *Message) Header(key string) string {
	if m.Headers == nil {
		return ""
	}
	return m.Headers[key]
}

// SetHeader assigns a header, allocating the map on first use.
func (m *Message) SetHeader(key, val string) {
	if m.Headers == nil {
		m.Headers = make(map[string]string)
	}
	m.Headers[key] = val
}

// Limits protecting hosts from malformed or hostile frames.
const (
	maxEnvelopeLen = 1 << 20   // 1 MiB of XML headers
	maxPayloadLen  = 256 << 20 // 256 MiB payload
)

// ErrFrameTooLarge is returned when a frame exceeds the wire limits.
var ErrFrameTooLarge = errors.New("jxtaserve: frame exceeds size limit")

type xmlEnvelope struct {
	XMLName xml.Name    `xml:"message"`
	Kind    string      `xml:"kind,attr"`
	Headers []xmlHeader `xml:"header"`
}

type xmlHeader struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// ErrBadHeader is returned when a kind or header string cannot survive
// the XML envelope (invalid UTF-8 or control characters: encoding/xml
// would emit character references the decoder rejects, so the frame
// could never be read back).
var ErrBadHeader = errors.New("jxtaserve: kind or header not XML-safe")

// xmlSafe reports whether s round-trips through an XML attribute:
// valid UTF-8 and only characters XML 1.0 permits.
func xmlSafe(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		switch {
		case r == '\t' || r == '\n' || r == '\r':
		case r < 0x20:
			return false
		case r == 0xFFFE || r == 0xFFFF:
			return false
		}
	}
	return true
}

// WriteMessage frames m onto w.
func WriteMessage(w io.Writer, m *Message) error {
	if m.Kind == "" {
		return errors.New("jxtaserve: message without kind")
	}
	if !xmlSafe(m.Kind) {
		return ErrBadHeader
	}
	for k, v := range m.Headers {
		if !xmlSafe(k) || !xmlSafe(v) {
			return ErrBadHeader
		}
	}
	env := xmlEnvelope{Kind: m.Kind}
	keys := make([]string, 0, len(m.Headers))
	for k := range m.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		env.Headers = append(env.Headers, xmlHeader{Name: k, Value: m.Headers[k]})
	}
	envBytes, err := xml.Marshal(env)
	if err != nil {
		return err
	}
	if len(envBytes) > maxEnvelopeLen || len(m.Payload) > maxPayloadLen {
		return ErrFrameTooLarge
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(envBytes)))
	n += binary.PutUvarint(hdr[n:], uint64(len(m.Payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(envBytes); err != nil {
		return err
	}
	if len(m.Payload) > 0 {
		if _, err := w.Write(m.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (*Message, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = &byteReader{r: r}
	}
	envLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	payloadLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if envLen > maxEnvelopeLen || payloadLen > maxPayloadLen {
		return nil, ErrFrameTooLarge
	}
	envBytes := make([]byte, envLen)
	if _, err := io.ReadFull(r, envBytes); err != nil {
		return nil, err
	}
	var env xmlEnvelope
	if err := xml.Unmarshal(envBytes, &env); err != nil {
		return nil, fmt.Errorf("jxtaserve: bad envelope: %w", err)
	}
	if env.Kind == "" {
		return nil, errors.New("jxtaserve: envelope without kind")
	}
	m := &Message{Kind: env.Kind}
	for _, h := range env.Headers {
		m.SetHeader(h.Name, h.Value)
	}
	if payloadLen > 0 {
		p, err := readPayload(r, payloadLen)
		if err != nil {
			return nil, err
		}
		m.Payload = p
	}
	return m, nil
}

// readPayload reads n bytes, growing the buffer in bounded chunks so a
// lying length prefix cannot make us allocate hundreds of megabytes for
// a stream that ends after a few bytes.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20 // grow 1 MiB at a time
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// byteReader adapts an io.Reader lacking ReadByte. It reads one byte at a
// time, which is acceptable because both real transports hand us buffered
// readers.
type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(b.r, b.buf[:])
	return b.buf[0], err
}
