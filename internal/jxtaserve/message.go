// Package jxtaserve is the from-scratch stand-in for the JXTAServe API
// the Triana project layered over JXTA (§3.4): named virtual pipes that
// services advertise and bind by connection label, plus a small
// request/response facility for control traffic. "It implements the basic
// functionality that an application needs and hides the complexity of the
// details of JXTA from developers."
//
// Wire format: every message is an XML envelope (kind + string headers)
// followed by an opaque binary payload, both length-prefixed. XML keeps
// the control plane inspectable (the paper encodes requests as XML
// scripts); payloads carry the binary types codec so bulk data stays
// compact.
package jxtaserve

import (
	"bytes"
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// Message kinds used across the Consumer Grid. Subsystems may define
// more; the transport is agnostic.
const (
	KindPipeBind = "pipe.bind" // headers: pipe (name); opens a data stream
	KindPipeData = "pipe.data" // payload: one encoded types.Data
	KindPipeEOF  = "pipe.eof"  // sender finished; counts toward the pipe's expected EOFs
	KindRPC      = "rpc"       // headers: method; payload: request body
	KindRPCReply = "rpc.reply" // payload: response body
	KindRPCError = "rpc.error" // headers: error

	// Content-addressed data tier (the chunkstore): a manifest replaces
	// streamed pipe.data frames with an ordered digest list the receiver
	// resolves itself, and chunk.fetch/chunk.data are the one-shot
	// digest-lookup conversation any peer with a chunk source answers.
	KindPipeManifest = "pipe.manifest" // payload: encoded chunkstore manifest
	KindChunkFetch   = "chunk.fetch"   // headers: digest, from; asks for one chunk
	KindChunkData    = "chunk.data"    // headers: digest; payload: the chunk bytes
)

// Message is one framed unit on a connection.
type Message struct {
	Kind    string
	Headers map[string]string
	Payload []byte
	// Stream is the mux stream ID carrying this message; zero means the
	// message travels unmuxed (a whole-connection conversation). The ID
	// is framed by both codecs so the demultiplexer on the far side can
	// route it without touching the header map.
	Stream uint64
}

// Header returns the named header or "".
func (m *Message) Header(key string) string {
	if m.Headers == nil {
		return ""
	}
	return m.Headers[key]
}

// SetHeader assigns a header, allocating the map on first use.
func (m *Message) SetHeader(key, val string) {
	if m.Headers == nil {
		m.Headers = make(map[string]string)
	}
	m.Headers[key] = val
}

// Limits protecting hosts from malformed or hostile frames.
const (
	maxEnvelopeLen = 1 << 20   // 1 MiB of XML headers
	maxPayloadLen  = 256 << 20 // 256 MiB payload
)

// ErrFrameTooLarge is returned when a frame exceeds the wire limits.
var ErrFrameTooLarge = errors.New("jxtaserve: frame exceeds size limit")

type xmlEnvelope struct {
	XMLName xml.Name    `xml:"message"`
	Kind    string      `xml:"kind,attr"`
	Stream  uint64      `xml:"stream,attr,omitempty"`
	Headers []xmlHeader `xml:"header"`
}

type xmlHeader struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// ErrBadHeader is returned when a kind or header string cannot survive
// the XML envelope (invalid UTF-8 or control characters: encoding/xml
// would emit character references the decoder rejects, so the frame
// could never be read back).
var ErrBadHeader = errors.New("jxtaserve: kind or header not XML-safe")

// xmlSafe reports whether s round-trips through an XML attribute:
// valid UTF-8 and only characters XML 1.0 permits. Verdicts for short
// strings are cached; use it ONLY for kinds and header keys, which come
// from a tiny fixed vocabulary ("pipe.data", "method", ...) that recurs
// on every frame. Header VALUES go through xmlSafeSlow uncached: they
// are high-cardinality (sequence numbers, peer IDs), and letting them
// into the cache would trip the overflow flush and evict the hot
// vocabulary the cache exists for.
func xmlSafe(s string) bool {
	if len(s) <= maxCachedVerdictLen {
		if v, ok := xmlSafeCache.Load(s); ok {
			return v.(bool)
		}
		v := xmlSafeSlow(s)
		if n := xmlSafeCacheLen.Add(1); n > maxCachedVerdicts {
			// A hostile peer spraying unique kinds/keys must not grow
			// the cache without bound; dropping it keeps the common
			// vocabulary hot and the memory footprint fixed.
			xmlSafeCache.Range(func(k, _ any) bool { xmlSafeCache.Delete(k); return true })
			xmlSafeCacheLen.Store(0)
		}
		xmlSafeCache.Store(s, v)
		return v
	}
	return xmlSafeSlow(s)
}

const (
	maxCachedVerdictLen = 64
	maxCachedVerdicts   = 4096
)

var (
	xmlSafeCache    sync.Map
	xmlSafeCacheLen atomic.Int64
)

func xmlSafeSlow(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		switch {
		case r == '\t' || r == '\n' || r == '\r':
		case r < 0x20:
			return false
		case r == 0xFFFE || r == 0xFFFF:
			return false
		}
	}
	return true
}

// envScratch is the per-WriteMessage working set: the envelope bytes and
// the sorted header keys. Pooling it makes framing allocation-free for
// the steady-state pipe.data traffic.
type envScratch struct {
	buf  bytes.Buffer
	keys []string
}

var envPool = sync.Pool{New: func() any { return new(envScratch) }}

// WriteMessage frames m onto w. The XML envelope is rendered by hand
// into a pooled buffer — it is a fixed two-element grammar, so going
// through encoding/xml's reflective marshaller only costs allocations —
// and the decoder still reads it with xml.Unmarshal, which accepts both
// this form and the reflective one.
func WriteMessage(w io.Writer, m *Message) error {
	if m.Kind == "" {
		return errors.New("jxtaserve: message without kind")
	}
	if !xmlSafe(m.Kind) {
		return ErrBadHeader
	}
	for k, v := range m.Headers {
		if !xmlSafe(k) || !xmlSafeSlow(v) {
			return ErrBadHeader
		}
	}
	scratch := envPool.Get().(*envScratch)
	defer func() {
		scratch.buf.Reset()
		scratch.keys = scratch.keys[:0]
		envPool.Put(scratch)
	}()
	for k := range m.Headers {
		scratch.keys = append(scratch.keys, k)
	}
	sort.Strings(scratch.keys)

	buf := &scratch.buf
	buf.WriteString(`<message kind="`)
	writeXMLAttr(buf, m.Kind)
	if m.Stream != 0 {
		buf.WriteString(`" stream="`)
		buf.WriteString(strconv.FormatUint(m.Stream, 10))
	}
	buf.WriteString(`">`)
	for _, k := range scratch.keys {
		buf.WriteString(`<header name="`)
		writeXMLAttr(buf, k)
		buf.WriteString(`" value="`)
		writeXMLAttr(buf, m.Headers[k])
		buf.WriteString(`"></header>`)
	}
	buf.WriteString(`</message>`)

	if buf.Len() > maxEnvelopeLen || len(m.Payload) > maxPayloadLen {
		return ErrFrameTooLarge
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(buf.Len()))
	n += binary.PutUvarint(hdr[n:], uint64(len(m.Payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	if len(m.Payload) > 0 {
		if _, err := w.Write(m.Payload); err != nil {
			return err
		}
	}
	wireMsgsOut.Inc()
	wireBytesOut.Add(int64(n) + int64(buf.Len()) + int64(len(m.Payload)))
	return nil
}

// writeXMLAttr escapes s for an XML attribute value. Every character
// needing escape is ASCII, so the byte loop passes multi-byte UTF-8
// through untouched; xmlSafe has already rejected anything the XML 1.0
// charset forbids.
func writeXMLAttr(buf *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			buf.WriteString("&amp;")
		case '<':
			buf.WriteString("&lt;")
		case '>':
			buf.WriteString("&gt;")
		case '"':
			buf.WriteString("&quot;")
		case '\'':
			buf.WriteString("&apos;")
		case '\t':
			buf.WriteString("&#x9;")
		case '\n':
			buf.WriteString("&#xA;")
		case '\r':
			buf.WriteString("&#xD;")
		default:
			buf.WriteByte(c)
		}
	}
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (*Message, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = &byteReader{r: r}
	}
	envLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	payloadLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if envLen > maxEnvelopeLen || payloadLen > maxPayloadLen {
		return nil, ErrFrameTooLarge
	}
	// The envelope bytes live only until xml.Unmarshal copies the attr
	// strings out, so the slab is pooled rather than allocated per frame.
	slab := envSlabPool.Get().(*[]byte)
	defer envSlabPool.Put(slab)
	if uint64(cap(*slab)) < envLen {
		*slab = make([]byte, envLen)
	}
	envBytes := (*slab)[:envLen]
	if _, err := io.ReadFull(r, envBytes); err != nil {
		return nil, err
	}
	var env xmlEnvelope
	if err := xml.Unmarshal(envBytes, &env); err != nil {
		return nil, fmt.Errorf("jxtaserve: bad envelope: %w", err)
	}
	if env.Kind == "" {
		return nil, errors.New("jxtaserve: envelope without kind")
	}
	m := &Message{Kind: env.Kind, Stream: env.Stream}
	for _, h := range env.Headers {
		m.SetHeader(h.Name, h.Value)
	}
	if payloadLen > 0 {
		p, err := readPayload(r, payloadLen)
		if err != nil {
			return nil, err
		}
		m.Payload = p
	}
	wireMsgsIn.Inc()
	wireBytesIn.Add(int64(envLen) + int64(payloadLen))
	return m, nil
}

var envSlabPool = sync.Pool{New: func() any {
	b := make([]byte, 512)
	return &b
}}

// readPayload reads n bytes, growing the buffer in bounded chunks so a
// lying length prefix cannot make us allocate hundreds of megabytes for
// a stream that ends after a few bytes: capacity never exceeds twice the
// bytes that have actually arrived (clamped to n). Each chunk is read
// with io.ReadFull directly into the tail of the buffer — no zero-filled
// temporaries, no append re-copying beyond the amortized doubling.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20 // read (and initially trust) 1 MiB at a time
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, chunk)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > chunk {
			step = chunk
		}
		start := uint64(len(buf))
		if uint64(cap(buf)) < start+step {
			newCap := 2 * uint64(cap(buf))
			if newCap > n {
				newCap = n
			}
			grown := make([]byte, start, newCap)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:start+step]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// byteReader adapts an io.Reader lacking ReadByte. It reads one byte at a
// time, which is acceptable because both real transports hand us buffered
// readers.
type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(b.r, b.buf[:])
	return b.buf[0], err
}
