package jxtaserve

import "consumergrid/internal/metrics"

// Wire accounting: every frame written or read by any host in the
// process, registered eagerly so a fresh daemon's /metrics already
// lists the series. Counters are lock-free atomics — WriteMessage and
// ReadMessage are the data plane's hottest functions.
var (
	wireMsgsOut  = metrics.Default().Counter("jxtaserve_messages_sent_total")
	wireMsgsIn   = metrics.Default().Counter("jxtaserve_messages_recv_total")
	wireBytesOut = metrics.Default().Counter("jxtaserve_bytes_sent_total")
	wireBytesIn  = metrics.Default().Counter("jxtaserve_bytes_recv_total")
)

// negotiatedTotal counts handshake outcomes per protocol, so a fleet
// that should all be speaking binary/1 shows its downgrades on /metrics:
// wire_negotiated_total{proto="binary/1"|"xml/1"|"legacy"}.
func negotiatedTotal(proto string) *metrics.Counter {
	return metrics.Default().Counter(metrics.Series("wire_negotiated_total", "proto", proto))
}
