// Stream multiplexing and wire-protocol negotiation. MuxTransport wraps
// any Transport so that every Conn handed to callers is a lightweight
// Stream riding a single underlying connection per peer pair: pipes and
// RPCs between two peers stop costing one TCP connection each.
//
// Negotiation happens in-band with the legacy XML framing, so a muxed
// dialer can talk to any listener ever deployed:
//
//	dialer                         listener
//	------                         --------
//	mux.hello{protos,win}  ----->
//	                       <-----  mux.hello{proto,win}   (muxed peer)
//	        both switch codec if proto == binary/1
//	                       <-----  rpc.error              (legacy peer)
//	        dialer closes, marks addr legacy, redials raw
//
// A legacy dialer never sends mux.hello, so the muxed listener sees an
// ordinary first frame (pipe.bind, rpc) and serves the connection
// unmuxed via a replay wrapper. Binary framing is only offered when the
// underlying conn can actually switch codecs mid-connection (TCP can;
// in-process transports pass values and honestly negotiate xml/1).
//
// Inside a session every frame carries its stream ID, encoded on the
// wire as id<<1|syn: the low bit marks the opener's first frame, which
// is what creates the stream on the receiving side. An unknown ID
// without the SYN bit is a straggler from an already-reset stream and
// is dropped — concurrent openers send their first frames in arbitrary
// ID order, so no high-water heuristic can tell fresh from stale; the
// explicit bit can. Flow control is credit-based: a sender starts with
// the peer's advertised window and spends one credit per frame; the
// receiver returns credit (mux.win) as the application drains its
// queue. Streams close and reset independently (mux.rst) without
// disturbing siblings; only an I/O error on the shared connection
// kills the whole session.
package jxtaserve

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Wire-negotiation message kinds (never seen by applications).
const (
	KindMuxHello  = "mux.hello" // headers: protos|proto, win
	KindMuxReset  = "mux.rst"   // headers: cause; kills one stream
	KindMuxWindow = "mux.win"   // headers: n; returns n credits to the sender
)

// Negotiated protocol names, as logged in wire_negotiated_total{proto=...}.
const (
	ProtoBinaryV1 = "binary/1" // muxed, binary codec
	ProtoXMLV1    = "xml/1"    // muxed, XML codec
	ProtoLegacy   = "legacy"   // unmuxed XML, pre-mux peer
)

const (
	defaultWindow = 64   // per-stream frames in flight before credit blocks
	maxWindow     = 4096 // cap on what a peer may make us buffer per stream
	acceptBacklog = 128  // inbound streams awaiting Accept
)

// WireOptions selects the transport features a peer offers.
type WireOptions struct {
	// Mux multiplexes all conns to a peer over one connection.
	Mux bool
	// Binary offers the binary codec during negotiation (TCP only;
	// transports that cannot switch codecs fall back to muxed XML).
	Binary bool
	// Window is the per-stream receive window in frames; 0 means
	// defaultWindow.
	Window int
}

// binarySwitcher is the capability a Conn must have for binary/1 to be
// offered: switching the wire codec after the XML hello exchange.
type binarySwitcher interface{ UseBinary() }

// StreamScopedError marks a Send failure whose blast radius is one
// stream, not the shared connection — simnet's per-stream fault
// injection returns these so a simulated drop resets the stream while
// sibling streams keep flowing, exactly as a real mux would contain a
// per-stream reset.
type StreamScopedError interface {
	error
	StreamScoped() bool
}

func isStreamScoped(err error) bool {
	var se StreamScopedError
	return errors.As(err, &se) && se.StreamScoped()
}

// StreamResetError reports a stream reset by the peer (or by injected
// faults), carrying the advertised cause.
type StreamResetError struct {
	Stream uint64
	Cause  string
}

func (e *StreamResetError) Error() string {
	return fmt.Sprintf("jxtaserve: stream %d reset: %s", e.Stream, e.Cause)
}

// SessionDeadError reports that the shared connection under a stream
// died; it wraps the I/O error that killed it.
type SessionDeadError struct {
	Err error
}

func (e *SessionDeadError) Error() string { return "jxtaserve: mux session dead: " + e.Err.Error() }
func (e *SessionDeadError) Unwrap() error { return e.Err }

// --- transport wrapper --------------------------------------------------------

// MuxTransport implements Transport over an inner one, multiplexing
// dialled conns into per-address sessions and demultiplexing accepted
// connections back into per-stream Conns.
type MuxTransport struct {
	inner Transport
	opts  WireOptions

	mu       sync.Mutex
	peers    map[string]*muxPeer
	sessions map[*session]struct{}
	lns      map[*muxListener]struct{}
	closed   bool
}

// muxPeer serialises dialling per address so concurrent Dials share one
// handshake instead of racing to open parallel sessions.
type muxPeer struct {
	mu     sync.Mutex
	sess   *session
	legacy bool // peer rejected mux.hello; dial raw from now on
}

// NewMux wraps inner with stream multiplexing and protocol negotiation.
func NewMux(inner Transport, opts WireOptions) *MuxTransport {
	if opts.Window <= 0 {
		opts.Window = defaultWindow
	}
	if opts.Window > maxWindow {
		opts.Window = maxWindow
	}
	return &MuxTransport{
		inner:    inner,
		opts:     opts,
		peers:    make(map[string]*muxPeer),
		sessions: make(map[*session]struct{}),
		lns:      make(map[*muxListener]struct{}),
	}
}

func (t *MuxTransport) peer(addr string) *muxPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil {
		p = &muxPeer{}
		t.peers[addr] = p
	}
	return p
}

// Dial returns a stream on the (possibly fresh) session to addr, or a
// raw conn when the peer has proven legacy.
func (t *MuxTransport) Dial(addr string) (Conn, error) {
	p := t.peer(addr)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.legacy {
		return t.inner.Dial(addr)
	}
	if p.sess != nil && !p.sess.isDead() {
		if st, err := p.sess.openStream(); err == nil {
			return st, nil
		}
		// Session died between the check and the open; fall through and
		// establish a fresh one.
	}
	p.sess = nil
	raw, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	proto, peerWin, err := t.dialHello(raw)
	if err != nil {
		raw.Close()
		return nil, err
	}
	negotiatedTotal(proto).Inc()
	if proto == ProtoLegacy {
		// The peer predates mux.hello: it replied rpc.error and is about
		// to close this conn. Remember that and redial plain.
		p.legacy = true
		raw.Close()
		return t.inner.Dial(addr)
	}
	sess := newSession(raw, true, peerWin, t.opts.Window, nil)
	sess.onDead = func() {
		p.mu.Lock()
		if p.sess == sess {
			p.sess = nil
		}
		p.mu.Unlock()
	}
	p.sess = sess
	t.track(sess)
	sess.start()
	return sess.openStream()
}

// dialHello runs the dialler half of the negotiation on a fresh conn.
func (t *MuxTransport) dialHello(raw Conn) (proto string, peerWin int, err error) {
	offer := ProtoXMLV1
	sw, canBinary := raw.(binarySwitcher)
	if t.opts.Binary && canBinary {
		offer = ProtoBinaryV1 + "," + ProtoXMLV1
	}
	hello := &Message{Kind: KindMuxHello}
	hello.SetHeader("protos", offer)
	hello.SetHeader("win", strconv.Itoa(t.opts.Window))
	if err := raw.Send(hello); err != nil {
		return "", 0, err
	}
	reply, err := raw.Recv()
	if err != nil {
		// Could be a legacy peer that closed on the unknown kind without
		// replying, or a genuinely dead link. Don't mark legacy on such
		// ambiguous evidence — surface the error and let the caller retry.
		return "", 0, err
	}
	switch reply.Kind {
	case KindMuxHello:
		proto = reply.Header("proto")
		switch proto {
		case ProtoBinaryV1:
			if !canBinary {
				return "", 0, fmt.Errorf("jxtaserve: peer chose %s on a conn that cannot switch codecs", proto)
			}
			sw.UseBinary()
		case ProtoXMLV1:
		default:
			return "", 0, fmt.Errorf("jxtaserve: peer chose unknown protocol %q", proto)
		}
		return proto, parseWindow(reply.Header("win")), nil
	case KindRPCError:
		return ProtoLegacy, 0, nil
	default:
		return "", 0, fmt.Errorf("jxtaserve: unexpected handshake reply %q", reply.Kind)
	}
}

// Listen wraps the inner listener so Accept yields per-stream Conns
// from muxed peers and plain conns from legacy ones.
func (t *MuxTransport) Listen(addr string) (Listener, error) {
	inner, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	l := &muxListener{
		t:        t,
		inner:    inner,
		acceptCh: make(chan Conn, acceptBacklog),
		done:     make(chan struct{}),
	}
	t.mu.Lock()
	t.lns[l] = struct{}{}
	t.mu.Unlock()
	go l.run()
	return l, nil
}

func (t *MuxTransport) track(s *session) {
	t.mu.Lock()
	t.sessions[s] = struct{}{}
	t.mu.Unlock()
}

func (t *MuxTransport) untrack(s *session) {
	t.mu.Lock()
	delete(t.sessions, s)
	t.mu.Unlock()
}

// Close tears down every listener and kills every live session.
func (t *MuxTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	lns := make([]*muxListener, 0, len(t.lns))
	for l := range t.lns {
		lns = append(lns, l)
	}
	sessions := make([]*session, 0, len(t.sessions))
	for s := range t.sessions {
		sessions = append(sessions, s)
	}
	t.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, s := range sessions {
		s.kill(ErrClosed)
	}
	return nil
}

type muxListener struct {
	t        *MuxTransport
	inner    Listener
	acceptCh chan Conn
	done     chan struct{}
	once     sync.Once

	mu  sync.Mutex
	err error
}

// run accepts raw connections and hands each to a handshake goroutine,
// so one slow or stalled dialler cannot block the others.
func (l *muxListener) run() {
	for {
		raw, err := l.inner.Accept()
		if err != nil {
			l.mu.Lock()
			l.err = err
			l.mu.Unlock()
			l.Close()
			return
		}
		go l.serve(raw)
	}
}

// serve classifies one inbound connection: muxed peers open with
// mux.hello, legacy peers open with application traffic.
func (l *muxListener) serve(raw Conn) {
	first, err := raw.Recv()
	if err != nil {
		raw.Close()
		return
	}
	if first.Kind != KindMuxHello {
		negotiatedTotal(ProtoLegacy).Inc()
		l.deliver(&replayConn{Conn: raw, first: first})
		return
	}
	proto := ProtoXMLV1
	sw, canBinary := raw.(binarySwitcher)
	if l.t.opts.Binary && canBinary && offersProto(first.Header("protos"), ProtoBinaryV1) {
		proto = ProtoBinaryV1
	}
	reply := &Message{Kind: KindMuxHello}
	reply.SetHeader("proto", proto)
	reply.SetHeader("win", strconv.Itoa(l.t.opts.Window))
	if err := raw.Send(reply); err != nil {
		raw.Close()
		return
	}
	if proto == ProtoBinaryV1 {
		// Safe: the session's demux goroutine has not started, so no Recv
		// is in flight while the codec flips.
		sw.UseBinary()
	}
	negotiatedTotal(proto).Inc()
	sess := newSession(raw, false, parseWindow(first.Header("win")), l.t.opts.Window, l.deliver)
	sess.onDead = func() { l.t.untrack(sess) }
	l.t.track(sess)
	sess.start()
}

// deliver queues an accepted conn (stream or legacy) for Accept.
func (l *muxListener) deliver(c Conn) {
	select {
	case l.acceptCh <- c:
	case <-l.done:
		c.Close()
	}
}

func (l *muxListener) Accept() (Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.done:
		// Drain conns that raced with close.
		select {
		case c := <-l.acceptCh:
			return c, nil
		default:
		}
		l.mu.Lock()
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
}

func (l *muxListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.inner.Close()
		l.t.mu.Lock()
		delete(l.t.lns, l)
		l.t.mu.Unlock()
	})
	return nil
}

func (l *muxListener) Addr() string { return l.inner.Addr() }

// replayConn serves a legacy dialler whose first frame was consumed
// during classification: the first Recv replays it.
type replayConn struct {
	Conn
	mu    sync.Mutex
	first *Message
}

func (c *replayConn) Recv() (*Message, error) {
	c.mu.Lock()
	if m := c.first; m != nil {
		c.first = nil
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	return c.Conn.Recv()
}

// offersProto reports whether a comma-separated protos offer includes p.
func offersProto(offer, p string) bool {
	for _, o := range strings.Split(offer, ",") {
		if strings.TrimSpace(o) == p {
			return true
		}
	}
	return false
}

// parseWindow decodes a win header, clamped to sane bounds so a hostile
// hello can neither stall us (0) nor make us buffer unbounded frames.
func parseWindow(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 1
	}
	if n > maxWindow {
		return maxWindow
	}
	return n
}

// --- session ------------------------------------------------------------------

// session is one multiplexed connection: a single demux goroutine fans
// inbound frames out to streams; outbound frames from every stream are
// serialised through writeMu.
type session struct {
	conn    Conn
	writeMu sync.Mutex // serialises conn.Send across streams

	parity  uint64 // local stream IDs ≡ parity (mod 2); dialler 1, listener 0
	sendWin int    // peer's receive window: initial credit per stream
	recvWin int    // our receive queue capacity per stream

	onStream func(Conn) // inbound stream delivery; nil rejects inbound
	onDead   func()

	mu      sync.Mutex
	streams map[uint64]*stream
	nextID  uint64
	err     error

	dead     chan struct{}
	deadOnce sync.Once
}

func newSession(conn Conn, dialler bool, sendWin, recvWin int, onStream func(Conn)) *session {
	s := &session{
		conn:     conn,
		sendWin:  sendWin,
		recvWin:  recvWin,
		onStream: onStream,
		streams:  make(map[uint64]*stream),
		dead:     make(chan struct{}),
	}
	if dialler {
		s.parity, s.nextID = 1, 1
	} else {
		s.parity, s.nextID = 0, 2
	}
	if s.sendWin < 1 {
		s.sendWin = 1
	}
	if s.recvWin < 1 {
		s.recvWin = 1
	}
	return s
}

// start launches the demux loop; split from newSession so callers can
// finish wiring callbacks before frames flow.
func (s *session) start() { go s.demux() }

func (s *session) isDead() bool {
	select {
	case <-s.dead:
		return true
	default:
		return false
	}
}

// openStream allocates a locally-initiated stream. No frame is sent:
// the first data frame on the new ID implicitly opens it on the peer.
func (s *session) openStream() (*stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.isDead() {
		err := s.err
		if err == nil {
			err = ErrClosed
		}
		return nil, &SessionDeadError{Err: err}
	}
	id := s.nextID
	s.nextID += 2
	return s.newStreamLocked(id), nil
}

func (s *session) newStreamLocked(id uint64) *stream {
	st := &stream{
		sess:   s,
		id:     id,
		credit: int64(s.sendWin),
		q:      make(chan *Message, s.recvWin),
	}
	st.creditCond = sync.NewCond(&st.mu)
	s.streams[id] = st
	return st
}

func (s *session) lookup(id uint64) *stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

func (s *session) remove(id uint64) {
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
}

// send serialises one frame onto the shared connection.
func (s *session) send(m *Message) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.conn.Send(m)
}

// demux routes inbound frames to streams until the connection dies.
func (s *session) demux() {
	for {
		m, err := s.conn.Recv()
		if err != nil {
			s.kill(err)
			return
		}
		// Wire stream field is id<<1|syn; control frames may echo a data
		// frame's SYN bit (simnet's synthetic resets do), so always mask.
		id := m.Stream >> 1
		switch m.Kind {
		case KindMuxReset:
			if st := s.lookup(id); st != nil {
				cause := m.Header("cause")
				if cause == "" {
					cause = "peer reset"
				}
				st.reset(&StreamResetError{Stream: id, Cause: cause}, false)
			}
		case KindMuxWindow:
			if st := s.lookup(id); st != nil {
				if n, err := strconv.Atoi(m.Header("n")); err == nil && n > 0 {
					st.grant(n)
				}
			}
		default:
			s.dispatch(m)
		}
	}
}

// dispatch delivers a data frame, opening the stream when the SYN bit
// marks the opener's first frame. Frames for unknown IDs without SYN
// belong to already-reset streams and are dropped — the peer learned of
// the reset from our mux.rst and stops counting them against credit.
func (s *session) dispatch(m *Message) {
	syn := m.Stream&1 == 1
	id := m.Stream >> 1
	m.Stream = id // applications see the logical ID, not the wire encoding
	s.mu.Lock()
	st := s.streams[id]
	if st != nil {
		s.mu.Unlock()
		st.push(m)
		return
	}
	fresh := syn && id != 0 && id%2 != s.parity && !s.isDead()
	if fresh && s.onStream != nil {
		st = s.newStreamLocked(id)
		st.synSent = true // peer opened it; our frames never carry SYN
		s.mu.Unlock()
		st.push(m)
		s.onStream(st)
		return
	}
	s.mu.Unlock()
	if fresh {
		// Peer opened a stream toward a pure dialler session; refuse it
		// so the peer's sender fails fast instead of starving on credit.
		rst := &Message{Kind: KindMuxReset, Stream: id << 1}
		rst.SetHeader("cause", "peer accepts no inbound streams")
		s.send(rst)
	}
}

// kill tears the whole session down: every stream resets locally and
// the shared connection closes.
func (s *session) kill(err error) {
	s.deadOnce.Do(func() {
		s.mu.Lock()
		s.err = err
		// Closed under s.mu, before the snapshot: stream registration
		// also holds s.mu, so every stream either lands in the snapshot
		// (and resets below) or observes the dead session and refuses.
		close(s.dead)
		streams := make([]*stream, 0, len(s.streams))
		for _, st := range s.streams {
			streams = append(streams, st)
		}
		s.mu.Unlock()
		s.conn.Close()
		for _, st := range streams {
			st.reset(&SessionDeadError{Err: err}, false)
		}
		if s.onDead != nil {
			s.onDead()
		}
	})
}

// --- stream -------------------------------------------------------------------

// stream is one multiplexed Conn. The demux goroutine is the only
// pusher into q; Recv is the only consumer; Send never touches q.
type stream struct {
	sess *session
	id   uint64

	mu         sync.Mutex
	creditCond *sync.Cond // broadcast on grant, reset, session death
	credit     int64      // frames the peer will buffer; never negative
	consumed   int        // frames drained since the last credit return
	closed     bool
	synSent    bool // first frame not yet sent; next Send carries the SYN bit
	cause      error
	q          chan *Message
}

// ID reports the stream's session-local identifier.
func (st *stream) ID() uint64 { return st.id }

// Send ships one frame, blocking while the peer's window is exhausted.
func (st *stream) Send(m *Message) error {
	st.mu.Lock()
	for st.credit <= 0 && !st.closed {
		st.creditCond.Wait()
	}
	if st.closed {
		cause := st.cause
		st.mu.Unlock()
		if cause == nil {
			cause = ErrClosed
		}
		return cause
	}
	st.credit--
	wire := st.id << 1
	if !st.synSent {
		wire |= 1 // SYN: this frame opens the stream on the peer
		st.synSent = true
	}
	st.mu.Unlock()
	// Shallow copy so tagging the stream ID never mutates the caller's
	// message (pipes retry sends of the same *Message after faults).
	wm := *m
	wm.Stream = wire
	err := st.sess.send(&wm)
	if err == nil {
		return nil
	}
	if isStreamScoped(err) {
		// The fault hit this stream only; the injector already told the
		// peer (synthetic mux.rst), so reset locally without another one.
		st.reset(err, false)
		return err
	}
	st.sess.kill(err)
	return err
}

// Recv returns the next frame, granting credit back to the peer as the
// queue drains. After a reset, frames already queued still drain before
// the cause surfaces.
func (st *stream) Recv() (*Message, error) {
	m, ok := <-st.q
	if !ok {
		st.mu.Lock()
		cause := st.cause
		st.mu.Unlock()
		if cause == nil {
			cause = ErrClosed
		}
		return nil, cause
	}
	st.mu.Lock()
	st.consumed++
	grant := 0
	if !st.closed && st.consumed*2 >= st.sess.recvWin {
		grant = st.consumed
		st.consumed = 0
	}
	st.mu.Unlock()
	if grant > 0 {
		win := &Message{Kind: KindMuxWindow, Stream: st.id << 1}
		win.SetHeader("n", strconv.Itoa(grant))
		// Best-effort: if the session is dying the reset path surfaces it.
		st.sess.send(win)
	}
	return m, nil
}

// Close resets the stream and tells the peer. Idempotent.
func (st *stream) Close() error {
	st.reset(ErrClosed, true)
	return nil
}

// push delivers an inbound frame from the demux loop. The queue is
// sized to the window we advertised, so overflow means the peer ignored
// flow control: the stream resets rather than block the demux loop (a
// stalled sibling must never head-of-line-block the session).
func (st *stream) push(m *Message) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	select {
	case st.q <- m:
		st.mu.Unlock()
	default:
		st.mu.Unlock()
		st.reset(&StreamResetError{Stream: st.id, Cause: "flow-control window exceeded"}, true)
	}
}

// grant returns credit spent by our sends.
func (st *stream) grant(n int) {
	st.mu.Lock()
	st.credit += int64(n)
	st.creditCond.Broadcast()
	st.mu.Unlock()
}

// reset closes the stream exactly once: queued frames stay readable,
// blocked senders wake with the cause, and optionally the peer is told.
func (st *stream) reset(cause error, tellPeer bool) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.cause = cause
	close(st.q)
	st.creditCond.Broadcast()
	st.mu.Unlock()
	st.sess.remove(st.id)
	if tellPeer {
		rst := &Message{Kind: KindMuxReset, Stream: st.id << 1}
		if cause != nil && cause != ErrClosed {
			if msg := cause.Error(); xmlSafeSlow(msg) {
				rst.SetHeader("cause", msg)
			}
		}
		// Best-effort: a dead session has already reset the peer's side.
		st.sess.send(rst)
	}
}
