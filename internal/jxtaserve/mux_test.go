package jxtaserve

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// muxPair wires two MuxTransports over one in-process network and
// returns the client transport plus the server's listener. Both sides
// share opts; Close of both transports is registered with t.Cleanup.
func muxPair(t *testing.T, opts WireOptions) (*MuxTransport, Listener) {
	t.Helper()
	inner := NewInProc()
	srv := NewMux(inner, opts)
	cli := NewMux(inner, opts)
	t.Cleanup(func() { cli.Close(); srv.Close() })
	l, err := srv.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	return cli, l
}

// TestMuxPipeEndToEnd runs the full host/pipe stack over the mux on
// both transports, binary over TCP and (negotiated) XML in process.
func TestMuxPipeEndToEnd(t *testing.T) {
	t.Run("tcp-binary", func(t *testing.T) {
		tr := NewMux(TCP{}, WireOptions{Mux: true, Binary: true})
		t.Cleanup(func() { tr.Close() })
		testPipeEndToEnd(t, tr)
	})
	t.Run("inproc-xml", func(t *testing.T) {
		tr := NewMux(NewInProc(), WireOptions{Mux: true, Binary: true})
		t.Cleanup(func() { tr.Close() })
		testPipeEndToEnd(t, tr)
	})
}

// TestMuxPerStreamOrdering interleaves N concurrent sender goroutines,
// one per stream, and requires every stream to deliver its frames in
// send order even though they all share one connection.
func TestMuxPerStreamOrdering(t *testing.T) {
	const streams, frames = 8, 200
	cli, l := muxPair(t, WireOptions{Mux: true, Window: 16})

	var wg sync.WaitGroup
	errCh := make(chan error, 2*streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			c, err := cli.Dial("srv")
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for seq := 0; seq < frames; seq++ {
				m := &Message{Kind: "test.seq"}
				m.SetHeader("worker", strconv.Itoa(worker))
				m.SetHeader("seq", strconv.Itoa(seq))
				if err := c.Send(m); err != nil {
					errCh <- fmt.Errorf("worker %d seq %d: %w", worker, seq, err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < streams; i++ {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			for seq := 0; seq < frames; seq++ {
				m, err := c.Recv()
				if err != nil {
					errCh <- fmt.Errorf("recv: %w", err)
					return
				}
				if got, _ := strconv.Atoi(m.Header("seq")); got != seq {
					errCh <- fmt.Errorf("worker %s: frame %d arrived as seq %d", m.Header("worker"), seq, got)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestMuxCreditNeverNegative is the flow-control property test: across
// randomized windows, frame counts and consumer pacing, a sampler
// watches the sender's credit and requires 0 <= credit <= window at
// every observation.
func TestMuxCreditNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		window := 1 + rng.Intn(8)
		frames := 50 + rng.Intn(100)
		t.Run(fmt.Sprintf("window=%d_frames=%d", window, frames), func(t *testing.T) {
			cli, l := muxPair(t, WireOptions{Mux: true, Window: window})
			c, err := cli.Dial("srv")
			if err != nil {
				t.Fatal(err)
			}
			st, ok := c.(*stream)
			if !ok {
				t.Fatalf("Dial returned %T, want *stream", c)
			}
			stop := make(chan struct{})
			var violation atomic.Value
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					st.mu.Lock()
					credit := st.credit
					st.mu.Unlock()
					if credit < 0 || credit > int64(window) {
						violation.Store(fmt.Sprintf("credit %d outside [0,%d]", credit, window))
						return
					}
				}
			}()
			// Start the sender before Accept: a stream only materialises on
			// the listener once its first data frame arrives.
			done := make(chan error, 1)
			go func() {
				for i := 0; i < frames; i++ {
					if err := c.Send(&Message{Kind: "test.credit"}); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			sc, err := l.Accept()
			if err != nil {
				t.Fatal(err)
			}
			consumerRng := rand.New(rand.NewSource(int64(round)))
			for i := 0; i < frames; i++ {
				if _, err := sc.Recv(); err != nil {
					t.Fatal(err)
				}
				if consumerRng.Intn(4) == 0 {
					time.Sleep(time.Duration(consumerRng.Intn(200)) * time.Microsecond)
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			close(stop)
			if v := violation.Load(); v != nil {
				t.Fatal(v)
			}
		})
	}
}

// TestMuxResetDoesNotStallSiblings resets one stream mid-transfer and
// requires its sibling on the same session to finish unharmed, with the
// reset surfacing on the victim as a StreamResetError.
func TestMuxResetDoesNotStallSiblings(t *testing.T) {
	const frames = 300
	cli, l := muxPair(t, WireOptions{Mux: true, Window: 8})

	victim, err := cli.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := cli.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	// Prime both streams so the server can tell them apart.
	if err := victim.Send(&Message{Kind: "test.victim"}); err != nil {
		t.Fatal(err)
	}
	if err := sibling.Send(&Message{Kind: "test.sibling"}); err != nil {
		t.Fatal(err)
	}
	conns := make(map[string]Conn, 2)
	for i := 0; i < 2; i++ {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		conns[m.Kind] = c
	}
	srvVictim, srvSibling := conns["test.victim"], conns["test.sibling"]
	if srvVictim == nil || srvSibling == nil {
		t.Fatalf("stream identification failed: %v", conns)
	}

	// The victim's sender pumps until the server resets it mid-transfer.
	victimErr := make(chan error, 1)
	go func() {
		for {
			if err := victim.Send(&Message{Kind: "test.victim"}); err != nil {
				victimErr <- err
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := srvVictim.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	srvVictim.Close() // reset mid-transfer

	// The sibling must complete a full transfer in both directions.
	sibDone := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := sibling.Send(&Message{Kind: "test.sibling"}); err != nil {
				sibDone <- err
				return
			}
		}
		sibDone <- sibling.Close()
	}()
	for i := 0; i < frames; i++ {
		if _, err := srvSibling.Recv(); err != nil {
			t.Fatalf("sibling stalled at frame %d: %v", i, err)
		}
	}
	if err := <-sibDone; err != nil {
		t.Fatalf("sibling sender: %v", err)
	}
	select {
	case err := <-victimErr:
		var reset *StreamResetError
		if !errors.As(err, &reset) {
			t.Fatalf("victim send error = %v, want *StreamResetError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("victim sender never observed the reset")
	}
}

// TestMuxGoroutineLeakOverChurn opens and closes sessions and streams
// in waves and requires the goroutine count to settle back to baseline:
// no demux loops or blocked senders may outlive their transports.
func TestMuxGoroutineLeakOverChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	for wave := 0; wave < 10; wave++ {
		func() {
			inner := NewInProc()
			srv := NewMux(inner, WireOptions{Mux: true, Window: 4})
			cli := NewMux(inner, WireOptions{Mux: true, Window: 4})
			l, err := srv.Listen("srv")
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					go func(c Conn) {
						for {
							if _, err := c.Recv(); err != nil {
								c.Close()
								return
							}
						}
					}(c)
				}
			}()
			for i := 0; i < 8; i++ {
				c, err := cli.Dial("srv")
				if err != nil {
					t.Fatal(err)
				}
				for j := 0; j < 3; j++ {
					if err := c.Send(&Message{Kind: "test.churn"}); err != nil {
						t.Fatal(err)
					}
				}
				// Half the streams close cleanly, half are abandoned to the
				// transport Close below.
				if i%2 == 0 {
					c.Close()
				}
			}
			cli.Close()
			srv.Close()
			wg.Wait()
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: started with %d, still %d after churn\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// countingTransport counts Dial calls, standing in for the number of
// real network connections a transport opens.
type countingTransport struct {
	Transport
	dials atomic.Int64
}

func (c *countingTransport) Dial(addr string) (Conn, error) {
	conn, err := c.Transport.Dial(addr)
	if err == nil {
		c.dials.Add(1)
	}
	return conn, err
}

// TestMuxConnsPerPeerStaysFlat opens four pipes plus RPC traffic between
// one peer pair and requires them all to ride a single dialled
// connection — the O(peers), not O(pipes), property.
func TestMuxConnsPerPeerStaysFlat(t *testing.T) {
	counting := &countingTransport{Transport: NewInProc()}
	tr := NewMux(counting, WireOptions{Mux: true})
	t.Cleanup(func() { tr.Close() })
	recv, send := newHostPair(t, tr)

	var outs []*OutputPipe
	for i := 0; i < 4; i++ {
		pipe, ad, err := recv.OpenInput(fmt.Sprintf("flat/pipe/%d", i), 4)
		if err != nil {
			t.Fatal(err)
		}
		defer pipe.Close()
		out, err := send.BindOutput(ad)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	recv.Handle("echo", func(req *Message) (*Message, error) {
		return &Message{Payload: req.Payload}, nil
	})
	for i := 0; i < 3; i++ {
		if _, err := send.Request(recv.Addr(), "echo", []byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, out := range outs {
		out.Close()
	}
	if dials := counting.dials.Load(); dials != 1 {
		t.Fatalf("4 pipes + 3 RPCs dialled %d connections, want 1 shared session", dials)
	}
}
