package jxtaserve

import (
	"bytes"
	"testing"

	"consumergrid/internal/trace"
)

// Trace context rides the XML envelope headers; the pooled framing path
// must carry it byte-exactly so a despatch span on the controller links
// to the execute span on the host.
func TestTraceHeadersSurviveFraming(t *testing.T) {
	rec := trace.NewRecorder(8)
	span := rec.Start("", "", "transfer", "ctl")
	m := &Message{Kind: KindRPC, Payload: []byte("body")}
	m.SetHeader("method", "triana.run")
	trace.Inject(span, m.SetHeader)

	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	traceID, parent := trace.Extract(got.Header)
	if traceID != span.TraceID() || parent != span.SpanID() {
		t.Errorf("extracted (%q, %q), want (%q, %q)",
			traceID, parent, span.TraceID(), span.SpanID())
	}
	if got.Header("method") != "triana.run" {
		t.Errorf("method header = %q", got.Header("method"))
	}
}

func TestWireCountersAccumulate(t *testing.T) {
	outBefore, inBefore := wireMsgsOut.Value(), wireMsgsIn.Value()
	bytesOutBefore := wireBytesOut.Value()

	var buf bytes.Buffer
	m := &Message{Kind: KindPipeData, Payload: []byte("0123456789")}
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	framed := int64(buf.Len())
	if _, err := ReadMessage(&buf); err != nil {
		t.Fatal(err)
	}

	if got := wireMsgsOut.Value() - outBefore; got != 1 {
		t.Errorf("messages_sent grew by %d, want 1", got)
	}
	if got := wireMsgsIn.Value() - inBefore; got != 1 {
		t.Errorf("messages_recv grew by %d, want 1", got)
	}
	// Counters are process-global, so concurrent tests may add their own
	// traffic on top; this frame's bytes are at minimum accounted for.
	if got := wireBytesOut.Value() - bytesOutBefore; got < framed {
		t.Errorf("bytes_sent grew by %d, want >= %d", got, framed)
	}
}
