package jxtaserve

import (
	"errors"
	"strings"
	"testing"
)

// TestQuiesceRefusesListedMethodsOnly: a quiesced method is refused at
// the wire with a draining RPC error naming the peer, while every
// other method keeps serving — the selective gate a draining daemon
// uses to stop admitting work without dropping status RPCs.
func TestQuiesceRefusesListedMethodsOnly(t *testing.T) {
	tr := NewInProc()
	srv, err := NewHost("quiesce-srv", tr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("grid.run", func(req *Message) (*Message, error) {
		return &Message{Payload: []byte("ran")}, nil
	})
	srv.Handle("grid.status", func(req *Message) (*Message, error) {
		return &Message{Payload: []byte("status")}, nil
	})
	cli, err := NewHost("quiesce-cli", tr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Request(srv.Addr(), "grid.run", nil, nil); err != nil {
		t.Fatalf("grid.run before quiesce: %v", err)
	}
	srv.Quiesce("grid.run")
	if !srv.Quiesced("grid.run") || srv.Quiesced("grid.status") {
		t.Fatal("Quiesced reports the wrong methods")
	}

	_, err = cli.Request(srv.Addr(), "grid.run", nil, nil)
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) {
		t.Fatalf("quiesced method: err = %v, want *RPCError", err)
	}
	if !strings.Contains(rpcErr.Remote, "draining") || !strings.Contains(rpcErr.Remote, "quiesce-srv") {
		t.Fatalf("refusal %q does not name the drain or the peer", rpcErr.Remote)
	}
	if _, err := cli.Request(srv.Addr(), "grid.status", nil, nil); err != nil {
		t.Fatalf("unlisted method refused during quiesce: %v", err)
	}
}
