// Typed transport errors and request deadlines: the classification layer
// the despatch retry logic in internal/service is built on. A DialError
// means the request never reached the remote peer, so even non-idempotent
// RPCs are safe to retry; an RPCError means the remote handler ran and
// rejected the request, so retrying cannot help; anything else is a
// broken conversation whose side effects are unknown.
package jxtaserve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrTimeout marks an RPC abandoned by its deadline. Check with
// errors.Is.
var ErrTimeout = errors.New("jxtaserve: request timed out")

// DialError reports that a connection to a peer could not be
// established. The request carried no side effects, so callers may retry
// it freely — even non-idempotent methods.
type DialError struct {
	Addr string
	Err  error
}

func (e *DialError) Error() string { return fmt.Sprintf("jxtaserve: dial %s: %v", e.Addr, e.Err) }
func (e *DialError) Unwrap() error { return e.Err }

// RPCError reports that the remote handler ran and returned an error.
// The failure is semantic, not transport-level: retrying the same
// request yields the same answer.
type RPCError struct {
	Method string
	Addr   string
	Remote string
}

func (e *RPCError) Error() string {
	return fmt.Sprintf("jxtaserve: rpc %s at %s: %s", e.Method, e.Addr, e.Remote)
}

// RequestTimeout performs one RPC round trip like Request but abandons
// the exchange after the timeout by severing the connection; the
// returned error then wraps ErrTimeout. A timeout of zero means no
// deadline (required for long-blocking calls such as job waits).
func (h *Host) RequestTimeout(addr, method string, payload []byte, headers map[string]string, timeout time.Duration) (*Message, error) {
	return h.RequestCtx(context.Background(), addr, method, payload, headers, timeout)
}

// RequestCtx is RequestTimeout with cancellation: a cancelled context
// severs the in-flight connection, unblocking even a deadline-free
// exchange (how a failure detector aborts a blocking job wait).
func (h *Host) RequestCtx(ctx context.Context, addr, method string, payload []byte, headers map[string]string, timeout time.Duration) (*Message, error) {
	conn, err := h.transport.Dial(addr)
	if err != nil {
		return nil, &DialError{Addr: addr, Err: err}
	}
	defer conn.Close()

	var timedOut atomic.Bool
	if timeout > 0 {
		timer := time.AfterFunc(timeout, func() {
			timedOut.Store(true)
			conn.Close() // unblocks Send/Recv on every transport
		})
		defer timer.Stop()
	}
	if ctx.Done() != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-ctx.Done():
				conn.Close()
			case <-finished:
			}
		}()
	}
	wrap := func(err error) error {
		if timedOut.Load() {
			return fmt.Errorf("jxtaserve: rpc %s at %s after %v: %w", method, addr, timeout, ErrTimeout)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("jxtaserve: rpc %s at %s: %w", method, addr, ctxErr)
		}
		return err
	}

	req := &Message{Kind: KindRPC, Payload: payload}
	for k, v := range headers {
		req.SetHeader(k, v)
	}
	req.SetHeader("method", method)
	req.SetHeader("from", h.peerID)
	if err := conn.Send(req); err != nil {
		return nil, wrap(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, wrap(err)
	}
	if reply.Kind == KindRPCError {
		return nil, &RPCError{Method: method, Addr: addr, Remote: reply.Header("error")}
	}
	if reply.Kind != KindRPCReply {
		return nil, fmt.Errorf("jxtaserve: rpc %s: unexpected reply kind %s", method, reply.Kind)
	}
	return reply, nil
}
