package jxtaserve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is one bidirectional message stream between two peers. Send and
// Recv are each safe for one concurrent caller; interleaving multiple
// senders requires external serialisation (the pipe layer does this).
type Conn interface {
	Send(m *Message) error
	Recv() (*Message, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the dialable address of this listener.
	Addr() string
}

// Transport abstracts the network: TCP for real deployments, InProc for
// tests and single-process experiments. The pipe and discovery layers are
// transport-agnostic, which is what lets the same protocol code run over
// the simnet simulator in the scaling experiments.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ErrClosed is returned on use of a closed connection or listener.
var ErrClosed = errors.New("jxtaserve: closed")

// --- TCP --------------------------------------------------------------------

// TCP is the production transport. Addresses are host:port; Listen with
// port 0 picks a free port (read it back from Addr).
type TCP struct{}

type tcpListener struct {
	l net.Listener
}

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	mu sync.Mutex // serialises Send (frame integrity)
	// binary flips the wire codec from XML to binary v1. Set once by the
	// mux handshake, at a point where no Send or Recv is in flight.
	binary atomic.Bool
}

// UseBinary switches subsequent frames to the binary codec, satisfying
// the mux's binarySwitcher capability check.
func (c *tcpConn) UseBinary() { c.binary.Store(true) }

// Listen implements Transport.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Transport.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

// bwPool recycles write buffers across connection lifetimes: service
// hosts churn one short-lived conn per pipe bind, and each bufio.Writer
// carries a 4 KiB buffer worth reusing. The read side is deliberately
// not pooled — Close may race with a blocked Recv (that is how callers
// unblock it), so handing the reader to another conn would alias it.
var bwPool = sync.Pool{New: func() any { return bufio.NewWriter(nil) }}

func newTCPConn(c net.Conn) *tcpConn {
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(c)
	return &tcpConn{c: c, br: bufio.NewReader(c), bw: bw}
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Close() error { return l.l.Close() }
func (l *tcpListener) Addr() string { return l.l.Addr().String() }

func (c *tcpConn) Send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bw == nil {
		return ErrClosed
	}
	write := WriteMessage
	if c.binary.Load() {
		write = WriteBinaryMessage
	}
	if err := write(c.bw, m); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *tcpConn) Recv() (*Message, error) {
	if c.binary.Load() {
		return ReadBinaryMessage(c.br)
	}
	return ReadMessage(c.br)
}

func (c *tcpConn) Close() error {
	err := c.c.Close()
	c.mu.Lock()
	if c.bw != nil {
		c.bw.Reset(nil)
		bwPool.Put(c.bw)
		c.bw = nil
	}
	c.mu.Unlock()
	return err
}

// --- in-process -------------------------------------------------------------

// InProc is a process-local transport: addresses are arbitrary strings
// registered in this InProc instance. Two peers talk through paired
// message channels; no serialisation happens, but messages are still
// framed values so behaviour matches TCP (tests marshal explicitly when
// they need byte-level checks).
type InProc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

// NewInProc returns an empty in-process network.
func NewInProc() *InProc {
	return &InProc{listeners: make(map[string]*inprocListener)}
}

type inprocListener struct {
	net    *InProc
	addr   string
	accept chan *inprocConn
	done   chan struct{}
	once   sync.Once
}

type inprocShared struct {
	closed chan struct{}
	once   sync.Once
}

func (s *inprocShared) close() { s.once.Do(func() { close(s.closed) }) }

type inprocConn struct {
	out    chan<- *Message
	in     <-chan *Message
	shared *inprocShared
}

// Listen implements Transport. An empty address allocates a unique one.
func (n *InProc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.nextAuto++
		addr = fmt.Sprintf("inproc-%d", n.nextAuto)
	}
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("jxtaserve: address %q in use", addr)
	}
	l := &inprocListener{
		net: n, addr: addr,
		accept: make(chan *inprocConn),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (n *InProc) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("jxtaserve: no listener at %q", addr)
	}
	a2b := make(chan *Message, 16)
	b2a := make(chan *Message, 16)
	shared := &inprocShared{closed: make(chan struct{})}
	client := &inprocConn{out: a2b, in: b2a, shared: shared}
	server := &inprocConn{out: b2a, in: a2b, shared: shared}
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

func (c *inprocConn) Send(m *Message) error {
	// Check closed first so a Send after Close in the same goroutine
	// fails deterministically even when buffer space remains.
	select {
	case <-c.shared.closed:
		return ErrClosed
	default:
	}
	select {
	case c.out <- m:
		return nil
	case <-c.shared.closed:
		return ErrClosed
	}
}

func (c *inprocConn) Recv() (*Message, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.shared.closed:
		// Drain any messages that raced with close.
		select {
		case m := <-c.in:
			return m, nil
		default:
		}
		return nil, ErrClosed
	}
}

func (c *inprocConn) Close() error {
	c.shared.close()
	return nil
}
