// Package lifecycle gives the daemon a supervised spine: an ordered
// component runner (start in registration order, stop in reverse), a
// four-state lifecycle machine surfaced as a gauge, bounded-backoff
// supervision for components that crash, and a versioned CRC-checked
// snapshot container for crash-safe state (snapshot.go).
//
// The CERN peer-group work argues that availability in a JXTA-style
// grid comes from services that hand off and resume cleanly, not from
// nodes that never fail; this package is the machinery that lets
// trianad be such a service — SIGTERM drains instead of killing, a
// crashed subprocess restarts with backoff instead of silently dying,
// and a restarted daemon resumes from its last checkpoint.
//
//	Starting ──StartAll──▶ Running ──BeginDrain──▶ Draining ──Close──▶ Stopped
//	    └────────────────────────────────────────────────────────────────┘
//	                      (any state may jump to Stopped)
package lifecycle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"consumergrid/internal/metrics"
)

// State is the daemon's lifecycle position, ordered so the exported
// gauge reads 0 = starting, 1 = running, 2 = draining, 3 = stopped.
type State int32

const (
	Starting State = iota
	Running
	Draining
	Stopped
)

// String names the state.
func (s State) String() string {
	switch s {
	case Starting:
		return "starting"
	case Running:
		return "running"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// Component is one runner-owned daemon part. Start and Stop may each
// be nil (a component that only needs ordered teardown registers only
// Stop, and vice versa).
type Component struct {
	Name  string
	Start func() error
	Stop  func() error
}

// Options configures a Runner.
type Options struct {
	// Owner labels the runner's metric series, normally the peer ID.
	Owner string
	// Registry receives the lifecycle_* series (default metrics.Default()).
	Registry *metrics.Registry
	// Logf receives component start/stop/restart diagnostics; may be nil.
	Logf func(format string, args ...any)
}

// Runner owns a daemon's components: StartAll brings them up in
// registration order (unwinding already-started components on
// failure), StopAll tears them down in reverse, and Supervise wraps a
// crash-prone run loop in bounded-backoff restarts. All methods are
// safe for concurrent use; state transitions are monotone except that
// any state may move to Stopped.
type Runner struct {
	opts  Options
	state atomic.Int32

	stateGauge *metrics.Gauge

	mu      sync.Mutex
	comps   []Component
	started int // prefix of comps currently running
}

// NewRunner builds a runner in the Starting state.
func NewRunner(opts Options) *Runner {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	r := &Runner{
		opts:       opts,
		stateGauge: reg.Gauge(metrics.Series("lifecycle_state", "peer", opts.Owner)),
	}
	r.stateGauge.Set(float64(Starting))
	return r
}

// State reads the current lifecycle position.
func (r *Runner) State() State { return State(r.state.Load()) }

// SetState moves the lifecycle machine and the exported gauge. Moves
// backwards (e.g. Draining → Running) are refused so a late goroutine
// cannot resurrect a draining daemon; Stopped is reachable from
// anywhere.
func (r *Runner) SetState(s State) {
	for {
		cur := r.state.Load()
		if s != Stopped && int32(s) < cur {
			return
		}
		if r.state.CompareAndSwap(cur, int32(s)) {
			r.stateGauge.Set(float64(s))
			return
		}
	}
}

// Register appends a component. Components registered while the runner
// is already running are started by the next StartAll only; register
// everything before StartAll.
func (r *Runner) Register(c Component) {
	r.mu.Lock()
	r.comps = append(r.comps, c)
	r.mu.Unlock()
}

// StartAll starts every registered component in order. On the first
// failure the components already started are stopped in reverse and
// the error returned — the daemon either comes up whole or not at all.
func (r *Runner) StartAll() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := r.started; i < len(r.comps); i++ {
		c := r.comps[i]
		if c.Start != nil {
			if err := c.Start(); err != nil {
				r.logf("lifecycle: component %s failed to start: %v", c.Name, err)
				r.stopPrefixLocked()
				return fmt.Errorf("lifecycle: starting %s: %w", c.Name, err)
			}
		}
		r.logf("lifecycle: component %s started", c.Name)
		r.started = i + 1
	}
	r.SetState(Running)
	return nil
}

// StopAll stops every started component in reverse registration order.
// Every Stop runs even when an earlier one errors; the first error is
// returned. The runner lands in Stopped.
func (r *Runner) StopAll() error {
	r.mu.Lock()
	err := r.stopPrefixLocked()
	r.mu.Unlock()
	r.SetState(Stopped)
	return err
}

// stopPrefixLocked unwinds the started prefix in reverse. Callers hold
// r.mu.
func (r *Runner) stopPrefixLocked() error {
	var first error
	for i := r.started - 1; i >= 0; i-- {
		c := r.comps[i]
		if c.Stop != nil {
			if err := c.Stop(); err != nil {
				r.logf("lifecycle: component %s failed to stop: %v", c.Name, err)
				if first == nil {
					first = fmt.Errorf("lifecycle: stopping %s: %w", c.Name, err)
				}
				continue
			}
		}
		r.logf("lifecycle: component %s stopped", c.Name)
	}
	r.started = 0
	return first
}

// SuperviseOptions tunes one supervised component.
type SuperviseOptions struct {
	// Backoff is the delay before the first restart (default 100ms); it
	// doubles per consecutive crash up to MaxBackoff (default 30s) and
	// resets after a run that survived MaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxRestarts bounds consecutive restarts; 0 means unlimited. When
	// the budget is spent the component stays down (logged) until the
	// runner stops.
	MaxRestarts int
}

func (o SuperviseOptions) withDefaults() SuperviseOptions {
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 30 * time.Second
	}
	return o
}

// Supervise registers a component whose run loop is restarted with
// exponential backoff when it returns an error. run must watch stop
// and return promptly (nil) when it closes; a nil return at any other
// time also ends supervision (a deliberate exit is not a crash).
func (r *Runner) Supervise(name string, run func(stop <-chan struct{}) error, opts SuperviseOptions) {
	opts = opts.withDefaults()
	reg := r.opts.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	restarts := reg.Counter(metrics.Series("lifecycle_restarts_total", "peer", r.opts.Owner, "component", name))
	var stop chan struct{}
	var done chan struct{}
	r.Register(Component{
		Name: name,
		Start: func() error {
			stop = make(chan struct{})
			done = make(chan struct{})
			go func() {
				defer close(done)
				backoff := opts.Backoff
				crashes := 0
				for {
					started := time.Now()
					err := run(stop)
					select {
					case <-stop:
						return
					default:
					}
					if err == nil {
						return // deliberate exit
					}
					if time.Since(started) > opts.MaxBackoff {
						// A long healthy run earns a fresh crash budget.
						crashes, backoff = 0, opts.Backoff
					}
					crashes++
					restarts.Inc()
					if opts.MaxRestarts > 0 && crashes > opts.MaxRestarts {
						r.logf("lifecycle: component %s crashed %d times, giving up: %v", name, crashes-1, err)
						return
					}
					r.logf("lifecycle: component %s crashed (restart %d in %v): %v", name, crashes, backoff, err)
					select {
					case <-stop:
						return
					case <-time.After(backoff):
					}
					backoff *= 2
					if backoff > opts.MaxBackoff {
						backoff = opts.MaxBackoff
					}
				}
			}()
			return nil
		},
		Stop: func() error {
			close(stop)
			<-done
			return nil
		},
	})
}

func (r *Runner) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}
