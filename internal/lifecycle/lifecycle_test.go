package lifecycle

import (
	"errors"
	"sync"
	"testing"
	"time"

	"consumergrid/internal/metrics"
)

func TestRunnerStartsInOrderStopsInReverse(t *testing.T) {
	r := NewRunner(Options{Owner: "t1", Registry: metrics.NewRegistry()})
	var order []string
	comp := func(name string) Component {
		return Component{
			Name:  name,
			Start: func() error { order = append(order, "start:"+name); return nil },
			Stop:  func() error { order = append(order, "stop:"+name); return nil },
		}
	}
	r.Register(comp("overlay"))
	r.Register(comp("controller"))
	r.Register(comp("webstatus"))
	if err := r.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	if got := r.State(); got != Running {
		t.Fatalf("state after StartAll = %v, want running", got)
	}
	if err := r.StopAll(); err != nil {
		t.Fatalf("StopAll: %v", err)
	}
	want := []string{
		"start:overlay", "start:controller", "start:webstatus",
		"stop:webstatus", "stop:controller", "stop:overlay",
	}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, order[i], want[i], order)
		}
	}
	if got := r.State(); got != Stopped {
		t.Fatalf("state after StopAll = %v, want stopped", got)
	}
}

func TestRunnerStartFailureUnwindsStartedPrefix(t *testing.T) {
	r := NewRunner(Options{Owner: "t2", Registry: metrics.NewRegistry()})
	var stopped []string
	boom := errors.New("boom")
	r.Register(Component{Name: "a", Stop: func() error { stopped = append(stopped, "a"); return nil }})
	r.Register(Component{Name: "b", Stop: func() error { stopped = append(stopped, "b"); return nil }})
	r.Register(Component{Name: "c", Start: func() error { return boom }})
	r.Register(Component{Name: "d", Start: func() error { t.Fatal("d started after c failed"); return nil }})
	err := r.StartAll()
	if !errors.Is(err, boom) {
		t.Fatalf("StartAll err = %v, want wrapping boom", err)
	}
	if len(stopped) != 2 || stopped[0] != "b" || stopped[1] != "a" {
		t.Fatalf("unwind stopped %v, want [b a]", stopped)
	}
}

func TestRunnerStopAllRunsEveryStopAndReturnsFirstError(t *testing.T) {
	r := NewRunner(Options{Owner: "t3", Registry: metrics.NewRegistry()})
	var stopped []string
	bad := errors.New("stuck pipe")
	r.Register(Component{Name: "a", Stop: func() error { stopped = append(stopped, "a"); return nil }})
	r.Register(Component{Name: "b", Stop: func() error { stopped = append(stopped, "b"); return bad }})
	r.Register(Component{Name: "c", Stop: func() error { stopped = append(stopped, "c"); return nil }})
	if err := r.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	err := r.StopAll()
	if !errors.Is(err, bad) {
		t.Fatalf("StopAll err = %v, want wrapping %v", err, bad)
	}
	if len(stopped) != 3 {
		t.Fatalf("stopped %v, want all three despite b's error", stopped)
	}
}

func TestSetStateRefusesBackwardMoves(t *testing.T) {
	r := NewRunner(Options{Owner: "t4", Registry: metrics.NewRegistry()})
	r.SetState(Draining)
	r.SetState(Running) // must be ignored
	if got := r.State(); got != Draining {
		t.Fatalf("state = %v, want draining (backward move must be refused)", got)
	}
	r.SetState(Stopped)
	if got := r.State(); got != Stopped {
		t.Fatalf("state = %v, want stopped", got)
	}
}

func TestLifecycleStateGauge(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRunner(Options{Owner: "g1", Registry: reg})
	g := reg.Gauge(metrics.Series("lifecycle_state", "peer", "g1"))
	if got := g.Value(); got != float64(Starting) {
		t.Fatalf("initial gauge = %v, want %v", got, float64(Starting))
	}
	r.SetState(Draining)
	if got := g.Value(); got != float64(Draining) {
		t.Fatalf("gauge after drain = %v, want %v", got, float64(Draining))
	}
}

func TestSuperviseRestartsCrashedComponentWithBackoff(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRunner(Options{Owner: "s1", Registry: reg})
	var mu sync.Mutex
	runs := 0
	healthy := make(chan struct{})
	r.Supervise("flappy", func(stop <-chan struct{}) error {
		mu.Lock()
		runs++
		n := runs
		mu.Unlock()
		if n <= 3 {
			return errors.New("crash")
		}
		close(healthy)
		<-stop
		return nil
	}, SuperviseOptions{Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	if err := r.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	select {
	case <-healthy:
	case <-time.After(5 * time.Second):
		t.Fatal("component never reached its healthy run after crashes")
	}
	if err := r.StopAll(); err != nil {
		t.Fatalf("StopAll: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 4 {
		t.Fatalf("runs = %d, want 4 (3 crashes + 1 healthy)", runs)
	}
	c := reg.Counter(metrics.Series("lifecycle_restarts_total", "peer", "s1", "component", "flappy"))
	if got := c.Value(); got != 3 {
		t.Fatalf("restart counter = %d, want 3", got)
	}
}

func TestSuperviseGivesUpAfterMaxRestarts(t *testing.T) {
	r := NewRunner(Options{Owner: "s2", Registry: metrics.NewRegistry()})
	var mu sync.Mutex
	runs := 0
	r.Supervise("doomed", func(stop <-chan struct{}) error {
		mu.Lock()
		runs++
		mu.Unlock()
		return errors.New("always crashes")
	}, SuperviseOptions{Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, MaxRestarts: 2})
	if err := r.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := runs
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runs = %d, want 3 before giving up", n)
		}
		time.Sleep(time.Millisecond)
	}
	// StopAll must return promptly even though the run loop gave up.
	done := make(chan error, 1)
	go func() { done <- r.StopAll() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("StopAll: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("StopAll hung on a given-up supervised component")
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 3 {
		t.Fatalf("runs = %d, want exactly 3 (initial + 2 restarts)", runs)
	}
}

func TestSuperviseStopInterruptsBackoffWait(t *testing.T) {
	r := NewRunner(Options{Owner: "s3", Registry: metrics.NewRegistry()})
	r.Supervise("slowback", func(stop <-chan struct{}) error {
		return errors.New("crash straight into a long backoff")
	}, SuperviseOptions{Backoff: time.Hour, MaxBackoff: time.Hour})
	if err := r.StartAll(); err != nil {
		t.Fatalf("StartAll: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // let it crash and enter backoff
	done := make(chan error, 1)
	go func() { done <- r.StopAll() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("StopAll: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("StopAll did not interrupt the backoff sleep")
	}
}
