package lifecycle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot is a versioned container of named state sections — each
// subsystem (billing ledger, advert store, chunk pins, health
// tracker, farm journals) contributes one opaque []byte section. The
// on-disk encoding is:
//
//	magic "cgsnap\x00\x01"          8 bytes (last byte = format version)
//	section count                   uvarint
//	per section: name blob, data blob (uvarint length prefixes)
//	CRC-32 (IEEE) of all the above  4 bytes little-endian
//
// Save writes via a temp file + fsync + atomic rename, so the live
// file is either the old snapshot or the new one, never a mixture;
// the CRC trailer catches torn or bit-rotted files from less polite
// failure modes and Load reports them as ErrCorrupt.
type Snapshot struct {
	sections map[string][]byte
}

var snapMagic = []byte{'c', 'g', 's', 'n', 'a', 'p', 0, 1}

// ErrCorrupt marks a snapshot file that exists but fails framing or
// CRC validation — a torn write or on-disk corruption. Callers
// typically log it and start fresh rather than refuse to boot.
var ErrCorrupt = errors.New("lifecycle: corrupt snapshot")

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{sections: make(map[string][]byte)}
}

// Set stores a section, replacing any previous value. A nil data
// slice is stored as an empty section (it still round-trips).
func (s *Snapshot) Set(name string, data []byte) {
	s.sections[name] = data
}

// Get returns a section's bytes and whether it is present.
func (s *Snapshot) Get(name string) ([]byte, bool) {
	b, ok := s.sections[name]
	return b, ok
}

// Names lists the section names in sorted order.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.sections))
	for n := range s.sections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Encode serialises the snapshot. Sections are written in sorted name
// order so identical contents encode identically.
func (s *Snapshot) Encode() []byte {
	out := append([]byte(nil), snapMagic...)
	out = binary.AppendUvarint(out, uint64(len(s.sections)))
	for _, name := range s.Names() {
		out = appendSnapBlob(out, []byte(name))
		out = appendSnapBlob(out, s.sections[name])
	}
	sum := crc32.ChecksumIEEE(out)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// Decode parses an encoded snapshot, validating magic, version, and
// the CRC trailer. Any framing violation — including a truncated
// (torn) file — returns an error wrapping ErrCorrupt.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrCorrupt, len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	for i, m := range snapMagic {
		if body[i] != m {
			return nil, fmt.Errorf("%w: bad magic or version", ErrCorrupt)
		}
	}
	p := body[len(snapMagic):]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad section count", ErrCorrupt)
	}
	p = p[n:]
	snap := NewSnapshot()
	for i := uint64(0); i < count; i++ {
		name, rest, err := readSnapBlob(p)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrCorrupt, i, err)
		}
		data, rest, err := readSnapBlob(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: section %q data: %v", ErrCorrupt, name, err)
		}
		snap.sections[string(name)] = data
		p = rest
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return snap, nil
}

// Save atomically writes the snapshot to dir/name: encode to a temp
// file in the same directory, fsync it, rename over the target, then
// fsync the directory (best-effort) so the rename itself is durable.
// Returns the encoded size written.
func (s *Snapshot) Save(dir, name string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("lifecycle: creating state dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("lifecycle: creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := s.Encode()
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("lifecycle: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("lifecycle: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("lifecycle: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return 0, fmt.Errorf("lifecycle: installing snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return len(enc), nil
}

// Load reads and decodes dir/name. A missing file returns an error
// satisfying errors.Is(err, fs.ErrNotExist); a torn or corrupt file
// returns one satisfying errors.Is(err, ErrCorrupt).
func Load(dir, name string) (*Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("lifecycle: reading snapshot: %w", err)
	}
	return Decode(b)
}

func appendSnapBlob(out, b []byte) []byte {
	out = binary.AppendUvarint(out, uint64(len(b)))
	return append(out, b...)
}

func readSnapBlob(p []byte) (blob, rest []byte, err error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return nil, nil, errors.New("bad blob length")
	}
	p = p[sz:]
	if uint64(len(p)) < n {
		return nil, nil, errors.New("blob truncated")
	}
	return p[:n], p[n:], nil
}
