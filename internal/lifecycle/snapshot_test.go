package lifecycle

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func sampleSnapshot() *Snapshot {
	s := NewSnapshot()
	s.Set("billing", []byte("requester-a:42"))
	s.Set("health", bytes.Repeat([]byte{0xab}, 256))
	s.Set("empty", nil)
	s.Set("adverts", []byte("<advert/>"))
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Names()) != len(s.Names()) {
		t.Fatalf("sections = %v, want %v", got.Names(), s.Names())
	}
	for _, name := range s.Names() {
		want, _ := s.Get(name)
		b, ok := got.Get(name)
		if !ok {
			t.Fatalf("section %q missing after round trip", name)
		}
		if !bytes.Equal(b, want) {
			t.Fatalf("section %q = %q, want %q", name, b, want)
		}
	}
}

func TestSnapshotEncodeIsDeterministic(t *testing.T) {
	a, b := sampleSnapshot().Encode(), sampleSnapshot().Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of identical sections differ")
	}
}

func TestSnapshotDetectsBitFlip(t *testing.T) {
	enc := sampleSnapshot().Encode()
	for _, i := range []int{0, len(snapMagic) + 1, len(enc) / 2, len(enc) - 1} {
		dam := append([]byte(nil), enc...)
		dam[i] ^= 0x40
		if _, err := Decode(dam); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestSnapshotDetectsTornWrite(t *testing.T) {
	enc := sampleSnapshot().Encode()
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := Decode(enc[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestSaveLoadAndAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	s1 := NewSnapshot()
	s1.Set("gen", []byte("one"))
	if _, err := s1.Save(dir, "trianad.state"); err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	s2 := NewSnapshot()
	s2.Set("gen", []byte("two"))
	if _, err := s2.Save(dir, "trianad.state"); err != nil {
		t.Fatalf("Save 2: %v", err)
	}
	got, err := Load(dir, "trianad.state")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if b, _ := got.Get("gen"); string(b) != "two" {
		t.Fatalf("loaded gen = %q, want the replacing snapshot", b)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("state dir holds %d entries, want just the snapshot (no temp litter)", len(ents))
	}
}

func TestLoadMissingReportsNotExist(t *testing.T) {
	if _, err := Load(t.TempDir(), "nope.state"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestLoadTornFileReportsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	if _, err := s.Save(dir, "trianad.state"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	enc := s.Encode()
	if err := os.WriteFile(filepath.Join(dir, "trianad.state"), enc[:len(enc)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "trianad.state"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestSaveCreatesStateDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "state")
	if _, err := sampleSnapshot().Save(dir, "trianad.state"); err != nil {
		t.Fatalf("Save into missing dir: %v", err)
	}
	if _, err := Load(dir, "trianad.state"); err != nil {
		t.Fatalf("Load: %v", err)
	}
}
