// Package mcode implements the Consumer Grid's mobile-code machinery:
// the stand-in for Triana's on-demand download of Java bytecode (§3:
// "the peer can request executable code for modules that are present
// within the connectivity graph ... the executable must be requested from
// the owner whenever an execution is to be undertaken").
//
// Go cannot load code at runtime, so a module travels as a *bundle*: the
// unit's full metadata plus a deterministic payload standing in for the
// class files, checksummed and versioned. A peer may execute a unit only
// when its store holds a bundle matching the registry version — the same
// observable contract as Triana's (on-demand transfer, owner-is-source
// version consistency, eviction on memory-constrained devices), with the
// factory lookup replacing bytecode loading (see DESIGN.md ledger).
package mcode

import (
	"container/list"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"hash/fnv"
	"sync"

	"consumergrid/internal/metrics"
	"consumergrid/internal/units"
)

// Live bundle-cache series, aggregated across every Store in the
// process and registered eagerly so /metrics lists them from startup.
var (
	storeHits      = metrics.Default().Counter("mcode_store_hits_total")
	storeMisses    = metrics.Default().Counter("mcode_store_misses_total")
	storeEvictions = metrics.Default().Counter("mcode_store_evictions_total")
	fetchesTotal   = metrics.Default().Counter("mcode_fetches_total")
	fetchedBytes   = metrics.Default().Counter("mcode_fetched_bytes_total")
)

// Bundle is one transferable module.
type Bundle struct {
	// Unit is the registered unit name the bundle implements.
	Unit string
	// Version is the bundle revision; execution requires an exact match
	// with the local registry.
	Version string
	// Payload carries the serialized unit definition followed by the
	// synthetic code block; its length models the transfer cost of the
	// class files.
	Payload []byte
	// Checksum is the FNV-64a of the payload, hex-encoded.
	Checksum string
}

// Size reports the bundle's transfer size in bytes.
func (b *Bundle) Size() int64 { return int64(len(b.Payload)) }

// checksum computes the payload digest.
func checksum(payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Verify reports whether the checksum matches the payload.
func (b *Bundle) Verify() bool { return b.Checksum == checksum(b.Payload) }

// codeBlockBase and codeBlockPerParam size the synthetic code block: a
// few KiB per unit, more for heavily-parameterised units, roughly the
// footprint of a small Java class bundle.
const (
	codeBlockBase     = 4096
	codeBlockPerParam = 256
)

// bundleDef is the XML definition section of a payload.
type bundleDef struct {
	XMLName     xml.Name `xml:"module"`
	Unit        string   `xml:"unit,attr"`
	Version     string   `xml:"version,attr"`
	Description string   `xml:"description"`
	In          int      `xml:"in,attr"`
	Out         int      `xml:"out,attr"`
	Params      []string `xml:"param"`
}

// BundleFor builds the bundle for a registered unit from the local
// registry — the operation a module *owner* performs when serving a
// fetch.
func BundleFor(unit string) (*Bundle, error) {
	meta, ok := units.Lookup(unit)
	if !ok {
		return nil, fmt.Errorf("mcode: unit %q not registered here", unit)
	}
	def := bundleDef{
		Unit: meta.Name, Version: meta.Version,
		Description: meta.Description, In: meta.In, Out: meta.Out,
	}
	for _, p := range meta.Params {
		def.Params = append(def.Params, p.Name)
	}
	head, err := xml.Marshal(def)
	if err != nil {
		return nil, err
	}
	// Deterministic synthetic code block, seeded from the unit name so
	// different units produce different bytes (checksums must differ).
	blockLen := codeBlockBase + codeBlockPerParam*len(meta.Params)
	payload := make([]byte, 0, len(head)+blockLen)
	payload = append(payload, head...)
	h := fnv.New64a()
	h.Write([]byte(meta.Name + "/" + meta.Version))
	seed := h.Sum64()
	for i := 0; i < blockLen; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		payload = append(payload, byte(seed>>56))
	}
	return &Bundle{
		Unit: meta.Name, Version: meta.Version,
		Payload: payload, Checksum: checksum(payload),
	}, nil
}

// Marshal frames the bundle for the wire.
func (b *Bundle) Marshal() []byte {
	var out []byte
	out = appendString(out, b.Unit)
	out = appendString(out, b.Version)
	out = appendString(out, b.Checksum)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b.Payload)))
	out = append(out, tmp[:n]...)
	return append(out, b.Payload...)
}

// UnmarshalBundle parses a framed bundle and verifies its checksum.
func UnmarshalBundle(p []byte) (*Bundle, error) {
	b := new(Bundle)
	var err error
	if b.Unit, p, err = readString(p); err != nil {
		return nil, err
	}
	if b.Version, p, err = readString(p); err != nil {
		return nil, err
	}
	if b.Checksum, p, err = readString(p); err != nil {
		return nil, err
	}
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p[n:])) != l {
		return nil, fmt.Errorf("mcode: truncated bundle payload")
	}
	b.Payload = append([]byte(nil), p[n:]...)
	if !b.Verify() {
		return nil, fmt.Errorf("mcode: checksum mismatch for %s", b.Unit)
	}
	return b, nil
}

func appendString(out []byte, s string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	out = append(out, tmp[:n]...)
	return append(out, s...)
}

func readString(p []byte) (string, []byte, error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p[n:])) < l {
		return "", nil, fmt.Errorf("mcode: truncated string")
	}
	return string(p[n : n+int(l)]), p[n+int(l):], nil
}

// --- store ------------------------------------------------------------------

// Store is a peer's local module cache with an optional byte budget and
// LRU eviction — the "resource-constrained device may ... selectively
// download and release executable modules" model for handhelds.
type Store struct {
	budget int64 // 0 = unlimited

	mu      sync.Mutex
	entries map[string]*list.Element // key: unit@version
	order   *list.List               // front = most recent
	used    int64

	hits, misses, evictions int64
}

type storeEntry struct {
	key    string
	bundle *Bundle
}

// NewStore creates a store with the given byte budget (0 = unlimited).
func NewStore(budget int64) *Store {
	return &Store{
		budget:  budget,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

func key(unit, version string) string { return unit + "@" + version }

// Put inserts a bundle, evicting least-recently-used bundles to respect
// the budget. A bundle larger than the whole budget is rejected.
func (s *Store) Put(b *Bundle) error {
	if !b.Verify() {
		return fmt.Errorf("mcode: refusing unverified bundle %s", b.Unit)
	}
	size := b.Size()
	if s.budget > 0 && size > s.budget {
		return fmt.Errorf("mcode: bundle %s (%d bytes) exceeds store budget %d",
			b.Unit, size, s.budget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(b.Unit, b.Version)
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		old := el.Value.(*storeEntry)
		s.used += size - old.bundle.Size()
		old.bundle = b
	} else {
		s.entries[k] = s.order.PushFront(&storeEntry{key: k, bundle: b})
		s.used += size
	}
	for s.budget > 0 && s.used > s.budget {
		back := s.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*storeEntry)
		if e.key == k {
			// Do not evict what we just inserted; cannot happen unless
			// it is the only entry, in which case budget was validated.
			break
		}
		s.order.Remove(back)
		delete(s.entries, e.key)
		s.used -= e.bundle.Size()
		s.evictions++
		storeEvictions.Inc()
	}
	return nil
}

// Get returns the cached bundle, refreshing its recency.
func (s *Store) Get(unit, version string) (*Bundle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key(unit, version)]
	if !ok {
		s.misses++
		storeMisses.Inc()
		return nil, false
	}
	s.hits++
	storeHits.Inc()
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).bundle, true
}

// Has reports presence without affecting recency or counters.
func (s *Store) Has(unit, version string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key(unit, version)]
	return ok
}

// Remove drops a bundle (the explicit "release" of the handheld model).
func (s *Store) Remove(unit, version string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key(unit, version)]
	if !ok {
		return false
	}
	s.order.Remove(el)
	delete(s.entries, key(unit, version))
	s.used -= el.Value.(*storeEntry).bundle.Size()
	return true
}

// Used reports bytes currently held.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len reports bundles currently held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Counters reports (hits, misses, evictions).
func (s *Store) Counters() (hits, misses, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}
