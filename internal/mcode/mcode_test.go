package mcode

import (
	"strings"
	"testing"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/units"
	"consumergrid/internal/units/signal"

	_ "consumergrid/internal/units/flow"
)

func TestBundleForRegisteredUnit(t *testing.T) {
	b, err := BundleFor(signal.NameWave)
	if err != nil {
		t.Fatal(err)
	}
	if b.Unit != signal.NameWave || b.Version == "" {
		t.Fatalf("bundle = %+v", b)
	}
	if !b.Verify() {
		t.Error("fresh bundle fails verification")
	}
	if b.Size() < codeBlockBase {
		t.Errorf("size = %d, want >= %d", b.Size(), codeBlockBase)
	}
	if !strings.Contains(string(b.Payload[:200]), signal.NameWave) {
		t.Error("definition header missing from payload")
	}
	// Deterministic.
	b2, _ := BundleFor(signal.NameWave)
	if b.Checksum != b2.Checksum {
		t.Error("bundles not deterministic")
	}
	// Distinct units produce distinct payloads.
	other, _ := BundleFor(signal.NameFFT)
	if other.Checksum == b.Checksum {
		t.Error("different units share checksum")
	}
	if _, err := BundleFor("no.such.Unit"); err == nil {
		t.Error("unknown unit bundled")
	}
}

func TestBundleMarshalRoundTripAndTamper(t *testing.T) {
	b, _ := BundleFor(signal.NameFFT)
	wire := b.Marshal()
	got, err := UnmarshalBundle(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unit != b.Unit || got.Checksum != b.Checksum || got.Size() != b.Size() {
		t.Fatalf("round trip = %+v", got)
	}
	// Corrupt one payload byte: checksum must catch it.
	wire[len(wire)-1] ^= 0xFF
	if _, err := UnmarshalBundle(wire); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("tampered bundle err = %v", err)
	}
	if _, err := UnmarshalBundle(wire[:5]); err == nil {
		t.Error("truncated bundle parsed")
	}
	if _, err := UnmarshalBundle(nil); err == nil {
		t.Error("empty bundle parsed")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	a, _ := BundleFor(signal.NameWave)
	b, _ := BundleFor(signal.NameFFT)
	c, _ := BundleFor(signal.NamePowerSpectrum)
	budget := a.Size() + b.Size() + c.Size()/2 // fits two, not three
	s := NewStore(budget)
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes LRU.
	if _, ok := s.Get(a.Unit, a.Version); !ok {
		t.Fatal("a missing")
	}
	if err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	if s.Has(b.Unit, b.Version) {
		t.Error("LRU bundle not evicted")
	}
	if !s.Has(a.Unit, a.Version) || !s.Has(c.Unit, c.Version) {
		t.Error("wrong bundle evicted")
	}
	_, _, ev := s.Counters()
	if ev != 1 {
		t.Errorf("evictions = %d", ev)
	}
	if s.Used() > budget {
		t.Errorf("used %d > budget %d", s.Used(), budget)
	}
}

func TestStoreRejectsOversizedAndUnverified(t *testing.T) {
	a, _ := BundleFor(signal.NameWave)
	s := NewStore(10)
	if err := s.Put(a); err == nil {
		t.Error("oversized bundle stored")
	}
	bad := *a
	bad.Checksum = "0000000000000000"
	s2 := NewStore(0)
	if err := s2.Put(&bad); err == nil {
		t.Error("unverified bundle stored")
	}
}

func TestStoreReplaceAndRemove(t *testing.T) {
	a, _ := BundleFor(signal.NameWave)
	s := NewStore(0)
	s.Put(a)
	s.Put(a) // replace
	if s.Len() != 1 || s.Used() != a.Size() {
		t.Errorf("len=%d used=%d", s.Len(), s.Used())
	}
	if !s.Remove(a.Unit, a.Version) || s.Remove(a.Unit, a.Version) {
		t.Error("Remove semantics")
	}
	if s.Used() != 0 {
		t.Errorf("used after remove = %d", s.Used())
	}
	hits, misses, _ := s.Counters()
	if hits != 0 || misses != 0 {
		t.Error("Has/Remove affected counters")
	}
	if _, ok := s.Get("x", "1"); ok {
		t.Error("Get on empty store")
	}
}

func TestFetcherOnDemandAndCacheHit(t *testing.T) {
	tr := jxtaserve.NewInProc()
	owner, err := jxtaserve.NewHost("owner", tr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	srv := Attach(owner)

	consumer, err := jxtaserve.NewHost("consumer", tr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	f := NewFetcher(consumer, NewStore(0))

	meta, _ := units.Lookup(signal.NameWave)
	if f.Executable(signal.NameWave) {
		t.Error("executable before fetch")
	}
	b, err := f.Ensure(signal.NameWave, meta.Version, owner.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Verify() || !f.Executable(signal.NameWave) {
		t.Error("fetched bundle unusable")
	}
	// Second Ensure is a cache hit: no new fetch.
	if _, err := f.Ensure(signal.NameWave, meta.Version, owner.Addr()); err != nil {
		t.Fatal(err)
	}
	fetches, bytes := f.Fetches()
	if fetches != 1 || bytes != b.Size() {
		t.Errorf("fetches=%d bytes=%d", fetches, bytes)
	}
	served, sBytes := srv.Served()
	if served != 1 || sBytes < b.Size() {
		t.Errorf("served=%d bytes=%d", served, sBytes)
	}
	// Version skew rejected by the owner.
	if _, err := f.Ensure(signal.NameWave, "0.0-stale", owner.Addr()); err == nil ||
		!strings.Contains(err.Error(), "version skew") {
		t.Errorf("stale version err = %v", err)
	}
	// Unknown unit.
	if _, err := f.Ensure("no.such.Unit", "", owner.Addr()); err == nil {
		t.Error("unknown unit fetched")
	}
	// Empty version fetches latest each time (owner round trip).
	if _, err := f.Ensure(signal.NameFFT, "", owner.Addr()); err != nil {
		t.Fatal(err)
	}
	if !f.Executable(signal.NameFFT) {
		t.Error("latest fetch not executable")
	}
}

func TestEnsureGraphUnits(t *testing.T) {
	tr := jxtaserve.NewInProc()
	owner, _ := jxtaserve.NewHost("owner", tr, "")
	defer owner.Close()
	Attach(owner)
	consumer, _ := jxtaserve.NewHost("consumer", tr, "")
	defer consumer.Close()
	f := NewFetcher(consumer, NewStore(0))

	want := map[string]string{}
	for _, u := range []string{signal.NameWave, signal.NameGaussianNoise, signal.NameFFT} {
		m, _ := units.Lookup(u)
		want[u] = m.Version
	}
	total, err := f.EnsureGraphUnits(want, owner.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Error("no bytes transferred")
	}
	// Warm call transfers nothing.
	total2, err := f.EnsureGraphUnits(want, owner.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if total2 != 0 {
		t.Errorf("warm transfer = %d bytes", total2)
	}
	// Failure mid-set is reported.
	want["ghost.Unit"] = "1.0"
	if _, err := f.EnsureGraphUnits(want, owner.Addr()); err == nil {
		t.Error("ghost unit ensured")
	}
}

func TestExecutableRequiresRegistryMatch(t *testing.T) {
	f := NewFetcher(nil, NewStore(0))
	if f.Executable("no.such.Unit") {
		t.Error("unknown unit executable")
	}
}
