package mcode

import (
	"fmt"
	"sync/atomic"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/units"
)

// MethodFetch is the RPC method served by module owners.
const MethodFetch = "mcode.fetch"

// Server makes a peer a module owner: it answers fetch RPCs for any unit
// registered in the process registry, always at the registry's current
// version. Requesting a stale version is an error — the consistency
// property the paper attributes to owner-sourced downloads.
type Server struct {
	served atomic.Int64
	bytes  atomic.Int64
}

// Attach registers the fetch handler on a host and returns the server
// for its counters.
func Attach(host *jxtaserve.Host) *Server {
	s := &Server{}
	host.Handle(MethodFetch, func(req *jxtaserve.Message) (*jxtaserve.Message, error) {
		unit := req.Header("unit")
		wantVersion := req.Header("version")
		meta, ok := units.Lookup(unit)
		if !ok {
			return nil, fmt.Errorf("mcode: unit %q not hosted here", unit)
		}
		if wantVersion != "" && wantVersion != meta.Version {
			return nil, fmt.Errorf("mcode: version skew for %s: owner has %s, requested %s",
				unit, meta.Version, wantVersion)
		}
		b, err := BundleFor(unit)
		if err != nil {
			return nil, err
		}
		payload := b.Marshal()
		s.served.Add(1)
		s.bytes.Add(int64(len(payload)))
		return &jxtaserve.Message{Payload: payload}, nil
	})
	return s
}

// Served reports (bundles served, bytes served).
func (s *Server) Served() (int64, int64) { return s.served.Load(), s.bytes.Load() }

// Fetcher resolves module bundles for a consuming peer: local store
// first, owner fetch on miss.
type Fetcher struct {
	host  *jxtaserve.Host
	store *Store

	fetches     atomic.Int64
	fetchedByte atomic.Int64
}

// NewFetcher binds a fetcher to a host and store.
func NewFetcher(host *jxtaserve.Host, store *Store) *Fetcher {
	return &Fetcher{host: host, store: store}
}

// Store exposes the backing store.
func (f *Fetcher) Store() *Store { return f.store }

// Fetches reports (remote fetches performed, bytes transferred).
func (f *Fetcher) Fetches() (int64, int64) { return f.fetches.Load(), f.fetchedByte.Load() }

// Ensure guarantees the unit@version is present in the local store,
// fetching from ownerAddr on a miss. version "" means "whatever the
// owner currently has". It returns the bundle in the store.
func (f *Fetcher) Ensure(unit, version, ownerAddr string) (*Bundle, error) {
	if version != "" {
		if b, ok := f.store.Get(unit, version); ok {
			return b, nil
		}
	}
	reply, err := f.host.Request(ownerAddr, MethodFetch, nil, map[string]string{
		"unit": unit, "version": version,
	})
	if err != nil {
		return nil, err
	}
	b, err := UnmarshalBundle(reply.Payload)
	if err != nil {
		return nil, err
	}
	if b.Unit != unit {
		return nil, fmt.Errorf("mcode: owner returned %s for requested %s", b.Unit, unit)
	}
	if version != "" && b.Version != version {
		return nil, fmt.Errorf("mcode: owner returned version %s, wanted %s", b.Version, version)
	}
	f.fetches.Add(1)
	f.fetchedByte.Add(b.Size())
	fetchesTotal.Inc()
	fetchedBytes.Add(b.Size())
	if err := f.store.Put(b); err != nil {
		return nil, err
	}
	return b, nil
}

// EnsureGraphUnits resolves every distinct unit used by the named task
// list, returning total bytes transferred. It is the "peer can request
// executable code for modules that are present within the connectivity
// graph" step before executing a received subgraph.
func (f *Fetcher) EnsureGraphUnits(unitVersions map[string]string, ownerAddr string) (int64, error) {
	var total int64
	for unit, version := range unitVersions {
		before, _ := f.Fetches()
		b, err := f.Ensure(unit, version, ownerAddr)
		if err != nil {
			return total, fmt.Errorf("mcode: ensuring %s: %w", unit, err)
		}
		after, _ := f.Fetches()
		if after > before {
			total += b.Size()
		}
	}
	return total, nil
}

// Executable reports whether the peer may execute the unit: the bundle
// must be cached at the registry version (the process holds the factory;
// the bundle is the licence to use it — our stand-in for "the code is
// present").
func (f *Fetcher) Executable(unit string) bool {
	meta, ok := units.Lookup(unit)
	if !ok {
		return false
	}
	return f.store.Has(unit, meta.Version)
}
