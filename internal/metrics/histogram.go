package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// reservoirCap is the default bounded-sample window: large enough that
// nearest-rank quantiles stay within a few percent of exact values,
// small enough that a week-long gridsim run holds a fixed ~16 KiB per
// series instead of one append per observation.
const reservoirCap = 2048

// reservoir keeps a uniform random sample of an unbounded observation
// stream (Vitter's algorithm R) plus exact count/sum/min/max. The
// replacement draws come from a per-reservoir seeded source — never the
// global math/rand lock — so observation order is deterministic per
// series and hot paths do not contend on a process-wide mutex.
type reservoir struct {
	cap int
	rng *rand.Rand
	buf []float64
	n   int64
	sum float64
	min float64
	max float64
}

func newReservoir(capacity int) *reservoir {
	if capacity <= 0 {
		capacity = reservoirCap
	}
	return &reservoir{
		cap: capacity,
		// Fixed seed: sampling is reproducible run to run, and two
		// reservoirs fed identical streams retain identical samples.
		rng: rand.New(rand.NewSource(0x6c657661746f72)),
		buf: make([]float64, 0, capacity),
	}
}

// observe records one value. Callers hold the owning metric's lock.
func (r *reservoir) observe(v float64) {
	r.n++
	r.sum += v
	if r.n == 1 || v < r.min {
		r.min = v
	}
	if r.n == 1 || v > r.max {
		r.max = v
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.cap) {
		r.buf[j] = v
	}
}

// quantile reports the p-th percentile (0 < p <= 100) by nearest rank
// over the retained sample — exact until the stream exceeds the cap,
// an unbiased estimate after. Callers hold the owning metric's lock.
func (r *reservoir) quantile(p float64) float64 {
	if len(r.buf) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.buf...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Histogram is a concurrency-safe bounded-memory distribution: exact
// count/sum/min/max plus reservoir-sampled quantiles.
type Histogram struct {
	mu  sync.Mutex
	res *reservoir
}

// NewHistogram creates a histogram retaining up to capacity samples
// (capacity <= 0 selects the default).
func NewHistogram(capacity int) *Histogram {
	return &Histogram{res: newReservoir(capacity)}
}

// resLocked lazily creates the reservoir so the zero Histogram is
// usable. Callers hold h.mu.
func (h *Histogram) resLocked() *reservoir {
	if h.res == nil {
		h.res = newReservoir(0)
	}
	return h.res
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.resLocked().observe(v)
	h.mu.Unlock()
}

// Count reports total observations (not just retained ones).
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resLocked().n
}

// Sum reports the exact running sum.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resLocked().sum
}

// Min reports the exact minimum observation (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resLocked().min
}

// Max reports the exact maximum observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resLocked().max
}

// Mean reports sum/count, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.resLocked()
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Quantile reports the p-th percentile estimate (0 < p <= 100).
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resLocked().quantile(p)
}

// Stored reports retained samples — bounded by the capacity no matter
// how many observations arrived (the leak-regression assertion).
func (h *Histogram) Stored() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.resLocked().buf)
}
