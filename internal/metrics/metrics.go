// Package metrics provides the counters, timers and table/CSV emitters
// used by the experiment harness (cmd/gridsim) and the benchmarks to
// report results in the row/series form the paper's evaluation uses.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter. It is lock-free so
// hot paths (wire framing, engine fan-out) can increment it without a
// shared mutex.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.n.Load() }

// Timer accumulates duration samples and reports summary statistics.
// Storage is bounded: the count and total are exact, while quantiles
// come from a fixed-size uniform reservoir, so a Timer observed for a
// week holds the same memory as one observed for a second. (The
// original append-only sample slice leaked without bound on day-long
// gridsim runs.)
type Timer struct {
	mu  sync.Mutex
	res *reservoir
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	if t.res == nil {
		t.res = newReservoir(reservoirCap)
	}
	t.res.observe(float64(d))
	t.mu.Unlock()
}

// Time runs f and records its duration.
func (t *Timer) Time(f func()) {
	start := time.Now()
	f()
	t.Observe(time.Since(start))
}

// Count reports the number of samples observed.
func (t *Timer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.res == nil {
		return 0
	}
	return int(t.res.n)
}

// Stored reports the samples actually retained — capped at the
// reservoir size regardless of Count (the leak-regression assertion).
func (t *Timer) Stored() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.res == nil {
		return 0
	}
	return len(t.res.buf)
}

// Total reports the exact summed duration.
func (t *Timer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.res == nil {
		return 0
	}
	return time.Duration(t.res.sum)
}

// Mean reports the average sample, or 0 with no samples.
func (t *Timer) Mean() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.res == nil || t.res.n == 0 {
		return 0
	}
	return time.Duration(t.res.sum / float64(t.res.n))
}

// Percentile reports the p-th percentile (0 < p <= 100) by
// nearest-rank over the retained sample: exact while the stream fits
// the reservoir, an unbiased estimate beyond it. 0 with no samples.
func (t *Timer) Percentile(p float64) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.res == nil {
		return 0
	}
	return time.Duration(t.res.quantile(p))
}

// Table accumulates rows and renders them with aligned columns — the
// form every gridsim experiment prints.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are stringified with %v (floats get %.4g).
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the row data.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (no title line).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
