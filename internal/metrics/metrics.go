// Package metrics provides the counters, timers and table/CSV emitters
// used by the experiment harness (cmd/gridsim) and the benchmarks to
// report results in the row/series form the paper's evaluation uses.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter is a concurrency-safe monotonic counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Timer accumulates duration samples and reports summary statistics.
type Timer struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	t.samples = append(t.samples, d)
	t.mu.Unlock()
}

// Time runs f and records its duration.
func (t *Timer) Time(f func()) {
	start := time.Now()
	f()
	t.Observe(time.Since(start))
}

// Count reports the number of samples.
func (t *Timer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Total reports the summed duration.
func (t *Timer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s time.Duration
	for _, d := range t.samples {
		s += d
	}
	return s
}

// Mean reports the average sample, or 0 with no samples.
func (t *Timer) Mean() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range t.samples {
		s += d
	}
	return s / time.Duration(len(t.samples))
}

// Percentile reports the p-th percentile (0 < p <= 100) by
// nearest-rank, or 0 with no samples.
func (t *Timer) Percentile(p float64) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), t.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Table accumulates rows and renders them with aligned columns — the
// form every gridsim experiment prints.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are stringified with %v (floats get %.4g).
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the row data.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (no title line).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
