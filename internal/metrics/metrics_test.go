package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	c.Add(-8000)
	if c.Value() != 0 {
		t.Errorf("after Add = %d", c.Value())
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	for i := 1; i <= 100; i++ {
		tm.Observe(time.Duration(i) * time.Millisecond)
	}
	if tm.Count() != 100 {
		t.Errorf("count = %d", tm.Count())
	}
	if tm.Mean() != 50500*time.Microsecond {
		t.Errorf("mean = %v", tm.Mean())
	}
	if got := tm.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := tm.Percentile(95); got != 95*time.Millisecond {
		t.Errorf("p95 = %v", got)
	}
	if got := tm.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if tm.Total() != 5050*time.Millisecond {
		t.Errorf("total = %v", tm.Total())
	}
	var empty Timer
	if empty.Mean() != 0 || empty.Percentile(50) != 0 || empty.Count() != 0 {
		t.Error("empty timer stats nonzero")
	}
}

func TestTimerTime(t *testing.T) {
	var tm Timer
	tm.Time(func() { time.Sleep(time.Millisecond) })
	if tm.Count() != 1 || tm.Total() < time.Millisecond {
		t.Errorf("Time recorded %v", tm.Total())
	}
}

func TestTableRenderAligned(t *testing.T) {
	tab := NewTable("T1: sizing", "templates", "availability", "peers")
	tab.AddRow(5000, 1.0, 20)
	tab.AddRow(10000, 0.5, 80)
	out := tab.String()
	if !strings.Contains(out, "## T1: sizing") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Fatalf("lines = %d:\n%s", len(lines), out)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	rows := tab.Rows()
	rows[0][0] = "mutated"
	if tab.Rows()[0][0] == "mutated" {
		t.Error("Rows returned aliased data")
	}
	// Columns align: header and row cells start at the same offsets.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "availability") != strings.Index(row, "1") &&
		strings.Index(hdr, "availability") > len(row) {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableFormatsTypes(t *testing.T) {
	tab := NewTable("", "f64", "f32", "dur", "str")
	tab.AddRow(3.14159265, float32(2.5), 1500*time.Microsecond, "x")
	row := tab.Rows()[0]
	if row[0] != "3.142" {
		t.Errorf("f64 = %q", row[0])
	}
	if row[2] != "1.5ms" {
		t.Errorf("dur = %q", row[2])
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tab := NewTable("x", "a", "b")
	tab.AddRow(`has,comma`, `has"quote`)
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, `"has,comma"`) || !strings.Contains(got, `"has""quote"`) {
		t.Errorf("csv = %q", got)
	}
	if strings.Contains(got, "## ") {
		t.Error("CSV contains title")
	}
}
