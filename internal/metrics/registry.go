// Live metrics registry: named counters, gauges and bounded histograms
// that subsystems register once and mutate on hot paths, rendered in
// Prometheus text exposition format by webstatus /metrics and the
// triana.metrics RPC. This is the promotion of the package from
// experiment-table emitters to production observability: the experiment
// tables read a finished run, the registry reads a *running* daemon.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Gauge is a concurrency-safe instantaneous value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Registry holds the named metrics of one process (or one test). Names
// follow Prometheus conventions — `subsystem_thing_total`, optionally
// with a label suffix built by Series — and each name maps to exactly
// one metric instance for the registry's lifetime.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var (
	defaultReg     *Registry
	defaultRegOnce sync.Once
)

// Default returns the process-wide registry. Subsystems without an
// injection point (the engine, the wire codec) record here; /metrics
// serves it, so one scrape sees the whole process like a Prometheus
// target.
func Default() *Registry {
	defaultRegOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// Series renders a full series name from a family and labels, with
// deterministic label order: Series("x_total", "peer", "a") ->
// `x_total{peer="a"}`. Label values are escaped per the text format.
func Series(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter binds an existing counter under a name (how the
// despatch ResilienceStats appear on /metrics without double counting).
// A previous binding for the name is replaced.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// family strips the label suffix from a series name, so TYPE lines are
// emitted once per family.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixSeries appends a suffix to the metric name while keeping the
// label block at the end: x{a="b"} + _sum -> x_sum{a="b"}.
func suffixSeries(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// quantileSeries splices a quantile label into a series name,
// preserving existing labels: x{a="b"} -> x{a="b",quantile="0.5"}.
func quantileSeries(name, q string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + `,quantile="` + q + `"}`
	}
	return name + `{quantile="` + q + `"}`
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4), sorted by name so scrapes
// and tests are deterministic. Histograms render as summaries:
// quantile series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		f := family(name)
		if !typed[f] {
			typed[f] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", f, kind)
		}
	}

	for _, name := range sortedKeys(counters) {
		writeType(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		writeType(name, "gauge")
		fmt.Fprintf(&b, "%s %g\n", name, gauges[name].Value())
	}
	for _, name := range sortedKeys(histograms) {
		writeType(name, "summary")
		h := histograms[name]
		count, sum := h.Count(), h.Sum()
		for _, q := range []struct {
			label string
			p     float64
		}{{"0.5", 50}, {"0.9", 90}, {"0.99", 99}} {
			fmt.Fprintf(&b, "%s %g\n", quantileSeries(name, q.label), h.Quantile(q.p))
		}
		fmt.Fprintf(&b, "%s %g\n", suffixSeries(name, "_sum"), sum)
		fmt.Fprintf(&b, "%s %d\n", suffixSeries(name, "_count"), count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
