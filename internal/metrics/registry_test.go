package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTimerBoundedReservoir is the regression test for the unbounded
// Timer.samples leak: a million observations must retain only the
// reservoir cap, keep the exact count and total, and still produce
// sane quantiles.
func TestTimerBoundedReservoir(t *testing.T) {
	var tm Timer
	const n = 1_000_000
	for i := 1; i <= n; i++ {
		tm.Observe(time.Duration(i))
	}
	if tm.Count() != n {
		t.Errorf("count = %d, want %d", tm.Count(), n)
	}
	if got := tm.Stored(); got > reservoirCap {
		t.Errorf("stored %d samples, cap is %d — reservoir is not bounded", got, reservoirCap)
	}
	if want := time.Duration(n) * time.Duration(n+1) / 2; tm.Total() != want {
		t.Errorf("total = %v, want %v", tm.Total(), want)
	}
	// The sampled median of 1..n should land near n/2; a wide tolerance
	// keeps the deterministic-seed reservoir from ever flaking.
	p50 := tm.Percentile(50)
	if p50 < n/4 || p50 > 3*n/4 {
		t.Errorf("sampled p50 = %v, outside [n/4, 3n/4]", p50)
	}
	if tm.Percentile(100) > n {
		t.Errorf("p100 = %v exceeds max observation", tm.Percentile(100))
	}
}

// TestTimerExactUnderCap: while observations fit the reservoir, stats
// stay exact — the pre-existing Timer behaviour tests rely on this.
func TestTimerExactUnderCap(t *testing.T) {
	var tm Timer
	for i := 1; i <= reservoirCap; i++ {
		tm.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := tm.Percentile(50); got != time.Duration(reservoirCap/2)*time.Microsecond {
		t.Errorf("exact p50 = %v", got)
	}
	if tm.Stored() != reservoirCap {
		t.Errorf("stored = %d", tm.Stored())
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %g", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %g/%g", h.Min(), h.Max())
	}
	if got := h.Quantile(50); got != 50 {
		t.Errorf("q50 = %g", got)
	}
	var empty Histogram
	if empty.Quantile(50) != 0 || empty.Count() != 0 {
		t.Error("empty histogram stats nonzero")
	}
}

func TestSeriesNaming(t *testing.T) {
	if got := Series("x_total"); got != "x_total" {
		t.Errorf("no labels: %q", got)
	}
	// Labels sort by key regardless of argument order.
	a := Series("x_total", "peer", "w1", "method", "run")
	b := Series("x_total", "method", "run", "peer", "w1")
	want := `x_total{method="run",peer="w1"}`
	if a != want || b != want {
		t.Errorf("series = %q / %q, want %q", a, b, want)
	}
	if got := Series("x", "k", "a\"b\\c\nd"); got != `x{k="a\"b\\c\nd"}` {
		t.Errorf("escaped = %q", got)
	}
}

func TestRegistryPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("seen_total").Add(3)
	r.Counter(Series("seen_total", "peer", "w1")).Add(2)
	r.Gauge("inflight").Set(1.5)
	h := r.Histogram(Series("exec_seconds", "unit", "wave"))
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE seen_total counter\n",
		"seen_total 3\n",
		`seen_total{peer="w1"} 2` + "\n",
		"# TYPE inflight gauge\n",
		"inflight 1.5\n",
		"# TYPE exec_seconds summary\n",
		`exec_seconds{unit="wave",quantile="0.5"}`,
		`exec_seconds_sum{unit="wave"} 55` + "\n",
		`exec_seconds_count{unit="wave"} 10` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// TYPE for a family appears exactly once even with many label sets.
	if strings.Count(out, "# TYPE seen_total counter") != 1 {
		t.Errorf("duplicated TYPE line:\n%s", out)
	}
}

// quantileSeries appends to an existing label block (quantile lands
// after the sorted user labels) and suffixSeries must keep the label
// block trailing; both shapes are part of the exposition contract.
func TestQuantileSeriesShape(t *testing.T) {
	if got := quantileSeries(`x{unit="wave"}`, "0.9"); got != `x{unit="wave",quantile="0.9"}` {
		t.Errorf("labeled = %q", got)
	}
	if got := quantileSeries("x", "0.5"); got != `x{quantile="0.5"}` {
		t.Errorf("bare = %q", got)
	}
	if got := suffixSeries(`x{a="b"}`, "_sum"); got != `x_sum{a="b"}` {
		t.Errorf("suffix = %q", got)
	}
}

func TestRegisterCounterSharesInstance(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.RegisterCounter("bound_total", &c)
	c.Add(7)
	if got := r.Counter("bound_total").Value(); got != 7 {
		t.Errorf("registry sees %d, want 7", got)
	}
}

// TestRegistryConcurrent hammers get-or-create, observation and
// collection in parallel; run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 4, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j))
				r.Counter(Series("c_total", "peer", "w1")).Inc()
			}
		}()
	}
	// Collect concurrently with the observers.
	collected := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 50 && err == nil; i++ {
			var b strings.Builder
			err = r.WritePrometheus(&b)
		}
		collected <- err
	}()
	wg.Wait()
	if err := <-collected; err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("c_total").Value(); got != workers*iters {
		t.Errorf("c_total = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("h").Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "c_total 2000\n") {
		t.Errorf("final render missing settled counter:\n%s", b.String())
	}
}
