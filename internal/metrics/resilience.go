package metrics

// ResilienceStats groups the counters the despatch resilience layer
// maintains: how often RPCs were retried, parts re-despatched to
// alternate peers, heartbeats missed, peers declared dead, and how many
// computed items were discarded as wasted work when a failed attempt's
// partial output was thrown away (§3.6.2 recovery accounting).
type ResilienceStats struct {
	Retries           Counter // RPC attempts beyond the first
	Redespatches      Counter // parts moved to an alternate peer
	HeartbeatMisses   Counter // individual heartbeat probes that failed
	PeersDeclaredDead Counter // failure-detector verdicts
	WastedItems       Counter // outputs discarded from failed attempts

	// Speculation and quorum accounting (the untrusted-peer layer):
	// backup attempts launched past the straggler threshold, races a
	// backup won, outputs thrown away because a racing sibling committed
	// first, chunks committed by majority vote, and quorum votes where a
	// peer's result digest disagreed with the majority.
	SpeculationLaunches Counter
	SpeculationWins     Counter
	SpeculationWaste    Counter
	QuorumCommits       Counter
	QuorumDisagreements Counter
	// DespatchSheds counts despatch attempts refused by admission
	// control because the in-flight budget was exhausted.
	DespatchSheds Counter
	// FarmEgressBytes counts the controller's data-plane bytes per farm:
	// streamed payloads on the legacy path; manifests, ring write-through
	// replicas, and controller-direct chunk serves on the data-tier path.
	// The content-addressed tier exists to drive this number down.
	FarmEgressBytes Counter
}

// ResilienceSnapshot is a point-in-time copy of the counters, in the
// shape the webstatus page and test assertions consume.
type ResilienceSnapshot struct {
	Retries             int64
	Redespatches        int64
	HeartbeatMisses     int64
	PeersDeclaredDead   int64
	WastedItems         int64
	SpeculationLaunches int64
	SpeculationWins     int64
	SpeculationWaste    int64
	QuorumCommits       int64
	QuorumDisagreements int64
	DespatchSheds       int64
	FarmEgressBytes     int64
}

// Snapshot reads every counter at once.
func (s *ResilienceStats) Snapshot() ResilienceSnapshot {
	return ResilienceSnapshot{
		Retries:             s.Retries.Value(),
		Redespatches:        s.Redespatches.Value(),
		HeartbeatMisses:     s.HeartbeatMisses.Value(),
		PeersDeclaredDead:   s.PeersDeclaredDead.Value(),
		WastedItems:         s.WastedItems.Value(),
		SpeculationLaunches: s.SpeculationLaunches.Value(),
		SpeculationWins:     s.SpeculationWins.Value(),
		SpeculationWaste:    s.SpeculationWaste.Value(),
		QuorumCommits:       s.QuorumCommits.Value(),
		QuorumDisagreements: s.QuorumDisagreements.Value(),
		DespatchSheds:       s.DespatchSheds.Value(),
		FarmEgressBytes:     s.FarmEgressBytes.Value(),
	}
}
