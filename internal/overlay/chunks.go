// Chunk replica placement on the super-peer ring. The discovery
// overlay already gives every key a consistent-hash home and R-way
// replication; the data tier reuses exactly that machinery for
// content-addressed chunks: a controller write-throughs each chunk to
// the ring owners of its digest, and donors fetch from those owners
// over the chunk-fetch wire conversation before falling back to each
// other or the controller.
//
// Unlike adverts, chunks are immutable and self-verifying (the key is
// the SHA-256 of the bytes), so there are no versions, no tombstones
// and no anti-entropy: a replica either holds the digest or it does
// not, and a fetched payload proves itself.
package overlay

import (
	"fmt"
	"strconv"

	"consumergrid/internal/chunkstore"
	"consumergrid/internal/jxtaserve"
)

// methodChunkPut stores one chunk replica on a super-peer.
// Headers: digest; payload: the chunk bytes.
const methodChunkPut = "overlay.chunk.put"

// ChunkVault is the storage a super-peer accepts chunk replicas into
// and serves chunk-fetch conversations from. *chunkstore.Store
// satisfies it; the interface keeps the overlay agnostic of cache
// policy.
type ChunkVault interface {
	Put(digest string, data []byte)
	Get(digest string) ([]byte, bool)
}

// ChunkKey places a digest on the ring, namespaced away from the
// advert topic keys.
func ChunkKey(digest string) string { return "chunk/" + digest }

// handleChunkPut accepts one replica after verifying the bytes hash to
// their claimed digest — a corrupt or hostile write is refused, never
// served onward.
func (s *SuperPeer) handleChunkPut(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	vault := s.opts.Chunks
	if vault == nil {
		return nil, fmt.Errorf("no chunk vault at %s", s.host.PeerID())
	}
	digest := req.Header("digest")
	if digest == "" {
		return nil, fmt.Errorf("chunk.put without digest")
	}
	if chunkstore.Digest(req.Payload) != digest {
		return nil, fmt.Errorf("chunk.put payload does not hash to %s", digest)
	}
	vault.Put(digest, req.Payload)
	s.metrics.chunkPuts.Inc()
	s.metrics.chunkPutBytes.Add(int64(len(req.Payload)))
	return &jxtaserve.Message{}, nil
}

// ChunkOwners reports the ring addresses responsible for a digest, in
// placement order — what a controller embeds in manifests as the ring
// rungs of the fetch ladder.
func (c *Client) ChunkOwners(digest string) []string {
	return c.opts.Ring.Owners(ChunkKey(digest), c.opts.Replication)
}

// PutChunk write-throughs one chunk to every ring owner of its digest.
// Chunks are immutable, so unlike adverts there is no version to
// coordinate: the client writes each replica directly and best-effort —
// a missed replica only shortens the fetch ladder, the controller-
// direct rung still resolves the digest. Returns how many replicas
// acknowledged.
func (c *Client) PutChunk(digest string, data []byte) (int, error) {
	owners := c.ChunkOwners(digest)
	if len(owners) == 0 {
		return 0, fmt.Errorf("overlay: no super-peers on the ring")
	}
	headers := map[string]string{
		"digest": digest,
		"size":   strconv.Itoa(len(data)),
	}
	acked := 0
	var lastErr error
	for _, addr := range owners {
		if _, err := c.host.Request(addr, methodChunkPut, data, headers); err != nil {
			c.health.ReportFailure(addr)
			lastErr = err
			c.logf("overlay: %s chunk.put %s via %s: %v", c.host.PeerID(), digest[:min(12, len(digest))], addr, err)
			continue
		}
		c.health.ReportSuccess(addr, 0)
		acked++
	}
	if acked == 0 {
		return 0, lastErr
	}
	return acked, nil
}
