package overlay

import (
	"fmt"
	"testing"
	"time"

	"consumergrid/internal/chunkstore"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/metrics"
	"consumergrid/internal/simnet"
)

// chunkCluster is newCluster with a chunk vault attached to every
// super, the shape a data-tier ring runs in production.
type chunkCluster struct {
	*cluster
	vaults []*chunkstore.Store
}

func newChunkCluster(t *testing.T, n, r int) *chunkCluster {
	t.Helper()
	c := &chunkCluster{cluster: &cluster{t: t, net: simnet.New(), ring: NewRing(0)}}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("super-%d", i)
		h, err := jxtaserve.NewHost(label, c.net.Peer(label), "")
		if err != nil {
			t.Fatal(err)
		}
		c.hosts = append(c.hosts, h)
		c.ring.Add(h.Addr())
	}
	for i, h := range c.hosts {
		vault := chunkstore.New(chunkstore.Options{
			Owner:    fmt.Sprintf("super-%d", i),
			Registry: metrics.NewRegistry(),
		})
		c.vaults = append(c.vaults, vault)
		sp, err := NewSuper(h, SuperOptions{
			Ring: c.ring, Replication: r, SweepInterval: -1, Chunks: vault,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.supers = append(c.supers, sp)
	}
	t.Cleanup(func() {
		for _, sp := range c.supers {
			sp.Close()
		}
		for _, h := range c.hosts {
			h.Close()
		}
	})
	return c
}

func TestPutChunkReplicatesToRingOwners(t *testing.T) {
	c := newChunkCluster(t, 3, 2)
	cl := c.client("controller", 2)

	data := []byte("immutable chunk bytes")
	digest := chunkstore.Digest(data)

	acked, err := cl.PutChunk(digest, data)
	if err != nil {
		t.Fatal(err)
	}
	if acked != 2 {
		t.Fatalf("acked = %d, want 2 replicas", acked)
	}

	owners := cl.ChunkOwners(digest)
	if len(owners) != 2 {
		t.Fatalf("owners = %v", owners)
	}
	isOwner := map[string]bool{}
	for _, addr := range owners {
		isOwner[addr] = true
	}
	for i, h := range c.hosts {
		_, held := c.vaults[i].Get(digest)
		if held != isOwner[h.Addr()] {
			t.Fatalf("super %d (owner=%v) held=%v", i, isOwner[h.Addr()], held)
		}
	}

	// The replica serves the chunk back over the chunk-fetch wire
	// conversation — the ring rung of a donor's fetch ladder.
	fh, err := jxtaserve.NewHost("donor", c.net.Peer("donor"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	got, err := fh.FetchChunk(owners[0], digest, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("fetched %q", got)
	}
}

func TestPutChunkRejectsCorruptPayload(t *testing.T) {
	c := newChunkCluster(t, 2, 2)
	cl := c.client("controller", 2)
	if _, err := cl.PutChunk(chunkstore.Digest([]byte("real")), []byte("fake")); err == nil {
		t.Fatal("corrupt chunk.put was accepted")
	}
	for i := range c.vaults {
		if c.vaults[i].Len() != 0 {
			t.Fatalf("super %d stored a corrupt chunk", i)
		}
	}
}

func TestPutChunkWithoutVaultRefused(t *testing.T) {
	// newCluster attaches no vault: discovery-only supers must refuse
	// chunk writes rather than silently dropping them.
	c := newCluster(t, 2, 2, time.Now)
	cl := c.client("controller", 2)
	data := []byte("x")
	if _, err := cl.PutChunk(chunkstore.Digest(data), data); err == nil {
		t.Fatal("chunk.put accepted by vault-less super")
	}
}

func TestPutChunkSurvivesDeadReplica(t *testing.T) {
	c := newChunkCluster(t, 3, 2)
	cl := c.client("controller", 2)
	data := []byte("replicated despite a dead owner")
	digest := chunkstore.Digest(data)

	owners := cl.ChunkOwners(digest)
	// Kill the primary owner; the write-through still lands on the
	// surviving replica and reports one ack.
	for i, h := range c.hosts {
		if h.Addr() == owners[0] {
			c.net.Kill(fmt.Sprintf("super-%d", i))
		}
	}
	acked, err := cl.PutChunk(digest, data)
	if err != nil {
		t.Fatal(err)
	}
	if acked != 1 {
		t.Fatalf("acked = %d, want 1 (primary dead)", acked)
	}
}
