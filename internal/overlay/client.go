package overlay

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/health"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/metrics"
	"consumergrid/internal/trace"
)

// Event is one pushed subscription update: a new or changed advert, or
// its retraction (expiry, explicit withdrawal).
type Event struct {
	SubID     string
	ID        string // advert ID
	Version   uint64
	Retracted bool
	Ad        *advert.Advertisement // nil on retraction
}

// ClientOptions configures an overlay client.
type ClientOptions struct {
	// Ring is the super-peer membership to publish into and query.
	// Required; shared with (or mirroring) the supers' ring.
	Ring *Ring
	// Replication is the factor R the supers run with (default
	// DefaultReplication). The client subscribes to every owner of its
	// topic so a single super death never silences its subscriptions.
	Replication int
	// Health orders owner candidates (healthy supers tried first) and
	// receives the client's RPC outcomes. Optional; nil builds a
	// private tracker.
	Health *health.Tracker
	// EventBuffer is each subscription channel's depth (default 64).
	// A full channel drops the oldest pending event, never blocks the
	// push path.
	EventBuffer int
	// Registry receives overlay_client_* series (default metrics.Default()).
	Registry *metrics.Registry
	// Tracer records publish spans (default trace.Default()).
	Tracer *trace.Recorder
	// Logf receives diagnostics; may be nil.
	Logf func(format string, args ...any)
}

// clientSub is one live subscription with its per-advert version dedup
// table: the same write reaches the client once per owner pushing it,
// and must surface exactly once.
type clientSub struct {
	id    string
	query advert.Query
	ch    chan Event
	seen  map[string]uint64 // advert ID -> highest delivered version
}

// Client is a peer's handle on the discovery overlay: it publishes the
// peer's own adverts (with monotonic versions), queries the ring, and
// holds push subscriptions.
type Client struct {
	host    *jxtaserve.Host
	opts    ClientOptions
	health  *health.Tracker
	metrics *clientMetrics
	tracer  *trace.Recorder

	mu        sync.Mutex
	versions  map[string]uint64 // per published advert ID
	published map[string]*advert.Advertisement
	subs      map[string]*clientSub
	closed    bool
}

// NewClient attaches an overlay client to a host and registers its
// notification handler immediately.
func NewClient(host *jxtaserve.Host, opts ClientOptions) (*Client, error) {
	if opts.Ring == nil {
		return nil, fmt.Errorf("overlay: ClientOptions.Ring required")
	}
	if opts.Replication <= 0 {
		opts.Replication = DefaultReplication
	}
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = 64
	}
	if opts.Health == nil {
		opts.Health = health.New(health.Options{Owner: host.PeerID()})
	}
	if opts.Tracer == nil {
		opts.Tracer = trace.Default()
	}
	c := &Client{
		host:      host,
		opts:      opts,
		health:    opts.Health,
		metrics:   newClientMetrics(opts.Registry, host.PeerID()),
		tracer:    opts.Tracer,
		versions:  make(map[string]uint64),
		published: make(map[string]*advert.Advertisement),
		subs:      make(map[string]*clientSub),
	}
	host.Handle(methodNotify, c.handleNotify)
	return c, nil
}

// Close drops every subscription, telling the supers best-effort so
// they stop pushing, and closes the event channels.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := make([]*clientSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = make(map[string]*clientSub)
	c.mu.Unlock()
	for _, s := range subs {
		c.tellUnsubscribe(s)
		close(s.ch)
	}
	c.metrics.subscriptions.Set(0)
}

// Health exposes the tracker ordering super-peer candidates.
func (c *Client) Health() *health.Tracker { return c.health }

// Ring exposes the client's view of the super-peer ring.
func (c *Client) Ring() *Ring { return c.opts.Ring }

// ClientStats snapshots a client's overlay-facing state for status pages.
type ClientStats struct {
	// Supers lists the ring members this client places adverts across.
	Supers []string
	// Replication is the configured replication factor R.
	Replication int
	// Published counts adverts this client currently maintains.
	Published int
	// Subscriptions counts the client's live push subscriptions.
	Subscriptions int
}

// Stats snapshots the client for observability surfaces.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	published, subs := len(c.published), len(c.subs)
	c.mu.Unlock()
	return ClientStats{
		Supers:        c.opts.Ring.Nodes(),
		Replication:   c.opts.Replication,
		Published:     published,
		Subscriptions: subs,
	}
}

// targets returns the supers responsible for a query, healthiest first.
// A fully-specified topic (kind + exact name) routes to its O(R)
// owners; wildcard or open queries fan out to every super — still
// O(supers), never O(peers).
func (c *Client) targets(q advert.Query) []string {
	var owners []string
	if q.Kind != "" && q.Name != "" && !strings.HasSuffix(q.Name, "*") {
		owners = c.opts.Ring.Owners(TopicKey(string(q.Kind), q.Name), c.opts.Replication)
	} else {
		owners = c.opts.Ring.Nodes()
	}
	usable, gated := c.health.Rank(owners)
	return append(usable, gated...)
}

// adTargets returns the owners of one advert's topic, healthiest first.
func (c *Client) adTargets(ad *advert.Advertisement) []string {
	owners := c.opts.Ring.Owners(TopicKey(string(ad.Kind), ad.Name), c.opts.Replication)
	usable, gated := c.health.Rank(owners)
	return append(usable, gated...)
}

// Publish registers (or renews) an advert on the overlay. Each publish
// of the same advert ID gets the next version, so renewals win
// last-writer-wins everywhere and replicas dedup cleanly. The write is
// sent to one owner, which replicates synchronously to the rest before
// acking — O(R) messages total.
func (c *Client) Publish(ad *advert.Advertisement) error {
	c.mu.Lock()
	c.versions[ad.ID]++
	version := c.versions[ad.ID]
	c.published[ad.ID] = ad.Clone()
	c.mu.Unlock()
	c.metrics.publishes.Inc()

	payload, err := ad.MarshalText()
	if err != nil {
		return err
	}
	span := c.tracer.Start("", "", "overlay.publish", c.host.PeerID())
	span.SetAttr("advert", ad.ID)
	defer span.End()
	headers := map[string]string{"version": strconv.FormatUint(version, 10)}
	trace.Inject(span, func(k, v string) { headers[k] = v })
	reply, err := c.firstAck(c.adTargets(ad), methodPublish, payload, headers)
	if err == nil && reply.Header("accepted") == "0" {
		// The ring holds a higher version than our counter — typically
		// the tombstone an expiry sweep minted for our previous copy.
		// Outbid it once and renew.
		if cur, perr := strconv.ParseUint(reply.Header("version"), 10, 64); perr == nil && cur >= version {
			c.mu.Lock()
			if cur >= c.versions[ad.ID] {
				c.versions[ad.ID] = cur + 1
			}
			headers["version"] = strconv.FormatUint(c.versions[ad.ID], 10)
			c.mu.Unlock()
			_, err = c.firstAck(c.adTargets(ad), methodPublish, payload, headers)
		}
	}
	span.Fail(err)
	return err
}

// Retract withdraws a previously published advert: a tombstone one
// version past the last publish, replicated like any write.
func (c *Client) Retract(id string) error {
	c.mu.Lock()
	ad := c.published[id]
	c.versions[id]++
	version := c.versions[id]
	delete(c.published, id)
	c.mu.Unlock()
	if ad == nil {
		return fmt.Errorf("overlay: advert %s was not published here", id)
	}
	span := c.tracer.Start("", "", "overlay.retract", c.host.PeerID())
	span.SetAttr("advert", id)
	defer span.End()
	headers := map[string]string{
		"id":      id,
		"version": strconv.FormatUint(version, 10),
	}
	trace.Inject(span, func(k, v string) { headers[k] = v })
	_, err := c.firstAck(c.adTargets(ad), methodRetract, nil, headers)
	span.Fail(err)
	return err
}

// firstAck tries targets in order until one answers the request,
// reporting outcomes to the health tracker so dead supers sink in the
// candidate order.
func (c *Client) firstAck(targets []string, method string, payload []byte, headers map[string]string) (*jxtaserve.Message, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("overlay: no super-peers on the ring")
	}
	var lastErr error
	for _, addr := range targets {
		start := time.Now()
		reply, err := c.host.Request(addr, method, payload, headers)
		if err == nil {
			c.health.ReportSuccess(addr, time.Since(start))
			return reply, nil
		}
		c.health.ReportFailure(addr)
		lastErr = err
		c.logf("overlay: %s %s via %s: %v", c.host.PeerID(), method, addr, err)
	}
	return nil, lastErr
}

// Query asks the overlay for matching adverts. Topic queries cost one
// RPC to the first live owner; open queries fan out to every super and
// merge, deduplicating by advert ID.
func (c *Client) Query(q advert.Query, limit int) ([]*advert.Advertisement, error) {
	c.metrics.queries.Inc()
	payload, err := q.MarshalText()
	if err != nil {
		return nil, err
	}
	headers := map[string]string{"limit": strconv.Itoa(limit)}
	targets := c.targets(q)
	if len(targets) == 0 {
		return nil, fmt.Errorf("overlay: no super-peers on the ring")
	}
	topical := q.Kind != "" && q.Name != "" && !strings.HasSuffix(q.Name, "*")
	if topical {
		// All owners hold the same replicated topic: the first answer
		// is the answer.
		var lastErr error
		for _, addr := range targets {
			start := time.Now()
			reply, err := c.host.Request(addr, methodQuery, payload, headers)
			if err != nil {
				c.health.ReportFailure(addr)
				lastErr = err
				continue
			}
			c.health.ReportSuccess(addr, time.Since(start))
			return advert.DecodeList(reply.Payload)
		}
		return nil, lastErr
	}
	byID := make(map[string]*advert.Advertisement)
	var reached bool
	var lastErr error
	for _, addr := range targets {
		start := time.Now()
		reply, err := c.host.Request(addr, methodQuery, payload, headers)
		if err != nil {
			c.health.ReportFailure(addr)
			lastErr = err
			continue
		}
		c.health.ReportSuccess(addr, time.Since(start))
		reached = true
		ads, err := advert.DecodeList(reply.Payload)
		if err != nil {
			return nil, err
		}
		for _, ad := range ads {
			byID[ad.ID] = ad
		}
	}
	if !reached {
		return nil, lastErr
	}
	out := make([]*advert.Advertisement, 0, len(byID))
	for _, ad := range byID {
		out = append(out, ad)
	}
	sortAds(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Subscribe registers a persistent query with every super responsible
// for it and returns the channel its push events arrive on. Duplicates
// from the redundant owners are deduplicated by advert version before
// delivery; the channel is closed by Unsubscribe or Close.
func (c *Client) Subscribe(subID string, q advert.Query) (<-chan Event, error) {
	sub := &clientSub{
		id:    subID,
		query: q,
		ch:    make(chan Event, c.opts.EventBuffer),
		seen:  make(map[string]uint64),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("overlay: client closed")
	}
	if _, dup := c.subs[subID]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("overlay: subscription %q already exists", subID)
	}
	c.subs[subID] = sub
	c.metrics.subscriptions.Set(float64(len(c.subs)))
	c.mu.Unlock()

	payload, err := q.MarshalText()
	if err != nil {
		c.dropSub(subID)
		return nil, err
	}
	headers := map[string]string{"sub": subID, "addr": c.host.Addr()}
	registered := 0
	var lastErr error
	for _, addr := range c.targets(q) {
		if _, err := c.host.Request(addr, methodSubscribe, payload, headers); err != nil {
			c.health.ReportFailure(addr)
			lastErr = err
			c.logf("overlay: %s subscribe via %s: %v", c.host.PeerID(), addr, err)
			continue
		}
		registered++
	}
	if registered == 0 {
		c.dropSub(subID)
		if lastErr == nil {
			lastErr = fmt.Errorf("overlay: no super-peers on the ring")
		}
		return nil, lastErr
	}
	return sub.ch, nil
}

// Unsubscribe withdraws a subscription and closes its channel.
func (c *Client) Unsubscribe(subID string) {
	sub := c.dropSub(subID)
	if sub == nil {
		return
	}
	c.tellUnsubscribe(sub)
	close(sub.ch)
}

func (c *Client) dropSub(subID string) *clientSub {
	c.mu.Lock()
	defer c.mu.Unlock()
	sub := c.subs[subID]
	delete(c.subs, subID)
	c.metrics.subscriptions.Set(float64(len(c.subs)))
	return sub
}

func (c *Client) tellUnsubscribe(sub *clientSub) {
	headers := map[string]string{"sub": sub.id, "addr": c.host.Addr()}
	for _, addr := range c.targets(sub.query) {
		if _, err := c.host.Request(addr, methodUnsub, nil, headers); err != nil {
			c.logf("overlay: %s unsubscribe via %s: %v", c.host.PeerID(), addr, err)
		}
	}
}

// handleNotify receives one pushed update from a super-peer.
func (c *Client) handleNotify(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	subID, id := req.Header("sub"), req.Header("id")
	version, err := strconv.ParseUint(req.Header("version"), 10, 64)
	if err != nil || subID == "" || id == "" {
		return nil, fmt.Errorf("overlay: bad notify (sub %q, id %q)", subID, id)
	}
	ev := Event{SubID: subID, ID: id, Version: version, Retracted: req.Header("event") == eventRetract}
	if !ev.Retracted {
		ad := new(advert.Advertisement)
		if err := ad.UnmarshalText(req.Payload); err != nil {
			return nil, err
		}
		ev.Ad = ad
	}
	c.metrics.events.Inc()
	c.mu.Lock()
	sub := c.subs[subID]
	if sub == nil {
		c.mu.Unlock()
		// Stale push from a super that has not processed the
		// unsubscribe yet; acking quietly stops the retry.
		return &jxtaserve.Message{}, nil
	}
	// Dedup by version: R owners push every write, the subscriber must
	// see it once. A retraction for an advert this subscriber never saw
	// is also suppressed — there is nothing to retract downstream.
	if last, ok := sub.seen[id]; ok && version <= last {
		c.mu.Unlock()
		c.metrics.deduped.Inc()
		return &jxtaserve.Message{}, nil
	}
	if ev.Retracted {
		if _, everSeen := sub.seen[id]; !everSeen {
			sub.seen[id] = version
			c.mu.Unlock()
			c.metrics.deduped.Inc()
			return &jxtaserve.Message{}, nil
		}
	}
	sub.seen[id] = version
	// Deliver without blocking the super's push goroutine: a stalled
	// consumer sheds its oldest pending event instead of wedging the
	// overlay.
	select {
	case sub.ch <- ev:
	default:
		select {
		case <-sub.ch:
		default:
		}
		select {
		case sub.ch <- ev:
		default:
		}
	}
	c.mu.Unlock()
	return &jxtaserve.Message{}, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

func sortAds(ads []*advert.Advertisement) {
	sort.Slice(ads, func(i, j int) bool { return ads[i].ID < ads[j].ID })
}
