package overlay

// Capability-group shard resilience: group/<key> membership adverts
// ride the same R-way topical placement as donor adverts, so killing a
// super that owns a group shard must lose no member, anti-entropy must
// repair a replica that missed membership writes, and ring remaps must
// stay bounded — a member joining a group changes no placement at all.

import (
	"fmt"
	"testing"

	"consumergrid/internal/advert"
	"consumergrid/internal/capgroup"
)

// groupAd builds a verifiable membership advert for a synthetic group
// distinguished by a zone capability.
func groupAd(zone string, member int) *advert.Advertisement {
	caps := capgroup.Set{"units": "r-test", "zone": zone}
	return capgroup.MembershipAdvert(
		fmt.Sprintf("peer-%s-%d", zone, member), "addr:"+zone,
		caps, 1000+member, 0)
}

// TestGroupShardSurvivesSuperKill: three supers at R=2, three groups
// of four members each, one super killed. Every group's full
// membership must stay queryable through the surviving replica — zero
// lost members — and the adverts must still decode as verified group
// membership.
func TestGroupShardSurvivesSuperKill(t *testing.T) {
	c := newCluster(t, 3, 2, nil)
	c.net.FaultSeed(11)
	pub := c.client("pub", 2)

	zones := []string{"eu", "us", "ap"}
	const membersPerGroup = 4
	keys := make(map[string]string, len(zones)) // zone -> group key
	for _, zone := range zones {
		for m := 0; m < membersPerGroup; m++ {
			ad := groupAd(zone, m)
			keys[zone] = ad.Name
			if err := pub.Publish(ad); err != nil {
				t.Fatalf("publish %s member %d: %v", zone, m, err)
			}
		}
	}

	c.net.Kill("super-1")

	for _, zone := range zones {
		got, err := pub.Query(advert.Query{Kind: advert.KindGroup, Name: keys[zone]}, 0)
		if err != nil {
			t.Fatalf("query group %s after kill: %v", zone, err)
		}
		members := make(map[string]bool)
		for _, ad := range got {
			caps, key, ok := capgroup.FromAdvert(ad)
			if !ok || key != keys[zone] || caps["zone"] != zone {
				t.Fatalf("group %s returned an unverifiable advert %+v", zone, ad)
			}
			members[ad.PeerID] = true
		}
		if len(members) != membersPerGroup {
			t.Fatalf("group %s has %d/%d members after killing super-1 — membership loss at R=2",
				zone, len(members), membersPerGroup)
		}
	}
}

// TestGroupShardAntiEntropyRepair: a super partitioned away while a
// group gains members must converge after healing — one sync round
// pulls the missed membership writes, and a second finds nothing.
func TestGroupShardAntiEntropyRepair(t *testing.T) {
	c := newCluster(t, 2, 2, nil)
	pub := c.client("pub", 2)

	c.net.Partition([]string{"super-1"}, []string{"super-0", "pub"})
	const members = 5
	var key string
	for m := 0; m < members; m++ {
		ad := groupAd("repair", m)
		key = ad.Name
		if err := pub.Publish(ad); err != nil {
			t.Fatalf("publish during partition: %v", err)
		}
	}
	if live, _ := c.supers[1].Entries(); live != 0 {
		t.Fatalf("partitioned super has %d entries, want 0", live)
	}

	c.net.Heal()
	pulled, err := c.supers[1].SyncWith(c.hosts[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if pulled != members {
		t.Fatalf("sync pulled %d membership adverts, want %d", pulled, members)
	}
	if pulled, _ := c.supers[1].SyncWith(c.hosts[0].Addr()); pulled != 0 {
		t.Fatalf("second sync pulled %d, want 0 (non-convergent)", pulled)
	}
	got, err := pub.Query(advert.Query{Kind: advert.KindGroup, Name: key}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != members {
		t.Fatalf("repaired group has %d/%d members", len(got), members)
	}
}

// TestGroupRingRemapIsBounded pins the churn bounds of the group tier:
// a member joining a group is just another advert on an unchanged ring
// — zero topics remap — and a super joining the ring remaps only a
// bounded fraction of group topics, never a wholesale reshuffle.
func TestGroupRingRemapIsBounded(t *testing.T) {
	const groups, r = 200, 2
	topic := func(i int) string {
		caps := capgroup.Set{"units": "r-test", "zone": fmt.Sprintf("z%d", i)}
		return TopicKey(string(advert.KindGroup), caps.Key())
	}

	ring := NewRing(0, "super-0", "super-1", "super-2")
	before := make(map[int][]string, groups)
	for i := 0; i < groups; i++ {
		before[i] = ring.Owners(topic(i), r)
	}

	// Member join: membership adverts add entries under an existing
	// topic; the ring does not change, so neither does any placement.
	for i := 0; i < groups; i++ {
		after := ring.Owners(topic(i), r)
		for j := range after {
			if after[j] != before[i][j] {
				t.Fatalf("group %d owners changed without a ring change: %v -> %v",
					i, before[i], after)
			}
		}
	}

	// Super join: a fourth ring member may claim its keyspace share,
	// but the remapped fraction must stay near r/nodes — not a
	// wholesale reshuffle.
	ring.Add("super-3")
	remapped := 0
	for i := 0; i < groups; i++ {
		after := ring.Owners(topic(i), r)
		changed := false
		for j := range after {
			if after[j] != before[i][j] {
				changed = true
			}
		}
		if changed {
			remapped++
		}
	}
	if remapped == 0 {
		t.Fatal("no group topic remapped after a super join — the new super owns nothing")
	}
	// Each topic has r owner slots; each slot moves to the new node
	// with probability ~1/4, so ~r/4 of topics see a change. Allow
	// generous slack over the 200-topic sample: anything beyond 80%
	// above the expectation signals a broken consistent hash.
	expect := groups * r / 4
	if limit := expect * 9 / 5; remapped > limit {
		t.Fatalf("super join remapped %d/%d group topics, want <= %d (~bounded by r/nodes)",
			remapped, groups, limit)
	}
}
