package overlay

import (
	"fmt"
	"strconv"

	"consumergrid/internal/trace"
)

// This file is the overlay's side of the daemon lifecycle: a draining
// client retracts everything it published (RetractAll), a draining
// super-peer pushes its shard and chunk replicas to the ring's
// remaining members (Handoff), and a checkpointing daemon snapshots
// the advert store (ExportEntries/RestoreEntries) so a restart rejoins
// the ring warm instead of triggering a cold re-discovery storm.

// RetractAll withdraws every advert this client has published,
// tombstoning each on the ring. It keeps going past individual
// failures (a dead super is repaired by anti-entropy later) and
// returns how many retractions were acknowledged plus the first error.
func (c *Client) RetractAll() (int, error) {
	c.mu.Lock()
	ids := make([]string, 0, len(c.published))
	for id := range c.published {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	done := 0
	var first error
	for _, id := range ids {
		if err := c.Retract(id); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		done++
	}
	return done, first
}

// ExportEntries snapshots the entire advert store — live entries and
// tombstones, versions intact — in the same framing the anti-entropy
// sync-pull reply uses, so a checkpoint section and a repair payload
// are one format.
func (s *SuperPeer) ExportEntries() ([]byte, error) {
	want := make(map[int]bool, s.opts.Shards)
	for i := 0; i < s.opts.Shards; i++ {
		want[i] = true
	}
	return encodeEntries(s.store.shardEntries(want, s.opts.Shards))
}

// RestoreEntries merges an ExportEntries payload into the store.
// Version ordering makes the merge idempotent and safe against a
// stale checkpoint: anything the ring has since outbid is rejected
// entry by entry. Returns how many entries were accepted.
func (s *SuperPeer) RestoreEntries(b []byte) (int, error) {
	entries, err := decodeEntries(b)
	if err != nil {
		return 0, err
	}
	accepted := 0
	for _, e := range entries {
		if s.store.put(e) {
			accepted++
		}
	}
	if accepted > 0 {
		s.updateStoreGauges()
	}
	return accepted, nil
}

// HandoffReport counts what a draining super-peer managed to push to
// its successors.
type HandoffReport struct {
	// Adverts and Chunks count items accepted by at least one successor.
	Adverts, Chunks int
	// Errors counts individual push attempts that failed.
	Errors int
}

// Handoff pushes this super-peer's state to the nodes that will own it
// once we leave the ring: every store entry (live adverts as replica
// publishes, tombstones as replica retractions) and every resident
// chunk replica go to the owners computed on the ring minus ourselves.
// Receivers merge by version, so repeating a handoff — or handing off
// state a successor already holds — is a no-op. With no other ring
// member the report is empty and the state survives only through the
// daemon's checkpoint.
func (s *SuperPeer) Handoff() (HandoffReport, error) {
	var rep HandoffReport
	self := s.host.Addr()
	var rest []string
	for _, n := range s.opts.Ring.Nodes() {
		if n != self {
			rest = append(rest, n)
		}
	}
	if len(rest) == 0 {
		return rep, nil
	}
	succ := NewRing(0, rest...)

	span := s.tracer.Start("", "", "overlay.handoff", s.host.PeerID())
	defer span.End()
	headers := map[string]string{}
	trace.Inject(span, func(k, v string) { headers[k] = v })

	want := make(map[int]bool, s.opts.Shards)
	for i := 0; i < s.opts.Shards; i++ {
		want[i] = true
	}
	for _, e := range s.store.shardEntries(want, s.opts.Shards) {
		method := methodPublish
		var payload []byte
		if e.Tombstone {
			method = methodRetract
		} else if e.Ad != nil {
			b, err := e.Ad.MarshalText()
			if err != nil {
				rep.Errors++
				continue
			}
			payload = b
		} else {
			continue // live entry with no body cannot be re-published
		}
		h := map[string]string{
			"version": strconv.FormatUint(e.Version, 10),
			"replica": "1", // direct placement: successors must not re-fan-out
		}
		if e.Tombstone {
			h["id"] = e.ID
		}
		for k, v := range headers {
			h[k] = v
		}
		delivered := false
		for _, owner := range succ.Owners(placementKey(e), s.opts.Replication) {
			if _, err := s.host.Request(owner, method, payload, h); err != nil {
				rep.Errors++
				s.logf("overlay: %s handoff %s to %s: %v", s.host.PeerID(), e.ID, owner, err)
				continue
			}
			delivered = true
		}
		if delivered {
			rep.Adverts++
		}
	}

	if lister, ok := s.opts.Chunks.(interface{ Digests() []string }); ok {
		for _, digest := range lister.Digests() {
			data, ok := s.opts.Chunks.Get(digest)
			if !ok {
				continue
			}
			h := map[string]string{"digest": digest}
			for k, v := range headers {
				h[k] = v
			}
			delivered := false
			for _, owner := range succ.Owners(ChunkKey(digest), s.opts.Replication) {
				if _, err := s.host.Request(owner, methodChunkPut, data, h); err != nil {
					rep.Errors++
					s.logf("overlay: %s handoff chunk %.12s to %s: %v", s.host.PeerID(), digest, owner, err)
					continue
				}
				delivered = true
			}
			if delivered {
				rep.Chunks++
			}
		}
	}

	span.SetAttr("adverts", strconv.Itoa(rep.Adverts))
	span.SetAttr("chunks", strconv.Itoa(rep.Chunks))
	span.SetAttr("errors", strconv.Itoa(rep.Errors))
	if rep.Errors > 0 {
		return rep, fmt.Errorf("overlay: handoff completed with %d failed pushes", rep.Errors)
	}
	return rep, nil
}
