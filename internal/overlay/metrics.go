package overlay

import "consumergrid/internal/metrics"

// superMetrics binds one super-peer's overlay_* series. Series are
// labelled with the owning peer ID so several supers (and their
// clients) can share one registry, mirroring how health gauges do it.
type superMetrics struct {
	ringSize      *metrics.Gauge
	subscriptions *metrics.Gauge
	storeLive     *metrics.Gauge
	storeTombs    *metrics.Gauge
	publishes     *metrics.Counter
	replicas      *metrics.Counter
	queries       *metrics.Counter
	notifies      *metrics.Counter
	retractions   *metrics.Counter
	syncRounds    *metrics.Counter
	syncPulled    *metrics.Counter
	chunkPuts     *metrics.Counter // chunk replicas accepted into the vault
	chunkPutBytes *metrics.Counter
	pushLatency   *metrics.Histogram // seconds, per notify RPC
}

func newSuperMetrics(reg *metrics.Registry, owner string) *superMetrics {
	if reg == nil {
		reg = metrics.Default()
	}
	l := func(family string) string { return metrics.Series(family, "peer", owner) }
	return &superMetrics{
		ringSize:      reg.Gauge(l("overlay_ring_size")),
		subscriptions: reg.Gauge(l("overlay_subscriptions")),
		storeLive:     reg.Gauge(l("overlay_store_adverts")),
		storeTombs:    reg.Gauge(l("overlay_store_tombstones")),
		publishes:     reg.Counter(l("overlay_publishes_total")),
		replicas:      reg.Counter(l("overlay_replicas_total")),
		queries:       reg.Counter(l("overlay_queries_total")),
		notifies:      reg.Counter(l("overlay_notifies_total")),
		retractions:   reg.Counter(l("overlay_retractions_total")),
		syncRounds:    reg.Counter(l("overlay_sync_rounds_total")),
		syncPulled:    reg.Counter(l("overlay_sync_pulled_total")),
		chunkPuts:     reg.Counter(l("overlay_chunk_puts_total")),
		chunkPutBytes: reg.Counter(l("overlay_chunk_put_bytes_total")),
		pushLatency:   reg.Histogram(l("overlay_push_latency_seconds")),
	}
}

// clientMetrics binds one overlay client's series.
type clientMetrics struct {
	publishes     *metrics.Counter
	queries       *metrics.Counter
	events        *metrics.Counter
	deduped       *metrics.Counter
	subscriptions *metrics.Gauge
}

func newClientMetrics(reg *metrics.Registry, owner string) *clientMetrics {
	if reg == nil {
		reg = metrics.Default()
	}
	l := func(family string) string { return metrics.Series(family, "peer", owner) }
	return &clientMetrics{
		publishes:     reg.Counter(l("overlay_client_publishes_total")),
		queries:       reg.Counter(l("overlay_client_queries_total")),
		events:        reg.Counter(l("overlay_client_events_total")),
		deduped:       reg.Counter(l("overlay_client_events_deduped_total")),
		subscriptions: reg.Gauge(l("overlay_client_subscriptions")),
	}
}
