package overlay

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/simnet"
)

// cluster is a simnet ring of super-peers plus helpers for clients.
type cluster struct {
	t      *testing.T
	net    *simnet.Network
	ring   *Ring
	supers []*SuperPeer
	hosts  []*jxtaserve.Host
}

// newCluster builds n super-peers with replication r on a fresh simnet.
// Background loops are disabled: tests drive SweepOnce/SyncWith by hand
// for determinism.
func newCluster(t *testing.T, n, r int, now func() time.Time) *cluster {
	t.Helper()
	c := &cluster{t: t, net: simnet.New(), ring: NewRing(0)}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("super-%d", i)
		h, err := jxtaserve.NewHost(label, c.net.Peer(label), "")
		if err != nil {
			t.Fatal(err)
		}
		c.hosts = append(c.hosts, h)
		c.ring.Add(h.Addr())
	}
	for _, h := range c.hosts {
		sp, err := NewSuper(h, SuperOptions{
			Ring: c.ring, Replication: r, SweepInterval: -1, Now: now,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.supers = append(c.supers, sp)
	}
	t.Cleanup(func() {
		for _, sp := range c.supers {
			sp.Close()
		}
		for _, h := range c.hosts {
			h.Close()
		}
	})
	return c
}

// client attaches an overlay client on its own simnet peer.
func (c *cluster) client(label string, r int) *Client {
	c.t.Helper()
	h, err := jxtaserve.NewHost(label, c.net.Peer(label), "")
	if err != nil {
		c.t.Fatal(err)
	}
	cl, err := NewClient(h, ClientOptions{Ring: c.ring, Replication: r})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() {
		cl.Close()
		h.Close()
	})
	return cl
}

func serviceAd(id, name string, expires time.Time) *advert.Advertisement {
	return &advert.Advertisement{
		Kind: advert.KindService, ID: id, PeerID: "pub", Name: name,
		Addr: "addr:" + id, Expires: expires,
	}
}

// waitEvent receives one event or fails the test.
func waitEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed")
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for a push event")
	}
	panic("unreachable")
}

// expectQuiet asserts no event arrives within the grace window — the
// dedup-by-version check that redundant owner pushes do not flap the
// subscriber.
func expectQuiet(t *testing.T, ch <-chan Event) {
	t.Helper()
	select {
	case ev := <-ch:
		t.Fatalf("unexpected extra event: %+v", ev)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestPublishQueryAndPush(t *testing.T) {
	c := newCluster(t, 3, 2, nil)
	pub := c.client("pub", 2)
	subC := c.client("sub", 2)

	q := advert.Query{Kind: advert.KindService, Name: "triana"}
	events, err := subC.Subscribe("donors", q)
	if err != nil {
		t.Fatal(err)
	}

	if err := pub.Publish(serviceAd("svc-1", "triana", time.Time{})); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, events)
	if ev.ID != "svc-1" || ev.Retracted || ev.Ad == nil || ev.Ad.Name != "triana" {
		t.Fatalf("push event = %+v, want update for svc-1", ev)
	}
	// Both owners push the same version; the duplicate must be dropped.
	expectQuiet(t, events)

	got, err := pub.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "svc-1" {
		t.Fatalf("Query = %v, want [svc-1]", got)
	}

	// A non-matching advert must not reach the subscriber.
	if err := pub.Publish(serviceAd("svc-2", "other", time.Time{})); err != nil {
		t.Fatal(err)
	}
	expectQuiet(t, events)

	// Wildcard queries fan out across supers and merge.
	all, err := pub.Query(advert.Query{Kind: advert.KindService}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("wildcard Query = %v, want both adverts", all)
	}
}

func TestSubscribeSeedsExistingAdverts(t *testing.T) {
	c := newCluster(t, 3, 2, nil)
	pub := c.client("pub", 2)
	if err := pub.Publish(serviceAd("svc-1", "triana", time.Time{})); err != nil {
		t.Fatal(err)
	}
	// Subscribing after the fact still delivers the current matches.
	sub := c.client("sub", 2)
	events, err := sub.Subscribe("late", advert.Query{Kind: advert.KindService, Name: "triana"})
	if err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, events); ev.ID != "svc-1" {
		t.Fatalf("seed event = %+v, want svc-1", ev)
	}
	expectQuiet(t, events)
}

// TestExpiryRetractionAndRenewal is the satellite-3 coverage: an
// expired advert produces exactly one retraction push, and a renewal —
// before or after expiry — produces exactly one update, never a
// retract/update flap, despite every owner pushing redundantly.
func TestExpiryRetractionAndRenewal(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(5000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	c := newCluster(t, 2, 2, clock)
	pub := c.client("pub", 2)
	sub := c.client("sub", 2)
	events, err := sub.Subscribe("watch", advert.Query{Kind: advert.KindService, Name: "triana"})
	if err != nil {
		t.Fatal(err)
	}

	if err := pub.Publish(serviceAd("svc-a", "triana", clock().Add(10*time.Second))); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, events); ev.Retracted || ev.ID != "svc-a" {
		t.Fatalf("want initial update, got %+v", ev)
	}
	expectQuiet(t, events)

	// Renewal before expiry: one update event, no flap.
	if err := pub.Publish(serviceAd("svc-a", "triana", clock().Add(20*time.Second))); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, events); ev.Retracted || ev.ID != "svc-a" {
		t.Fatalf("want renewal update, got %+v", ev)
	}
	expectQuiet(t, events)

	// Expiry: every super sweeps its own replica; the subscriber must
	// see exactly one retraction.
	advance(30 * time.Second)
	for _, sp := range c.supers {
		sp.SweepOnce()
	}
	ev := waitEvent(t, events)
	if !ev.Retracted || ev.ID != "svc-a" {
		t.Fatalf("want retraction, got %+v", ev)
	}
	expectQuiet(t, events)
	if live, _ := c.supers[0].Entries(); live != 0 {
		t.Fatalf("super still holds %d live adverts after sweep", live)
	}

	// Renewal after expiry: the publisher's version counter is behind
	// the sweep tombstone; the publish must still take effect (outbid
	// and retry) and push exactly one update.
	if err := pub.Publish(serviceAd("svc-a", "triana", clock().Add(time.Minute))); err != nil {
		t.Fatal(err)
	}
	ev = waitEvent(t, events)
	if ev.Retracted || ev.ID != "svc-a" {
		t.Fatalf("want post-expiry renewal update, got %+v", ev)
	}
	expectQuiet(t, events)
	if got, _ := pub.Query(advert.Query{Kind: advert.KindService, Name: "triana"}, 0); len(got) != 1 {
		t.Fatalf("renewed advert not discoverable: %v", got)
	}
}

func TestExplicitRetract(t *testing.T) {
	c := newCluster(t, 3, 2, nil)
	pub := c.client("pub", 2)
	sub := c.client("sub", 2)
	events, err := sub.Subscribe("watch", advert.Query{Kind: advert.KindService, Name: "triana"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(serviceAd("svc-1", "triana", time.Time{})); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, events)
	if err := pub.Retract("svc-1"); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, events); !ev.Retracted || ev.ID != "svc-1" {
		t.Fatalf("want retraction, got %+v", ev)
	}
	expectQuiet(t, events)
	if got, _ := pub.Query(advert.Query{Kind: advert.KindService, Name: "triana"}, 0); len(got) != 0 {
		t.Fatalf("retracted advert still discoverable: %v", got)
	}
}

// TestAntiEntropyRepairsPartition cuts one replica off, publishes
// through the reachable side, heals, and checks one sync round carries
// the missed writes across — including the push to that replica's own
// subscribers.
func TestAntiEntropyRepairsPartition(t *testing.T) {
	c := newCluster(t, 2, 2, nil)
	pub := c.client("pub", 2)

	// A raw subscriber registered only at super-1, so the only way it
	// hears about the writes is super-1 learning them via sync.
	subHost, err := jxtaserve.NewHost("raw-sub", c.net.Peer("raw-sub"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer subHost.Close()
	notified := make(chan string, 16)
	subHost.Handle(methodNotify, func(req *jxtaserve.Message) (*jxtaserve.Message, error) {
		notified <- req.Header("id")
		return &jxtaserve.Message{}, nil
	})
	qXML, err := advert.Query{Kind: advert.KindService}.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subHost.Request(c.hosts[1].Addr(), methodSubscribe, qXML,
		map[string]string{"sub": "s1", "addr": subHost.Addr()}); err != nil {
		t.Fatal(err)
	}

	c.net.Partition([]string{"super-1"}, []string{"super-0", "pub"})
	for i := 0; i < 5; i++ {
		if err := pub.Publish(serviceAd(fmt.Sprintf("svc-%d", i), "triana", time.Time{})); err != nil {
			t.Fatalf("publish during partition: %v", err)
		}
	}
	if live, _ := c.supers[1].Entries(); live != 0 {
		t.Fatalf("partitioned super has %d entries, want 0", live)
	}

	c.net.Heal()
	pulled, err := c.supers[1].SyncWith(c.hosts[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 5 {
		t.Fatalf("sync pulled %d entries, want 5", pulled)
	}
	if live, _ := c.supers[1].Entries(); live != 5 {
		t.Fatalf("repaired super has %d live entries, want 5", live)
	}
	// Convergent: a second round finds nothing to pull.
	if pulled, _ := c.supers[1].SyncWith(c.hosts[0].Addr()); pulled != 0 {
		t.Fatalf("second sync pulled %d, want 0", pulled)
	}
	// The repaired super pushed the recovered adverts to its subscriber.
	got := make(map[string]bool)
	deadline := time.After(2 * time.Second)
	for len(got) < 5 {
		select {
		case id := <-notified:
			got[id] = true
		case <-deadline:
			t.Fatalf("subscriber saw %d recovered adverts, want 5", len(got))
		}
	}
}

// TestPublishAndQueryMessageCost pins the scaling claim: a publish
// costs O(R) messages and a topic query O(1), independent of how many
// super-peers (let alone edge peers) exist.
func TestPublishAndQueryMessageCost(t *testing.T) {
	costs := func(supers int) (publish, query int64) {
		c := newCluster(t, supers, 2, nil)
		pub := c.client("pub", 2)
		// Warm nothing: measure the steady-state RPC counts alone.
		c.net.ResetCounters()
		if err := pub.Publish(serviceAd("svc-1", "triana", time.Time{})); err != nil {
			t.Fatal(err)
		}
		publish = c.net.Messages()
		c.net.ResetCounters()
		if _, err := pub.Query(advert.Query{Kind: advert.KindService, Name: "triana"}, 0); err != nil {
			t.Fatal(err)
		}
		query = c.net.Messages()
		return publish, query
	}
	p3, q3 := costs(3)
	p8, q8 := costs(8)
	// R=2: client->owner request/reply + owner->replica request/reply.
	if p3 != 4 || p8 != 4 {
		t.Fatalf("publish cost = %d (3 supers) / %d (8 supers), want 4 messages both", p3, p8)
	}
	// One RPC round trip regardless of ring size.
	if q3 != 2 || q8 != 2 {
		t.Fatalf("query cost = %d (3 supers) / %d (8 supers), want 2 messages both", q3, q8)
	}
}

// TestChaosSuperPeerFailover is the acceptance chaos scenario: three
// super-peers at R=2, one killed, zero advert loss and failover pushes
// still reaching subscribers. Doubles as the overlay-smoke CI target.
func TestChaosSuperPeerFailover(t *testing.T) {
	c := newCluster(t, 3, 2, nil)
	c.net.FaultSeed(42)
	pub := c.client("pub", 2)
	sub := c.client("sub", 2)

	// Wildcard subscription registers at every super, so failover
	// pushes keep flowing from whichever owners survive.
	events, err := sub.Subscribe("all-services", advert.Query{Kind: advert.KindService})
	if err != nil {
		t.Fatal(err)
	}

	const before = 20
	topics := 5
	for i := 0; i < before; i++ {
		name := fmt.Sprintf("svc-%d", i%topics)
		if err := pub.Publish(serviceAd(fmt.Sprintf("ad-%d", i), name, time.Time{})); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool)
	for len(seen) < before {
		seen[waitEvent(t, events).ID] = true
	}

	c.net.Kill("super-1")

	// Zero advert loss: every topic remains fully queryable through the
	// surviving replica of its owner pair.
	found := make(map[string]bool)
	for i := 0; i < topics; i++ {
		got, err := pub.Query(advert.Query{Kind: advert.KindService, Name: fmt.Sprintf("svc-%d", i)}, 0)
		if err != nil {
			t.Fatalf("query svc-%d after kill: %v", i, err)
		}
		for _, ad := range got {
			found[ad.ID] = true
		}
	}
	if len(found) != before {
		t.Fatalf("found %d/%d adverts after killing super-1 — advert loss with R=2", len(found), before)
	}

	// Failover pushes: new publishes after the kill still reach the
	// subscriber via the surviving owners.
	const after = 5
	for i := 0; i < after; i++ {
		name := fmt.Sprintf("svc-%d", i%topics)
		if err := pub.Publish(serviceAd(fmt.Sprintf("post-%d", i), name, time.Time{})); err != nil {
			t.Fatalf("publish after kill: %v", err)
		}
	}
	post := make(map[string]bool)
	for len(post) < after {
		ev := waitEvent(t, events)
		if ev.ID[:5] == "post-" {
			post[ev.ID] = true
		}
	}
}

func TestUnsubscribeStopsPushes(t *testing.T) {
	c := newCluster(t, 3, 2, nil)
	pub := c.client("pub", 2)
	sub := c.client("sub", 2)
	events, err := sub.Subscribe("watch", advert.Query{Kind: advert.KindService, Name: "triana"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(serviceAd("svc-1", "triana", time.Time{})); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, events)
	sub.Unsubscribe("watch")
	if _, ok := <-events; ok {
		t.Fatal("channel not closed by Unsubscribe")
	}
	if err := pub.Publish(serviceAd("svc-2", "triana", time.Time{})); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // nothing to assert beyond no panic/send on closed channel
	for _, sp := range c.supers {
		if n := sp.Subscriptions(); n != 0 {
			t.Fatalf("super still holds %d subscriptions after unsubscribe", n)
		}
	}
}
