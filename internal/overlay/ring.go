// Package overlay is the scalable discovery tier of the Consumer Grid:
// a ring of replicated super-peers that replaces the flat rendezvous
// list of internal/discovery. Three mechanisms carry the load the
// paper's JXTA rendezvous peers carried, at a scale the flat version
// cannot reach:
//
//   - a consistent-hash ring (virtual nodes, replication factor R >= 2)
//     places every advertisement on R super-peers, so adverts survive a
//     rendezvous failure and membership changes remap only ~1/S of the
//     keyspace instead of rehashing everything;
//   - a publish/subscribe layer: controllers register persistent
//     advert.Query subscriptions and super-peers push matching adverts
//     (new donors, expiries, capability changes) the moment they change,
//     replacing poll-the-index with event-driven discovery — the model
//     the pub/sub performance literature shows beats repeated lookup for
//     exactly this workload;
//   - anti-entropy sync: super-peers periodically exchange per-shard
//     digests (hash + count) and pull only the shards that differ, so
//     replicas converge after partitions heal with bounded traffic.
//
// Everything runs over the jxtaserve transport abstraction, so the same
// protocol code serves TCP deployments, in-process tests and the
// instrumented simnet used by the chaos and scaling experiments.
package overlay

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the ring points each super-peer contributes.
// More points smooth the keyspace split; 64 keeps the per-node memory
// trivial while bounding the largest arc near the fair share.
const DefaultVirtualNodes = 64

// DefaultReplication is the advert replication factor R: every key is
// owned by this many distinct super-peers (capped by ring size).
const DefaultReplication = 2

// DefaultShards is the anti-entropy digest granularity: the keyspace is
// folded into this many shards, each summarised by one (count, hash)
// pair, so a sync round costs O(shards) regardless of advert count.
const DefaultShards = 32

// hash64 is the ring's placement hash: FNV-1a finished with a 64-bit
// avalanche mix. Raw FNV-1a clusters badly on the short similar strings
// rings are full of ("super-0#12", "key-37"), which skews arc lengths
// by multiples; the finalizer spreads the bits uniformly. The function
// is deterministic and stable across processes and releases — ring
// positions are part of the protocol.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3/splitmix-style finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ShardOf folds a key into one of shards anti-entropy buckets.
func ShardOf(key string, shards int) int {
	if shards <= 0 {
		shards = DefaultShards
	}
	return int(hash64(key) % uint64(shards))
}

// TopicKey is the placement key for an advertisement: adverts are
// sharded by (kind, name) topic, not by publisher, so that a query for
// "the triana services" routes to the O(R) owners of that one topic
// instead of fanning out to every super-peer. Publisher-keyed placement
// would balance storage slightly better but make every query a
// broadcast — the opposite of what a discovery index is for.
func TopicKey(kind, name string) string {
	return string(kind) + "\x00" + name
}

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over super-peer addresses. It is safe
// for concurrent use; membership changes are incremental (adding or
// removing a node moves only the arcs adjacent to its virtual points).
//
// The ring is also the shared placement function of the discovery tier:
// flat rendezvous mode can route its homeRendezvous choice through a
// one-owner ring so that flat and overlay deployments agree on where a
// key lives (see discovery.Config.RingPlacement).
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point
	nodes  map[string]bool
}

// NewRing builds a ring with the given virtual-node count (<= 0 selects
// DefaultVirtualNodes) over the initial membership.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// Add joins a node to the ring (idempotent).
func (r *Ring) Add(node string) {
	if node == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash64(fmt.Sprintf("%s#%d", node, i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove leaves a node from the ring (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes lists the members, sorted for determinism.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Owners returns the n distinct nodes owning key, walking clockwise
// from the key's ring position (the primary first, then the replicas).
// Fewer than n members returns them all.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	// First point with hash >= h, wrapping at the top of the ring.
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Primary returns the first owner of key, or "" on an empty ring. This
// is the shared placement function flat rendezvous mode routes through
// when ring placement is enabled.
func (r *Ring) Primary(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}
