package overlay

import (
	"fmt"
	"testing"
)

func TestOwnersDistinctAndReplicated(t *testing.T) {
	r := NewRing(0, "a", "b", "c", "d")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) = %v, want 2 distinct", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q) repeated node %q", key, owners[0])
		}
		if owners[0] != r.Primary(key) {
			t.Fatalf("Primary(%q) = %q, want first owner %q", key, r.Primary(key), owners[0])
		}
	}
	if got := r.Owners("k", 10); len(got) != 4 {
		t.Fatalf("Owners capped at membership: got %d, want 4", len(got))
	}
}

func TestOwnersDeterministic(t *testing.T) {
	a := NewRing(16, "s1", "s2", "s3")
	b := NewRing(16, "s3", "s1", "s2") // insertion order must not matter
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("topic-%d", i)
		ga, gb := a.Owners(key, 2), b.Owners(key, 2)
		if len(ga) != len(gb) || ga[0] != gb[0] || ga[1] != gb[1] {
			t.Fatalf("rings disagree on %q: %v vs %v", key, ga, gb)
		}
	}
}

// TestIncrementalRemapVsModulo is the satellite-2 evidence: adding one
// node to a consistent-hash ring moves roughly 1/S of the keys, while
// the flat hash%len placement discovery.homeRendezvous historically
// used remaps nearly everything.
func TestIncrementalRemapVsModulo(t *testing.T) {
	const keys = 2000
	before := NewRing(0, "s1", "s2", "s3", "s4")
	after := NewRing(0, "s1", "s2", "s3", "s4", "s5")

	ringMoved := 0
	moduloMoved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("peer-%d", i)
		if before.Primary(key) != after.Primary(key) {
			ringMoved++
		}
		if hash64(key)%4 != hash64(key)%5 {
			moduloMoved++
		}
	}
	// Consistent hashing: expect ~1/5 moved; allow generous slack.
	if frac := float64(ringMoved) / keys; frac > 0.35 {
		t.Fatalf("ring remapped %.0f%% of keys on one join, want ~20%%", frac*100)
	}
	// Modulo placement: ~4/5 of keys land elsewhere.
	if frac := float64(moduloMoved) / keys; frac < 0.6 {
		t.Fatalf("modulo remapped only %.0f%% — the satellite premise no longer holds", frac*100)
	}
	if ringMoved*2 >= moduloMoved {
		t.Fatalf("ring (%d moved) not clearly better than modulo (%d moved)", ringMoved, moduloMoved)
	}
}

func TestRemoveRestoresPlacement(t *testing.T) {
	r := NewRing(0, "a", "b", "c")
	want := make(map[string]string)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		want[k] = r.Primary(k)
	}
	r.Add("d")
	r.Remove("d")
	for k, w := range want {
		if got := r.Primary(k); got != w {
			t.Fatalf("Primary(%q) = %q after add+remove, want %q", k, got, w)
		}
	}
}

func TestOwnersSpreadAcrossNodes(t *testing.T) {
	r := NewRing(0, "a", "b", "c", "d", "e")
	counts := make(map[string]int)
	const keys = 5000
	for i := 0; i < keys; i++ {
		counts[r.Primary(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		frac := float64(c) / keys
		if frac < 0.08 || frac > 0.40 {
			t.Fatalf("node %s owns %.0f%% of keys — virtual nodes not balancing", node, frac*100)
		}
	}
}

func TestShardOfInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		s := ShardOf(fmt.Sprintf("id-%d", i), DefaultShards)
		if s < 0 || s >= DefaultShards {
			t.Fatalf("ShardOf out of range: %d", s)
		}
	}
}

func TestTopicKeyUnambiguous(t *testing.T) {
	// The separator keeps ("ab","c") and ("a","bc") distinct.
	if TopicKey("ab", "c") == TopicKey("a", "bc") {
		t.Fatal("TopicKey collides across kind/name split")
	}
}
