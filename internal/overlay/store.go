package overlay

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"consumergrid/internal/advert"
)

// Entry is one replicated advert record: the advertisement plus the
// publisher-assigned version and the tombstone flag. Versions order
// concurrent writes (last-writer-wins per advert ID); tombstones make
// deletion replicable — a retraction must win against a stale copy of
// the advert arriving later via anti-entropy, which a plain delete
// cannot do.
type Entry struct {
	Ad        *advert.Advertisement
	ID        string // == Ad.ID when Ad != nil; tombstones carry only the ID
	Version   uint64
	Tombstone bool
}

// digestWord folds the entry's identity, version and tombstone flag
// into the word XORed into its shard's anti-entropy digest.
func (e Entry) digestWord() uint64 {
	h := hash64(e.ID)
	h ^= e.Version * 0x9e3779b97f4a7c15
	if e.Tombstone {
		h = ^h
	}
	return h
}

// store is a super-peer's versioned advert table. All methods are safe
// for concurrent use.
type store struct {
	mu      sync.Mutex
	entries map[string]Entry // by advert ID
	now     func() time.Time
}

func newStore(now func() time.Time) *store {
	if now == nil {
		now = time.Now
	}
	return &store{entries: make(map[string]Entry), now: now}
}

// put merges an update entry, reporting whether it was accepted (its
// version is newer than what the store holds). Equal versions are
// idempotent no-ops, which is what makes replication and anti-entropy
// safe to repeat.
func (s *store) put(e Entry) bool {
	accepted, _ := s.putVersioned(e)
	return accepted
}

// putVersioned is put plus the version now stored for the ID, so a
// rejecting super can tell the publisher what it must outbid. A
// publisher's renewal can otherwise collide forever with the tombstone
// an expiry sweep minted at version+1 behind its back.
func (s *store) putVersioned(e Entry) (accepted bool, current uint64) {
	if e.ID == "" && e.Ad != nil {
		e.ID = e.Ad.ID
	}
	if e.ID == "" {
		return false, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.entries[e.ID]; ok && prev.Version >= e.Version {
		return false, prev.Version
	}
	s.entries[e.ID] = e
	return true, e.Version
}

// get returns the entry for id.
func (s *store) get(id string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	return e, ok
}

// find returns up to limit live, unexpired matches, sorted by ID.
func (s *store) find(q advert.Query, limit int) []*advert.Advertisement {
	now := s.now()
	s.mu.Lock()
	var out []*advert.Advertisement
	for _, e := range s.entries {
		if e.Tombstone || e.Ad == nil || e.Ad.Expired(now) || !q.Matches(e.Ad) {
			continue
		}
		out = append(out, e.Ad.Clone())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// sweepExpired tombstones every live entry past its expiry, returning
// the new tombstones so the caller can push retractions. The tombstone
// takes version+1 so it outranks the expired advert everywhere.
func (s *store) sweepExpired() []Entry {
	now := s.now()
	s.mu.Lock()
	var swept []Entry
	for id, e := range s.entries {
		if e.Tombstone || e.Ad == nil || !e.Ad.Expired(now) {
			continue
		}
		t := Entry{ID: id, Ad: e.Ad, Version: e.Version + 1, Tombstone: true}
		s.entries[id] = t
		swept = append(swept, t)
	}
	s.mu.Unlock()
	sort.Slice(swept, func(i, j int) bool { return swept[i].ID < swept[j].ID })
	return swept
}

// counts reports (live adverts, tombstones).
func (s *store) counts() (live, tombs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Tombstone {
			tombs++
		} else {
			live++
		}
	}
	return live, tombs
}

// ShardDigest summarises one anti-entropy shard: how many entries it
// holds and the XOR-fold of their (id, version, tombstone) words. Two
// replicas whose digests match hold identical shard contents with
// overwhelming probability; a mismatch names exactly which shard to
// pull.
type ShardDigest struct {
	Count uint64
	Hash  uint64
}

// digest summarises the store into shards buckets.
func (s *store) digest(shards int) []ShardDigest {
	if shards <= 0 {
		shards = DefaultShards
	}
	out := make([]ShardDigest, shards)
	s.mu.Lock()
	for id, e := range s.entries {
		i := ShardOf(id, shards)
		out[i].Count++
		out[i].Hash ^= e.digestWord()
	}
	s.mu.Unlock()
	return out
}

// shardEntries snapshots every entry (live and tombstone) in the given
// shards, sorted by ID.
func (s *store) shardEntries(want map[int]bool, shards int) []Entry {
	if shards <= 0 {
		shards = DefaultShards
	}
	s.mu.Lock()
	var out []Entry
	for id, e := range s.entries {
		if want[ShardOf(id, shards)] {
			if e.Ad != nil {
				e.Ad = e.Ad.Clone()
			}
			out = append(out, e)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- wire codecs -------------------------------------------------------------

// encodeEntries frames entries for sync-pull replies: per entry the
// version, the tombstone flag, the ID and (for live entries) the advert
// XML, all length-prefixed.
func encodeEntries(entries []Entry) ([]byte, error) {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	out = appendUvarint(out, tmp[:], uint64(len(entries)))
	for _, e := range entries {
		out = appendUvarint(out, tmp[:], e.Version)
		flag := uint64(0)
		if e.Tombstone {
			flag = 1
		}
		out = appendUvarint(out, tmp[:], flag)
		out = appendUvarint(out, tmp[:], uint64(len(e.ID)))
		out = append(out, e.ID...)
		var adBytes []byte
		if e.Ad != nil && !e.Tombstone {
			b, err := e.Ad.MarshalText()
			if err != nil {
				return nil, err
			}
			adBytes = b
		}
		out = appendUvarint(out, tmp[:], uint64(len(adBytes)))
		out = append(out, adBytes...)
	}
	return out, nil
}

// decodeEntries parses an encodeEntries payload.
func decodeEntries(b []byte) ([]Entry, error) {
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("overlay: entry list too large (%d)", count)
	}
	out := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e Entry
		if e.Version, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		var flag uint64
		if flag, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		e.Tombstone = flag == 1
		var idLen uint64
		if idLen, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if uint64(len(b)) < idLen {
			return nil, fmt.Errorf("overlay: truncated entry ID")
		}
		e.ID = string(b[:idLen])
		b = b[idLen:]
		var adLen uint64
		if adLen, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if uint64(len(b)) < adLen {
			return nil, fmt.Errorf("overlay: truncated entry advert")
		}
		if adLen > 0 {
			ad := new(advert.Advertisement)
			if err := ad.UnmarshalText(b[:adLen]); err != nil {
				return nil, err
			}
			e.Ad = ad
		}
		b = b[adLen:]
		out = append(out, e)
	}
	return out, nil
}

// encodeDigests frames a digest vector for sync-digest exchanges.
func encodeDigests(ds []ShardDigest) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	out = appendUvarint(out, tmp[:], uint64(len(ds)))
	for _, d := range ds {
		out = appendUvarint(out, tmp[:], d.Count)
		out = appendUvarint(out, tmp[:], d.Hash)
	}
	return out
}

// decodeDigests parses an encodeDigests payload.
func decodeDigests(b []byte) ([]ShardDigest, error) {
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("overlay: digest vector too large (%d)", count)
	}
	out := make([]ShardDigest, 0, count)
	for i := uint64(0); i < count; i++ {
		var d ShardDigest
		if d.Count, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if d.Hash, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func appendUvarint(out, tmp []byte, x uint64) []byte {
	n := binary.PutUvarint(tmp, x)
	return append(out, tmp[:n]...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("overlay: bad varint")
	}
	return x, b[n:], nil
}

// parseShardList decodes the comma-separated shard header of a sync
// pull ("3,17,22").
func parseShardList(s string, shards int) (map[int]bool, error) {
	want := make(map[int]bool)
	if s == "" {
		return want, nil
	}
	for _, part := range strings.Split(s, ",") {
		var i int
		if _, err := fmt.Sscanf(part, "%d", &i); err != nil {
			return nil, fmt.Errorf("overlay: bad shard %q", part)
		}
		if i < 0 || i >= shards {
			return nil, fmt.Errorf("overlay: shard %d out of range", i)
		}
		want[i] = true
	}
	return want, nil
}
