package overlay

import (
	"testing"
	"time"

	"consumergrid/internal/advert"
)

func ad(id, name string, expires time.Time) *advert.Advertisement {
	a := &advert.Advertisement{
		Kind: advert.KindService, ID: id, PeerID: "p1", Name: name,
		Addr: "addr:" + id, Expires: expires,
	}
	return a
}

func TestStoreVersionOrdering(t *testing.T) {
	s := newStore(nil)
	if !s.put(Entry{Ad: ad("x", "triana", time.Time{}), Version: 2}) {
		t.Fatal("fresh put rejected")
	}
	if s.put(Entry{Ad: ad("x", "triana", time.Time{}), Version: 2}) {
		t.Fatal("equal version must be an idempotent no-op")
	}
	if s.put(Entry{Ad: ad("x", "triana", time.Time{}), Version: 1}) {
		t.Fatal("stale version accepted")
	}
	if !s.put(Entry{ID: "x", Version: 3, Tombstone: true}) {
		t.Fatal("newer tombstone rejected")
	}
	// A stale live copy arriving after the tombstone (anti-entropy from
	// a lagging replica) must lose.
	if s.put(Entry{Ad: ad("x", "triana", time.Time{}), Version: 2}) {
		t.Fatal("stale advert resurrected a tombstoned entry")
	}
	if got := s.find(advert.Query{Kind: advert.KindService}, 0); len(got) != 0 {
		t.Fatalf("tombstoned advert still findable: %v", got)
	}
}

func TestStoreSweepExpired(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newStore(func() time.Time { return now })
	s.put(Entry{Ad: ad("live", "triana", now.Add(time.Hour)), Version: 1})
	s.put(Entry{Ad: ad("dying", "triana", now.Add(time.Second)), Version: 4})

	if swept := s.sweepExpired(); len(swept) != 0 {
		t.Fatalf("nothing expired yet, swept %v", swept)
	}
	now = now.Add(2 * time.Second)
	swept := s.sweepExpired()
	if len(swept) != 1 || swept[0].ID != "dying" || !swept[0].Tombstone || swept[0].Version != 5 {
		t.Fatalf("sweep = %+v, want one v5 tombstone for 'dying'", swept)
	}
	if swept[0].Ad == nil {
		t.Fatal("sweep tombstone must keep the advert body for topic matching")
	}
	got := s.find(advert.Query{Kind: advert.KindService}, 0)
	if len(got) != 1 || got[0].ID != "live" {
		t.Fatalf("find after sweep = %v, want only 'live'", got)
	}
	live, tombs := s.counts()
	if live != 1 || tombs != 1 {
		t.Fatalf("counts = (%d, %d), want (1, 1)", live, tombs)
	}
}

func TestStoreDigestDetectsDifference(t *testing.T) {
	a, b := newStore(nil), newStore(nil)
	for _, id := range []string{"one", "two", "three"} {
		e := Entry{Ad: ad(id, "triana", time.Time{}), Version: 1}
		a.put(e)
		b.put(e)
	}
	da, db := a.digest(DefaultShards), b.digest(DefaultShards)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("identical stores differ at shard %d", i)
		}
	}
	b.put(Entry{Ad: ad("four", "triana", time.Time{}), Version: 1})
	da, db = a.digest(DefaultShards), b.digest(DefaultShards)
	diff := 0
	for i := range da {
		if da[i] != db[i] {
			diff++
			if i != ShardOf("four", DefaultShards) {
				t.Fatalf("unexpected shard %d differs", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d shards differ, want exactly 1", diff)
	}
	// Version bumps change the digest too (same ID, same shard).
	a.put(Entry{Ad: ad("one", "triana", time.Time{}), Version: 2})
	da, db = a.digest(DefaultShards), b.digest(DefaultShards)
	if da[ShardOf("one", DefaultShards)] == db[ShardOf("one", DefaultShards)] {
		t.Fatal("version bump invisible to digest")
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	in := []Entry{
		{Ad: ad("a1", "triana", time.Time{}), ID: "a1", Version: 7},
		{ID: "gone", Version: 9, Tombstone: true},
	}
	b, err := encodeEntries(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeEntries(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d entries, want 2", len(out))
	}
	if out[0].ID != "a1" || out[0].Version != 7 || out[0].Tombstone || out[0].Ad == nil || out[0].Ad.Name != "triana" {
		t.Fatalf("entry 0 mangled: %+v", out[0])
	}
	if out[1].ID != "gone" || out[1].Version != 9 || !out[1].Tombstone || out[1].Ad != nil {
		t.Fatalf("entry 1 mangled: %+v", out[1])
	}
}

func TestDigestCodecRoundTrip(t *testing.T) {
	in := []ShardDigest{{Count: 3, Hash: 0xdeadbeef}, {}, {Count: 1, Hash: 42}}
	out, err := decodeDigests(encodeDigests(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d digests, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("digest %d mangled: %+v vs %+v", i, in[i], out[i])
		}
	}
}

func TestDecodeEntriesRejectsGarbage(t *testing.T) {
	if _, err := decodeEntries([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Fatal("absurd count accepted")
	}
	if _, err := decodeEntries([]byte{1, 1}); err == nil {
		t.Fatal("truncated entry accepted")
	}
}

func TestParseShardList(t *testing.T) {
	want, err := parseShardList("0,5,31", 32)
	if err != nil || len(want) != 3 || !want[0] || !want[5] || !want[31] {
		t.Fatalf("parseShardList = %v, %v", want, err)
	}
	if _, err := parseShardList("40", 32); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := parseShardList("x", 32); err == nil {
		t.Fatal("non-numeric shard accepted")
	}
}
