package overlay

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/metrics"
	"consumergrid/internal/trace"
)

// Overlay RPC method names. They ride the same jxtaserve RPC facility
// as the triana.* and disc.* protocols.
const (
	methodPublish    = "overlay.publish"     // headers: version, replica; payload: advert XML
	methodRetract    = "overlay.retract"     // headers: id, version, replica
	methodQuery      = "overlay.query"       // payload: query XML; reply: advert list
	methodSubscribe  = "overlay.subscribe"   // headers: sub, addr; payload: query XML
	methodUnsub      = "overlay.unsubscribe" // headers: sub, addr
	methodNotify     = "overlay.notify"      // headers: sub, id, version, event; payload: advert XML
	methodSyncDigest = "overlay.sync.digest" // payload: digest vector; reply: digest vector
	methodSyncPull   = "overlay.sync.pull"   // headers: shards; reply: entry list
)

// Notification event names carried in the notify "event" header.
const (
	eventUpdate  = "update"
	eventRetract = "retract"
)

// SuperOptions configures a super-peer.
type SuperOptions struct {
	// Ring is the super-peer membership this node places keys on. The
	// node's own host address must be a member. Required.
	Ring *Ring
	// Replication is the advert replication factor R (default
	// DefaultReplication, capped by ring size at placement time).
	Replication int
	// Shards is the anti-entropy digest granularity (default
	// DefaultShards). All supers in one ring must agree on it.
	Shards int
	// SyncInterval enables the periodic anti-entropy loop; zero leaves
	// sync to explicit SyncOnce calls (tests, smoke harnesses).
	SyncInterval time.Duration
	// SweepInterval is how often expired adverts are tombstoned and
	// retractions pushed (default 1s; negative disables the loop).
	SweepInterval time.Duration
	// Registry receives overlay_* series (default metrics.Default()).
	Registry *metrics.Registry
	// Tracer records publish→replicate→notify spans (default
	// trace.Default()).
	Tracer *trace.Recorder
	// Now overrides the clock for deterministic expiry tests.
	Now func() time.Time
	// Chunks, when set, makes this super a chunk replica holder: it
	// accepts overlay.chunk.put writes into the vault and serves them
	// back over the host's chunk-fetch conversation. Nil refuses chunk
	// writes (a discovery-only super).
	Chunks ChunkVault
	// Logf receives diagnostics; may be nil.
	Logf func(format string, args ...any)
}

// subscription is one registered pushed query.
type subscription struct {
	key   string // addr + "/" + sub ID, the dedup key
	subID string
	addr  string // subscriber's host address (overlay.notify target)
	query advert.Query
}

// SuperPeer is one node of the replicated discovery tier: it stores the
// adverts the ring places on it, answers queries from its shard,
// replicates accepted writes to the other owners, pushes matching
// adverts to subscribers, and keeps its replicas convergent through
// anti-entropy sync.
type SuperPeer struct {
	host    *jxtaserve.Host
	store   *store
	opts    SuperOptions
	metrics *superMetrics
	tracer  *trace.Recorder

	bg       sync.WaitGroup
	shutdown chan struct{}
	closed   sync.Once

	mu      sync.Mutex
	subs    map[string]*subscription
	syncIdx int
}

// NewSuper attaches a super-peer to a host and registers its RPC
// handlers immediately.
func NewSuper(host *jxtaserve.Host, opts SuperOptions) (*SuperPeer, error) {
	if opts.Ring == nil {
		return nil, fmt.Errorf("overlay: SuperOptions.Ring required")
	}
	if opts.Replication <= 0 {
		opts.Replication = DefaultReplication
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.SweepInterval == 0 {
		opts.SweepInterval = time.Second
	}
	if opts.Tracer == nil {
		opts.Tracer = trace.Default()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &SuperPeer{
		host:     host,
		store:    newStore(opts.Now),
		opts:     opts,
		metrics:  newSuperMetrics(opts.Registry, host.PeerID()),
		tracer:   opts.Tracer,
		shutdown: make(chan struct{}),
		subs:     make(map[string]*subscription),
	}
	s.metrics.ringSize.Set(float64(opts.Ring.Len()))
	host.Handle(methodPublish, s.handlePublish)
	host.Handle(methodRetract, s.handleRetract)
	host.Handle(methodQuery, s.handleQuery)
	host.Handle(methodSubscribe, s.handleSubscribe)
	host.Handle(methodUnsub, s.handleUnsubscribe)
	host.Handle(methodSyncDigest, s.handleSyncDigest)
	host.Handle(methodSyncPull, s.handleSyncPull)
	host.Handle(methodChunkPut, s.handleChunkPut)
	if opts.Chunks != nil && !host.HasChunkSource() {
		// Serve chunk fetches from the vault unless the embedding
		// service already installed a source with its own accounting.
		host.SetChunkSource(opts.Chunks.Get)
	}
	if opts.SweepInterval > 0 {
		s.goBG(func() { s.loop(opts.SweepInterval, func() { s.SweepOnce() }) })
	}
	if opts.SyncInterval > 0 {
		s.goBG(func() {
			s.loop(opts.SyncInterval, func() {
				if _, err := s.SyncOnce(); err != nil {
					s.logf("overlay: %s sync: %v", s.host.PeerID(), err)
				}
			})
		})
	}
	return s, nil
}

// Close stops the background loops and waits for in-flight pushes.
// The host itself is owned by the caller.
func (s *SuperPeer) Close() {
	s.closed.Do(func() { close(s.shutdown) })
	s.bg.Wait()
}

// Host exposes the underlying pipe host.
func (s *SuperPeer) Host() *jxtaserve.Host { return s.host }

// Ring exposes the membership this super places keys on.
func (s *SuperPeer) Ring() *Ring { return s.opts.Ring }

// Subscriptions reports the registered subscription count.
func (s *SuperPeer) Subscriptions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Entries reports (live adverts, tombstones) held by this super.
func (s *SuperPeer) Entries() (live, tombstones int) { return s.store.counts() }

func (s *SuperPeer) goBG(f func()) {
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		f()
	}()
}

func (s *SuperPeer) loop(interval time.Duration, tick func()) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.shutdown:
			return
		case <-t.C:
			tick()
		}
	}
}

func (s *SuperPeer) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// updateStoreGauges refreshes the live/tombstone gauges after a write.
func (s *SuperPeer) updateStoreGauges() {
	live, tombs := s.store.counts()
	s.metrics.storeLive.Set(float64(live))
	s.metrics.storeTombs.Set(float64(tombs))
}

// --- write path --------------------------------------------------------------

func (s *SuperPeer) handlePublish(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	var ad advert.Advertisement
	if err := ad.UnmarshalText(req.Payload); err != nil {
		return nil, err
	}
	version, err := strconv.ParseUint(req.Header("version"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("overlay: bad version %q", req.Header("version"))
	}
	e := Entry{Ad: &ad, ID: ad.ID, Version: version}
	accepted, current := s.store.putVersioned(e)
	isReplica := req.Header("replica") == "1"
	if isReplica {
		s.metrics.replicas.Inc()
	} else {
		s.metrics.publishes.Inc()
	}
	if accepted {
		traceID, parent := trace.Extract(req.Header)
		if !isReplica {
			// Synchronous replication: the publisher's ack means the
			// advert is on every reachable owner, which is what makes a
			// super-peer death immediately after publish lossless.
			s.replicate(methodPublish, e, req.Payload, traceID, parent)
		}
		s.notifyMatching(e, traceID, parent)
		s.updateStoreGauges()
	}
	reply := &jxtaserve.Message{}
	reply.SetHeader("accepted", boolHeader(accepted))
	// On rejection the publisher learns the version it must outbid
	// (e.g. the tombstone an expiry sweep minted behind its back).
	reply.SetHeader("version", strconv.FormatUint(current, 10))
	return reply, nil
}

func (s *SuperPeer) handleRetract(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	id := req.Header("id")
	version, err := strconv.ParseUint(req.Header("version"), 10, 64)
	if err != nil || id == "" {
		return nil, fmt.Errorf("overlay: bad retraction (id %q, version %q)", id, req.Header("version"))
	}
	// Keep the prior advert body on the tombstone when we have it, so
	// topic-based replication still knows the placement key.
	prev, _ := s.store.get(id)
	e := Entry{ID: id, Ad: prev.Ad, Version: version, Tombstone: true}
	accepted := s.store.put(e)
	if accepted {
		s.metrics.retractions.Inc()
		traceID, parent := trace.Extract(req.Header)
		if req.Header("replica") != "1" {
			s.replicate(methodRetract, e, nil, traceID, parent)
		}
		s.notifyMatching(e, traceID, parent)
		s.updateStoreGauges()
	}
	reply := &jxtaserve.Message{}
	reply.SetHeader("accepted", boolHeader(accepted))
	return reply, nil
}

// replicate pushes an accepted write to the other owners of its key.
// Errors are logged, not returned: a dead replica is repaired later by
// anti-entropy, and the write is already durable here.
func (s *SuperPeer) replicate(method string, e Entry, payload []byte, traceID, parent string) {
	key := placementKey(e)
	for _, owner := range s.opts.Ring.Owners(key, s.opts.Replication) {
		if owner == s.host.Addr() {
			continue
		}
		span := s.tracer.Start(traceID, parent, "overlay.replicate", s.host.PeerID())
		span.SetAttr("to", owner)
		span.SetAttr("advert", e.ID)
		headers := map[string]string{
			"version": strconv.FormatUint(e.Version, 10),
			"replica": "1",
		}
		if method == methodRetract {
			headers["id"] = e.ID
		}
		trace.Inject(span, func(k, v string) { headers[k] = v })
		_, err := s.host.Request(owner, method, payload, headers)
		span.Fail(err)
		span.End()
		if err != nil {
			s.logf("overlay: %s replicate %s to %s: %v", s.host.PeerID(), e.ID, owner, err)
		}
	}
}

// placementKey returns the ring key for an entry: its topic when the
// advert body is known, its ID otherwise (a pure tombstone arriving
// before any body — it will still land on the ID's owners, and
// anti-entropy reconciles the rest).
func placementKey(e Entry) string {
	if e.Ad != nil {
		return TopicKey(string(e.Ad.Kind), e.Ad.Name)
	}
	return e.ID
}

// --- read path ---------------------------------------------------------------

func (s *SuperPeer) handleQuery(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	s.metrics.queries.Inc()
	var q advert.Query
	if err := q.UnmarshalText(req.Payload); err != nil {
		return nil, err
	}
	limit, _ := strconv.Atoi(req.Header("limit"))
	payload, err := advert.EncodeList(s.store.find(q, limit))
	if err != nil {
		return nil, err
	}
	return &jxtaserve.Message{Payload: payload}, nil
}

// --- pub/sub -----------------------------------------------------------------

func (s *SuperPeer) handleSubscribe(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	var q advert.Query
	if err := q.UnmarshalText(req.Payload); err != nil {
		return nil, err
	}
	subID, addr := req.Header("sub"), req.Header("addr")
	if subID == "" || addr == "" {
		return nil, fmt.Errorf("overlay: subscribe missing sub/addr")
	}
	sub := &subscription{key: addr + "/" + subID, subID: subID, addr: addr, query: q}
	s.mu.Lock()
	s.subs[sub.key] = sub
	s.metrics.subscriptions.Set(float64(len(s.subs)))
	s.mu.Unlock()
	// Seed the subscriber with the current matches through the same
	// push path new adverts take: one delivery mechanism, one dedup.
	traceID, parent := trace.Extract(req.Header)
	for _, ad := range s.store.find(q, 0) {
		e, ok := s.store.get(ad.ID)
		if !ok {
			continue
		}
		s.pushAsync(sub, e, traceID, parent)
	}
	return &jxtaserve.Message{}, nil
}

func (s *SuperPeer) handleUnsubscribe(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	key := req.Header("addr") + "/" + req.Header("sub")
	s.mu.Lock()
	delete(s.subs, key)
	s.metrics.subscriptions.Set(float64(len(s.subs)))
	s.mu.Unlock()
	return &jxtaserve.Message{}, nil
}

// notifyMatching pushes an accepted write to every subscription it
// matches. Retractions match against the tombstoned advert body when
// known, else against every subscription (the subscriber's own dedup
// drops retractions for adverts it never saw).
func (s *SuperPeer) notifyMatching(e Entry, traceID, parent string) {
	s.mu.Lock()
	targets := make([]*subscription, 0, len(s.subs))
	for _, sub := range s.subs {
		if e.Ad != nil && !sub.query.Matches(e.Ad) {
			continue
		}
		targets = append(targets, sub)
	}
	s.mu.Unlock()
	for _, sub := range targets {
		s.pushAsync(sub, e, traceID, parent)
	}
}

// pushAsync delivers one entry to one subscriber without blocking the
// write path. The goroutine is lifecycle-owned: Close reaps it.
func (s *SuperPeer) pushAsync(sub *subscription, e Entry, traceID, parent string) {
	select {
	case <-s.shutdown:
		return
	default:
	}
	s.goBG(func() {
		span := s.tracer.Start(traceID, parent, "overlay.notify", s.host.PeerID())
		span.SetAttr("to", sub.addr)
		span.SetAttr("advert", e.ID)
		headers := map[string]string{
			"sub":     sub.subID,
			"id":      e.ID,
			"version": strconv.FormatUint(e.Version, 10),
			"event":   eventUpdate,
		}
		var payload []byte
		if e.Tombstone {
			headers["event"] = eventRetract
		} else if e.Ad != nil {
			b, err := e.Ad.MarshalText()
			if err != nil {
				span.Fail(err)
				span.End()
				return
			}
			payload = b
		}
		trace.Inject(span, func(k, v string) { headers[k] = v })
		start := time.Now()
		_, err := s.host.Request(sub.addr, methodNotify, payload, headers)
		s.metrics.notifies.Inc()
		s.metrics.pushLatency.Observe(time.Since(start).Seconds())
		span.Fail(err)
		span.End()
		if err != nil {
			// A vanished subscriber is normal churn: drop the
			// subscription so we stop pushing into the void.
			s.mu.Lock()
			delete(s.subs, sub.key)
			s.metrics.subscriptions.Set(float64(len(s.subs)))
			s.mu.Unlock()
		}
	})
}

// --- expiry ------------------------------------------------------------------

// SweepOnce tombstones every expired advert and pushes retractions to
// matching subscribers, returning how many adverts expired. Each
// replica sweeps its own copy — expiry is wall-clock, so the owners
// converge without extra replication traffic.
func (s *SuperPeer) SweepOnce() int {
	swept := s.store.sweepExpired()
	for _, e := range swept {
		s.metrics.retractions.Inc()
		s.notifyMatching(e, "", "")
	}
	if len(swept) > 0 {
		s.updateStoreGauges()
	}
	return len(swept)
}

// --- anti-entropy ------------------------------------------------------------

// SyncOnce runs one anti-entropy round against the next ring member in
// round-robin order: exchange per-shard digests, pull the shards that
// differ, and merge whatever is newer. It returns the number of entries
// accepted from the peer.
func (s *SuperPeer) SyncOnce() (pulled int, err error) {
	peers := s.opts.Ring.Nodes()
	self := s.host.Addr()
	candidates := peers[:0:0]
	for _, p := range peers {
		if p != self {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	peer := candidates[s.syncIdx%len(candidates)]
	s.syncIdx++
	s.mu.Unlock()
	return s.SyncWith(peer)
}

// SyncWith runs one digest-and-pull round against a specific peer.
func (s *SuperPeer) SyncWith(peer string) (pulled int, err error) {
	s.metrics.syncRounds.Inc()
	s.metrics.ringSize.Set(float64(s.opts.Ring.Len()))
	mine := s.store.digest(s.opts.Shards)
	reply, err := s.host.Request(peer, methodSyncDigest, encodeDigests(mine), nil)
	if err != nil {
		return 0, err
	}
	theirs, err := decodeDigests(reply.Payload)
	if err != nil {
		return 0, err
	}
	if len(theirs) != len(mine) {
		return 0, fmt.Errorf("overlay: digest shape mismatch (%d vs %d shards)", len(theirs), len(mine))
	}
	var diff []string
	for i := range mine {
		if mine[i] != theirs[i] {
			diff = append(diff, strconv.Itoa(i))
		}
	}
	if len(diff) == 0 {
		return 0, nil
	}
	pullReply, err := s.host.Request(peer, methodSyncPull, nil,
		map[string]string{"shards": strings.Join(diff, ",")})
	if err != nil {
		return 0, err
	}
	entries, err := decodeEntries(pullReply.Payload)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if s.store.put(e) {
			pulled++
			// A repaired entry is news to this super's subscribers too:
			// staleness after a partition heals is bounded by the sync
			// interval, for pull and push consumers alike.
			s.notifyMatching(e, "", "")
		}
	}
	if pulled > 0 {
		s.metrics.syncPulled.Add(int64(pulled))
		s.updateStoreGauges()
	}
	return pulled, nil
}

func (s *SuperPeer) handleSyncDigest(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	return &jxtaserve.Message{Payload: encodeDigests(s.store.digest(s.opts.Shards))}, nil
}

func (s *SuperPeer) handleSyncPull(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	want, err := parseShardList(req.Header("shards"), s.opts.Shards)
	if err != nil {
		return nil, err
	}
	payload, err := encodeEntries(s.store.shardEntries(want, s.opts.Shards))
	if err != nil {
		return nil, err
	}
	return &jxtaserve.Message{Payload: payload}, nil
}

func boolHeader(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
