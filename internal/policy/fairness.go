// Fairness measurement for the multi-tenant despatch plane. Jain's
// index is the standard scalar for "how evenly was the resource
// shared": 1.0 when every tenant got an identical allocation, 1/n when
// one tenant took everything. The tenancy experiment (T7) and the
// tenant-smoke CI gate both score per-tenant farm throughput with it.
package policy

// JainIndex computes Jain's fairness index over the allocations:
//
//	J = (Σx)² / (n · Σx²)
//
// ranging from 1/n (maximally unfair) to 1 (perfectly fair). An empty
// or all-zero input scores 1 — nothing was allocated, so nothing was
// allocated unfairly. Negative allocations make no sense for
// throughput shares and are treated as zero.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WeightedJainIndex scores allocations against per-tenant weights: each
// allocation is normalised by its weight first, so a tenant with weight
// 2 receiving twice the throughput of a weight-1 tenant scores a
// perfect 1. Weights <= 0 count as 1.
func WeightedJainIndex(xs, weights []float64) float64 {
	norm := make([]float64, len(xs))
	for i, x := range xs {
		w := 1.0
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		norm[i] = x / w
	}
	return JainIndex(norm)
}
