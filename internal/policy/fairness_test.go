package policy

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"perfectly fair", []float64{5, 5, 5, 5}, 1},
		{"empty is vacuously fair", nil, 1},
		{"all idle is vacuously fair", []float64{0, 0, 0}, 1},
		{"single tenant", []float64{42}, 1},
		{"total starvation of n-1", []float64{10, 0, 0, 0}, 0.25},
		{"two of four starved", []float64{8, 8, 0, 0}, 0.5},
		{"mild imbalance", []float64{4, 5, 6}, (15.0 * 15.0) / (3 * (16.0 + 25.0 + 36.0))},
		{"negatives clamp to zero", []float64{10, -3, 0}, 100.0 / (3 * 100.0)},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
}

func TestJainIndexBounds(t *testing.T) {
	// 1/n <= J <= 1 for any non-degenerate allocation.
	xs := []float64{1, 3, 9, 27, 81}
	j := JainIndex(xs)
	if j < 1.0/float64(len(xs)) || j > 1 {
		t.Fatalf("JainIndex(%v) = %v outside [1/n, 1]", xs, j)
	}
}

func TestWeightedJainIndex(t *testing.T) {
	// A 2:1 split at 2:1 weights is perfectly fair; at equal weights it
	// is not.
	xs := []float64{20, 10}
	if j := WeightedJainIndex(xs, []float64{2, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("weighted 2:1 split at 2:1 weights: J = %v, want 1", j)
	}
	if j := WeightedJainIndex(xs, []float64{1, 1}); j >= 1 {
		t.Errorf("2:1 split at equal weights should be unfair, got J = %v", j)
	}
	// Non-positive weights count as 1 rather than dividing by zero.
	if j := WeightedJainIndex([]float64{5, 5}, []float64{0, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("zero weight should default to 1: J = %v, want 1", j)
	}
}
