// Health-aware candidate ordering. Policies receive peers "in
// preference order" (Policy.Plan); OrderByHealth is how the controller
// builds that order from live peer-health observations instead of
// static discovery attributes alone — healthy peers first by score,
// open-breaker peers demoted to the tail so a plan prefers them last
// but can still use them when nothing else exists.
package policy

// Scorer is the view of a live peer-health tracker the planner needs.
// *health.Tracker satisfies it; policy depends only on this interface
// so planning stays decoupled from the service layer.
type Scorer interface {
	// Score is the peer's success score in [0, 1]; unseen peers score 1.
	Score(peer string) float64
	// Usable reports whether the peer's circuit breaker admits work.
	Usable(peer string) bool
}

// OrderByHealth reorders candidate peers for planning: usable peers by
// descending score (stable, so the incoming order — e.g. discovery's
// CPU ranking — breaks ties), then unusable peers by descending score.
// A nil scorer returns the input unchanged. The input slice is not
// modified.
func OrderByHealth(peers []string, s Scorer) []string {
	if s == nil || len(peers) < 2 {
		return peers
	}
	usable := make([]string, 0, len(peers))
	gated := make([]string, 0)
	for _, p := range peers {
		if s.Usable(p) {
			usable = append(usable, p)
		} else {
			gated = append(gated, p)
		}
	}
	sortByScore := func(ids []string) {
		// Insertion sort: candidate lists are small and stability matters.
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && s.Score(ids[j]) > s.Score(ids[j-1]); j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
	}
	sortByScore(usable)
	sortByScore(gated)
	return append(usable, gated...)
}
