package policy

import (
	"reflect"
	"testing"
)

// fakeScorer maps peers to scores; peers in gated are not usable.
type fakeScorer struct {
	scores map[string]float64
	gated  map[string]bool
}

func (f fakeScorer) Score(p string) float64 {
	if s, ok := f.scores[p]; ok {
		return s
	}
	return 1.0
}

func (f fakeScorer) Usable(p string) bool { return !f.gated[p] }

func TestOrderByHealth(t *testing.T) {
	in := []string{"a", "b", "c", "d", "e"}
	s := fakeScorer{
		scores: map[string]float64{"a": 0.2, "b": 0.9, "c": 0.9, "e": 0.5},
		gated:  map[string]bool{"d": true},
	}
	got := OrderByHealth(in, s)
	// b and c tie at 0.9 — incoming order breaks the tie; gated d goes
	// last despite its perfect default score.
	want := []string{"b", "c", "e", "a", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("OrderByHealth = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(in, []string{"a", "b", "c", "d", "e"}) {
		t.Errorf("input mutated: %v", in)
	}
}

func TestOrderByHealthNilScorerAndSmallInputs(t *testing.T) {
	in := []string{"b", "a"}
	if got := OrderByHealth(in, nil); !reflect.DeepEqual(got, in) {
		t.Errorf("nil scorer reordered: %v", got)
	}
	one := []string{"x"}
	if got := OrderByHealth(one, fakeScorer{}); !reflect.DeepEqual(got, one) {
		t.Errorf("single peer reordered: %v", got)
	}
	if got := OrderByHealth(nil, fakeScorer{}); len(got) != 0 {
		t.Errorf("nil input produced %v", got)
	}
}

// TestOrderByHealthAllGated: when every peer is gated, the order is
// score-descending among them — the planner still gets its forced
// fallback ranked best-first.
func TestOrderByHealthAllGated(t *testing.T) {
	s := fakeScorer{
		scores: map[string]float64{"a": 0.1, "b": 0.8},
		gated:  map[string]bool{"a": true, "b": true},
	}
	got := OrderByHealth([]string{"a", "b"}, s)
	if !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("all-gated order = %v, want [b a]", got)
	}
}
