// Package policy implements Triana's group distribution policies (§3.3):
// "There are two distribution policies currently implemented in Triana,
// parallel and peer to peer. Parallel is a farming out mechanism and
// generally involves no communication between hosts. Peer to Peer means
// distributing the group vertically i.e. each unit in the group is
// distributed onto a separate resource and data is passed between them."
//
// A policy is the planning half of a control unit: given a group task and
// the candidate peers, it produces a Plan that the controller enacts by
// rewiring the graph and despatching subgraphs. New policies register by
// name, so "it is easy for new users to create their own distribution
// policies without needing to know about the underlying middleware".
package policy

import (
	"fmt"
	"sort"
	"sync"

	"consumergrid/internal/taskgraph"
)

// Built-in policy names, used as the taskgraph ControlUnit attribute.
const (
	NameParallel   = "policy.Parallel"
	NamePeerToPeer = "policy.PeerToPeer"
	NameLocal      = "policy.Local"
)

// PlanKind distinguishes how the controller enacts a plan.
type PlanKind int

// Plan kinds.
const (
	// KindLocal executes the group in-process (no distribution).
	KindLocal PlanKind = iota
	// KindParallel replicates the whole group body onto each listed
	// peer and farms data items across the replicas.
	KindParallel
	// KindPipeline places each group member on its own peer, chained by
	// pipes.
	KindPipeline
)

// String names the kind.
func (k PlanKind) String() string {
	switch k {
	case KindLocal:
		return "local"
	case KindParallel:
		return "parallel"
	case KindPipeline:
		return "pipeline"
	default:
		return "unknown"
	}
}

// Plan is a policy's placement decision for one group.
type Plan struct {
	Kind PlanKind
	// Replicas lists the peers hosting a full copy of the group body
	// (KindParallel).
	Replicas []string
	// Placement maps group member task names to peers (KindPipeline).
	Placement map[string]string
	// Stages lists the pipeline stages in data-flow order (KindPipeline):
	// each stage is one group member task name.
	Stages []string
}

// Policy plans the distribution of a group across candidate peers.
type Policy interface {
	// Name is the registry key, stored as the group's control unit.
	Name() string
	// Plan decides placements. group must be a group task; peers lists
	// candidate peer IDs in preference order.
	Plan(group *taskgraph.Task, peers []string) (*Plan, error)
}

// --- registry ---------------------------------------------------------------

var (
	regMu sync.RWMutex
	reg   = map[string]func() Policy{}
)

// Register adds a policy constructor under its name; duplicate names
// panic (policy names are global constants, as unit names are).
func Register(name string, factory func() Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic("policy: duplicate registration of " + name)
	}
	reg[name] = factory
}

// New instantiates the named policy.
func New(name string) (Policy, error) {
	regMu.RLock()
	f, ok := reg[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
	return f(), nil
}

// Names lists registered policies, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(NameParallel, func() Policy { return &Parallel{} })
	Register(NamePeerToPeer, func() Policy { return &PeerToPeer{} })
	Register(NameLocal, func() Policy { return &Local{} })
}

// --- built-ins --------------------------------------------------------------

// Local executes the group in-process; it is the implicit policy of
// ungrouped graphs and the fallback when no peers are discovered.
type Local struct{}

// Name implements Policy.
func (*Local) Name() string { return NameLocal }

// Plan implements Policy.
func (*Local) Plan(group *taskgraph.Task, peers []string) (*Plan, error) {
	if !group.IsGroup() {
		return nil, fmt.Errorf("policy: %s is not a group", group.Name)
	}
	return &Plan{Kind: KindLocal}, nil
}

// Parallel is the farm-out policy. MaxReplicas bounds the farm width
// (0 = use every candidate peer).
type Parallel struct {
	MaxReplicas int
}

// Name implements Policy.
func (*Parallel) Name() string { return NameParallel }

// Plan implements Policy.
func (p *Parallel) Plan(group *taskgraph.Task, peers []string) (*Plan, error) {
	if !group.IsGroup() {
		return nil, fmt.Errorf("policy: %s is not a group", group.Name)
	}
	if len(peers) == 0 {
		return &Plan{Kind: KindLocal}, nil
	}
	replicas := append([]string(nil), peers...)
	if p.MaxReplicas > 0 && len(replicas) > p.MaxReplicas {
		replicas = replicas[:p.MaxReplicas]
	}
	return &Plan{Kind: KindParallel, Replicas: replicas}, nil
}

// PeerToPeer is the vertical pipeline policy: group member i executes on
// peer i (mod available peers), and data flows peer to peer.
type PeerToPeer struct{}

// Name implements Policy.
func (*PeerToPeer) Name() string { return NamePeerToPeer }

// Plan implements Policy.
func (*PeerToPeer) Plan(group *taskgraph.Task, peers []string) (*Plan, error) {
	if !group.IsGroup() {
		return nil, fmt.Errorf("policy: %s is not a group", group.Name)
	}
	if len(peers) == 0 {
		return &Plan{Kind: KindLocal}, nil
	}
	layers, err := group.Group.TopoLayers()
	if err != nil {
		return nil, fmt.Errorf("policy: group %s: %w", group.Name, err)
	}
	var stages []string
	for _, layer := range layers {
		stages = append(stages, layer...)
	}
	placement := make(map[string]string, len(stages))
	for i, task := range stages {
		placement[task] = peers[i%len(peers)]
	}
	return &Plan{Kind: KindPipeline, Placement: placement, Stages: stages}, nil
}

// Annotate writes a plan's placements into the graph so the decision is
// visible in the serialized XML (the paper's "annotated with the
// particular resources the particular groups will run on").
func Annotate(g *taskgraph.Graph, groupName string, plan *Plan) error {
	gt := g.Find(groupName)
	if gt == nil || !gt.IsGroup() {
		return fmt.Errorf("policy: %q is not a group task", groupName)
	}
	switch plan.Kind {
	case KindLocal:
		gt.Placement = ""
	case KindParallel:
		if len(plan.Replicas) > 0 {
			gt.Placement = plan.Replicas[0]
			gt.SetParam("replicas", fmt.Sprintf("%d", len(plan.Replicas)))
		}
	case KindPipeline:
		for task, peer := range plan.Placement {
			inner := gt.Group.Find(task)
			if inner == nil {
				return fmt.Errorf("policy: placement names unknown member %q", task)
			}
			inner.Placement = peer
		}
	}
	return nil
}
