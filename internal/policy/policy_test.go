package policy

import (
	"reflect"
	"testing"

	"consumergrid/internal/taskgraph"
)

// pipelineGroup builds a graph with a 3-member pipeline group A->B->C
// fed by Src and drained by Sink.
func pipelineGroup(t *testing.T) (*taskgraph.Graph, *taskgraph.Task) {
	t.Helper()
	g := taskgraph.New("app")
	g.AddUnit("Src", "u.src", 0, 1)
	g.AddUnit("A", "u.a", 1, 1)
	g.AddUnit("B", "u.b", 1, 1)
	g.AddUnit("C", "u.c", 1, 1)
	g.AddUnit("Sink", "u.sink", 1, 0)
	g.ConnectNamed("Src", 0, "A", 0)
	g.ConnectNamed("A", 0, "B", 0)
	g.ConnectNamed("B", 0, "C", 0)
	g.ConnectNamed("C", 0, "Sink", 0)
	gt, err := g.GroupTasks("G", []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	return g, gt
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{NameParallel: true, NamePeerToPeer: true, NameLocal: true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing policies: %v", want)
	}
	for _, n := range []string{NameParallel, NamePeerToPeer, NameLocal} {
		p, err := New(n)
		if err != nil || p.Name() != n {
			t.Errorf("New(%s) = %v, %v", n, p, err)
		}
	}
	if _, err := New("policy.Bogus"); err == nil {
		t.Error("unknown policy instantiated")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Register(NameLocal, func() Policy { return &Local{} })
}

func TestParallelPlan(t *testing.T) {
	_, gt := pipelineGroup(t)
	p := &Parallel{}
	plan, err := p.Plan(gt, []string{"p1", "p2", "p3"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != KindParallel || !reflect.DeepEqual(plan.Replicas, []string{"p1", "p2", "p3"}) {
		t.Fatalf("plan = %+v", plan)
	}
	// Bounded replicas.
	bounded := &Parallel{MaxReplicas: 2}
	plan, _ = bounded.Plan(gt, []string{"p1", "p2", "p3"})
	if len(plan.Replicas) != 2 {
		t.Errorf("replicas = %v", plan.Replicas)
	}
	// No peers -> local fallback.
	plan, _ = p.Plan(gt, nil)
	if plan.Kind != KindLocal {
		t.Errorf("empty-peer plan = %v", plan.Kind)
	}
	// Non-group rejected.
	if _, err := p.Plan(&taskgraph.Task{Name: "X", Unit: "u"}, []string{"p"}); err == nil {
		t.Error("non-group planned")
	}
}

func TestPeerToPeerPlanStagesInFlowOrder(t *testing.T) {
	_, gt := pipelineGroup(t)
	p := &PeerToPeer{}
	plan, err := p.Plan(gt, []string{"p1", "p2", "p3"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != KindPipeline {
		t.Fatalf("kind = %v", plan.Kind)
	}
	if !reflect.DeepEqual(plan.Stages, []string{"A", "B", "C"}) {
		t.Fatalf("stages = %v", plan.Stages)
	}
	want := map[string]string{"A": "p1", "B": "p2", "C": "p3"}
	if !reflect.DeepEqual(plan.Placement, want) {
		t.Fatalf("placement = %v", plan.Placement)
	}
}

func TestPeerToPeerWrapsWhenFewerPeers(t *testing.T) {
	_, gt := pipelineGroup(t)
	plan, err := (&PeerToPeer{}).Plan(gt, []string{"p1", "p2"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement["A"] != "p1" || plan.Placement["B"] != "p2" || plan.Placement["C"] != "p1" {
		t.Fatalf("placement = %v", plan.Placement)
	}
	// Zero peers falls back to local.
	plan, _ = (&PeerToPeer{}).Plan(gt, nil)
	if plan.Kind != KindLocal {
		t.Error("no-peer pipeline should be local")
	}
}

func TestPeerToPeerRejectsCyclicGroup(t *testing.T) {
	g := taskgraph.New("app")
	g.AddUnit("A", "u", 1, 1)
	g.AddUnit("B", "u", 1, 1)
	g.ConnectNamed("A", 0, "B", 0)
	g.ConnectNamed("B", 0, "A", 0)
	gt, err := g.GroupTasks("G", []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&PeerToPeer{}).Plan(gt, []string{"p"}); err == nil {
		t.Error("cyclic group planned")
	}
}

func TestLocalPlan(t *testing.T) {
	_, gt := pipelineGroup(t)
	plan, err := (&Local{}).Plan(gt, []string{"ignored"})
	if err != nil || plan.Kind != KindLocal {
		t.Fatalf("plan = %+v, %v", plan, err)
	}
	if _, err := (&Local{}).Plan(&taskgraph.Task{Name: "X", Unit: "u"}, nil); err == nil {
		t.Error("non-group planned")
	}
}

func TestAnnotate(t *testing.T) {
	g, gt := pipelineGroup(t)
	plan, _ := (&PeerToPeer{}).Plan(gt, []string{"p1", "p2", "p3"})
	if err := Annotate(g, "G", plan); err != nil {
		t.Fatal(err)
	}
	if gt.Group.Find("B").Placement != "p2" {
		t.Errorf("member placement = %q", gt.Group.Find("B").Placement)
	}
	// Parallel annotation records replica count.
	plan2, _ := (&Parallel{}).Plan(gt, []string{"p1", "p2"})
	if err := Annotate(g, "G", plan2); err != nil {
		t.Fatal(err)
	}
	if gt.Placement != "p1" || gt.Param("replicas", "") != "2" {
		t.Errorf("group annotation = %q / %q", gt.Placement, gt.Param("replicas", ""))
	}
	// Survives XML round trip.
	b, err := g.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := taskgraph.ParseXML(b)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Find("G").Group.Find("B").Placement != "p2" {
		t.Error("placement lost in XML")
	}
	// Errors.
	if err := Annotate(g, "Src", plan); err == nil {
		t.Error("annotated non-group")
	}
	bad := &Plan{Kind: KindPipeline, Placement: map[string]string{"Ghost": "p"}}
	if err := Annotate(g, "G", bad); err == nil {
		t.Error("unknown member annotated")
	}
	if err := Annotate(g, "G", &Plan{Kind: KindLocal}); err != nil {
		t.Error(err)
	}
	if gt.Placement != "" {
		t.Error("local plan should clear placement")
	}
}

func TestPlanKindString(t *testing.T) {
	if KindLocal.String() != "local" || KindParallel.String() != "parallel" ||
		KindPipeline.String() != "pipeline" || PlanKind(9).String() != "unknown" {
		t.Error("kind names")
	}
}
