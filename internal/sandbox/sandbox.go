// Package sandbox is the Consumer Grid's analogue of the Java Sandbox the
// paper relies on for host protection ("the sandbox ensures that an
// untrusted and possibly malicious application cannot gain access to
// system resources", §1). Foreign task graphs run inside a Sandbox that
// applies a deny-by-default capability policy for filesystem, network and
// process operations, enforces memory and CPU quotas, and keeps an audit
// trail the resource owner can inspect.
//
// Go cannot intercept syscalls made by arbitrary code the way the JVM
// security manager can, so the enforcement point is cooperative: every
// unit receives its capabilities (file access, memory accounting) through
// the sandbox rather than calling the os package directly, mirroring how
// Triana units see the world through the Triana runtime. The observable
// property — an untrusted workflow cannot touch resources the owner did
// not grant — is the same.
package sandbox

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Permission names a capability a unit may request.
type Permission string

// The capability set. FSRead/FSWrite additionally require the path to lie
// under the policy's FSRoot.
const (
	FSRead    Permission = "fs.read"
	FSWrite   Permission = "fs.write"
	NetDial   Permission = "net.dial"
	NetListen Permission = "net.listen"
	Exec      Permission = "exec"
)

// ErrDenied is wrapped by every permission failure.
var ErrDenied = errors.New("sandbox: permission denied")

// ErrQuota is wrapped by every quota failure.
var ErrQuota = errors.New("sandbox: quota exceeded")

// Policy describes what a hosted workflow may do. The zero value denies
// everything and grants unlimited compute — the paper's applet model,
// where spare cycles are donated but the host is untouchable.
type Policy struct {
	// Allow lists the granted capabilities.
	Allow []Permission
	// FSRoot confines fs.read/fs.write to one directory subtree. Ignored
	// when neither capability is granted. Empty with a granted fs
	// capability means "nowhere" (still denied), so a root must be chosen
	// deliberately.
	FSRoot string
	// MaxMemory bounds the bytes a workflow may hold via Alloc at any one
	// time; 0 means unlimited.
	MaxMemory int64
	// MaxCPU bounds the total CPU time charged via ChargeCPU; 0 means
	// unlimited.
	MaxCPU time.Duration
}

// Deny returns the zero deny-all policy.
func Deny() Policy { return Policy{} }

// AllowCompute returns a policy with no capabilities but the given memory
// budget — the default stance for a consumer peer hosting strangers'
// workflows ("users would have the option to specify how much RAM the
// applications could use", §3.7).
func AllowCompute(maxMemory int64) Policy { return Policy{MaxMemory: maxMemory} }

// AuditEntry records one sandboxed decision.
type AuditEntry struct {
	Time    time.Time
	Perm    Permission
	Detail  string
	Allowed bool
}

// maxAuditEntries bounds the audit ring so hostile workflows cannot grow
// host memory by spamming denials.
const maxAuditEntries = 4096

// Sandbox enforces one Policy. It is safe for concurrent use by the many
// goroutines of a running task graph.
type Sandbox struct {
	policy Policy

	mu       sync.Mutex
	allowed  map[Permission]bool
	memUsed  int64
	memPeak  int64
	cpuUsed  time.Duration
	audit    []AuditEntry
	auditOff int // ring start when full
	denials  int
}

// New builds a sandbox enforcing policy.
func New(policy Policy) *Sandbox {
	s := &Sandbox{policy: policy, allowed: make(map[Permission]bool, len(policy.Allow))}
	for _, p := range policy.Allow {
		s.allowed[p] = true
	}
	return s
}

// Policy returns a copy of the enforced policy.
func (s *Sandbox) Policy() Policy { return s.policy }

// Check verifies that perm is granted, recording the decision in the
// audit trail. detail is free text naming the object of the request
// (a path, an address).
func (s *Sandbox) Check(perm Permission, detail string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.allowed[perm]
	s.record(perm, detail, ok)
	if !ok {
		return fmt.Errorf("%w: %s %s", ErrDenied, perm, detail)
	}
	return nil
}

func (s *Sandbox) record(perm Permission, detail string, ok bool) {
	if !ok {
		s.denials++
	}
	e := AuditEntry{Time: time.Now(), Perm: perm, Detail: detail, Allowed: ok}
	if len(s.audit) < maxAuditEntries {
		s.audit = append(s.audit, e)
		return
	}
	s.audit[s.auditOff] = e
	s.auditOff = (s.auditOff + 1) % maxAuditEntries
}

// Audit returns the recorded entries, oldest first.
func (s *Sandbox) Audit() []AuditEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]AuditEntry, 0, len(s.audit))
	out = append(out, s.audit[s.auditOff:]...)
	out = append(out, s.audit[:s.auditOff]...)
	return out
}

// Denials reports how many requests have been refused.
func (s *Sandbox) Denials() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.denials
}

// Alloc charges n bytes against the memory quota. Units call this before
// materialising large buffers; the engine calls Release when the data
// leaves the peer.
func (s *Sandbox) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("sandbox: negative allocation %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.policy.MaxMemory > 0 && s.memUsed+n > s.policy.MaxMemory {
		s.record("mem.alloc", fmt.Sprintf("%d bytes (used %d, max %d)", n, s.memUsed, s.policy.MaxMemory), false)
		return fmt.Errorf("%w: memory %d+%d > %d", ErrQuota, s.memUsed, n, s.policy.MaxMemory)
	}
	s.memUsed += n
	if s.memUsed > s.memPeak {
		s.memPeak = s.memUsed
	}
	return nil
}

// Release returns n bytes to the quota; over-release clamps at zero
// rather than going negative (a unit bug must not mint quota).
func (s *Sandbox) Release(n int64) {
	if n < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memUsed -= n
	if s.memUsed < 0 {
		s.memUsed = 0
	}
}

// MemUsed reports current and peak charged memory.
func (s *Sandbox) MemUsed() (current, peak int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memUsed, s.memPeak
}

// ChargeCPU accumulates d against the CPU quota, failing once exhausted.
func (s *Sandbox) ChargeCPU(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("sandbox: negative CPU charge %v", d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cpuUsed += d
	if s.policy.MaxCPU > 0 && s.cpuUsed > s.policy.MaxCPU {
		s.record("cpu.charge", s.cpuUsed.String(), false)
		return fmt.Errorf("%w: CPU %v > %v", ErrQuota, s.cpuUsed, s.policy.MaxCPU)
	}
	return nil
}

// CPUUsed reports total charged CPU time.
func (s *Sandbox) CPUUsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cpuUsed
}

// resolve validates that path stays inside FSRoot after cleaning, guarding
// against .. traversal.
func (s *Sandbox) resolve(path string) (string, error) {
	if s.policy.FSRoot == "" {
		return "", fmt.Errorf("%w: no filesystem root configured", ErrDenied)
	}
	root, err := filepath.Abs(s.policy.FSRoot)
	if err != nil {
		return "", err
	}
	var abs string
	if filepath.IsAbs(path) {
		abs = filepath.Clean(path)
	} else {
		abs = filepath.Join(root, path)
	}
	if abs != root && !strings.HasPrefix(abs, root+string(filepath.Separator)) {
		return "", fmt.Errorf("%w: %s escapes sandbox root %s", ErrDenied, path, root)
	}
	return abs, nil
}

// OpenRead opens a file for reading if fs.read is granted and the path is
// inside FSRoot.
func (s *Sandbox) OpenRead(path string) (io.ReadCloser, error) {
	if err := s.Check(FSRead, path); err != nil {
		return nil, err
	}
	abs, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	return os.Open(abs)
}

// Create opens a file for writing if fs.write is granted and the path is
// inside FSRoot, creating parent directories as needed.
func (s *Sandbox) Create(path string) (io.WriteCloser, error) {
	if err := s.Check(FSWrite, path); err != nil {
		return nil, err
	}
	abs, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return nil, err
	}
	return os.Create(abs)
}
