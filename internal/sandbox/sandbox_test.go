package sandbox

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestDenyByDefault(t *testing.T) {
	s := New(Deny())
	for _, p := range []Permission{FSRead, FSWrite, NetDial, NetListen, Exec} {
		err := s.Check(p, "x")
		if !errors.Is(err, ErrDenied) {
			t.Errorf("Check(%s) = %v, want ErrDenied", p, err)
		}
	}
	if s.Denials() != 5 {
		t.Errorf("Denials = %d, want 5", s.Denials())
	}
}

func TestGrantedPermissionsPass(t *testing.T) {
	s := New(Policy{Allow: []Permission{NetDial}})
	if err := s.Check(NetDial, "host:1"); err != nil {
		t.Errorf("granted permission denied: %v", err)
	}
	if err := s.Check(NetListen, ":2"); !errors.Is(err, ErrDenied) {
		t.Errorf("ungranted permission allowed: %v", err)
	}
	audit := s.Audit()
	if len(audit) != 2 || !audit[0].Allowed || audit[1].Allowed {
		t.Errorf("audit = %+v", audit)
	}
}

func TestMemoryQuota(t *testing.T) {
	s := New(AllowCompute(100))
	if err := s.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := s.Alloc(50); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-alloc = %v, want ErrQuota", err)
	}
	if err := s.Alloc(40); err != nil {
		t.Fatalf("alloc to limit: %v", err)
	}
	cur, peak := s.MemUsed()
	if cur != 100 || peak != 100 {
		t.Errorf("MemUsed = %d/%d", cur, peak)
	}
	s.Release(70)
	if err := s.Alloc(50); err != nil {
		t.Errorf("alloc after release: %v", err)
	}
	cur, peak = s.MemUsed()
	if cur != 80 || peak != 100 {
		t.Errorf("after release MemUsed = %d/%d", cur, peak)
	}
	// Over-release clamps, never mints quota.
	s.Release(10000)
	cur, _ = s.MemUsed()
	if cur != 0 {
		t.Errorf("over-release left %d", cur)
	}
	if err := s.Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
	s.Release(-5) // no-op, no panic
}

func TestUnlimitedMemory(t *testing.T) {
	s := New(Deny())
	if err := s.Alloc(1 << 40); err != nil {
		t.Errorf("unlimited alloc failed: %v", err)
	}
}

func TestCPUQuota(t *testing.T) {
	s := New(Policy{MaxCPU: time.Second})
	if err := s.ChargeCPU(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.ChargeCPU(600 * time.Millisecond); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-charge = %v", err)
	}
	if s.CPUUsed() != 1200*time.Millisecond {
		t.Errorf("CPUUsed = %v", s.CPUUsed())
	}
	if err := s.ChargeCPU(-time.Second); err == nil {
		t.Error("negative charge should fail")
	}
}

func TestFSConfinement(t *testing.T) {
	root := t.TempDir()
	outside := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "in.txt"), []byte("inside"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(outside, "out.txt"), []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Policy{Allow: []Permission{FSRead, FSWrite}, FSRoot: root})

	// Relative path inside root: allowed.
	rc, err := s.OpenRead("in.txt")
	if err != nil {
		t.Fatalf("OpenRead: %v", err)
	}
	b, _ := io.ReadAll(rc)
	rc.Close()
	if string(b) != "inside" {
		t.Errorf("read %q", b)
	}
	// Absolute path inside root: allowed.
	if rc, err := s.OpenRead(filepath.Join(root, "in.txt")); err != nil {
		t.Errorf("absolute inside: %v", err)
	} else {
		rc.Close()
	}
	// Traversal out: denied.
	if _, err := s.OpenRead("../" + filepath.Base(outside) + "/out.txt"); !errors.Is(err, ErrDenied) {
		t.Errorf("traversal = %v, want ErrDenied", err)
	}
	// Absolute outside: denied.
	if _, err := s.OpenRead(filepath.Join(outside, "out.txt")); !errors.Is(err, ErrDenied) {
		t.Errorf("absolute outside = %v", err)
	}
	// Write creates directories under root.
	wc, err := s.Create("sub/dir/new.txt")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := io.WriteString(wc, "hello"); err != nil {
		t.Fatal(err)
	}
	wc.Close()
	if b, err := os.ReadFile(filepath.Join(root, "sub/dir/new.txt")); err != nil || string(b) != "hello" {
		t.Errorf("written file: %q %v", b, err)
	}
	// Write traversal denied.
	if _, err := s.Create("../evil.txt"); !errors.Is(err, ErrDenied) {
		t.Errorf("write traversal = %v", err)
	}
}

func TestFSWithoutRootDenied(t *testing.T) {
	s := New(Policy{Allow: []Permission{FSRead}})
	if _, err := s.OpenRead("anything"); !errors.Is(err, ErrDenied) {
		t.Errorf("no-root read = %v", err)
	}
}

func TestFSWithoutPermissionDenied(t *testing.T) {
	s := New(Policy{FSRoot: t.TempDir()})
	if _, err := s.OpenRead("x"); !errors.Is(err, ErrDenied) {
		t.Error("read without fs.read allowed")
	}
	if _, err := s.Create("x"); !errors.Is(err, ErrDenied) {
		t.Error("write without fs.write allowed")
	}
}

func TestAuditRingBounded(t *testing.T) {
	s := New(Deny())
	for i := 0; i < maxAuditEntries+100; i++ {
		s.Check(Exec, "spam")
	}
	a := s.Audit()
	if len(a) != maxAuditEntries {
		t.Fatalf("audit grew to %d", len(a))
	}
	if s.Denials() != maxAuditEntries+100 {
		t.Errorf("denial count lost: %d", s.Denials())
	}
}

func TestConcurrentAccountingConsistent(t *testing.T) {
	s := New(AllowCompute(1 << 40))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := s.Alloc(10); err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				s.Release(10)
				s.ChargeCPU(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	cur, _ := s.MemUsed()
	if cur != 0 {
		t.Errorf("leaked %d bytes", cur)
	}
	if s.CPUUsed() != 8*1000*time.Microsecond {
		t.Errorf("CPUUsed = %v", s.CPUUsed())
	}
}

func TestPolicyCopy(t *testing.T) {
	p := Policy{Allow: []Permission{Exec}, MaxMemory: 5}
	s := New(p)
	got := s.Policy()
	if got.MaxMemory != 5 || len(got.Allow) != 1 {
		t.Errorf("Policy() = %+v", got)
	}
}
