// Controller-side admission control: a bounded in-flight despatch
// budget so a million-chunk farm cannot exhaust memory or stampede a
// half-dead swarm with unbounded concurrent attempts. Each despatch
// attempt claims a slot before it touches the network and releases it
// when the attempt resolves.
//
// PR 4 implemented the budget as a bare channel semaphore: one global
// limit, waiters woken in whatever order the runtime's select picked,
// so a heavy farm could starve a light one indefinitely. This version
// is a weighted fair-share scheduler in the spirit of the market-driven
// schedulers surveyed by Yu & Buyya: every acquire names a tenant, each
// tenant owns a FIFO ticket queue, and freed slots are handed to the
// backlogged tenant with the lowest virtual pass (weighted stride —
// stride inversely proportional to the tenant's weight), so a tenant
// with weight 2 drains twice as fast as a tenant with weight 1 and
// no tenant is starved. Within a tenant, tickets are granted strictly
// in arrival order, which bounds wait-time skew between two competing
// farms of the same tenant.
//
// Backpressure is either blocking (the default — the farm paces itself
// to the budget) or shedding: with ShedDespatchOverload set, a full
// budget fails the acquire with a per-tenant *OverloadError at once.
//
// Every acquire has exactly one outcome — granted, shed, cancelled, or
// closed — decided under the scheduler mutex. The PR 4 semaphore
// decided "shed" with a lock-free select and bumped the shed counter
// outside it, so an acquire racing Close could count a shed AND return
// success; here the counters are bumped at the same decision point
// that picks the outcome, so they are exact under contention.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"consumergrid/internal/metrics"
)

// DefaultTenant is the tenant identity assumed when a submission does
// not carry one — single-scientist deployments from the paper never
// need to name tenants and keep working unchanged.
const DefaultTenant = "default"

// OverloadError is the typed shed verdict: the despatch was refused
// because the tenant's fair share of the in-flight budget was
// exhausted, not because anything is wrong with the work or the peer.
// Callers can retry later or fall back to blocking.
type OverloadError struct {
	// Tenant is the tenant whose acquire was shed.
	Tenant string
	// Limit is the configured in-flight despatch budget.
	Limit int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: despatch budget exhausted for tenant %q (%d in flight)", e.Tenant, e.Limit)
}

// errAdmissionClosed is the single "service shutting down" outcome; it
// is distinct from a shed and never bumps shed counters.
var errAdmissionClosed = errors.New("service: shutting down")

// ErrDraining is the typed refusal a draining controller gives new
// farms: the daemon is finishing its in-flight work before exiting and
// admits nothing new. Distinct from an *OverloadError (retry soon) —
// a draining daemon is going away, so callers should resubmit to
// another controller. Detect it with errors.Is.
var ErrDraining = errors.New("service: draining, not admitting new farms")

// defaultMaxInflightDespatches bounds concurrent despatch attempts when
// Options.MaxInflightDespatches is unset. High enough that tests and
// small farms never notice, low enough that a runaway fan-out cannot
// hold every chunk's pipes and buffers at once.
const defaultMaxInflightDespatches = 64

// strideScale is the numerator of the stride computation. Large enough
// that integer division by any sane weight keeps plenty of resolution.
const strideScale = 1 << 20

// ticket is one queued blocking acquire. Its outcome fields are written
// only under admission.mu; ready is closed exactly once, by whichever
// path (grant or close) decides the outcome.
type ticket struct {
	q         *tenantQueue
	ready     chan struct{}
	enqueued  time.Time
	granted   bool
	closed    bool
	cancelled bool // waiter gave up (ctx / shutdown); skip on dispatch
}

// tenantQueue is one tenant's admission state: its weight-derived
// stride, virtual pass, FIFO waiter queue, and exact outcome counters.
type tenantQueue struct {
	name     string
	weight   int
	stride   uint64
	pass     uint64
	inflight int
	waiters  []*ticket
	admits   int64
	sheds    int64

	// Registry-backed series, labelled {peer, tenant}. Created when the
	// queue is, so configured tenants appear on /metrics immediately.
	admitsC   *metrics.Counter
	shedsC    *metrics.Counter
	inflightG *metrics.Gauge
	waitH     *metrics.Histogram
}

// admission is the fair-share despatch scheduler. A nil admission
// admits everything (tests and embedded uses that opt out).
type admission struct {
	mu        sync.Mutex
	limit     int
	shed      bool
	closed    bool
	draining  bool // beginFarm refuses; slot acquires keep working
	farms     int  // farms between beginFarm and endFarm
	inflight  int  // total slots in use, across tenants
	waiting   int  // total live queued waiters, across tenants
	vtime     uint64
	owner     string // peer ID, labels the per-tenant series
	defWeight int
	tenants   map[string]*tenantQueue
	onShed    func(tenant string) // bumps process-level shed counters; may be nil
}

// newAdmission builds the scheduler. weights seeds the configured
// tenants (plus the default tenant) so their metric series register
// eagerly; unknown tenants are admitted on first use at defWeight.
func newAdmission(limit int, shed bool, owner string, weights map[string]int, defWeight int, onShed func(tenant string)) *admission {
	if limit <= 0 {
		limit = defaultMaxInflightDespatches
	}
	if defWeight <= 0 {
		defWeight = 1
	}
	a := &admission{
		limit:     limit,
		shed:      shed,
		owner:     owner,
		defWeight: defWeight,
		tenants:   make(map[string]*tenantQueue),
		onShed:    onShed,
	}
	a.queueLocked(DefaultTenant)
	for name, w := range weights {
		q := a.queueLocked(name)
		if w > 0 {
			q.weight = w
			q.stride = strideFor(w)
		}
	}
	return a
}

// strideFor converts a weight into a stride, never returning 0 (a zero
// stride would let an absurd weight freeze virtual time and monopolise
// the budget).
func strideFor(weight int) uint64 {
	s := strideScale / uint64(weight)
	if s == 0 {
		s = 1
	}
	return s
}

// queueLocked returns the tenant's queue, creating it at the default
// weight on first sight. Callers hold a.mu (or own a exclusively, as
// newAdmission does).
func (a *admission) queueLocked(tenant string) *tenantQueue {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if q, ok := a.tenants[tenant]; ok {
		return q
	}
	reg := metrics.Default()
	q := &tenantQueue{
		name:      tenant,
		weight:    a.defWeight,
		stride:    strideFor(a.defWeight),
		pass:      a.vtime,
		admitsC:   reg.Counter(metrics.Series("service_tenant_admits_total", "peer", a.owner, "tenant", tenant)),
		shedsC:    reg.Counter(metrics.Series("service_tenant_shed_total", "peer", a.owner, "tenant", tenant)),
		inflightG: reg.Gauge(metrics.Series("service_tenant_inflight", "peer", a.owner, "tenant", tenant)),
		waitH:     reg.Histogram(metrics.Series("service_tenant_sched_wait_seconds", "peer", a.owner, "tenant", tenant)),
	}
	a.tenants[tenant] = q
	return q
}

// setWeight adjusts a tenant's weight at runtime (trianactl tenant
// -weight). Weights <= 0 are ignored.
func (a *admission) setWeight(tenant string, w int) {
	if a == nil || w <= 0 {
		return
	}
	a.mu.Lock()
	q := a.queueLocked(tenant)
	q.weight = w
	q.stride = strideFor(w)
	a.mu.Unlock()
}

// grantLocked charges one slot to q. The tenant's pass advances by its
// stride, and the scheduler's virtual time follows the pass of the
// queue just served, so a tenant going idle cannot bank credit: on its
// next activity its pass is lifted to at least vtime.
func (a *admission) grantLocked(q *tenantQueue) {
	a.inflight++
	q.inflight++
	q.admits++
	if q.pass < a.vtime {
		q.pass = a.vtime
	}
	a.vtime = q.pass
	q.pass += q.stride
	q.admitsC.Inc()
	q.inflightG.Add(1)
	despatchInflight.Add(1)
}

// nextQueueLocked picks the backlogged tenant with the lowest pass —
// the weighted-stride scheduling decision. Ties break by name so the
// order is deterministic under test.
func (a *admission) nextQueueLocked() *tenantQueue {
	var best *tenantQueue
	for _, q := range a.tenants {
		live := false
		for _, t := range q.waiters {
			if !t.cancelled {
				live = true
				break
			}
		}
		if !live {
			continue
		}
		if best == nil || q.pass < best.pass || (q.pass == best.pass && q.name < best.name) {
			best = q
		}
	}
	return best
}

// dispatchLocked hands freed slots to waiting tickets until the budget
// is full or no live waiter remains. Each granted ticket's outcome is
// fixed here, under the mutex, before its channel is closed.
func (a *admission) dispatchLocked() {
	for a.inflight < a.limit && a.waiting > 0 {
		q := a.nextQueueLocked()
		if q == nil {
			return
		}
		var t *ticket
		for len(q.waiters) > 0 {
			cand := q.waiters[0]
			q.waiters = q.waiters[1:]
			if cand.cancelled {
				continue
			}
			t = cand
			break
		}
		if t == nil {
			continue
		}
		t.granted = true
		a.waiting--
		a.grantLocked(q)
		q.waitH.Observe(time.Since(t.enqueued).Seconds())
		close(t.ready)
	}
}

// acquire claims a slot for tenant. In blocking mode it waits — FIFO
// within the tenant, weighted fair-share across tenants — until a slot
// is granted, the context ends, or the service shuts down; in shed
// mode a full budget returns a per-tenant *OverloadError at once.
func (a *admission) acquire(ctx context.Context, shutdown <-chan struct{}, tenant string) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return errAdmissionClosed
	}
	q := a.queueLocked(tenant)
	// Fast path: free slot and nobody queued ahead. The waiting check
	// stops late arrivals barging past tickets already in line.
	if a.inflight < a.limit && a.waiting == 0 {
		a.grantLocked(q)
		q.waitH.Observe(0)
		a.mu.Unlock()
		return nil
	}
	if a.shed {
		q.sheds++
		q.shedsC.Inc()
		onShed := a.onShed
		a.mu.Unlock()
		if onShed != nil {
			onShed(q.name)
		}
		return &OverloadError{Tenant: q.name, Limit: a.limit}
	}
	t := &ticket{q: q, ready: make(chan struct{}), enqueued: time.Now()}
	q.waiters = append(q.waiters, t)
	a.waiting++
	a.mu.Unlock()

	select {
	case <-t.ready:
		a.mu.Lock()
		closed := t.closed
		a.mu.Unlock()
		if closed {
			return errAdmissionClosed
		}
		return nil
	case <-ctx.Done():
		a.abandon(t)
		return ctx.Err()
	case <-shutdown:
		a.abandon(t)
		return errAdmissionClosed
	}
}

// abandon resolves a waiter that gave up. If the grant already landed,
// the slot is returned (the caller is reporting an error and will not
// despatch); otherwise the ticket is marked cancelled and dispatch
// skips it. Either way the caller holds no slot afterwards.
func (a *admission) abandon(t *ticket) {
	a.mu.Lock()
	switch {
	case t.granted:
		a.releaseLocked(t.q)
	case t.closed:
		// close() already resolved it; nothing to undo.
	default:
		t.cancelled = true
		a.waiting--
	}
	a.mu.Unlock()
}

// tryAcquire claims a slot only if one is free and no blocking waiter
// is queued — used by speculative launches, which are an optimisation
// and should never queue behind the budget, fail the chunk when
// refused, or barge past farms already waiting in line.
func (a *admission) tryAcquire(tenant string) bool {
	if a == nil {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || a.inflight >= a.limit || a.waiting > 0 {
		return false
	}
	q := a.queueLocked(tenant)
	a.grantLocked(q)
	q.waitH.Observe(0)
	return true
}

// release returns the tenant's slot and hands it to the next waiter
// per the stride schedule.
func (a *admission) release(tenant string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.releaseLocked(a.queueLocked(tenant))
	a.mu.Unlock()
}

func (a *admission) releaseLocked(q *tenantQueue) {
	a.inflight--
	q.inflight--
	q.inflightG.Add(-1)
	despatchInflight.Add(-1)
	a.dispatchLocked()
}

// close fails every queued waiter with the closed outcome and refuses
// all future acquires. Slots already granted stay valid; their releases
// still balance the books.
func (a *admission) close() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	var failed []*ticket
	for _, q := range a.tenants {
		for _, t := range q.waiters {
			if t.cancelled || t.granted {
				continue
			}
			t.closed = true
			a.waiting--
			failed = append(failed, t)
		}
		q.waiters = nil
	}
	a.mu.Unlock()
	for _, t := range failed {
		close(t.ready)
	}
}

// beginFarm registers a farm with the scheduler. While the scheduler
// is draining (or closed) new farms are refused with ErrDraining /
// errAdmissionClosed; farms already registered keep acquiring slots
// for their remaining chunks, which is what lets a drain finish
// in-flight work instead of failing it. Pair every successful
// beginFarm with endFarm.
func (a *admission) beginFarm(tenant string) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errAdmissionClosed
	}
	if a.draining {
		return ErrDraining
	}
	a.farms++
	return nil
}

// endFarm balances a successful beginFarm.
func (a *admission) endFarm() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.farms--
	a.mu.Unlock()
}

// beginDrain flips the scheduler into drain mode: beginFarm starts
// refusing, everything else keeps working. Idempotent.
func (a *admission) beginDrain() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// counts reports the live farms and in-flight slots, for drain
// progress gauges.
func (a *admission) counts() (farms, inflight int) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.farms, a.inflight
}

// awaitIdle waits (polling) until no farm is registered and no slot is
// held, or the timeout passes, and reports whether idle was reached.
// progress, when non-nil, observes each poll — the drain path feeds
// the drain_inflight gauge from it.
func (a *admission) awaitIdle(timeout time.Duration, progress func(farms, inflight int)) bool {
	if a == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		farms, inflight := a.counts()
		if progress != nil {
			progress(farms, inflight)
		}
		if farms == 0 && inflight == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// awaitInflightDrained waits until every granted slot is released (or
// the timeout passes). Close uses it so overlay teardown cannot race
// in-flight despatch attempts against a vanishing ring; unlike
// awaitIdle it ignores registered farms, which can legitimately
// outlive Close (their next acquire fails with errAdmissionClosed).
func (a *admission) awaitInflightDrained(timeout time.Duration) bool {
	if a == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		_, inflight := a.counts()
		if inflight == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TenantSnapshot is one tenant's admission ledger, surfaced on
// webstatus, the triana.tenants RPC and trianactl tenant.
type TenantSnapshot struct {
	Tenant   string
	Weight   int
	Inflight int
	Queued   int
	Admits   int64
	Sheds    int64
	// P99WaitMS is the reservoir-sampled 99th-percentile scheduling
	// wait (acquire to grant) in milliseconds.
	P99WaitMS float64
}

// snapshot reports every tenant's ledger, sorted by name, plus the
// scheduler-wide totals. The invariant totalInflight == sum of tenant
// inflights is what the contention suite leans on to prove budget
// accounting never leaks across tenants.
func (a *admission) snapshot() (tenants []TenantSnapshot, totalInflight, limit int) {
	if a == nil {
		return nil, 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, q := range a.tenants {
		queued := 0
		for _, t := range q.waiters {
			if !t.cancelled {
				queued++
			}
		}
		tenants = append(tenants, TenantSnapshot{
			Tenant:    q.name,
			Weight:    q.weight,
			Inflight:  q.inflight,
			Queued:    queued,
			Admits:    q.admits,
			Sheds:     q.sheds,
			P99WaitMS: q.waitH.Quantile(99) * 1e3,
		})
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Tenant < tenants[j].Tenant })
	return tenants, a.inflight, a.limit
}
