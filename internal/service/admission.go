// Controller-side admission control: a bounded in-flight despatch
// budget so a million-chunk farm cannot exhaust memory or stampede a
// half-dead swarm with unbounded concurrent attempts. Each despatch
// attempt claims a slot before it touches the network and releases it
// when the attempt resolves. Backpressure is either blocking (the
// default — the farm simply paces itself to the budget) or shedding:
// with ShedDespatchOverload set, a full budget fails the acquire with
// an *OverloadError immediately.
package service

import (
	"context"
	"fmt"
)

// OverloadError is the typed shed verdict: the despatch was refused
// because the in-flight budget was exhausted, not because anything is
// wrong with the work or the peer. Callers can retry later or fall
// back to blocking.
type OverloadError struct {
	// Limit is the configured in-flight despatch budget.
	Limit int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: despatch budget exhausted (%d in flight)", e.Limit)
}

// admission is the budget semaphore. A nil admission admits everything.
type admission struct {
	slots  chan struct{}
	shed   bool
	onShed func() // bumps the shed counters; may be nil
}

func newAdmission(limit int, shed bool, onShed func()) *admission {
	if limit <= 0 {
		limit = defaultMaxInflightDespatches
	}
	return &admission{slots: make(chan struct{}, limit), shed: shed, onShed: onShed}
}

// defaultMaxInflightDespatches bounds concurrent despatch attempts when
// Options.MaxInflightDespatches is unset. High enough that tests and
// small farms never notice, low enough that a runaway fan-out cannot
// hold every chunk's pipes and buffers at once.
const defaultMaxInflightDespatches = 64

// acquire claims a slot. In blocking mode it waits until a slot frees,
// the context ends, or the service shuts down; in shed mode a full
// budget returns *OverloadError at once.
func (a *admission) acquire(ctx context.Context, shutdown <-chan struct{}) error {
	if a == nil {
		return nil
	}
	if a.shed {
		select {
		case a.slots <- struct{}{}:
			despatchInflight.Add(1)
			return nil
		default:
			if a.onShed != nil {
				a.onShed()
			}
			return &OverloadError{Limit: cap(a.slots)}
		}
	}
	select {
	case a.slots <- struct{}{}:
		despatchInflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-shutdown:
		return fmt.Errorf("service: shutting down")
	}
}

// tryAcquire claims a slot only if one is free — used by speculative
// launches, which are an optimisation and should never queue behind the
// budget or fail the chunk when refused.
func (a *admission) tryAcquire() bool {
	if a == nil {
		return true
	}
	select {
	case a.slots <- struct{}{}:
		despatchInflight.Add(1)
		return true
	default:
		return false
	}
}

// release returns a slot.
func (a *admission) release() {
	if a == nil {
		return
	}
	despatchInflight.Add(-1)
	<-a.slots
}
