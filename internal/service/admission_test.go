package service

// Fair-share admission scheduler tests. These pin the two PR 8 bugfixes
// — FIFO grant order within a tenant (the PR 4 channel semaphore woke
// waiters in arbitrary select order) and single-sourced acquire
// outcomes (the PR 4 shed counter was bumped outside the decision, so
// it drifted under contention) — plus the weighted-stride share split
// and the no-barging rules.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// awaitQueued polls the scheduler until tenant shows want queued waiters.
func awaitQueued(t *testing.T, a *admission, tenant string, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		tenants, _, _ := a.snapshot()
		for _, ts := range tenants {
			if ts.Tenant == tenant && ts.Queued == want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("tenant %s never reached %d queued waiters", tenant, want)
}

// TestAdmissionFIFOWithinTenant is the satellite-1 regression: two
// competing farms of one tenant interleave their acquires; grants must
// come back in strict arrival order, which bounds the per-farm grant
// skew to one at every prefix. The PR 4 semaphore woke a random waiter
// per release, so one farm could win many slots in a row while the
// other starved.
func TestAdmissionFIFOWithinTenant(t *testing.T) {
	a := newAdmission(1, false, "adm-fifo", nil, 0, nil)
	defer a.close()

	// Hold the only slot so every subsequent acquire queues.
	if err := a.acquire(context.Background(), nil, "ten"); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}

	// Farms A and B alternate arrivals: even tickets are A's, odd are
	// B's. Enqueue strictly one at a time so arrival order is pinned.
	const n = 10
	grants := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.acquire(context.Background(), nil, "ten"); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			grants <- i
			a.release("ten")
		}(i)
		awaitQueued(t, a, "ten", i+1)
	}

	a.release("ten") // open the floodgate: grants must cascade in order
	wg.Wait()
	close(grants)

	var order []int
	farmA, farmB := 0, 0
	for i := range grants {
		order = append(order, i)
		if i%2 == 0 {
			farmA++
		} else {
			farmB++
		}
		if skew := farmA - farmB; skew < 0 || skew > 1 {
			t.Fatalf("farm grant skew %d after order %v; FIFO bound is [0,1]", skew, order)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want strict arrival order", order)
		}
	}
}

// TestAdmissionWeightedShares: under saturation, a weight-2 tenant
// drains exactly twice as fast as a weight-1 tenant. The stride
// schedule is deterministic (ties break by name), so the first 15
// grants split exactly 10/5.
func TestAdmissionWeightedShares(t *testing.T) {
	a := newAdmission(1, false, "adm-weighted", map[string]int{"alice": 2, "bob": 1}, 0, nil)
	defer a.close()

	if err := a.acquire(context.Background(), nil, "seed"); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}

	grants := make(chan string, 30)
	var wg sync.WaitGroup
	spawn := func(tenant string, count int) {
		for i := 0; i < count; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := a.acquire(context.Background(), nil, tenant); err != nil {
					t.Errorf("%s acquire: %v", tenant, err)
					return
				}
				grants <- tenant
				a.release(tenant)
			}()
		}
	}
	spawn("alice", 20)
	spawn("bob", 10)
	awaitQueued(t, a, "alice", 20)
	awaitQueued(t, a, "bob", 10)

	a.release("seed")
	wg.Wait()
	close(grants)

	aliceFirst15, seen := 0, 0
	for tenant := range grants {
		seen++
		if seen <= 15 && tenant == "alice" {
			aliceFirst15++
		}
	}
	if seen != 30 {
		t.Fatalf("granted %d acquires, want 30", seen)
	}
	if aliceFirst15 != 10 {
		t.Fatalf("alice won %d of the first 15 grants, want exactly 10 (2:1 stride)", aliceFirst15)
	}
}

// TestAdmissionNoBarging: while waiters are queued, neither tryAcquire
// (speculative launches) nor a fresh blocking acquire may jump the
// line, even when a slot is momentarily free.
func TestAdmissionNoBarging(t *testing.T) {
	a := newAdmission(2, false, "adm-barge", nil, 0, nil)
	defer a.close()

	if err := a.acquire(context.Background(), nil, "t"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background(), nil, "t"); err != nil {
		t.Fatal(err)
	}
	// Budget full: queue one waiter.
	granted := make(chan struct{})
	go func() {
		if err := a.acquire(context.Background(), nil, "t"); err != nil {
			t.Errorf("queued waiter: %v", err)
		}
		close(granted)
	}()
	awaitQueued(t, a, "t", 1)

	if a.tryAcquire("t") {
		t.Fatal("tryAcquire succeeded with the budget full")
	}
	a.release("t")
	<-granted // the queued waiter, not a late arrival, gets the slot
	if a.tryAcquire("t") {
		t.Fatal("tryAcquire barged: slot was handed past the FIFO queue")
	}
	a.release("t")
	a.release("t")
	if !a.tryAcquire("t") {
		t.Fatal("tryAcquire refused an idle scheduler")
	}
	a.release("t")
}

// TestAdmissionContextCancelReleasesNothing: an abandoned waiter holds
// no slot and no queue position afterwards, and the scheduler keeps
// granting normally.
func TestAdmissionContextCancelReleasesNothing(t *testing.T) {
	a := newAdmission(1, false, "adm-cancel", nil, 0, nil)
	defer a.close()

	if err := a.acquire(context.Background(), nil, "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, nil, "t") }()
	awaitQueued(t, a, "t", 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	tenants, inflight, _ := a.snapshot()
	if inflight != 1 {
		t.Fatalf("inflight = %d after cancel, want 1 (only the held slot)", inflight)
	}
	for _, ts := range tenants {
		if ts.Queued != 0 {
			t.Fatalf("tenant %s still shows %d queued after cancel", ts.Tenant, ts.Queued)
		}
	}
	a.release("t")
	if err := a.acquire(context.Background(), nil, "t"); err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	a.release("t")
}

// TestAdmissionOutcomeExactness is the satellite-3 regression, run
// under -race by the race suite: many goroutines across several tenants
// hammer a shedding scheduler while close() lands mid-run. Every
// acquire must have exactly one outcome — granted, shed, or closed —
// and the scheduler's per-tenant ledgers must equal the callers' own
// tallies, with the closed outcome never counted as a shed.
func TestAdmissionOutcomeExactness(t *testing.T) {
	const (
		tenantsN   = 4
		goroutines = 8
		iters      = 200
	)
	var onShedCalls atomic.Int64
	a := newAdmission(3, true, "adm-exact", nil, 0, func(string) { onShedCalls.Add(1) })

	var grantsBy, shedsBy [tenantsN]atomic.Int64
	var closedN atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			ten := g % tenantsN
			name := fmt.Sprintf("t%d", ten)
			for i := 0; i < iters; i++ {
				err := a.acquire(context.Background(), nil, name)
				var overload *OverloadError
				switch {
				case err == nil:
					grantsBy[ten].Add(1)
					a.release(name)
				case errors.As(err, &overload):
					if overload.Tenant != name || overload.Limit != 3 {
						t.Errorf("overload verdict %+v, want tenant %s limit 3", overload, name)
						return
					}
					shedsBy[ten].Add(1)
				case errors.Is(err, errAdmissionClosed):
					closedN.Add(1)
				default:
					t.Errorf("unclassified acquire outcome: %v", err)
					return
				}
			}
		}(g)
	}
	// A sampler races the workers, asserting the cross-tenant budget
	// invariant the whole time: per-tenant inflights sum to the total
	// and never exceed the limit.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for i := 0; i < 500; i++ {
			tenants, total, limit := a.snapshot()
			sum := 0
			for _, ts := range tenants {
				sum += ts.Inflight
			}
			if sum != total || total > limit {
				t.Errorf("budget leak: tenant inflights sum %d, total %d, limit %d", sum, total, limit)
				return
			}
		}
	}()
	close(start)
	time.Sleep(2 * time.Millisecond)
	a.close() // land mid-run: racing acquires must resolve to exactly one outcome
	wg.Wait()
	<-samplerDone

	tenants, inflight, _ := a.snapshot()
	if inflight != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", inflight)
	}
	var totalOutcomes int64
	for _, ts := range tenants {
		if ts.Tenant == DefaultTenant {
			continue
		}
		var ten int
		if _, err := fmt.Sscanf(ts.Tenant, "t%d", &ten); err != nil {
			t.Fatalf("unexpected tenant %q in snapshot", ts.Tenant)
		}
		if ts.Admits != grantsBy[ten].Load() {
			t.Errorf("tenant %s ledger admits %d, callers counted %d", ts.Tenant, ts.Admits, grantsBy[ten].Load())
		}
		if ts.Sheds != shedsBy[ten].Load() {
			t.Errorf("tenant %s ledger sheds %d, callers counted %d", ts.Tenant, ts.Sheds, shedsBy[ten].Load())
		}
		totalOutcomes += ts.Admits + ts.Sheds
	}
	totalOutcomes += closedN.Load()
	if want := int64(goroutines * iters); totalOutcomes != want {
		t.Fatalf("outcomes %d != acquires %d: some acquire had zero or two outcomes", totalOutcomes, want)
	}
	var wantSheds int64
	for i := range shedsBy {
		wantSheds += shedsBy[i].Load()
	}
	if onShedCalls.Load() != wantSheds {
		t.Fatalf("onShed fired %d times for %d sheds; process counter would drift", onShedCalls.Load(), wantSheds)
	}
}

// TestAdmissionCloseWakesWaiters: close fails every queued blocking
// waiter with the shutdown outcome — never a shed — and slots already
// granted still release cleanly afterwards.
func TestAdmissionCloseWakesWaiters(t *testing.T) {
	sheds := 0
	a := newAdmission(1, false, "adm-close", nil, 0, func(string) { sheds++ })
	if err := a.acquire(context.Background(), nil, "t"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- a.acquire(context.Background(), nil, "t") }()
	}
	awaitQueued(t, a, "t", 3)
	a.close()
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, errAdmissionClosed) {
			t.Fatalf("waiter woke with %v, want the closed outcome", err)
		}
	}
	if sheds != 0 {
		t.Fatalf("close was mis-counted as %d sheds", sheds)
	}
	tenants, _, _ := a.snapshot()
	for _, ts := range tenants {
		if ts.Sheds != 0 {
			t.Fatalf("tenant %s ledger counted %d sheds for a shutdown", ts.Tenant, ts.Sheds)
		}
	}
	a.release("t") // the granted slot's release still balances the books
	if _, inflight, _ := a.snapshot(); inflight != 0 {
		t.Fatalf("inflight %d after final release, want 0", inflight)
	}
}
