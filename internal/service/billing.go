package service

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"consumergrid/internal/jxtaserve"
)

// MethodBilling returns the peer's resource-usage ledger.
const MethodBilling = "triana.billing"

// The paper's Globus-shell sketch keeps "billing information for
// resources used" (§2); a Consumer Grid peer needs the same so donors can
// see — and in an exchange economy, charge for — what strangers consumed.
// The ledger attributes every completed job to the requesting peer.

// BillingEntry is one requester's accumulated usage on this peer.
type BillingEntry struct {
	// Requester is the peer ID that despatched the work.
	Requester string
	// Jobs completed (successfully or not).
	Jobs int
	// CPU is the summed wall time of the jobs' engine runs.
	CPU time.Duration
	// Processed is the summed unit Process invocations.
	Processed int
}

// ledger is the peer's billing store.
type ledger struct {
	mu      sync.Mutex
	entries map[string]*BillingEntry
}

func newLedger() *ledger {
	return &ledger{entries: make(map[string]*BillingEntry)}
}

func (l *ledger) record(requester string, cpu time.Duration, processed int) {
	if requester == "" {
		requester = "(anonymous)"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[requester]
	if e == nil {
		e = &BillingEntry{Requester: requester}
		l.entries[requester] = e
	}
	e.Jobs++
	e.CPU += cpu
	e.Processed += processed
}

func (l *ledger) snapshot() []BillingEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]BillingEntry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Requester < out[j].Requester })
	return out
}

// Billing returns the peer's ledger, one entry per requester, sorted.
func (s *Service) Billing() []BillingEntry { return s.billing.snapshot() }

// handleBilling serves the ledger over RPC: headers bill.<n>.* per entry.
func (s *Service) handleBilling(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	entries := s.billing.snapshot()
	reply := &jxtaserve.Message{}
	reply.SetHeader("count", strconv.Itoa(len(entries)))
	for i, e := range entries {
		p := fmt.Sprintf("bill.%d.", i)
		reply.SetHeader(p+"requester", e.Requester)
		reply.SetHeader(p+"jobs", strconv.Itoa(e.Jobs))
		reply.SetHeader(p+"cpuMicros", strconv.FormatInt(e.CPU.Microseconds(), 10))
		reply.SetHeader(p+"processed", strconv.Itoa(e.Processed))
	}
	return reply, nil
}

// FetchBilling retrieves another peer's ledger (e.g. the controller
// auditing its own usage across the grid).
func (s *Service) FetchBilling(addr string) ([]BillingEntry, error) {
	reply, err := s.host.Request(addr, MethodBilling, nil, nil)
	if err != nil {
		return nil, err
	}
	n, _ := strconv.Atoi(reply.Header("count"))
	out := make([]BillingEntry, 0, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("bill.%d.", i)
		jobs, _ := strconv.Atoi(reply.Header(p + "jobs"))
		micros, _ := strconv.ParseInt(reply.Header(p+"cpuMicros"), 10, 64)
		processed, _ := strconv.Atoi(reply.Header(p + "processed"))
		out = append(out, BillingEntry{
			Requester: reply.Header(p + "requester"),
			Jobs:      jobs,
			CPU:       time.Duration(micros) * time.Microsecond,
			Processed: processed,
		})
	}
	return out, nil
}
