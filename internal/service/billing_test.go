package service

import (
	"context"
	"time"

	"consumergrid/internal/advert"
	"consumergrid/internal/discovery"
	"strings"
	"testing"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/policy"
	"consumergrid/internal/units/signal"
	"consumergrid/internal/units/unitio"
)

func TestBillingLedgerRecordsRemoteWork(t *testing.T) {
	tr := jxtaserve.NewInProc()
	ctl := newService(t, tr, "controller", Options{})
	worker := newService(t, tr, "worker", Options{})

	if entries := worker.Billing(); len(entries) != 0 {
		t.Fatalf("fresh ledger = %+v", entries)
	}

	g := figure1(t, policy.NameParallel)
	plan := &policy.Plan{Kind: policy.KindParallel, Replicas: []string{"worker"}}
	peers := map[string]PeerRef{"worker": {ID: "worker", Addr: worker.Addr()}}
	const iters = 6
	if _, err := ctl.RunDistributed(context.Background(), g, "GroupTask", plan, peers,
		DistOptions{Iterations: iters, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	entries := worker.Billing()
	if len(entries) != 1 {
		t.Fatalf("ledger entries = %+v", entries)
	}
	e := entries[0]
	if e.Requester != "controller" {
		t.Errorf("requester = %q", e.Requester)
	}
	if e.Jobs != 1 {
		t.Errorf("jobs = %d", e.Jobs)
	}
	// The group body has 2 units, each processing iters data.
	if e.Processed != 2*iters {
		t.Errorf("processed = %d, want %d", e.Processed, 2*iters)
	}
	if e.CPU <= 0 {
		t.Error("no CPU time recorded")
	}

	// A second run accumulates.
	if _, err := ctl.RunDistributed(context.Background(), figure1(t, policy.NameParallel),
		"GroupTask", plan, peers, DistOptions{Iterations: iters, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	e = worker.Billing()[0]
	if e.Jobs != 2 || e.Processed != 4*iters {
		t.Errorf("accumulated = %+v", e)
	}

	// Remote audit over RPC matches the local view.
	remote, err := ctl.FetchBilling(worker.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 1 || remote[0].Jobs != 2 || remote[0].Processed != e.Processed ||
		remote[0].Requester != "controller" {
		t.Errorf("remote ledger = %+v", remote)
	}
	if remote[0].CPU <= 0 {
		t.Error("remote CPU lost in transit")
	}
}

func TestCertifiedLibraryRejectsUnlistedUnits(t *testing.T) {
	tr := jxtaserve.NewInProc()
	ctl := newService(t, tr, "controller", Options{})
	// Worker certifies only the Gaussian unit — not PowerSpectrum.
	worker := newService(t, tr, "worker", Options{
		Certified: []string{signal.NameGaussianNoise},
	})

	g := figure1(t, policy.NameParallel)
	plan := &policy.Plan{Kind: policy.KindParallel, Replicas: []string{"worker"}}
	peers := map[string]PeerRef{"worker": {ID: "worker", Addr: worker.Addr()}}
	_, err := ctl.RunDistributed(context.Background(), g, "GroupTask", plan, peers,
		DistOptions{Iterations: 2, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "certified library") {
		t.Fatalf("uncertified unit ran: %v", err)
	}
	// Nothing was billed for the rejected request.
	if len(worker.Billing()) != 0 {
		t.Errorf("rejected request billed: %+v", worker.Billing())
	}
}

func TestCertifiedLibraryAllowsListedUnits(t *testing.T) {
	tr := jxtaserve.NewInProc()
	ctl := newService(t, tr, "controller", Options{})
	worker := newService(t, tr, "worker", Options{
		Certified: []string{signal.NameGaussianNoise, signal.NamePowerSpectrum},
	})
	g := figure1(t, policy.NameParallel)
	plan := &policy.Plan{Kind: policy.KindParallel, Replicas: []string{"worker"}}
	peers := map[string]PeerRef{"worker": {ID: "worker", Addr: worker.Addr()}}
	res, err := ctl.RunDistributed(context.Background(), g, "GroupTask", plan, peers,
		DistOptions{Iterations: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Local.Unit("Grapher").(*unitio.Grapher).Seen() != 3 {
		t.Error("certified run incomplete")
	}
}

// TestStartAdvertisingRefreshesAndRespectsIdleGate drives the periodic
// re-advertisement loop against a rendezvous: fresh adverts keep landing
// while idle, stop while busy, and the stop function is idempotent.
func TestStartAdvertisingRefreshesAndRespectsIdleGate(t *testing.T) {
	tr := jxtaserve.NewInProc()
	rdvHost, err := jxtaserve.NewHost("rdv", tr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer rdvHost.Close()
	rdv := discovery.NewNode(rdvHost, advert.NewCache(), discovery.Config{
		Mode: discovery.ModeRendezvous, IsRendezvous: true})
	_ = rdv

	worker := newService(t, tr, "adv-worker", Options{
		Discovery: discovery.Config{
			Mode: discovery.ModeRendezvous, Rendezvous: []string{rdvHost.Addr()},
		},
	})
	stop := worker.StartAdvertising(10*time.Millisecond, time.Hour)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	found := false
	for time.Now().Before(deadline) {
		ads := rdv.Cache().Find(advert.Query{Kind: advert.KindService}, 0)
		if len(ads) == 1 && ads[0].PeerID == "adv-worker" {
			found = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !found {
		t.Fatal("advert never reached the rendezvous")
	}
	// Busy peers stop refreshing: clear the cache and verify nothing new
	// lands while the gate is closed.
	worker.SetAvailable(false)
	time.Sleep(30 * time.Millisecond) // drain any in-flight publish
	rdv.Cache().RemovePeer("adv-worker")
	time.Sleep(50 * time.Millisecond)
	if got := rdv.Cache().Find(advert.Query{Kind: advert.KindService}, 0); len(got) != 0 {
		t.Errorf("busy worker kept advertising: %+v", got)
	}
	// Reopening the gate resumes.
	worker.SetAvailable(true)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(rdv.Cache().Find(advert.Query{Kind: advert.KindService}, 0)) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(rdv.Cache().Find(advert.Query{Kind: advert.KindService}, 0)) != 1 {
		t.Error("idle worker did not resume advertising")
	}
	stop()
	stop() // idempotent
}
