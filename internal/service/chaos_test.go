package service

// The deterministic chaos harness: 3-peer distributed farms run under
// each injected fault class — message drops, latency jitter, timed
// partitions, and peer kill/restart mid-run — and must complete with
// outputs identical to the fault-free run at the same seed. Determinism
// rests on three properties of the resilience layer: a dropped message
// breaks its connection (failures are visible errors, never silent
// loss), chunk outputs commit only after full verification, and every
// replay restores the pre-chunk checkpoint state, so recovery recomputes
// exactly what was lost.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"consumergrid/internal/churn"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/simnet"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
)

// chaosResilience are fast-cycle retry knobs so fault recovery happens
// on test timescales.
func chaosResilience() ResilienceOptions {
	return ResilienceOptions{
		RequestTimeout:    2 * time.Second,
		MaxAttempts:       4,
		BaseDelay:         10 * time.Millisecond,
		MaxDelay:          80 * time.Millisecond,
		RetrySeed:         1,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		HeartbeatMisses:   3,
	}
}

// chaosNet builds a controller plus three workers on one simulated
// network, each attributed to a peer label so kills and partitions can
// target them.
func chaosNet(t *testing.T, n *simnet.Network) (ctl *Service, peers []PeerRef) {
	t.Helper()
	ctl = newService(t, n.Peer("ctl"), "ctl", Options{Resilience: chaosResilience()})
	for _, label := range []string{"w1", "w2", "w3"} {
		w := newService(t, n.Peer(label), label, Options{})
		peers = append(peers, PeerRef{ID: label, Addr: w.Addr()})
	}
	return ctl, peers
}

// chaosChunks derives deterministic spectra chunks from a seed.
func chaosChunks(seed int64, nChunks, perChunk int) [][]types.Data {
	rng := rand.New(rand.NewSource(seed))
	chunks := make([][]types.Data, nChunks)
	for c := range chunks {
		for i := 0; i < perChunk; i++ {
			v := rng.Float64() * 100
			chunks[c] = append(chunks[c], &types.Spectrum{
				Resolution: 1, Amplitudes: []float64{v, 2 * v},
			})
		}
	}
	return chunks
}

// runChaosFarm farms the chunks through the stateful accumulator body.
func runChaosFarm(t *testing.T, ctl *Service, peers []PeerRef, chunks [][]types.Data, fo FarmOptions) *FarmReport {
	t.Helper()
	fo.Body = func() *taskgraph.Graph { return accumBody(t) }
	fo.Peers = peers
	if fo.AttemptTimeout == 0 {
		fo.AttemptTimeout = 10 * time.Second
	}
	rep, err := ctl.FarmChunks(context.Background(), chunks, fo)
	if err != nil {
		t.Fatalf("farm failed: %v (report: %+v)", err, rep)
	}
	return rep
}

// faultFreeBaseline computes the reference output stream on a pristine
// network at the same seed.
func faultFreeBaseline(t *testing.T, seed int64, nChunks, perChunk int) []types.Data {
	t.Helper()
	n := simnet.New()
	ctl, peers := chaosNet(t, n)
	rep := runChaosFarm(t, ctl, peers, chaosChunks(seed, nChunks, perChunk), FarmOptions{})
	if rep.Redespatches != 0 || rep.WastedOutputs != 0 {
		t.Fatalf("fault-free run reported recovery work: %+v", rep)
	}
	return rep.Outputs
}

// assertSameOutputs deep-compares two spectra streams.
func assertSameOutputs(t *testing.T, got, want []types.Data) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output count %d, want %d", len(got), len(want))
	}
	for i := range got {
		gs, ok1 := got[i].(*types.Spectrum)
		ws, ok2 := want[i].(*types.Spectrum)
		if !ok1 || !ok2 {
			t.Fatalf("output %d: not spectra (%T vs %T)", i, got[i], want[i])
		}
		if len(gs.Amplitudes) != len(ws.Amplitudes) {
			t.Fatalf("output %d: %d bins vs %d", i, len(gs.Amplitudes), len(ws.Amplitudes))
		}
		for b := range gs.Amplitudes {
			if gs.Amplitudes[b] != ws.Amplitudes[b] {
				t.Fatalf("output %d bin %d: %v != %v", i, b, gs.Amplitudes[b], ws.Amplitudes[b])
			}
		}
	}
}

const (
	chaosSeed     = 12345
	chaosChunksN  = 4
	chaosPerChunk = 5
)

// TestChaosDropFaults: every 13th message on every link direction is
// dropped, breaking its connection. The farm must still deliver the
// exact fault-free output stream.
func TestChaosDropFaults(t *testing.T) {
	want := faultFreeBaseline(t, chaosSeed, chaosChunksN, chaosPerChunk)

	n := simnet.New()
	ctl, peers := chaosNet(t, n)
	n.SetLinkFaults("*", simnet.LinkFaults{DropEvery: 13})
	rep := runChaosFarm(t, ctl, peers, chaosChunks(chaosSeed, chaosChunksN, chaosPerChunk),
		FarmOptions{ChunkAttempts: 24})

	if n.Dropped() == 0 {
		t.Fatal("fault injection never fired; the test exercised nothing")
	}
	assertSameOutputs(t, rep.Outputs, want)
	t.Logf("drops=%d redespatches=%d wasted=%d", n.Dropped(), rep.Redespatches, rep.WastedOutputs)
}

// TestChaosDelayJitter: seeded per-message latency + jitter on every
// link. Slower, but nothing may change in the results.
func TestChaosDelayJitter(t *testing.T) {
	want := faultFreeBaseline(t, chaosSeed, chaosChunksN, chaosPerChunk)

	n := simnet.New()
	n.FaultSeed(42)
	ctl, peers := chaosNet(t, n)
	n.SetLinkFaults("*", simnet.LinkFaults{Latency: time.Millisecond, Jitter: 2 * time.Millisecond})
	rep := runChaosFarm(t, ctl, peers, chaosChunks(chaosSeed, chaosChunksN, chaosPerChunk), FarmOptions{})

	assertSameOutputs(t, rep.Outputs, want)
	if rep.Redespatches != 0 {
		t.Errorf("delay-only faults caused %d redespatches", rep.Redespatches)
	}
}

// TestChaosPartition: the controller starts partitioned from its first
// worker, so the first chunk must re-despatch across the split to a
// reachable peer; the partition heals mid-run.
func TestChaosPartition(t *testing.T) {
	want := faultFreeBaseline(t, chaosSeed, chaosChunksN, chaosPerChunk)

	n := simnet.New()
	ctl, peers := chaosNet(t, n)
	n.PartitionFor(300*time.Millisecond, []string{"ctl"}, []string{"w1"})
	rep := runChaosFarm(t, ctl, peers, chaosChunks(chaosSeed, chaosChunksN, chaosPerChunk), FarmOptions{})

	if rep.Redespatches < 1 {
		t.Errorf("partition caused no redespatch (report %+v)", rep)
	}
	if rep.PeerChunks["w1"] == chaosChunksN {
		t.Error("all chunks landed on the partitioned peer")
	}
	assertSameOutputs(t, rep.Outputs, want)
}

// TestChaosKillMidRun: the worker that committed the first chunk is
// killed before the second despatches; the farm must move the remaining
// work to the surviving peers, restore the checkpoint, and produce the
// identical stream.
func TestChaosKillMidRun(t *testing.T) {
	want := faultFreeBaseline(t, chaosSeed, chaosChunksN, chaosPerChunk)

	n := simnet.New()
	ctl, peers := chaosNet(t, n)
	rep := runChaosFarm(t, ctl, peers, chaosChunks(chaosSeed, chaosChunksN, chaosPerChunk),
		FarmOptions{
			Heartbeat: true,
			AfterChunk: func(c int) {
				if c == 0 {
					n.Kill("w1")
				}
			},
		})

	if rep.Redespatches < 1 {
		t.Errorf("kill caused no redespatch (report %+v)", rep)
	}
	if rep.PeerChunks["w1"] == 0 {
		t.Error("first chunk did not land on w1; kill hook targeted the wrong peer")
	}
	if rep.PeerChunks["w2"]+rep.PeerChunks["w3"] == 0 {
		t.Error("no chunk moved to a surviving peer")
	}
	assertSameOutputs(t, rep.Outputs, want)
}

// TestChaosChurnTraceKillRestart: a churn timeline takes w1 down and
// back up while the farm runs — the §3.6.2 availability model driving
// live faults. Per-message latency slows the farm enough that the
// downtime lands mid-run, forcing at least one re-despatch; the output
// stream must still match the fault-free run exactly.
func TestChaosChurnTraceKillRestart(t *testing.T) {
	want := faultFreeBaseline(t, chaosSeed, 6, chaosPerChunk)

	n := simnet.New()
	ctl, peers := chaosNet(t, n)
	// ~2ms per message keeps the farm busy well past the kill at 50ms.
	n.SetLinkFaults("*", simnet.LinkFaults{Latency: 2 * time.Millisecond})
	tr := &churn.Trace{Horizon: 4, Intervals: []churn.Interval{
		{Start: 0, End: 0.5, Up: true},
		{Start: 0.5, End: 2, Up: false},
		{Start: 2, End: 4, Up: true},
	}}
	stop := n.DriveTrace(tr, "w1", 100*time.Millisecond)
	defer stop()
	rep := runChaosFarm(t, ctl, peers, chaosChunks(chaosSeed, 6, chaosPerChunk), FarmOptions{})

	if rep.Redespatches < 1 {
		t.Errorf("churn downtime caused no redespatch (peers=%v)", rep.PeerChunks)
	}
	assertSameOutputs(t, rep.Outputs, want)
	t.Logf("churn-trace run: redespatches=%d wasted=%d peers=%v",
		rep.Redespatches, rep.WastedOutputs, rep.PeerChunks)
}

// TestHeartbeatDetectsDeadPeer: the failure detector declares a killed
// peer dead after the configured misses and fires its callback once.
func TestHeartbeatDetectsDeadPeer(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("ctl"), "ctl", Options{Resilience: chaosResilience()})
	w := newService(t, n.Peer("w1"), "w1", Options{})

	// Alive peer: no dead verdict while it responds.
	dead := make(chan struct{})
	stop := ctl.StartHeartbeat(w.Addr(), func() { close(dead) })
	select {
	case <-dead:
		t.Fatal("live peer declared dead")
	case <-time.After(150 * time.Millisecond):
	}

	n.Kill("w1")
	select {
	case <-dead:
	case <-time.After(5 * time.Second):
		t.Fatal("killed peer never declared dead")
	}
	stop()
	snap := ctl.Resilience().Snapshot()
	if snap.HeartbeatMisses < int64(chaosResilience().HeartbeatMisses) {
		t.Errorf("heartbeat misses = %d", snap.HeartbeatMisses)
	}
	if snap.PeersDeclaredDead != 1 {
		t.Errorf("peers declared dead = %d, want 1", snap.PeersDeclaredDead)
	}
}

// TestDespatchRetriesDialFailures: a despatch that first meets a dead
// peer link succeeds once the link is restored within the retry budget,
// and the retry counter records the extra attempts.
func TestDespatchRetriesDialFailures(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("ctl"), "ctl", Options{Resilience: ResilienceOptions{
		MaxAttempts: 5, BaseDelay: 40 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
	}})
	w := newService(t, n.Peer("w1"), "w1", Options{})

	n.Kill("w1")
	time.AfterFunc(60*time.Millisecond, func() { n.Restart("w1") })

	pipe, _, err := ctl.Host().OpenInput("retry-sink", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	pipe.ExpectEOFs(1)
	job, err := ctl.Despatch(RemotePart{
		Peer:       PeerRef{ID: "w1", Addr: w.Addr()},
		Body:       accumBody(t),
		InLabels:   []string{"retry-in"},
		OutTargets: []PipeTarget{{Label: "retry-sink", Addr: ctl.Addr()}},
		Iterations: 1,
	}, "")
	if err != nil {
		t.Fatalf("despatch did not survive the transient outage: %v", err)
	}
	if got := ctl.Resilience().Snapshot().Retries; got == 0 {
		t.Error("no retries recorded for the transient outage")
	}
	out, err := ctl.Host().BindOutput(job.InAds[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(&types.Spectrum{Resolution: 1, Amplitudes: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	out.Close()
	for range pipe.C {
	}
	if _, err := ctl.WaitRemote(job); err != nil {
		t.Fatal(err)
	}
}

// TestRunErrorsDoNotRetry: a remote handler rejection (RPCError) must
// fail immediately — retrying a semantic refusal is pointless and a
// duplicate triana.run would double-execute.
func TestRunErrorsDoNotRetry(t *testing.T) {
	tr := jxtaserve.NewInProc()
	ctl := newService(t, tr, "ctl", Options{})
	w := newService(t, tr, "w1", Options{RequireCode: true})

	_, err := ctl.Despatch(RemotePart{
		Peer:       PeerRef{ID: "w1", Addr: w.Addr()},
		Body:       accumBody(t),
		InLabels:   []string{"norun-in"},
		OutTargets: []PipeTarget{{Label: "norun-sink", Addr: ctl.Addr()}},
		Iterations: 1,
	}, "")
	if err == nil {
		t.Fatal("despatch to RequireCode peer without codeAddr succeeded")
	}
	if got := ctl.Resilience().Snapshot().Retries; got != 0 {
		t.Errorf("remote rejection was retried %d times", got)
	}
}

// TestRestartRecoveryResumesCheckpointedFarm is the crash-safety
// acceptance case: a controller with a state dir dies (context cancel)
// after committing two chunks of a four-chunk farm. A fresh daemon
// started over the same state dir restores the farm journal, replays
// the committed outputs byte for byte, resumes despatching at chunk 2,
// and the full output stream equals the fault-free baseline. The
// resumed run despatches only the remaining chunks — nothing is
// double-billed to the donors.
func TestRestartRecoveryResumesCheckpointedFarm(t *testing.T) {
	want := faultFreeBaseline(t, chaosSeed, chaosChunksN, chaosPerChunk)
	stateDir := t.TempDir()
	chunks := chaosChunks(chaosSeed, chaosChunksN, chaosPerChunk)

	// Incarnation 1: crash mid-farm, after chunk index 1 commits (and
	// its per-commit checkpoint hits the state dir).
	n1 := simnet.New()
	ctl1 := newService(t, n1.Peer("rr-ctl"), "rr-ctl", Options{
		Resilience: chaosResilience(), StateDir: stateDir, CheckpointInterval: -1,
	})
	var peers1 []PeerRef
	for _, label := range []string{"w1", "w2", "w3"} {
		w := newService(t, n1.Peer(label), label, Options{})
		peers1 = append(peers1, PeerRef{ID: label, Addr: w.Addr()})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := ctl1.FarmChunks(ctx, chunks, FarmOptions{
		Body:           func() *taskgraph.Graph { return accumBody(t) },
		Peers:          peers1,
		AttemptTimeout: 10 * time.Second,
		ResumeKey:      "rr-farm",
		AfterChunk: func(c int) {
			if c == 1 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("crashed incarnation reported a completed farm")
	}
	ctl1.Close()

	// Incarnation 2: a fresh network (the old donors are gone with the
	// old process), same peer ID, same state dir.
	n2 := simnet.New()
	ctl2 := newService(t, n2.Peer("rr-ctl"), "rr-ctl", Options{
		Resilience: chaosResilience(), StateDir: stateDir, CheckpointInterval: -1,
	})
	var peers2 []PeerRef
	for _, label := range []string{"w1", "w2", "w3"} {
		w := newService(t, n2.Peer(label), label, Options{})
		peers2 = append(peers2, PeerRef{ID: label, Addr: w.Addr()})
	}
	rep, err := ctl2.FarmChunks(context.Background(), chunks, FarmOptions{
		Body:           func() *taskgraph.Graph { return accumBody(t) },
		Peers:          peers2,
		AttemptTimeout: 10 * time.Second,
		ResumeKey:      "rr-farm",
	})
	if err != nil {
		t.Fatalf("resumed farm failed: %v (report %+v)", err, rep)
	}
	if rep.ResumedChunks != 2 {
		t.Fatalf("resumed %d chunks from the journal, want 2", rep.ResumedChunks)
	}
	assertSameOutputs(t, rep.Outputs, want)
	despatched := 0
	for _, c := range rep.PeerChunks {
		despatched += c
	}
	if despatched != chaosChunksN-rep.ResumedChunks {
		t.Fatalf("resumed run despatched %d chunks, want %d (journal chunks must not re-despatch)",
			despatched, chaosChunksN-rep.ResumedChunks)
	}

	// Third incarnation: the completed farm's journal was cleared, so
	// the same key starts fresh rather than replaying stale outputs.
	rep3, err := ctl2.FarmChunks(context.Background(), chunks, FarmOptions{
		Body:           func() *taskgraph.Graph { return accumBody(t) },
		Peers:          peers2,
		AttemptTimeout: 10 * time.Second,
		ResumeKey:      "rr-farm",
	})
	if err != nil {
		t.Fatalf("re-run after completion failed: %v", err)
	}
	if rep3.ResumedChunks != 0 {
		t.Fatalf("completed farm's journal leaked: resumed %d chunks", rep3.ResumedChunks)
	}
	assertSameOutputs(t, rep3.Outputs, want)
}
