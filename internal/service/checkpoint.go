package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
	"time"

	"consumergrid/internal/lifecycle"
)

// Crash-safe state: with Options.StateDir set, the daemon checkpoints
// its in-memory ledgers to a versioned CRC-checked snapshot (see
// internal/lifecycle) — periodically, after every resumable farm
// chunk commit, and again on drain/close — and New restores the
// snapshot on the next start. What is checkpointed:
//
//	billing     the per-requester usage ledger
//	health      per-peer EWMA scores, breaker state, dead/suspect flags
//	chunk-pins  the pinned chunk working set (digest + payload)
//	adverts     the super-peer advert store, live + tombstones
//	farms       resumable farm journals (committed count, outputs, state)
//
// A restored daemon resumes interrupted farms (FarmOptions.ResumeKey),
// rejoins the ring with a warm advert store, and keeps distrusting the
// peers it had already scored — no cold re-discovery storm.

// stateFileName is the snapshot file inside Options.StateDir.
const stateFileName = "trianad.state"

// defaultCheckpointInterval is the periodic cadence when StateDir is
// set and Options.CheckpointInterval is zero.
const defaultCheckpointInterval = 30 * time.Second

// Snapshot section names.
const (
	ckptMeta    = "meta"
	ckptBilling = "billing"
	ckptHealth  = "health"
	ckptPins    = "chunk-pins"
	ckptAdverts = "adverts"
	ckptFarms   = "farms"
)

// CheckpointNow writes one snapshot of every ledger to the state dir.
// Safe for concurrent use; writes are serialised so a periodic tick
// racing a per-commit checkpoint cannot interleave file operations.
// A no-op without a StateDir.
func (s *Service) CheckpointNow() error {
	if s.opts.StateDir == "" {
		return nil
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()
	start := time.Now()
	span := s.tracer.Start("", "", "lifecycle.checkpoint", s.opts.PeerID)
	defer span.End()

	snap := lifecycle.NewSnapshot()
	snap.Set(ckptMeta, []byte(s.opts.PeerID))
	snap.Set(ckptBilling, s.billing.export())
	snap.Set(ckptHealth, s.health.Export())
	snap.Set(ckptFarms, s.farms.export())
	if s.chunks != nil {
		snap.Set(ckptPins, s.chunks.ExportPinned())
	}
	if s.overlaySuper != nil {
		b, err := s.overlaySuper.ExportEntries()
		if err != nil {
			s.lcMetrics.ckptErrors.Inc()
			span.Fail(err)
			return fmt.Errorf("service: exporting advert store: %w", err)
		}
		snap.Set(ckptAdverts, b)
	}
	written, err := snap.Save(s.opts.StateDir, stateFileName)
	if err != nil {
		s.lcMetrics.ckptErrors.Inc()
		span.Fail(err)
		return err
	}
	s.lcMetrics.ckptTotal.Inc()
	s.lcMetrics.ckptBytes.Add(int64(written))
	s.lcMetrics.ckptSeconds.Observe(time.Since(start).Seconds())
	span.SetAttr("bytes", fmt.Sprint(written))
	return nil
}

// restoreCheckpoint loads the state dir's snapshot into the live
// ledgers. Missing snapshot: clean first boot, nothing to do. Corrupt
// snapshot (torn write mid-crash): logged and skipped — a daemon that
// refuses to boot over stale state would turn one crash into an
// outage. Only unexpected I/O errors propagate.
func (s *Service) restoreCheckpoint() error {
	snap, err := lifecycle.Load(s.opts.StateDir, stateFileName)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if errors.Is(err, lifecycle.ErrCorrupt) {
		s.logf("service: %s: discarding corrupt state snapshot: %v", s.opts.PeerID, err)
		return nil
	}
	if err != nil {
		return err
	}
	span := s.tracer.Start("", "", "lifecycle.restore", s.opts.PeerID)
	defer span.End()
	if b, ok := snap.Get(ckptBilling); ok {
		if n, err := s.billing.restore(b); err != nil {
			s.logf("service: %s: restoring billing ledger: %v", s.opts.PeerID, err)
		} else {
			span.SetAttr("billing", fmt.Sprint(n))
		}
	}
	if b, ok := snap.Get(ckptHealth); ok {
		if n, err := s.health.Restore(b); err != nil {
			s.logf("service: %s: restoring health state: %v", s.opts.PeerID, err)
		} else {
			span.SetAttr("peers", fmt.Sprint(n))
		}
	}
	if b, ok := snap.Get(ckptFarms); ok {
		if n, err := s.farms.restore(b); err != nil {
			s.logf("service: %s: restoring farm journals: %v", s.opts.PeerID, err)
		} else {
			span.SetAttr("farms", fmt.Sprint(n))
		}
	}
	if b, ok := snap.Get(ckptPins); ok && s.chunks != nil {
		if n, err := s.chunks.RestorePinned(b); err != nil {
			s.logf("service: %s: restoring chunk pins: %v", s.opts.PeerID, err)
		} else {
			span.SetAttr("pins", fmt.Sprint(n))
		}
	}
	if b, ok := snap.Get(ckptAdverts); ok && s.overlaySuper != nil {
		if n, err := s.overlaySuper.RestoreEntries(b); err != nil {
			s.logf("service: %s: restoring advert store: %v", s.opts.PeerID, err)
		} else {
			span.SetAttr("adverts", fmt.Sprint(n))
		}
	}
	s.lcMetrics.restoreTotal.Inc()
	s.logf("service: %s: restored state snapshot (%v)", s.opts.PeerID, snap.Names())
	return nil
}

// --- billing ledger persistence ----------------------------------------------

func (l *ledger) export() []byte {
	entries := l.snapshot()
	out := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, e := range entries {
		out = appendBlob(out, []byte(e.Requester))
		out = binary.AppendUvarint(out, uint64(e.Jobs))
		out = binary.AppendUvarint(out, uint64(e.CPU))
		out = binary.AppendUvarint(out, uint64(e.Processed))
	}
	return out
}

func (l *ledger) restore(b []byte) (int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, errors.New("service: bad billing entry count")
	}
	b = b[n:]
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := uint64(0); i < count; i++ {
		req, rest, err := readBlob(b)
		if err != nil {
			return int(i), fmt.Errorf("service: billing entry %d: %w", i, err)
		}
		jobs, n1 := binary.Uvarint(rest)
		rest = rest[n1:]
		cpu, n2 := binary.Uvarint(rest)
		rest = rest[n2:]
		proc, n3 := binary.Uvarint(rest)
		rest = rest[n3:]
		if n1 <= 0 || n2 <= 0 || n3 <= 0 {
			return int(i), fmt.Errorf("service: billing entry %q truncated", req)
		}
		b = rest
		l.entries[string(req)] = &BillingEntry{
			Requester: string(req),
			Jobs:      int(jobs),
			CPU:       time.Duration(cpu),
			Processed: int(proc),
		}
	}
	return int(count), nil
}

// --- resumable farm journals -------------------------------------------------

// farmJournal is the durable progress of one resumable farm: how many
// chunks committed, the marshalled outputs produced so far, and the
// carried checkpoint state. A restored journal lets the same farm
// (same ResumeKey, same chunks) skip its committed prefix and replay
// the recorded outputs byte for byte.
type farmJournal struct {
	committed int
	outputs   [][]byte // marshalled types.Data, in commit order
	state     map[string][]byte
	restored  bool // came from a checkpoint, i.e. a previous process
}

// farmLedger holds the journals, keyed by FarmOptions.ResumeKey.
type farmLedger struct {
	mu sync.Mutex
	m  map[string]*farmJournal
}

func newFarmLedger() *farmLedger {
	return &farmLedger{m: make(map[string]*farmJournal)}
}

// resume returns a snapshot of a restored journal for key, or nil when
// there is nothing to resume (no journal, or one created by this
// process — the live farm already has that state in hand).
func (l *farmLedger) resume(key string) *farmJournal {
	l.mu.Lock()
	defer l.mu.Unlock()
	j, ok := l.m[key]
	if !ok || !j.restored {
		return nil
	}
	cp := &farmJournal{committed: j.committed, restored: true}
	cp.outputs = append(cp.outputs, j.outputs...)
	if j.state != nil {
		cp.state = make(map[string][]byte, len(j.state))
		for k, v := range j.state {
			cp.state[k] = v
		}
	}
	return cp
}

// begin (re)opens the journal for a fresh run: a restored journal is
// claimed by the resuming farm (cleared of its restored mark), any
// other is reset.
func (l *farmLedger) begin(key string, j *farmJournal) {
	if j == nil {
		j = &farmJournal{}
	}
	j.restored = false
	l.mu.Lock()
	l.m[key] = j
	l.mu.Unlock()
}

// commit appends one chunk's outputs and the new carried state.
func (l *farmLedger) commit(key string, outputs [][]byte, state map[string][]byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	j, ok := l.m[key]
	if !ok {
		j = &farmJournal{}
		l.m[key] = j
	}
	j.committed++
	j.outputs = append(j.outputs, outputs...)
	if len(state) > 0 {
		j.state = make(map[string][]byte, len(state))
		for k, v := range state {
			j.state[k] = v
		}
	}
}

// finish drops a completed farm's journal.
func (l *farmLedger) finish(key string) {
	l.mu.Lock()
	delete(l.m, key)
	l.mu.Unlock()
}

func (l *farmLedger) export() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.m))
	for k := range l.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		j := l.m[k]
		out = appendBlob(out, []byte(k))
		out = binary.AppendUvarint(out, uint64(j.committed))
		out = binary.AppendUvarint(out, uint64(len(j.outputs)))
		for _, o := range j.outputs {
			out = appendBlob(out, o)
		}
		out = binary.AppendUvarint(out, uint64(len(j.state)))
		skeys := make([]string, 0, len(j.state))
		for sk := range j.state {
			skeys = append(skeys, sk)
		}
		sort.Strings(skeys)
		for _, sk := range skeys {
			out = appendBlob(out, []byte(sk))
			out = appendBlob(out, j.state[sk])
		}
	}
	return out
}

func (l *farmLedger) restore(b []byte) (int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, errors.New("service: bad farm journal count")
	}
	b = b[n:]
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := uint64(0); i < count; i++ {
		key, rest, err := readBlob(b)
		if err != nil {
			return int(i), fmt.Errorf("service: farm journal %d: %w", i, err)
		}
		committed, n1 := binary.Uvarint(rest)
		rest = rest[n1:]
		nOut, n2 := binary.Uvarint(rest)
		rest = rest[n2:]
		if n1 <= 0 || n2 <= 0 {
			return int(i), fmt.Errorf("service: farm journal %q truncated", key)
		}
		j := &farmJournal{committed: int(committed), restored: true}
		for o := uint64(0); o < nOut; o++ {
			var out []byte
			out, rest, err = readBlob(rest)
			if err != nil {
				return int(i), fmt.Errorf("service: farm journal %q output %d: %w", key, o, err)
			}
			j.outputs = append(j.outputs, out)
		}
		nState, n3 := binary.Uvarint(rest)
		rest = rest[n3:]
		if n3 <= 0 {
			return int(i), fmt.Errorf("service: farm journal %q truncated state", key)
		}
		if nState > 0 {
			j.state = make(map[string][]byte, nState)
		}
		for k := uint64(0); k < nState; k++ {
			var sk, sv []byte
			sk, rest, err = readBlob(rest)
			if err == nil {
				sv, rest, err = readBlob(rest)
			}
			if err != nil {
				return int(i), fmt.Errorf("service: farm journal %q state: %w", key, err)
			}
			j.state[string(sk)] = sv
		}
		b = rest
		l.m[string(key)] = j
	}
	return int(count), nil
}
