// The service side of the content-addressed data tier: the controller
// stops streaming farm payloads per attempt and instead ships a chunk
// manifest (ordered digest list plus fetch hints), which the donor
// materialises through the chunkstore fallback ladder — local cache,
// super-peer ring replica, a donor that resolved the digest earlier,
// and finally the controller itself. The capability is negotiated per
// despatch: a donor that runs the data tier tags its triana.run reply,
// and a controller only sends manifests to peers that did — legacy
// peers keep receiving streamed payloads, byte for byte as before.
package service

import (
	"strconv"
	"sync"
	"time"

	"consumergrid/internal/chunkstore"
	"consumergrid/internal/types"
)

// capChunkstore is the triana.run reply header a data-tier donor sets;
// its absence is what makes a legacy peer fall back to streaming.
const capChunkstore = "chunkstore"

// maxPeerHints bounds the donor hints embedded per manifest item.
const maxPeerHints = 3

// DataTierOptions opts a daemon into the content-addressed chunk tier.
type DataTierOptions struct {
	// Enable turns the tier on: the daemon caches chunks, resolves
	// manifests, serves chunk fetches, and (as a controller) despatches
	// manifests to capable donors.
	Enable bool
	// CacheBytes bounds the per-peer LRU chunk cache (default 64 MiB).
	CacheBytes int64
	// FetchTimeout bounds one chunk fetch from one source; the ladder
	// moves to the next rung on expiry (default 2s).
	FetchTimeout time.Duration
}

// setupDataTier creates the peer's chunk store and installs the wire
// hooks: the store answers chunk.fetch conversations and materialises
// pipe.manifest frames. Also run for super-peers regardless of Enable,
// so every ring member can hold chunk replicas.
func (s *Service) setupDataTier(o DataTierOptions) {
	s.chunkFetchTimeout = o.FetchTimeout
	if s.chunkFetchTimeout <= 0 {
		s.chunkFetchTimeout = 2 * time.Second
	}
	s.chunks = chunkstore.New(chunkstore.Options{
		MaxBytes: o.CacheBytes,
		Owner:    s.opts.PeerID,
		Logf:     s.opts.Logf,
	})
	s.host.SetChunkSource(s.serveChunk)
	s.host.SetManifestResolver(s.resolveManifest)
}

// ChunkStore exposes the daemon's chunk cache; nil when the data tier
// is off.
func (s *Service) ChunkStore() *chunkstore.Store { return s.chunks }

// serveChunk answers a chunk.fetch conversation from the local store.
// Bytes served from pinned entries are a controller feeding its own
// live farm (the controller-direct rung), so they count as farm egress;
// serves from the LRU are donor-to-donor traffic the controller never
// paid for.
func (s *Service) serveChunk(digest string) ([]byte, bool) {
	data, pinned, ok := s.chunks.Lookup(digest)
	if !ok {
		return nil, false
	}
	if pinned {
		s.resStats.FarmEgressBytes.Add(int64(len(data)))
	}
	return data, true
}

// resolveManifest is the donor-side fetch ladder: decode the manifest
// and materialise every digest, in order, through the chunk store.
func (s *Service) resolveManifest(payload []byte) ([][]byte, error) {
	man, err := chunkstore.DecodeManifest(payload)
	if err != nil {
		return nil, err
	}
	span := s.tracer.Start("", "", "chunk.resolve", s.opts.PeerID)
	span.SetAttr("items", strconv.Itoa(len(man.Items)))
	defer span.End()
	fetched := 0
	out := make([][]byte, 0, len(man.Items))
	for _, it := range man.Items {
		data, class, err := s.chunks.Fetch(it.Digest, man.Sources(it), s.fetchChunkWire)
		if err != nil {
			span.Fail(err)
			s.logf("service: %s manifest digest %.12s: %v", s.opts.PeerID, it.Digest, err)
			return nil, err
		}
		if class != chunkstore.SourceLocal {
			fetched++
		}
		out = append(out, data)
	}
	span.SetAttr("fetched", strconv.Itoa(fetched))
	return out, nil
}

func (s *Service) fetchChunkWire(addr, digest string) ([]byte, error) {
	return s.host.FetchChunk(addr, digest, s.chunkFetchTimeout)
}

// farmManifests is a controller's per-farm manifest state: the digests
// and canonical payloads of every chunk (pinned locally for the
// controller-direct rung and write-through replicated to the ring),
// plus the donors observed to have resolved each digest — the peer
// hints later manifests carry.
type farmManifests struct {
	s      *Service
	origin string
	chunks [][]manifestEntry

	mu    sync.Mutex
	hints map[string][]string // digest -> donor addrs, capped
}

type manifestEntry struct {
	digest  string
	payload []byte
	ring    []string
}

// prepareFarmManifests digests every chunk datum, pins the payloads in
// the controller's own store, and write-throughs each unique digest to
// its ring owners. Replication bytes are controller egress — the point
// is that they are paid once per digest, not once per attempt.
func (s *Service) prepareFarmManifests(chunks [][]manifestDatum) *farmManifests {
	fm := &farmManifests{
		s:      s,
		origin: s.Addr(),
		chunks: make([][]manifestEntry, len(chunks)),
		hints:  make(map[string][]string),
	}
	seen := make(map[string]bool)
	for c, chunk := range chunks {
		entries := make([]manifestEntry, len(chunk))
		for i, d := range chunk {
			e := manifestEntry{digest: d.digest, payload: d.payload}
			if s.overlay != nil {
				e.ring = s.overlay.ChunkOwners(d.digest)
			}
			entries[i] = e
			if seen[d.digest] {
				continue
			}
			seen[d.digest] = true
			s.chunks.Pin(d.digest, d.payload)
			if s.overlay != nil {
				if acked, err := s.overlay.PutChunk(d.digest, d.payload); err == nil {
					s.resStats.FarmEgressBytes.Add(int64(acked) * int64(len(d.payload)))
				} else {
					s.logf("service: farm chunk replicate %.12s: %v", d.digest, err)
				}
			}
		}
		fm.chunks[c] = entries
	}
	return fm
}

// release unpins the farm's chunks; the LRU may keep serving them to
// stragglers until pressure evicts them.
func (fm *farmManifests) release() {
	seen := make(map[string]bool)
	for _, chunk := range fm.chunks {
		for _, e := range chunk {
			if !seen[e.digest] {
				seen[e.digest] = true
				fm.s.chunks.Unpin(e.digest)
			}
		}
	}
}

// manifestFor renders chunk c's manifest with the hints known right
// now — a retry or speculative backup of a chunk another donor already
// resolved gets that donor as a peer rung.
func (fm *farmManifests) manifestFor(c int, excludeAddr string) []byte {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	m := &chunkstore.Manifest{Origin: fm.origin, Items: make([]chunkstore.Item, len(fm.chunks[c]))}
	for i, e := range fm.chunks[c] {
		var peers []string
		for _, addr := range fm.hints[e.digest] {
			if addr != excludeAddr {
				peers = append(peers, addr)
			}
		}
		m.Items[i] = chunkstore.Item{Digest: e.digest, Ring: e.ring, Peers: peers}
	}
	return chunkstore.EncodeManifest(m)
}

// recordResolved notes that a donor materialised chunk c (its attempt
// returned a complete result), making it a fetch source for those
// digests.
func (fm *farmManifests) recordResolved(c int, donorAddr string) {
	if donorAddr == "" {
		return
	}
	fm.mu.Lock()
	defer fm.mu.Unlock()
	for _, e := range fm.chunks[c] {
		hints := fm.hints[e.digest]
		known := false
		for _, a := range hints {
			if a == donorAddr {
				known = true
				break
			}
		}
		if !known && len(hints) < maxPeerHints {
			fm.hints[e.digest] = append(hints, donorAddr)
		}
	}
}

// digestFarmChunks canonically encodes every datum once, up front: the
// same bytes feed the digest, the pin, the ring replica and (on the
// legacy path) the stream, so a chunk's identity is fixed before the
// first attempt.
type manifestDatum struct {
	digest  string
	payload []byte
}

func digestFarmChunks(chunks [][]types.Data) ([][]manifestDatum, error) {
	out := make([][]manifestDatum, len(chunks))
	for c, chunk := range chunks {
		ds := make([]manifestDatum, len(chunk))
		for i, d := range chunk {
			digest, payload, err := chunkstore.DigestData(d)
			if err != nil {
				return nil, err
			}
			ds[i] = manifestDatum{digest: digest, payload: payload}
		}
		out[c] = ds
	}
	return out, nil
}
