package service

// The data-tier acceptance battery: manifest despatch end to end over a
// super-peer ring, the legacy streaming fallback against a donor that
// never negotiated the tier, the peer-to-peer rung of the fetch ladder,
// and the chaos case — the ring replica holding a farm's chunks dies
// mid-farm and the controller-direct fallback carries the rest.

import (
	"testing"
	"time"

	"consumergrid/internal/chunkstore"
	"consumergrid/internal/simnet"
	"consumergrid/internal/types"
)

// dataTierNet builds a controller plus donors with the chunk tier on,
// and optionally a super-peer ring of one for chunk placement. Labels
// are prefixed per test: the process-global metrics registry keys
// series by peer.
func dataTierNet(t *testing.T, n *simnet.Network, prefix string, withRing bool, donorTier []bool) (ctl *Service, donors []*Service, peers []PeerRef) {
	t.Helper()
	var superAddrs []string
	if withRing {
		sp := newService(t, n.Peer(prefix+"super"), prefix+"super", Options{
			Overlay: &OverlayOptions{SuperPeer: true, Replication: 1, SweepInterval: -1},
		})
		superAddrs = []string{sp.Addr()}
	}
	ctlOpts := Options{
		Resilience: chaosResilience(),
		DataTier:   DataTierOptions{Enable: true},
	}
	if withRing {
		ctlOpts.Overlay = &OverlayOptions{SuperPeers: superAddrs, Replication: 1}
	}
	ctl = newService(t, n.Peer(prefix+"ctl"), prefix+"ctl", ctlOpts)
	for i, tier := range donorTier {
		label := prefix + "w" + string(rune('1'+i))
		w := newService(t, n.Peer(label), label, Options{
			DataTier: DataTierOptions{Enable: tier},
		})
		donors = append(donors, w)
		peers = append(peers, PeerRef{ID: label, Addr: w.Addr()})
	}
	return ctl, donors, peers
}

// streamingEgressBaseline farms the same chunks over plain streaming
// peers and reports the controller's egress bytes — the number the data
// tier must beat.
func streamingEgressBaseline(t *testing.T, chunks [][]types.Data, fo FarmOptions) ([]types.Data, int64) {
	t.Helper()
	n := simnet.New()
	ctl, peers := chaosNet(t, n)
	rep := runChaosFarm(t, ctl, peers, chunks, fo)
	return rep.Outputs, ctl.Resilience().Snapshot().FarmEgressBytes
}

// bigChunks derives chunks of wide spectra — payloads large enough
// that digest/manifest overhead is noise against the data bytes, the
// regime the tier is built for.
func bigChunks(seed int64, nChunks, perChunk, bins int) [][]types.Data {
	chunks := chaosChunks(seed, nChunks, perChunk)
	for _, chunk := range chunks {
		for _, d := range chunk {
			sp := d.(*types.Spectrum)
			amps := make([]float64, bins)
			for i := range amps {
				amps[i] = sp.Amplitudes[i%2] + float64(i)
			}
			sp.Amplitudes = amps
		}
	}
	return chunks
}

// TestFarmManifestDespatch is the plain-farm manifest path: with the
// tier negotiated everywhere and a ring for placement, a farm's outputs
// are identical to the streaming run's and every chunk is resolved
// through the fetch ladder rather than the controller's stream.
func TestFarmManifestDespatch(t *testing.T) {
	chunks := chaosChunks(chaosSeed, 4, 5)
	want, _ := streamingEgressBaseline(t, chunks, FarmOptions{})

	n := simnet.New()
	ctl, donors, peers := dataTierNet(t, n, "dt-", true, []bool{true, true})
	rep := runChaosFarm(t, ctl, peers, chunks, FarmOptions{})
	assertSameOutputs(t, rep.Outputs, want)

	var hits, ring, peer, origin int64
	for _, d := range donors {
		snap := d.ChunkStore().Snapshot()
		hits += snap.Hits
		ring += snap.FetchRing
		peer += snap.FetchPeer
		origin += snap.FetchController
	}
	if ring+peer+origin+hits == 0 {
		t.Fatal("no donor resolved any chunk through the fetch ladder; manifests were never despatched")
	}
	if ring == 0 {
		t.Error("no chunk was fetched from the ring replica despite a live super")
	}
	if egress := ctl.Resilience().Snapshot().FarmEgressBytes; egress == 0 {
		t.Fatal("egress accounting dead")
	}
	t.Logf("fetches: ring=%d peer=%d controller=%d hits=%d", ring, peer, origin, hits)
}

// TestFarmEgressReduction is the tentpole acceptance test: under quorum
// despatch (every chunk attempted by three voters), the streaming
// controller pays for each chunk's bytes once per voter, while the
// manifest controller pays roughly once total — the ring write-through
// — plus metadata. The ISSUE's bar is a >= 50% egress reduction.
func TestFarmEgressReduction(t *testing.T) {
	chunks := bigChunks(chaosSeed, 3, 4, 512)
	want, streamEgress := streamingEgressBaseline(t, chunks, FarmOptions{Quorum: 3})

	n := simnet.New()
	ctl, _, peers := dataTierNet(t, n, "eg-", true, []bool{true, true, true})
	rep := runChaosFarm(t, ctl, peers, chunks, FarmOptions{Quorum: 3})
	assertSameOutputs(t, rep.Outputs, want)

	egress := ctl.Resilience().Snapshot().FarmEgressBytes
	if egress == 0 || streamEgress == 0 {
		t.Fatalf("egress accounting dead: data-tier=%d streaming=%d", egress, streamEgress)
	}
	if 2*egress > streamEgress {
		t.Errorf("data-tier egress %d is not <= half the streaming egress %d", egress, streamEgress)
	}
	t.Logf("egress: streaming=%d data-tier=%d (%.0f%% saved)",
		streamEgress, egress, 100*(1-float64(egress)/float64(streamEgress)))
}

// TestFarmLegacyPeerStreamsPayloads proves the negotiated fallback: a
// donor without the tier never advertises the capability, so the
// controller streams payloads exactly as before and the farm completes
// with identical outputs.
func TestFarmLegacyPeerStreamsPayloads(t *testing.T) {
	chunks := chaosChunks(chaosSeed, 3, 4)
	want, _ := streamingEgressBaseline(t, chunks, FarmOptions{})

	n := simnet.New()
	ctl, donors, peers := dataTierNet(t, n, "lg-", false, []bool{false, false})
	rep := runChaosFarm(t, ctl, peers, chunks, FarmOptions{})
	assertSameOutputs(t, rep.Outputs, want)

	for i, d := range donors {
		if d.ChunkStore() != nil {
			t.Fatalf("donor %d runs a chunk store; test misconfigured", i)
		}
	}
	// The controller pinned its farm chunks but no donor ever fetched
	// them: every byte went over the legacy stream.
	var payloadBytes int64
	for _, chunk := range chunks {
		for _, d := range chunk {
			_, p, err := chunkstore.DigestData(d)
			if err != nil {
				t.Fatal(err)
			}
			payloadBytes += int64(len(p))
		}
	}
	egress := ctl.Resilience().Snapshot().FarmEgressBytes
	if egress < payloadBytes {
		t.Errorf("controller egress %d < one full streaming pass %d", egress, payloadBytes)
	}
	if got := ctl.ChunkStore().Snapshot(); got.Entries == 0 {
		t.Error("controller did not pin its farm chunks")
	}
}

// TestResolveManifestPeerRung exercises the donor-to-donor rung in
// isolation: a manifest whose only hint is a sibling donor that already
// holds the chunk resolves without touching ring or controller, and a
// re-resolve hits the local cache.
func TestResolveManifestPeerRung(t *testing.T) {
	n := simnet.New()
	a := newService(t, n.Peer("pr-a"), "pr-a", Options{DataTier: DataTierOptions{Enable: true}})
	b := newService(t, n.Peer("pr-b"), "pr-b", Options{DataTier: DataTierOptions{Enable: true}})

	data := []types.Data{
		&types.Spectrum{Resolution: 1, Amplitudes: []float64{1, 2}},
		&types.Spectrum{Resolution: 1, Amplitudes: []float64{3, 4}},
	}
	m := &chunkstore.Manifest{}
	for _, d := range data {
		digest, payload, err := chunkstore.DigestData(d)
		if err != nil {
			t.Fatal(err)
		}
		a.ChunkStore().Put(digest, payload)
		m.Items = append(m.Items, chunkstore.Item{Digest: digest, Peers: []string{a.Addr()}})
	}

	payloads, err := b.resolveManifest(chunkstore.EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != len(data) {
		t.Fatalf("resolved %d payloads, want %d", len(payloads), len(data))
	}
	snap := b.ChunkStore().Snapshot()
	if snap.FetchPeer != int64(len(data)) {
		t.Errorf("peer fetches = %d, want %d", snap.FetchPeer, len(data))
	}
	if snap.FetchRing != 0 || snap.FetchController != 0 {
		t.Errorf("ladder skipped the peer rung: ring=%d controller=%d", snap.FetchRing, snap.FetchController)
	}
	if _, err := b.resolveManifest(chunkstore.EncodeManifest(m)); err != nil {
		t.Fatal(err)
	}
	if snap := b.ChunkStore().Snapshot(); snap.Hits != int64(len(data)) {
		t.Errorf("re-resolve hits = %d, want %d (local cache)", snap.Hits, len(data))
	}
}

// TestFarmSurvivesDeadChunkReplica is the chaos satellite: the single
// ring replica holding the farm's chunks is killed after the first
// chunk commits. Later manifests still name the dead super, the ring
// rung times out, and the controller-direct fallback completes the farm
// with outputs identical to the fault-free run.
func TestFarmSurvivesDeadChunkReplica(t *testing.T) {
	chunks := chaosChunks(chaosSeed, 4, 5)
	want, _ := streamingEgressBaseline(t, chunks, FarmOptions{})

	n := simnet.New()
	ctl, donors, peers := dataTierNet(t, n, "dr-", true, []bool{true, true})
	rep := runChaosFarm(t, ctl, peers, chunks, FarmOptions{
		AfterChunk: func(c int) {
			if c == 0 {
				n.Kill("dr-super")
			}
		},
		AttemptTimeout: 20 * time.Second,
	})
	assertSameOutputs(t, rep.Outputs, want)

	var ring, origin int64
	for _, d := range donors {
		snap := d.ChunkStore().Snapshot()
		ring += snap.FetchRing
		origin += snap.FetchController
	}
	if origin == 0 {
		t.Error("no controller-direct fetches despite a dead ring replica; the fallback never engaged")
	}
	t.Logf("ring=%d controller=%d after replica death", ring, origin)
}
