package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"consumergrid/internal/advert"
	"consumergrid/internal/engine"
	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/policy"
	"consumergrid/internal/sandbox"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/trace"
	"consumergrid/internal/types"
)

// PeerRef identifies a remote Triana service.
type PeerRef struct {
	ID   string
	Addr string
}

// PipeTarget names a downstream input pipe a remote part must bind to.
type PipeTarget struct {
	Label string
	Addr  string
}

// RemotePart is one subgraph to ship to one peer.
type RemotePart struct {
	Peer PeerRef
	// Body is the subgraph, with ExternalIn/ExternalOut endpoints set.
	Body *taskgraph.Graph
	// InLabels names the pipe each external input listens on (aligned
	// with Body.ExternalIn). InEOFs[i] is the number of producers that
	// will bind to input i (defaults to 1 when nil).
	InLabels []string
	InEOFs   []int
	// OutTargets names where each external output sends (aligned with
	// Body.ExternalOut).
	OutTargets []PipeTarget
	Iterations int
	Seed       int64
	// RestoreState re-primes checkpointable units before the run (keyed
	// by task name): despatching with the state captured from another
	// peer is the migration mechanism of §3.6.2.
	RestoreState map[string][]byte
	// Tenant identifies whose farm this part belongs to. It travels in
	// the run envelope so the hosting peer's spans and metrics carry the
	// same identity; empty means DefaultTenant.
	Tenant string
	// Group is the capability group the part was despatched within; it
	// lands on the despatch span so traces show which electorate the
	// part belonged to. Empty means the despatch was not group-scoped.
	Group string
}

// RemoteJob is a despatched part awaiting completion.
type RemoteJob struct {
	Part  RemotePart
	JobID string
	// InAds are the remote service's input-pipe advertisements, aligned
	// with Part.InLabels; upstream producers bind to them.
	InAds []*advert.Advertisement
	// TraceID and despatchSpan carry the despatch trace context so the
	// result-collection span joins the same tree.
	TraceID      string
	despatchSpan string
	// ChunkCapable records that the hosting peer advertised the
	// content-addressed data tier in its run reply; a capable controller
	// may send this job chunk manifests instead of streamed payloads.
	ChunkCapable bool
}

// Despatch ships a part to its peer: the remote service fetches modules
// from codeAddr (empty disables on-demand code), opens its input pipes
// and binds its outputs. It returns the job reference carrying the input
// adverts. Unreachable peers are retried per the resilience policy;
// because triana.run is not idempotent, only dial failures retry — a
// conversation that broke after the request was sent fails immediately
// rather than risk despatching the part twice.
func (s *Service) Despatch(part RemotePart, codeAddr string) (*RemoteJob, error) {
	return s.despatchCtx(context.Background(), part, codeAddr)
}

func (s *Service) despatchCtx(ctx context.Context, part RemotePart, codeAddr string) (*RemoteJob, error) {
	if len(part.InLabels) != len(part.Body.ExternalIn) {
		return nil, fmt.Errorf("service: %d in labels for %d external inputs",
			len(part.InLabels), len(part.Body.ExternalIn))
	}
	if len(part.OutTargets) != len(part.Body.ExternalOut) {
		return nil, fmt.Errorf("service: %d out targets for %d external outputs",
			len(part.OutTargets), len(part.Body.ExternalOut))
	}
	xmlBytes, err := part.Body.EncodeXML()
	if err != nil {
		return nil, err
	}
	// Root span of the despatch lifecycle; the transfer child brackets
	// the wire exchange and its IDs travel in the request envelope so the
	// hosting peer's execute span links into the same trace.
	despatch := s.tracer.Start("", "", "despatch", s.opts.PeerID)
	despatch.SetAttr("to", part.Peer.ID)
	if part.Tenant != "" {
		despatch.SetAttr("tenant", part.Tenant)
	}
	if part.Group != "" {
		despatch.SetAttr("capgroup", part.Group)
	}
	defer despatch.End()
	xfer := s.tracer.Start(despatch.TraceID(), despatch.SpanID(), "transfer", s.opts.PeerID)
	payload := encodeRunPayload(xmlBytes, part.RestoreState)
	headers := map[string]string{
		"iterations": strconv.Itoa(part.Iterations),
		"seed":       strconv.FormatInt(part.Seed, 10),
		"in.count":   strconv.Itoa(len(part.InLabels)),
		"out.count":  strconv.Itoa(len(part.OutTargets)),
	}
	if codeAddr != "" {
		headers["codeAddr"] = codeAddr
	}
	if part.Tenant != "" {
		headers["tenant"] = part.Tenant
	}
	for i, label := range part.InLabels {
		headers[fmt.Sprintf("in.%d.label", i)] = label
		if i < len(part.InEOFs) && part.InEOFs[i] > 0 {
			headers[fmt.Sprintf("in.%d.eofs", i)] = strconv.Itoa(part.InEOFs[i])
		}
	}
	for i, tgt := range part.OutTargets {
		headers[fmt.Sprintf("out.%d.label", i)] = tgt.Label
		headers[fmt.Sprintf("out.%d.addr", i)] = tgt.Addr
	}
	trace.Inject(xfer, func(k, v string) { headers[k] = v })
	reply, err := s.requestRetry(ctx, part.Peer.Addr, MethodRun, payload, headers,
		false, s.res.RequestTimeout)
	xfer.Fail(err)
	xfer.End()
	if err != nil {
		despatchFailures.Inc()
		err = fmt.Errorf("service: despatch to %s: %w", part.Peer.ID, err)
		despatch.Fail(err)
		return nil, err
	}
	ads, err := advert.DecodeList(reply.Payload)
	if err != nil {
		despatch.Fail(err)
		return nil, err
	}
	if len(ads) != len(part.InLabels) {
		err = fmt.Errorf("service: peer %s returned %d pipe adverts for %d inputs",
			part.Peer.ID, len(ads), len(part.InLabels))
		despatch.Fail(err)
		return nil, err
	}
	despatchesTotal.Inc()
	despatch.SetAttr("job", reply.Header("job"))
	return &RemoteJob{
		Part: part, JobID: reply.Header("job"), InAds: ads,
		TraceID: despatch.TraceID(), despatchSpan: despatch.SpanID(),
		ChunkCapable: reply.Header(capChunkstore) != "",
	}, nil
}

// WaitRemote blocks until a despatched job completes, returning its
// per-task processed counts.
func (s *Service) WaitRemote(job *RemoteJob) (map[string]int, error) {
	counts, _, err := s.WaitRemoteState(job)
	return counts, err
}

// WaitRemoteState additionally returns the stateful units' checkpoints,
// ready to feed another Despatch's RestoreState — the migration handoff.
func (s *Service) WaitRemoteState(job *RemoteJob) (map[string]int, map[string][]byte, error) {
	return s.waitRemoteStateCtx(context.Background(), job)
}

// waitRemoteStateCtx is WaitRemoteState bounded by a context: the wait
// RPC blocks as long as the job runs (no per-attempt deadline), so the
// failure detector or attempt timeout cancels it through ctx. Waits are
// idempotent, so broken conversations retry.
func (s *Service) waitRemoteStateCtx(ctx context.Context, job *RemoteJob) (map[string]int, map[string][]byte, error) {
	span := s.tracer.Start(job.TraceID, job.despatchSpan, "result", s.opts.PeerID)
	span.SetAttr("job", job.JobID)
	defer span.End()
	reply, err := s.requestRetry(ctx, job.Part.Peer.Addr, MethodWait, nil,
		map[string]string{"job": job.JobID}, true, 0)
	if err != nil {
		span.Fail(err)
		return nil, nil, err
	}
	span.SetAttr("processed", reply.Header("processed"))
	counts := make(map[string]int)
	for k, v := range reply.Headers {
		if len(k) > 5 && k[:5] == "proc." {
			n, _ := strconv.Atoi(v)
			counts[k[5:]] = n
		}
	}
	var state map[string][]byte
	if len(reply.Payload) > 0 {
		if _, state, err = decodeRunPayload(reply.Payload); err != nil {
			return nil, nil, err
		}
	}
	return counts, state, nil
}

// CancelRemote cancels a despatched job. Cancels are idempotent and
// retried with a per-attempt deadline.
func (s *Service) CancelRemote(job *RemoteJob) error {
	_, err := s.requestRetry(context.Background(), job.Part.Peer.Addr, MethodCancel, nil,
		map[string]string{"job": job.JobID}, true, s.res.RequestTimeout)
	return err
}

// --- distributed group execution ---------------------------------------------

// DistOptions configures RunDistributed.
type DistOptions struct {
	// Iterations drives the local sources.
	Iterations int
	Seed       int64
	// CodeAddr is the module owner the remote peers fetch from; empty
	// uses this service's own address (it serves every registered unit).
	CodeAddr string
	// Sandbox for the local portion; nil = service default.
	Sandbox *sandbox.Sandbox
	// PipeBuffer is the local input-pipe depth (default 8).
	PipeBuffer int
}

// DistResult reports a distributed run.
type DistResult struct {
	// Local is the engine result for the locally-executed portion.
	Local *engine.Result
	// Remote maps peer ID -> per-task processed counts.
	Remote map[string]map[string]int
}

// RunDistributed executes graph g whose named group is distributed per
// plan across the given peers: the client-component behaviour of §3.5
// ("the group being distributed is extracted from the workflow and sent
// to the remote Triana service", with uniquely-labelled boundary
// connections mapped to pipes). Parallel plans replicate the group body
// on every replica peer and farm data items round-robin; pipeline plans
// place each member on its own peer, chained by pipes.
func (s *Service) RunDistributed(ctx context.Context, g *taskgraph.Graph, groupName string,
	plan *policy.Plan, peers map[string]PeerRef, opts DistOptions) (*DistResult, error) {
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("service: Iterations must be >= 1")
	}
	if opts.PipeBuffer <= 0 {
		opts.PipeBuffer = 8
	}
	if opts.CodeAddr == "" {
		opts.CodeAddr = s.Addr()
	}
	if plan.Kind == policy.KindLocal {
		res, err := s.RunLocal(ctx, g, engine.Options{
			Iterations: opts.Iterations, Seed: opts.Seed, Sandbox: opts.Sandbox,
		})
		if err != nil {
			return nil, err
		}
		return &DistResult{Local: res, Remote: map[string]map[string]int{}}, nil
	}

	work := g.Clone()
	// Namespace every pipe label with a per-service run counter so a
	// single controller can drive multiple applications — or repeated
	// runs of the same application — concurrently (§3.2: "A single Triana
	// controller can control multiple Triana networks").
	runID := s.nextRunID.Add(1)
	work.AssignLabels(fmt.Sprintf("app/%s/run%d", work.Name, runID))
	gt := work.Find(groupName)
	if gt == nil || !gt.IsGroup() {
		return nil, fmt.Errorf("service: %q is not a group task", groupName)
	}
	inLabels, outLabels, err := work.BoundaryLabels(groupName)
	if err != nil {
		return nil, err
	}
	body := gt.Group

	// Record the local boundary endpoints before removing the group:
	// producers feeding the group become local external outputs, and
	// consumers fed by the group become local external inputs.
	prodEnds := make([]taskgraph.Endpoint, gt.In)  // index: group input node
	consEnds := make([]taskgraph.Endpoint, gt.Out) // index: group output node
	for _, c := range work.Connections {
		if c.Control {
			continue
		}
		if c.To.Task == groupName {
			prodEnds[c.To.Node] = c.From
		}
		if c.From.Task == groupName {
			consEnds[c.From.Node] = c.To
		}
	}
	work.Remove(groupName)
	work.ExternalOut = prodEnds
	work.ExternalIn = consEnds

	// Open local input pipes for the group's outputs; every remote
	// producer of output k binds to local pipe outLabels[k]. The expected
	// EOF count is armed after despatch, once the surviving replica count
	// is known.
	localPipes := make([]*jxtaserve.InputPipe, gt.Out)
	extIn := make(map[int]<-chan types.Data, gt.Out)
	closeLocalPipes := func() {
		for _, p := range localPipes {
			if p != nil {
				p.Close()
			}
		}
	}
	for k := 0; k < gt.Out; k++ {
		pipe, _, err := s.host.OpenInput(outLabels[k], opts.PipeBuffer)
		if err != nil {
			closeLocalPipes()
			return nil, err
		}
		localPipes[k] = pipe
		extIn[k] = pipe.C
	}

	// Despatch the remote parts and learn their input-pipe adverts.
	var jobs []*RemoteJob
	// inputAds[j] lists, per group input node j, the remote input pipes
	// the local side must feed (one per replica for parallel; exactly one
	// for pipeline).
	inputAds := make([][]*advert.Advertisement, gt.In)
	producersPerOutput := 1
	switch plan.Kind {
	case policy.KindParallel:
		outTargets := make([]PipeTarget, gt.Out)
		for k := range outTargets {
			outTargets[k] = PipeTarget{Label: outLabels[k], Addr: s.Addr()}
		}
		// Failover: a replica that refuses or cannot be reached (gone
		// offline, owner active, not certified) is skipped, per §3.6.2:
		// "simply distributing the code to as many computers that are
		// available". A replica whose circuit breaker is open is skipped
		// without touching the network at all — unless every replica is
		// gated, in which case they are all tried rather than failing a
		// run that might still succeed. The run fails only when no
		// replica accepts.
		var despatchErr error
		allGated := true
		for _, peerID := range plan.Replicas {
			if s.health.Usable(peerID) {
				allGated = false
				break
			}
		}
		tryReplica := func(r int, peerID string) {
			part := RemotePart{
				Peer:       peers[peerID],
				Body:       body.Clone(),
				InLabels:   replicaLabels(inLabels, r),
				OutTargets: outTargets,
				Iterations: opts.Iterations,
				Seed:       opts.Seed + int64(r)*1000003,
			}
			job, err := s.Despatch(part, opts.CodeAddr)
			if err != nil {
				despatchErr = err
				s.health.ReportFailure(peerID)
				s.logf("service: replica %s unavailable, skipping: %v", peerID, err)
				return
			}
			s.health.ReportSuccess(peerID, 0)
			jobs = append(jobs, job)
			for j := range inLabels {
				inputAds[j] = append(inputAds[j], job.InAds[j])
			}
		}
		var gated []struct {
			r      int
			peerID string
		} // breaker-skipped replicas, kept for a second pass
		for r, peerID := range plan.Replicas {
			if _, ok := peers[peerID]; !ok {
				closeLocalPipes()
				return nil, fmt.Errorf("service: plan names unknown peer %q", peerID)
			}
			if !allGated && !s.health.Usable(peerID) {
				s.logf("service: replica %s breaker open, skipping", peerID)
				gated = append(gated, struct {
					r      int
					peerID string
				}{r, peerID})
				continue
			}
			tryReplica(r, peerID)
		}
		if len(jobs) == 0 && len(gated) > 0 {
			// Every usable replica refused. A gated replica is a better
			// bet than failing the run: its breaker reflects stale RPC
			// history, not the despatch we are about to attempt — under
			// churn an idle-but-gated donor is often the only one left.
			for _, g := range gated {
				s.logf("service: retrying breaker-gated replica %s (no other replica accepted)", g.peerID)
				tryReplica(g.r, g.peerID)
			}
		}
		if len(jobs) == 0 {
			closeLocalPipes()
			return nil, fmt.Errorf("service: no replica accepted the group: %w", despatchErr)
		}
		producersPerOutput = len(jobs)
	case policy.KindPipeline:
		jobsByStage, err := s.despatchPipeline(body, plan, peers, inLabels, outLabels, opts)
		if err != nil {
			closeLocalPipes()
			return nil, err
		}
		jobs = jobsByStage.jobs
		for j := range inLabels {
			ad, ok := jobsByStage.groupInputAds[j]
			if !ok {
				closeLocalPipes()
				return nil, fmt.Errorf("service: group input %d not bound by any stage", j)
			}
			inputAds[j] = []*advert.Advertisement{ad}
		}
	default:
		closeLocalPipes()
		return nil, fmt.Errorf("service: unsupported plan kind %v", plan.Kind)
	}
	for _, pipe := range localPipes {
		pipe.ExpectEOFs(producersPerOutput)
	}

	// Bind local outputs to the remote input pipes and bridge channels.
	extOut := make(map[int]chan<- types.Data, gt.In)
	var bridgeWG sync.WaitGroup
	var bridgeErr error
	var bridgeMu sync.Mutex
	// bridgeQuit releases the bridges once the engine has returned or a
	// later bind failed: an engine that errors out early never closes its
	// external outputs, and a bridge blocked on `range ch` would leak.
	bridgeQuit := make(chan struct{})
	var bridgeQuitOnce sync.Once
	stopBridges := func() {
		bridgeQuitOnce.Do(func() { close(bridgeQuit) })
		bridgeWG.Wait()
	}
	for j := 0; j < gt.In; j++ {
		var outs []*jxtaserve.OutputPipe
		for _, ad := range inputAds[j] {
			op, err := s.host.BindOutput(ad)
			if err != nil {
				for _, o := range outs {
					o.Close()
				}
				stopBridges()
				closeLocalPipes()
				return nil, fmt.Errorf("service: binding group input %d: %w", j, err)
			}
			outs = append(outs, op)
		}
		ch := make(chan types.Data, opts.PipeBuffer)
		extOut[j] = ch
		bridgeWG.Add(1)
		go func(ch chan types.Data, outs []*jxtaserve.OutputPipe) {
			defer bridgeWG.Done()
			defer func() {
				for _, op := range outs {
					op.Close()
				}
			}()
			i := 0
			// Round-robin across replicas; single target for pipelines.
			send := func(d types.Data) bool {
				op := outs[i%len(outs)]
				i++
				if err := op.Send(d); err != nil {
					bridgeMu.Lock()
					if bridgeErr == nil {
						bridgeErr = err
					}
					bridgeMu.Unlock()
					return false
				}
				return true
			}
			for {
				select {
				case d, ok := <-ch:
					if !ok {
						return
					}
					if !send(d) {
						// Drain so the engine never blocks, but give up
						// once it has exited.
						for {
							select {
							case _, ok := <-ch:
								if !ok {
									return
								}
							case <-bridgeQuit:
								return
							}
						}
					}
				case <-bridgeQuit:
					// Engine done; flush what it buffered before exiting.
					for {
						select {
						case d, ok := <-ch:
							if !ok {
								return
							}
							if !send(d) {
								return
							}
						default:
							return
						}
					}
				}
			}
		}(ch, outs)
	}

	// Run the local portion.
	sb := opts.Sandbox
	if sb == nil {
		sb = sandbox.New(s.opts.Sandbox)
	}
	local, runErr := engine.Run(ctx, work, engine.Options{
		Iterations:  opts.Iterations,
		Seed:        opts.Seed,
		Sandbox:     sb,
		Logf:        s.opts.Logf,
		ExternalIn:  extIn,
		ExternalOut: extOut,
	})
	stopBridges()

	// Collect the remote jobs (their inputs have seen EOF by now).
	remote := make(map[string]map[string]int, len(jobs))
	var waitErr error
	for _, job := range jobs {
		counts, err := s.WaitRemote(job)
		if err != nil && waitErr == nil {
			waitErr = err
		}
		if counts != nil {
			merged := remote[job.Part.Peer.ID]
			if merged == nil {
				merged = make(map[string]int)
				remote[job.Part.Peer.ID] = merged
			}
			for task, n := range counts {
				merged[task] += n
			}
		}
	}
	closeLocalPipes()

	switch {
	case runErr != nil:
		return nil, runErr
	case waitErr != nil:
		return nil, waitErr
	default:
		bridgeMu.Lock()
		defer bridgeMu.Unlock()
		if bridgeErr != nil {
			return nil, bridgeErr
		}
	}
	return &DistResult{Local: local, Remote: remote}, nil
}

// replicaLabels namespaces the group-input pipe names per replica so the
// r-th replica's pipes are distinct even when hosted on the same peer
// (as happens in single-process tests and small networks).
func replicaLabels(labels []string, r int) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = fmt.Sprintf("%s/r%d", l, r)
	}
	return out
}

// pipelineJobs carries despatchPipeline results.
type pipelineJobs struct {
	jobs []*RemoteJob
	// groupInputAds maps group input node -> the advert of the stage
	// input pipe that should receive it.
	groupInputAds map[int]*advert.Advertisement
}

// despatchPipeline ships each group member to its planned peer, in
// reverse flow order so every consumer's pipes exist before its producer
// despatches.
func (s *Service) despatchPipeline(body *taskgraph.Graph, plan *policy.Plan,
	peers map[string]PeerRef, inLabels, outLabels []string, opts DistOptions) (*pipelineJobs, error) {

	// Pre-compute stage boundary wiring from the body graph.
	type stageSpec struct {
		task *taskgraph.Task
		// ins: label per input node (either an internal connection label
		// or a group-input label); groupIn records which group input node
		// maps to which local input node.
		ins     []string
		groupIn map[int]int // stage input node -> group input node
		outs    []PipeTarget
	}
	specs := make(map[string]*stageSpec, len(plan.Stages))
	for _, name := range plan.Stages {
		t := body.Find(name)
		if t == nil {
			return nil, fmt.Errorf("service: plan stage %q not in group", name)
		}
		specs[name] = &stageSpec{
			task:    t,
			ins:     make([]string, t.In),
			groupIn: make(map[int]int),
			outs:    make([]PipeTarget, t.Out),
		}
	}
	// Internal connections: producer stage output -> consumer stage input.
	type pendingEdge struct {
		fromStage string
		fromNode  int
		label     string
	}
	var internalEdges []pendingEdge
	for _, c := range body.Connections {
		if c.Control {
			continue
		}
		if c.Label == "" {
			return nil, fmt.Errorf("service: unlabelled internal connection %s->%s", c.From, c.To)
		}
		cons, ok := specs[c.To.Task]
		if !ok {
			return nil, fmt.Errorf("service: connection to unplanned task %q", c.To.Task)
		}
		cons.ins[c.To.Node] = c.Label
		internalEdges = append(internalEdges, pendingEdge{c.From.Task, c.From.Node, c.Label})
	}
	// Group boundary mapping.
	for j, e := range body.ExternalIn {
		spec, ok := specs[e.Task]
		if !ok {
			return nil, fmt.Errorf("service: group input %d maps to unplanned task %q", j, e.Task)
		}
		spec.ins[e.Node] = inLabels[j]
		spec.groupIn[e.Node] = j
	}
	for k, e := range body.ExternalOut {
		spec, ok := specs[e.Task]
		if !ok {
			return nil, fmt.Errorf("service: group output %d maps to unplanned task %q", k, e.Task)
		}
		spec.outs[e.Node] = PipeTarget{Label: outLabels[k], Addr: s.Addr()}
	}

	result := &pipelineJobs{groupInputAds: make(map[int]*advert.Advertisement)}
	// Adverts of stage input pipes, by label, filled as stages despatch.
	adByLabel := make(map[string]*advert.Advertisement)

	for i := len(plan.Stages) - 1; i >= 0; i-- {
		name := plan.Stages[i]
		spec := specs[name]
		peerID := plan.Placement[name]
		ref, ok := peers[peerID]
		if !ok {
			return nil, fmt.Errorf("service: plan names unknown peer %q", peerID)
		}
		// Resolve internal out targets from already-despatched consumers.
		for node := range spec.outs {
			if spec.outs[node].Label != "" {
				continue // group output, already targeted at the local side
			}
			// Find the internal edge leaving this node.
			found := false
			for _, e := range internalEdges {
				if e.fromStage == name && e.fromNode == node {
					ad, ok := adByLabel[e.label]
					if !ok {
						return nil, fmt.Errorf("service: consumer pipe %q not yet despatched", e.label)
					}
					spec.outs[node] = PipeTarget{Label: ad.Name, Addr: ad.Addr}
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("service: stage %s output %d has no consumer", name, node)
			}
		}
		// Build the single-task body.
		sub := taskgraph.New(name)
		sub.Tasks = append(sub.Tasks, spec.task.Clone())
		for node := 0; node < spec.task.In; node++ {
			sub.ExternalIn = append(sub.ExternalIn, taskgraph.Endpoint{Task: name, Node: node})
		}
		for node := 0; node < spec.task.Out; node++ {
			sub.ExternalOut = append(sub.ExternalOut, taskgraph.Endpoint{Task: name, Node: node})
		}
		part := RemotePart{
			Peer:       ref,
			Body:       sub,
			InLabels:   spec.ins,
			OutTargets: spec.outs,
			Iterations: opts.Iterations,
			Seed:       opts.Seed,
		}
		job, err := s.Despatch(part, opts.CodeAddr)
		if err != nil {
			return nil, err
		}
		result.jobs = append(result.jobs, job)
		for node, ad := range job.InAds {
			adByLabel[spec.ins[node]] = ad
			if j, isGroupIn := spec.groupIn[node]; isGroupIn {
				result.groupInputAds[j] = ad
			}
		}
	}
	return result, nil
}
