package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/policy"
	"consumergrid/internal/simnet"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
	"consumergrid/internal/units"
)

// slowUnit blocks each Process call until released, letting tests freeze
// a remote job mid-run.
type slowUnit struct {
	release <-chan struct{}
}

var (
	slowOnce    sync.Once
	slowRelease chan struct{}
)

const slowUnitName = "test.failure.Slow"

func registerSlowUnit() {
	slowOnce.Do(func() {
		slowRelease = make(chan struct{})
		units.Register(units.Meta{
			Name:        slowUnitName,
			Description: "test unit that blocks until released or cancelled",
			In:          1, Out: 1,
			InTypes:  [][]string{{types.AnyType}},
			OutTypes: []string{types.AnyType},
		}, func() units.Unit { return &slowUnit{release: slowRelease} })
	})
}

func (s *slowUnit) Name() string            { return slowUnitName }
func (s *slowUnit) Init(units.Params) error { return nil }

func (s *slowUnit) Process(ctx *units.Context, in []types.Data) ([]types.Data, error) {
	select {
	case <-s.release:
	case <-ctx.Ctx.Done():
		return nil, ctx.Ctx.Err()
	}
	return []types.Data{in[0]}, nil
}

// TestWorkerDeathMidRunFailsFast is the churn failure injection: a donor
// peer vanishes while holding a distributed group. The controller must
// return an error promptly — never hang on a pipe that will never close
// (the DSL-disconnect case of §3.6.2).
func TestWorkerDeathMidRunFailsFast(t *testing.T) {
	registerSlowUnit()
	net := simnet.New()
	ctl := newService(t, net, "controller", Options{})
	worker := newService(t, net, "worker", Options{})

	// Wave -> [Slow] -> Grapher, the Slow group on the worker.
	g := figure1(t, policy.NameParallel)
	gt := g.Find("GroupTask")
	gt.Group.Find("Gaussian").Unit = slowUnitName // block inside the group
	plan := &policy.Plan{Kind: policy.KindParallel, Replicas: []string{"worker"}}
	peers := map[string]PeerRef{"worker": {ID: "worker", Addr: worker.Addr()}}

	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := ctl.RunDistributed(context.Background(), g, "GroupTask", plan, peers,
			DistOptions{Iterations: 4, Seed: 1})
		done <- outcome{err}
	}()

	// Let the despatch land and the first datum reach the blocked unit,
	// then kill the worker and sever its links.
	time.Sleep(100 * time.Millisecond)
	workerAddr := worker.Addr()
	worker.Close()
	net.Cut(workerAddr)

	select {
	case out := <-done:
		if out.err == nil {
			t.Fatal("controller reported success despite worker death")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("controller hung after worker death")
	}
}

// TestCancelRemoteStopsBlockedJob verifies the cancellation path: a
// despatched job stuck in a unit is cancelled via the control channel and
// reports a canceled state.
func TestCancelRemoteStopsBlockedJob(t *testing.T) {
	registerSlowUnit()
	tr := newInProc(t)
	ctl := newService(t, tr, "controller", Options{})
	worker := newService(t, tr, "worker", Options{})

	body := buildSlowBody(t)
	pipe, _, err := ctl.Host().OpenInput("sink-cancel", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	job, err := ctl.Despatch(RemotePart{
		Peer:       PeerRef{ID: "worker", Addr: worker.Addr()},
		Body:       body,
		InLabels:   []string{"in-cancel"},
		OutTargets: []PipeTarget{{Label: "sink-cancel", Addr: ctl.Addr()}},
		Iterations: 1,
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	// Feed one datum so the slow unit is genuinely mid-Process.
	out, err := ctl.Host().BindOutput(job.InAds[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(&types.Const{Value: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	if err := ctl.CancelRemote(job); err != nil {
		t.Fatal(err)
	}
	// Wait must surface the cancellation as an error.
	waitDone := make(chan error, 1)
	go func() {
		_, err := ctl.WaitRemote(job)
		waitDone <- err
	}()
	select {
	case err := <-waitDone:
		if err == nil {
			t.Fatal("cancelled job reported success")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("WaitRemote hung after cancel")
	}
	out.Close()
}

// TestDespatchToCutLinkFails exercises dial-time failure: the target peer
// is unreachable (link severed before despatch).
func TestDespatchToCutLinkFails(t *testing.T) {
	registerSlowUnit()
	net := simnet.New()
	ctl := newService(t, net, "controller", Options{})
	worker := newService(t, net, "worker", Options{})
	net.Cut(worker.Addr())

	body := buildSlowBody(t)
	_, err := ctl.Despatch(RemotePart{
		Peer:       PeerRef{ID: "worker", Addr: worker.Addr()},
		Body:       body,
		InLabels:   []string{"in-cut"},
		OutTargets: []PipeTarget{{Label: "sink-cut", Addr: ctl.Addr()}},
		Iterations: 1,
	}, "")
	if err == nil {
		t.Fatal("despatch over cut link succeeded")
	}
}

// buildSlowBody is a one-task group body around the blocking unit.
func buildSlowBody(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.New("slowbody")
	g.MustAdd(&taskgraph.Task{Name: "Slow", Unit: slowUnitName, In: 1, Out: 1})
	g.ExternalIn = []taskgraph.Endpoint{{Task: "Slow", Node: 0}}
	g.ExternalOut = []taskgraph.Endpoint{{Task: "Slow", Node: 0}}
	return g
}

// newInProc gives the cancel test a fresh in-process transport.
func newInProc(t *testing.T) jxtaserve.Transport {
	t.Helper()
	return jxtaserve.NewInProc()
}

// TestIdleGateRefusesWork is the §3.7 screensaver model: a donor whose
// owner is active refuses new jobs until idle again.
func TestIdleGateRefusesWork(t *testing.T) {
	registerSlowUnit()
	tr := newInProc(t)
	ctl := newService(t, tr, "controller", Options{})
	worker := newService(t, tr, "worker", Options{})

	if !worker.Available() {
		t.Fatal("fresh worker should be available")
	}
	worker.SetAvailable(false)
	body := buildSlowBody(t)
	pipe, _, err := ctl.Host().OpenInput("idle-sink", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	part := RemotePart{
		Peer:       PeerRef{ID: "worker", Addr: worker.Addr()},
		Body:       body,
		InLabels:   []string{"idle-in"},
		OutTargets: []PipeTarget{{Label: "idle-sink", Addr: ctl.Addr()}},
		Iterations: 1,
	}
	if _, err := ctl.Despatch(part, ""); err == nil {
		t.Fatal("busy worker accepted work")
	}
	// The screensaver comes on; work flows again.
	worker.SetAvailable(true)
	job, err := ctl.Despatch(part, "")
	if err != nil {
		t.Fatalf("idle worker refused work: %v", err)
	}
	out, err := ctl.Host().BindOutput(job.InAds[0])
	if err != nil {
		t.Fatal(err)
	}
	out.Close() // immediate EOF: zero data, job drains cleanly
	if _, err := ctl.WaitRemote(job); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

// TestParallelFailoverSkipsDeadReplica: one of two planned replicas is
// offline at despatch time; the farm proceeds on the survivor and every
// data item is still processed (§3.6.2's "as many computers that are
// available").
func TestParallelFailoverSkipsDeadReplica(t *testing.T) {
	tr := newInProc(t)
	ctl := newService(t, tr, "controller", Options{})
	live := newService(t, tr, "live", Options{})
	dead := newService(t, tr, "dead", Options{})
	deadAddr := dead.Addr()
	dead.Close()

	g := figure1(t, policy.NameParallel)
	plan := &policy.Plan{Kind: policy.KindParallel, Replicas: []string{"dead", "live"}}
	peers := map[string]PeerRef{
		"live": {ID: "live", Addr: live.Addr()},
		"dead": {ID: "dead", Addr: deadAddr},
	}
	const iters = 6
	res, err := ctl.RunDistributed(context.Background(), g, "GroupTask", plan, peers,
		DistOptions{Iterations: iters, Seed: 1})
	if err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	if res.Remote["live"]["Gaussian"] != iters {
		t.Errorf("survivor processed %d of %d", res.Remote["live"]["Gaussian"], iters)
	}
	if _, ok := res.Remote["dead"]; ok {
		t.Error("dead replica reported work")
	}
}

// TestParallelBusyReplicaSkipped: an idle-gated (owner-active) replica is
// skipped the same way a dead one is.
func TestParallelBusyReplicaSkipped(t *testing.T) {
	tr := newInProc(t)
	ctl := newService(t, tr, "controller", Options{})
	live := newService(t, tr, "live", Options{})
	busy := newService(t, tr, "busy", Options{})
	busy.SetAvailable(false)

	g := figure1(t, policy.NameParallel)
	plan := &policy.Plan{Kind: policy.KindParallel, Replicas: []string{"busy", "live"}}
	peers := map[string]PeerRef{
		"live": {ID: "live", Addr: live.Addr()},
		"busy": {ID: "busy", Addr: busy.Addr()},
	}
	res, err := ctl.RunDistributed(context.Background(), g, "GroupTask", plan, peers,
		DistOptions{Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatalf("run with busy replica failed: %v", err)
	}
	if res.Remote["live"]["Gaussian"] != 4 {
		t.Errorf("survivor work = %v", res.Remote)
	}
	// All replicas refusing is a hard error.
	live.SetAvailable(false)
	if _, err := ctl.RunDistributed(context.Background(), figure1(t, policy.NameParallel),
		"GroupTask", plan, peers, DistOptions{Iterations: 2, Seed: 2}); err == nil {
		t.Error("run with zero available replicas succeeded")
	}
}
