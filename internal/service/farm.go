// Chunked resilient farming with adaptive peer selection, speculative
// replicated despatch and result quorum — the untrusted-consumer-peer
// layer over the §3.6.2 checkpointed re-despatch path.
//
// Selection: candidates are ranked by the live health tracker (EWMA
// success score, then observed latency) instead of blind round-robin.
// Open-breaker peers are skipped entirely; a heartbeat-declared-dead
// peer whose cooldown has elapsed is pinged before it gets real work.
// Only when every usable candidate is exhausted does the farm force the
// best gated peer, so progress never stalls while budget remains.
//
// Speculation: with Speculate set, an attempt running past a
// quantile-based straggler threshold (p90 of the peer's observed
// attempt latencies × StragglerFactor, or SpeculateAfter before enough
// history exists) triggers a backup attempt of the same chunk on the
// next-healthiest peer under fresh pipe labels. The first clean result
// commits; losers are cancelled (their remote jobs too) and reaped
// before FarmChunks returns.
//
// Quorum: with Quorum = K > 1, each chunk is despatched to K peers up
// front and commits only when a majority (K/2+1) of returned result
// digests agree. Minority results are discarded and their peers take a
// byzantine health penalty — the paper's §3.8 "hostile peer" case made
// survivable without trusting any single volunteer.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"consumergrid/internal/capgroup"
	"consumergrid/internal/taskgraph"
	"consumergrid/internal/types"
)

// ErrNoQuorumCapacity reports a quorum farm that could not assemble —
// or widen — its electorate without drawing voters from outside the
// committed capability group. Out-of-group candidates are skipped, not
// mixed in: their results would carry incomparable digests. Callers
// distinguish it from ordinary attempt exhaustion with errors.Is.
var ErrNoQuorumCapacity = errors.New("no quorum capacity within capability group")

// FarmOptions configures FarmChunks.
type FarmOptions struct {
	// Body builds the group body to despatch — a fresh graph per
	// attempt, with exactly one external input and one external output
	// (the streamed farm shape).
	Body func() *taskgraph.Graph
	// Peers are the candidate workers. Selection orders them by live
	// health (score, then latency); the listed order only breaks ties
	// among peers with no history.
	Peers []PeerRef
	// CodeAddr is the module owner remote peers fetch from ("" disables).
	CodeAddr string
	// ChunkAttempts bounds despatch attempts per chunk (default
	// 2×len(Peers), minimum MaxAttempts).
	ChunkAttempts int
	// AttemptTimeout bounds one chunk attempt end to end (default 30s).
	AttemptTimeout time.Duration
	// InitialState primes the first chunk's RestoreState (resuming an
	// earlier farm).
	InitialState map[string][]byte
	// Heartbeat runs the failure detector against the attempt's peer,
	// cancelling the attempt when the peer is declared dead.
	Heartbeat bool
	// Seed is passed to every despatched part.
	Seed int64
	// AfterChunk, if set, runs after each chunk commits — a test hook for
	// injecting faults at deterministic points.
	AfterChunk func(chunk int)

	// Speculate enables the straggler detector: an attempt running past
	// the threshold launches a backup on the next-healthiest peer.
	Speculate bool
	// SpeculateAfter is the straggler threshold before the peer has
	// latency history (default 2s).
	SpeculateAfter time.Duration
	// StragglerFactor scales the peer's observed p90 attempt latency
	// into the threshold once history exists (default 2.0).
	StragglerFactor float64
	// MaxSpeculative bounds backup attempts per chunk (default 1).
	MaxSpeculative int
	// Quorum, when > 1, despatches each chunk to Quorum peers and
	// commits only a majority-agreed result digest. Overrides
	// Speculate for the chunk's launch strategy.
	Quorum int

	// Tenant names the submitting tenant: admission slots are charged to
	// its fair-share queue, the identity rides every despatch envelope,
	// and the farm's committed chunks and egress bytes land on
	// tenant-labelled series. Empty means DefaultTenant.
	Tenant string

	// Group, when set, commits the farm to one capability group: only
	// peers listed in GroupMembers are eligible for first despatch,
	// failover, speculation or quorum ballots, so every voter's result
	// digest comes from an interchangeable donor. A quorum that cannot
	// reach majority without leaving the group ends with
	// ErrNoQuorumCapacity instead of silently mixing groups. The group
	// key also rides every despatched part's span.
	Group string
	// GroupMembers is the member peer-ID set of Group; required when
	// Group is set.
	GroupMembers map[string]bool

	// ResumeKey names this farm in the daemon's crash-safe farm ledger.
	// With Options.StateDir set, every chunk commit journals its outputs
	// and carried state to the checkpoint; a restarted daemon running the
	// same farm (same ResumeKey, same chunks, same Body) skips the
	// committed prefix and replays its recorded outputs byte for byte,
	// so the resumed output stream equals an uninterrupted run's and no
	// committed chunk is despatched — or billed — twice. Empty disables
	// journaling for this farm.
	ResumeKey string

	// datums holds every chunk's canonical payloads (and digests),
	// computed once per farm; manifests is the data-tier state when the
	// controller runs the chunk store; tstats caches the tenant's farm
	// series; eligible is the group-filtered candidate slice selection
	// draws from (all of Peers when no group is committed). All are
	// farm-internal: FarmChunks populates them after applying defaults.
	datums    [][]manifestDatum
	manifests *farmManifests
	tstats    *tenantFarmStats
	eligible  []PeerRef
}

func (o FarmOptions) withFarmDefaults(res ResilienceOptions) FarmOptions {
	if o.ChunkAttempts <= 0 {
		o.ChunkAttempts = 2 * len(o.Peers)
		if o.ChunkAttempts < res.MaxAttempts {
			o.ChunkAttempts = res.MaxAttempts
		}
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 30 * time.Second
	}
	if o.SpeculateAfter <= 0 {
		o.SpeculateAfter = 2 * time.Second
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 2.0
	}
	if o.MaxSpeculative <= 0 {
		o.MaxSpeculative = 1
	}
	if o.Tenant == "" {
		o.Tenant = DefaultTenant
	}
	return o
}

// FarmReport summarises a FarmChunks run.
type FarmReport struct {
	// Outputs are the committed sink outputs, in chunk order.
	Outputs []types.Data
	// FinalState is the checkpoint after the last chunk, despatchable as
	// the next farm's InitialState.
	FinalState map[string][]byte
	// Redespatches counts non-speculative chunk attempts beyond each
	// chunk's first.
	Redespatches int64
	// WastedOutputs counts outputs discarded from failed, abandoned or
	// outvoted attempts.
	WastedOutputs int64
	// PeerChunks maps peer ID to committed chunk count.
	PeerChunks map[string]int

	// SpeculationLaunches counts backup attempts started past the
	// straggler threshold; SpeculationWins counts races a backup won;
	// SpeculationWaste counts outputs discarded because a racing
	// sibling committed first.
	SpeculationLaunches int64
	SpeculationWins     int64
	SpeculationWaste    int64
	// QuorumDisagreements counts quorum votes where a peer's result
	// digest disagreed with the committed majority.
	QuorumDisagreements int64
	// ResumedChunks counts chunks skipped because a restored journal
	// (FarmOptions.ResumeKey) had already committed them in a previous
	// process; their outputs were replayed, not recomputed.
	ResumedChunks int
}

// farmResult is one attempt's terminal report, delivered on the chunk
// coordinator's results channel.
type farmResult struct {
	idx      int
	got      []types.Data
	newState map[string][]byte
	err      error
}

// stragglerRetry is how soon a fired-but-skipped straggler timer is
// re-armed: the speculative launch was blocked (no admission slot, no
// free peer), not rejected, so the detector keeps watching.
const stragglerRetry = 25 * time.Millisecond

// farmInflight is the coordinator's record of one running attempt.
type farmInflight struct {
	peer   PeerRef
	cancel context.CancelFunc
	spec   bool
	start  time.Time
}

// FarmChunks streams chunks of work through the body on the given
// peers, surviving peer failure: each chunk is one despatch carrying
// the checkpoint state of everything committed so far, and a failed
// attempt is re-despatched to the next-healthiest peer with that same
// state, so the replay recomputes the chunk exactly and the committed
// output stream equals an uninterrupted run's. Outputs of failed
// attempts are discarded (counted as wasted work); a chunk commits only
// when its attempt returned cleanly and produced one output per input —
// or, under Quorum, when a majority of attempts agree on the result
// digest. Every speculative or outvoted loser is cancelled remotely and
// reaped before FarmChunks returns.
func (s *Service) FarmChunks(ctx context.Context, chunks [][]types.Data, opts FarmOptions) (*FarmReport, error) {
	if opts.Body == nil {
		return nil, fmt.Errorf("service: FarmChunks needs a Body")
	}
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("service: FarmChunks needs at least one peer")
	}
	if opts.Quorum > len(opts.Peers) {
		// One peer, one vote: a majority of Quorum/2+1 distinct voters can
		// never form, so reject the configuration up front instead of
		// burning every chunk's attempt budget discovering it.
		return nil, fmt.Errorf("service: FarmChunks Quorum %d exceeds %d peers — majority unreachable",
			opts.Quorum, len(opts.Peers))
	}
	// A committed group narrows the eligible candidates before any
	// despatch: out-of-group peers are invisible to selection, failover,
	// speculation and quorum ballots alike. A quorum that cannot seat
	// its electorate inside the group fails fast, same reasoning as the
	// peer-count check above.
	opts.eligible = opts.Peers
	if opts.Group != "" {
		opts.eligible = nil
		for _, p := range opts.Peers {
			if opts.GroupMembers[p.ID] {
				opts.eligible = append(opts.eligible, p)
			}
		}
		if len(opts.eligible) == 0 {
			return nil, fmt.Errorf("service: FarmChunks committed to group %s but no candidate peer is a member",
				opts.Group)
		}
		if opts.Quorum > len(opts.eligible) {
			capgroup.CountQuorumCapacity()
			return nil, fmt.Errorf("service: FarmChunks Quorum %d exceeds the %d members of group %s: %w",
				opts.Quorum, len(opts.eligible), opts.Group, ErrNoQuorumCapacity)
		}
	}
	opts = opts.withFarmDefaults(s.res)
	// Register with the admission scheduler before any slot is taken: a
	// draining daemon refuses the farm here (ErrDraining), while farms
	// registered before the drain keep acquiring slots for their
	// remaining chunks and finish normally.
	if err := s.admit.beginFarm(opts.Tenant); err != nil {
		return nil, err
	}
	defer s.admit.endFarm()
	opts.tstats = s.tenantFarm(opts.Tenant)
	opts.tstats.farms.Inc()
	// Canonically encode every datum once: the payloads feed the digests,
	// the attempt streams, and (data tier on) the pinned chunks and ring
	// replicas — so re-despatches and speculative backups never re-pay
	// the marshal, and a chunk's identity is fixed before attempt one.
	var err error
	if opts.datums, err = digestFarmChunks(chunks); err != nil {
		return nil, err
	}
	if s.chunks != nil {
		opts.manifests = s.prepareFarmManifests(opts.datums)
		defer opts.manifests.release()
	}
	farmID := s.nextRunID.Add(1)
	report := &FarmReport{PeerChunks: make(map[string]int)}
	state := opts.InitialState

	// Resume: a journal restored from a checkpoint replays the
	// committed prefix — outputs byte for byte, carried state intact —
	// and the despatch loop starts at the first uncommitted chunk.
	resumeFrom := 0
	if opts.ResumeKey != "" {
		if j := s.farms.resume(opts.ResumeKey); j != nil && j.committed <= len(chunks) {
			for _, ob := range j.outputs {
				d, err := types.Unmarshal(ob)
				if err != nil {
					return report, fmt.Errorf("service: replaying journal %q: %w", opts.ResumeKey, err)
				}
				report.Outputs = append(report.Outputs, d)
			}
			if len(j.state) > 0 {
				state = j.state
			}
			resumeFrom = j.committed
			report.ResumedChunks = j.committed
			s.farms.begin(opts.ResumeKey, j)
		} else {
			s.farms.begin(opts.ResumeKey, nil)
		}
	}

	// losers reaps abandoned racing attempts: they are cancelled, keep
	// running until the cancel lands, and must be accounted (waste,
	// admission slots) before the farm returns.
	var losers sync.WaitGroup
	defer losers.Wait()

	for c := resumeFrom; c < len(chunks); c++ {
		chunk := chunks[c]
		got, newState, peerID, err := func() ([]types.Data, map[string][]byte, string, error) {
			chunksInflight.Add(1)
			defer chunksInflight.Add(-1)
			if opts.Quorum > 1 {
				return s.runChunkQuorum(ctx, chunk, state, farmID, c, opts, report, &losers)
			}
			return s.runChunkSpeculative(ctx, chunk, state, farmID, c, opts, report, &losers)
		}()
		if err != nil {
			return report, err
		}
		report.Outputs = append(report.Outputs, got...)
		if len(newState) > 0 {
			state = newState
		}
		report.PeerChunks[peerID]++
		chunksCommitted.Inc()
		opts.tstats.chunks.Inc()
		if opts.ResumeKey != "" {
			// Journal the commit, then make it durable before AfterChunk
			// (the chaos tests crash there): a kill after this point
			// resumes past this chunk instead of re-running it.
			marshalled := make([][]byte, 0, len(got))
			for _, d := range got {
				p, merr := types.Marshal(d)
				if merr != nil {
					return report, fmt.Errorf("service: journaling chunk %d: %w", c, merr)
				}
				marshalled = append(marshalled, p)
			}
			s.farms.commit(opts.ResumeKey, marshalled, state)
			if s.opts.StateDir != "" {
				if cerr := s.CheckpointNow(); cerr != nil {
					s.logf("service: farm %q chunk %d checkpoint: %v", opts.ResumeKey, c, cerr)
				}
			}
		}
		if opts.AfterChunk != nil {
			opts.AfterChunk(c)
		}
	}
	report.FinalState = state
	if opts.ResumeKey != "" {
		// The farm is complete; drop the journal so a restart does not
		// replay a finished farm, and persist the removal.
		s.farms.finish(opts.ResumeKey)
		if s.opts.StateDir != "" {
			if cerr := s.CheckpointNow(); cerr != nil {
				s.logf("service: farm %q completion checkpoint: %v", opts.ResumeKey, cerr)
			}
		}
	}
	return report, nil
}

// nextFarmPeer picks the best candidate not already working this chunk.
// Usable (non-open-breaker) peers are tried in health rank order; a
// half-open peer claims its single probe slot, and needsProbe marks the
// ones whose last verdict was dead, so the launcher pings before
// trusting them. With allowGated set and nothing usable, the best
// open-breaker peer is forced — the attempt doubles as its probe.
func (s *Service) nextFarmPeer(peers []PeerRef, busy map[string]bool, allowGated bool) (ref PeerRef, needsProbe, ok bool) {
	byID := make(map[string]PeerRef, len(peers))
	ids := make([]string, 0, len(peers))
	for _, p := range peers {
		byID[p.ID] = p
		ids = append(ids, p.ID)
	}
	usable, gated := s.health.Rank(ids)
	for _, id := range usable {
		if busy[id] {
			continue
		}
		if admitted, probe := s.health.Admit(id); admitted {
			return byID[id], probe, true
		}
	}
	if allowGated {
		for _, id := range gated {
			if busy[id] {
				continue
			}
			return byID[id], false, true
		}
	}
	return PeerRef{}, false, false
}

// probeFarmPeer pings a formerly-dead peer once before real work is
// committed to it. A single unretried probe: the peer is either back or
// it is not.
func (s *Service) probeFarmPeer(peer PeerRef) error {
	start := time.Now()
	if _, err := s.host.RequestTimeout(peer.Addr, MethodPing, nil, nil, s.res.HeartbeatTimeout); err != nil {
		s.health.ReportFailure(peer.ID)
		return err
	}
	s.health.ReportSuccess(peer.ID, time.Since(start))
	return nil
}

// stragglerThreshold derives the speculation trigger for an attempt on
// the given peer: its observed p90 attempt latency scaled by
// StragglerFactor once history exists, the SpeculateAfter fallback
// before that.
func (s *Service) stragglerThreshold(peerID string, opts FarmOptions) time.Duration {
	if p90, ok := s.health.LatencyQuantile(peerID, 0.9); ok {
		d := time.Duration(float64(p90) * opts.StragglerFactor)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		return d
	}
	return opts.SpeculateAfter
}

// abandonRacers cancels every still-running attempt and hands their
// accounting to a reaper goroutine: waste is tallied and admission
// slots released as each loser drains, and the farm-level WaitGroup
// holds FarmChunks open until all are reaped. specRace marks waste
// caused by a speculative race (vs. a farm-level cancellation).
func (s *Service) abandonRacers(inflight map[int]*farmInflight, results <-chan farmResult,
	report *FarmReport, losers *sync.WaitGroup, tenant string, specRace bool) {
	if len(inflight) == 0 {
		return
	}
	remaining := len(inflight)
	for _, fl := range inflight {
		fl.cancel()
	}
	losers.Add(1)
	go func() {
		defer losers.Done()
		for i := 0; i < remaining; i++ {
			r := <-results
			s.admit.release(tenant)
			n := int64(len(r.got))
			atomic.AddInt64(&report.WastedOutputs, n)
			s.resStats.WastedItems.Add(n)
			if specRace {
				atomic.AddInt64(&report.SpeculationWaste, n)
				s.resStats.SpeculationWaste.Add(n)
			}
		}
	}()
}

// runChunkSpeculative despatches one chunk with health-ranked failover
// and optional speculative backups; it returns the winning attempt's
// outputs, new checkpoint state and peer.
func (s *Service) runChunkSpeculative(ctx context.Context, chunk []types.Data,
	state map[string][]byte, farmID int64, c int, opts FarmOptions,
	report *FarmReport, losers *sync.WaitGroup) ([]types.Data, map[string][]byte, string, error) {

	// Buffered past the launch budget so attempt goroutines never block
	// on delivery, even after the coordinator has moved on.
	results := make(chan farmResult, opts.ChunkAttempts+opts.MaxSpeculative+2)
	inflight := make(map[int]*farmInflight)
	busy := make(map[string]bool)
	attemptsUsed, launches, specLaunched, nextIdx := 0, 0, 0, 0

	var straggler *time.Timer
	var stragglerC <-chan time.Time
	defer func() {
		if straggler != nil {
			straggler.Stop()
		}
	}()

	// launchOne starts the chunk on the best admitted candidate. A
	// formerly-dead peer is pinged first; a failed probe consumes an
	// attempt and moves to the next candidate. Speculative launches are
	// opportunistic: they skip (not fail) when no slot or peer is free.
	launchOne := func(spec bool) (bool, error) {
		for attemptsUsed < opts.ChunkAttempts {
			peer, needsProbe, ok := s.nextFarmPeer(opts.eligible, busy, !spec)
			if !ok {
				return false, nil
			}
			if spec {
				if !s.admit.tryAcquire(opts.Tenant) {
					return false, nil
				}
			} else if err := s.admit.acquire(ctx, s.shutdown, opts.Tenant); err != nil {
				return false, err
			}
			if needsProbe {
				if err := s.probeFarmPeer(peer); err != nil {
					s.admit.release(opts.Tenant)
					attemptsUsed++
					s.logf("service: farm %d chunk %d probe of %s failed: %v", farmID, c, peer.ID, err)
					continue
				}
			}
			idx := nextIdx
			nextIdx++
			attemptsUsed++
			if !spec {
				if launches > 0 {
					report.Redespatches++
					s.resStats.Redespatches.Inc()
				}
				launches++
			}
			actx, cancel := context.WithCancel(ctx)
			fl := &farmInflight{peer: peer, cancel: cancel, spec: spec, start: time.Now()}
			inflight[idx] = fl
			busy[peer.ID] = true
			go func() {
				got, newState, err := s.farmAttempt(actx, fl.peer, chunk, state, farmID, c, idx, opts)
				cancel()
				results <- farmResult{idx: idx, got: got, newState: newState, err: err}
			}()
			if opts.Speculate {
				if straggler != nil {
					straggler.Stop()
				}
				straggler = time.NewTimer(s.stragglerThreshold(peer.ID, opts))
				stragglerC = straggler.C
			}
			return true, nil
		}
		return false, nil
	}

	for {
		if len(inflight) == 0 {
			launched, err := launchOne(false)
			if err != nil {
				return nil, nil, "", err
			}
			if !launched {
				return nil, nil, "", fmt.Errorf("service: farm chunk %d failed after %d attempts", c, attemptsUsed)
			}
		}
		select {
		case <-ctx.Done():
			s.abandonRacers(inflight, results, report, losers, opts.Tenant, false)
			return nil, nil, "", ctx.Err()
		case <-stragglerC:
			stragglerC = nil
			if specLaunched < opts.MaxSpeculative && len(inflight) > 0 {
				launched, _ := launchOne(true)
				if launched {
					specLaunched++
					report.SpeculationLaunches++
					s.resStats.SpeculationLaunches.Inc()
				} else if attemptsUsed < opts.ChunkAttempts {
					// Skipped, not spent: no admission slot or free peer
					// right now. Re-arm shortly — a slot or a half-open
					// peer may free while the straggler is still running.
					straggler.Reset(stragglerRetry)
					stragglerC = straggler.C
				}
			}
		case r := <-results:
			fl := inflight[r.idx]
			delete(inflight, r.idx)
			delete(busy, fl.peer.ID)
			s.admit.release(opts.Tenant)
			if r.err == nil && len(r.got) == len(chunk) {
				s.health.ReportSuccess(fl.peer.ID, time.Since(fl.start))
				if opts.manifests != nil {
					// The winner materialised this chunk's digests; later
					// manifests can offer it as a peer fetch source.
					opts.manifests.recordResolved(c, fl.peer.Addr)
				}
				if fl.spec {
					report.SpeculationWins++
					s.resStats.SpeculationWins.Inc()
				}
				s.abandonRacers(inflight, results, report, losers, opts.Tenant, true)
				return r.got, r.newState, fl.peer.ID, nil
			}
			s.health.ReportFailure(fl.peer.ID)
			n := int64(len(r.got))
			atomic.AddInt64(&report.WastedOutputs, n)
			s.resStats.WastedItems.Add(n)
			s.logf("service: farm %d chunk %d attempt %d on %s failed (%d/%d outputs): %v",
				farmID, c, r.idx, fl.peer.ID, len(r.got), len(chunk), r.err)
		}
	}
}

// runChunkQuorum despatches one chunk to Quorum peers concurrently and
// commits only a majority-agreed result digest. Fast failures are
// replaced from the remaining candidates while the attempt budget
// lasts; the vote happens once every launched attempt has resolved, so
// the outcome is independent of arrival order. Under a tight admission
// budget the k voters ballot in smaller concurrent batches rather than
// all at once — prior ballots stay live across batches, so the vote is
// unchanged, and the chunk never blocks on a slot while holding one. An inconclusive vote
// (all attempts resolved, no digest at majority) widens the electorate
// by one fresh voter per pass — prior ballots stay live, so an honest
// early voter can still anchor the eventual majority — and ends the
// chunk when neither budget nor candidates remain. Peers whose digest
// loses the vote, or blocks a terminal one, take the byzantine penalty;
// wasted outputs are tallied exactly once, at commit or final failure.
func (s *Service) runChunkQuorum(ctx context.Context, chunk []types.Data,
	state map[string][]byte, farmID int64, c int, opts FarmOptions,
	report *FarmReport, losers *sync.WaitGroup) ([]types.Data, map[string][]byte, string, error) {

	k := opts.Quorum
	majority := k/2 + 1
	results := make(chan farmResult, opts.ChunkAttempts+k+2)
	inflight := make(map[int]*farmInflight)
	// busy excludes a chunk's in-flight AND already-successful peers
	// from re-selection: one peer, one vote.
	busy := make(map[string]bool)
	attemptsUsed, nextIdx := 0, 0

	type vote struct {
		peer    PeerRef
		got     []types.Data
		state   map[string][]byte
		digest  string
		elapsed time.Duration
	}
	var successes []vote

	launchOne := func() (bool, error) {
		for attemptsUsed < opts.ChunkAttempts {
			// Gated peers are forced only when the chunk would otherwise
			// fail outright — never to top up a quorum.
			allowGated := len(successes) == 0 && len(inflight) == 0
			peer, needsProbe, ok := s.nextFarmPeer(opts.eligible, busy, allowGated)
			if !ok {
				return false, nil
			}
			// Deadlock discipline (same as the speculative path): block
			// for a slot only while holding none. Votes still in flight
			// hold slots that this very loop releases when it drains
			// results, so a blocking acquire here would be hold-and-wait
			// — with a budget below k, or several quorum farms racing,
			// the despatch plane would seize. Top-ups past the first
			// voter are opportunistic instead: skip now, drain a result,
			// retry with the freed slot.
			if len(inflight) > 0 {
				if !s.admit.tryAcquire(opts.Tenant) {
					return false, nil
				}
			} else if err := s.admit.acquire(ctx, s.shutdown, opts.Tenant); err != nil {
				return false, err
			}
			if needsProbe {
				if err := s.probeFarmPeer(peer); err != nil {
					s.admit.release(opts.Tenant)
					attemptsUsed++
					continue
				}
			}
			idx := nextIdx
			nextIdx++
			attemptsUsed++
			if idx >= k {
				report.Redespatches++
				s.resStats.Redespatches.Inc()
			}
			actx, cancel := context.WithCancel(ctx)
			fl := &farmInflight{peer: peer, cancel: cancel, start: time.Now()}
			inflight[idx] = fl
			busy[peer.ID] = true
			go func() {
				got, newState, err := s.farmAttempt(actx, fl.peer, chunk, state, farmID, c, idx, opts)
				cancel()
				results <- farmResult{idx: idx, got: got, newState: newState, err: err}
			}()
			return true, nil
		}
		return false, nil
	}

	for {
		// Top up toward k concurrent votes while candidates and budget
		// remain.
		for len(successes)+len(inflight) < k {
			launched, err := launchOne()
			if err != nil {
				s.abandonRacers(inflight, results, report, losers, opts.Tenant, false)
				return nil, nil, "", err
			}
			if !launched {
				break
			}
		}
		if len(inflight) == 0 {
			// Every launched attempt has resolved: vote.
			counts := make(map[string]int)
			for _, v := range successes {
				counts[v.digest]++
			}
			bestDigest, best := "", 0
			for d, n := range counts {
				if n > best || (n == best && d < bestDigest) {
					bestDigest, best = d, n
				}
			}
			if best >= majority {
				var winner *vote
				for i := range successes {
					v := &successes[i]
					if v.digest == bestDigest {
						s.health.ReportSuccess(v.peer.ID, v.elapsed)
						if winner == nil {
							winner = v
							continue
						}
						// Agreeing duplicates are intentional redundancy,
						// still discarded work.
						n := int64(len(v.got))
						atomic.AddInt64(&report.WastedOutputs, n)
						s.resStats.WastedItems.Add(n)
					} else {
						s.health.ReportByzantine(v.peer.ID)
						report.QuorumDisagreements++
						s.resStats.QuorumDisagreements.Inc()
						n := int64(len(v.got))
						atomic.AddInt64(&report.WastedOutputs, n)
						s.resStats.WastedItems.Add(n)
						s.logf("service: farm %d chunk %d quorum: peer %s disagreed with majority",
							farmID, c, v.peer.ID)
					}
				}
				s.resStats.QuorumCommits.Inc()
				return winner.got, winner.state, winner.peer.ID, nil
			}
			// Inconclusive vote. While budget remains, widen the
			// electorate by one fresh voter — existing votes stay live
			// (they may yet join a majority), and their peers stay busy,
			// so every pass either adds a voter or ends the chunk.
			if attemptsUsed < opts.ChunkAttempts {
				launched, err := launchOne()
				if err != nil {
					return nil, nil, "", err
				}
				if launched {
					continue
				}
			}
			// Terminal: no budget or no fresh candidate. The voters
			// outside the plurality kept quorum from forming — they take
			// the byzantine penalty exactly as a committed round's
			// minority would, and every ballot's outputs are waste.
			for _, v := range successes {
				n := int64(len(v.got))
				atomic.AddInt64(&report.WastedOutputs, n)
				s.resStats.WastedItems.Add(n)
				if v.digest != bestDigest {
					s.health.ReportByzantine(v.peer.ID)
					report.QuorumDisagreements++
					s.resStats.QuorumDisagreements.Inc()
					s.logf("service: farm %d chunk %d quorum: peer %s blocked quorum with minority digest",
						farmID, c, v.peer.ID)
				}
			}
			if opts.Group != "" && len(opts.eligible) < len(opts.Peers) && attemptsUsed < opts.ChunkAttempts {
				// Budget remained but every fresh in-group voter is spent:
				// the out-of-group candidates were deliberately skipped
				// rather than mixed into the electorate, and the typed
				// error says so.
				capgroup.CountQuorumCapacity()
				return nil, nil, "", fmt.Errorf(
					"service: farm chunk %d: widening needs a fresh voter but group %s has none left (%d out-of-group candidates skipped): %w",
					c, opts.Group, len(opts.Peers)-len(opts.eligible), ErrNoQuorumCapacity)
			}
			return nil, nil, "", fmt.Errorf(
				"service: farm chunk %d found no quorum of %d among %d results after %d attempts",
				c, majority, len(successes), attemptsUsed)
		}
		select {
		case <-ctx.Done():
			s.abandonRacers(inflight, results, report, losers, opts.Tenant, false)
			return nil, nil, "", ctx.Err()
		case r := <-results:
			fl := inflight[r.idx]
			delete(inflight, r.idx)
			s.admit.release(opts.Tenant)
			if r.err == nil && len(r.got) == len(chunk) {
				digest, derr := resultDigest(r.got, r.newState)
				if derr == nil {
					successes = append(successes, vote{
						peer: fl.peer, got: r.got, state: r.newState,
						digest: digest, elapsed: time.Since(fl.start),
					})
					if opts.manifests != nil {
						// A voter resolved the chunk's digests even before
						// the vote commits — later quorum siblings can fetch
						// from it instead of the controller.
						opts.manifests.recordResolved(c, fl.peer.Addr)
					}
					// Peer stays busy: it has voted.
					continue
				}
				r.err = derr
			}
			delete(busy, fl.peer.ID)
			s.health.ReportFailure(fl.peer.ID)
			n := int64(len(r.got))
			atomic.AddInt64(&report.WastedOutputs, n)
			s.resStats.WastedItems.Add(n)
			s.logf("service: farm %d chunk %d quorum attempt %d on %s failed (%d/%d outputs): %v",
				farmID, c, r.idx, fl.peer.ID, len(r.got), len(chunk), r.err)
		}
	}
}

// farmAttempt runs one chunk on one peer: despatch with restored state,
// stream the chunk in, collect outputs until the sink pipe closes, then
// fetch the completion state. Every pipe label is scoped to the
// (farm, chunk, attempt) triple so residue from a lost attempt can
// never leak into a later one — racing speculative attempts of the same
// chunk get distinct attempt indices and therefore disjoint pipes.
func (s *Service) farmAttempt(ctx context.Context, peer PeerRef, chunk []types.Data,
	state map[string][]byte, farmID int64, c, a int, opts FarmOptions) ([]types.Data, map[string][]byte, error) {

	attemptCtx, cancel := context.WithTimeout(ctx, opts.AttemptTimeout)
	defer cancel()

	// The failure detector starts before the despatch so a peer that
	// dies during (or refuses) the handshake still earns its dead
	// verdict, opening the breaker for future selection.
	if opts.Heartbeat {
		stop := s.StartPeerHeartbeat(peer, cancel)
		defer stop()
	}

	prefix := fmt.Sprintf("farm/%s/%d/c%d/a%d", s.opts.PeerID, farmID, c, a)
	pipe, _, err := s.host.OpenInput(prefix+"/out", len(chunk)+1)
	if err != nil {
		return nil, nil, err
	}
	defer pipe.Close()
	pipe.ExpectEOFs(1)

	job, err := s.despatchCtx(attemptCtx, RemotePart{
		Peer:         peer,
		Body:         opts.Body(),
		InLabels:     []string{prefix + "/in"},
		OutTargets:   []PipeTarget{{Label: prefix + "/out", Addr: s.Addr()}},
		Iterations:   1,
		Seed:         opts.Seed,
		RestoreState: state,
		Tenant:       opts.Tenant,
		Group:        opts.Group,
	}, opts.CodeAddr)
	if err != nil {
		return nil, nil, err
	}

	out, err := s.host.BindOutput(job.InAds[0])
	if err != nil {
		return nil, nil, err
	}
	// Feed the chunk. With the data tier negotiated on both ends, one
	// manifest frame replaces the payload stream: the donor resolves the
	// digests through its cache, the ring, sibling donors, and only then
	// the controller — that ladder, not this loop, is now the data plane.
	// A legacy peer (or a farm on a controller without the tier) still
	// gets the payloads streamed, checking the context between items so
	// an abandoned attempt stops feeding the loser promptly.
	var sendErr error
	if opts.manifests != nil && job.ChunkCapable {
		if attemptCtx.Err() == nil {
			payload := opts.manifests.manifestFor(c, peer.Addr)
			if sendErr = out.SendManifest(payload); sendErr == nil {
				s.resStats.FarmEgressBytes.Add(int64(len(payload)))
				opts.tstats.egress.Add(int64(len(payload)))
			}
		}
	} else {
		for _, d := range opts.datums[c] {
			if attemptCtx.Err() != nil {
				break
			}
			if sendErr = out.SendRaw(d.payload); sendErr != nil {
				break
			}
			s.resStats.FarmEgressBytes.Add(int64(len(d.payload)))
			opts.tstats.egress.Add(int64(len(d.payload)))
		}
	}
	// Abandoned mid-stream: cancel the remote job before signalling
	// end-of-stream — the worker must not mistake the truncated input
	// for a short-but-complete chunk and commit a partial result as
	// done. CancelRemote is a synchronous RPC, so the verdict lands
	// before the EOF does.
	cancelled := false
	if attemptCtx.Err() != nil {
		s.CancelRemote(job)
		cancelled = true
	}
	out.Close()

	// Collect until the remote signals EOF (pipe.C closes) or the
	// attempt dies. A worker that vanishes breaks its output conn, which
	// counts as its EOF, so this loop always terminates.
	var got []types.Data
collect:
	for {
		select {
		case d, ok := <-pipe.C:
			if !ok {
				break collect
			}
			got = append(got, d)
		case <-attemptCtx.Done():
			break collect
		}
	}
	if err := attemptCtx.Err(); err != nil {
		// Abandoned attempt (timeout, dead verdict, or a racing sibling
		// committed first): tell the peer to stop, best effort.
		if !cancelled {
			s.CancelRemote(job)
		}
		return got, nil, err
	}
	if sendErr != nil {
		return got, nil, sendErr
	}
	_, newState, err := s.waitRemoteStateCtx(attemptCtx, job)
	if err != nil {
		return got, nil, err
	}
	return got, newState, nil
}
