package service

// Capability-group farm discipline: a farm committed to a group must
// never despatch, speculate or seat a quorum voter outside it, and a
// quorum the group cannot carry ends with the typed
// ErrNoQuorumCapacity instead of silently widening across groups.

import (
	"context"
	"errors"
	"testing"
	"time"

	"consumergrid/internal/capgroup"
	"consumergrid/internal/health"
	"consumergrid/internal/simnet"
	"consumergrid/internal/taskgraph"
)

// groupFarm runs FarmChunks with the chaos body and a committed group.
func groupFarm(t *testing.T, ctl *Service, fo FarmOptions) (*FarmReport, error) {
	t.Helper()
	fo.Body = func() *taskgraph.Graph { return accumBody(t) }
	if fo.AttemptTimeout == 0 {
		fo.AttemptTimeout = 10 * time.Second
	}
	return ctl.FarmChunks(context.Background(), chaosChunks(chaosSeed, 2, 3), fo)
}

// TestGroupFarmRestrictsDespatch: a group-committed farm routes every
// chunk to group members only — the out-of-group candidates stay idle
// even though they are listed, healthy and stronger-ranked.
func TestGroupFarmRestrictsDespatch(t *testing.T) {
	n := simnet.New()
	ctl, peers := quorumNet(t, n, "gf-", health.Options{})
	rep, err := groupFarm(t, ctl, FarmOptions{
		Peers:        peers,
		Group:        "cg-test00000001",
		GroupMembers: map[string]bool{"gf-w1": true, "gf-w2": true},
	})
	if err != nil {
		t.Fatalf("group farm failed: %v", err)
	}
	for peer, nChunks := range rep.PeerChunks {
		if peer != "gf-w1" && peer != "gf-w2" {
			t.Errorf("out-of-group peer %s committed %d chunks", peer, nChunks)
		}
	}
}

// TestGroupFarmNoMembers: committing to a group none of the candidates
// belong to is a configuration error, refused before any despatch.
func TestGroupFarmNoMembers(t *testing.T) {
	n := simnet.New()
	ctl, peers := quorumNet(t, n, "gn-", health.Options{})
	_, err := groupFarm(t, ctl, FarmOptions{
		Peers:        peers,
		Group:        "cg-test00000002",
		GroupMembers: map[string]bool{"someone-else": true},
	})
	if err == nil {
		t.Fatal("memberless group farm was accepted")
	}
}

// TestGroupQuorumFailsFastWhenGroupTooSmall is the satellite
// regression's fail-fast half: Quorum 3 passes the whole-pool peer
// count check (4 candidates) but the committed group seats only 2, so
// the farm must end with ErrNoQuorumCapacity before any despatch —
// not discover the shortfall chunk by chunk, and never widen onto the
// out-of-group candidates.
func TestGroupQuorumFailsFastWhenGroupTooSmall(t *testing.T) {
	n := simnet.New()
	ctl, peers := quorumNet(t, n, "gs-", health.Options{})
	before := capgroup.QuorumCapacityTotal()
	_, err := groupFarm(t, ctl, FarmOptions{
		Peers:        peers,
		Quorum:       3,
		Group:        "cg-test00000003",
		GroupMembers: map[string]bool{"gs-w1": true, "gs-w2": true},
	})
	if !errors.Is(err, ErrNoQuorumCapacity) {
		t.Fatalf("err = %v, want ErrNoQuorumCapacity", err)
	}
	if got := capgroup.QuorumCapacityTotal(); got != before+1 {
		t.Errorf("capgroup_quorum_capacity_errors_total moved %d -> %d, want +1", before, got)
	}
}

// TestGroupQuorumWideningSkipsOutOfGroup is the satellite regression's
// widening half: a 2-voter electorate splits 1-1 (one member is
// byzantine), the widening pass needs a fresh voter, and the only
// fresh candidates are outside the committed group. The old behaviour
// seated one of them — mixing incomparable digests into the ballot;
// now the farm must skip them and end with the typed
// ErrNoQuorumCapacity, leaving the out-of-group workers untouched.
func TestGroupQuorumWideningSkipsOutOfGroup(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("gw-ctl"), "gw-ctl", Options{
		Resilience: chaosResilience(),
	})
	var peers []PeerRef
	workers := map[string]*Service{}
	for _, label := range []string{"gw-w1", "gw-w2", "gw-w3", "gw-w4"} {
		w := newService(t, n.Peer(label), label, Options{})
		workers[label] = w
		peers = append(peers, PeerRef{ID: label, Addr: w.Addr()})
	}
	// gw-w2 lies on every payload: the two in-group ballots are a
	// guaranteed 1-1 split, forcing the widening pass.
	n.SetLinkFaults("gw-w2", simnet.LinkFaults{CorruptEvery: 1})

	before := capgroup.QuorumCapacityTotal()
	_, err := groupFarm(t, ctl, FarmOptions{
		Peers:        peers,
		Quorum:       2,
		Group:        "cg-test00000004",
		GroupMembers: map[string]bool{"gw-w1": true, "gw-w2": true},
	})
	if !errors.Is(err, ErrNoQuorumCapacity) {
		t.Fatalf("err = %v, want ErrNoQuorumCapacity", err)
	}
	if got := capgroup.QuorumCapacityTotal(); got != before+1 {
		t.Errorf("capgroup_quorum_capacity_errors_total moved %d -> %d, want +1", before, got)
	}
	// The out-of-group candidates were never consulted — no despatch,
	// no ballot, no probe-driven job.
	for _, label := range []string{"gw-w3", "gw-w4"} {
		if jobs := workers[label].Jobs(); len(jobs) != 0 {
			t.Errorf("out-of-group peer %s hosted %d jobs; the electorate leaked", label, len(jobs))
		}
	}
}
