package service

// The untrusted-peer harness: deterministic byzantine + dead-peer chaos
// under result quorum, speculative-despatch races with cancel
// propagation, health-gated peer selection, admission control, and
// mid-chunk cancellation. Everything runs on the seeded simnet so the
// fault schedules replay identically.

import (
	"context"
	"errors"
	"testing"
	"time"

	"consumergrid/internal/gateway"
	"consumergrid/internal/health"
	"consumergrid/internal/metrics"
	"consumergrid/internal/simnet"
	"consumergrid/internal/taskgraph"
)

// quorumNet builds a controller plus four workers with test-unique
// labels (the process-global metrics registry keys gauges by
// observer/peer, so labels must not collide across tests).
func quorumNet(t *testing.T, n *simnet.Network, prefix string, healthOpts health.Options) (ctl *Service, peers []PeerRef) {
	t.Helper()
	ctl = newService(t, n.Peer(prefix+"ctl"), prefix+"ctl", Options{
		Resilience: chaosResilience(),
		Health:     healthOpts,
	})
	for _, label := range []string{"w1", "w2", "w3", "w4"} {
		w := newService(t, n.Peer(prefix+label), prefix+label, Options{})
		peers = append(peers, PeerRef{ID: prefix + label, Addr: w.Addr()})
	}
	return ctl, peers
}

// TestChaosByzantineQuorum is the acceptance scenario: a seeded simnet
// with one byzantine peer (every pipe payload on its links silently
// corrupted) and one dead peer. A Quorum:3 farm must commit only
// majority-agreed outputs — identical to a clean run — while the
// byzantine peer's health score collapses below the suspicion threshold
// and the dead peer's breaker opens, all observable through the metrics
// registry.
func TestChaosByzantineQuorum(t *testing.T) {
	const nChunks, perChunk = 4, 5
	chunks := chaosChunks(chaosSeed, nChunks, perChunk)

	// Clean reference run: same topology, no faults, no quorum.
	refNet := simnet.New()
	refCtl, refPeers := quorumNet(t, refNet, "qref-", health.Options{})
	want := runChaosFarm(t, refCtl, refPeers, chunks, FarmOptions{})

	n := simnet.New()
	n.FaultSeed(7)
	ctl, peers := quorumNet(t, n, "q-", health.Options{})
	// q-w1 is byzantine: every pipe.data payload crossing its links is
	// corrupted in flight. q-w2 is dead before the farm starts.
	n.SetLinkFaults("q-w1", simnet.LinkFaults{CorruptEvery: 1})
	n.Kill("q-w2")

	rep := runChaosFarm(t, ctl, peers, chunks, FarmOptions{
		Quorum:    3,
		Heartbeat: true,
	})

	if n.Corrupted() == 0 {
		t.Fatal("byzantine fault injection never fired; the test exercised nothing")
	}
	assertSameOutputs(t, rep.Outputs, want.Outputs)

	snap := ctl.Resilience().Snapshot()
	if snap.QuorumCommits != int64(nChunks) {
		t.Errorf("quorum commits = %d, want %d", snap.QuorumCommits, nChunks)
	}
	if rep.QuorumDisagreements < 2 || snap.QuorumDisagreements != rep.QuorumDisagreements {
		t.Errorf("quorum disagreements = %d (report) / %d (stats), want >= 2 and equal",
			rep.QuorumDisagreements, snap.QuorumDisagreements)
	}
	if rep.PeerChunks["q-w1"] != 0 {
		t.Errorf("byzantine peer committed %d chunks", rep.PeerChunks["q-w1"])
	}

	// The byzantine penalty must have pushed q-w1 below the suspicion
	// threshold, and the dead peer's breaker must be open — asserted via
	// the registry gauges the /resilience page renders.
	score := metrics.Default().Gauge(
		metrics.Series("health_peer_score", "observer", "q-ctl", "peer", "q-w1")).Value()
	if score >= 0.5 {
		t.Errorf("byzantine peer score = %v, want < 0.5", score)
	}
	if !ctl.Health().Suspect("q-w1") {
		t.Error("byzantine peer not marked suspect")
	}
	breaker := metrics.Default().Gauge(
		metrics.Series("health_breaker_state", "observer", "q-ctl", "peer", "q-w2")).Value()
	if breaker != float64(health.Open) {
		t.Errorf("dead peer breaker gauge = %v, want %v (open)", breaker, float64(health.Open))
	}
	t.Logf("corrupted=%d disagreements=%d redespatches=%d wasted=%d peers=%v",
		n.Corrupted(), rep.QuorumDisagreements, rep.Redespatches, rep.WastedOutputs, rep.PeerChunks)
}

// TestFarmSkipsDeclaredDeadPeer is the regression for the consult-dead-
// peers bug: a peer the failure detector has declared dead must not be
// consulted by FarmChunks at all — no redespatches burned on it — until
// a successful probe revives it.
func TestFarmSkipsDeclaredDeadPeer(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("ds-ctl"), "ds-ctl", Options{
		Resilience: chaosResilience(),
		Health:     health.Options{OpenTimeout: 50 * time.Millisecond},
	})
	w1 := newService(t, n.Peer("ds-w1"), "ds-w1", Options{})
	w2 := newService(t, n.Peer("ds-w2"), "ds-w2", Options{})
	peers := []PeerRef{
		{ID: "ds-w1", Addr: w1.Addr()},
		{ID: "ds-w2", Addr: w2.Addr()},
	}

	// The detector declared ds-w1 dead (simulating an earlier heartbeat
	// verdict). The farm must route everything to ds-w2 first try.
	ctl.Health().ReportDead("ds-w1")
	chunks := chaosChunks(chaosSeed, 3, 4)
	rep := runChaosFarm(t, ctl, peers, chunks, FarmOptions{})
	if rep.PeerChunks["ds-w1"] != 0 {
		t.Errorf("dead peer was consulted: %v", rep.PeerChunks)
	}
	if rep.PeerChunks["ds-w2"] != 3 {
		t.Errorf("healthy peer chunks = %v, want all 3", rep.PeerChunks)
	}
	if rep.Redespatches != 0 {
		t.Errorf("skipping a dead peer burned %d redespatches", rep.Redespatches)
	}

	// After the breaker cooldown the peer is half-open but still flagged
	// dead, so selection must ping-probe it before trusting it with a
	// chunk; the probe succeeds and the peer serves again.
	time.Sleep(80 * time.Millisecond)
	rep2 := runChaosFarm(t, ctl, []PeerRef{{ID: "ds-w1", Addr: w1.Addr()}}, chunks, FarmOptions{})
	if rep2.PeerChunks["ds-w1"] != 3 {
		t.Errorf("revived peer chunks = %v, want all 3", rep2.PeerChunks)
	}
	if ctl.Health().State("ds-w1") != health.Closed {
		t.Errorf("revived peer breaker = %v, want closed", ctl.Health().State("ds-w1"))
	}
}

// TestSpeculationWinsAndCancelsLoser: a slow peer trips the straggler
// detector, the backup attempt on the fast peer wins, and the losing
// attempt's remote job is cancelled on the slow worker — cancel
// propagation for racing attempts.
func TestSpeculationWinsAndCancelsLoser(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("sp-ctl"), "sp-ctl", Options{Resilience: chaosResilience()})
	w1 := newService(t, n.Peer("sp-w1"), "sp-w1", Options{})
	w2 := newService(t, n.Peer("sp-w2"), "sp-w2", Options{})
	peers := []PeerRef{
		{ID: "sp-w1", Addr: w1.Addr()},
		{ID: "sp-w2", Addr: w2.Addr()},
	}
	// Every message on sp-w1's links crawls, so the first (stable-order)
	// attempt lands on sp-w1 and stalls past the threshold. The
	// threshold comfortably exceeds the despatch round-trip so the slow
	// worker has accepted its job before the race begins — the loser we
	// then expect to see cancelled.
	n.SetLinkFaults("sp-w1", simnet.LinkFaults{Latency: 30 * time.Millisecond})

	// 10 items × 30ms means sp-w1 is still streaming inputs when the
	// backup commits, so the cancel catches its job mid-flight.
	chunks := chaosChunks(chaosSeed, 1, 10)
	rep := runChaosFarm(t, ctl, peers, chunks, FarmOptions{
		Speculate:      true,
		SpeculateAfter: 200 * time.Millisecond,
	})
	if rep.SpeculationLaunches < 1 {
		t.Fatalf("straggler never triggered speculation: %+v", rep)
	}
	if rep.SpeculationWins < 1 || rep.PeerChunks["sp-w2"] != 1 {
		t.Fatalf("backup attempt did not win: %+v", rep)
	}
	if rep.Redespatches != 0 {
		t.Errorf("speculation counted as redespatch: %+v", rep)
	}

	// The loser's remote job on the slow worker must be cancelled, not
	// left running (its heartbeat goroutine is reaped by Close's leak
	// check, exercised in TestCloseReapsBackgroundGoroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var canceled bool
		for _, j := range w1.Jobs() {
			if j.State == gateway.Canceled {
				canceled = true
			}
		}
		if canceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("losing attempt's job never cancelled on sp-w1: %+v", w1.Jobs())
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap := ctl.Resilience().Snapshot()
	if snap.SpeculationLaunches != rep.SpeculationLaunches || snap.SpeculationWins != rep.SpeculationWins {
		t.Errorf("registry counters diverge from report: %+v vs %+v", snap, rep)
	}
}

// TestFarmContextCancelMidChunk: cancelling the farm's context mid-chunk
// returns promptly with the context error, commits nothing beyond the
// already-committed chunks, and leaves no attempt running (FarmChunks
// waits for its losers before returning).
func TestFarmContextCancelMidChunk(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("cc-ctl"), "cc-ctl", Options{Resilience: chaosResilience()})
	w1 := newService(t, n.Peer("cc-w1"), "cc-w1", Options{})
	peers := []PeerRef{{ID: "cc-w1", Addr: w1.Addr()}}
	// Slow the links so the cancel lands while chunk 1 is in flight.
	n.SetLinkFaults("cc-w1", simnet.LinkFaults{Latency: 10 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	const perChunk = 3
	chunks := chaosChunks(chaosSeed, 3, perChunk)
	start := time.Now()
	rep, err := ctl.FarmChunks(ctx, chunks, FarmOptions{
		Body:  func() *taskgraph.Graph { return accumBody(t) },
		Peers: peers,
		AfterChunk: func(c int) {
			if c == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancelled farm took %v to return", time.Since(start))
	}
	if len(rep.Outputs) != perChunk {
		t.Errorf("cancelled farm committed %d outputs, want exactly chunk 0's %d",
			len(rep.Outputs), perChunk)
	}
	// Every sender/attempt goroutine was reaped before FarmChunks
	// returned, so no job on the worker stays live.
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := false
		for _, j := range w1.Jobs() {
			if j.State != gateway.Done && j.State != gateway.Failed && j.State != gateway.Canceled {
				live = true
			}
		}
		if !live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("uncommitted job still live after cancel: %+v", w1.Jobs())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionControl exercises the despatch budget directly: shed
// mode refuses over-budget acquires with the typed overload error and
// counts the shed; blocking mode waits until a slot frees or the
// context dies.
func TestAdmissionControl(t *testing.T) {
	var sheds int
	a := newAdmission(1, true, "adm-test", nil, 0, func(string) { sheds++ })
	if err := a.acquire(context.Background(), nil, "alice"); err != nil {
		t.Fatal(err)
	}
	err := a.acquire(context.Background(), nil, "alice")
	var overload *OverloadError
	if !errors.As(err, &overload) || overload.Limit != 1 || overload.Tenant != "alice" {
		t.Fatalf("over-budget acquire = %v, want *OverloadError{Tenant:alice, Limit:1}", err)
	}
	if sheds != 1 {
		t.Errorf("shed counter = %d, want 1", sheds)
	}
	if a.tryAcquire("alice") {
		t.Error("tryAcquire succeeded over budget")
	}
	a.release("alice")
	if !a.tryAcquire("alice") {
		t.Error("tryAcquire failed with a free slot")
	}
	a.release("alice")

	b := newAdmission(1, false, "adm-test-b", nil, 0, nil)
	if err := b.acquire(context.Background(), nil, ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := b.acquire(ctx, nil, ""); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked acquire = %v, want deadline exceeded", err)
	}
	b.release("")
	if err := b.acquire(context.Background(), nil, ""); err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
	b.release("")

	var nilAdm *admission
	if err := nilAdm.acquire(context.Background(), nil, ""); err != nil {
		t.Fatalf("nil admission refused: %v", err)
	}
	nilAdm.release("")
}

// TestFarmShedsOverBudget: with a 1-slot shedding budget, the farm's
// single primary attempt fits, so farms still complete — but a direct
// second acquire observes the shed path end to end through service
// options.
func TestFarmShedsOverBudget(t *testing.T) {
	tr := simnet.New()
	ctl := newService(t, tr.Peer("sh-ctl"), "sh-ctl", Options{
		Resilience:            chaosResilience(),
		MaxInflightDespatches: 1,
		ShedDespatchOverload:  true,
	})
	w := newService(t, tr.Peer("sh-w1"), "sh-w1", Options{})

	rep := runChaosFarm(t, ctl, []PeerRef{{ID: "sh-w1", Addr: w.Addr()}},
		chaosChunks(chaosSeed, 2, 3), FarmOptions{})
	if len(rep.Outputs) != 6 {
		t.Fatalf("budgeted farm produced %d outputs", len(rep.Outputs))
	}

	// Hold the only slot; the next acquire must shed and count it.
	if err := ctl.admit.acquire(context.Background(), nil, ""); err != nil {
		t.Fatal(err)
	}
	var overload *OverloadError
	if err := ctl.admit.acquire(context.Background(), nil, ""); !errors.As(err, &overload) {
		t.Fatalf("held-budget acquire = %v, want *OverloadError", err)
	}
	ctl.admit.release("")
	if got := ctl.Resilience().Snapshot().DespatchSheds; got != 1 {
		t.Errorf("despatch sheds = %d, want 1", got)
	}
}

// TestQuorumInsufficientAgreement: with only one peer and Quorum:3 a
// majority of distinct voters is unreachable (one peer, one vote), so
// FarmChunks rejects the configuration up front — no despatches burned
// discovering the impossibility chunk by chunk.
func TestQuorumInsufficientAgreement(t *testing.T) {
	tr := simnet.New()
	ctl := newService(t, tr.Peer("qi-ctl"), "qi-ctl", Options{Resilience: chaosResilience()})
	w := newService(t, tr.Peer("qi-w1"), "qi-w1", Options{})

	_, err := ctl.FarmChunks(context.Background(), chaosChunks(chaosSeed, 1, 2), FarmOptions{
		Body:           func() *taskgraph.Graph { return accumBody(t) },
		Peers:          []PeerRef{{ID: "qi-w1", Addr: w.Addr()}},
		Quorum:         3,
		AttemptTimeout: 10 * time.Second,
	})
	if err == nil {
		t.Fatal("single-peer Quorum:3 farm committed without a majority")
	}
	if got := w.Jobs(); len(got) != 0 {
		t.Errorf("impossible quorum config still despatched %d jobs", len(got))
	}
}

// TestQuorumSplitVoteWidensAndCommits is the regression for the
// split-vote livelock: with Quorum:3 and two byzantine peers whose
// corruptions differ, the first round's three ballots split 1-1-1 with
// no digest at majority. The coordinator must widen the electorate to
// the fourth (honest) peer — keeping the honest first ballot live so
// the pair forms the majority — rather than re-voting the same
// deadlocked round forever.
func TestQuorumSplitVoteWidensAndCommits(t *testing.T) {
	const nChunks, perChunk = 2, 4
	chunks := chaosChunks(chaosSeed, nChunks, perChunk)

	refNet := simnet.New()
	refCtl, refPeers := quorumNet(t, refNet, "svref-", health.Options{})
	want := runChaosFarm(t, refCtl, refPeers, chunks, FarmOptions{})

	n := simnet.New()
	ctl, peers := quorumNet(t, n, "sv-", health.Options{})
	// sv-w2 and sv-w3 lie at different cadences, so their digests
	// disagree with the honest result AND with each other: the first
	// round (sv-w1..w3 in rank order) is a guaranteed three-way split.
	n.SetLinkFaults("sv-w2", simnet.LinkFaults{CorruptEvery: 1})
	n.SetLinkFaults("sv-w3", simnet.LinkFaults{CorruptEvery: 2})

	type outcome struct {
		rep *FarmReport
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := ctl.FarmChunks(context.Background(), chunks, FarmOptions{
			Body:           func() *taskgraph.Graph { return accumBody(t) },
			Peers:          peers,
			Quorum:         3,
			AttemptTimeout: 10 * time.Second,
		})
		done <- outcome{rep, err}
	}()
	var res outcome
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("split-vote quorum farm hung (livelock regression)")
	}
	if res.err != nil {
		t.Fatalf("split-vote farm failed: %v (report: %+v)", res.err, res.rep)
	}
	rep := res.rep
	assertSameOutputs(t, rep.Outputs, want.Outputs)
	if rep.PeerChunks["sv-w2"] != 0 || rep.PeerChunks["sv-w3"] != 0 {
		t.Errorf("byzantine peer committed a chunk: %v", rep.PeerChunks)
	}
	// Chunk 0's split round must have contributed BOTH byzantine ballots
	// (only a widened electorate votes them down together); a
	// non-widened commit would log at most one disagreement per chunk.
	if rep.QuorumDisagreements < 3 {
		t.Errorf("quorum disagreements = %d, want >= 3 (split round not widened?)",
			rep.QuorumDisagreements)
	}
	t.Logf("disagreements=%d redespatches=%d wasted=%d peers=%v",
		rep.QuorumDisagreements, rep.Redespatches, rep.WastedOutputs, rep.PeerChunks)
	// Waste is tallied exactly once per losing ballot, at commit time —
	// never re-counted per vote pass. Each chunk has at most 3 losing
	// ballots (two byzantine, one agreeing duplicate) of perChunk
	// outputs each.
	if max := int64(nChunks * 3 * perChunk); rep.WastedOutputs > max {
		t.Errorf("wasted outputs = %d, want <= %d (waste double-counted across vote passes?)",
			rep.WastedOutputs, max)
	}
}

// TestQuorumTerminalSplitFailsAndPenalizes: three voters, three
// distinct digests, and no fresh candidate to widen with — the vote is
// terminal. The chunk must fail promptly with the no-quorum error (not
// spin re-voting), and the voters outside the plurality take the
// byzantine penalty so a peer that repeatedly blocks quorum loses its
// selection rank instead of staying pristine.
func TestQuorumTerminalSplitFailsAndPenalizes(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("ts-ctl"), "ts-ctl", Options{Resilience: chaosResilience()})
	var peers []PeerRef
	for _, label := range []string{"ts-w1", "ts-w2", "ts-w3"} {
		w := newService(t, n.Peer(label), label, Options{})
		peers = append(peers, PeerRef{ID: label, Addr: w.Addr()})
	}
	// All three corrupt at different cadences: three ballots, three
	// digests, majority of 2 unreachable.
	n.SetLinkFaults("ts-w1", simnet.LinkFaults{CorruptEvery: 1})
	n.SetLinkFaults("ts-w2", simnet.LinkFaults{CorruptEvery: 2})
	n.SetLinkFaults("ts-w3", simnet.LinkFaults{CorruptEvery: 3})

	type outcome struct {
		rep *FarmReport
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := ctl.FarmChunks(context.Background(), chaosChunks(chaosSeed, 1, 6), FarmOptions{
			Body:           func() *taskgraph.Graph { return accumBody(t) },
			Peers:          peers,
			Quorum:         3,
			AttemptTimeout: 10 * time.Second,
		})
		done <- outcome{rep, err}
	}()
	var res outcome
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("terminal split-vote farm hung (livelock regression)")
	}
	if res.err == nil {
		t.Fatal("three-way split committed a chunk without a majority")
	}
	// Exactly the two non-plurality voters are penalized, and the
	// registry counter tracks the report.
	if res.rep.QuorumDisagreements != 2 {
		t.Errorf("quorum disagreements = %d, want 2", res.rep.QuorumDisagreements)
	}
	if snap := ctl.Resilience().Snapshot(); snap.QuorumDisagreements != res.rep.QuorumDisagreements {
		t.Errorf("registry disagreements = %d, report = %d", snap.QuorumDisagreements, res.rep.QuorumDisagreements)
	}
	penalized := 0
	for _, id := range []string{"ts-w1", "ts-w2", "ts-w3"} {
		if ctl.Health().Score(id) < 1 {
			penalized++
		}
	}
	if penalized < 2 {
		t.Errorf("only %d quorum-blocking peers lost health score, want >= 2", penalized)
	}
}

// TestStragglerRearmsAfterSkippedSpeculation: when the straggler timer
// fires while no backup peer is admissible (the only alternative's
// breaker is still open), the detector must keep watching instead of
// giving up for the rest of the chunk — once the breaker half-opens
// moments later, the re-armed timer probes the peer and launches the
// backup, which beats the crawling primary.
func TestStragglerRearmsAfterSkippedSpeculation(t *testing.T) {
	n := simnet.New()
	ctl := newService(t, n.Peer("ra-ctl"), "ra-ctl", Options{
		Resilience: chaosResilience(),
		Health:     health.Options{OpenTimeout: 60 * time.Millisecond},
	})
	w1 := newService(t, n.Peer("ra-w1"), "ra-w1", Options{})
	w2 := newService(t, n.Peer("ra-w2"), "ra-w2", Options{})
	peers := []PeerRef{
		{ID: "ra-w1", Addr: w1.Addr()},
		{ID: "ra-w2", Addr: w2.Addr()},
	}
	// The primary lands on crawling ra-w1 (ra-w2's breaker is open when
	// the chunk starts, and speculation never forces gated peers). The
	// straggler fires at 50ms into a multi-hundred-ms attempt, skips,
	// and must re-arm until ra-w2 half-opens at 60ms.
	n.SetLinkFaults("ra-w1", simnet.LinkFaults{Latency: 30 * time.Millisecond})
	ctl.Health().ReportDead("ra-w2")

	rep := runChaosFarm(t, ctl, peers, chaosChunks(chaosSeed, 1, 10), FarmOptions{
		Speculate:      true,
		SpeculateAfter: 50 * time.Millisecond,
	})
	if rep.SpeculationLaunches < 1 || rep.SpeculationWins < 1 {
		t.Fatalf("skipped speculation never retried: %+v", rep)
	}
	if rep.PeerChunks["ra-w2"] != 1 {
		t.Fatalf("backup on the revived peer did not win: %+v", rep.PeerChunks)
	}
}

// TestLatencyFeedsSpeculationThreshold: committed attempts feed the
// peer's latency window, so once history exists the straggler threshold
// derives from the observed p90 instead of the static fallback.
func TestLatencyFeedsSpeculationThreshold(t *testing.T) {
	tr := simnet.New()
	ctl := newService(t, tr.Peer("lt-ctl"), "lt-ctl", Options{Resilience: chaosResilience()})
	w := newService(t, tr.Peer("lt-w1"), "lt-w1", Options{})
	peers := []PeerRef{{ID: "lt-w1", Addr: w.Addr()}}

	runChaosFarm(t, ctl, peers, chaosChunks(chaosSeed, 4, 3), FarmOptions{})
	if _, ok := ctl.Health().LatencyQuantile("lt-w1", 0.9); !ok {
		t.Fatal("farm attempts recorded no latency samples")
	}
	opts := FarmOptions{SpeculateAfter: time.Hour, StragglerFactor: 2}.withFarmDefaults(ctl.res)
	if got := ctl.stragglerThreshold("lt-w1", opts); got >= time.Hour {
		t.Errorf("threshold ignored observed latency: %v", got)
	}
	if got := ctl.stragglerThreshold("lt-nohistory", opts); got != time.Hour {
		t.Errorf("no-history threshold = %v, want the SpeculateAfter fallback", got)
	}
}
