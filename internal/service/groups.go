// Capability-group observability: the triana.groups RPC (trianactl
// groups and the webstatus /groups page ride it) plus the accessors
// the controller uses to thread group identity through despatch.
package service

import (
	"fmt"
	"strconv"
	"strings"

	"consumergrid/internal/advert"
	"consumergrid/internal/capgroup"
	"consumergrid/internal/jxtaserve"
)

// MethodGroups is the capability-group observability RPC.
const MethodGroups = "triana.groups"

// Caps exposes the peer's derived capability set.
func (s *Service) Caps() capgroup.Set { return s.caps }

// GroupKey exposes the peer's capability-group key.
func (s *Service) GroupKey() string { return s.groupKey }

// RequiredCaps exposes the capability requirement this peer applies
// when despatching farms (trianad -require-caps); nil means none.
func (s *Service) RequiredCaps() map[string]string { return s.opts.RequireCaps }

// CapabilityGroups snapshots every capability group visible through
// discovery (local cache plus the overlay/rendezvous path), sorted by
// key. It builds a transient index, so it never perturbs the
// capgroup_groups / capgroup_members gauges the donor pool owns.
func (s *Service) CapabilityGroups() []capgroup.GroupInfo {
	idx := capgroup.NewIndex()
	ads, err := s.disc.Discover(advert.Query{Kind: advert.KindGroup}, 0)
	if err != nil {
		s.logf("service: %s: discovering groups: %v", s.opts.PeerID, err)
	}
	for _, ad := range ads {
		caps, key, ok := capgroup.FromAdvert(ad)
		if !ok {
			continue
		}
		cpu, _ := strconv.ParseFloat(ad.Attr(advert.AttrCPUMHz), 64)
		idx.Put(key, caps, capgroup.Member{PeerID: ad.PeerID, Addr: ad.Addr, CPUMHz: cpu})
	}
	return idx.Snapshot()
}

// GroupsText renders this peer's capability identity and every visible
// group as the aligned text table trianactl groups prints.
func (s *Service) GroupsText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "peer %s group %s\n", s.opts.PeerID, s.groupKey)
	fmt.Fprintf(&b, "caps %s\n", s.caps.Canon())
	groups := s.CapabilityGroups()
	if len(groups) == 0 {
		b.WriteString("no groups visible\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\n%-16s %7s  %s\n", "group", "members", "caps")
	for _, g := range groups {
		fmt.Fprintf(&b, "%-16s %7d  %s\n", g.Key, len(g.Members), g.Canon)
		for _, m := range g.Members {
			fmt.Fprintf(&b, "%-16s %7s  %s (%s, %.0f MHz)\n", "", "", m.PeerID, m.Addr, m.CPUMHz)
		}
	}
	return b.String()
}

// handleGroups serves GroupsText over the observability RPC surface.
func (s *Service) handleGroups(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	reply := &jxtaserve.Message{Payload: []byte(s.GroupsText())}
	reply.SetHeader("peer", s.opts.PeerID)
	reply.SetHeader("group", s.groupKey)
	return reply, nil
}
