package service

import (
	"consumergrid/internal/advert"
)

// newCache and advertQueryMinCPU keep the test bodies terse.
func newCache() *advert.Cache { return advert.NewCache() }

func advertQueryMinCPU(min float64) advert.Query {
	return advert.Query{
		Kind: advert.KindService, Name: ServiceType,
		MinAttrs: map[string]float64{advert.AttrCPUMHz: min},
	}
}
