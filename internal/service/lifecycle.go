package service

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"consumergrid/internal/jxtaserve"
	"consumergrid/internal/lifecycle"
	"consumergrid/internal/metrics"
)

// MethodDrain asks the daemon to drain gracefully: stop admitting new
// farms and hosted jobs, finish in-flight work, retract adverts, hand
// off super-peer state, checkpoint, and report. Headers: "timeout"
// (Go duration, optional), "wait" ("1" blocks the reply until the
// drain completes). Idempotent — repeating it reports progress.
const MethodDrain = "triana.drain"

// DefaultDrainTimeout bounds the wait for in-flight work when no
// timeout is given (trianad's -drain-timeout flag overrides it).
const DefaultDrainTimeout = 30 * time.Second

// lifecycleMetrics are the daemon-lifecycle series, registered eagerly
// in New so a fresh daemon's first scrape lists them.
type lifecycleMetrics struct {
	stateG        *metrics.Gauge     // lifecycle_state: 0 starting … 3 stopped
	drainInflight *metrics.Gauge     // farms + slots still live during a drain
	ckptTotal     *metrics.Counter   // state_checkpoint_total
	ckptErrors    *metrics.Counter   // state_checkpoint_errors_total
	ckptBytes     *metrics.Counter   // state_checkpoint_bytes_total
	ckptSeconds   *metrics.Histogram // state_checkpoint_seconds
	restoreTotal  *metrics.Counter   // state_restore_total
}

func (s *Service) registerLifecycleMetrics() {
	reg := metrics.Default()
	peer := s.opts.PeerID
	s.lcMetrics = lifecycleMetrics{
		stateG:        reg.Gauge(metrics.Series("lifecycle_state", "peer", peer)),
		drainInflight: reg.Gauge(metrics.Series("drain_inflight", "peer", peer)),
		ckptTotal:     reg.Counter(metrics.Series("state_checkpoint_total", "peer", peer)),
		ckptErrors:    reg.Counter(metrics.Series("state_checkpoint_errors_total", "peer", peer)),
		ckptBytes:     reg.Counter(metrics.Series("state_checkpoint_bytes_total", "peer", peer)),
		ckptSeconds:   reg.Histogram(metrics.Series("state_checkpoint_seconds", "peer", peer)),
		restoreTotal:  reg.Counter(metrics.Series("state_restore_total", "peer", peer)),
	}
}

// setLifecycleState moves the daemon's lifecycle gauge forward; like
// lifecycle.Runner, backward moves are refused (except to Stopped).
func (s *Service) setLifecycleState(st lifecycle.State) {
	for {
		cur := s.lcState.Load()
		if st != lifecycle.Stopped && int32(st) < cur {
			return
		}
		if s.lcState.CompareAndSwap(cur, int32(st)) {
			s.lcMetrics.stateG.Set(float64(st))
			return
		}
	}
}

// LifecycleState reports where the daemon is in its lifecycle.
func (s *Service) LifecycleState() lifecycle.State {
	return lifecycle.State(s.lcState.Load())
}

// Draining reports whether a drain has begun (or the daemon has
// stopped). A draining daemon refuses new farms and hosted jobs but
// still finishes in-flight work.
func (s *Service) Draining() bool { return s.LifecycleState() >= lifecycle.Draining }

// Ready reports whether the daemon is admitting work: running, not
// draining, and with the donor idle gate open. The /readyz probe and
// supervisors key off this.
func (s *Service) Ready() bool {
	return s.LifecycleState() == lifecycle.Running && s.available.Load()
}

// DrainReport is what a completed (or in-progress) drain achieved.
type DrainReport struct {
	// AdvertsRetracted counts our published adverts tombstoned on the
	// overlay.
	AdvertsRetracted int
	// HandoffAdverts / HandoffChunks count super-peer store entries and
	// chunk replicas accepted by ring successors.
	HandoffAdverts int
	HandoffChunks  int
	// Drained is true when every in-flight farm and despatch slot
	// finished inside the drain timeout.
	Drained bool
}

// drainState tracks one daemon's single drain.
type drainState struct {
	once sync.Once
	done chan struct{}

	mu  sync.Mutex
	rep DrainReport
}

// BeginDrain starts a graceful drain and returns a channel closed when
// it completes. Idempotent: every call returns the same channel, and
// only the first call's timeout is used. The sequence:
//
//  1. stop admitting — new farms get ErrDraining, triana.run is
//     quiesced at the wire, advert renewal stops;
//  2. retract our published adverts from the overlay;
//  3. wait (bounded by timeout) for in-flight farms and despatch
//     slots to finish — in-flight farms still acquire slots for their
//     remaining chunks, so they complete rather than fail;
//  4. hand off super-peer store entries and chunk replicas to ring
//     successors;
//  5. write a final state checkpoint.
//
// The daemon stays up (answering status RPCs, serving pipes) until
// Close; a supervisor typically calls Close as soon as the returned
// channel closes.
func (s *Service) BeginDrain(timeout time.Duration) <-chan struct{} {
	s.drains.once.Do(func() {
		if timeout <= 0 {
			timeout = DefaultDrainTimeout
		}
		s.setLifecycleState(lifecycle.Draining)
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			// Nothing left to drain; don't spawn past Close's bg.Wait.
			close(s.drains.done)
			return
		}
		s.goBG(func() {
			defer close(s.drains.done)
			s.drain(timeout)
		})
	})
	return s.drains.done
}

// DrainReport returns the drain's progress so far; meaningful once
// BeginDrain has been called.
func (s *Service) DrainReport() DrainReport {
	s.drains.mu.Lock()
	defer s.drains.mu.Unlock()
	return s.drains.rep
}

func (s *Service) drain(timeout time.Duration) {
	span := s.tracer.Start("", "", "lifecycle.drain", s.opts.PeerID)
	defer span.End()
	var rep DrainReport

	// 1. Stop admitting. Order matters: the admission gate first so no
	// farm slips in between the wire quiesce and the scheduler flip.
	s.admit.beginDrain()
	s.host.Quiesce(MethodRun)

	// 2. Retract our adverts so no controller discovers us mid-exit.
	// Flat (rendezvous) discovery needs nothing: its TTL ages us out.
	if s.overlay != nil {
		n, err := s.overlay.RetractAll()
		rep.AdvertsRetracted = n
		if err != nil {
			s.logf("service: %s drain: retracting adverts: %v", s.opts.PeerID, err)
		}
	}
	s.drains.setReport(rep)

	// 3. Finish in-flight work. Farms registered before the drain keep
	// acquiring slots; we wait for them, feeding the progress gauge.
	rep.Drained = s.admit.awaitIdle(timeout, func(farms, inflight int) {
		s.lcMetrics.drainInflight.Set(float64(farms + inflight))
	})
	if !rep.Drained {
		s.logf("service: %s drain: timeout after %v with work in flight", s.opts.PeerID, timeout)
	}
	s.drains.setReport(rep)

	// 4. Hand off super-peer state to the ring's survivors.
	if s.overlaySuper != nil {
		hrep, err := s.overlaySuper.Handoff()
		rep.HandoffAdverts = hrep.Adverts
		rep.HandoffChunks = hrep.Chunks
		if err != nil {
			s.logf("service: %s drain: handoff: %v", s.opts.PeerID, err)
		}
	}
	s.drains.setReport(rep)

	// 5. Final checkpoint, after the in-flight farms wrote their last
	// journal entries.
	if err := s.CheckpointNow(); err != nil {
		s.logf("service: %s drain: final checkpoint: %v", s.opts.PeerID, err)
	}

	span.SetAttr("adverts_retracted", strconv.Itoa(rep.AdvertsRetracted))
	span.SetAttr("handoff_adverts", strconv.Itoa(rep.HandoffAdverts))
	span.SetAttr("handoff_chunks", strconv.Itoa(rep.HandoffChunks))
	span.SetAttr("drained", strconv.FormatBool(rep.Drained))
	s.logf("service: %s drained (adverts retracted %d, handoff %d adverts / %d chunks, clean=%v)",
		s.opts.PeerID, rep.AdvertsRetracted, rep.HandoffAdverts, rep.HandoffChunks, rep.Drained)
}

func (d *drainState) setReport(rep DrainReport) {
	d.mu.Lock()
	d.rep = rep
	d.mu.Unlock()
}

// handleDrain serves MethodDrain: kicks off (or reports) the drain.
func (s *Service) handleDrain(req *jxtaserve.Message) (*jxtaserve.Message, error) {
	timeout := DefaultDrainTimeout
	if h := req.Header("timeout"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil {
			return nil, fmt.Errorf("service: bad drain timeout %q: %w", h, err)
		}
		timeout = d
	}
	done := s.BeginDrain(timeout)
	if req.Header("wait") == "1" {
		select {
		case <-done:
		case <-time.After(timeout + 10*time.Second):
			return nil, fmt.Errorf("service: drain did not complete in time")
		case <-s.shutdown:
		}
	}
	rep := s.DrainReport()
	farms, inflight := s.admit.counts()
	reply := &jxtaserve.Message{}
	reply.SetHeader("state", s.LifecycleState().String())
	reply.SetHeader("farms", strconv.Itoa(farms))
	reply.SetHeader("inflight", strconv.Itoa(inflight))
	reply.SetHeader("advertsRetracted", strconv.Itoa(rep.AdvertsRetracted))
	reply.SetHeader("handoffAdverts", strconv.Itoa(rep.HandoffAdverts))
	reply.SetHeader("handoffChunks", strconv.Itoa(rep.HandoffChunks))
	reply.SetHeader("drained", strconv.FormatBool(rep.Drained))
	return reply, nil
}
